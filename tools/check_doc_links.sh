#!/bin/sh
# Fail on broken relative links in the repo's markdown docs.
#
# Scans README.md, ROADMAP.md and docs/*.md for inline markdown links
# `[text](target)`, ignores absolute URLs (scheme:...) and pure
# in-page anchors (#...), and checks the target exists relative to the
# linking file's directory. For cross-file links into a .md target with
# a #fragment, the fragment is also checked against the target's
# headings (GitHub-style slugs: lowercase, punctuation stripped, spaces
# to dashes; fenced code blocks excluded) — renaming a heading breaks
# the link as surely as renaming the file. Exits 1 listing every broken
# link; exits 0 silently otherwise. POSIX sh + grep/sed/tr/awk only, so
# the CI step and a bare container both run it as-is.
#
#   tools/check_doc_links.sh [file.md ...]   # default: README ROADMAP docs/*.md
set -u

cd "$(dirname "$0")/.." || exit 1

files="$*"
if [ -z "$files" ]; then
  files="README.md ROADMAP.md"
  for doc in docs/*.md; do
    [ -e "$doc" ] && files="$files $doc"
  done
fi

status=0
for file in $files; do
  if [ ! -f "$file" ]; then
    echo "check_doc_links: no such file: $file" >&2
    status=1
    continue
  fi
  dir=$(dirname "$file")
  # One inline link target per line (`grep -o` keeps only the match, so
  # multiple links on one line are each checked). The pipeline's while
  # runs in a subshell under some shells, so broken targets are echoed
  # and collected via command substitution rather than mutating $status
  # from inside it.
  broken=$(
    grep -o '](\([^)]*\))' "$file" | sed 's/^](//; s/)$//' |
    while IFS= read -r target; do
      case "$target" in
        *://*|mailto:*|\#*|'') continue ;;
      esac
      path=${target%%#*}
      [ -z "$path" ] && continue
      if [ ! -e "$dir/$path" ]; then
        printf '%s\n' "$target"
        continue
      fi
      # Cross-file heading anchor: slugify the target's headings and
      # require an exact match.
      fragment=${target#*#}
      [ "$fragment" = "$target" ] && continue
      case "$path" in
        *.md)
          # awk tracks ``` fences so '# comment' lines inside shell
          # blocks are not mistaken for headings.
          if ! awk '/^```/ { fence = !fence; next }
                    !fence && /^##*[ \t]/ { sub(/^##*[ \t]+/, ""); print }' \
                 "$dir/$path" |
               tr '[:upper:]' '[:lower:]' |
               sed 's/[^a-z0-9_ -]//g; s/ /-/g' |
               grep -qx "$fragment"; then
            printf '%s\n' "$target"
          fi
          ;;
      esac
    done
  )
  if [ -n "$broken" ]; then
    printf '%s\n' "$broken" |
      sed "s|^|$file: broken relative link -> |" >&2
    status=1
  fi
done

exit $status
