#!/usr/bin/env python3
"""Self-test fixture: every line here must trip py-nondeterminism."""

import datetime
import os
import random
import secrets
import time
import uuid


def stamp():
    return time.time()


def when():
    return datetime.datetime.now()


def salt():
    return os.urandom(8)


def ident():
    return uuid.uuid4()


def token():
    return secrets.token_hex(4)


def unseeded():
    return random.random()
