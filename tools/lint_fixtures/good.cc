// Lint self-test fixture: every pattern here is FINE and must produce no
// findings (tools/lint_determinism.py --self-test).
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Record {
  std::uint32_t remaining = 0;
};

struct Ledger {
  // Declaration of an unordered container: fine. Only iteration is
  // order-sensitive.
  std::unordered_map<std::uint64_t, Record> records;
  std::unordered_set<std::uint64_t> seen;
};

// Lookup and insertion: fine.
bool Resolve(Ledger& ledger, std::uint64_t txn) {
  const auto it = ledger.records.find(txn);
  if (it == ledger.records.end()) return false;
  return --it->second.remaining == 0;
}

// Iterating a vector: fine, vectors have deterministic order.
std::uint64_t Sum(const std::vector<std::uint64_t>& values) {
  std::uint64_t total = 0;
  for (const std::uint64_t value : values) total += value;
  return total;
}

// Iterating an unordered container with a justified escape: fine.
std::size_t CountSeen(const Ledger& ledger) {
  std::size_t count = 0;
  // lint:allow(unordered-iteration): commutative count, order-free.
  for (const std::uint64_t id : ledger.seen) {
    count += id != 0 ? 1 : 0;
  }
  return count;
}

// Mentions of "std::rand" or "system_clock" inside strings or comments
// must not trip the lint.
std::string Describe() { return "never calls std::rand or system_clock"; }

// Round-derived logical timestamps in durable records: fine — no host
// time involved ("time_point" and words like "runtime" must not trip the
// time-type rule, and neither must this comment's mention of localtime).
struct RecordHeader {
  std::uint64_t logical_round = 0;
  std::uint64_t sequence = 0;
};

// Replay from an explicit ordered index: fine — no directory listing.
std::uint64_t ReplayAll(const std::vector<RecordHeader>& index) {
  std::uint64_t last = 0;
  for (const RecordHeader& header : index) last = header.sequence;
  return last;
}

}  // namespace fixture
