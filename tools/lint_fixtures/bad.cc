// Lint self-test fixture: every block here must produce a finding
// (tools/lint_determinism.py --self-test), one per rule.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <random>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Txn {
  std::uint64_t id = 0;
};

// unordered-iteration: feeding results from hash-map iteration order.
std::unordered_map<std::uint64_t, Txn> BuildIndex();

std::vector<std::uint64_t> CollectIds() {
  std::unordered_map<std::uint64_t, Txn> active;
  std::vector<std::uint64_t> out;
  for (const auto& [id, txn] : active) {  // platform-defined order
    out.push_back(id);
  }
  const auto index = BuildIndex();
  for (const auto& [id, txn] : index) {  // tainted via BuildIndex()
    out.push_back(id);
  }
  return out;
}

// raw-rand: the C runtime's global RNG and ad-hoc engines.
std::uint64_t RollDice() {
  std::random_device device;
  std::mt19937 engine(device());
  return static_cast<std::uint64_t>(std::rand()) + engine();
}

// wall-clock: simulation decisions reading host time.
bool Expired() {
  const auto now = std::chrono::system_clock::now();
  return now.time_since_epoch().count() % 2 == 0;
}

// pointer-key: ordered iteration over addresses.
std::map<const Txn*, int> priorities;

// pointer-key (unordered variant): a recovery map rebuilt during replay,
// keyed on object addresses instead of stable ids.
std::unordered_map<Txn*, std::uint64_t> recovery_index;

// time-type: a host timestamp embedded in a durable record.
struct WalHeader {
  time_t written_at;  // two runs of the same sim produce different bytes
};
std::uint64_t StampRecord() {
  struct timespec ts {};
  return static_cast<std::uint64_t>(mktime(nullptr)) + ts.tv_sec;
}

// dir-iteration: replay discovery in filesystem listing order.
int CountSegments(const char* dir_path) {
  int segments = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_path)) {
    (void)entry;
    ++segments;
  }
  return segments;
}

// bare-allow: an escape without a reason is itself a finding.
// lint:allow(wall-clock)
std::uint64_t Stamp() { return 42; }

}  // namespace fixture
