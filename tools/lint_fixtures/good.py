#!/usr/bin/env python3
"""Self-test fixture: deterministic python tooling that must scan clean."""

import random


def draw(seed: int, n: int):
    rng = random.Random(seed)  # sanctioned: seeded instance, not the module
    return [rng.random() for _ in range(n)]


def shuffled(seed: int, items):
    rng = random.Random(seed)
    out = list(items)
    rng.shuffle(out)
    return out


def stamped_header(build_time: float) -> str:
    # Timestamps must be passed in, never sampled; an explicit allow with a
    # reason is the only other way through the gate:
    # lint:allow(py-nondeterminism): example of a justified suppression
    return "generated-at %f" % build_time
