#!/usr/bin/env python3
"""Determinism lint for the StableShard tree.

The simulator's core contract is bit-identical results across worker
counts, pipeline modes, and platforms (see docs/determinism.md and
`bench/parallel_rounds --check`). The compiler cannot see the class of
bug that breaks it: iterating a hash container in an order that feeds
messages or results, calling the C runtime's global RNG, or branching on
wall-clock time. This lint catches those patterns statically:

  unordered-iteration  A range-for over a name declared as a
                       std::unordered_{map,set,multimap,multiset}
                       (declaration and lookup are fine — only iteration
                       order is platform-defined). The symbol table is
                       built from every scanned file, so a member
                       declared in a header is flagged when a .cc
                       iterates it; `auto x = Fn(...)` counts when Fn is
                       declared in the same file returning an unordered
                       container.
  raw-rand             std::rand / srand / random_device / direct
                       std::mt19937 construction anywhere outside
                       src/common/rng.* — all randomness must flow
                       through common::Rng's seeded SplitMix64.
  wall-clock           system_clock / high_resolution_clock / time() /
                       gettimeofday / clock_gettime in simulation code.
                       Timing telemetry is legitimate but must be
                       annotated so a reviewer confirms no simulation
                       decision reads it.
  pointer-key          std::map / std::set — ordered or unordered — keyed
                       on a pointer type: iteration over (or hashing of)
                       addresses is allocation-order-dependent, which
                       varies run to run. Recovery maps rebuilt during
                       WAL replay are the classic offender.
  time-type            C time types and formatters (time_t, timeval,
                       timespec, localtime, gmtime, strftime, asctime,
                       mktime). A wall-clock timestamp inside a WAL
                       record or checkpoint makes two runs of the same
                       simulation produce different durable bytes, which
                       breaks the replay bit-identity contract.
  dir-iteration        directory enumeration (std::filesystem::
                       directory_iterator / recursive_directory_iterator,
                       readdir, scandir, opendir). Directory order is
                       filesystem-defined; replay / checkpoint discovery
                       must use explicit ordered indexes, never "whatever
                       the directory lists first".
  py-nondeterminism    (.py files only) wall-clock reads (time.time,
                       datetime.now/utcnow, date.today) or unseeded
                       randomness (module-level random.* calls,
                       os.urandom, uuid.uuid1/uuid4, secrets.*) in
                       in-tree Python tooling. Trace/fixture generators
                       must be pure functions of their command line —
                       seeded random.Random(seed) instances are the
                       sanctioned source of randomness.

Escapes: a finding is suppressed by
    // lint:allow(<rule>): <reason>     (C++)
    # lint:allow(<rule>): <reason>      (Python)
on the same line or the immediately preceding line. The reason is
mandatory — an allow without one is itself reported (`bare-allow`).

Usage:
    lint_determinism.py <file-or-dir>...   scan, exit 1 on findings
    lint_determinism.py --self-test        run over tools/lint_fixtures
Exit codes: 0 clean, 1 findings (or self-test failure), 2 usage error.
"""

import os
import re
import sys

CPP_RULES = ("unordered-iteration", "raw-rand", "wall-clock", "pointer-key",
             "time-type", "dir-iteration")
PY_RULES = ("py-nondeterminism",)
RULES = CPP_RULES + PY_RULES

CPP_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")
SOURCE_EXTENSIONS = CPP_EXTENSIONS + (".py",)

# Files that implement the sanctioned RNG: raw-rand does not apply.
RNG_IMPL = re.compile(r"(^|/)common/rng\.(h|cc)$")

ALLOW = re.compile(r"(?://|#)\s*lint:allow\(([a-z-]+)\)\s*(:\s*(\S.*))?")

UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<")
# `std::unordered_map<K, V> Fn(args)` — a function returning an unordered
# container; `auto x = Fn(...)` then taints x.
RANGE_FOR = re.compile(r"\bfor\s*\(")
AUTO_FROM_CALL = re.compile(
    r"\b(?:const\s+)?auto&?&?\s+(\w+)\s*=\s*(\w+)\s*\(")

RAW_RAND = re.compile(
    r"\bstd::rand\b|[^\w.]s?rand\s*\(|\brandom_device\b"
    r"|\bstd::mt19937(?:_64)?\b|\bdrand48\b|\blrand48\b")
WALL_CLOCK = re.compile(
    r"\bsystem_clock\b|\bhigh_resolution_clock\b|\bsteady_clock\b"
    r"|\bgettimeofday\b|\bclock_gettime\b|[^\w.]time\s*\(\s*(?:NULL|nullptr|0)?\s*\)")
POINTER_KEY = re.compile(
    r"\bstd::(?:unordered_)?(?:map|set|multimap|multiset)"
    r"\s*<\s*(?:const\s+)?[\w:]+\s*\*")
# `time_point` is fine (steady_clock durations are covered by wall-clock);
# the C time types and formatters below embed host wall time by design.
TIME_TYPE = re.compile(
    r"\btime_t\b|\btimeval\b|\btimespec\b|\blocaltime(?:_r)?\b"
    r"|\bgmtime(?:_r)?\b|\bstrftime\b|\basctime(?:_r)?\b|\bmktime\b")
DIR_ITERATION = re.compile(
    r"\brecursive_directory_iterator\b|\bdirectory_iterator\b"
    r"|\breaddir(?:_r)?\b|\bscandir\b|\bopendir\b")
# Python: wall clock and unseeded randomness. Module-level `random.*` is
# flagged (the global RNG is implicitly seeded from the OS); instances of
# `random.Random(seed)` are the sanctioned source, so `random.Random` is
# excluded and attribute calls on instances (`rng.random()`) don't match
# the lookbehind.
PY_NONDETERMINISM = re.compile(
    r"(?<![\w.])time\.(?:time|time_ns|monotonic|monotonic_ns|perf_counter"
    r"|perf_counter_ns|clock)\s*\("
    r"|\bdatetime\.now\b|\bdatetime\.utcnow\b|\bdate\.today\b"
    r"|\bos\.urandom\b|\buuid\.uuid1\b|\buuid\.uuid4\b"
    r"|(?<![\w.])secrets\.\w"
    r"|(?<![\w.])random\.(?!Random\b)\w")


def strip_strings(line):
    """Blank out string and char literals so their contents never match."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("..")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def split_code_comment(line):
    """Return (code, comment) for one line (block comments are handled by
    the caller, which blanks them before this runs)."""
    stripped = strip_strings(line)
    pos = stripped.find("//")
    if pos < 0:
        return stripped, ""
    return stripped[:pos], stripped[pos:]


def blank_block_comments(text):
    """Replace /* ... */ spans with spaces, preserving newlines."""

    def repl(match):
        return re.sub(r"[^\n]", " ", match.group(0))

    return re.sub(r"/\*.*?\*/", repl, text, flags=re.DOTALL)


def declared_names(code_line):
    """Identifiers declared with an unordered container type on this line.

    Handles members, locals, and parameters: after the matching `>` that
    closes the template argument list, the next identifier is the declared
    name (or a function name, detected by a following `(`).
    """
    names = []
    functions = []
    for match in UNORDERED_DECL.finditer(code_line):
        depth = 1
        i = match.end()
        while i < len(code_line) and depth > 0:
            if code_line[i] == "<":
                depth += 1
            elif code_line[i] == ">":
                depth -= 1
            i += 1
        if depth != 0:
            continue  # template args continue on the next line; skip
        rest = code_line[i:]
        name_match = re.match(r"\s*&?\s*(\w+)\s*(\(?)", rest)
        if not name_match:
            continue
        if name_match.group(2) == "(":
            functions.append(name_match.group(1))
        else:
            names.append(name_match.group(1))
    return names, functions


def range_expr_tail(code_line):
    """For each range-for on the line, the final identifier of the range
    expression (`state.active` -> `active`, `users` -> `users`)."""
    tails = []
    for match in RANGE_FOR.finditer(code_line):
        depth = 1
        i = match.end()
        colon = -1
        while i < len(code_line) and depth > 0:
            c = code_line[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            elif c == ":" and depth == 1 and colon < 0:
                # skip `::` qualifiers
                if i + 1 < len(code_line) and code_line[i + 1] == ":":
                    i += 2
                    continue
                if i > 0 and code_line[i - 1] == ":":
                    i += 1
                    continue
                colon = i
            i += 1
        if colon < 0:
            continue
        expr = code_line[colon + 1:i - 1] if depth == 0 else code_line[colon + 1:]
        expr = expr.strip()
        if expr.endswith(")"):
            continue  # call expression: handled via AUTO_FROM_CALL taint
        tail = re.search(r"(\w+)\s*$", expr)
        if tail:
            tails.append(tail.group(1))
    return tails


def split_code_comment_py(line):
    """Python flavor of split_code_comment: '#' opens the comment."""
    stripped = strip_strings(line)
    pos = stripped.find("#")
    if pos < 0:
        return stripped, ""
    return stripped[:pos], stripped[pos:]


class File:
    def __init__(self, path):
        self.path = path
        self.is_python = path.endswith(".py")
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
            if not self.is_python:
                text = blank_block_comments(text)
        self.lines = text.splitlines()
        self.code = []
        self.allows = {}  # line number (1-based) -> set of rules
        self.bare_allows = []
        split = split_code_comment_py if self.is_python else split_code_comment
        for number, line in enumerate(self.lines, start=1):
            code, comment = split(line)
            self.code.append(code)
            # The comment text is read from the original line so the
            # reason survives string-blanking.
            original_comment = line[len(code):] if comment else ""
            for match in ALLOW.finditer(original_comment):
                rule, reason = match.group(1), match.group(3)
                if rule not in RULES:
                    self.bare_allows.append(
                        (number, "unknown rule '%s' in lint:allow" % rule))
                    continue
                if not reason:
                    self.bare_allows.append(
                        (number,
                         "lint:allow(%s) without a reason" % rule))
                    continue
                self.allows.setdefault(number, set()).add(rule)

    def allowed(self, number, rule):
        return (rule in self.allows.get(number, ()) or
                rule in self.allows.get(number - 1, ()))


HEADER_EXTENSIONS = (".h", ".hpp")


def collect_symbols(files):
    """Two-tier symbol table: names declared with unordered container
    types in a *header* (typically members) taint every scanned file —
    the .cc that iterates a member sees only the header declaration.
    Names declared in a .cc (locals, statics) taint that file alone, so
    a vector local in one file is not confused with a same-named
    unordered local elsewhere."""
    header_taint = set()
    local_taint = {}  # path -> set of names
    for file in files:
        if file.is_python:
            continue
        is_header = file.path.endswith(HEADER_EXTENSIONS)
        functions = set()
        names_here = set()
        for code in file.code:
            names, fns = declared_names(code)
            names_here.update(names)
            functions.update(fns)
        # auto locals initialized from an unordered-returning function
        for code in file.code:
            for match in AUTO_FROM_CALL.finditer(code):
                if match.group(2) in functions:
                    names_here.add(match.group(1))
        if is_header:
            header_taint.update(names_here)
        else:
            local_taint[file.path] = names_here
    return header_taint, local_taint


def scan(paths):
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in sorted(os.walk(path)):
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTENSIONS):
                        files.append(File(os.path.join(root, name)))
        elif os.path.isfile(path):
            files.append(File(path))
        else:
            print("lint_determinism: no such path: %s" % path,
                  file=sys.stderr)
            sys.exit(2)

    header_taint, local_taint = collect_symbols(files)
    findings = []

    for file in files:
        if file.is_python:
            for number, code in enumerate(file.code, start=1):
                if PY_NONDETERMINISM.search(code):
                    if not file.allowed(number, "py-nondeterminism"):
                        findings.append(
                            (file.path, number, "py-nondeterminism",
                             "wall-clock or unseeded randomness in Python "
                             "tooling — trace/fixture generation must be a "
                             "pure function of its command line (use a "
                             "seeded random.Random instance)"))
            for number, message in file.bare_allows:
                findings.append((file.path, number, "bare-allow", message))
            continue
        tainted = header_taint | local_taint.get(file.path, set())
        rng_impl = RNG_IMPL.search(file.path.replace(os.sep, "/"))
        for number, code in enumerate(file.code, start=1):
            for tail in range_expr_tail(code):
                if tail in tainted and not file.allowed(
                        number, "unordered-iteration"):
                    findings.append(
                        (file.path, number, "unordered-iteration",
                         "range-for over unordered container '%s' — "
                         "iteration order is platform-defined" % tail))
            if not rng_impl and RAW_RAND.search(code):
                if not file.allowed(number, "raw-rand"):
                    findings.append(
                        (file.path, number, "raw-rand",
                         "raw randomness outside common::Rng — seed it "
                         "through the simulation's Rng instead"))
            if WALL_CLOCK.search(code):
                if not file.allowed(number, "wall-clock"):
                    findings.append(
                        (file.path, number, "wall-clock",
                         "wall-clock read in simulation code — results "
                         "must not depend on host time"))
            if POINTER_KEY.search(code):
                if not file.allowed(number, "pointer-key"):
                    findings.append(
                        (file.path, number, "pointer-key",
                         "container keyed by pointer — address order "
                         "varies run to run (recovery maps must key on "
                         "stable ids)"))
            if TIME_TYPE.search(code):
                if not file.allowed(number, "time-type"):
                    findings.append(
                        (file.path, number, "time-type",
                         "C wall-time type/formatter — a host timestamp "
                         "in a WAL record or checkpoint breaks replay "
                         "bit-identity"))
            if DIR_ITERATION.search(code):
                if not file.allowed(number, "dir-iteration"):
                    findings.append(
                        (file.path, number, "dir-iteration",
                         "directory enumeration — listing order is "
                         "filesystem-defined; replay discovery must use "
                         "an explicit ordered index"))
        for number, message in file.bare_allows:
            findings.append((file.path, number, "bare-allow", message))

    return findings


def self_test():
    fixtures = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "lint_fixtures")
    failures = []

    # The C++ fixtures: good.cc scans clean, bad.cc trips every C++ rule
    # plus the bare-allow meta-rule (CI relies on this as the negative
    # proof that the lint still bites).
    for name in ("good.cc", "good.py"):
        findings = scan([os.path.join(fixtures, name)])
        if findings:
            failures.append("%s should be clean, found: %r" %
                            (name, findings))

    bad_findings = scan([os.path.join(fixtures, "bad.cc")])
    found_rules = {finding[2] for finding in bad_findings}
    expected = set(CPP_RULES) | {"bare-allow"}
    missing = expected - found_rules
    if missing:
        failures.append("bad.cc should trip %s" % ", ".join(sorted(missing)))

    # The Python fixture: bad.py trips the py rule (and only that rule —
    # the C++ patterns must not run on Python sources).
    bad_py_rules = {f[2] for f in scan([os.path.join(fixtures, "bad.py")])}
    if bad_py_rules != {"py-nondeterminism"}:
        failures.append("bad.py should trip exactly py-nondeterminism, "
                        "got %s" % ", ".join(sorted(bad_py_rules)) or "none")

    if failures:
        for failure in failures:
            print("SELF-TEST FAIL: %s" % failure)
        return 1
    print("self-test passed: good.cc/good.py clean, bad.cc trips %s, "
          "bad.py trips py-nondeterminism" % ", ".join(sorted(found_rules)))
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    if argv[1] == "--self-test":
        return self_test()
    findings = scan(argv[1:])
    for path, number, rule, message in findings:
        print("%s:%d: [%s] %s" % (path, number, rule, message))
    if findings:
        print("%d finding(s). Suppress intentional ones with "
              "// lint:allow(<rule>): <reason>" % len(findings))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
