#!/usr/bin/env python3
"""Generate production-shaped traffic traces (sshard-trace v1).

Three shapes, all fully deterministic from --seed (the determinism lint's
python rule enforces that no wall-clock or unseeded randomness ever creeps
in here — a trace that differs between two generations of the same command
line would silently break the replay goldens):

  diurnal    sinusoidal arrival rate around --rate (one full day over the
             run: quiet troughs, busy peaks, mean ~= --rate);
  flash      half-rate baseline with a ~6x flash crowd spiking through the
             middle tenth of the run;
  migrating  constant rate whose Zipf(--theta) hot spot drifts across the
             shard space over the run — the regional-skew handoff that
             stresses admission control's hot-set tracking.

Every record is a touch-shaped transaction (the shape the in-tree
strategies emit): k distinct accounts, the first one owned by the home
shard, each written with a balance-neutral deposit of --amount. Accounts
are assigned round-robin (account a lives on shard a mod s), matching
core::AccountAssignment::kRoundRobin.

Usage:
  tools/gen_trace.py --shape=migrating --theta=1.2 --out=migrating_t12.trace
  (see --help for the full knob list; defaults regenerate the tracked
  fixtures in tests/traces/ byte-for-byte)
"""

import argparse
import math
import random
import sys

FNV_OFFSET = 0xcbf29ce484222325
FNV_PRIME = 0x100000001b3
MASK64 = (1 << 64) - 1


def fnv1a(data: bytes) -> int:
    """64-bit FNV-1a, bit-compatible with durability/encoding.h."""
    h = FNV_OFFSET
    for byte in data:
        h = ((h ^ byte) * FNV_PRIME) & MASK64
    return h


def zipf_cdf(n: int, theta: float):
    """Cumulative Zipf weights over ranks 0..n-1 (rank 0 hottest)."""
    weights = [1.0 / ((rank + 1) ** theta) for rank in range(n)]
    total = sum(weights)
    cdf, acc = [], 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    return cdf


def pick_rank(cdf, rng: random.Random) -> int:
    r = rng.random()
    lo, hi = 0, len(cdf) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cdf[mid] < r:
            lo = mid + 1
        else:
            hi = mid
    return lo


def rate_at(shape: str, t: int, rounds: int, rate: float) -> float:
    if shape == "diurnal":
        return rate * (1.0 + 0.5 * math.sin(2.0 * math.pi * t / rounds))
    if shape == "flash":
        lo, hi = int(0.45 * rounds), int(0.55 * rounds)
        return 6.0 * rate if lo <= t < hi else 0.5 * rate
    return rate  # migrating: constant offered load, moving skew


def hot_shard(shape: str, t: int, rounds: int, shards: int) -> int:
    if shape == "migrating":
        return (t * shards) // rounds % shards
    return 0


def generate(args) -> str:
    rng = random.Random(args.seed)
    cdf = zipf_cdf(args.shards, args.theta)
    lines = []
    acc = 0.0
    for t in range(args.rounds):
        acc += rate_at(args.shape, t, args.rounds, args.rate)
        arrivals = int(acc)
        acc -= arrivals
        hot = hot_shard(args.shape, t, args.rounds, args.shards)
        for _ in range(arrivals):
            # Home = Zipf-ranked distance from the hot spot: rank 0 is the
            # hot shard itself, rank r the shard r steps around the ring.
            home = (hot + pick_rank(cdf, rng)) % args.shards
            accounts = [home % args.accounts]
            while len(accounts) < args.k:
                a = (hot + pick_rank(cdf, rng)) % args.shards % args.accounts
                if a not in accounts:
                    accounts.append(a)
            lines.append("%d %d %d %s" % (
                t, home, args.amount, " ".join(str(a) for a in accounts)))
    body = "".join(line + "\n" for line in lines)
    header = "sshard-trace v1\nmeta shards=%d accounts=%d records=%d checksum=%016x\n" % (
        args.shards, args.accounts, len(lines), fnv1a(body.encode()))
    return header + body


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shape", required=True,
                        choices=["diurnal", "flash", "migrating"])
    parser.add_argument("--rounds", type=int, default=360)
    parser.add_argument("--shards", type=int, default=32)
    parser.add_argument("--accounts", type=int, default=32)
    parser.add_argument("--rate", type=float, default=2.5,
                        help="mean arrivals per round (diurnal/migrating; "
                             "flash uses 0.5x baseline, 6x spike)")
    parser.add_argument("--theta", type=float, default=1.0,
                        help="Zipf skew of homes/accounts around the hot spot")
    parser.add_argument("--k", type=int, default=3,
                        help="accounts touched per transaction")
    parser.add_argument("--amount", type=int, default=0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default="-",
                        help="output path (default stdout)")
    args = parser.parse_args(argv)
    if args.k > args.accounts or args.k > args.shards:
        parser.error("--k must be <= --accounts and <= --shards")
    text = generate(args)
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w") as f:
            f.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
