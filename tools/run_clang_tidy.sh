#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy at the repo root) over every source
# file in the compilation database.
#
# Usage:  tools/run_clang_tidy.sh [build-dir]
#
# The build dir must have been configured with
#   cmake -B <build-dir> -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
# Exits 0 when clang-tidy is clean, 1 on findings, and 0 with a notice
# when clang-tidy is not installed (local containers ship only gcc; the
# CI static-analysis job installs clang and enforces the result).
set -u -o pipefail

build_dir="${1:-build-tidy}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

tidy="$(command -v clang-tidy || true)"
if [[ -z "${tidy}" ]]; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping" \
       "(the CI static-analysis job enforces this check)" >&2
  exit 0
fi

db="${repo_root}/${build_dir}/compile_commands.json"
if [[ ! -f "${db}" ]]; then
  echo "run_clang_tidy: ${db} missing — configure with" \
       "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first" >&2
  exit 2
fi

# Every first-party TU in the database; third-party (_deps) is excluded.
mapfile -t files < <(python3 - "${db}" <<'EOF'
import json, sys
seen = set()
for entry in json.load(open(sys.argv[1])):
    path = entry["file"]
    if "_deps" in path or path in seen:
        continue
    seen.add(path)
    print(path)
EOF
)

if [[ ${#files[@]} -eq 0 ]]; then
  echo "run_clang_tidy: no first-party files in ${db}" >&2
  exit 2
fi

echo "run_clang_tidy: checking ${#files[@]} files with $(${tidy} --version | head -1)"

runner="$(command -v run-clang-tidy || true)"
if [[ -n "${runner}" ]]; then
  "${runner}" -quiet -p "${repo_root}/${build_dir}" "${files[@]}"
  exit $?
fi

status=0
for file in "${files[@]}"; do
  if ! "${tidy}" -quiet -p "${repo_root}/${build_dir}" "${file}"; then
    status=1
  fi
done
exit ${status}
