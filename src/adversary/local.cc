// Locality-bounded strategy for the non-uniform model: home shard uniform,
// accessed accounts owned by shards within `radius` of home (the paper's
// d parameter).
#include <algorithm>

#include "adversary/strategy.h"
#include "adversary/strategy_internal.h"
#include "adversary/strategy_registry.h"
#include "common/check.h"
#include "core/config.h"

namespace stableshard::adversary {

LocalStrategy::LocalStrategy(const chain::AccountMap& map,
                             const net::ShardMetric& metric, Distance radius,
                             RandomStrategyOptions options)
    : map_(&map), metric_(&metric), radius_(radius), options_(options) {
  SSHARD_CHECK(map.shard_count() == metric.shard_count());
  reachable_.resize(map.shard_count());
  for (ShardId home = 0; home < map.shard_count(); ++home) {
    for (const ShardId shard : metric.Neighborhood(home, radius)) {
      const auto& accounts = map.AccountsOf(shard);
      reachable_[home].insert(reachable_[home].end(), accounts.begin(),
                              accounts.end());
    }
    if (reachable_[home].empty()) {
      // Degenerate map: fall back to any account so the strategy stays
      // productive (the candidate still has a valid home).
      reachable_[home].push_back(0);
    }
  }
}

bool LocalStrategy::Next(Round round, Rng& rng, Candidate* out) {
  (void)round;
  out->home = static_cast<ShardId>(rng.NextBounded(map_->shard_count()));
  const auto& pool = reachable_[out->home];
  const std::uint32_t span =
      std::min<std::uint32_t>(internal::PickSpan(options_, rng),
                              static_cast<std::uint32_t>(pool.size()));
  const auto picks = rng.SampleWithoutReplacement(pool.size(), span);
  out->accesses.clear();
  for (const auto index : picks) {
    out->accesses.push_back(internal::TouchSpec(pool[index]));
  }
  internal::MaybePoison(out->accesses, options_.abort_probability, rng);
  return true;
}

namespace {
const StrategyRegistrar kLocalRegistrar{
    "local", [](const core::SimConfig& config, StrategyDeps& deps) {
      return std::unique_ptr<Strategy>(std::make_unique<LocalStrategy>(
          deps.accounts, deps.metric, config.local_radius,
          internal::OptionsFromConfig(config.k, config.abort_probability)));
    }};
}  // namespace

}  // namespace stableshard::adversary
