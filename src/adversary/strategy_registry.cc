#include "adversary/strategy_registry.h"

#include "core/config.h"

namespace stableshard::adversary {

StrategyRegistry& StrategyRegistry::Global() {
  // Function-local static: constructed on first use, so registrars in other
  // translation units never observe an uninitialized registry.
  static StrategyRegistry* registry = new StrategyRegistry();
  return *registry;
}

}  // namespace stableshard::adversary
