// Shared construction helpers for the concrete strategy translation units
// (uniform_random.cc, hotspot.cc, ...): touch-access specs, abort
// poisoning, and span selection. Internal to src/adversary — strategies
// outside the tree get the same behavior by composing public APIs.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "adversary/strategy.h"
#include "common/rng.h"
#include "txn/txn_factory.h"

namespace stableshard::adversary::internal {

/// Unsatisfiable condition marker: no balance reaches this threshold in any
/// workload we generate.
constexpr chain::Balance kImpossibleThreshold =
    std::numeric_limits<chain::Balance>::max() / 2;

inline txn::AccessSpec TouchSpec(AccountId account) {
  txn::AccessSpec spec;
  spec.account = account;
  spec.write = true;
  spec.action = {account, chain::ActionKind::kDeposit, 0};
  return spec;
}

inline void MaybePoison(std::vector<txn::AccessSpec>& accesses,
                        double probability, Rng& rng) {
  if (probability <= 0.0 || accesses.empty()) return;
  if (!rng.NextBool(probability)) return;
  txn::AccessSpec& spec = accesses.front();
  spec.has_condition = true;
  spec.condition = {spec.account, chain::CmpOp::kGe, kImpossibleThreshold};
}

inline std::uint32_t PickSpan(const RandomStrategyOptions& options, Rng& rng) {
  if (options.exact_k || options.max_shards_per_txn <= 1) {
    return options.max_shards_per_txn;
  }
  return static_cast<std::uint32_t>(
      1 + rng.NextBounded(options.max_shards_per_txn));
}

/// Options every registered builder derives from the validated SimConfig
/// fields (k, abort_probability) the same way; kept here so the per-strategy
/// translation units cannot drift apart.
inline RandomStrategyOptions OptionsFromConfig(std::uint32_t k,
                                               double abort_probability) {
  RandomStrategyOptions options;
  options.max_shards_per_txn = k;
  options.abort_probability = abort_probability;
  return options;
}

}  // namespace stableshard::adversary::internal
