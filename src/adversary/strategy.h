// Adversary workload strategies.
//
// The space of (rho, b)-admissible adversaries is over-exponential (paper
// Section 7), so like the paper we implement concrete "pessimistic"
// strategies. A Strategy proposes candidate transactions (home shard +
// account accesses); the Adversary (adversary.h) admits candidates subject
// to the token buckets and paces aggregate congestion at the target rate.
//
// Strategies are constructed through the self-registering StrategyRegistry
// (strategy_registry.h): each concrete class lives in its own translation
// unit (uniform_random.cc, hotspot.cc, pairwise_conflict.cc, local.cc,
// single_shard.cc, hot_destination.cc, diameter_span.cc) with a registrar
// at the bottom, so the engine builds workloads purely by name.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chain/account_map.h"
#include "common/rng.h"
#include "common/types.h"
#include "net/metric.h"
#include "txn/txn_factory.h"

namespace stableshard::adversary {

/// A candidate transaction before admission control.
struct Candidate {
  ShardId home = kInvalidShard;
  std::vector<txn::AccessSpec> accesses;

  /// Distinct owner shards of the accessed accounts (ascending).
  std::vector<ShardId> TouchedShards(const chain::AccountMap& map) const;
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Produce the next candidate for round `round`. Strategies are pull-based
  /// and may be called many times per round; return false only if the
  /// strategy has structurally nothing more to offer (most strategies always
  /// return true — pacing is the Adversary's job).
  virtual bool Next(Round round, Rng& rng, Candidate* out) = 0;

  /// Human-readable name for logs and CSV.
  virtual const char* name() const = 0;
};

/// Options shared by the random strategies.
struct RandomStrategyOptions {
  std::uint32_t max_shards_per_txn = 8;  ///< the paper's k
  /// If true each candidate accesses exactly k accounts; otherwise a uniform
  /// count in [1, k] (the paper caps at k; exact-k is the worst case).
  bool exact_k = true;
  /// Probability that a candidate carries an unsatisfiable condition and
  /// will abort at commit time (exercises the abort path; 0 for figures).
  double abort_probability = 0.0;
};

/// The paper's simulation workload: accounts chosen uniformly at random
/// (distinct), home shard chosen uniformly at random.
class UniformRandomStrategy final : public Strategy {
 public:
  UniformRandomStrategy(const chain::AccountMap& map,
                        RandomStrategyOptions options);
  bool Next(Round round, Rng& rng, Candidate* out) override;
  const char* name() const override { return "uniform_random"; }

 private:
  const chain::AccountMap* map_;
  RandomStrategyOptions options_;
};

/// Hotspot: every transaction writes a fixed account plus k-1 random ones;
/// the conflict graph is a clique on the hotspot — the worst serialization
/// case for any scheduler.
class HotspotStrategy final : public Strategy {
 public:
  HotspotStrategy(const chain::AccountMap& map, AccountId hotspot,
                  RandomStrategyOptions options);
  bool Next(Round round, Rng& rng, Candidate* out) override;
  const char* name() const override { return "hotspot"; }

 private:
  const chain::AccountMap* map_;
  AccountId hotspot_;
  RandomStrategyOptions options_;
};

/// Theorem 1's lower-bound construction: k+1 transactions T_1..T_{k+1}
/// where each pair (i, j) shares a dedicated shard; the group is mutually
/// conflicting yet adds only congestion 2 per used shard. Requires
/// s >= k(k+1)/2 (Case 1 of the proof); candidates cycle through the group.
class PairwiseConflictStrategy final : public Strategy {
 public:
  PairwiseConflictStrategy(const chain::AccountMap& map, std::uint32_t k);
  bool Next(Round round, Rng& rng, Candidate* out) override;
  const char* name() const override { return "pairwise_conflict"; }

  std::uint32_t group_size() const { return k_ + 1; }

 private:
  const chain::AccountMap* map_;
  std::uint32_t k_;
  std::uint32_t cursor_ = 0;
  // pair_shard_[{i,j}] = shard dedicated to transactions i and j.
  std::vector<std::vector<ShardId>> member_shards_;  // txn index -> shards
};

/// Locality-bounded strategy for the non-uniform model: home shard uniform,
/// accessed accounts owned by shards within `radius` of home (the paper's
/// d parameter). Falls back to the home shard's own accounts when the
/// neighborhood is account-free.
class LocalStrategy final : public Strategy {
 public:
  LocalStrategy(const chain::AccountMap& map, const net::ShardMetric& metric,
                Distance radius, RandomStrategyOptions options);
  bool Next(Round round, Rng& rng, Candidate* out) override;
  const char* name() const override { return "local"; }

 private:
  const chain::AccountMap* map_;
  const net::ShardMetric* metric_;
  Distance radius_;
  RandomStrategyOptions options_;
  // Precomputed: per home shard, the accounts reachable within radius.
  std::vector<std::vector<AccountId>> reachable_;
};

/// Single-shard transactions (k = 1): the fully parallel regime where the
/// sqrt(s) bound dominates.
class SingleShardStrategy final : public Strategy {
 public:
  explicit SingleShardStrategy(const chain::AccountMap& map);
  bool Next(Round round, Rng& rng, Candidate* out) override;
  const char* name() const override { return "single_shard"; }

 private:
  const chain::AccountMap* map_;
};

/// Zipfian hot-destination workload: accessed accounts (and the home shard)
/// are drawn from a Zipf(theta) distribution over the account-owning
/// shards, so net::ShardTraffic concentrates on the hottest shard without
/// the total serialization of the single-account hotspot clique. This is
/// the trigger scenario for leader-queue backpressure (ROADMAP): a
/// scheduler watching per-shard traffic shares sees one destination running
/// hot while the rest of the system stays parallel.
class HotDestinationStrategy final : public Strategy {
 public:
  /// `theta` >= 0 is the Zipf exponent (0 = uniform, ~1 = classic Zipf,
  /// larger = hotter). Rank 1 (the hottest destination) is the lowest-id
  /// shard that owns at least one account.
  HotDestinationStrategy(const chain::AccountMap& map, double theta,
                         RandomStrategyOptions options);
  bool Next(Round round, Rng& rng, Candidate* out) override;
  const char* name() const override { return "hot_destination"; }

  /// The rank-1 destination.
  ShardId hot_shard() const { return populated_.front(); }

 private:
  ShardId PickShard(Rng& rng) const;

  const chain::AccountMap* map_;
  RandomStrategyOptions options_;
  std::vector<ShardId> populated_;   ///< shards owning >= 1 account
  std::vector<double> cumulative_;   ///< Zipf prefix sums over populated_
};

/// Diameter-spanning transactions: every candidate touches accounts on both
/// endpoints of a farthest (account-owning) shard pair, so its x-span
/// covers the topology diameter. Under FDS this is the degenerate regime
/// measured in the large-s sweeps — every transaction lands in the
/// top-layer cluster, whose single leader sees ~99% of messages and whose
/// epochs span thousands of rounds — now reproducible as a first-class
/// workload instead of a bench-only configuration.
class DiameterSpanStrategy final : public Strategy {
 public:
  DiameterSpanStrategy(const chain::AccountMap& map,
                       const net::ShardMetric& metric,
                       RandomStrategyOptions options);
  bool Next(Round round, Rng& rng, Candidate* out) override;
  const char* name() const override { return "diameter_span"; }

  ShardId endpoint_a() const { return endpoint_a_; }
  ShardId endpoint_b() const { return endpoint_b_; }
  /// Distance between the endpoints (== Diameter() whenever some diametral
  /// pair has accounts on both ends; the farthest populated pair otherwise).
  Distance span() const;

 private:
  const chain::AccountMap* map_;
  const net::ShardMetric* metric_;
  RandomStrategyOptions options_;
  ShardId endpoint_a_ = 0;
  ShardId endpoint_b_ = 0;
  bool flip_ = false;  ///< alternate the home between the endpoints
};

}  // namespace stableshard::adversary
