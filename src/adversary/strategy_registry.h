// Strategy registry: name -> builder, so adversary workloads plug into the
// engine without the engine naming them — the exact mirror of
// core::SchedulerRegistry (see core/scheduler_registry.h).
//
// The space of (rho, b)-admissible adversaries is over-exponential (paper
// Section 7), so scenario coverage comes from concrete pluggable
// strategies. Each strategy translation unit self-registers at static-init
// time via a StrategyRegistrar (see the bottom of uniform_random.cc,
// hotspot.cc, ...). Simulation looks SimConfig::strategy up here, so
// adding a workload — in-tree or in an embedding application — requires
// zero engine edits: define the class, register a builder, set
// SimConfig::strategy to the new name. The core library is linked as a
// CMake OBJECT library precisely so these registrar objects are never
// dead-stripped.
//
// Builders receive the validated SimConfig plus a StrategyDeps bundle of
// engine-owned runtime services (account partition, shard metric, and a
// seeded Rng for construction-time randomness).
//
// Contract: Register must only run during static initialization or before
// any Simulation is constructed (the registry is not locked); duplicate
// names die. Build runs on the Simulation constructor's thread; the built
// Strategy is driven exclusively from serial engine phases (GenerateRound
// on the driving thread — possibly overlapped with the pipelined flush,
// which touches no adversary state), so strategies need no internal
// synchronization. Determinism obligation: a builder must derive all
// randomness from the deps it is handed (config seed / deps.rng), never
// from ambient state — the registry is what makes scheduler x strategy
// cells reproducible across processes in the matrix harness.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adversary/strategy.h"
#include "common/registry.h"
#include "common/rng.h"

namespace stableshard::core {
struct SimConfig;
}  // namespace stableshard::core

namespace stableshard::adversary {

/// Runtime services the engine hands to strategy builders.
struct StrategyDeps {
  const chain::AccountMap& accounts;
  const net::ShardMetric& metric;
  /// Engine-owned, already seeded from SimConfig::seed. None of the
  /// in-tree builders draw from it (their constructions are closed-form),
  /// but randomized workloads (e.g. a sampled hot set) may.
  Rng& rng;
};

/// The shared common::Registry supplies Register / Contains / Build /
/// Names; unknown names abort with the sorted list of known strategies.
class StrategyRegistry final
    : public common::Registry<Strategy, core::SimConfig, StrategyDeps> {
 public:
  /// The process-wide registry (static-init safe).
  static StrategyRegistry& Global();

 private:
  StrategyRegistry() : Registry("strategy") {}
};

/// Static-init helper: `const StrategyRegistrar r{"name", builder};`
struct StrategyRegistrar {
  StrategyRegistrar(const std::string& name,
                    StrategyRegistry::Builder builder) {
    StrategyRegistry::Global().Register(name, std::move(builder));
  }
};

}  // namespace stableshard::adversary
