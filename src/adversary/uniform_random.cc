// The paper's simulation workload (Section 7): accounts chosen uniformly at
// random (distinct), home shard chosen uniformly at random.
#include "adversary/strategy.h"
#include "adversary/strategy_internal.h"
#include "adversary/strategy_registry.h"
#include "common/check.h"
#include "core/config.h"

namespace stableshard::adversary {

UniformRandomStrategy::UniformRandomStrategy(const chain::AccountMap& map,
                                             RandomStrategyOptions options)
    : map_(&map), options_(options) {
  SSHARD_CHECK(options.max_shards_per_txn >= 1);
  SSHARD_CHECK(options.max_shards_per_txn <= map.account_count());
}

bool UniformRandomStrategy::Next(Round round, Rng& rng, Candidate* out) {
  (void)round;
  const std::uint32_t span = internal::PickSpan(options_, rng);
  const auto picks = rng.SampleWithoutReplacement(map_->account_count(), span);
  out->home = static_cast<ShardId>(rng.NextBounded(map_->shard_count()));
  out->accesses.clear();
  for (const auto account : picks) {
    out->accesses.push_back(internal::TouchSpec(account));
  }
  internal::MaybePoison(out->accesses, options_.abort_probability, rng);
  return true;
}

namespace {
const StrategyRegistrar kUniformRandomRegistrar{
    "uniform_random", [](const core::SimConfig& config, StrategyDeps& deps) {
      return std::unique_ptr<Strategy>(std::make_unique<UniformRandomStrategy>(
          deps.accounts,
          internal::OptionsFromConfig(config.k, config.abort_probability)));
    }};
}  // namespace

}  // namespace stableshard::adversary
