// Zipfian hot-destination workload (see strategy.h): destinations skew
// toward one shard without the single-account clique of `hotspot`, so the
// system stays parallel while net::ShardTraffic shows one destination
// running hot — the trigger scenario for leader-queue backpressure.
#include <algorithm>
#include <cmath>

#include "adversary/strategy.h"
#include "adversary/strategy_internal.h"
#include "adversary/strategy_registry.h"
#include "common/check.h"
#include "core/config.h"

namespace stableshard::adversary {

HotDestinationStrategy::HotDestinationStrategy(const chain::AccountMap& map,
                                               double theta,
                                               RandomStrategyOptions options)
    : map_(&map), options_(options) {
  SSHARD_CHECK(theta >= 0.0);
  // Zipf rank follows shard id among the account-owning shards (an
  // account-free shard can never be a destination): the lowest-id populated
  // shard is rank 1, the hottest.
  double total = 0.0;
  for (ShardId shard = 0; shard < map.shard_count(); ++shard) {
    if (map.AccountsOf(shard).empty()) continue;
    populated_.push_back(shard);
    total += 1.0 / std::pow(static_cast<double>(populated_.size()), theta);
    cumulative_.push_back(total);
  }
  SSHARD_CHECK(!populated_.empty());
}

ShardId HotDestinationStrategy::PickShard(Rng& rng) const {
  const double u = rng.NextDouble() * cumulative_.back();
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  const auto index =
      std::min(static_cast<std::size_t>(it - cumulative_.begin()),
               populated_.size() - 1);
  return populated_[index];
}

bool HotDestinationStrategy::Next(Round round, Rng& rng, Candidate* out) {
  (void)round;
  const std::uint32_t span = internal::PickSpan(options_, rng);
  out->home = PickShard(rng);
  out->accesses.clear();
  // Zipf-draw shards, then a uniform account on each; collect distinct
  // accounts with a bounded number of redraws — under heavy skew the hot
  // shard's accounts exhaust quickly and the candidate is simply narrower
  // (still >= 1 access: the first draw always lands).
  std::vector<AccountId> chosen;
  chosen.reserve(span);
  for (std::uint32_t attempt = 0; attempt < 4 * span && chosen.size() < span;
       ++attempt) {
    const auto& accounts = map_->AccountsOf(PickShard(rng));
    const AccountId account = accounts[rng.NextBounded(accounts.size())];
    if (std::find(chosen.begin(), chosen.end(), account) == chosen.end()) {
      chosen.push_back(account);
    }
  }
  for (const AccountId account : chosen) {
    out->accesses.push_back(internal::TouchSpec(account));
  }
  internal::MaybePoison(out->accesses, options_.abort_probability, rng);
  return true;
}

namespace {
const StrategyRegistrar kHotDestinationRegistrar{
    "hot_destination", [](const core::SimConfig& config, StrategyDeps& deps) {
      return std::unique_ptr<Strategy>(
          std::make_unique<HotDestinationStrategy>(
              deps.accounts, config.zipf_theta,
              internal::OptionsFromConfig(config.k,
                                          config.abort_probability)));
    }};
}  // namespace

}  // namespace stableshard::adversary
