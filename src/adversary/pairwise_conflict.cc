// Theorem 1's lower-bound construction: k+1 transactions T_1..T_{k+1}
// where each pair (i, j) shares a dedicated shard; the group is mutually
// conflicting yet adds only congestion 2 per used shard.
#include "adversary/strategy.h"
#include "adversary/strategy_internal.h"
#include "adversary/strategy_registry.h"
#include "common/check.h"
#include "core/config.h"

namespace stableshard::adversary {

PairwiseConflictStrategy::PairwiseConflictStrategy(
    const chain::AccountMap& map, std::uint32_t k)
    : map_(&map), k_(k) {
  SSHARD_CHECK(k >= 1);
  const std::uint64_t needed = static_cast<std::uint64_t>(k) * (k + 1) / 2;
  SSHARD_CHECK(needed <= map.shard_count() &&
               "Theorem 1 Case 1 needs s >= k(k+1)/2");
  // Enumerate the pairs {i, j}, i < j <= k, assigning shard p to the p-th
  // pair; transaction i uses the shards of every pair containing i.
  member_shards_.assign(k_ + 1, {});
  ShardId next_shard = 0;
  for (std::uint32_t i = 0; i <= k_; ++i) {
    for (std::uint32_t j = i + 1; j <= k_; ++j) {
      member_shards_[i].push_back(next_shard);
      member_shards_[j].push_back(next_shard);
      ++next_shard;
    }
  }
  for (const auto& shards : member_shards_) {
    SSHARD_CHECK(shards.size() == k_);
  }
}

bool PairwiseConflictStrategy::Next(Round round, Rng& rng, Candidate* out) {
  (void)round;
  (void)rng;
  const std::uint32_t member = cursor_;
  cursor_ = (cursor_ + 1) % (k_ + 1);
  out->home = member_shards_[member].front();
  out->accesses.clear();
  for (const ShardId shard : member_shards_[member]) {
    // Write the shard's first account so every pair of group members
    // conflicts on their dedicated shard's account.
    const auto& accounts = map_->AccountsOf(shard);
    SSHARD_CHECK(!accounts.empty());
    out->accesses.push_back(internal::TouchSpec(accounts.front()));
  }
  return true;
}

namespace {
const StrategyRegistrar kPairwiseConflictRegistrar{
    "pairwise_conflict",
    [](const core::SimConfig& config, StrategyDeps& deps) {
      return std::unique_ptr<Strategy>(
          std::make_unique<PairwiseConflictStrategy>(deps.accounts, config.k));
    }};
}  // namespace

}  // namespace stableshard::adversary
