#include "adversary/token_bucket.h"

#include <algorithm>

#include "common/check.h"

namespace stableshard::adversary {

TokenBucketArray::TokenBucketArray(ShardId shards, double rate,
                                   double burstiness)
    : rate_(rate), burstiness_(burstiness) {
  SSHARD_CHECK(shards >= 1);
  SSHARD_CHECK(rate > 0.0 && rate <= 1.0);
  SSHARD_CHECK(burstiness > 0.0);
  tokens_.assign(shards, burstiness);
}

void TokenBucketArray::Tick() {
  for (double& t : tokens_) {
    t = std::min(burstiness_, t + rate_);
  }
}

bool TokenBucketArray::CanConsume(const std::vector<ShardId>& shards) const {
  for (const ShardId shard : shards) {
    SSHARD_DCHECK(shard < tokens_.size());
    if (tokens_[shard] < 1.0) return false;
  }
  return true;
}

void TokenBucketArray::Consume(const std::vector<ShardId>& shards) {
  SSHARD_CHECK(CanConsume(shards));
  for (const ShardId shard : shards) {
    tokens_[shard] -= 1.0;
  }
}

double TokenBucketArray::MinTokens() const {
  return *std::min_element(tokens_.begin(), tokens_.end());
}

}  // namespace stableshard::adversary
