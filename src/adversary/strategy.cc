#include "adversary/strategy.h"

#include <algorithm>

namespace stableshard::adversary {

std::vector<ShardId> Candidate::TouchedShards(
    const chain::AccountMap& map) const {
  std::vector<ShardId> shards;
  shards.reserve(accesses.size());
  for (const auto& access : accesses) {
    shards.push_back(map.OwnerOf(access.account));
  }
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

}  // namespace stableshard::adversary
