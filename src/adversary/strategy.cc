#include "adversary/strategy.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace stableshard::adversary {

namespace {

// Unsatisfiable condition marker: no balance reaches this threshold in any
// workload we generate.
constexpr chain::Balance kImpossibleThreshold =
    std::numeric_limits<chain::Balance>::max() / 2;

txn::AccessSpec TouchSpec(AccountId account) {
  txn::AccessSpec spec;
  spec.account = account;
  spec.write = true;
  spec.action = {account, chain::ActionKind::kDeposit, 0};
  return spec;
}

void MaybePoison(std::vector<txn::AccessSpec>& accesses, double probability,
                 Rng& rng) {
  if (probability <= 0.0 || accesses.empty()) return;
  if (!rng.NextBool(probability)) return;
  txn::AccessSpec& spec = accesses.front();
  spec.has_condition = true;
  spec.condition = {spec.account, chain::CmpOp::kGe, kImpossibleThreshold};
}

std::uint32_t PickSpan(const RandomStrategyOptions& options, Rng& rng) {
  if (options.exact_k || options.max_shards_per_txn <= 1) {
    return options.max_shards_per_txn;
  }
  return static_cast<std::uint32_t>(
      1 + rng.NextBounded(options.max_shards_per_txn));
}

}  // namespace

std::vector<ShardId> Candidate::TouchedShards(
    const chain::AccountMap& map) const {
  std::vector<ShardId> shards;
  shards.reserve(accesses.size());
  for (const auto& access : accesses) {
    shards.push_back(map.OwnerOf(access.account));
  }
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

UniformRandomStrategy::UniformRandomStrategy(const chain::AccountMap& map,
                                             RandomStrategyOptions options)
    : map_(&map), options_(options) {
  SSHARD_CHECK(options.max_shards_per_txn >= 1);
  SSHARD_CHECK(options.max_shards_per_txn <= map.account_count());
}

bool UniformRandomStrategy::Next(Round round, Rng& rng, Candidate* out) {
  (void)round;
  const std::uint32_t span = PickSpan(options_, rng);
  const auto picks = rng.SampleWithoutReplacement(map_->account_count(), span);
  out->home = static_cast<ShardId>(rng.NextBounded(map_->shard_count()));
  out->accesses.clear();
  for (const auto account : picks) {
    out->accesses.push_back(TouchSpec(account));
  }
  MaybePoison(out->accesses, options_.abort_probability, rng);
  return true;
}

HotspotStrategy::HotspotStrategy(const chain::AccountMap& map,
                                 AccountId hotspot,
                                 RandomStrategyOptions options)
    : map_(&map), hotspot_(hotspot), options_(options) {
  SSHARD_CHECK(hotspot < map.account_count());
}

bool HotspotStrategy::Next(Round round, Rng& rng, Candidate* out) {
  (void)round;
  const std::uint32_t span = PickSpan(options_, rng);
  out->home = static_cast<ShardId>(rng.NextBounded(map_->shard_count()));
  out->accesses.clear();
  out->accesses.push_back(TouchSpec(hotspot_));
  if (span > 1) {
    // span-1 extra accounts distinct from the hotspot.
    const auto picks =
        rng.SampleWithoutReplacement(map_->account_count() - 1, span - 1);
    for (const auto raw : picks) {
      const AccountId account = raw >= hotspot_ ? raw + 1 : raw;
      out->accesses.push_back(TouchSpec(account));
    }
  }
  MaybePoison(out->accesses, options_.abort_probability, rng);
  return true;
}

PairwiseConflictStrategy::PairwiseConflictStrategy(
    const chain::AccountMap& map, std::uint32_t k)
    : map_(&map), k_(k) {
  SSHARD_CHECK(k >= 1);
  const std::uint64_t needed = static_cast<std::uint64_t>(k) * (k + 1) / 2;
  SSHARD_CHECK(needed <= map.shard_count() &&
               "Theorem 1 Case 1 needs s >= k(k+1)/2");
  // Enumerate the pairs {i, j}, i < j <= k, assigning shard p to the p-th
  // pair; transaction i uses the shards of every pair containing i.
  member_shards_.assign(k_ + 1, {});
  ShardId next_shard = 0;
  for (std::uint32_t i = 0; i <= k_; ++i) {
    for (std::uint32_t j = i + 1; j <= k_; ++j) {
      member_shards_[i].push_back(next_shard);
      member_shards_[j].push_back(next_shard);
      ++next_shard;
    }
  }
  for (const auto& shards : member_shards_) {
    SSHARD_CHECK(shards.size() == k_);
  }
}

bool PairwiseConflictStrategy::Next(Round round, Rng& rng, Candidate* out) {
  (void)round;
  (void)rng;
  const std::uint32_t member = cursor_;
  cursor_ = (cursor_ + 1) % (k_ + 1);
  out->home = member_shards_[member].front();
  out->accesses.clear();
  for (const ShardId shard : member_shards_[member]) {
    // Write the shard's first account so every pair of group members
    // conflicts on their dedicated shard's account.
    const auto& accounts = map_->AccountsOf(shard);
    SSHARD_CHECK(!accounts.empty());
    out->accesses.push_back(TouchSpec(accounts.front()));
  }
  return true;
}

LocalStrategy::LocalStrategy(const chain::AccountMap& map,
                             const net::ShardMetric& metric, Distance radius,
                             RandomStrategyOptions options)
    : map_(&map), metric_(&metric), radius_(radius), options_(options) {
  SSHARD_CHECK(map.shard_count() == metric.shard_count());
  reachable_.resize(map.shard_count());
  for (ShardId home = 0; home < map.shard_count(); ++home) {
    for (const ShardId shard : metric.Neighborhood(home, radius)) {
      const auto& accounts = map.AccountsOf(shard);
      reachable_[home].insert(reachable_[home].end(), accounts.begin(),
                              accounts.end());
    }
    if (reachable_[home].empty()) {
      // Degenerate map: fall back to any account so the strategy stays
      // productive (the candidate still has a valid home).
      reachable_[home].push_back(0);
    }
  }
}

bool LocalStrategy::Next(Round round, Rng& rng, Candidate* out) {
  (void)round;
  out->home = static_cast<ShardId>(rng.NextBounded(map_->shard_count()));
  const auto& pool = reachable_[out->home];
  const std::uint32_t span = std::min<std::uint32_t>(
      PickSpan(options_, rng), static_cast<std::uint32_t>(pool.size()));
  const auto picks = rng.SampleWithoutReplacement(pool.size(), span);
  out->accesses.clear();
  for (const auto index : picks) {
    out->accesses.push_back(TouchSpec(pool[index]));
  }
  MaybePoison(out->accesses, options_.abort_probability, rng);
  return true;
}

SingleShardStrategy::SingleShardStrategy(const chain::AccountMap& map)
    : map_(&map) {}

bool SingleShardStrategy::Next(Round round, Rng& rng, Candidate* out) {
  (void)round;
  const auto account = rng.NextBounded(map_->account_count());
  out->home = map_->OwnerOf(account);
  out->accesses.clear();
  out->accesses.push_back(TouchSpec(account));
  return true;
}

}  // namespace stableshard::adversary
