#include "adversary/adversary.h"

#include "common/check.h"

namespace stableshard::adversary {

Adversary::Adversary(const AdversaryConfig& config,
                     const chain::AccountMap& map,
                     std::unique_ptr<Strategy> strategy)
    : config_(config),
      map_(&map),
      strategy_(std::move(strategy)),
      buckets_(map.shard_count(), config.rho, config.burstiness),
      factory_(map),
      rng_(config.seed) {
  SSHARD_CHECK(strategy_ != nullptr);
}

bool Adversary::TryInjectOne(Round round,
                             std::vector<txn::Transaction>* out) {
  for (std::uint32_t attempt = 0; attempt < config_.max_blocked_attempts;
       ++attempt) {
    Candidate candidate;
    if (!strategy_->Next(round, rng_, &candidate)) return false;
    const std::vector<ShardId> touched = candidate.TouchedShards(*map_);
    SSHARD_CHECK(!touched.empty());
    if (!buckets_.CanConsume(touched)) {
      ++stats_.denied;
      continue;  // redraw — another candidate may fit the remaining tokens
    }
    buckets_.Consume(touched);
    if (recorder_) recorder_(round, candidate.home, candidate.accesses);
    out->push_back(factory_.Make(candidate.home, round, candidate.accesses));
    ++stats_.injected;
    stats_.congestion += touched.size();
    return true;
  }
  return false;
}

void Adversary::GenerateRound(Round round,
                              std::vector<txn::Transaction>& out) {
  out.clear();
  if (round > 0) buckets_.Tick();

  // One-time burst of b transactions (paper Section 7: burstiness is
  // "introduced within only one epoch" — the queues start loaded). The
  // token buckets still police the per-shard window constraint: a burst of
  // b transactions adds at most b congestion to any shard, so it is always
  // admissible from full buckets.
  if (!burst_done_ && config_.burst_round != kNoRound &&
      round >= config_.burst_round) {
    burst_done_ = true;
    const auto burst_target =
        static_cast<std::uint64_t>(config_.burstiness);
    for (std::uint64_t i = 0; i < burst_target; ++i) {
      if (!TryInjectOne(round, &out)) break;
    }
    stats_.burst_injected = stats_.injected;
    return;
  }

  // Steady stream: pace aggregate congestion at rho per shard per round,
  // i.e. rho * s congestion units per round across the system.
  pacing_budget_ += config_.rho * static_cast<double>(map_->shard_count());
  while (pacing_budget_ >= 1.0) {
    const std::uint64_t before = stats_.congestion;
    if (!TryInjectOne(round, &out)) break;
    pacing_budget_ -= static_cast<double>(stats_.congestion - before);
  }
  // Do not bank unlimited budget across blocked periods: the buckets are
  // the real constraint, the budget only shapes the average rate.
  const double cap = 2.0 * static_cast<double>(map_->shard_count());
  if (pacing_budget_ > cap) pacing_budget_ = cap;
}

}  // namespace stableshard::adversary
