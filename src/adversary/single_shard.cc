// Single-shard transactions (k = 1): the fully parallel regime where the
// sqrt(s) bound dominates.
#include "adversary/strategy.h"
#include "adversary/strategy_internal.h"
#include "adversary/strategy_registry.h"
#include "core/config.h"

namespace stableshard::adversary {

SingleShardStrategy::SingleShardStrategy(const chain::AccountMap& map)
    : map_(&map) {}

bool SingleShardStrategy::Next(Round round, Rng& rng, Candidate* out) {
  (void)round;
  const auto account = rng.NextBounded(map_->account_count());
  out->home = map_->OwnerOf(account);
  out->accesses.clear();
  out->accesses.push_back(internal::TouchSpec(account));
  return true;
}

namespace {
const StrategyRegistrar kSingleShardRegistrar{
    "single_shard", [](const core::SimConfig& config, StrategyDeps& deps) {
      (void)config;
      return std::unique_ptr<Strategy>(
          std::make_unique<SingleShardStrategy>(deps.accounts));
    }};
}  // namespace

}  // namespace stableshard::adversary
