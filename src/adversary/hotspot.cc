// Hotspot: every transaction writes a fixed account plus k-1 random ones;
// the conflict graph is a clique on the hotspot — the worst serialization
// case for any scheduler.
#include "adversary/strategy.h"
#include "adversary/strategy_internal.h"
#include "adversary/strategy_registry.h"
#include "common/check.h"
#include "core/config.h"

namespace stableshard::adversary {

HotspotStrategy::HotspotStrategy(const chain::AccountMap& map,
                                 AccountId hotspot,
                                 RandomStrategyOptions options)
    : map_(&map), hotspot_(hotspot), options_(options) {
  SSHARD_CHECK(hotspot < map.account_count());
}

bool HotspotStrategy::Next(Round round, Rng& rng, Candidate* out) {
  (void)round;
  const std::uint32_t span = internal::PickSpan(options_, rng);
  out->home = static_cast<ShardId>(rng.NextBounded(map_->shard_count()));
  out->accesses.clear();
  out->accesses.push_back(internal::TouchSpec(hotspot_));
  if (span > 1) {
    // span-1 extra accounts distinct from the hotspot.
    const auto picks =
        rng.SampleWithoutReplacement(map_->account_count() - 1, span - 1);
    for (const auto raw : picks) {
      const AccountId account = raw >= hotspot_ ? raw + 1 : raw;
      out->accesses.push_back(internal::TouchSpec(account));
    }
  }
  internal::MaybePoison(out->accesses, options_.abort_probability, rng);
  return true;
}

namespace {
const StrategyRegistrar kHotspotRegistrar{
    "hotspot", [](const core::SimConfig& config, StrategyDeps& deps) {
      return std::unique_ptr<Strategy>(std::make_unique<HotspotStrategy>(
          deps.accounts, /*hotspot=*/0,
          internal::OptionsFromConfig(config.k, config.abort_probability)));
    }};
}  // namespace

}  // namespace stableshard::adversary
