// The (rho, b)-bounded adversarial transaction generator.
//
// Combines a workload Strategy with the TokenBucketArray admission control:
// the adversary injects as much congestion as the (rho, b) constraint
// allows, following the "pessimistic" pattern of the paper's simulation —
// one large burst (queues start loaded) and then a steady stream at rate
// rho that tries to keep the system from draining.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "adversary/strategy.h"
#include "adversary/token_bucket.h"
#include "chain/account_map.h"
#include "common/rng.h"
#include "common/types.h"
#include "txn/transaction.h"
#include "txn/txn_factory.h"

namespace stableshard::adversary {

struct AdversaryConfig {
  double rho = 0.1;        ///< injection rate, 0 < rho <= 1
  double burstiness = 1;   ///< b > 0
  /// Round at which the single burst is released (kNoRound = no burst).
  /// The paper's simulation introduces burstiness "within only one epoch";
  /// releasing at round 0 pre-loads the queues.
  Round burst_round = 0;
  /// How many consecutive token-blocked candidates end the round's
  /// injection loop (a blocked candidate is re-drawn, not queued).
  std::uint32_t max_blocked_attempts = 16;
  std::uint64_t seed = 42;
};

struct AdversaryStats {
  std::uint64_t injected = 0;          ///< admitted transactions
  std::uint64_t congestion = 0;        ///< total shard-touches admitted
  std::uint64_t denied = 0;            ///< candidates blocked by buckets
  std::uint64_t burst_injected = 0;    ///< transactions in the burst
};

class Adversary {
 public:
  Adversary(const AdversaryConfig& config, const chain::AccountMap& map,
            std::unique_ptr<Strategy> strategy);

  /// Generate this round's injections into `out` (cleared first). Must be
  /// called once per round in increasing round order. Touches only
  /// adversary-owned state (strategy, buckets, factory, rng), so the engine
  /// may overlap it with a scheduler's pipelined flush of the previous
  /// round. Hot paths pass a reused buffer; the allocating overload below
  /// is the convenience for tests.
  void GenerateRound(Round round, std::vector<txn::Transaction>& out);

  std::vector<txn::Transaction> GenerateRound(Round round) {
    std::vector<txn::Transaction> injected;
    GenerateRound(round, injected);
    return injected;
  }

  const AdversaryStats& stats() const { return stats_; }
  const TokenBucketArray& buckets() const { return buckets_; }
  const Strategy& strategy() const { return *strategy_; }
  TxnId next_txn_id() const { return factory_.created(); }

  /// Optional per-admission hook (round, home, account accesses), fired in
  /// injection order from the same serial phase GenerateRound runs in —
  /// the engine's trace recording feed (traffic::TraceWriter). Specs, not
  /// built Transactions: only the spec preserves the access order a
  /// bit-identical replay needs.
  using InjectionRecorder = std::function<void(
      Round, ShardId, const std::vector<txn::AccessSpec>&)>;
  void set_recorder(InjectionRecorder recorder) {
    recorder_ = std::move(recorder);
  }

 private:
  /// Try to admit one candidate; returns true if injected.
  bool TryInjectOne(Round round, std::vector<txn::Transaction>* out);

  AdversaryConfig config_;
  const chain::AccountMap* map_;
  std::unique_ptr<Strategy> strategy_;
  TokenBucketArray buckets_;
  txn::TxnFactory factory_;
  Rng rng_;
  InjectionRecorder recorder_;
  double pacing_budget_ = 0.0;  ///< accumulated congestion budget
  bool burst_done_ = false;
  AdversaryStats stats_;
};

}  // namespace stableshard::adversary
