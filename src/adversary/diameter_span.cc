// Diameter-spanning workload (see strategy.h): every transaction anchors an
// account on each endpoint of a farthest account-owning shard pair,
// reproducing the FDS top-layer degeneration (every transaction's span
// covers the hierarchy's top cluster) as a registered first-class scenario.
#include <algorithm>

#include "adversary/strategy.h"
#include "adversary/strategy_internal.h"
#include "adversary/strategy_registry.h"
#include "common/check.h"
#include "core/config.h"

namespace stableshard::adversary {

DiameterSpanStrategy::DiameterSpanStrategy(const chain::AccountMap& map,
                                           const net::ShardMetric& metric,
                                           RandomStrategyOptions options)
    : map_(&map), metric_(&metric), options_(options) {
  SSHARD_CHECK(map.shard_count() == metric.shard_count());
  // Farthest pair among account-owning shards (an account-free shard cannot
  // anchor an access). One O(populated^2) scan at construction, cut short
  // as soon as a pair realizes the metric diameter — immediately for the
  // closed-form topologies, whose extreme shards come first.
  std::vector<ShardId> populated;
  for (ShardId shard = 0; shard < map.shard_count(); ++shard) {
    if (!map.AccountsOf(shard).empty()) populated.push_back(shard);
  }
  SSHARD_CHECK(!populated.empty());
  endpoint_a_ = endpoint_b_ = populated.front();
  Distance best = 0;
  const Distance diameter = metric.Diameter();
  for (std::size_t i = 0; i < populated.size() && best < diameter; ++i) {
    for (std::size_t j = i + 1; j < populated.size(); ++j) {
      const Distance d = metric.distance(populated[i], populated[j]);
      if (d > best) {
        best = d;
        endpoint_a_ = populated[i];
        endpoint_b_ = populated[j];
        if (best == diameter) break;
      }
    }
  }
  // Anchoring both endpoints needs candidates two shards wide: k = 1
  // cannot span a diameter (use single_shard for that regime).
  SSHARD_CHECK((options.max_shards_per_txn >= 2 ||
                endpoint_a_ == endpoint_b_) &&
               "diameter_span needs k >= 2");
}

Distance DiameterSpanStrategy::span() const {
  return metric_->distance(endpoint_a_, endpoint_b_);
}

bool DiameterSpanStrategy::Next(Round round, Rng& rng, Candidate* out) {
  (void)round;
  // Alternate the home between the endpoints so both ends inject.
  out->home = flip_ ? endpoint_b_ : endpoint_a_;
  flip_ = !flip_;
  out->accesses.clear();

  std::vector<AccountId> chosen;
  const auto& a_accounts = map_->AccountsOf(endpoint_a_);
  chosen.push_back(a_accounts[rng.NextBounded(a_accounts.size())]);
  if (endpoint_b_ != endpoint_a_) {
    // Distinct shards own disjoint accounts, so no dedup needed here.
    const auto& b_accounts = map_->AccountsOf(endpoint_b_);
    chosen.push_back(b_accounts[rng.NextBounded(b_accounts.size())]);
  }

  // Pad with uniform-random distinct accounts up to the drawn span (the
  // anchors already realize the diameter; the padding adds conflict mass).
  const std::uint32_t span =
      std::max(internal::PickSpan(options_, rng),
               static_cast<std::uint32_t>(chosen.size()));
  for (std::uint32_t attempt = 0; attempt < 4 * span && chosen.size() < span;
       ++attempt) {
    const auto account =
        static_cast<AccountId>(rng.NextBounded(map_->account_count()));
    if (std::find(chosen.begin(), chosen.end(), account) == chosen.end()) {
      chosen.push_back(account);
    }
  }
  for (const AccountId account : chosen) {
    out->accesses.push_back(internal::TouchSpec(account));
  }
  internal::MaybePoison(out->accesses, options_.abort_probability, rng);
  return true;
}

namespace {
const StrategyRegistrar kDiameterSpanRegistrar{
    "diameter_span", [](const core::SimConfig& config, StrategyDeps& deps) {
      return std::unique_ptr<Strategy>(std::make_unique<DiameterSpanStrategy>(
          deps.accounts, deps.metric,
          internal::OptionsFromConfig(config.k, config.abort_probability)));
    }};
}  // namespace

}  // namespace stableshard::adversary
