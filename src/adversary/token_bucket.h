// Leaky-bucket enforcement of the (rho, b) adversarial injection model.
//
// Section 3: "the congestion on each shard within a contiguous time interval
// of duration t > 0 is limited to at most rho*t + b transactions per shard".
// A per-shard token bucket with capacity b, refill rho per round, and one
// token consumed per injected transaction touching the shard enforces
// exactly this: at any instant tokens <= b, so injections in any window of
// length t are bounded by b + rho*t. Buckets start full, modelling the
// adversary's ability to burst immediately.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace stableshard::adversary {

class TokenBucketArray {
 public:
  /// One bucket per shard; capacity `burstiness` (b > 0), refill `rate`
  /// (rho in (0, 1]) per round. Buckets start full.
  TokenBucketArray(ShardId shards, double rate, double burstiness);

  /// Advance one round: every bucket refills by rate, capped at capacity.
  void Tick();

  /// True iff every shard in `shards` currently holds >= 1 token.
  bool CanConsume(const std::vector<ShardId>& shards) const;

  /// Consume one token from each listed shard; caller must have checked
  /// CanConsume (aborts otherwise — over-injection is an adversary bug).
  void Consume(const std::vector<ShardId>& shards);

  double tokens(ShardId shard) const { return tokens_[shard]; }
  double rate() const { return rate_; }
  double burstiness() const { return burstiness_; }
  ShardId shard_count() const { return static_cast<ShardId>(tokens_.size()); }

  /// Smallest token count across all shards (burst headroom probe).
  double MinTokens() const;

 private:
  double rate_;
  double burstiness_;
  std::vector<double> tokens_;
};

}  // namespace stableshard::adversary
