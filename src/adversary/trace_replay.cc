// trace_replay: re-emit a recorded trace's transactions in file order.
//
// Shape only — timing lives in traffic::TraceArrivals, built from the same
// file by the engine, which pulls exactly as many candidates per round as
// the trace lists arrivals. Together they reproduce a recorded injection
// stream bit-identically: same accesses in the same order, same home
// shards, same monotonic transaction ids (the open-loop factory assigns
// them in pull order).
//
// Registered as "trace_replay"; requires SimConfig::trace (the CLIs
// validate via traffic::ValidateTraceFile and exit 2, the builder
// re-checks as an aborting invariant).
#include <memory>
#include <utility>

#include "adversary/strategy.h"
#include "adversary/strategy_internal.h"
#include "adversary/strategy_registry.h"
#include "common/check.h"
#include "core/config.h"
#include "traffic/trace.h"

namespace stableshard::adversary {

namespace {

class TraceReplayStrategy final : public Strategy {
 public:
  explicit TraceReplayStrategy(traffic::Trace trace)
      : trace_(std::move(trace)) {}

  bool Next(Round round, Rng& rng, Candidate* out) override {
    (void)round;  // consumption order is the file order, not re-timed
    (void)rng;    // a replay draws nothing — determinism is the point
    if (cursor_ >= trace_.records.size()) return false;
    const traffic::TraceRecord& record = trace_.records[cursor_++];
    out->home = record.home;
    out->accesses.clear();
    out->accesses.reserve(record.accesses.size());
    for (const traffic::TraceAccess& access : record.accesses) {
      txn::AccessSpec spec;
      spec.account = access.account;
      spec.write = true;
      spec.action = {access.account, chain::ActionKind::kDeposit,
                     record.amount};
      if (access.poisoned) {
        spec.has_condition = true;
        spec.condition = {access.account, chain::CmpOp::kGe,
                          internal::kImpossibleThreshold};
      }
      out->accesses.push_back(spec);
    }
    return true;
  }

  const char* name() const override { return "trace_replay"; }

 private:
  traffic::Trace trace_;
  std::size_t cursor_ = 0;
};

const StrategyRegistrar registrar{
    "trace_replay",
    [](const core::SimConfig& config, StrategyDeps& deps) {
      (void)deps;
      SSHARD_CHECK(!config.trace.empty() &&
                   "trace_replay requires SimConfig::trace");
      traffic::Trace trace;
      std::string error;
      SSHARD_CHECK(traffic::LoadTraceFile(config.trace, &trace, &error) &&
                   "unparseable SimConfig::trace file");
      SSHARD_CHECK(trace.shards == config.shards &&
                   trace.accounts == config.accounts &&
                   "trace recorded for a different shard/account layout");
      return std::unique_ptr<Strategy>(
          std::make_unique<TraceReplayStrategy>(std::move(trace)));
    }};

}  // namespace
}  // namespace stableshard::adversary
