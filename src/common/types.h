// Core identifier and scalar types shared by every StableShard subsystem.
//
// The paper's model (Section 3): a system of `n` nodes partitioned into `s`
// shards S_1..S_s; a set of shared accounts (objects) O partitioned into
// O_1..O_s, one subset owned by each shard; synchronous time measured in
// *rounds*, where one round is the time for intra-shard PBFT consensus and
// equals the unit of inter-shard distance.
#pragma once

#include <cstdint>
#include <limits>

namespace stableshard {

/// Index of a shard, 0-based (the paper uses 1-based S_1..S_s).
using ShardId = std::uint32_t;

/// Index of a physical node inside the system (0-based, global).
using NodeId = std::uint32_t;

/// Identifier of a shared account (object). Accounts are statically
/// partitioned across shards; see chain::AccountMap.
using AccountId = std::uint64_t;

/// Globally unique transaction identifier, assigned at injection time in
/// strictly increasing order (doubles as the injection tiebreaker).
using TxnId = std::uint64_t;

/// Synchronous round counter. Round 0 is the first simulated round.
using Round = std::uint64_t;

/// Vertex color produced by conflict-graph coloring (Phase 2 of both
/// schedulers). Colors are 0-based internally; the paper's "color z is
/// processed at round 4z" maps to offset 4*color.
using Color = std::uint32_t;

/// Distance between two shards in rounds (edge weight of the clique G_s).
using Distance = std::uint32_t;

/// Sentinel values.
inline constexpr ShardId kInvalidShard = std::numeric_limits<ShardId>::max();
inline constexpr TxnId kInvalidTxn = std::numeric_limits<TxnId>::max();
inline constexpr Round kNoRound = std::numeric_limits<Round>::max();

}  // namespace stableshard
