// Bump allocator for per-round scratch memory.
//
// The Phase-2 hot path (conflict view assembly + coloring) used to allocate
// and free the same few vectors every round. Arena replaces that churn with
// a bump pointer: allocations are O(1) pointer arithmetic into a chunk, and
// the whole arena is recycled with one Reset() call at the start of the
// next round. Nothing is ever destroyed individually — only trivially
// destructible payloads (indices, pointers, bitset words) may live here.
//
// Shrinking follows the PR 4 outbox lane policy (net::OutboxSet::RetireLane):
// a decayed high-water mark tracks the recent per-round peak (25% decay per
// round, floored at the current round's usage), and when reserved capacity
// overshoots 4x the reserve target (mark + mark/2) — and exceeds the shrink
// floor — the chunks are released and one right-sized chunk is re-reserved.
// Reset() also coalesces multi-chunk rounds into a single chunk, so the
// steady state is exactly one chunk and zero allocator traffic per round.
//
// Not thread-safe: each Arena is owned by one shard's step (FDS keeps one
// per shard) or by a serial phase (BDS resets its leader arena in
// BeginRound). Reset() invalidates every pointer handed out since the last
// Reset(); arena-backed containers must not outlive the round.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace stableshard::common {

/// Snapshot of one arena's footprint, in the style of net::LaneMemory.
/// Aggregated across shards by operator+= (sums, including high-water:
/// the aggregate answers "how much scratch does this scheduler hold").
struct ArenaMemoryStats {
  std::uint64_t reserved_bytes = 0;    ///< sum of chunk capacities
  std::uint64_t used_bytes = 0;        ///< handed out since last Reset()
  std::uint64_t high_water_bytes = 0;  ///< decayed per-round peak
  std::uint64_t chunks = 0;
  std::uint64_t resets = 0;

  ArenaMemoryStats& operator+=(const ArenaMemoryStats& other) {
    reserved_bytes += other.reserved_bytes;
    used_bytes += other.used_bytes;
    high_water_bytes += other.high_water_bytes;
    chunks += other.chunks;
    resets += other.resets;
    return *this;
  }
};

class Arena {
 public:
  static constexpr std::size_t kMinChunkBytes = 4096;
  /// Below this reserved size the arena never shrinks (mirrors the outbox
  /// kShrinkFloor: releasing tiny buffers just to re-grow them thrashes).
  static constexpr std::size_t kShrinkFloorBytes = 64 * 1024;

  explicit Arena(std::size_t initial_bytes = 0) {
    if (initial_bytes > 0) AddChunk(std::max(initial_bytes, kMinChunkBytes));
  }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Returns `bytes` of storage aligned to `align` (power of two). The
  /// memory is uninitialized and lives until the next Reset().
  void* Allocate(std::size_t bytes, std::size_t align) {
    SSHARD_DCHECK(align != 0 && (align & (align - 1)) == 0);
    if (bytes == 0) bytes = 1;
    if (chunk_ >= chunks_.size() ||
        AlignUp(cursor_, align) + bytes > chunks_[chunk_].capacity) {
      NextChunk(bytes + align);
    }
    const std::size_t offset = AlignUp(cursor_, align);
    used_ += (offset - cursor_) + bytes;  // padding counts toward the mark
    cursor_ = offset + bytes;
    return chunks_[chunk_].data.get() + offset;
  }

  /// Typed array of `count` default-uninitialized Ts. T must be trivially
  /// destructible — Reset() never runs destructors.
  template <typename T>
  T* AllocateArray(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Recycles the arena for the next round: rewinds the bump pointer,
  /// updates the decayed high-water mark, and applies the outbox-style
  /// shrink / coalesce policy. Invalidates all outstanding allocations.
  void Reset() {
    ++resets_;
    high_water_ = std::max<std::uint64_t>(used_, high_water_ - high_water_ / 4);
    const std::uint64_t target = high_water_ + high_water_ / 2;
    const std::uint64_t floor =
        std::max<std::uint64_t>(4 * target, kShrinkFloorBytes);
    if ((reserved() > floor && reserved() > target) || chunks_.size() > 1) {
      chunks_.clear();
      if (target > 0) AddChunk(static_cast<std::size_t>(target));
    }
    chunk_ = 0;
    cursor_ = 0;
    used_ = 0;
  }

  ArenaMemoryStats memory() const {
    ArenaMemoryStats stats;
    stats.reserved_bytes = reserved();
    stats.used_bytes = used_;
    stats.high_water_bytes = high_water_;
    stats.chunks = chunks_.size();
    stats.resets = resets_;
    return stats;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
  };

  static std::size_t AlignUp(std::size_t value, std::size_t align) {
    return (value + align - 1) & ~(align - 1);
  }

  std::uint64_t reserved() const {
    std::uint64_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.capacity;
    return total;
  }

  void AddChunk(std::size_t capacity) {
    capacity = std::max(capacity, kMinChunkBytes);
    chunks_.push_back({std::make_unique<std::byte[]>(capacity), capacity});
  }

  /// Opens a fresh chunk able to hold at least `min_bytes`. Chunks double
  /// so a round that outgrows its reservation settles in O(log) appends;
  /// Reset() coalesces them back into one.
  void NextChunk(std::size_t min_bytes) {
    std::size_t capacity =
        chunks_.empty() ? kMinChunkBytes : chunks_.back().capacity * 2;
    capacity = std::max(capacity, min_bytes);
    AddChunk(capacity);
    chunk_ = chunks_.size() - 1;
    cursor_ = 0;
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;   ///< index of the chunk being bumped
  std::size_t cursor_ = 0;  ///< offset of the next free byte in chunk_
  std::uint64_t used_ = 0;
  std::uint64_t high_water_ = 0;
  std::uint64_t resets_ = 0;
};

/// Minimal std::allocator adapter so standard containers can use an Arena
/// for round-scoped scratch. deallocate() is a no-op — memory returns to
/// the arena only at Reset(), so such containers must die with the round.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t count) { return arena_->AllocateArray<T>(count); }
  void deallocate(T*, std::size_t) {}

  Arena* arena() const { return arena_; }
  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }

 private:
  Arena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace stableshard::common
