// Small integer-math helpers used throughout the scheduler analysis code.
//
// The paper's bounds are expressed with ceil(sqrt(s)), ceil(log2 D) and
// min{k, ceil(sqrt(s))}; these helpers compute them exactly on integers
// (no floating-point round-off, which matters for the bound-check tests).
#pragma once

#include <cstdint>

#include "common/check.h"

namespace stableshard {

/// Exact integer ceil(sqrt(x)).
constexpr std::uint64_t CeilSqrt(std::uint64_t x) {
  if (x == 0) return 0;
  std::uint64_t lo = 1, hi = x;
  // Invariant: lo*lo might be < x; shrink to the smallest r with r*r >= x.
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (mid >= UINT32_MAX || mid * mid >= x) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

/// Exact integer floor(sqrt(x)).
constexpr std::uint64_t FloorSqrt(std::uint64_t x) {
  const std::uint64_t c = CeilSqrt(x);
  return (c * c == x) ? c : c - 1;
}

/// floor(log2(x)) for x >= 1.
constexpr std::uint32_t FloorLog2(std::uint64_t x) {
  SSHARD_CHECK(x >= 1);
  std::uint32_t r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// ceil(log2(x)) for x >= 1 (0 for x == 1).
constexpr std::uint32_t CeilLog2(std::uint64_t x) {
  SSHARD_CHECK(x >= 1);
  const std::uint32_t f = FloorLog2(x);
  return ((std::uint64_t{1} << f) == x) ? f : f + 1;
}

/// ceil(a / b) for b > 0.
constexpr std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) {
  SSHARD_CHECK(b > 0);
  return (a + b - 1) / b;
}

/// The paper's admissible-rate bound for BDS (Lemma 1 / Theorem 2):
/// rho <= max{ 1/(18k), 1/(18*ceil(sqrt(s))) }.
inline double BdsStableRateBound(std::uint64_t k, std::uint64_t s) {
  SSHARD_CHECK(k >= 1 && s >= 1);
  const double byK = 1.0 / (18.0 * static_cast<double>(k));
  const double byS = 1.0 / (18.0 * static_cast<double>(CeilSqrt(s)));
  return byK > byS ? byK : byS;
}

/// The absolute stability upper bound of Theorem 1:
/// rho <= max{ 2/(k+1), 2/floor(sqrt(2s)) }.
inline double AbsoluteStabilityUpperBound(std::uint64_t k, std::uint64_t s) {
  SSHARD_CHECK(k >= 1 && s >= 1);
  const double byK = 2.0 / (static_cast<double>(k) + 1.0);
  const std::uint64_t root = FloorSqrt(2 * s);
  const double byS = root == 0 ? 1.0 : 2.0 / static_cast<double>(root);
  const double bound = byK > byS ? byK : byS;
  return bound < 1.0 ? bound : 1.0;
}

/// min{k, ceil(sqrt(s))}: the factor appearing in both latency bounds.
constexpr std::uint64_t MinKSqrtS(std::uint64_t k, std::uint64_t s) {
  const std::uint64_t rs = CeilSqrt(s);
  return k < rs ? k : rs;
}

}  // namespace stableshard
