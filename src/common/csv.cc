#include "common/csv.h"

namespace stableshard {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path) {
  if (!out_) return;
  bool first = true;
  for (const auto& column : header) {
    if (!first) out_ << ',';
    first = false;
    out_ << column;
  }
  out_ << '\n';
}

}  // namespace stableshard
