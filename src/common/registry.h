// Generic self-registration machinery shared by core::SchedulerRegistry and
// adversary::StrategyRegistry: name -> builder over a validated config plus
// a bundle of engine-owned runtime services. One implementation keeps the
// two registries exact mirrors by construction instead of by discipline.
//
// Registration happens at static-init time from per-product translation
// units; the process-wide instance lives behind a function-local static in
// each concrete registry's Global() (never here), so registrars in other
// translation units cannot observe an uninitialized registry. The library
// is linked as a CMake OBJECT library so registrar objects are never
// dead-stripped.
#pragma once

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace stableshard::common {

template <typename Product, typename Config, typename Deps>
class Registry {
 public:
  using Builder =
      std::function<std::unique_ptr<Product>(const Config&, Deps&)>;

  /// `kind` names the product in error messages ("scheduler", "strategy").
  explicit Registry(const char* kind) : kind_(kind) {}

  /// Register `builder` under `name`; aborts on duplicates.
  void Register(const std::string& name, Builder builder) {
    const auto [it, inserted] = builders_.emplace(name, std::move(builder));
    (void)it;
    SSHARD_CHECK(inserted && "registry name registered twice");
  }

  bool Contains(const std::string& name) const {
    return builders_.find(name) != builders_.end();
  }

  /// Build the product registered under `name`; aborts with the sorted
  /// list of known names if `name` is unknown.
  std::unique_ptr<Product> Build(const std::string& name,
                                 const Config& config, Deps& deps) const {
    const auto it = builders_.find(name);
    if (it == builders_.end()) {
      std::fprintf(stderr, "unknown %s \"%s\"; registered:", kind_,
                   name.c_str());
      for (const auto& [known, builder] : builders_) {
        (void)builder;
        std::fprintf(stderr, " %s", known.c_str());
      }
      std::fprintf(stderr, "\n");
      SSHARD_CHECK(false && "unknown registry name");
    }
    std::unique_ptr<Product> product = it->second(config, deps);
    SSHARD_CHECK(product != nullptr && "registry builder returned null");
    return product;
  }

  /// Registered names, sorted (CLI help, error messages).
  std::vector<std::string> Names() const {
    std::vector<std::string> names;
    names.reserve(builders_.size());
    for (const auto& [name, builder] : builders_) {
      (void)builder;
      names.push_back(name);
    }
    return names;
  }

 private:
  const char* kind_;
  std::map<std::string, Builder> builders_;
};

}  // namespace stableshard::common
