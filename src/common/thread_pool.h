// Fixed-size thread pool for embarrassingly parallel experiment sweeps.
//
// The figure benches run dozens of independent (rho, b) simulations; each is
// single-threaded and deterministic, so the pool only parallelizes across
// configurations (no shared mutable state between tasks). This follows the
// "explicit parallelism, explicit ownership" style of the HPC guides: tasks
// capture their inputs by value and publish results through their own slot.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stableshard {

class ThreadPool {
 public:
  /// Spawns `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw (the simulator aborts on invariant
  /// failure instead of throwing).
  void Submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void Wait();

  std::size_t thread_count() const { return workers_.size(); }

  /// Run `fn(i)` for i in [0, count) across the pool and wait.
  template <typename Fn>
  static void ParallelFor(std::size_t count, Fn&& fn,
                          std::size_t threads = 0) {
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < count; ++i) {
      pool.Submit([&fn, i] { fn(i); });
    }
    pool.Wait();
  }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace stableshard
