// Fixed-size thread pool for the parallel round loop and experiment sweeps.
//
// Two users: (1) the simulation engine fans Scheduler::StepShard out across
// shards every round on a persistent pool (worker_threads > 1); (2) the
// figure benches run dozens of independent (rho, b) simulations. Both
// follow the "explicit parallelism, explicit ownership" style of the HPC
// guides: tasks capture their inputs by value or index disjoint slots, so
// no task shares mutable state with another.
//
// Use the instance ParallelFor for repeated fan-outs — it reuses the live
// workers instead of paying thread creation/teardown per call (the static
// overload exists for one-shot callers and spins up a throwaway pool).
// Only one thread may drive a pool's Submit/Wait/ParallelFor at a time.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace stableshard {

class ThreadPool {
 public:
  /// Spawns `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw (the simulator aborts on invariant
  /// failure instead of throwing).
  void Submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void Wait();

  std::size_t thread_count() const { return workers_.size(); }

  /// Run `fn(i)` for i in [0, count) on this pool's live workers and wait.
  /// Small iteration counts get one task per index (best balance for
  /// coarse work like whole simulations); large counts are chunked into
  /// contiguous ranges to amortize queue traffic (the per-round StepShard
  /// fan-out). Chunking never affects results: iterations are independent
  /// by contract.
  template <typename Fn>
  void ParallelFor(std::size_t count, Fn&& fn) {
    if (count == 0) return;
    const std::size_t fine_grain_limit = thread_count() * 8;
    if (count <= fine_grain_limit) {
      for (std::size_t i = 0; i < count; ++i) {
        Submit([&fn, i] { fn(i); });
      }
    } else {
      const std::size_t chunks = thread_count() * 4;
      const std::size_t chunk = (count + chunks - 1) / chunks;
      for (std::size_t begin = 0; begin < count; begin += chunk) {
        const std::size_t end = std::min(begin + chunk, count);
        Submit([&fn, begin, end] {
          for (std::size_t i = begin; i < end; ++i) fn(i);
        });
      }
    }
    Wait();
  }

  /// Submit `fn(i)` for i in [0, count) WITHOUT waiting: the caller overlaps
  /// its own serial work with the tasks and then calls Wait() — the engine's
  /// pipelined round epilogue runs the adversary's next-round generation on
  /// the driving thread while flush partitions drain here. Each task owns a
  /// copy of `fn`, so the callable need not outlive the call.
  template <typename Fn>
  void Dispatch(std::size_t count, Fn fn) {
    for (std::size_t i = 0; i < count; ++i) {
      Submit([fn, i] { fn(i); });
    }
  }

  /// One-shot convenience: run on a throwaway pool of `threads` workers.
  template <typename Fn>
  static void ParallelFor(std::size_t count, Fn&& fn, std::size_t threads) {
    ThreadPool pool(threads);
    pool.ParallelFor(count, std::forward<Fn>(fn));
  }

 private:
  void WorkerLoop();

  common::Mutex mutex_;
  common::CondVar work_available_;
  common::CondVar all_done_;
  std::deque<std::function<void()>> queue_ SSHARD_GUARDED_BY(mutex_);
  /// Immutable after the constructor returns (workers never join until the
  /// destructor), so thread_count() reads it without the mutex.
  std::vector<std::thread> workers_;
  std::size_t in_flight_ SSHARD_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ SSHARD_GUARDED_BY(mutex_) = false;
};

}  // namespace stableshard
