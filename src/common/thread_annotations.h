// Clang thread-safety analysis annotations, compiled away off clang.
//
// The macros below map 1:1 onto clang's capability analysis attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Built with
// clang and -Wthread-safety (-Werror in the static-analysis CI job) they
// turn the repo's concurrency contracts into compile errors:
//
//   * common::Mutex / common::MutexLock / common::CondVar (common/mutex.h)
//     are real annotated capabilities — ThreadPool's queue state is
//     SSHARD_GUARDED_BY its mutex, so an unlocked touch fails to compile;
//   * the phase-ordered components (net::Network's Deposit/Commit split,
//     net::OutboxSet's sealed/open lanes, core::CommitLedger's journal
//     seal/flush) each expose a common::PhaseCapability — a lock-free
//     "role" capability acquired by Seal*, required by the partitioned
//     drain calls and released by the serial epilogue, so phase-ordering
//     violations (touching an open lane during a flush window, draining
//     an unsealed journal) fail compilation instead of corrupting a run.
//
// On GCC (the default container toolchain) every macro expands to
// nothing — tests/static_analysis_test.cc asserts the expansion is
// literally empty, so the shim can never perturb the non-clang build.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define SSHARD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SSHARD_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Declares a class to be a capability (e.g. a mutex or a phase token).
#define SSHARD_CAPABILITY(x) SSHARD_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define SSHARD_SCOPED_CAPABILITY SSHARD_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the capability.
#define SSHARD_GUARDED_BY(x) SSHARD_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the capability.
#define SSHARD_PT_GUARDED_BY(x) SSHARD_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called while holding the capability.
#define SSHARD_REQUIRES(...) \
  SSHARD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the capability and returns holding it.
#define SSHARD_ACQUIRE(...) \
  SSHARD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that must be entered holding the capability and releases it.
#define SSHARD_RELEASE(...) \
  SSHARD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that may only be called while NOT holding the capability.
#define SSHARD_EXCLUDES(...) \
  SSHARD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the capability guarding its class
/// (lets annotations name `obj.cap()` instead of a private member).
#define SSHARD_RETURN_CAPABILITY(x) SSHARD_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the contract cannot be expressed.
#define SSHARD_NO_THREAD_SAFETY_ANALYSIS \
  SSHARD_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Assertion-style acquire: the function checks at runtime that the
/// capability is held and the analysis assumes it afterwards.
#define SSHARD_ASSERT_CAPABILITY(x) \
  SSHARD_THREAD_ANNOTATION(assert_capability(x))
