// Minimal command-line flag parser for the tools and benches:
// --name=value / --name value / --bool-flag. No global registry — callers
// declare flags locally, which keeps tools self-documenting.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stableshard {

class Flags {
 public:
  /// Parse argv; returns false (and fills error()) on malformed input.
  bool Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  std::int64_t GetInt(const std::string& name, std::int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  /// Positional (non --flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  /// Flags that were provided but never read — typo detection for tools.
  std::vector<std::string> UnreadFlags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace stableshard
