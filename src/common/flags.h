// Minimal command-line flag parser for the tools and benches:
// --name=value / --name value / --bool-flag. No global registry — callers
// declare flags locally, which keeps tools self-documenting.
//
// Error contract: typed getters (GetInt/GetUint/GetDouble/GetBool)
// validate the *entire* token. A malformed value ("--rounds=abc",
// "--rho=1.5x", "--opt=maybe"), a negative value for a GetUint flag
// ("--rounds=-1") or a non-finite double ("--rho=nan") returns the
// fallback AND records a message in error(), so a misparse can never
// silently run a zero-round (or 2^64-round) simulation. Tools must check
// error() after reading their flags (and before acting) and exit
// non-zero; the first error wins and names the offending flag.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stableshard {

class Flags {
 public:
  /// Parse argv; returns false (and fills error()) on malformed input.
  bool Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  std::int64_t GetInt(const std::string& name, std::int64_t fallback) const;
  /// For flags consumed as unsigned quantities (counts, sizes, seeds):
  /// also rejects negative values, which GetInt would hand to an unsigned
  /// cast as a huge wrapped number (--rounds=-1 must not run 2^64 rounds).
  std::uint64_t GetUint(const std::string& name,
                        std::uint64_t fallback) const;
  /// Rejects non-finite values ("nan", "inf") along with misparses.
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  /// Positional (non --flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// First parse or value error ("" when everything read so far was valid).
  /// Typed getters record errors lazily — check after reading all flags.
  const std::string& error() const { return error_; }
  bool ok() const { return error_.empty(); }

  /// Flags that were provided but never read — typo detection for tools.
  std::vector<std::string> UnreadFlags() const;

  /// Canonical post-read epilogue for tools (the error() contract above):
  /// prints error() to stderr and returns false when any typed read
  /// failed; otherwise warns on stderr about provided-but-never-read flags
  /// (typo detection) and returns true. Call after reading every flag and
  /// before acting; on false, exit non-zero.
  bool FinishReads() const;

 private:
  void RecordValueError(const std::string& name, const std::string& value,
                        const char* expected) const;

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positional_;
  /// Mutable: typed getters are const lookups but must record misparses.
  mutable std::string error_;
};

}  // namespace stableshard
