// Deterministic random number generation.
//
// Every stochastic component (adversary strategies, account assignment,
// topology generators) draws from an explicitly seeded Rng so that a whole
// experiment is reproducible from (config, seed). SplitMix64 is used for
// seeding / hashing; the heavy generator is xoshiro256** which is fast and
// has no measurable bias for the simulation's needs.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace stableshard {

/// SplitMix64 step: also usable as a 64-bit mixing/hash function.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit hash of a value (for height tiebreaks, block hashing).
constexpr std::uint64_t Mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return SplitMix64(s);
}

/// xoshiro256** seeded via SplitMix64. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return ~static_cast<result_type>(0);
  }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    SSHARD_CHECK(bound > 0);
    // Lemire-style rejection to remove modulo bias.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (-bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    SSHARD_CHECK(lo <= hi);
    const auto span =
        static_cast<std::uint64_t>(hi - lo) + 1;  // hi-lo < 2^63 in practice
    return lo + static_cast<std::int64_t>(NextBounded(span));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool NextBool(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle of a span.
  template <typename T>
  void Shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = NextBounded(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Sample `count` distinct values from [0, population) without
  /// replacement. O(count) expected when count << population; falls back to
  /// partial Fisher-Yates otherwise.
  std::vector<std::uint64_t> SampleWithoutReplacement(std::uint64_t population,
                                                      std::uint64_t count);

  /// Derive an independent child generator (for per-task determinism in
  /// threaded sweeps regardless of scheduling order).
  Rng Fork() {
    const std::uint64_t a = (*this)();
    const std::uint64_t b = (*this)();
    Rng child(a ^ Rotl(b, 31));
    return child;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace stableshard
