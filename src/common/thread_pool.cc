#include "common/thread_pool.h"

namespace stableshard {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    common::MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    common::MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  common::MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.Wait(mutex_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      common::MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(mutex_);
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      common::MutexLock lock(mutex_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace stableshard
