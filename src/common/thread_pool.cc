#include "common/thread_pool.h"

namespace stableshard {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace stableshard
