// Lightweight invariant checking that stays enabled in release builds.
//
// Simulation correctness (atomicity, unit shard capacity, proper coloring)
// is part of the reproduction claim, so violations must abort loudly rather
// than silently skew measurements. SSHARD_CHECK is cheap (a branch) and is
// used on hot paths only where the predicate is O(1).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace stableshard::detail {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "SSHARD_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace stableshard::detail

#define SSHARD_CHECK(expr)                                         \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::stableshard::detail::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                              \
  } while (0)

#ifdef NDEBUG
#define SSHARD_DCHECK(expr) ((void)0)
#else
#define SSHARD_DCHECK(expr) SSHARD_CHECK(expr)
#endif
