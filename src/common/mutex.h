// Annotated mutex / condition-variable wrappers and phase capabilities.
//
// libstdc++'s std::mutex carries no thread-safety attributes, so clang's
// -Wthread-safety analysis cannot see std::unique_lock acquisitions. These
// thin wrappers re-expose std::mutex / std::condition_variable with the
// capability annotations attached (the Abseil/Chromium pattern), which is
// what lets ThreadPool declare its queue state SSHARD_GUARDED_BY(mutex_)
// and have an unlocked access fail compilation under clang.
//
// PhaseCapability is the lock-free sibling: a zero-size "role" capability
// for the double-buffered phase contracts (sealed outbox lanes, sealed
// ledger journals, the network's partitioned-flush window). Acquire and
// Release do nothing at runtime — the value is purely static: a method
// annotated SSHARD_REQUIRES(seal_cap()) cannot be reached, on clang,
// from code that has not passed through the matching SSHARD_ACQUIRE
// phase-transition method.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace stableshard::common {

class CondVar;

/// std::mutex with clang capability annotations.
class SSHARD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SSHARD_ACQUIRE() { mu_.lock(); }
  void Unlock() SSHARD_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex (scoped capability).
class SSHARD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SSHARD_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SSHARD_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with Mutex. Wait re-wraps the already-held
/// std::mutex with adopt_lock so std::condition_variable can block on it,
/// then releases the std::unique_lock without unlocking — the caller's
/// MutexLock stays the owner throughout, which is exactly what the
/// SSHARD_REQUIRES(mu) annotation states.
class CondVar {
 public:
  /// Block until notified (callers re-check their condition in a while
  /// loop — spurious wakeups are allowed, as with the underlying
  /// std::condition_variable).
  void Wait(Mutex& mu) SSHARD_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Lock-free phase capability: annotation-only state for the seal/flush
/// double-buffer contracts. All methods are no-ops at runtime; holding or
/// not holding the capability exists only in clang's static analysis.
class SSHARD_CAPABILITY("phase") PhaseCapability {
 public:
  PhaseCapability() = default;
  PhaseCapability(const PhaseCapability&) = delete;
  PhaseCapability& operator=(const PhaseCapability&) = delete;

  void Acquire() const SSHARD_ACQUIRE() {}
  void Release() const SSHARD_RELEASE() {}
};

}  // namespace stableshard::common
