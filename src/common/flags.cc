#include "common/flags.h"

#include <cstdlib>

namespace stableshard {

bool Flags::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    if (arg.empty()) {
      error_ = "bare '--' is not a flag";
      return false;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token isn't a flag; otherwise boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
  return true;
}

bool Flags::Has(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  read_[name] = true;
  return true;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  return it->second;
}

std::int64_t Flags::GetInt(const std::string& name,
                           std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::vector<std::string> Flags::UnreadFlags() const {
  std::vector<std::string> unread;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!read_.count(name)) unread.push_back(name);
  }
  return unread;
}

}  // namespace stableshard
