#include "common/flags.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace stableshard {

bool Flags::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    if (arg.empty()) {
      error_ = "bare '--' is not a flag";
      return false;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token isn't a flag; otherwise boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
  return true;
}

bool Flags::Has(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  read_[name] = true;
  return true;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  return it->second;
}

void Flags::RecordValueError(const std::string& name,
                             const std::string& value,
                             const char* expected) const {
  if (!error_.empty()) return;  // first error wins
  error_ = "--" + name + ": expected " + expected + ", got '" + value + "'";
}

std::int64_t Flags::GetInt(const std::string& name,
                           std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE) {
    RecordValueError(name, text, "an integer");
    return fallback;
  }
  return value;
}

std::uint64_t Flags::GetUint(const std::string& name,
                             std::uint64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  // strtoull silently wraps negative input ("-1" -> 2^64 - 1), so reject
  // any '-' up front.
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || text.find('-') != std::string::npos ||
      end != text.c_str() + text.size() || errno == ERANGE) {
    RecordValueError(name, text, "a non-negative integer");
    return fallback;
  }
  return value;
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  // ERANGE covers both overflow and underflow; underflow ("1e-320") still
  // yields a usable (denormal or zero) value, so only overflow is fatal.
  // Explicit "nan"/"inf" tokens parse cleanly but are never a meaningful
  // rate/size here — NaN in particular poisons every comparison downstream.
  const bool overflow =
      errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL);
  if (text.empty() || end != text.c_str() + text.size() || overflow ||
      !std::isfinite(value)) {
    RecordValueError(name, text, "a finite number");
    return fallback;
  }
  return value;
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  const std::string& text = it->second;
  if (text == "true" || text == "1" || text == "yes") return true;
  if (text == "false" || text == "0" || text == "no") return false;
  RecordValueError(name, text, "a boolean (true/false/1/0/yes/no)");
  return fallback;
}

bool Flags::FinishReads() const {
  if (!ok()) {
    std::fprintf(stderr, "%s\n", error_.c_str());
    return false;
  }
  for (const std::string& unread : UnreadFlags()) {
    std::fprintf(stderr, "warning: unknown flag --%s ignored\n",
                 unread.c_str());
  }
  return true;
}

std::vector<std::string> Flags::UnreadFlags() const {
  std::vector<std::string> unread;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!read_.count(name)) unread.push_back(name);
  }
  return unread;
}

}  // namespace stableshard
