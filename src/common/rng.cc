#include "common/rng.h"

#include <algorithm>
#include <unordered_set>

namespace stableshard {

std::vector<std::uint64_t> Rng::SampleWithoutReplacement(
    std::uint64_t population, std::uint64_t count) {
  SSHARD_CHECK(count <= population);
  std::vector<std::uint64_t> result;
  result.reserve(count);
  if (count == 0) return result;

  // Dense case: partial Fisher-Yates over an explicit index array.
  if (population <= 4 * count || population <= 64) {
    std::vector<std::uint64_t> indices(population);
    for (std::uint64_t i = 0; i < population; ++i) indices[i] = i;
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t j = i + NextBounded(population - i);
      std::swap(indices[i], indices[j]);
      result.push_back(indices[i]);
    }
    return result;
  }

  // Sparse case: rejection sampling.
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(count * 2);
  while (result.size() < count) {
    const std::uint64_t candidate = NextBounded(population);
    if (chosen.insert(candidate).second) result.push_back(candidate);
  }
  return result;
}

}  // namespace stableshard
