// Minimal CSV writer used by the benchmark harness to persist the series
// behind every reproduced figure (one file per figure panel).
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace stableshard {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// True if the output file opened successfully.
  bool ok() const { return static_cast<bool>(out_); }

  /// Append one row; values are stringified with operator<<.
  template <typename... Ts>
  void Row(const Ts&... values) {
    std::ostringstream line;
    bool first = true;
    ((AppendCell(line, values, first)), ...);
    out_ << line.str() << '\n';
  }

  void Flush() { out_.flush(); }

 private:
  template <typename T>
  static void AppendCell(std::ostringstream& line, const T& value,
                         bool& first) {
    if (!first) line << ',';
    first = false;
    line << value;
  }

  std::ofstream out_;
};

}  // namespace stableshard
