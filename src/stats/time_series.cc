#include "stats/time_series.h"

#include "common/check.h"

namespace stableshard::stats {

TimeSeries::TimeSeries(Round window) : window_(window) {
  SSHARD_CHECK(window >= 1);
}

void TimeSeries::Record(Round round, double value) {
  const Round window_start = (round / window_) * window_;
  if (in_window_ > 0 && window_start != current_window_start_) {
    FlushWindow();
  }
  current_window_start_ = window_start;
  accumulator_ += value;
  ++in_window_;
}

void TimeSeries::FlushWindow() {
  points_.push_back(
      {current_window_start_, accumulator_ / static_cast<double>(in_window_)});
  accumulator_ = 0.0;
  in_window_ = 0;
}

std::vector<TimeSeries::Point> TimeSeries::Finish() {
  if (in_window_ > 0) FlushWindow();
  return points_;
}

}  // namespace stableshard::stats
