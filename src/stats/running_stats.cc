#include "stats/running_stats.h"

#include <cmath>

namespace stableshard::stats {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta *
                         (static_cast<double>(count_) * other.count_ / total);
  mean_ += delta * (static_cast<double>(other.count_) / total);
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ = total;
}

double RunningStats::variance() const {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace stableshard::stats
