#include "stats/latency_recorder.h"

#include "common/check.h"

namespace stableshard::stats {

namespace {
// 25000-round simulations with worst latencies in the few-thousands: 100
// buckets of width 100 cover the range; the overflow bucket absorbs
// unstable runs.
constexpr double kBucketWidth = 100.0;
constexpr std::size_t kBucketCount = 100;
}  // namespace

LatencyRecorder::LatencyRecorder() : histogram_(kBucketWidth, kBucketCount) {}

void LatencyRecorder::Record(Round injected, Round resolved, bool committed) {
  SSHARD_CHECK(resolved >= injected);
  const auto delay = static_cast<double>(resolved - injected);
  latency_.Add(delay);
  histogram_.Add(delay);
  if (committed) {
    ++committed_;
  } else {
    ++aborted_;
  }
}

}  // namespace stableshard::stats
