// Streaming mean/variance/min/max accumulator (Welford's algorithm).
//
// Used for the figure series: "average pending transactions per home shard"
// and "average transaction latency" are means over per-round samples and
// per-transaction delays respectively.
#pragma once

#include <cstdint>

namespace stableshard::stats {

class RunningStats {
 public:
  void Add(double x);

  /// Merge another accumulator (Chan's parallel variance combination),
  /// used when aggregating per-shard series into a system-wide figure point.
  void Merge(const RunningStats& other);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return count_ == 0 ? 0.0 : mean_ * count_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace stableshard::stats
