// Down-sampled time series recorder.
//
// Recording a value every round for 25000 rounds x dozens of configs would
// be wasteful; TimeSeries keeps a bounded number of points by averaging
// within fixed-size windows, which is exactly what a plotted figure needs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace stableshard::stats {

class TimeSeries {
 public:
  /// Averages samples within windows of `window` rounds (>= 1).
  explicit TimeSeries(Round window = 1);

  void Record(Round round, double value);

  struct Point {
    Round round;  ///< window start round
    double value; ///< window mean
  };

  /// Flushes the pending partial window and returns all points.
  std::vector<Point> Finish();

  const std::vector<Point>& points() const { return points_; }

 private:
  void FlushWindow();

  Round window_;
  Round current_window_start_ = 0;
  double accumulator_ = 0.0;
  std::uint64_t in_window_ = 0;
  std::vector<Point> points_;
};

}  // namespace stableshard::stats
