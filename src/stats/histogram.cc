#include "stats/histogram.h"

#include <algorithm>

#include "common/check.h"

namespace stableshard::stats {

Histogram::Histogram(double bucket_width, std::size_t bucket_count)
    : bucket_width_(bucket_width), buckets_(bucket_count, 0) {
  SSHARD_CHECK(bucket_width > 0.0);
  SSHARD_CHECK(bucket_count >= 1);
}

void Histogram::Add(double value) {
  ++total_;
  if (value < 0) value = 0;
  const auto index = static_cast<std::size_t>(value / bucket_width_);
  if (index >= buckets_.size()) {
    ++overflow_;
  } else {
    ++buckets_[index];
  }
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (next >= target && buckets_[i] > 0) {
      const double within = (target - cumulative) / buckets_[i];
      return (static_cast<double>(i) + within) * bucket_width_;
    }
    cumulative = next;
  }
  return static_cast<double>(buckets_.size()) * bucket_width_;
}

}  // namespace stableshard::stats
