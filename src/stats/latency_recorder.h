// Transaction latency bookkeeping.
//
// The paper defines the delay of a transaction as the number of rounds
// between its generation and the moment of commit (all subtransactions
// appended); scheduler latency is the maximum delay, and the figures report
// the *average* delay. LatencyRecorder tracks both plus commit/abort counts.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "stats/histogram.h"
#include "stats/running_stats.h"

namespace stableshard::stats {

class LatencyRecorder {
 public:
  LatencyRecorder();

  /// Record a transaction resolving (committed or aborted) at `resolved`
  /// after being injected at `injected`.
  void Record(Round injected, Round resolved, bool committed);

  std::uint64_t committed() const { return committed_; }
  std::uint64_t aborted() const { return aborted_; }
  std::uint64_t resolved() const { return committed_ + aborted_; }

  double average_latency() const { return latency_.mean(); }
  double max_latency() const { return latency_.max(); }
  double p50_latency() const { return histogram_.Quantile(0.50); }
  double p99_latency() const { return histogram_.Quantile(0.99); }

  const RunningStats& latency_stats() const { return latency_; }

 private:
  RunningStats latency_;
  Histogram histogram_;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
};

}  // namespace stableshard::stats
