// Fixed-width bucketed histogram with overflow bucket and exact quantile
// estimation by bucket interpolation. Used for latency distributions in the
// extended benches (the paper reports only averages; quantiles are part of
// our ablation reporting).
#pragma once

#include <cstdint>
#include <vector>

namespace stableshard::stats {

class Histogram {
 public:
  /// `bucket_width` > 0, `bucket_count` >= 1. Values >= width*count land in
  /// the overflow bucket.
  Histogram(double bucket_width, std::size_t bucket_count);

  void Add(double value);

  std::uint64_t total() const { return total_; }
  std::uint64_t overflow() const { return overflow_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  double bucket_width() const { return bucket_width_; }

  /// Approximate quantile (q in [0,1]) via linear interpolation within the
  /// containing bucket; returns the overflow lower edge if q lands there.
  double Quantile(double q) const;

 private:
  double bucket_width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace stableshard::stats
