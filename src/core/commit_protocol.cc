#include "core/commit_protocol.h"

#include "common/check.h"

namespace stableshard::core {

CommitProtocol::CommitProtocol(ShardId shards,
                               net::OutboxSet<Message>& outbox,
                               CommitLedger& ledger,
                               DecidedCallback on_decided, CommitMode mode)
    : outbox_(&outbox),
      ledger_(&ledger),
      on_decided_(std::move(on_decided)),
      mode_(mode),
      queues_(shards),
      coordinating_(shards) {}

bool CommitProtocol::Idle() const {
  for (const auto& slice : coordinating_) {
    if (!slice.empty()) return false;
  }
  for (const DestinationQueue& queue : queues_) {
    if (!queue.entries.empty()) return false;
  }
  return true;
}

std::uint64_t CommitProtocol::queued_subtxns() const {
  std::uint64_t count = 0;
  for (const DestinationQueue& queue : queues_) count += queue.queued;
  return count;
}

std::uint64_t CommitProtocol::pinned_count() const {
  std::uint64_t count = 0;
  for (const DestinationQueue& queue : queues_) {
    if (queue.pinned.has_value()) ++count;
  }
  return count;
}

std::uint64_t CommitProtocol::coordinated_unresolved() const {
  std::uint64_t count = 0;
  for (const auto& slice : coordinating_) count += slice.size();
  return count;
}

std::uint64_t CommitProtocol::retracts_sent() const {
  std::uint64_t count = 0;
  for (const DestinationQueue& queue : queues_) count += queue.retracts;
  return count;
}

void CommitProtocol::Coordinate(ShardId coordinator,
                                const txn::Transaction& txn,
                                std::uint32_t cluster) {
  PendingCommit pending;
  pending.txn = txn;
  pending.cluster = cluster;
  coordinating_[coordinator].emplace(txn.id(), std::move(pending));
}

void CommitProtocol::SendSubTxn(ShardId coordinator,
                                const txn::Transaction& txn,
                                const txn::SubTransaction& sub, Height height,
                                std::uint32_t cluster, bool update) {
  auto& slice = coordinating_[coordinator];
  const auto it = slice.find(txn.id());
  if (it != slice.end()) it->second.current_height = height;
  SubTxnMsg msg;
  msg.txn = txn.id();
  msg.cluster = cluster;
  msg.coordinator = coordinator;
  msg.height = height;
  msg.update = update;
  msg.sub = sub;
  outbox_->Send(coordinator, sub.destination, Message{std::move(msg)});
}

void CommitProtocol::Decide(ShardId coordinator, PendingCommit& pending,
                            bool commit) {
  pending.decided = true;
  for (const txn::SubTransaction& sub : pending.txn.subs()) {
    ConfirmMsg confirm;
    confirm.txn = pending.txn.id();
    confirm.cluster = pending.cluster;
    confirm.commit = commit;
    confirm.height = pending.current_height;
    outbox_->Send(coordinator, sub.destination, Message{confirm});
  }
  if (on_decided_) on_decided_(pending.txn.id(), pending.cluster, commit);
}

void CommitProtocol::MaybeRequestRetract(ShardId dest) {
  DestinationQueue& queue = queues_[dest];
  if (!queue.pinned.has_value() || queue.retract_outstanding) return;
  const auto pinned_it = queue.index.find(*queue.pinned);
  SSHARD_CHECK(pinned_it != queue.index.end());
  const Height& head = queue.entries.begin()->first;
  if (head < pinned_it->second) {
    // A higher-priority subtransaction overtook the pinned one: ask its
    // coordinator for permission to withdraw our vote.
    const Entry& pinned_entry = queue.entries.at(pinned_it->second);
    RetractRequestMsg request;
    request.txn = *queue.pinned;
    request.cluster = pinned_entry.cluster;
    request.dest = dest;
    outbox_->Send(dest, pinned_entry.coordinator, Message{request});
    queue.retract_outstanding = true;
    ++queue.retracts;
  }
}

bool CommitProtocol::HandleMessage(ShardId to, Message& message,
                                   Round round) {
  if (auto* sub_msg = std::get_if<SubTxnMsg>(&message)) {
    DestinationQueue& queue = queues_[to];
    auto index_it = queue.index.find(sub_msg->txn);
    if (sub_msg->update) {
      // FDS reschedule: refresh the height of a still-queued entry. Entries
      // already confirmed (popped) simply ignore the update.
      if (index_it != queue.index.end() &&
          index_it->second != sub_msg->height) {
        auto node = queue.entries.extract(index_it->second);
        const bool was_unvoted = queue.unvoted.erase(index_it->second) > 0;
        node.key() = sub_msg->height;
        queue.entries.insert(std::move(node));
        if (was_unvoted) queue.unvoted.insert(sub_msg->height);
        index_it->second = sub_msg->height;
      }
    } else {
      SSHARD_CHECK(index_it == queue.index.end() &&
                   "duplicate schedule of a subtransaction");
      Entry entry;
      entry.txn = sub_msg->txn;
      entry.cluster = sub_msg->cluster;
      entry.coordinator = sub_msg->coordinator;
      entry.sub = std::move(sub_msg->sub);
      queue.entries.emplace(sub_msg->height, std::move(entry));
      queue.index.emplace(sub_msg->txn, sub_msg->height);
      if (mode_ == CommitMode::kPipelined) {
        queue.unvoted.insert(sub_msg->height);
      }
      ++queue.queued;
    }
    if (mode_ == CommitMode::kPinned) MaybeRequestRetract(to);
    return true;
  }

  if (auto* vote = std::get_if<VoteMsg>(&message)) {
    auto& slice = coordinating_[to];
    auto it = slice.find(vote->txn);
    if (it == slice.end() || it->second.decided) {
      return true;  // stale vote after decision — ignore
    }
    PendingCommit& pending = it->second;
    pending.votes[vote->dest] = vote->commit;
    if (!vote->commit) {
      // Early abort: one abort vote settles the outcome.
      Decide(to, pending, /*commit=*/false);
      slice.erase(it);
    } else if (pending.votes.size() == pending.txn.destinations().size()) {
      Decide(to, pending, /*commit=*/true);
      slice.erase(it);
    }
    return true;
  }

  if (auto* confirm = std::get_if<ConfirmMsg>(&message)) {
    DestinationQueue& queue = queues_[to];
    const auto index_it = queue.index.find(confirm->txn);
    SSHARD_CHECK(index_it != queue.index.end() &&
                 "confirm for an unknown queue entry");
    const auto entry_it = queue.entries.find(index_it->second);
    SSHARD_CHECK(entry_it != queue.entries.end());
    if (mode_ == CommitMode::kPipelined) {
      // Aborts write nothing: their position is irrelevant, pop at once.
      if (!confirm->commit) {
        queue.unvoted.erase(index_it->second);
        ledger_->ApplyConfirmDeferred(confirm->txn, entry_it->second.sub,
                                      /*commit=*/false, round);
        queue.entries.erase(entry_it);
        queue.index.erase(index_it);
        --queue.queued;
        return true;
      }
      // Commits: re-key the entry to the coordinator's final height so all
      // shards agree on its position, then let ApplyDecidedInOrder pop it
      // in queue order (one commit per shard per round).
      if (index_it->second != confirm->height) {
        auto node = queue.entries.extract(index_it->second);
        node.key() = confirm->height;
        queue.entries.insert(std::move(node));
        index_it->second = confirm->height;
      }
      queue.entries.at(confirm->height).decision = true;
      return true;
    }
    if (confirm->commit) {
      // Commit confirms only reach shards that voted and are still pinned
      // (the retract handshake never releases a pin that has a decision in
      // flight), so the vote-time evaluation is still valid.
      SSHARD_CHECK(queue.pinned.has_value() &&
                   *queue.pinned == confirm->txn &&
                   "commit confirm for unpinned entry");
    }
    ledger_->ApplyConfirmDeferred(confirm->txn, entry_it->second.sub,
                                  confirm->commit, round);
    queue.entries.erase(entry_it);
    queue.index.erase(index_it);
    --queue.queued;
    if (queue.pinned.has_value() && *queue.pinned == confirm->txn) {
      queue.pinned.reset();
      queue.retract_outstanding = false;
    }
    return true;
  }

  if (auto* request = std::get_if<RetractRequestMsg>(&message)) {
    auto& slice = coordinating_[to];
    auto it = slice.find(request->txn);
    if (it == slice.end() || it->second.decided) {
      return true;  // decision already in flight; the confirm wins
    }
    it->second.votes.erase(request->dest);
    RetractAckMsg ack;
    ack.txn = request->txn;
    ack.cluster = request->cluster;
    outbox_->Send(to, request->dest, Message{ack});
    return true;
  }

  if (auto* ack = std::get_if<RetractAckMsg>(&message)) {
    DestinationQueue& queue = queues_[to];
    // Only honor the ack if we are still pinned on that transaction (a
    // racing confirm may already have cleared the pin).
    if (queue.pinned.has_value() && *queue.pinned == ack->txn) {
      queue.pinned.reset();
      queue.retract_outstanding = false;
    }
    return true;
  }

  return false;
}

void CommitProtocol::ApplyDecidedInOrder(ShardId dest, Round round) {
  DestinationQueue& queue = queues_[dest];
  if (queue.entries.empty()) return;
  auto head = queue.entries.begin();
  Entry& entry = head->second;
  if (!entry.decision.has_value()) return;
  SSHARD_DCHECK(*entry.decision);  // aborts were popped on confirm arrival
  // Height-stability gate: schedule messages for an epoch always arrive
  // before the epoch's end (t_end), so from round t_end onward no entry
  // with a smaller-or-equal t_end — and hence no smaller height — can still
  // arrive. Applying only after the gate keeps the per-shard apply order
  // identical to the global height order (cross-shard serializability).
  if (round < head->first.t_end) return;
  ledger_->ApplyConfirmDeferred(entry.txn, entry.sub, /*commit=*/true, round);
  queue.unvoted.erase(head->first);
  queue.index.erase(entry.txn);
  queue.entries.erase(head);
  --queue.queued;
}

void CommitProtocol::IssueVotesForShard(ShardId dest, Round round) {
  DestinationQueue& queue = queues_[dest];
  if (mode_ == CommitMode::kPipelined) {
    // Algorithm 2b Step 1: pick one subtransaction per round and vote.
    if (!queue.unvoted.empty()) {
      const Height height = *queue.unvoted.begin();
      queue.unvoted.erase(queue.unvoted.begin());
      auto it = queue.entries.find(height);
      SSHARD_CHECK(it != queue.entries.end());
      Entry& entry = it->second;
      entry.voted = true;
      VoteMsg vote;
      vote.txn = entry.txn;
      vote.cluster = entry.cluster;
      vote.dest = dest;
      vote.commit = ledger_->EvaluateSub(entry.sub);
      outbox_->Send(dest, entry.coordinator, Message{vote});
    }
    ApplyDecidedInOrder(dest, round);
    return;
  }

  if (queue.pinned.has_value() || queue.entries.empty()) return;
  const auto head = queue.entries.begin();
  const Entry& entry = head->second;
  VoteMsg vote;
  vote.txn = entry.txn;
  vote.cluster = entry.cluster;
  vote.dest = dest;
  vote.commit = ledger_->EvaluateSub(entry.sub);
  outbox_->Send(dest, entry.coordinator, Message{vote});
  queue.pinned = entry.txn;
}

void CommitProtocol::IssueVotes(Round round) {
  for (ShardId dest = 0; dest < queues_.size(); ++dest) {
    IssueVotesForShard(dest, round);
  }
}

}  // namespace stableshard::core
