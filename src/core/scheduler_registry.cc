#include "core/scheduler_registry.h"

#include <cstdio>

#include "common/check.h"

namespace stableshard::core {

SchedulerRegistry& SchedulerRegistry::Global() {
  // Function-local static: constructed on first use, so registrars in other
  // translation units never observe an uninitialized registry.
  static SchedulerRegistry* registry = new SchedulerRegistry();
  return *registry;
}

void SchedulerRegistry::Register(const std::string& name, Builder builder) {
  const auto [it, inserted] = builders_.emplace(name, std::move(builder));
  (void)it;
  SSHARD_CHECK(inserted && "scheduler name registered twice");
}

bool SchedulerRegistry::Contains(const std::string& name) const {
  return builders_.find(name) != builders_.end();
}

std::unique_ptr<Scheduler> SchedulerRegistry::Build(const std::string& name,
                                                    const SimConfig& config,
                                                    SchedulerDeps& deps) const {
  const auto it = builders_.find(name);
  if (it == builders_.end()) {
    std::fprintf(stderr, "unknown scheduler \"%s\"; registered:", name.c_str());
    for (const auto& [known, builder] : builders_) {
      (void)builder;
      std::fprintf(stderr, " %s", known.c_str());
    }
    std::fprintf(stderr, "\n");
    SSHARD_CHECK(false && "unknown scheduler name");
  }
  std::unique_ptr<Scheduler> scheduler = it->second(config, deps);
  SSHARD_CHECK(scheduler != nullptr && "scheduler builder returned null");
  return scheduler;
}

std::vector<std::string> SchedulerRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(builders_.size());
  for (const auto& [name, builder] : builders_) {
    (void)builder;
    names.push_back(name);
  }
  return names;
}

}  // namespace stableshard::core
