#include "core/scheduler_registry.h"

namespace stableshard::core {

SchedulerRegistry& SchedulerRegistry::Global() {
  // Function-local static: constructed on first use, so registrars in other
  // translation units never observe an uninitialized registry.
  static SchedulerRegistry* registry = new SchedulerRegistry();
  return *registry;
}

}  // namespace stableshard::core
