// Simulation configuration: one struct describing a full experiment run.
//
// The defaults reproduce the paper's Section 7 setup: s = 64 shards,
// 64 accounts (one per shard), k = 8, 25000 rounds, uniform-random
// transactions with a single burst.
#pragma once

#include <cstdint>
#include <string>

#include "chain/ops.h"
#include "common/types.h"
#include "net/topology_factory.h"
#include "txn/coloring.h"

namespace stableshard::core {

/// Default backpressure watermarks — the single source of truth, shared
/// by SimConfig below and consensus::BackpressureConfig's direct-
/// construction defaults so the two can never drift.
inline constexpr std::uint64_t kDefaultBackpressureHigh = 64;
inline constexpr std::uint64_t kDefaultBackpressureLow = 16;

enum class HierarchyKind : std::uint8_t { kLineShifted, kSparseCover };
enum class AccountAssignment : std::uint8_t { kRoundRobin, kRandom };

struct SimConfig {
  // System (paper Section 7 defaults).
  ShardId shards = 64;
  AccountId accounts = 64;
  std::uint32_t k = 8;  ///< max shards accessed per transaction
  net::TopologyKind topology = net::TopologyKind::kUniform;
  AccountAssignment account_assignment = AccountAssignment::kRandom;
  chain::Balance initial_balance = 1'000'000;

  // Adversary.
  double rho = 0.10;
  double burstiness = 1000;
  Round burst_round = 0;        ///< kNoRound disables the burst
  /// Workload: a name registered in adversary::StrategyRegistry
  /// ("uniform_random", "hotspot", "pairwise_conflict", "local",
  /// "single_shard", "hot_destination", "diameter_span" in-tree; embedders
  /// may register more — the engine never names strategies itself).
  std::string strategy = "uniform_random";
  double abort_probability = 0.0;
  Distance local_radius = 4;    ///< "local" strategy only
  double zipf_theta = 1.0;      ///< "hot_destination" skew exponent

  // Traffic (src/traffic/): open-loop, arrival-time-driven injection.
  /// Aggregate open-loop arrival rate in transactions per wall round
  /// (token-bucket paced; any positive value — striped internally). 0 (the
  /// default) keeps the classic closed-loop adversary, byte-identical to
  /// the pre-traffic engine. With a positive rate the registered strategy
  /// decides only transaction *shape*; timing is the schedule's, decoupled
  /// from commit progress — arrivals continue through crash stalls
  /// (accruing as injection backlog) and into former drain rounds. CLIs
  /// validate via ValidateArrivalRate and exit 2.
  double arrival_rate = 0.0;
  /// Open-loop burst cap b: the one-shot clump released at `burst_round`
  /// (reusing the closed-loop knob; kNoRound = pure paced stream). Unlike
  /// the closed-loop round-0 preload, an open-loop burst can land mid-run,
  /// where admission control has live statistics to react with. Must be
  /// >= 1 when arrival_rate > 0.
  double arrival_burst = 1.0;
  /// Replay arrivals + shapes from this trace file (traffic/trace.h).
  /// Non-empty selects open-loop trace mode: requires
  /// strategy == "trace_replay" and arrival_rate == 0, and the file's meta
  /// shard/account counts must match this config. CLIs validate via
  /// ValidateTraceConfig + traffic::ValidateTraceFile and exit 2.
  std::string trace;
  /// Record this run's injection stream (closed- or open-loop) to a trace
  /// file at the end of Run() — the TraceWriter feed for golden replays.
  std::string trace_out;

  // Scheduler: a name registered in core::SchedulerRegistry ("backpressure",
  // "bds", "fds", "direct" in-tree; embedders may register more — the
  // engine never names schedulers itself).
  std::string scheduler = "bds";
  txn::ColoringAlgorithm coloring = txn::ColoringAlgorithm::kGreedy;
  HierarchyKind hierarchy = HierarchyKind::kLineShifted;
  bool fds_reschedule = true;
  /// Pipelined = the paper's Algorithm 2b (one vote per destination per
  /// round); disable for workloads whose votes depend on other
  /// transactions' effects (see core/commit_protocol.h).
  bool fds_pipelined = true;
  bool bds_rotate_leader = true;
  /// "backpressure" scheduler watermarks on a per-destination congestion
  /// signal: max(messages arriving at the destination this round, its
  /// standing backlog — undelivered messages plus the queues of the
  /// clusters it leads; see Scheduler::QueueDepth). A destination whose
  /// signal reaches `backpressure_high` is marked hot and new transactions
  /// homed there are parked in the home shard's spill queue; once the
  /// signal falls back to `backpressure_low` the spill re-enters, paced.
  /// Requires low <= high and high > 0 (hysteresis — the scheduler's
  /// constructor dies otherwise and the CLIs exit 2 before constructing
  /// anything). The registry builder copies these into
  /// consensus::BackpressureConfig.
  std::uint64_t backpressure_high = kDefaultBackpressureHigh;
  std::uint64_t backpressure_low = kDefaultBackpressureLow;
  /// Sharded-leader BDS ("bds_sharded" scheduler): number of co-leader
  /// shards the epoch leader partitions its color classes across (color c
  /// -> co-leader c mod L). 1 = the legacy single-leader commit path;
  /// values above the shard count are clamped. Must be >= 1; CLIs validate
  /// via ValidateBdsColorLeaders and exit 2, the scheduler constructor
  /// re-checks as an aborting invariant.
  std::uint32_t bds_color_leaders = 1;
  /// Multi-root FDS hierarchy ("fds_multiroot" scheduler, and the hierarchy
  /// builders): number of interchangeable full-membership top-layer roots
  /// diameter-spanning transactions hash across. 1 = the classic single-top
  /// hierarchy; values above the shard count are clamped. Must be >= 1;
  /// CLIs validate via ValidateFdsTopRoots and exit 2, the hierarchy
  /// builder re-checks as an aborting invariant.
  std::uint32_t fds_top_roots = 1;

  // Durability & crash recovery (src/durability/).
  /// Attach a per-shard commit WAL behind the ledger: records are staged
  /// during StepShard and persisted inside the round epilogue (overlapping
  /// the pooled flush in the pipelined path). Off by default — with it on
  /// and no faults, results stay bit-identical to wal = false (enforced by
  /// parallel_rounds --check).
  bool wal = false;
  /// Protocol rounds between full-state checkpoints (0 = WAL only; the
  /// log is never truncated, so checkpoints purely bound replay time).
  /// Requires `wal`.
  Round checkpoint_interval = 0;
  /// Deterministic churn schedule, "<shard>@<round>+<down>,..." (see
  /// durability/fault_plan.h): crash each listed shard at its round
  /// boundary, keep it down for <down> rounds, then replay it from
  /// checkpoint + WAL and rejoin. Requires `wal`; crash rounds must be
  /// < `rounds` and shards in range. CLIs validate via ValidateFaults and
  /// exit 2; the engine constructor re-checks as an aborting invariant.
  std::string faults;
  /// Recovery pacing: one stalled round per this many replayed WAL bytes
  /// (plus one base round). Must be >= 1; CLIs validate via
  /// ValidateReplayBytesPerRound and exit 2.
  std::uint64_t replay_bytes_per_round = 4096;

  // Run control.
  Round rounds = 25000;
  std::uint64_t seed = 42;
  /// Threads driving Scheduler::StepShard inside one round (1 = fully
  /// serial). Any value produces bit-identical results — the decomposition
  /// is deterministic by construction (see core/scheduler.h).
  std::uint32_t worker_threads = 1;
  /// Pipelined round epilogue (worker_threads > 1 only): EndRound's flush
  /// runs destination-partitioned on the pool while the next round's
  /// adversary generation overlaps on the driving thread. Bit-identical to
  /// the serial epilogue either way — the switch exists for the
  /// before/after comparison in bench/parallel_rounds --phases.
  bool pipeline = true;
  /// Small-grid pool overhead guard: when shards / worker_threads falls
  /// below this, the engine skips the worker pool entirely and runs the
  /// serial step path — per-round dispatch/wake overhead exceeds the
  /// parallel win on small grids (BENCH_pipeline.json: workers=4 was 0.74x
  /// at s=256, i.e. *slower* than serial). Results are bit-identical either
  /// way (the decomposition is deterministic), so this is purely a
  /// wall-clock policy. The default keeps s=1024 x 8 workers parallel and
  /// serializes s=256 x 4. Set to 1 to force the pool on (tests and the
  /// determinism benches do, so worker-count coverage stays real). Must be
  /// >= 1; CLIs validate via ValidateMinShardsPerWorker and exit 2.
  std::uint32_t min_shards_per_worker = 128;
  /// After `rounds`, keep stepping (without injection) until the scheduler
  /// drains or `drain_cap` extra rounds elapse (0 = no drain phase).
  Round drain_cap = 0;

  /// Human-readable one-line description (benchmark output).
  std::string Describe() const;
};

/// CLI-shared validation for the backpressure watermark pair: true when
/// usable (low <= high, high > 0), otherwise prints one "invalid
/// backpressure watermarks: ..." line to stderr and returns false so the
/// caller can exit 2. One source of truth for the condition and the
/// message (the cli_invalid_backpressure_exits_2 ctest greps it); the
/// scheduler constructor re-checks the same condition as an aborting
/// invariant for non-CLI embedders.
bool ValidateBackpressureWatermarks(std::uint64_t low, std::uint64_t high);

/// CLI-shared validation for the pool-overhead threshold: true when usable
/// (>= 1 — "0 shards per worker" would make every grid serial by a
/// division that never triggers), otherwise prints one "invalid
/// min-shards-per-worker: ..." line to stderr and returns false so the
/// caller can exit 2 (the cli_invalid_min_shards_exits_2 ctest greps it).
/// The Simulation constructor re-checks the condition as an aborting
/// invariant for non-CLI embedders.
bool ValidateMinShardsPerWorker(std::uint32_t min_shards_per_worker);

/// CLI-shared validation for the sharded-BDS co-leader count: true when
/// usable (>= 1), otherwise prints one "invalid bds-color-leaders: ..."
/// line to stderr and returns false so the caller can exit 2 (the
/// cli_invalid_color_leaders_exits_2 ctest greps it). The scheduler
/// constructor re-checks the condition as an aborting invariant.
bool ValidateBdsColorLeaders(std::uint32_t bds_color_leaders);

/// CLI-shared validation for the multi-root FDS top-root count: true when
/// usable (>= 1), otherwise prints one "invalid fds-top-roots: ..." line to
/// stderr and returns false so the caller can exit 2 (the
/// cli_invalid_top_roots_exits_2 ctest greps it). The hierarchy builders
/// re-check the condition as an aborting invariant.
bool ValidateFdsTopRoots(std::uint32_t fds_top_roots);

/// CLI-shared validation for the churn schedule: true when `faults` parses
/// (durability::ParseFaultPlan grammar), every event targets a shard
/// < `shards` at a crash round < `rounds`, and — when non-empty —
/// `wal_enabled` is set (recovery without a log is not a scenario, it is
/// data loss). Otherwise prints one "invalid faults: ..." line to stderr
/// and returns false so the caller can exit 2 (the
/// cli_invalid_faults_exits_2 ctest greps it). The engine constructor
/// re-checks as an aborting invariant.
bool ValidateFaults(const std::string& faults, bool wal_enabled,
                    ShardId shards, Round rounds);

/// CLI-shared validation for the recovery pacing divisor: true when >= 1,
/// otherwise prints one "invalid replay-bytes-per-round: ..." line to
/// stderr and returns false so the caller can exit 2. The engine
/// constructor re-checks as an aborting invariant.
bool ValidateReplayBytesPerRound(std::uint64_t replay_bytes_per_round);

/// CLI-shared validation for the checkpoint cadence: true when 0 (never)
/// or when `wal_enabled` — a checkpoint without the log it bounds replay
/// for is meaningless. Otherwise prints one "invalid
/// checkpoint-interval: ..." line to stderr and returns false so the
/// caller can exit 2. The engine constructor re-checks as an aborting
/// invariant.
bool ValidateCheckpointInterval(Round checkpoint_interval, bool wal_enabled);

/// CLI-shared validation for the open-loop arrival knobs: true when
/// `arrival_rate` >= 0 and, when positive, `arrival_burst` >= 1. Otherwise
/// prints one "invalid arrival-rate: ..." line to stderr and returns false
/// so the caller can exit 2. The engine constructor re-checks as an
/// aborting invariant.
bool ValidateArrivalRate(double arrival_rate, double arrival_burst);

/// CLI-shared validation for the trace/strategy/rate coupling: a non-empty
/// `trace` requires strategy "trace_replay" and arrival_rate == 0 (the two
/// open-loop modes are exclusive), and "trace_replay" requires a trace.
/// Prints one "invalid trace: ..." line to stderr and returns false so the
/// caller can exit 2. File-level validation (parse, checksum, meta match)
/// is traffic::ValidateTraceFile; the engine constructor re-checks both as
/// aborting invariants.
bool ValidateTraceConfig(const std::string& trace, const std::string& strategy,
                         double arrival_rate);

/// Aggregated outcome of one simulation run.
struct SimResult {
  // Figure metrics.
  double avg_pending_per_shard = 0;  ///< mean over rounds of pending / s
  double avg_latency = 0;            ///< mean commit/abort delay (rounds)
  double max_latency = 0;
  double p50_latency = 0;
  double p99_latency = 0;
  double avg_leader_queue = 0;  ///< FDS: mean sch_ldr per active cluster
  /// Peak over executed rounds of LeaderQueueMean() — the hot-destination
  /// saturation metric the backpressure bench compares head-to-head.
  double max_leader_queue = 0;
  /// Peak over executed rounds of LeaderQueueMax() — the single hottest
  /// leader queue ever observed. LeaderQueueMean dilutes one overloaded
  /// leader across every active cluster; this is the undiluted pathology
  /// signal the leader-sharding fix targets.
  double max_single_leader_queue = 0;

  // Volume.
  std::uint64_t injected = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t unresolved = 0;  ///< still pending at the end
  std::uint64_t max_pending = 0;
  /// Peak over executed rounds of Scheduler::SpilledTxns() — how deep the
  /// backpressure spill queues ever got (0 for schedulers without
  /// admission control). Spilled transactions are registered with the
  /// ledger, so they are already counted inside pending/unresolved.
  std::uint64_t spill_peak = 0;

  // Cost.
  std::uint64_t messages = 0;
  std::uint64_t payload_units = 0;

  // Traffic (equal to `injected` under the closed-loop default; part of
  // the bit-identity contract like every other field).
  /// Arrivals the schedule produced, whether or not the strategy could
  /// shape them (open-loop); == injected for closed-loop runs.
  std::uint64_t offered_txns = 0;
  /// Transactions the injector actually handed to the engine.
  std::uint64_t injected_txns = 0;
  /// Peak arrivals waiting out a protocol stall (crash outage/replay) —
  /// 0 for closed-loop or fault-free runs.
  std::uint64_t inject_lag_peak = 0;

  // Durability & recovery (all 0 unless SimConfig::wal). Part of the
  // bit-identity contract like every other field: same config ⇒ same WAL
  // bytes, same checkpoint count, same recovery schedule, whatever
  // worker_threads or the pipeline switch.
  std::uint64_t wal_bytes = 0;        ///< total WAL bytes persisted
  std::uint64_t checkpoint_count = 0;
  std::uint64_t replay_bytes = 0;     ///< WAL bytes replayed by recoveries
  /// Rounds the protocol clock was stalled by crash outages + replay +
  /// catch-up; rounds_executed includes them (a faulted run reports
  /// exactly the fault-free rounds_executed plus this).
  Round recovery_rounds = 0;

  // Run facts.
  Round rounds_executed = 0;
  bool drained = false;  ///< drain phase reached Idle()
};

}  // namespace stableshard::core
