#include "core/bds.h"

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "core/scheduler_registry.h"

namespace stableshard::core {

BdsScheduler::BdsScheduler(const net::ShardMetric& metric,
                           CommitLedger& ledger, const BdsConfig& config)
    : metric_(&metric),
      ledger_(&ledger),
      config_(config),
      network_(metric),
      outbox_(metric.shard_count()),
      ownership_(metric.shard_count()),
      pending_(metric.shard_count()),
      home_(metric.shard_count()),
      co_(metric.shard_count()),
      dest_pending_(metric.shard_count()),
      inbox_(metric.shard_count()) {
  SSHARD_CHECK(config.color_leaders >= 1 &&
               "bds color_leaders must be positive");
  color_leaders_ = std::min<std::uint32_t>(config.color_leaders,
                                           metric.shard_count());
  // BDS is specified for the uniform model: Phase offsets assume
  // unit-distance delivery everywhere.
  for (ShardId a = 0; a < metric.shard_count(); ++a) {
    for (ShardId b = a + 1; b < metric.shard_count(); ++b) {
      SSHARD_CHECK(metric.distance(a, b) == 1 &&
                   "BDS requires the uniform communication model");
    }
  }
}

void BdsScheduler::Inject(const txn::Transaction& txn) {
  SSHARD_SERIAL_PHASE(ownership_);
  SSHARD_CHECK(txn.home() < pending_.size());
  pending_[txn.home()].push_back(txn);
}

std::uint64_t BdsScheduler::pending_in_queues() const {
  std::uint64_t total = 0;
  for (const auto& queue : pending_) total += queue.size();
  return total;
}

bool BdsScheduler::Idle() const {
  if (network_.HasPending() || !leader_inbox_.empty()) return false;
  for (const HomeState& home : home_) {
    if (!home.in_epoch.empty()) return false;
  }
  for (const CoLeaderState& co : co_) {
    if (!co.by_color.empty() || !co.in_flight.empty()) return false;
  }
  return pending_in_queues() == 0;
}

double BdsScheduler::LeaderQueueMax() const {
  // The hottest coordination queue right now: the leader's coloring inbox
  // plus, per shard, the 2PC records it is driving (home records in the
  // legacy mode, co-leader records and parked color classes in the sharded
  // one). Sizes only — deterministic whatever the worker count.
  std::uint64_t max_load = 0;
  for (ShardId shard = 0; shard < shard_count(); ++shard) {
    std::uint64_t load = home_[shard].in_epoch.size();
    if (shard == leader_) load += leader_inbox_.size();
    const CoLeaderState& co = co_[shard];
    load += co.in_flight.size();
    // lint:allow(unordered-iteration): order-independent sum of sizes.
    for (const auto& [color, txns] : co.by_color) load += txns.size();
    max_load = std::max(max_load, load);
  }
  return static_cast<double>(max_load);
}

void BdsScheduler::BeginRound(Round round) {
  // The serial prologue itself may touch any shard; arm the step-phase
  // guards for the StepShard fan-out that follows (core/ownership.h).
  ownership_.BeginStepPhase();
  phase_ = Phase::kNone;
  send_color_.reset();

  // Epoch transition: the epoch ends exactly at epoch_start + 2 + 4*colors
  // (all color-commit confirms arrived in the previous round).
  if (round == 0 || (epoch_end_ != kNoRound && round == epoch_end_)) {
    if (round != 0) {
      for (const HomeState& home : home_) {
        SSHARD_CHECK(home.in_epoch.empty() &&
                     "epoch ended with unresolved transactions");
      }
      for (const CoLeaderState& co : co_) {
        SSHARD_CHECK(co.by_color.empty() && co.in_flight.empty() &&
                     "epoch ended with unresolved co-leader state");
      }
      ++epoch_index_;
    }
    epoch_start_ = round;
    epoch_end_ = kNoRound;
    num_colors_ = 0;
    leader_ = config_.rotate_leader
                  ? static_cast<ShardId>(epoch_index_ % metric_->shard_count())
                  : 0;
    phase_ = Phase::kShipPending;
    return;
  }

  if (round == epoch_start_ + 1) {
    phase_ = Phase::kLeaderColor;
    return;
  }

  if (epoch_end_ != kNoRound && round >= epoch_start_ + 2 &&
      round < epoch_end_) {
    const Round offset = round - epoch_start_ - 2;
    if (offset % 4 == 0) {
      const Color color = static_cast<Color>(offset / 4);
      if (color < num_colors_) send_color_ = color;
    }
  }
}

void BdsScheduler::StepShard(ShardId shard, Round round) {
  const OwnershipRegistry::ShardClaim claim(ownership_, shard);
  network_.DeliverTo(shard, round, inbox_[shard]);
  for (auto& envelope : inbox_[shard]) {
    HandleMessage(shard, envelope.from, envelope.payload, round);
  }
  switch (phase_) {
    case Phase::kShipPending:
      ShipPending(shard);
      break;
    case Phase::kLeaderColor:
      if (shard == leader_) LeaderColorAndReply(round);
      break;
    case Phase::kNone:
      break;
  }
  if (send_color_.has_value()) {
    if (color_leaders_ > 1) {
      CoLeaderSendColor(shard, *send_color_);
    } else {
      SendSubTxnsForColor(shard, *send_color_);
    }
  }
}

void BdsScheduler::EndRound(Round round) {
  ownership_.EndParallelPhase();
  outbox_.Flush(network_, round);
  ledger_->FlushRound(round);
}

void BdsScheduler::SealRound(Round round, std::uint32_t parts) {
  ownership_.BeginFlushPhase();
  outbox_.Seal();
  network_.flush_cap.Acquire();  // annotation-only, no runtime effect
  ledger_->SealJournal(round, parts);
}

void BdsScheduler::FlushRoundPartition(Round round, std::uint32_t part,
                                       std::uint32_t parts) {
  const auto [begin, end] = FlushShardRange(shard_count(), part, parts);
  const OwnershipRegistry::RangeClaim claim(ownership_, begin, end);
  outbox_.FlushSealedTo(network_, round, begin, end);
  ledger_->ResolveSealedPartition(part, round);
}

void BdsScheduler::FinishRound(Round round) {
  ownership_.EndParallelPhase();
  outbox_.FinishSealedFlush(network_);
  ledger_->FinishSealedRound(round);
}

void BdsScheduler::ShipPending(ShardId home) {
  // Phase 1: the home shard ships its whole pending queue to the leader.
  // Also resets the home's per-color schedule from the finished epoch.
  // In the sharded-leader mode the home keeps no 2PC record — the
  // co-leader the color class lands on coordinates instead.
  SSHARD_OWNED(ownership_, home);
  HomeState& state = home_[home];
  state.by_color.clear();
  auto& queue = pending_[home];
  if (queue.empty()) return;
  TxnBatchMsg batch;
  batch.epoch = epoch_index_;
  batch.txns.reserve(queue.size());
  while (!queue.empty()) {
    txn::Transaction txn = std::move(queue.front());
    queue.pop_front();
    if (color_leaders_ <= 1) {
      InFlightTxn in_flight;
      in_flight.txn = txn;
      state.in_epoch.emplace(txn.id(), std::move(in_flight));
    }
    batch.txns.push_back(std::move(txn));
  }
  const std::uint64_t units = batch.txns.size();
  outbox_.Send(home, leader_, Message{std::move(batch)}, units);
}

void BdsScheduler::LeaderColorAndReply(Round round) {
  // Phase 2: color the shard-granularity conflict graph with <= Delta+1
  // colors and return the assignment; the color count fixes the epoch end.
  // The view and the coloring's internal scratch live in the step arena:
  // one Reset here recycles the previous epoch's allocations, so steady
  // state epochs touch no heap.
  SSHARD_OWNED(ownership_, leader_);
  step_arena_.Reset();
  common::ArenaVector<const txn::Transaction*> view{
      common::ArenaAllocator<const txn::Transaction*>(&step_arena_)};
  view.reserve(leader_inbox_.size());
  for (const auto& txn : leader_inbox_) view.push_back(&txn);
  const txn::ColoringResult coloring =
      ColorShardCliques(view, config_.coloring, step_arena_);
  SSHARD_DCHECK(IsProperShardColoring(view, coloring.color));

  num_colors_ = coloring.num_colors;
  epoch_end_ = epoch_start_ + 2 + 4ull * num_colors_;
  max_epoch_length_ = std::max(max_epoch_length_, epoch_end_ - epoch_start_);
  (void)round;

  if (color_leaders_ > 1) {
    // Sharded-leader mode: ship each whole color class to its co-leader,
    // which coordinates Phase 3 for the class. The class arrives at offset
    // 2 — exactly when color 0's sends are due, and deliveries are handled
    // before phase actions, so the schedule matches the legacy path
    // round-for-round.
    std::vector<ColorClassMsg> per_color(num_colors_);
    for (std::size_t v = 0; v < view.size(); ++v) {
      per_color[coloring.color[v]].txns.push_back(*view[v]);
    }
    for (Color color = 0; color < num_colors_; ++color) {
      ColorClassMsg& msg = per_color[color];
      if (msg.txns.empty()) continue;
      msg.epoch = epoch_index_;
      msg.color = color;
      const ShardId co_leader = CoLeaderFor(leader_, color, color_leaders_,
                                            metric_->shard_count());
      const std::uint64_t units = msg.txns.size();
      outbox_.Send(leader_, co_leader, Message{std::move(msg)}, units);
    }
  } else {
    // Group assignments by home shard and reply. Home shards rebuild their
    // by_color schedule from the reply — the leader keeps nothing.
    std::vector<ColorAssignMsg> per_home(metric_->shard_count());
    for (std::size_t v = 0; v < view.size(); ++v) {
      per_home[view[v]->home()].colors.emplace_back(view[v]->id(),
                                                    coloring.color[v]);
    }
    for (ShardId home = 0; home < per_home.size(); ++home) {
      if (per_home[home].colors.empty()) continue;
      per_home[home].epoch = epoch_index_;
      const std::uint64_t units = per_home[home].colors.size();
      outbox_.Send(leader_, home, Message{std::move(per_home[home])}, units);
    }
  }
  // Broadcast the plan so every shard knows the epoch length.
  for (ShardId shard = 0; shard < metric_->shard_count(); ++shard) {
    EpochPlanMsg plan;
    plan.epoch = epoch_index_;
    plan.num_colors = num_colors_;
    outbox_.Send(leader_, shard, Message{plan});
  }
  leader_inbox_.clear();
}

void BdsScheduler::SendSubTxnsForColor(ShardId home, Color color) {
  // Phase 3, per-color round 1: the home shard splits its color-`color`
  // transactions into subtransactions sent to the destination shards.
  SSHARD_OWNED(ownership_, home);
  HomeState& state = home_[home];
  if (color >= state.by_color.size()) return;
  for (const TxnId id : state.by_color[color]) {
    const auto it = state.in_epoch.find(id);
    SSHARD_CHECK(it != state.in_epoch.end());
    const txn::Transaction& txn = it->second.txn;
    for (const txn::SubTransaction& sub : txn.subs()) {
      SubTxnMsg msg;
      msg.txn = id;
      msg.coordinator = txn.home();
      msg.height = Height{0, 0, 0, color, id};
      msg.sub = sub;
      outbox_.Send(home, sub.destination, Message{std::move(msg)});
    }
  }
}

void BdsScheduler::CoLeaderSendColor(ShardId shard, Color color) {
  // Phase 3, per-color round 1 (sharded-leader mode): the color's
  // co-leader splits its whole class into subtransactions and opens the
  // 2PC records it will drive. Only the mapped co-leader has the class.
  SSHARD_OWNED(ownership_, shard);
  if (shard != CoLeaderFor(leader_, color, color_leaders_,
                           metric_->shard_count())) {
    return;
  }
  CoLeaderState& state = co_[shard];
  const auto it = state.by_color.find(color);
  if (it == state.by_color.end()) return;
  for (txn::Transaction& txn : it->second) {
    const TxnId id = txn.id();
    for (const txn::SubTransaction& sub : txn.subs()) {
      SubTxnMsg msg;
      msg.txn = id;
      msg.coordinator = shard;
      msg.height = Height{0, 0, 0, color, id};
      msg.sub = sub;
      outbox_.Send(shard, sub.destination, Message{std::move(msg)});
    }
    InFlightTxn in_flight;
    in_flight.color = color;
    in_flight.txn = std::move(txn);
    state.in_flight.emplace(id, std::move(in_flight));
  }
  state.by_color.erase(it);
}

void BdsScheduler::CollectVote(
    std::unordered_map<TxnId, InFlightTxn>& records, const VoteMsg& vote,
    ShardId shard) {
  // Phase 3 round 3: the coordinator (home shard in the legacy mode,
  // co-leader in the sharded one) collects votes; once complete it
  // confirms and drops the 2PC record (the outcome is sealed here).
  auto it = records.find(vote.txn);
  SSHARD_CHECK(it != records.end());
  InFlightTxn& in_flight = it->second;
  if (vote.commit) {
    ++in_flight.commit_votes;
  } else {
    ++in_flight.abort_votes;
  }
  const auto expected =
      static_cast<std::uint32_t>(in_flight.txn.subs().size());
  if (in_flight.commit_votes + in_flight.abort_votes == expected) {
    const bool commit = in_flight.abort_votes == 0;
    for (const txn::SubTransaction& sub : in_flight.txn.subs()) {
      ConfirmMsg confirm;
      confirm.txn = vote.txn;
      confirm.commit = commit;
      outbox_.Send(shard, sub.destination, Message{confirm});
    }
    records.erase(it);
  }
}

void BdsScheduler::HandleMessage(ShardId shard, ShardId from,
                                 Message& message, Round round) {
  // Every branch mutates state owned by `shard` (leader inbox, home 2PC
  // records, destination residue) — reject deliveries routed to a shard
  // the calling worker does not own.
  SSHARD_OWNED(ownership_, shard);
  (void)from;
  if (auto* batch = std::get_if<TxnBatchMsg>(&message)) {
    // Phase 1 arrival at the leader.
    SSHARD_CHECK(shard == leader_);
    for (auto& txn : batch->txns) leader_inbox_.push_back(std::move(txn));
  } else if (auto* assign = std::get_if<ColorAssignMsg>(&message)) {
    // Phase 2 arrival at a home shard: record colors and rebuild the
    // per-color send schedule for this epoch.
    HomeState& state = home_[shard];
    for (const auto& [id, color] : assign->colors) {
      const auto it = state.in_epoch.find(id);
      SSHARD_CHECK(it != state.in_epoch.end() &&
                   "color assigned to unknown transaction");
      it->second.color = color;
      if (state.by_color.size() <= color) state.by_color.resize(color + 1);
      state.by_color[color].push_back(id);
    }
  } else if (auto* color_class = std::get_if<ColorClassMsg>(&message)) {
    // Sharded-leader mode, Phase 2 arrival at a co-leader: park the whole
    // color class until its Phase-3 slot.
    SSHARD_CHECK(color_leaders_ > 1 &&
                 "ColorClassMsg outside the sharded-leader mode");
    auto& slot = co_[shard].by_color[color_class->color];
    SSHARD_CHECK(slot.empty() && "color class delivered twice");
    slot = std::move(color_class->txns);
  } else if (std::get_if<EpochPlanMsg>(&message) != nullptr) {
    // Epoch plan broadcast: models the communication; the round plan is
    // derived serially in BeginRound from the same data.
  } else if (auto* sub_msg = std::get_if<SubTxnMsg>(&message)) {
    // Phase 3 round 2: destination evaluates and votes.
    const bool vote = ledger_->EvaluateSub(sub_msg->sub);
    dest_pending_[shard].emplace(sub_msg->txn, sub_msg->sub);
    VoteMsg vote_msg;
    vote_msg.txn = sub_msg->txn;
    vote_msg.dest = shard;
    vote_msg.commit = vote;
    outbox_.Send(shard, sub_msg->coordinator, Message{vote_msg});
  } else if (auto* vote_msg = std::get_if<VoteMsg>(&message)) {
    // Votes arrive at whichever shard coordinates the transaction: the
    // home shard in the legacy mode, the color's co-leader in the sharded
    // one (the destination replied to SubTxnMsg::coordinator either way).
    CollectVote(color_leaders_ > 1 ? co_[shard].in_flight
                                   : home_[shard].in_epoch,
                *vote_msg, shard);
  } else if (auto* confirm = std::get_if<ConfirmMsg>(&message)) {
    // Phase 3 round 4: destination commits/aborts and clears state.
    auto it = dest_pending_[shard].find(confirm->txn);
    SSHARD_CHECK(it != dest_pending_[shard].end());
    ledger_->ApplyConfirmDeferred(confirm->txn, it->second, confirm->commit,
                                  round);
    dest_pending_[shard].erase(it);
  } else {
    SSHARD_CHECK(false && "unexpected message type in BDS");
  }
}

namespace {
// "bds" is the paper's single-leader Algorithm 1 verbatim (the
// bds_color_leaders knob is deliberately ignored — the sharded commit path
// is its own registered mode, so the baseline stays the baseline).
const SchedulerRegistrar kBdsRegistrar{
    "bds", [](const SimConfig& config, SchedulerDeps& deps) {
      BdsConfig bds;
      bds.coloring = config.coloring;
      bds.rotate_leader = config.bds_rotate_leader;
      return std::unique_ptr<Scheduler>(
          std::make_unique<BdsScheduler>(deps.metric, deps.ledger, bds));
    }};

// "bds_sharded": color classes partitioned across
// SimConfig::bds_color_leaders co-leader shards (1 reduces to the exact
// legacy path — the bit-identity golden in leader_sharding_test).
const SchedulerRegistrar kBdsShardedRegistrar{
    "bds_sharded", [](const SimConfig& config, SchedulerDeps& deps) {
      SSHARD_CHECK(config.bds_color_leaders >= 1);
      BdsConfig bds;
      bds.coloring = config.coloring;
      bds.rotate_leader = config.bds_rotate_leader;
      bds.color_leaders = config.bds_color_leaders;
      return std::unique_ptr<Scheduler>(
          std::make_unique<BdsScheduler>(deps.metric, deps.ledger, bds));
    }};
}  // namespace

}  // namespace stableshard::core
