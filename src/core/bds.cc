#include "core/bds.h"

#include <algorithm>

#include "common/check.h"

namespace stableshard::core {

BdsScheduler::BdsScheduler(const net::ShardMetric& metric,
                           CommitLedger& ledger, const BdsConfig& config)
    : metric_(&metric),
      ledger_(&ledger),
      config_(config),
      network_(metric),
      pending_(metric.shard_count()),
      dest_pending_(metric.shard_count()) {
  // BDS is specified for the uniform model: Phase offsets assume
  // unit-distance delivery everywhere.
  for (ShardId a = 0; a < metric.shard_count(); ++a) {
    for (ShardId b = a + 1; b < metric.shard_count(); ++b) {
      SSHARD_CHECK(metric.distance(a, b) == 1 &&
                   "BDS requires the uniform communication model");
    }
  }
}

void BdsScheduler::Inject(const txn::Transaction& txn) {
  SSHARD_CHECK(txn.home() < pending_.size());
  pending_[txn.home()].push_back(txn);
}

std::uint64_t BdsScheduler::pending_in_queues() const {
  std::uint64_t total = 0;
  for (const auto& queue : pending_) total += queue.size();
  return total;
}

bool BdsScheduler::Idle() const {
  if (network_.HasPending() || !in_epoch_.empty() || !leader_inbox_.empty()) {
    return false;
  }
  return pending_in_queues() == 0;
}

void BdsScheduler::StartEpoch(Round round) {
  epoch_start_ = round;
  epoch_end_ = kNoRound;
  num_colors_ = 0;
  leader_ = config_.rotate_leader
                ? static_cast<ShardId>(epoch_index_ % metric_->shard_count())
                : 0;
  SSHARD_CHECK(in_epoch_.empty() && "previous epoch left unresolved txns");
  by_color_.clear();

  // Phase 1: every home shard ships its whole pending queue to the leader.
  for (ShardId home = 0; home < pending_.size(); ++home) {
    auto& queue = pending_[home];
    if (queue.empty()) continue;
    TxnBatchMsg batch;
    batch.epoch = epoch_index_;
    batch.txns.reserve(queue.size());
    while (!queue.empty()) {
      txn::Transaction txn = std::move(queue.front());
      queue.pop_front();
      InFlightTxn in_flight;
      in_flight.txn = txn;
      in_epoch_.emplace(txn.id(), std::move(in_flight));
      ++in_epoch_unresolved_;
      batch.txns.push_back(std::move(txn));
    }
    const std::uint64_t units = batch.txns.size();
    network_.Send(home, leader_, round, Message{std::move(batch)}, units);
  }
}

void BdsScheduler::LeaderColorAndReply(Round round) {
  // Phase 2: color the shard-granularity conflict graph with <= Delta+1
  // colors and return the assignment; the color count fixes the epoch end.
  std::vector<const txn::Transaction*> view;
  view.reserve(leader_inbox_.size());
  for (const auto& txn : leader_inbox_) view.push_back(&txn);
  const txn::ColoringResult coloring =
      ColorShardCliques(view, config_.coloring);
  SSHARD_DCHECK(IsProperShardColoring(view, coloring.color));

  num_colors_ = coloring.num_colors;
  epoch_end_ = epoch_start_ + 2 + 4ull * num_colors_;
  max_epoch_length_ = std::max(max_epoch_length_, epoch_end_ - epoch_start_);
  by_color_.assign(num_colors_, {});

  // Group assignments by home shard and reply; also broadcast the plan so
  // every shard knows the epoch length.
  std::vector<ColorAssignMsg> per_home(metric_->shard_count());
  for (std::size_t v = 0; v < view.size(); ++v) {
    per_home[view[v]->home()].colors.emplace_back(view[v]->id(),
                                                  coloring.color[v]);
    by_color_[coloring.color[v]].push_back(view[v]->id());
  }
  for (ShardId home = 0; home < per_home.size(); ++home) {
    if (per_home[home].colors.empty()) continue;
    per_home[home].epoch = epoch_index_;
    const std::uint64_t units = per_home[home].colors.size();
    network_.Send(leader_, home, round, Message{std::move(per_home[home])},
                  units);
  }
  for (ShardId shard = 0; shard < metric_->shard_count(); ++shard) {
    EpochPlanMsg plan;
    plan.epoch = epoch_index_;
    plan.num_colors = num_colors_;
    network_.Send(leader_, shard, round, Message{plan});
  }
  leader_inbox_.clear();
}

void BdsScheduler::SendSubTxnsForColor(Round round, Color color) {
  // Phase 3, per-color round 1: home shards split color-`color` transactions
  // into subtransactions and send them to the destination shards.
  for (const TxnId id : by_color_[color]) {
    const auto it = in_epoch_.find(id);
    SSHARD_CHECK(it != in_epoch_.end());
    const txn::Transaction& txn = it->second.txn;
    for (const txn::SubTransaction& sub : txn.subs()) {
      SubTxnMsg msg;
      msg.txn = id;
      msg.coordinator = txn.home();
      msg.height = Height{0, 0, 0, color, id};
      msg.sub = sub;
      network_.Send(txn.home(), sub.destination, round, Message{std::move(msg)});
    }
  }
}

void BdsScheduler::HandleDeliveries(Round round) {
  for (auto& envelope : network_.Deliver(round)) {
    Message& message = envelope.payload;
    if (auto* batch = std::get_if<TxnBatchMsg>(&message)) {
      // Phase 1 arrival at the leader.
      SSHARD_CHECK(envelope.to == leader_);
      for (auto& txn : batch->txns) leader_inbox_.push_back(std::move(txn));
    } else if (std::get_if<ColorAssignMsg>(&message) != nullptr ||
               std::get_if<EpochPlanMsg>(&message) != nullptr) {
      // Color assignments / epoch plan: the grouping into by_color_ was
      // already recorded when the leader computed it (the message models
      // the communication; its content is identical).
    } else if (auto* sub_msg = std::get_if<SubTxnMsg>(&message)) {
      // Phase 3 round 2: destination evaluates and votes.
      const ShardId dest = envelope.to;
      const bool vote = ledger_->EvaluateSub(sub_msg->sub);
      dest_pending_[dest].emplace(sub_msg->txn, sub_msg->sub);
      VoteMsg vote_msg;
      vote_msg.txn = sub_msg->txn;
      vote_msg.dest = dest;
      vote_msg.commit = vote;
      network_.Send(dest, sub_msg->coordinator, round, Message{vote_msg});
    } else if (auto* vote_msg = std::get_if<VoteMsg>(&message)) {
      // Phase 3 round 3: home shard collects votes and confirms.
      auto it = in_epoch_.find(vote_msg->txn);
      SSHARD_CHECK(it != in_epoch_.end());
      InFlightTxn& in_flight = it->second;
      if (vote_msg->commit) {
        ++in_flight.commit_votes;
      } else {
        ++in_flight.abort_votes;
      }
      const auto expected =
          static_cast<std::uint32_t>(in_flight.txn.subs().size());
      if (!in_flight.confirmed &&
          in_flight.commit_votes + in_flight.abort_votes == expected) {
        in_flight.confirmed = true;
        const bool commit = in_flight.abort_votes == 0;
        for (const txn::SubTransaction& sub : in_flight.txn.subs()) {
          ConfirmMsg confirm;
          confirm.txn = vote_msg->txn;
          confirm.commit = commit;
          network_.Send(in_flight.txn.home(), sub.destination, round,
                        Message{confirm});
        }
      }
    } else if (auto* confirm = std::get_if<ConfirmMsg>(&message)) {
      // Phase 3 round 4: destination commits/aborts and clears state.
      const ShardId dest = envelope.to;
      auto it = dest_pending_[dest].find(confirm->txn);
      SSHARD_CHECK(it != dest_pending_[dest].end());
      const bool resolved =
          ledger_->ApplyConfirm(confirm->txn, it->second, confirm->commit,
                                round);
      dest_pending_[dest].erase(it);
      if (resolved) {
        in_epoch_.erase(confirm->txn);
        --in_epoch_unresolved_;
      }
    } else {
      SSHARD_CHECK(false && "unexpected message type in BDS");
    }
  }
}

void BdsScheduler::Step(Round round) {
  HandleDeliveries(round);

  // Epoch transition: the epoch ends exactly at epoch_start + 2 + 4*colors
  // (all color-commit confirms arrived in the previous round).
  if (round == 0) {
    StartEpoch(round);
  } else if (epoch_end_ != kNoRound && round == epoch_end_) {
    SSHARD_CHECK(in_epoch_.empty() &&
                 "epoch ended with unresolved transactions");
    ++epoch_index_;
    StartEpoch(round);
  }

  if (round == epoch_start_ + 1) {
    LeaderColorAndReply(round);
    return;
  }

  if (epoch_end_ != kNoRound && round >= epoch_start_ + 2 &&
      round < epoch_end_) {
    const Round offset = round - epoch_start_ - 2;
    if (offset % 4 == 0) {
      const Color color = static_cast<Color>(offset / 4);
      if (color < num_colors_) SendSubTxnsForColor(round, color);
    }
  }
}

}  // namespace stableshard::core
