// Algorithm 1: Basic Distributed Scheduler (BDS) for the uniform model.
//
// Time is divided into epochs. Each epoch processes exactly the
// transactions pending at its start and has three phases (Figure 1):
//
//   Phase 1 (1 round)   — every home shard sends its pending transactions
//                         to the epoch's leader shard (rotating:
//                         S_{epoch mod s}).
//   Phase 2 (1 round)   — the leader builds the conflict graph of the
//                         received transactions, colors it with at most
//                         Delta+1 colors, sends the colors back to the home
//                         shards and broadcasts the color count (which
//                         fixes the epoch length 2 + 4*(#colors)).
//   Phase 3 (4 rounds per color) — for color z (0-based), at offset
//                         2 + 4z the home shards send the subtransactions
//                         of color-z transactions to their destination
//                         shards; destinations vote (commit/abort) back to
//                         the home shard; the home shard confirms; the
//                         destinations commit or abort. Same-color
//                         transactions are shard-disjoint (the coloring is
//                         on the shard-granularity conflict graph), so each
//                         shard commits at most one subtransaction per
//                         round and all subtransactions of a transaction
//                         commit in the same round.
//
// Stability (Theorem 2): for rho <= max{1/(18k), 1/(18*ceil(sqrt(s)))} and
// b >= 1, pending transactions are at most 4bs and latency at most
// 36*b*min{k, ceil(sqrt(s))}.
//
// The implementation exchanges real messages through net::Network with the
// uniform metric (all distances 1), so the phase offsets above are exactly
// the delivery rounds; traffic is accounted per Section 3's O(bs) bound.
//
// Shard-parallel decomposition: every piece of epoch state is owned by one
// shard — injection queues, in-epoch 2PC records and per-color send lists
// by the *home* shard, the coloring inbox by the *leader*, schedule/commit
// residue by the *destination*. BeginRound runs the (serial) epoch
// transition and snapshots the round's phase action; StepShard drains the
// shard's deliveries and executes its slice of the phase; EndRound flushes
// the outbox lanes and the ledger journal. Home shards learn their colors
// from the leader's ColorAssignMsg (round offset 2) rather than by peeking
// at leader state, which is what makes Phase 3 shard-local.
//
// Sharded-leader mode (BdsConfig::color_leaders = L > 1): the epoch leader
// still receives every pending transaction and colors the conflict graph
// serially — the coloring is the one genuinely global decision, and keeping
// it on one shard keeps it bit-reproducible. What gets sharded is the
// *commit* role: instead of returning ColorAssignMsg to the home shards,
// the leader ships each whole color class to a deterministic co-leader
// shard (color c -> S_{(leader + 1 + c mod L) mod s}, see CoLeaderFor) via
// ColorClassMsg. The co-leader becomes the Phase-3 coordinator for its
// classes: it sends the subtransactions, collects the votes and confirms —
// so vote fan-in no longer funnels through per-home 2PC records that all
// drained through one epoch pipeline, and consecutive colors run on
// distinct shards. Timing is identical to the legacy path (the class ships
// at offset 1, arrives at offset 2 — exactly when color 0's sends are due,
// and deliveries are handled before phase actions), so commit rounds,
// latencies and counts match the single-leader run bit-for-bit; only the
// message endpoints/counts differ. Every co-leader structure is owned by
// the co-leader shard, so the Debug ownership checker proves the
// decomposition exactly like the legacy one.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "core/commit_ledger.h"
#include "core/messages.h"
#include "core/ownership.h"
#include "core/scheduler.h"
#include "net/metric.h"
#include "net/network.h"
#include "net/outbox.h"
#include "txn/coloring.h"

namespace stableshard::core {

struct BdsConfig {
  txn::ColoringAlgorithm coloring = txn::ColoringAlgorithm::kGreedy;
  /// Rotate the leader shard every epoch (the paper's load-balancing rule);
  /// disabled in the leader-rotation ablation.
  bool rotate_leader = true;
  /// Number of co-leader shards the epoch's color classes are partitioned
  /// across (see the sharded-leader mode note above). 1 = the paper's
  /// single-leader Algorithm 1; values above the shard count are clamped.
  /// Must be >= 1 (the constructor dies otherwise).
  std::uint32_t color_leaders = 1;
};

class BdsScheduler final : public Scheduler {
 public:
  BdsScheduler(const net::ShardMetric& metric, CommitLedger& ledger,
               const BdsConfig& config = {});

  void Inject(const txn::Transaction& txn) override;
  void BeginRound(Round round) override;
  void StepShard(ShardId shard, Round round) override;
  void EndRound(Round round) override
      SSHARD_EXCLUDES(outbox_.sealed_cap, ledger_->journal_cap);
  void SealRound(Round round, std::uint32_t parts) override
      SSHARD_ACQUIRE(outbox_.sealed_cap, network_.flush_cap,
                     ledger_->journal_cap);
  void FlushRoundPartition(Round round, std::uint32_t part,
                           std::uint32_t parts) override
      SSHARD_REQUIRES(outbox_.sealed_cap, network_.flush_cap,
                      ledger_->journal_cap);
  void FinishRound(Round round) override
      SSHARD_RELEASE(outbox_.sealed_cap, network_.flush_cap,
                     ledger_->journal_cap);
  ShardId shard_count() const override { return metric_->shard_count(); }
  bool Idle() const override;
  std::uint64_t MessagesSent() const override {
    return network_.stats().messages_sent;
  }
  std::uint64_t PayloadUnits() const override {
    return network_.stats().payload_units;
  }
  net::RingMemory NetworkMemory() const override {
    return network_.ring_memory();
  }
  net::LaneMemory OutboxMemory() const override {
    return outbox_.lane_memory();
  }
  net::ShardTraffic ShardTrafficFor(ShardId shard) const override {
    return network_.shard_traffic(shard);
  }
  common::ArenaMemoryStats ArenaMemory() const override {
    return step_arena_.memory();
  }
  std::uint64_t QueueDepth(ShardId shard) const override {
    return network_.pending_for(shard);
  }
  double LeaderQueueMax() const override;
  const char* name() const override {
    return color_leaders_ > 1 ? "bds_sharded" : "bds";
  }

  /// The deterministic color-class -> co-leader mapping of the sharded
  /// mode: color c is coordinated by S_{(leader + 1 + c mod L) mod s}.
  /// Static so tests (ownership death tests included) can reproduce the
  /// ownership boundary without poking scheduler internals.
  static ShardId CoLeaderFor(ShardId leader, Color color,
                             std::uint32_t color_leaders, ShardId shards) {
    return static_cast<ShardId>(
        (static_cast<std::uint64_t>(leader) + 1 + color % color_leaders) %
        shards);
  }

  /// Introspection for tests / benches.
  std::uint64_t epoch_index() const { return epoch_index_; }
  ShardId current_leader() const { return leader_; }
  std::uint32_t color_leaders() const { return color_leaders_; }
  std::uint32_t last_epoch_colors() const { return num_colors_; }
  std::uint64_t max_epoch_length() const { return max_epoch_length_; }
  std::uint64_t pending_in_queues() const;
  const net::Network<Message>& network() const { return network_; }

 private:
  struct InFlightTxn {
    txn::Transaction txn;
    Color color = 0;
    std::uint32_t commit_votes = 0;
    std::uint32_t abort_votes = 0;
  };

  /// Per-home-shard epoch state: the 2PC records the home shard drives plus
  /// its slice of the per-color send schedule (rebuilt each epoch from the
  /// leader's ColorAssignMsg). Unused in the sharded-leader mode, where the
  /// co-leaders coordinate instead of the homes.
  struct HomeState {
    std::unordered_map<TxnId, InFlightTxn> in_epoch;
    std::vector<std::vector<TxnId>> by_color;
  };

  /// Per-co-leader epoch state (sharded-leader mode only): the color
  /// classes received from the epoch leader and awaiting their Phase-3
  /// slot, plus the 2PC records of the classes currently in flight. Owned
  /// by the co-leader shard — only its StepShard may touch it.
  struct CoLeaderState {
    std::unordered_map<Color, std::vector<txn::Transaction>> by_color;
    std::unordered_map<TxnId, InFlightTxn> in_flight;
  };

  /// What this round does, decided serially in BeginRound.
  enum class Phase : std::uint8_t { kNone, kShipPending, kLeaderColor };

  void ShipPending(ShardId home);
  void LeaderColorAndReply(Round round);
  void SendSubTxnsForColor(ShardId home, Color color);
  void CoLeaderSendColor(ShardId shard, Color color);
  void CollectVote(std::unordered_map<TxnId, InFlightTxn>& records,
                   const VoteMsg& vote, ShardId shard);
  void HandleMessage(ShardId shard, ShardId from, Message& message,
                     Round round);

  const net::ShardMetric* metric_;
  CommitLedger* ledger_;
  BdsConfig config_;
  net::Network<Message> network_;
  net::OutboxSet<Message> outbox_;
  /// Debug-build shard-ownership checker (see core/ownership.h): StepShard
  /// claims its shard, FlushRoundPartition its destination range, and the
  /// shard-owned helpers below guard with SSHARD_OWNED. Empty in Release.
  OwnershipRegistry ownership_;

  // Home-shard injection queues (new transactions awaiting the next epoch).
  std::vector<std::deque<txn::Transaction>> pending_;

  // Epoch state (written serially in BeginRound, except num_colors_ /
  // epoch_end_ / max_epoch_length_, which only the leader's StepShard
  // writes at offset 1 and only serial phases read afterwards).
  std::uint64_t epoch_index_ = 0;
  Round epoch_start_ = 0;
  Round epoch_end_ = kNoRound;  ///< known after Phase 2
  ShardId leader_ = 0;
  std::uint32_t num_colors_ = 0;
  std::uint64_t max_epoch_length_ = 0;

  // Round plan snapshot (BeginRound output, read-only during StepShard).
  Phase phase_ = Phase::kNone;
  std::optional<Color> send_color_;

  // Leader-side: transactions received in Phase 1 of the current epoch.
  std::vector<txn::Transaction> leader_inbox_;

  /// Phase-2 scratch arena: the coloring view and the coloring's internal
  /// bitsets/ordering are bump-allocated here and recycled wholesale.
  /// Only one shard (the epoch leader) colors per round, so a single arena
  /// reset at the top of LeaderColorAndReply respects the StepShard
  /// ownership contract — resets happen only on coloring rounds, so the
  /// high-water decay tracks epochs, not idle rounds.
  common::Arena step_arena_;

  // Home-shard side, indexed by home shard.
  std::vector<HomeState> home_;

  // Co-leader side, indexed by shard (sharded-leader mode only; the
  // vector is allocated either way so indexing is branch-free).
  std::vector<CoLeaderState> co_;
  std::uint32_t color_leaders_ = 1;  ///< effective L (clamped to s)

  // Destination-shard side: subtransactions received and awaiting confirm.
  std::vector<std::unordered_map<TxnId, txn::SubTransaction>> dest_pending_;

  /// Per-shard delivery buffers: DeliverTo swaps the due ring slot with the
  /// shard's buffer, recycling envelope capacity across rounds (shard-owned,
  /// so concurrent StepShard calls never share one).
  std::vector<std::vector<net::Network<Message>::Envelope>> inbox_;
};

}  // namespace stableshard::core
