// Transaction heights (paper Section 6.2).
//
// FDS orders scheduled transactions by the lexicographic tuple
// (t_end, layer, sublayer, color): t_end is the end time of the epoch in
// which the transaction was (re)colored, so earlier-scheduled work and
// lower-layer (more local) clusters get priority. We append the transaction
// id as a final tiebreaker so the order is *total* — destination shards
// sort their schedule queues identically, which is what guarantees the
// consistent cross-shard serialization the paper relies on.
#pragma once

#include <compare>
#include <cstdint>

#include "common/types.h"

namespace stableshard::core {

struct Height {
  Round t_end = 0;
  std::uint32_t layer = 0;
  std::uint32_t sublayer = 0;
  Color color = 0;
  TxnId txn = kInvalidTxn;

  friend auto operator<=>(const Height&, const Height&) = default;
};

}  // namespace stableshard::core
