#include "core/ownership.h"

#ifndef NDEBUG

#include <cstdio>
#include <cstdlib>

namespace stableshard::core {

thread_local OwnershipRegistry::ThreadClaim OwnershipRegistry::tls_claim_{};

namespace {

const char* PhaseName(OwnershipRegistry::Phase phase) {
  switch (phase) {
    case OwnershipRegistry::Phase::kSerial:
      return "serial";
    case OwnershipRegistry::Phase::kStep:
      return "step";
    case OwnershipRegistry::Phase::kFlush:
      return "flush";
  }
  return "?";
}

}  // namespace

void OwnershipRegistry::AssertShardOwned(ShardId shard) const {
  if (phase_ == Phase::kSerial) return;
  const ThreadClaim& claim = tls_claim_;
  if (claim.registry == this && claim.begin <= shard && shard < claim.end) {
    return;
  }
  OwnershipViolation(shard);
}

void OwnershipRegistry::AssertSerialPhase() const {
  if (phase_ == Phase::kSerial) return;
  std::fprintf(stderr,
               "SSHARD ownership violation: serial-phase-only state touched "
               "during the %s phase\n",
               PhaseName(phase_));
  std::abort();
}

void OwnershipRegistry::OwnershipViolation(ShardId shard) const {
  const ThreadClaim& claim = tls_claim_;
  char held[64];
  if (claim.registry == this) {
    std::snprintf(held, sizeof(held), "claim [%u, %u)", claim.begin,
                  claim.end);
  } else {
    std::snprintf(held, sizeof(held), "no claim on this scheduler");
  }
  char owner[64];
  const std::uint64_t packed =
      shard < owner_.size()
          ? owner_[shard].load(std::memory_order_relaxed)
          : 0;
  if (packed != 0) {
    const std::uint64_t range = packed - 1;
    std::snprintf(owner, sizeof(owner), "claim [%u, %u)",
                  static_cast<ShardId>(range >> 32),
                  static_cast<ShardId>(range & 0xffffffffu));
  } else {
    std::snprintf(owner, sizeof(owner), "unclaimed so far this phase");
  }
  std::fprintf(stderr,
               "SSHARD ownership violation: cross-shard touch of shard %u "
               "during the %s phase; this worker holds %s, shard %u is "
               "owned by %s\n",
               shard, PhaseName(phase_), held, shard, owner);
  std::abort();
}

}  // namespace stableshard::core

#endif  // NDEBUG
