// Experiment sweep runner: executes a batch of independent simulation
// configurations and collects results in input order. Each simulation is
// deterministic in (config, seed) — and worker_threads-invariant — so the
// execution strategy cannot change any result.
//
// Single-level parallelism policy: when every config is serial
// (worker_threads == 1) the sweep fans configs across one thread pool;
// when any config asks for an inner pool (worker_threads > 1) the sweep
// runs configs sequentially so pools never nest (no oversubscription at
// large s — the s = 1024 grids run one 8-worker simulation at a time).
#pragma once

#include <vector>

#include "core/config.h"
#include "core/engine.h"

namespace stableshard::core {

struct ExperimentRun {
  SimConfig config;
  SimResult result;
};

/// Run all configs (thread count 0 = hardware concurrency).
std::vector<ExperimentRun> RunSweep(const std::vector<SimConfig>& configs,
                                    std::size_t threads = 0);

}  // namespace stableshard::core
