// Experiment sweep runner: executes a batch of independent simulation
// configurations on a thread pool and collects results in input order.
// Each simulation is single-threaded and deterministic in (config, seed),
// so parallelism across configurations cannot change any result.
#pragma once

#include <vector>

#include "core/config.h"
#include "core/engine.h"

namespace stableshard::core {

struct ExperimentRun {
  SimConfig config;
  SimResult result;
};

/// Run all configs (thread count 0 = hardware concurrency).
std::vector<ExperimentRun> RunSweep(const std::vector<SimConfig>& configs,
                                    std::size_t threads = 0);

}  // namespace stableshard::core
