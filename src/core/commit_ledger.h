// Commit bookkeeping shared by all schedulers.
//
// The CommitLedger owns the per-shard account stores and local blockchains,
// evaluates subtransaction votes, applies confirmed commits, tracks
// per-transaction resolution (a transaction resolves when its last
// subtransaction commits or aborts everywhere), and enforces the model's
// safety invariants at runtime:
//   * unit shard capacity  — at most one subtransaction commit per shard
//     per round (Section 3: "exactly one subtransaction can be processed in
//     each shard" per round);
//   * vote consistency     — a commit is only applied if the condition and
//     validity checks still hold (the schedulers' pin discipline guarantees
//     they do; a violation aborts the simulation).
//
// Shard-parallel rounds: ApplyConfirm mixes shard-local effects (store
// writes, chain append) with global bookkeeping (resolution records,
// counters, latency). The decomposed schedulers instead call
// ApplyConfirmDeferred from StepShard — it performs only the shard-local
// half (safe for concurrent calls on distinct destinations) and journals
// the resolution event — and FlushRound from EndRound, which drains the
// per-shard journals in shard order so the global bookkeeping stays
// deterministic regardless of thread scheduling.
//
// Pipelined rounds: the journal is double-buffered so the next round's
// StepShard may keep journaling while pool workers drain the sealed copy.
// SealJournal swaps the buffers; ResolveSealedPartition applies the
// remaining-count decrements in parallel; FinishSealedRound folds the
// counters and latency serially. The parallel stage is partitioned by
// *transaction id* (txn % parts), NOT by destination: one transaction's
// subtransactions resolve on several destination shards, so a
// destination-partitioned drain would race on the shared TxnRecord. With
// id-residue ownership each record is touched by exactly one worker, in
// the serial journal-order subsequence, and every completion is tagged
// with its global journal index so FinishSealedRound can replay the
// latency recorder in the exact serial order — float accumulation is
// order-sensitive, and the workers-1-vs-N bit-identity contract covers the
// latency means. The per-destination sealed journals themselves are only
// read concurrently.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chain/account_map.h"
#include "chain/account_store.h"
#include "chain/local_chain.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "durability/wal.h"
#include "stats/latency_recorder.h"
#include "txn/transaction.h"

namespace stableshard::core {

class CommitLedger {
 public:
  /// Annotation-only capability for the sealed-journal window: SealJournal
  /// acquires it, ResolveSealedPartition requires it, FinishSealedRound
  /// releases it, and every serial-path mutation (RegisterInjection,
  /// ApplyConfirm, FlushRound) excludes it — so on clang, mutating the
  /// ledger inside a Seal..Finish window fails compilation (the class
  /// comment's "no other ledger mutation may overlap" contract). Public so
  /// schedulers' annotations can name it; no runtime state.
  common::PhaseCapability journal_cap;

  CommitLedger(const chain::AccountMap& map, chain::Balance initial_balance);

  /// Attach a write-ahead log: every ApplyConfirm/ApplyConfirmDeferred
  /// stages a durable record for its destination shard, sealed and
  /// persisted alongside the journal (SealJournal drives wal->Seal,
  /// ResolveSealedPartition drives the partitioned persist, the serial
  /// FlushRound drives PersistAll). The manager must cover the same shard
  /// count and outlive the ledger. Optional — without it the ledger
  /// behaves exactly as before, bit for bit.
  void AttachWal(durability::WalManager* wal);

  /// Register a newly injected transaction (latency clock starts; expected
  /// subtransaction count recorded).
  void RegisterInjection(const txn::Transaction& txn)
      SSHARD_EXCLUDES(journal_cap);

  /// Vote decision for a subtransaction on its destination shard's current
  /// state: all conditions hold and all actions are valid.
  bool EvaluateSub(const txn::SubTransaction& sub) const;

  /// Apply the coordinator's decision for one subtransaction at `round`.
  /// On commit: re-checks EvaluateSub (scheduler pin bug otherwise), applies
  /// the actions and appends a block to the destination's local chain.
  /// Returns true if the whole transaction became resolved by this call.
  bool ApplyConfirm(TxnId txn, const txn::SubTransaction& sub, bool commit,
                    Round round) SSHARD_EXCLUDES(journal_cap);

  /// Shard-local half of ApplyConfirm for the parallel round loop: applies
  /// the commit effects to `sub.destination`'s store/chain (with the same
  /// capacity and stale-state checks) and journals the resolution event.
  /// Safe to call concurrently for distinct destination shards; the global
  /// bookkeeping happens in FlushRound.
  void ApplyConfirmDeferred(TxnId txn, const txn::SubTransaction& sub,
                            bool commit, Round round);

  /// Serial: drain the per-shard journals (in shard order) filled by
  /// ApplyConfirmDeferred during round `round`, updating resolution
  /// records, counters and latency.
  void FlushRound(Round round) SSHARD_EXCLUDES(journal_cap);

  /// Serial: swap the active journal with the (drained) sealed one and set
  /// up `parts` completion buffers for the partitioned resolution. The next
  /// round's ApplyConfirmDeferred calls land in fresh journals while pool
  /// workers drain the sealed copy. `round` tags the attached WAL's sealed
  /// window (the journal itself never needed it — the WAL's durable
  /// callbacks do).
  void SealJournal(Round round, std::uint32_t parts)
      SSHARD_ACQUIRE(journal_cap);

  /// Parallel-safe: apply the sealed journal entries owned by `part`
  /// (txn % parts == part, walking destinations in shard order) — record
  /// decrements only; completions are buffered with their global journal
  /// index. Each TxnRecord is touched by exactly one partition. No other
  /// ledger mutation (RegisterInjection included) may overlap the
  /// Seal..Finish window.
  void ResolveSealedPartition(std::uint32_t part, Round round)
      SSHARD_REQUIRES(journal_cap);

  /// Serial epilogue: merge the partitions' completion buffers back into
  /// global journal order and apply counters + latency, then retire the
  /// sealed journals.
  void FinishSealedRound(Round round) SSHARD_RELEASE(journal_cap);

  bool IsResolved(TxnId txn) const;

  /// Transactions injected but not yet fully resolved.
  std::uint64_t pending() const { return registered_ - resolved_; }
  std::uint64_t registered() const { return registered_; }
  std::uint64_t resolved() const { return resolved_; }
  std::uint64_t committed_txns() const { return committed_txns_; }
  std::uint64_t aborted_txns() const { return aborted_txns_; }

  const stats::LatencyRecorder& latency() const { return latency_; }
  const std::vector<chain::LocalChain>& chains() const { return chains_; }
  const chain::AccountStore& store(ShardId shard) const {
    return stores_[shard];
  }
  chain::AccountStore& mutable_store(ShardId shard) { return stores_[shard]; }
  const chain::AccountMap& account_map() const { return *map_; }
  chain::Balance initial_balance() const { return initial_balance_; }

  // Recovery surface (durability/recovery.cc; serial, between rounds).

  /// Unit-capacity marker for `shard` (kNoRound = no commit yet).
  Round last_commit_round(ShardId shard) const {
    return last_commit_round_[shard];
  }
  chain::LocalChain& mutable_chain(ShardId shard) { return chains_[shard]; }
  /// Reinstate the unit-capacity marker while rebuilding a shard.
  void RestoreLastCommitRound(ShardId shard, Round round) {
    last_commit_round_[shard] = round;
  }
  /// Model a shard losing its volatile state: fresh store (initial
  /// balances), empty chain, cleared capacity marker. Resolution records
  /// and counters are global (coordinator-side) state and survive — the
  /// crash model fails a shard's *storage*, not the protocol bookkeeping
  /// the rest of the system already observed.
  void ResetShardForRecovery(ShardId shard) SSHARD_EXCLUDES(journal_cap);

 private:
  struct TxnRecord {
    Round injected = 0;
    std::uint32_t remaining = 0;  ///< unresolved subtransactions
    bool any_abort = false;
  };

  struct JournalEntry {
    TxnId txn = kInvalidTxn;
    bool commit = false;
  };

  /// A transaction fully resolved during a sealed-journal drain, tagged
  /// with the global (destination-order) index of its resolving entry so
  /// the serial epilogue can replay completions in exact serial order.
  struct Completion {
    std::uint64_t journal_index = 0;
    Round injected = 0;
    bool committed = false;
  };

  /// Global (records/counters/latency) half of a confirm application.
  void ResolveConfirm(TxnId txn, bool commit, Round round);

  const chain::AccountMap* map_;
  chain::Balance initial_balance_;
  durability::WalManager* wal_ = nullptr;  ///< optional, not owned
  std::vector<chain::AccountStore> stores_;   // one per shard
  std::vector<chain::LocalChain> chains_;     // one per shard
  std::vector<Round> last_commit_round_;      // unit-capacity enforcement
  std::vector<std::vector<JournalEntry>> journal_;  // per destination shard
  /// Double buffer of journal_ (swapped by SealJournal; empty outside a
  /// Seal..Finish window) plus the drain scratch: per-destination global
  /// index bases and per-partition completion buffers (reused every round).
  std::vector<std::vector<JournalEntry>> sealed_journal_;
  std::vector<std::uint64_t> sealed_prefix_;
  std::vector<std::vector<Completion>> completions_;
  std::uint32_t sealed_parts_ = 0;
  std::unordered_map<TxnId, TxnRecord> records_;
  stats::LatencyRecorder latency_;
  std::uint64_t registered_ = 0;
  std::uint64_t resolved_ = 0;
  std::uint64_t committed_txns_ = 0;
  std::uint64_t aborted_txns_ = 0;
};

}  // namespace stableshard::core
