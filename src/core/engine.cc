#include "core/engine.h"

#include <algorithm>
#include <chrono>

#include "adversary/strategy_registry.h"
#include "common/check.h"
#include "core/scheduler_registry.h"
#include "durability/recovery.h"

namespace stableshard::core {

namespace {

// Phase timing telemetry only — no simulation decision ever reads it, so
// results stay bit-identical across hosts.
// lint:allow(wall-clock): wall-clock feeds phase_times_ telemetry only.
using Clock = std::chrono::steady_clock;

inline double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

Simulation::Simulation(const SimConfig& config)
    : config_(config), rng_(config.seed) {
  SSHARD_CHECK(config.shards >= 1);
  SSHARD_CHECK(config.accounts >= 1);
  SSHARD_CHECK(config.k >= 1);
  SSHARD_CHECK(config.rho > 0.0 && config.rho <= 1.0);
  SSHARD_CHECK(config.burstiness > 0.0);
  SSHARD_CHECK(config.worker_threads >= 1);
  SSHARD_CHECK(config.min_shards_per_worker >= 1);
  SSHARD_CHECK(config.bds_color_leaders >= 1);
  SSHARD_CHECK(config.fds_top_roots >= 1);
  SSHARD_CHECK(config.replay_bytes_per_round >= 1);
  SSHARD_CHECK(config.checkpoint_interval == 0 || config.wal);
  SSHARD_CHECK(config.arrival_rate >= 0.0);
  SSHARD_CHECK(config.arrival_rate == 0.0 || config.arrival_burst >= 1.0);
  if (!config.trace.empty()) {
    SSHARD_CHECK(config.strategy == "trace_replay" &&
                 "a trace requires the trace_replay strategy");
    SSHARD_CHECK(config.arrival_rate == 0.0 &&
                 "trace and arrival_rate are exclusive");
  } else {
    SSHARD_CHECK(config.strategy != "trace_replay" &&
                 "trace_replay requires SimConfig::trace");
  }
  open_loop_ = !config.trace.empty() || config.arrival_rate > 0.0;
  std::string fault_error;
  SSHARD_CHECK(
      durability::ParseFaultPlan(config.faults, &fault_plan_, &fault_error) &&
      "unparseable SimConfig::faults spec");
  if (!fault_plan_.empty()) {
    SSHARD_CHECK(config.wal && "faults require the WAL");
    for (const durability::FaultEvent& event : fault_plan_.events) {
      SSHARD_CHECK(event.shard < config.shards && "fault shard out of range");
      SSHARD_CHECK(event.crash_round < config.rounds &&
                   "fault crash round past the injection phase");
    }
  }

  metric_ = net::MakeMetric(config.topology, config.shards, &rng_);

  switch (config.account_assignment) {
    case AccountAssignment::kRoundRobin:
      accounts_ = std::make_unique<chain::AccountMap>(
          chain::AccountMap::RoundRobin(config.shards, config.accounts));
      break;
    case AccountAssignment::kRandom:
      accounts_ = std::make_unique<chain::AccountMap>(
          chain::AccountMap::Random(config.shards, config.accounts, rng_));
      break;
  }

  ledger_ = std::make_unique<CommitLedger>(*accounts_,
                                           config.initial_balance);
  liveness_ = std::make_unique<durability::LivenessTracker>(config.shards);
  if (config.wal) {
    storage_ = std::make_unique<durability::MemoryStorage>(config.shards);
    wal_ = std::make_unique<durability::WalManager>(config.shards,
                                                    storage_.get());
    ledger_->AttachWal(wal_.get());
  }

  // The injection seam: both loops build their workload strategy through
  // the registry and derive generation randomness from the same seed, so a
  // strategy shapes candidates identically whichever loop drives it.
  const std::uint64_t injection_seed = Mix64(config.seed ^ 0xada5a77e5eedULL);
  adversary::StrategyDeps strategy_deps{*accounts_, *metric_, rng_};
  auto strategy = adversary::StrategyRegistry::Global().Build(
      config.strategy, config_, strategy_deps);
  if (!config.trace_out.empty()) {
    trace_writer_ =
        std::make_unique<traffic::TraceWriter>(config.shards, config.accounts);
  }
  if (open_loop_) {
    std::unique_ptr<traffic::ArrivalSchedule> schedule;
    if (!config.trace.empty()) {
      traffic::Trace trace;
      std::string trace_error;
      SSHARD_CHECK(
          traffic::LoadTraceFile(config.trace, &trace, &trace_error) &&
          "unparseable SimConfig::trace file");
      SSHARD_CHECK(trace.shards == config.shards &&
                   trace.accounts == config.accounts &&
                   "trace recorded for a different shard/account layout");
      schedule = std::make_unique<traffic::TraceArrivals>(trace);
    } else {
      schedule = std::make_unique<traffic::TokenBucketArrivals>(
          config.arrival_rate, config.arrival_burst, config.burst_round,
          config.rounds);
    }
    auto open = std::make_unique<traffic::OpenLoopInjector>(
        std::move(schedule), std::move(strategy), *accounts_, injection_seed);
    if (trace_writer_) {
      open->set_recorder([writer = trace_writer_.get()](
                             Round round, ShardId home,
                             const std::vector<txn::AccessSpec>& accesses) {
        writer->Record(round, home, accesses);
      });
    }
    injector_ = std::move(open);
  } else {
    adversary::AdversaryConfig adversary_config;
    adversary_config.rho = config.rho;
    adversary_config.burstiness = config.burstiness;
    adversary_config.burst_round = config.burst_round;
    adversary_config.seed = injection_seed;
    adversary_ = std::make_unique<adversary::Adversary>(
        adversary_config, *accounts_, std::move(strategy));
    if (trace_writer_) {
      adversary_->set_recorder([writer = trace_writer_.get()](
                                   Round round, ShardId home,
                                   const std::vector<txn::AccessSpec>& accesses) {
        writer->Record(round, home, accesses);
      });
    }
    injector_ =
        std::make_unique<traffic::ClosedLoopInjector>(*adversary_, config.rounds);
  }

  SchedulerDeps deps{*metric_, *ledger_,
                     [this](std::uint32_t top_roots)
                         -> const cluster::Hierarchy& {
                       return EnsureHierarchy(top_roots);
                     }};
  scheduler_ =
      SchedulerRegistry::Global().Build(config.scheduler, config_, deps);

  // Pool-overhead guard: on small grids the per-round dispatch/wake cost
  // exceeds the parallel win (BENCH_pipeline.json showed 0.74x at s=256
  // with 4 workers), so below min_shards_per_worker shards per worker the
  // pool is never built and the serial step path runs. Bit-identical
  // results either way — this only changes wall-clock.
  if (config.worker_threads > 1 &&
      config.shards / config.worker_threads >= config.min_shards_per_worker) {
    pool_ = std::make_unique<ThreadPool>(config.worker_threads);
  }
}

Simulation::~Simulation() = default;

const cluster::Hierarchy& Simulation::EnsureHierarchy(
    std::uint32_t top_roots) {
  SSHARD_CHECK(top_roots >= 1);
  if (!hierarchy_) {
    hierarchy_ = std::make_unique<cluster::Hierarchy>(
        config_.hierarchy == HierarchyKind::kLineShifted
            ? cluster::Hierarchy::BuildLineShifted(*metric_, top_roots)
            : cluster::Hierarchy::BuildSparseCover(*metric_, top_roots));
    hierarchy_top_roots_ = top_roots;
  }
  // One hierarchy per simulation: a second builder asking for a different
  // root count would silently get the first one's shape.
  SSHARD_CHECK(hierarchy_top_roots_ == top_roots &&
               "hierarchy already built with a different top_roots");
  return *hierarchy_;
}

void Simulation::Generate(Round round) {
  const auto start = Clock::now();
  injector_->GenerateRound(round, txn_buffer_);
  generated_round_ = round;
  phase_times_.generate += SecondsSince(start);
}

void Simulation::StepRound(Round round, Round generate_round) {
  auto mark = Clock::now();
  scheduler_->BeginRound(round);
  phase_times_.begin += SecondsSince(mark);

  mark = Clock::now();
  const ShardId shards = scheduler_->shard_count();
  Scheduler* scheduler = scheduler_.get();
  if (pool_) {
    pool_->ParallelFor(shards, [scheduler, round](std::size_t shard) {
      scheduler->StepShard(static_cast<ShardId>(shard), round);
    });
  } else {
    for (ShardId shard = 0; shard < shards; ++shard) {
      scheduler_->StepShard(shard, round);
    }
  }
  phase_times_.step += SecondsSince(mark);

  if (pool_ && config_.pipeline) {
    // Pipelined epilogue: seal the round's double buffers, drain them
    // destination-partitioned on the pool, and overlap the next round's
    // adversary generation on this thread (it touches only adversary
    // state). The serial remainder shrinks to FinishRound.
    mark = Clock::now();
    const auto parts = static_cast<std::uint32_t>(
        std::min<std::size_t>(pool_->thread_count(), shards));
    scheduler_->SealRound(round, parts);
    pool_->Dispatch(parts, [scheduler, round, parts](std::size_t part) {
      scheduler->FlushRoundPartition(round, static_cast<std::uint32_t>(part),
                                     parts);
    });
    if (generate_round != kNoRound) Generate(generate_round);
    pool_->Wait();
    phase_times_.flush += SecondsSince(mark);

    mark = Clock::now();
    scheduler_->FinishRound(round);
    phase_times_.finish += SecondsSince(mark);
  } else {
    mark = Clock::now();
    scheduler_->EndRound(round);
    phase_times_.finish += SecondsSince(mark);
  }
}

SimResult Simulation::Run() {
  SSHARD_CHECK(!ran_ && "Simulation::Run may be called once");
  ran_ = true;
  if (series_window_ > 0) {
    pending_series_ = std::make_unique<stats::TimeSeries>(series_window_);
  }

  stats::RunningStats pending_per_round;
  stats::RunningStats leader_queue_per_round;
  stats::RunningStats leader_queue_max_per_round;
  std::uint64_t max_pending = 0;
  std::uint64_t spill_peak = 0;

  // Sampled after every executed round — drain rounds included, since
  // rounds_executed counts them: reported maxima/averages must cover the
  // whole run, not just the injection phase (a burst resolved during drain
  // used to vanish from max_pending).
  const auto sample_round_metrics = [&](Round round) {
    const auto start = Clock::now();
    const std::uint64_t pending = ledger_->pending();
    max_pending = std::max(max_pending, pending);
    pending_per_round.Add(static_cast<double>(pending) /
                          static_cast<double>(config_.shards));
    leader_queue_per_round.Add(scheduler_->LeaderQueueMean());
    leader_queue_max_per_round.Add(scheduler_->LeaderQueueMax());
    // Spill-queue accounting: parked transactions are inside `pending`
    // already (they were registered before Inject deferred them), so the
    // peak is recorded as its own column rather than added anywhere. The
    // drain loop below needs no special case either — Scheduler::Idle()
    // reports busy while any spill queue is non-empty.
    spill_peak = std::max(spill_peak, scheduler_->SpilledTxns());
    if (pending_series_) {
      pending_series_->Record(round, static_cast<double>(pending));
    }
    phase_times_.sample += SecondsSince(start);
  };

  // Wall-clock round counter: protocol rounds plus fault stalls. Every
  // sample lands on a distinct wall round, and rounds_executed reports the
  // wall count — a faulted run executes exactly the fault-free protocol
  // trajectory, recovery_rounds wall rounds later.
  Round wall = 0;
  // One stalled wall round: the protocol clock (scheduler, adversary,
  // injection) is frozen; metrics still sample so outages are visible in
  // the per-round series and averages. Open-loop arrivals do NOT freeze —
  // the injector accrues them as backlog (closed-loop's hook is a no-op).
  const auto stall_round = [&]() {
    sample_round_metrics(wall);
    injector_->OnStalledRound();
    ++wall;
    ++recovery_rounds_;
  };

  const auto run_start = Clock::now();
  for (Round round = 0; round < config_.rounds; ++round) {
    // Fault plan: crashes land on round boundaries (the synchronous model
    // has no mid-round crash point — a round either completed everywhere
    // or never happened), before this round's generation/injection.
    while (next_fault_ < fault_plan_.events.size() &&
           fault_plan_.events[next_fault_].crash_round == round) {
      ExecuteFault(fault_plan_.events[next_fault_++], stall_round);
    }
    // The pipelined epilogue of round - 1 usually pre-generated this
    // round's transactions (overlapped with its flush); fall back to
    // generating here on the serial path and for round 0. Injection stays
    // strictly after the previous round's sampling either way, so the
    // ledger counters every sample sees match the serial schedule.
    if (generated_round_ != round) Generate(round);
    const auto inject_start = Clock::now();
    for (txn::Transaction& txn : txn_buffer_) {
      ledger_->RegisterInjection(txn);
      scheduler_->Inject(txn);
    }
    txn_buffer_.clear();
    phase_times_.inject += SecondsSince(inject_start);
    // Pipelined pre-generation of round + 1 — suppressed in open loop when
    // a fault lands on the round + 1 boundary: the serial order is stall
    // rounds (arrivals accrue as backlog) *then* generation, and an
    // overlapped Generate would consume the schedule's wall rounds first,
    // perturbing arrival accounting vs the pipeline-off run. Closed-loop
    // generation reads no wall clock, so it keeps the overlap always.
    Round generate_round = round + 1 < config_.rounds ? round + 1 : kNoRound;
    if (open_loop_ && next_fault_ < fault_plan_.events.size() &&
        fault_plan_.events[next_fault_].crash_round == round + 1) {
      generate_round = kNoRound;
    }
    StepRound(round, generate_round);
    sample_round_metrics(wall);
    ++wall;
    ++protocol_rounds_done_;
    MaybeCheckpoint(round);
  }

  Round round = config_.rounds;
  bool drained = false;
  if (config_.drain_cap > 0) {
    const Round limit = config_.rounds + config_.drain_cap;
    while (round < limit) {
      // Open-loop arrivals keep landing during what used to be pure drain
      // rounds, until the schedule is exhausted (a trace's records may
      // extend past config.rounds). Closed-loop is exhausted here by
      // construction, so the classic inject-free drain runs unchanged.
      const bool more_arrivals = !injector_->Exhausted();
      if (!more_arrivals && scheduler_->Idle()) {
        drained = true;
        break;
      }
      if (more_arrivals) {
        Generate(round);
        const auto inject_start = Clock::now();
        for (txn::Transaction& txn : txn_buffer_) {
          ledger_->RegisterInjection(txn);
          scheduler_->Inject(txn);
        }
        txn_buffer_.clear();
        phase_times_.inject += SecondsSince(inject_start);
      }
      StepRound(round, kNoRound);
      sample_round_metrics(wall);
      ++wall;
      ++protocol_rounds_done_;
      MaybeCheckpoint(round);
      ++round;
    }
    if (!drained) drained = injector_->Exhausted() && scheduler_->Idle();
  }
  phase_times_.total = SecondsSince(run_start);

  if (pending_series_) pending_series_->Finish();

  SimResult result;
  result.avg_pending_per_shard = pending_per_round.mean();
  result.avg_leader_queue = leader_queue_per_round.mean();
  result.max_leader_queue = leader_queue_per_round.max();
  result.max_single_leader_queue = leader_queue_max_per_round.max();
  result.spill_peak = spill_peak;
  const stats::LatencyRecorder& latency = ledger_->latency();
  result.avg_latency = latency.average_latency();
  result.max_latency = latency.max_latency();
  result.p50_latency = latency.p50_latency();
  result.p99_latency = latency.p99_latency();
  result.injected = ledger_->registered();
  result.committed = ledger_->committed_txns();
  result.aborted = ledger_->aborted_txns();
  result.unresolved = ledger_->pending();
  result.max_pending = max_pending;
  result.messages = scheduler_->MessagesSent();
  result.payload_units = scheduler_->PayloadUnits();
  result.rounds_executed = wall;
  result.drained = drained;
  result.wal_bytes = storage_ ? storage_->wal_bytes() : 0;
  result.checkpoint_count = checkpoint_count_;
  result.replay_bytes = replay_bytes_;
  result.recovery_rounds = recovery_rounds_;
  result.offered_txns = injector_->offered();
  result.injected_txns = injector_->injected();
  result.inject_lag_peak = injector_->lag_peak();

  if (trace_writer_) {
    std::string trace_error;
    SSHARD_CHECK(traffic::WriteTraceFile(config_.trace_out,
                                         trace_writer_->trace(),
                                         &trace_error) &&
                 "failed to write SimConfig::trace_out");
  }
  return result;
}

void Simulation::MaybeCheckpoint(Round round) {
  if (!wal_ || config_.checkpoint_interval == 0) return;
  if (protocol_rounds_done_ % config_.checkpoint_interval != 0) return;
  durability::WriteCheckpoint(*ledger_, *wal_, *storage_, round);
  ++checkpoint_count_;
}

void Simulation::ExecuteFault(const durability::FaultEvent& event,
                              const std::function<void()>& stall_round) {
  const ShardId shard = event.shard;

  // Pre-crash oracle: the recovered slice must reproduce these bytes
  // exactly (canonical encoding — byte equality is state bit-identity).
  durability::Blob before;
  durability::AppendShardImage(
      before,
      durability::CaptureShardImage(*ledger_, shard,
                                    wal_->durable_seq(shard)));

  // Crash: the shard loses its volatile ledger slice. The whole protocol
  // clock freezes for the outage — BDS/FDS are full-participation
  // synchronous protocols, so the lock-step world cannot make progress
  // while a member is dark (see docs/ARCHITECTURE.md on the fault model).
  liveness_->Crash(shard);
  scheduler_->OnShardLiveness(shard, durability::ShardLiveness::kCrashed);
  ledger_->ResetShardForRecovery(shard);
  for (Round i = 0; i < event.down_rounds; ++i) stall_round();

  // Recovery: replay checkpoint + WAL suffix, paced by replayed volume.
  liveness_->BeginRecovery(shard);
  scheduler_->OnShardLiveness(shard, durability::ShardLiveness::kRecovering);
  const durability::RecoveryStats stats =
      durability::RecoverShard(*ledger_, shard, *storage_);
  replay_bytes_ += stats.replayed_bytes;
  durability::Blob after;
  durability::AppendShardImage(
      after,
      durability::CaptureShardImage(*ledger_, shard,
                                    wal_->durable_seq(shard)));
  SSHARD_CHECK(after == before &&
               "recovered shard state is not bit-identical to the "
               "pre-crash snapshot");
  const Round replay_rounds =
      1 + static_cast<Round>(stats.replayed_bytes /
                             config_.replay_bytes_per_round);
  for (Round i = 0; i < replay_rounds; ++i) stall_round();

  // Catch-up: one round re-verifying the restored chain before rejoining.
  liveness_->BeginCatchUp(shard);
  scheduler_->OnShardLiveness(shard, durability::ShardLiveness::kCatchUp);
  SSHARD_CHECK(ledger_->chains()[shard].Verify() &&
               "recovered chain fails hash verification");
  stall_round();

  liveness_->Rejoin(shard);
  scheduler_->OnShardLiveness(shard, durability::ShardLiveness::kOnline);
}

}  // namespace stableshard::core
