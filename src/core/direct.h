// Direct scheduler — the uncoordinated baseline.
//
// No epochs, no leader, no coloring: the home shard of each transaction
// immediately ships the subtransactions to their destination shards, where
// they queue in global transaction-id order (a total order, so all shards
// serialize conflicting transactions identically) and commit through the
// same vote/confirm protocol as FDS, coordinated by the home shard.
//
// This is the natural "do nothing clever" comparator for both algorithms:
// it has minimal scheduling latency at low load, but under conflicts every
// transaction pays a full vote round-trip per queue position instead of
// committing color-parallel batches, and under bursts the id-ordered queue
// is oblivious to the conflict structure.
//
// Shard-parallel decomposition: injections are bucketed by home shard and
// shipped from that shard's StepShard; all protocol state is already
// partitioned per shard inside CommitProtocol.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"
#include "core/commit_ledger.h"
#include "core/commit_protocol.h"
#include "core/messages.h"
#include "core/ownership.h"
#include "core/scheduler.h"
#include "net/metric.h"
#include "net/network.h"
#include "net/outbox.h"

namespace stableshard::core {

class DirectScheduler final : public Scheduler {
 public:
  DirectScheduler(const net::ShardMetric& metric, CommitLedger& ledger);

  void Inject(const txn::Transaction& txn) override;
  void BeginRound(Round round) override;
  void StepShard(ShardId shard, Round round) override;
  void EndRound(Round round) override
      SSHARD_EXCLUDES(outbox_.sealed_cap, ledger_->journal_cap);
  void SealRound(Round round, std::uint32_t parts) override
      SSHARD_ACQUIRE(outbox_.sealed_cap, network_.flush_cap,
                     ledger_->journal_cap);
  void FlushRoundPartition(Round round, std::uint32_t part,
                           std::uint32_t parts) override
      SSHARD_REQUIRES(outbox_.sealed_cap, network_.flush_cap,
                      ledger_->journal_cap);
  void FinishRound(Round round) override
      SSHARD_RELEASE(outbox_.sealed_cap, network_.flush_cap,
                     ledger_->journal_cap);
  ShardId shard_count() const override {
    return network_.metric().shard_count();
  }
  bool Idle() const override;
  std::uint64_t MessagesSent() const override {
    return network_.stats().messages_sent;
  }
  std::uint64_t PayloadUnits() const override {
    return network_.stats().payload_units;
  }
  net::RingMemory NetworkMemory() const override {
    return network_.ring_memory();
  }
  net::LaneMemory OutboxMemory() const override {
    return outbox_.lane_memory();
  }
  net::ShardTraffic ShardTrafficFor(ShardId shard) const override {
    return network_.shard_traffic(shard);
  }
  std::uint64_t QueueDepth(ShardId shard) const override {
    return network_.pending_for(shard);
  }
  const char* name() const override { return "direct"; }

 private:
  CommitLedger* ledger_;
  net::Network<Message> network_;
  net::OutboxSet<Message> outbox_;
  /// Debug-build shard-ownership checker (see core/ownership.h). Empty in
  /// Release.
  OwnershipRegistry ownership_;
  CommitProtocol protocol_;
  std::vector<std::vector<txn::Transaction>> inject_by_home_;
  /// Per-shard delivery buffers: DeliverTo swaps the due ring slot with the
  /// shard's buffer, recycling envelope capacity across rounds (shard-owned,
  /// so concurrent StepShard calls never share one).
  std::vector<std::vector<net::Network<Message>::Envelope>> inbox_;
  std::uint64_t injected_waiting_ = 0;
};

}  // namespace stableshard::core
