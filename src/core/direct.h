// Direct scheduler — the uncoordinated baseline.
//
// No epochs, no leader, no coloring: the home shard of each transaction
// immediately ships the subtransactions to their destination shards, where
// they queue in global transaction-id order (a total order, so all shards
// serialize conflicting transactions identically) and commit through the
// same vote/confirm protocol as FDS, coordinated by the home shard.
//
// This is the natural "do nothing clever" comparator for both algorithms:
// it has minimal scheduling latency at low load, but under conflicts every
// transaction pays a full vote round-trip per queue position instead of
// committing color-parallel batches, and under bursts the id-ordered queue
// is oblivious to the conflict structure.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/commit_ledger.h"
#include "core/commit_protocol.h"
#include "core/messages.h"
#include "core/scheduler.h"
#include "net/metric.h"
#include "net/network.h"

namespace stableshard::core {

class DirectScheduler final : public Scheduler {
 public:
  DirectScheduler(const net::ShardMetric& metric, CommitLedger& ledger);

  void Inject(const txn::Transaction& txn) override;
  void Step(Round round) override;
  bool Idle() const override;
  std::uint64_t MessagesSent() const override {
    return network_.stats().messages_sent;
  }
  std::uint64_t PayloadUnits() const override {
    return network_.stats().payload_units;
  }
  const char* name() const override { return "direct"; }

 private:
  CommitLedger* ledger_;
  net::Network<Message> network_;
  CommitProtocol protocol_;
  std::vector<txn::Transaction> inject_buffer_;
};

}  // namespace stableshard::core
