// Simulation engine: wires topology, accounts, adversary, scheduler and
// ledger together and runs the synchronous round loop.
//
// Round structure (Section 3's synchronous model):
//   1. the adversary generates this round's transactions (subject to the
//      (rho, b) token buckets);
//   2. each is registered with the ledger and injected at its home shard;
//   3. the scheduler executes one round: BeginRound (serial), StepShard for
//      every shard — fanned out across the persistent worker pool when
//      SimConfig::worker_threads > 1, serial otherwise, with bit-identical
//      results either way — then EndRound (serial);
//   4. metrics are sampled (pending transactions, leader queues). Sampling
//      covers every executed round, drain-phase rounds included — the
//      per-round averages, max_pending and the pending series describe the
//      same rounds_executed window the result reports.
//
// The engine knows no concrete scheduler and no concrete workload:
// SimConfig::scheduler names an entry in core::SchedulerRegistry and
// SimConfig::strategy names an entry in adversary::StrategyRegistry;
// construction goes through the registered builders (see
// core/scheduler_registry.h and adversary/strategy_registry.h). The cluster
// hierarchy is built lazily, only when a scheduler's builder asks for it.
#pragma once

#include <memory>

#include "adversary/adversary.h"
#include "chain/account_map.h"
#include "cluster/hierarchy.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/commit_ledger.h"
#include "core/config.h"
#include "core/scheduler.h"
#include "net/metric.h"
#include "stats/running_stats.h"
#include "stats/time_series.h"

namespace stableshard::core {

class Simulation {
 public:
  explicit Simulation(const SimConfig& config);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Run the configured number of rounds (plus optional drain phase) and
  /// return the aggregated result. May be called once.
  SimResult Run();

  /// Component access for tests and examples.
  const SimConfig& config() const { return config_; }
  const net::ShardMetric& metric() const { return *metric_; }
  const chain::AccountMap& accounts() const { return *accounts_; }
  const CommitLedger& ledger() const { return *ledger_; }
  Scheduler& scheduler() { return *scheduler_; }
  const adversary::Adversary& adversary() const { return *adversary_; }
  const cluster::Hierarchy* hierarchy() const { return hierarchy_.get(); }

  /// Per-round pending-count time series (window-averaged), populated by
  /// Run() when `record_series` is enabled.
  void EnableSeries(Round window) { series_window_ = window; }
  const stats::TimeSeries* pending_series() const {
    return pending_series_.get();
  }

 private:
  const cluster::Hierarchy& EnsureHierarchy();
  void StepRound(Round round);

  SimConfig config_;
  Rng rng_;
  std::unique_ptr<net::ShardMetric> metric_;
  std::unique_ptr<chain::AccountMap> accounts_;
  std::unique_ptr<CommitLedger> ledger_;
  std::unique_ptr<cluster::Hierarchy> hierarchy_;
  std::unique_ptr<adversary::Adversary> adversary_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<ThreadPool> pool_;  ///< persistent; worker_threads > 1
  Round series_window_ = 0;
  std::unique_ptr<stats::TimeSeries> pending_series_;
  bool ran_ = false;
};

}  // namespace stableshard::core
