// Simulation engine: wires topology, accounts, adversary, scheduler and
// ledger together and runs the synchronous round loop.
//
// Round structure (Section 3's synchronous model):
//   1. the injector generates this round's transactions — by default the
//      closed-loop adversary (subject to the (rho, b) token buckets), or
//      the open-loop arrival schedule when SimConfig::arrival_rate / trace
//      select it (see traffic/injector.h);
//   2. each is registered with the ledger and injected at its home shard;
//   3. the scheduler executes one round: BeginRound (serial), StepShard for
//      every shard — fanned out across the persistent worker pool when
//      SimConfig::worker_threads > 1, serial otherwise, with bit-identical
//      results either way — then the round epilogue;
//   4. metrics are sampled (pending transactions, leader queues). Sampling
//      covers every executed round, drain-phase rounds included — the
//      per-round averages, max_pending and the pending series describe the
//      same rounds_executed window the result reports.
//
// Pipelined epilogue (worker_threads > 1 and SimConfig::pipeline): instead
// of the serial EndRound, the engine runs the scheduler's
// SealRound / FlushRoundPartition / FinishRound triple — the flush drains
// destination-partitioned on the pool while the driving thread generates
// the NEXT round's transactions into a reusable buffer (generation touches
// only adversary state, so the overlap is race-free and invisible to the
// results). Injection, metric sampling and BeginRound of the next round
// stay strictly after FinishRound, so the ledger values every sample sees
// are exactly the serial ones — worker_threads and the pipeline switch
// never change a single output bit (tests/parallel_engine_test).
//
// The engine knows no concrete scheduler and no concrete workload:
// SimConfig::scheduler names an entry in core::SchedulerRegistry and
// SimConfig::strategy names an entry in adversary::StrategyRegistry;
// construction goes through the registered builders (see
// core/scheduler_registry.h and adversary/strategy_registry.h). The cluster
// hierarchy is built lazily, only when a scheduler's builder asks for it.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "adversary/adversary.h"
#include "common/types.h"
#include "chain/account_map.h"
#include "cluster/hierarchy.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/commit_ledger.h"
#include "core/config.h"
#include "core/scheduler.h"
#include "durability/fault_plan.h"
#include "durability/liveness.h"
#include "durability/wal.h"
#include "net/metric.h"
#include "stats/running_stats.h"
#include "stats/time_series.h"
#include "traffic/injector.h"
#include "traffic/trace.h"

namespace stableshard::core {

/// Wall-clock decomposition of Run() as seen from the driving thread,
/// accumulated across all executed rounds (bench/parallel_rounds --phases).
/// In the pipelined epilogue `generate` happens inside the `flush` window
/// (it overlaps the pool's partition drain), so the two overlap; in the
/// serial epilogue `flush` is 0 and `finish` holds the whole EndRound.
struct PhaseTimes {
  double generate = 0;  ///< adversary GenerateRound
  double inject = 0;    ///< RegisterInjection + Scheduler::Inject
  double begin = 0;     ///< BeginRound
  double step = 0;      ///< StepShard fan-out (wall time)
  double flush = 0;     ///< SealRound .. pool Wait (overlaps generate)
  double finish = 0;    ///< FinishRound (pipelined) or EndRound (serial)
  double sample = 0;    ///< per-round metric sampling
  double total = 0;     ///< the whole round loop, drain included
};

class Simulation {
 public:
  explicit Simulation(const SimConfig& config);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Run the configured number of rounds (plus optional drain phase) and
  /// return the aggregated result. May be called once.
  SimResult Run();

  /// Component access for tests and examples.
  const SimConfig& config() const { return config_; }
  const net::ShardMetric& metric() const { return *metric_; }
  const chain::AccountMap& accounts() const { return *accounts_; }
  const CommitLedger& ledger() const { return *ledger_; }
  Scheduler& scheduler() { return *scheduler_; }
  /// Closed-loop runs only (the open-loop injector owns its strategy and
  /// factory; there is no adversary then).
  const adversary::Adversary& adversary() const { return *adversary_; }
  /// The injection seam (always present; closed-loop wraps the adversary).
  const traffic::Injector& injector() const { return *injector_; }
  const cluster::Hierarchy* hierarchy() const { return hierarchy_.get(); }
  const durability::LivenessTracker& liveness() const { return *liveness_; }
  /// Durable medium behind the WAL (nullptr unless SimConfig::wal).
  const durability::MemoryStorage* wal_storage() const {
    return storage_.get();
  }

  /// Per-round pending-count time series (window-averaged), populated by
  /// Run() when `record_series` is enabled.
  void EnableSeries(Round window) { series_window_ = window; }
  const stats::TimeSeries* pending_series() const {
    return pending_series_.get();
  }

  /// Per-phase wall-clock accounting, populated by Run() (always on — the
  /// clock reads are noise next to a round's work). Timing never feeds back
  /// into the simulation, so it cannot perturb results.
  const PhaseTimes& phase_times() const { return phase_times_; }

  /// Threads actually stepping shards: config worker_threads, unless the
  /// min_shards_per_worker guard decided the grid is too small for the
  /// pool, in which case 1 (benches report this next to the configured
  /// count so threshold fallbacks are visible in the tables).
  std::uint32_t effective_workers() const {
    return pool_ ? config_.worker_threads : 1;
  }

 private:
  const cluster::Hierarchy& EnsureHierarchy(std::uint32_t top_roots);
  /// Generate `round`'s injections into the reusable buffer.
  void Generate(Round round);
  /// One full round; when `generate_round` != kNoRound and the pipelined
  /// epilogue is active, that round's generation overlaps the flush.
  void StepRound(Round round, Round generate_round);
  /// Execute one fault event (crash → outage → replay → catch-up →
  /// rejoin). The protocol clock is frozen throughout: `stall_round`
  /// advances the wall clock by one sampled round without touching the
  /// scheduler/adversary, so the protocol trajectory — and every commit —
  /// is bit-identical to the fault-free run, just shifted in wall rounds.
  void ExecuteFault(const durability::FaultEvent& event,
                    const std::function<void()>& stall_round);
  /// Checkpoint cadence: after every checkpoint_interval-th protocol
  /// round (drain rounds included) capture all shards into a new blob.
  void MaybeCheckpoint(Round round);

  SimConfig config_;
  Rng rng_;
  std::unique_ptr<net::ShardMetric> metric_;
  std::unique_ptr<chain::AccountMap> accounts_;
  std::unique_ptr<CommitLedger> ledger_;
  std::unique_ptr<cluster::Hierarchy> hierarchy_;
  std::uint32_t hierarchy_top_roots_ = 0;  ///< 0 = not built yet
  std::unique_ptr<adversary::Adversary> adversary_;  ///< closed-loop only
  std::unique_ptr<traffic::Injector> injector_;
  std::unique_ptr<traffic::TraceWriter> trace_writer_;  ///< trace_out only
  bool open_loop_ = false;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<ThreadPool> pool_;  ///< persistent; worker_threads > 1
  std::unique_ptr<durability::MemoryStorage> storage_;  ///< wal only
  std::unique_ptr<durability::WalManager> wal_;         ///< wal only
  std::unique_ptr<durability::LivenessTracker> liveness_;
  durability::FaultPlan fault_plan_;
  std::size_t next_fault_ = 0;
  Round protocol_rounds_done_ = 0;
  Round recovery_rounds_ = 0;
  std::uint64_t replay_bytes_ = 0;
  std::uint64_t checkpoint_count_ = 0;
  Round series_window_ = 0;
  std::unique_ptr<stats::TimeSeries> pending_series_;
  /// Reusable injection buffer: holds `generated_round_`'s transactions
  /// between generation (possibly overlapped with the previous round's
  /// flush) and injection; capacity persists across rounds.
  std::vector<txn::Transaction> txn_buffer_;
  Round generated_round_ = kNoRound;
  PhaseTimes phase_times_;
  bool ran_ = false;
};

}  // namespace stableshard::core
