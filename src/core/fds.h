// Algorithm 2: Fully Distributed Scheduler (FDS) for the non-uniform model.
//
// FDS removes BDS's central per-epoch leader by organizing the shards in a
// hierarchical sparse cover (cluster::Hierarchy). Every transaction T is
// assigned a *home cluster*: the lowest-level cluster that contains the
// whole x-neighborhood of T's home shard (x = farthest destination) and has
// a leader. The cluster leader schedules T.
//
// Epochs: layer i runs epochs of fixed length E_i = E_0 * 2^i, aligned so
// lower-layer epochs nest in higher ones. The paper writes
// E_i = c * 2^i * log s for an unspecified constant c; we derive the
// smallest aligned E_0 that lets every layer fit its phases:
//     E_0 = max(4, max_i ceil((2 * d_i + 3) / 2^i))
// where d_i is the layer's max cluster diameter (Phase 1 and Phase 2 each
// need up to d_i rounds, Phase 3 one round). For the generic sparse cover
// d_i = O(2^i log s), giving E_i = O(2^i log s) as in the paper.
//
// One epoch of cluster C (layer i, diameter d_C, start t0):
//   Phase 1  at t0 home shards send their buffered transactions for C to
//            the leader (arrive within d_C rounds).
//   Phase 2  at t0 + max(1, d_C) the leader colors the new transactions on
//            the shard-granularity conflict graph. If the epoch end aligns
//            with a rescheduling period P_k, k > i (i.e. t0 + E_i is a
//            multiple of 2 * E_i), the leader instead recolors *all* its
//            scheduled-but-undecided transactions together with the new
//            ones (Section 6.2 rescheduling). Each transaction gets height
//            (t_end, layer, sublayer, color, id) and its subtransactions
//            are sent (or height-updated) to the destination shards.
//   Phase 3  destinations insert/update entries in their height-sorted
//            schedule queues on arrival.
//
// Committing runs continuously via CommitProtocol (Algorithm 2b with the
// retract handshake documented there).
//
// Stability (Theorem 3): rho <= (1 / (c1 d log^2 s)) * max{1/k, 1/sqrt(s)}
// gives pending <= 4bs and latency <= 2 c1 b d log^2 s * min{k, sqrt(s)}.
//
// Shard-parallel decomposition: a cluster's scheduling state (incoming
// batches, sch_ldr) is owned by its *leader shard*; home-side buffers are
// bucketed by *home shard*; the commit protocol is per-shard by
// construction. BeginRound computes, serially and in deterministic order,
// which clusters color this round (grouped by leader); StepShard drains
// the shard's deliveries, ships epoch-start batches for the clusters the
// shard home-buffers, runs colorings for the clusters it leads, and issues
// the shard's votes. Unlike BDS there is no global epoch: many cluster
// leaders are active in one round, which is exactly what the parallel path
// exploits.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "cluster/hierarchy.h"
#include "common/arena.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "core/commit_ledger.h"
#include "core/commit_protocol.h"
#include "core/messages.h"
#include "core/ownership.h"
#include "core/scheduler.h"
#include "net/metric.h"
#include "net/network.h"
#include "net/outbox.h"
#include "txn/coloring.h"

namespace stableshard::core {

struct FdsConfig {
  txn::ColoringAlgorithm coloring = txn::ColoringAlgorithm::kGreedy;
  /// Section 6.2 rescheduling periods; disabled in the ablation bench.
  bool reschedule = true;
  /// Destination commit discipline (see core/commit_protocol.h). The
  /// paper's Algorithm 2b is the pipelined mode; the pinned mode is the
  /// conservative fallback for workloads whose vote decisions depend on
  /// other transactions' effects (e.g. chained transfers).
  CommitMode commit_mode = CommitMode::kPipelined;
};

class FdsScheduler final : public Scheduler {
 public:
  /// `hierarchy` must outlive the scheduler and be built over `metric`.
  FdsScheduler(const net::ShardMetric& metric,
               const cluster::Hierarchy& hierarchy, CommitLedger& ledger,
               const FdsConfig& config = {});

  void Inject(const txn::Transaction& txn) override;
  void BeginRound(Round round) override;
  void StepShard(ShardId shard, Round round) override;
  void EndRound(Round round) override
      SSHARD_EXCLUDES(outbox_.sealed_cap, ledger_->journal_cap);
  void SealRound(Round round, std::uint32_t parts) override
      SSHARD_ACQUIRE(outbox_.sealed_cap, network_.flush_cap,
                     ledger_->journal_cap);
  void FlushRoundPartition(Round round, std::uint32_t part,
                           std::uint32_t parts) override
      SSHARD_REQUIRES(outbox_.sealed_cap, network_.flush_cap,
                      ledger_->journal_cap);
  void FinishRound(Round round) override
      SSHARD_RELEASE(outbox_.sealed_cap, network_.flush_cap,
                     ledger_->journal_cap);
  ShardId shard_count() const override { return metric_->shard_count(); }
  bool Idle() const override;
  double LeaderQueueMean() const override;
  double LeaderQueueMax() const override;
  std::uint64_t MessagesSent() const override {
    return network_.stats().messages_sent;
  }
  std::uint64_t PayloadUnits() const override {
    return network_.stats().payload_units;
  }
  net::RingMemory NetworkMemory() const override {
    return network_.ring_memory();
  }
  net::LaneMemory OutboxMemory() const override {
    return outbox_.lane_memory();
  }
  net::ShardTraffic ShardTrafficFor(ShardId shard) const override {
    return network_.shard_traffic(shard);
  }
  /// Summed across the per-shard step arenas (serial phases only).
  common::ArenaMemoryStats ArenaMemory() const override {
    common::ArenaMemoryStats stats;
    for (const common::Arena& arena : step_arenas_) stats += arena.memory();
    return stats;
  }
  /// A destination's full backlog: undelivered network messages addressed
  /// to it *plus* the scheduled-but-undecided transactions (sch_ldr and
  /// incoming batches) of the clusters it leads — the quantity that
  /// saturates under a hot destination, and the one the backpressure
  /// wrapper watermarks. O(clusters led by `shard`) per call, serial
  /// phases only.
  std::uint64_t QueueDepth(ShardId shard) const override {
    SSHARD_SERIAL_PHASE(ownership_);
    std::uint64_t depth = network_.pending_for(shard);
    for (const std::uint32_t id : clusters_led_by_[shard]) {
      const ClusterState& state = cluster_state_[id];
      depth += state.incoming.size() + state.active.size();
    }
    return depth;
  }
  /// Baseline the per-destination inflow counters (serial phases only) so
  /// ShardTrafficFor(shard).InflowSinceSnapshot() reads one round's
  /// arrivals — the backpressure wrapper calls this once per BeginRound.
  void SnapshotInflow() { network_.SnapshotInflow(); }
  const char* name() const override {
    return hierarchy_->top_roots().size() > 1 ? "fds_multiroot" : "fds";
  }

  /// Introspection.
  Round epoch_length(std::uint32_t layer) const;
  Round base_epoch_length() const { return e0_; }
  std::uint64_t reschedules() const;
  std::uint64_t retracts() const { return protocol_.retracts_sent(); }
  const cluster::Hierarchy& hierarchy() const { return *hierarchy_; }
  const net::Network<Message>& network() const { return network_; }
  /// The shard-ownership checker, exposed so wrappers (backpressure) can
  /// guard their own serial-only state against the same phase machine.
  const OwnershipRegistry& ownership() const { return ownership_; }

 private:
  /// Cluster scheduling state, owned by the cluster's leader shard.
  struct ClusterState {
    /// Batches that arrived at the leader during the current epoch.
    std::vector<txn::Transaction> incoming;
    /// sch_ldr: scheduled but not yet decided transactions.
    std::unordered_map<TxnId, txn::Transaction> active;
    bool ever_used = false;
  };

  void RunColoring(const cluster::Cluster& cluster, ShardId leader,
                   Round round);
  void OnDecided(TxnId txn, std::uint32_t cluster, bool committed);

  const net::ShardMetric* metric_;
  const cluster::Hierarchy* hierarchy_;
  CommitLedger* ledger_;
  FdsConfig config_;
  net::Network<Message> network_;
  net::OutboxSet<Message> outbox_;
  /// Debug-build shard-ownership checker (see core/ownership.h): StepShard
  /// claims its shard, FlushRoundPartition its destination range, and the
  /// leader-owned helpers guard with SSHARD_OWNED. Empty in Release.
  OwnershipRegistry ownership_;
  CommitProtocol protocol_;

  Round e0_ = 4;  ///< base (layer-0) epoch length
  std::vector<ClusterState> cluster_state_;      // by cluster id
  std::vector<std::uint32_t> leadered_clusters_; // ids of usable clusters
  /// leadered_clusters_ inverted: the cluster ids each shard leads
  /// (QueueDepth walks only the queried shard's own clusters).
  std::vector<std::vector<std::uint32_t>> clusters_led_by_;

  // Home-side buffers: per home shard, cluster id -> transactions waiting
  // for that cluster's next epoch start (std::map so the shard's flush
  // order is deterministic).
  std::vector<std::map<std::uint32_t, std::vector<txn::Transaction>>>
      home_outgoing_;
  std::vector<std::uint64_t> buffered_by_home_;

  // BeginRound output: clusters to color this round, grouped by leader.
  std::vector<std::vector<std::uint32_t>> coloring_work_;  // by shard

  /// Per-shard Phase-2 scratch arenas: unlike BDS, many cluster leaders
  /// color concurrently in one round, so each leader shard owns its arena
  /// (StepShard contract). Reset once per coloring round per shard; all
  /// colorings the shard runs that round bump-allocate from it.
  std::vector<common::Arena> step_arenas_;

  // Per-leader-shard counters (summed by the serial getters).
  std::vector<std::uint64_t> reschedules_by_shard_;
  std::uint64_t used_cluster_count_ = 0;

  /// Per-shard delivery buffers: DeliverTo swaps the due ring slot with the
  /// shard's buffer, recycling envelope capacity across rounds (shard-owned,
  /// so concurrent StepShard calls never share one).
  std::vector<std::vector<net::Network<Message>::Envelope>> inbox_;
};

}  // namespace stableshard::core
