// Priority-ordered distributed commit protocol (Algorithm 2b, generalized).
//
// Destination shards keep a schedule queue (schqd) of subtransactions
// sorted by Height; every round each shard serves the head of its queue:
//
//   Step 1  the destination evaluates the head's conditions/validity and
//           sends a commit/abort vote to the transaction's coordinator
//           (cluster leader in FDS, home shard in Direct); the entry
//           becomes *pinned* — the shard serves nothing else until the
//           coordinator answers, which keeps the vote-time evaluation valid
//           (no other commit can intervene on this shard) and enforces the
//           one-subtransaction-per-shard-per-round capacity.
//   Step 2  the coordinator collects votes; with all commit votes it sends
//           confirmed-commit to every destination, on any abort vote it
//           sends confirmed-abort immediately, and removes the transaction
//           from its schedule queue (sch_ldr).
//   Step 3  destinations apply the decision, pop the entry, and unpin.
//
// Deadlock freedom — the retract handshake. Pinning introduces a hazard the
// paper leaves implicit: shard q1 may pin transaction T while shard q2 has
// already pinned a conflicting U with T < U in the global height order
// (possible when T's schedule message travels farther). Each coordinator
// then waits for the other shard's vote forever. We resolve it with an
// explicit handshake that mimics what a real system's lock-priority
// mechanism would do: when an entry with *smaller* height than the pinned
// one arrives, the destination sends RetractRequest to the pinned
// transaction's coordinator and keeps the pin until the answer arrives. If
// the coordinator has not yet decided, it discards the vote and grants
// RetractAck — the destination unpins and serves the smaller entry. If the
// coordinator already decided, the confirm is in flight and wins (the
// destination keeps the pin, so vote-time validity still holds). Because
// heights are a total order, the globally smallest pending transaction
// always makes progress, so the protocol is live.
//
// Shard-parallel rounds: all protocol state is partitioned by shard —
// destination queues by the destination shard, coordinator records
// (sch_ldr) by the coordinating shard — and every send goes through the
// acting shard's OutboxSet lane. HandleMessage(to, ...) and
// IssueVotesForShard(shard, ...) therefore touch only shard `to`/`shard`
// state (plus CommitLedger::ApplyConfirmDeferred, which is itself
// shard-local), so the embedding scheduler may run them concurrently for
// distinct shards inside StepShard.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/commit_ledger.h"
#include "core/height.h"
#include "core/messages.h"
#include "net/outbox.h"
#include "txn/transaction.h"

namespace stableshard::core {

/// Destination-side commit discipline.
///
/// kPinned — a destination votes only for its queue head and serves nothing
/// else until the coordinator answers (vote-time evaluation stays valid for
/// arbitrary workloads; throughput 1 commit per ~2d+1 rounds per shard;
/// needs the retract handshake for liveness).
///
/// kPipelined — the paper's literal Algorithm 2b: every round each
/// destination votes for its first *unvoted* entry (one new vote per
/// round), decisions are recorded as they arrive, and entries are applied
/// strictly in queue order, at most one commit per shard per round. This
/// reaches ~1 commit per shard per round and is what Figure 3's stability
/// threshold requires. It is sound when a subtransaction's vote cannot be
/// changed by other transactions' commits (true for the paper's workload —
/// unconditional accesses — and for our figure/test strategies, whose only
/// conditions are self-referential constants); the ledger still re-checks
/// validity at apply time and aborts the simulation on a violation rather
/// than committing inconsistently.
enum class CommitMode : std::uint8_t { kPinned, kPipelined };

class CommitProtocol {
 public:
  /// `on_decided(txn_id, cluster, committed)` fires once per transaction
  /// when its coordinator decides (confirm messages sent) — the paper's
  /// moment of removal from sch_ldr; schedulers use it to drop the
  /// transaction from their scheduled sets. It runs in the coordinating
  /// shard's StepShard context, so it may only touch that shard's state.
  using DecidedCallback = std::function<void(TxnId, std::uint32_t, bool)>;

  CommitProtocol(ShardId shards, net::OutboxSet<Message>& outbox,
                 CommitLedger& ledger, DecidedCallback on_decided,
                 CommitMode mode = CommitMode::kPinned);

  /// Coordinator side: shard `coordinator` starts coordinating `txn`
  /// (idempotent per txn). `cluster` tags the coordinating context.
  void Coordinate(ShardId coordinator, const txn::Transaction& txn,
                  std::uint32_t cluster);

  /// Coordinator side: send one subtransaction to its destination (or, with
  /// `update` = true, refresh its height after an FDS reschedule).
  /// `coordinator` is the shard votes must return to.
  void SendSubTxn(ShardId coordinator, const txn::Transaction& txn,
                  const txn::SubTransaction& sub, Height height,
                  std::uint32_t cluster, bool update);

  /// Route one delivered protocol message (SubTxn/Vote/Confirm/Retract*)
  /// addressed to shard `to`. Returns true if the message type belonged to
  /// this protocol. Parallel-safe across distinct `to`.
  bool HandleMessage(ShardId to, Message& message, Round round);

  /// Per-round, per-destination driver: kPinned — vote for the head if
  /// unpinned; kPipelined — vote for the first unvoted entry and apply
  /// decided entries in queue order (<= 1 commit per shard). Call after all
  /// of the shard's deliveries of the round. Parallel-safe across shards.
  void IssueVotesForShard(ShardId dest, Round round);

  /// Serial convenience: IssueVotesForShard for every shard in order.
  void IssueVotes(Round round);

  CommitMode mode() const { return mode_; }

  /// Introspection (serial phases only — these aggregate across shards).
  std::uint64_t queued_subtxns() const;
  std::uint64_t pinned_count() const;
  std::uint64_t coordinated_unresolved() const;
  std::uint64_t retracts_sent() const;
  bool Idle() const;

  /// Queue length of one destination shard (tests).
  std::size_t queue_size(ShardId shard) const {
    return queues_[shard].entries.size();
  }

 private:
  struct Entry {
    TxnId txn = kInvalidTxn;
    std::uint32_t cluster = 0;
    ShardId coordinator = kInvalidShard;
    txn::SubTransaction sub;
    bool voted = false;                  // pipelined mode
    std::optional<bool> decision;        // pipelined mode: confirm received
  };

  struct DestinationQueue {
    std::map<Height, Entry> entries;
    std::unordered_map<TxnId, Height> index;  ///< txn -> current height
    // kPinned state:
    std::optional<TxnId> pinned;
    bool retract_outstanding = false;  ///< waiting for ack/confirm
    // kPipelined state: heights not yet voted, served one per round.
    std::set<Height> unvoted;
    // Shard-local counters, aggregated by the serial getters.
    std::uint64_t queued = 0;
    std::uint64_t retracts = 0;
  };

  struct PendingCommit {
    txn::Transaction txn;
    std::uint32_t cluster = 0;
    Height current_height;  ///< latest height assigned (reschedule-aware)
    std::unordered_map<ShardId, bool> votes;
    bool decided = false;
  };

  void Decide(ShardId coordinator, PendingCommit& pending, bool commit);
  void MaybeRequestRetract(ShardId dest);
  void ApplyDecidedInOrder(ShardId dest, Round round);

  net::OutboxSet<Message>* outbox_;
  CommitLedger* ledger_;
  DecidedCallback on_decided_;
  CommitMode mode_;
  std::vector<DestinationQueue> queues_;  // by destination shard
  // sch_ldr, partitioned by coordinating shard so vote/retract handling in
  // StepShard(coordinator) never races another shard's slice.
  std::vector<std::unordered_map<TxnId, PendingCommit>> coordinating_;
};

}  // namespace stableshard::core
