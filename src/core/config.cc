#include "core/config.h"

#include <sstream>

namespace stableshard::core {

std::string SimConfig::Describe() const {
  std::ostringstream os;
  os << scheduler << " s=" << shards << " k=" << k
     << " topo=" << net::TopologyName(topology) << " rho=" << rho
     << " b=" << burstiness << " strat=" << strategy << " rounds=" << rounds
     << " seed=" << seed;
  if (worker_threads > 1) os << " wt=" << worker_threads;
  return os.str();
}

}  // namespace stableshard::core
