#include "core/config.h"

#include <sstream>

namespace stableshard::core {

const char* ToString(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kBds:
      return "bds";
    case SchedulerKind::kFds:
      return "fds";
    case SchedulerKind::kDirect:
      return "direct";
  }
  return "?";
}

const char* ToString(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kUniformRandom:
      return "uniform_random";
    case StrategyKind::kHotspot:
      return "hotspot";
    case StrategyKind::kPairwiseConflict:
      return "pairwise_conflict";
    case StrategyKind::kLocal:
      return "local";
    case StrategyKind::kSingleShard:
      return "single_shard";
  }
  return "?";
}

std::string SimConfig::Describe() const {
  std::ostringstream os;
  os << ToString(scheduler) << " s=" << shards << " k=" << k
     << " topo=" << net::TopologyName(topology) << " rho=" << rho
     << " b=" << burstiness << " strat=" << ToString(strategy)
     << " rounds=" << rounds << " seed=" << seed;
  return os.str();
}

}  // namespace stableshard::core
