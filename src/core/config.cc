#include "core/config.h"

#include <sstream>

namespace stableshard::core {

const char* ToString(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kUniformRandom:
      return "uniform_random";
    case StrategyKind::kHotspot:
      return "hotspot";
    case StrategyKind::kPairwiseConflict:
      return "pairwise_conflict";
    case StrategyKind::kLocal:
      return "local";
    case StrategyKind::kSingleShard:
      return "single_shard";
  }
  return "?";
}

std::string SimConfig::Describe() const {
  std::ostringstream os;
  os << scheduler << " s=" << shards << " k=" << k
     << " topo=" << net::TopologyName(topology) << " rho=" << rho
     << " b=" << burstiness << " strat=" << ToString(strategy)
     << " rounds=" << rounds << " seed=" << seed;
  if (worker_threads > 1) os << " wt=" << worker_threads;
  return os.str();
}

}  // namespace stableshard::core
