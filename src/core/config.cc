#include "core/config.h"

#include <cstdio>
#include <sstream>

#include "durability/fault_plan.h"

namespace stableshard::core {

std::string SimConfig::Describe() const {
  std::ostringstream os;
  os << scheduler << " s=" << shards << " k=" << k
     << " topo=" << net::TopologyName(topology) << " rho=" << rho
     << " b=" << burstiness << " strat=" << strategy << " rounds=" << rounds
     << " seed=" << seed;
  if (worker_threads > 1) os << " wt=" << worker_threads;
  if (arrival_rate > 0.0) {
    os << " arr=" << arrival_rate << "/" << arrival_burst;
  }
  if (!trace.empty()) os << " trace=" << trace;
  if (bds_color_leaders > 1) os << " cl=" << bds_color_leaders;
  if (fds_top_roots > 1) os << " roots=" << fds_top_roots;
  if (scheduler == "backpressure") {
    os << " bp=" << backpressure_high << "/" << backpressure_low;
  }
  if (wal) {
    os << " wal";
    if (checkpoint_interval > 0) os << " ckpt=" << checkpoint_interval;
    if (!faults.empty()) os << " faults=" << faults;
  }
  return os.str();
}

bool ValidateBackpressureWatermarks(std::uint64_t low, std::uint64_t high) {
  if (low <= high && high > 0) return true;
  std::fprintf(stderr,
               "invalid backpressure watermarks: need --bp-low <= "
               "--bp-high and --bp-high > 0 (got low=%llu high=%llu)\n",
               static_cast<unsigned long long>(low),
               static_cast<unsigned long long>(high));
  return false;
}

bool ValidateMinShardsPerWorker(std::uint32_t min_shards_per_worker) {
  if (min_shards_per_worker >= 1) return true;
  std::fprintf(stderr,
               "invalid min-shards-per-worker: need "
               "--min-shards-per-worker >= 1 (got %u)\n",
               min_shards_per_worker);
  return false;
}

bool ValidateBdsColorLeaders(std::uint32_t bds_color_leaders) {
  if (bds_color_leaders >= 1) return true;
  std::fprintf(stderr,
               "invalid bds-color-leaders: need --bds-color-leaders >= 1 "
               "(got %u)\n",
               bds_color_leaders);
  return false;
}

bool ValidateFdsTopRoots(std::uint32_t fds_top_roots) {
  if (fds_top_roots >= 1) return true;
  std::fprintf(stderr,
               "invalid fds-top-roots: need --fds-top-roots >= 1 (got %u)\n",
               fds_top_roots);
  return false;
}

bool ValidateFaults(const std::string& faults, bool wal_enabled,
                    ShardId shards, Round rounds) {
  durability::FaultPlan plan;
  std::string error;
  if (!durability::ParseFaultPlan(faults, &plan, &error)) {
    std::fprintf(stderr, "invalid faults: %s (spec \"%s\")\n", error.c_str(),
                 faults.c_str());
    return false;
  }
  if (plan.empty()) return true;
  if (!wal_enabled) {
    std::fprintf(stderr, "invalid faults: --faults requires --wal\n");
    return false;
  }
  for (const durability::FaultEvent& event : plan.events) {
    if (event.shard >= shards) {
      std::fprintf(stderr, "invalid faults: shard %u out of range (s=%u)\n",
                   event.shard, shards);
      return false;
    }
    if (event.crash_round >= rounds) {
      std::fprintf(stderr,
                   "invalid faults: crash round %llu past the injection "
                   "phase (rounds=%llu)\n",
                   static_cast<unsigned long long>(event.crash_round),
                   static_cast<unsigned long long>(rounds));
      return false;
    }
  }
  return true;
}

bool ValidateReplayBytesPerRound(std::uint64_t replay_bytes_per_round) {
  if (replay_bytes_per_round >= 1) return true;
  std::fprintf(stderr,
               "invalid replay-bytes-per-round: need "
               "--replay-bytes-per-round >= 1 (got 0)\n");
  return false;
}

bool ValidateCheckpointInterval(Round checkpoint_interval, bool wal_enabled) {
  if (checkpoint_interval == 0 || wal_enabled) return true;
  std::fprintf(stderr,
               "invalid checkpoint-interval: --checkpoint-interval requires "
               "--wal\n");
  return false;
}

bool ValidateArrivalRate(double arrival_rate, double arrival_burst) {
  if (arrival_rate < 0.0) {
    std::fprintf(stderr,
                 "invalid arrival-rate: need --arrival-rate >= 0 (got %g)\n",
                 arrival_rate);
    return false;
  }
  if (arrival_rate > 0.0 && arrival_burst < 1.0) {
    std::fprintf(stderr,
                 "invalid arrival-rate: open loop needs --burst >= 1 "
                 "(got %g)\n",
                 arrival_burst);
    return false;
  }
  return true;
}

bool ValidateTraceConfig(const std::string& trace, const std::string& strategy,
                         double arrival_rate) {
  if (trace.empty()) {
    if (strategy == "trace_replay") {
      std::fprintf(stderr,
                   "invalid trace: --strategy=trace_replay requires "
                   "--trace\n");
      return false;
    }
    return true;
  }
  if (strategy != "trace_replay") {
    std::fprintf(stderr,
                 "invalid trace: --trace requires --strategy=trace_replay "
                 "(got --strategy=%s)\n",
                 strategy.c_str());
    return false;
  }
  if (arrival_rate > 0.0) {
    std::fprintf(stderr,
                 "invalid trace: --trace and --arrival-rate are exclusive "
                 "(the trace is the arrival schedule)\n");
    return false;
  }
  return true;
}

}  // namespace stableshard::core
