#include "core/config.h"

#include <cstdio>
#include <sstream>

namespace stableshard::core {

std::string SimConfig::Describe() const {
  std::ostringstream os;
  os << scheduler << " s=" << shards << " k=" << k
     << " topo=" << net::TopologyName(topology) << " rho=" << rho
     << " b=" << burstiness << " strat=" << strategy << " rounds=" << rounds
     << " seed=" << seed;
  if (worker_threads > 1) os << " wt=" << worker_threads;
  if (bds_color_leaders > 1) os << " cl=" << bds_color_leaders;
  if (fds_top_roots > 1) os << " roots=" << fds_top_roots;
  if (scheduler == "backpressure") {
    os << " bp=" << backpressure_high << "/" << backpressure_low;
  }
  return os.str();
}

bool ValidateBackpressureWatermarks(std::uint64_t low, std::uint64_t high) {
  if (low <= high && high > 0) return true;
  std::fprintf(stderr,
               "invalid backpressure watermarks: need --bp-low <= "
               "--bp-high and --bp-high > 0 (got low=%llu high=%llu)\n",
               static_cast<unsigned long long>(low),
               static_cast<unsigned long long>(high));
  return false;
}

bool ValidateMinShardsPerWorker(std::uint32_t min_shards_per_worker) {
  if (min_shards_per_worker >= 1) return true;
  std::fprintf(stderr,
               "invalid min-shards-per-worker: need "
               "--min-shards-per-worker >= 1 (got %u)\n",
               min_shards_per_worker);
  return false;
}

bool ValidateBdsColorLeaders(std::uint32_t bds_color_leaders) {
  if (bds_color_leaders >= 1) return true;
  std::fprintf(stderr,
               "invalid bds-color-leaders: need --bds-color-leaders >= 1 "
               "(got %u)\n",
               bds_color_leaders);
  return false;
}

bool ValidateFdsTopRoots(std::uint32_t fds_top_roots) {
  if (fds_top_roots >= 1) return true;
  std::fprintf(stderr,
               "invalid fds-top-roots: need --fds-top-roots >= 1 (got %u)\n",
               fds_top_roots);
  return false;
}

}  // namespace stableshard::core
