#include "core/direct.h"

#include "common/check.h"

namespace stableshard::core {

DirectScheduler::DirectScheduler(const net::ShardMetric& metric,
                                 CommitLedger& ledger)
    : ledger_(&ledger),
      network_(metric),
      protocol_(network_, ledger, /*on_decided=*/nullptr) {}

void DirectScheduler::Inject(const txn::Transaction& txn) {
  inject_buffer_.push_back(txn);
}

void DirectScheduler::Step(Round round) {
  for (auto& envelope : network_.Deliver(round)) {
    const bool handled =
        protocol_.HandleMessage(envelope.to, envelope.payload, round);
    SSHARD_CHECK(handled && "unexpected message type in Direct");
  }

  // Ship this round's injections straight to the destinations, ordered by
  // injection id (heights use only the txn id, a total order).
  for (const txn::Transaction& txn : inject_buffer_) {
    protocol_.Coordinate(txn, 0);
    const Height height{0, 0, 0, 0, txn.id()};
    for (const txn::SubTransaction& sub : txn.subs()) {
      protocol_.SendSubTxn(txn.home(), txn, sub, height, 0, round,
                           /*update=*/false);
    }
  }
  inject_buffer_.clear();

  protocol_.IssueVotes(round);
}

bool DirectScheduler::Idle() const {
  return inject_buffer_.empty() && !network_.HasPending() && protocol_.Idle();
}

}  // namespace stableshard::core
