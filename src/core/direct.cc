#include "core/direct.h"

#include <memory>

#include "common/check.h"
#include "core/scheduler_registry.h"

namespace stableshard::core {

DirectScheduler::DirectScheduler(const net::ShardMetric& metric,
                                 CommitLedger& ledger)
    : ledger_(&ledger),
      network_(metric),
      outbox_(metric.shard_count()),
      ownership_(metric.shard_count()),
      protocol_(metric.shard_count(), outbox_, ledger,
                /*on_decided=*/nullptr),
      inject_by_home_(metric.shard_count()),
      inbox_(metric.shard_count()) {}

void DirectScheduler::Inject(const txn::Transaction& txn) {
  SSHARD_SERIAL_PHASE(ownership_);
  SSHARD_CHECK(txn.home() < inject_by_home_.size());
  inject_by_home_[txn.home()].push_back(txn);
  ++injected_waiting_;
}

void DirectScheduler::BeginRound(Round round) {
  (void)round;
  ownership_.BeginStepPhase();
}

void DirectScheduler::StepShard(ShardId shard, Round round) {
  const OwnershipRegistry::ShardClaim claim(ownership_, shard);
  SSHARD_OWNED(ownership_, shard);  // inbox_ and inject_by_home_ are
                                    // shard-owned
  network_.DeliverTo(shard, round, inbox_[shard]);
  for (auto& envelope : inbox_[shard]) {
    const bool handled =
        protocol_.HandleMessage(shard, envelope.payload, round);
    SSHARD_CHECK(handled && "unexpected message type in Direct");
  }

  // Ship this round's injections straight to the destinations, ordered by
  // injection id (heights use only the txn id, a total order).
  for (const txn::Transaction& txn : inject_by_home_[shard]) {
    protocol_.Coordinate(shard, txn, 0);
    const Height height{0, 0, 0, 0, txn.id()};
    for (const txn::SubTransaction& sub : txn.subs()) {
      protocol_.SendSubTxn(shard, txn, sub, height, 0, /*update=*/false);
    }
  }
  inject_by_home_[shard].clear();

  protocol_.IssueVotesForShard(shard, round);
}

void DirectScheduler::EndRound(Round round) {
  ownership_.EndParallelPhase();
  injected_waiting_ = 0;
  outbox_.Flush(network_, round);
  ledger_->FlushRound(round);
}

void DirectScheduler::SealRound(Round round, std::uint32_t parts) {
  ownership_.BeginFlushPhase();
  outbox_.Seal();
  network_.flush_cap.Acquire();  // annotation-only, no runtime effect
  ledger_->SealJournal(round, parts);
}

void DirectScheduler::FlushRoundPartition(Round round, std::uint32_t part,
                                          std::uint32_t parts) {
  const auto [begin, end] = FlushShardRange(shard_count(), part, parts);
  const OwnershipRegistry::RangeClaim claim(ownership_, begin, end);
  outbox_.FlushSealedTo(network_, round, begin, end);
  ledger_->ResolveSealedPartition(part, round);
}

void DirectScheduler::FinishRound(Round round) {
  ownership_.EndParallelPhase();
  injected_waiting_ = 0;
  outbox_.FinishSealedFlush(network_);
  ledger_->FinishSealedRound(round);
}

bool DirectScheduler::Idle() const {
  return injected_waiting_ == 0 && !network_.HasPending() &&
         protocol_.Idle();
}

namespace {
const SchedulerRegistrar kDirectRegistrar{
    "direct", [](const SimConfig& config, SchedulerDeps& deps) {
      (void)config;
      return std::unique_ptr<Scheduler>(
          std::make_unique<DirectScheduler>(deps.metric, deps.ledger));
    }};
}  // namespace

}  // namespace stableshard::core
