#include "core/fds.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"

namespace stableshard::core {

FdsScheduler::FdsScheduler(const net::ShardMetric& metric,
                           const cluster::Hierarchy& hierarchy,
                           CommitLedger& ledger, const FdsConfig& config)
    : metric_(&metric),
      hierarchy_(&hierarchy),
      ledger_(&ledger),
      config_(config),
      network_(metric),
      protocol_(network_, ledger,
                [this](TxnId txn, bool committed) { OnDecided(txn, committed); },
                config.commit_mode),
      cluster_state_(hierarchy.clusters().size()) {
  // Derive the aligned base epoch length E_0 (see header).
  Round e0 = 4;
  for (std::uint32_t layer = 0; layer < hierarchy.layer_count(); ++layer) {
    const Round needed =
        CeilDiv(2ull * hierarchy.layer_diameter(layer) + 3, 1ull << layer);
    e0 = std::max(e0, needed);
  }
  e0_ = e0;
  for (const cluster::Cluster& cluster : hierarchy.clusters()) {
    if (cluster.HasLeader()) leadered_clusters_.push_back(cluster.id);
  }
}

Round FdsScheduler::epoch_length(std::uint32_t layer) const {
  return e0_ << layer;
}

void FdsScheduler::Inject(const txn::Transaction& txn) {
  // Home cluster: lowest-level cluster covering the x-neighborhood of the
  // home shard, x = distance to the farthest destination (Section 6.1).
  Distance x = 0;
  for (const ShardId dest : txn.destinations()) {
    x = std::max(x, metric_->distance(txn.home(), dest));
  }
  const cluster::Cluster& home_cluster =
      hierarchy_->FindHomeCluster(txn.home(), x);
  ClusterState& state = cluster_state_[home_cluster.id];
  if (!state.ever_used) {
    state.ever_used = true;
    ++used_cluster_count_;
  }
  state.home_buffer[txn.home()].push_back(txn);
  txn_cluster_.emplace(txn.id(), home_cluster.id);
  ++buffered_;
}

void FdsScheduler::OnDecided(TxnId txn, bool committed) {
  (void)committed;
  const auto it = txn_cluster_.find(txn);
  SSHARD_CHECK(it != txn_cluster_.end());
  ClusterState& state = cluster_state_[it->second];
  const auto erased = state.active.erase(txn);
  SSHARD_CHECK(erased == 1 && "decided txn missing from sch_ldr");
  txn_cluster_.erase(it);
}

void FdsScheduler::RunEpochStart(const cluster::Cluster& cluster,
                                 Round round) {
  // Phase 1: home shards ship their buffered transactions to the leader.
  ClusterState& state = cluster_state_[cluster.id];
  if (state.home_buffer.empty()) return;
  for (auto& [home, txns] : state.home_buffer) {
    TxnBatchMsg batch;
    batch.cluster = cluster.id;
    batch.epoch = round / epoch_length(cluster.layer);
    buffered_ -= txns.size();
    const std::uint64_t units = txns.size();
    batch.txns = std::move(txns);
    network_.Send(home, cluster.leader, round, Message{std::move(batch)},
                  units);
  }
  state.home_buffer.clear();
}

void FdsScheduler::RunColoring(const cluster::Cluster& cluster, Round round) {
  ClusterState& state = cluster_state_[cluster.id];
  const Round e_i = epoch_length(cluster.layer);
  const Round epoch_start = (round / e_i) * e_i;
  const Round t_end = epoch_start + e_i;

  // Rescheduling: the epoch end coincides with a rescheduling period P_k
  // for some k > layer iff t_end is a multiple of 2 * E_i.
  const bool reschedule = config_.reschedule && (t_end % (2 * e_i) == 0) &&
                          !state.active.empty();

  if (state.incoming.empty() && !reschedule) return;

  // Collect the coloring set: new transactions, plus (on reschedule) every
  // scheduled-but-undecided transaction of this cluster.
  std::vector<const txn::Transaction*> view;
  view.reserve(state.incoming.size() + (reschedule ? state.active.size() : 0));
  const std::size_t new_count = state.incoming.size();
  for (const auto& txn : state.incoming) view.push_back(&txn);
  if (reschedule) {
    ++reschedules_;
    for (const auto& [id, txn] : state.active) {
      (void)id;
      view.push_back(&txn);
    }
  }

  const txn::ColoringResult coloring =
      ColorShardCliques(view, config_.coloring);
  SSHARD_DCHECK(IsProperShardColoring(view, coloring.color));

  for (std::size_t v = 0; v < view.size(); ++v) {
    const txn::Transaction& txn = *view[v];
    const Height height{t_end, cluster.layer, cluster.sublayer,
                        coloring.color[v], txn.id()};
    const bool is_new = v < new_count;
    if (is_new) {
      protocol_.Coordinate(txn, cluster.id);
    }
    for (const txn::SubTransaction& sub : txn.subs()) {
      protocol_.SendSubTxn(cluster.leader, txn, sub, height, cluster.id,
                           round, /*update=*/!is_new);
    }
  }
  for (auto& txn : state.incoming) {
    const TxnId id = txn.id();
    state.active.emplace(id, std::move(txn));
  }
  state.incoming.clear();
}

void FdsScheduler::Step(Round round) {
  // Deliver: protocol messages are handled inline; Phase-1 batches land in
  // the leader's incoming set.
  for (auto& envelope : network_.Deliver(round)) {
    if (protocol_.HandleMessage(envelope.to, envelope.payload, round)) {
      continue;
    }
    auto* batch = std::get_if<TxnBatchMsg>(&envelope.payload);
    SSHARD_CHECK(batch != nullptr && "unexpected message type in FDS");
    ClusterState& state = cluster_state_[batch->cluster];
    SSHARD_CHECK(envelope.to ==
                 hierarchy_->clusters()[batch->cluster].leader);
    for (auto& txn : batch->txns) state.incoming.push_back(std::move(txn));
  }

  // Per-cluster epoch machinery.
  for (const std::uint32_t id : leadered_clusters_) {
    const cluster::Cluster& cluster = hierarchy_->clusters()[id];
    const Round e_i = epoch_length(cluster.layer);
    const Round offset = round % e_i;
    if (offset == 0) {
      RunEpochStart(cluster, round);
    }
    const Round coloring_offset =
        std::max<Round>(1, std::min<Round>(e_i - 1, cluster.diameter));
    if (offset == coloring_offset) {
      RunColoring(cluster, round);
    }
  }

  // Algorithm 2b: destinations vote for their queue heads.
  protocol_.IssueVotes(round);
}

bool FdsScheduler::Idle() const {
  if (buffered_ != 0 || network_.HasPending() || !protocol_.Idle()) {
    return false;
  }
  for (const std::uint32_t id : leadered_clusters_) {
    const ClusterState& state = cluster_state_[id];
    if (!state.incoming.empty() || !state.active.empty()) return false;
  }
  return true;
}

double FdsScheduler::LeaderQueueMean() const {
  if (used_cluster_count_ == 0) return 0.0;
  std::uint64_t total = 0;
  for (const std::uint32_t id : leadered_clusters_) {
    total += cluster_state_[id].active.size();
  }
  return static_cast<double>(total) /
         static_cast<double>(used_cluster_count_);
}

}  // namespace stableshard::core
