#include "core/fds.h"

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "common/math_util.h"
#include "core/scheduler_registry.h"

namespace stableshard::core {

FdsScheduler::FdsScheduler(const net::ShardMetric& metric,
                           const cluster::Hierarchy& hierarchy,
                           CommitLedger& ledger, const FdsConfig& config)
    : metric_(&metric),
      hierarchy_(&hierarchy),
      ledger_(&ledger),
      config_(config),
      network_(metric),
      outbox_(metric.shard_count()),
      ownership_(metric.shard_count()),
      protocol_(metric.shard_count(), outbox_, ledger,
                [this](TxnId txn, std::uint32_t cluster, bool committed) {
                  OnDecided(txn, cluster, committed);
                },
                config.commit_mode),
      cluster_state_(hierarchy.clusters().size()),
      home_outgoing_(metric.shard_count()),
      buffered_by_home_(metric.shard_count(), 0),
      coloring_work_(metric.shard_count()),
      step_arenas_(metric.shard_count()),
      reschedules_by_shard_(metric.shard_count(), 0),
      inbox_(metric.shard_count()) {
  // Derive the aligned base epoch length E_0 (see header).
  Round e0 = 4;
  for (std::uint32_t layer = 0; layer < hierarchy.layer_count(); ++layer) {
    const Round needed =
        CeilDiv(2ull * hierarchy.layer_diameter(layer) + 3, 1ull << layer);
    e0 = std::max(e0, needed);
  }
  e0_ = e0;
  clusters_led_by_.resize(metric.shard_count());
  for (const cluster::Cluster& cluster : hierarchy.clusters()) {
    if (cluster.HasLeader()) {
      leadered_clusters_.push_back(cluster.id);
      clusters_led_by_[cluster.leader].push_back(cluster.id);
    }
  }
}

Round FdsScheduler::epoch_length(std::uint32_t layer) const {
  return e0_ << layer;
}

std::uint64_t FdsScheduler::reschedules() const {
  std::uint64_t total = 0;
  for (const std::uint64_t count : reschedules_by_shard_) total += count;
  return total;
}

void FdsScheduler::Inject(const txn::Transaction& txn) {
  SSHARD_SERIAL_PHASE(ownership_);
  // Home cluster: lowest-level cluster covering the x-neighborhood of the
  // home shard, x = distance to the farthest destination (Section 6.1).
  Distance x = 0;
  for (const ShardId dest : txn.destinations()) {
    x = std::max(x, metric_->distance(txn.home(), dest));
  }
  // The txn id salts the top-root choice: diameter-spanning transactions
  // hash across the interchangeable roots (multi-root hierarchies only; a
  // single-top hierarchy ignores the salt entirely). Salting by home alone
  // would collapse back to one root under two-endpoint workloads like
  // diameter_span.
  const cluster::Cluster& home_cluster =
      hierarchy_->FindHomeCluster(txn.home(), x, txn.id());
  ClusterState& state = cluster_state_[home_cluster.id];
  if (!state.ever_used) {
    state.ever_used = true;
    ++used_cluster_count_;
  }
  home_outgoing_[txn.home()][home_cluster.id].push_back(txn);
  ++buffered_by_home_[txn.home()];
}

void FdsScheduler::OnDecided(TxnId txn, std::uint32_t cluster,
                             bool committed) {
  // Runs in the coordinating (leader) shard's StepShard: the cluster's
  // sch_ldr is that shard's state.
  SSHARD_OWNED(ownership_, hierarchy_->clusters()[cluster].leader);
  (void)committed;
  ClusterState& state = cluster_state_[cluster];
  const auto erased = state.active.erase(txn);
  SSHARD_CHECK(erased == 1 && "decided txn missing from sch_ldr");
}

void FdsScheduler::BeginRound(Round round) {
  // The serial prologue itself may touch any shard; arm the step-phase
  // guards for the StepShard fan-out that follows (core/ownership.h).
  ownership_.BeginStepPhase();
  // Plan this round's colorings, grouped by leader shard, in the same
  // deterministic leadered_clusters_ order the monolithic loop used.
  for (std::vector<std::uint32_t>& lane : coloring_work_) lane.clear();
  for (const std::uint32_t id : leadered_clusters_) {
    const cluster::Cluster& cluster = hierarchy_->clusters()[id];
    const Round e_i = epoch_length(cluster.layer);
    const Round offset = round % e_i;
    const Round coloring_offset =
        std::max<Round>(1, std::min<Round>(e_i - 1, cluster.diameter));
    if (offset == coloring_offset) {
      coloring_work_[cluster.leader].push_back(id);
    }
  }
}

void FdsScheduler::StepShard(ShardId shard, Round round) {
  const OwnershipRegistry::ShardClaim claim(ownership_, shard);
  // Deliver: protocol messages are handled inline; Phase-1 batches land in
  // the leader's incoming set.
  network_.DeliverTo(shard, round, inbox_[shard]);
  for (auto& envelope : inbox_[shard]) {
    if (protocol_.HandleMessage(shard, envelope.payload, round)) {
      continue;
    }
    auto* batch = std::get_if<TxnBatchMsg>(&envelope.payload);
    SSHARD_CHECK(batch != nullptr && "unexpected message type in FDS");
    SSHARD_CHECK(shard == hierarchy_->clusters()[batch->cluster].leader);
    ClusterState& state = cluster_state_[batch->cluster];
    for (auto& txn : batch->txns) state.incoming.push_back(std::move(txn));
  }

  // Phase 1, home side: ship buffered transactions for every cluster whose
  // epoch starts this round.
  auto& outgoing = home_outgoing_[shard];
  for (auto it = outgoing.begin(); it != outgoing.end();) {
    const cluster::Cluster& cluster = hierarchy_->clusters()[it->first];
    const Round e_i = epoch_length(cluster.layer);
    if (round % e_i != 0 || it->second.empty()) {
      ++it;
      continue;
    }
    TxnBatchMsg batch;
    batch.cluster = cluster.id;
    batch.epoch = round / e_i;
    buffered_by_home_[shard] -= it->second.size();
    const std::uint64_t units = it->second.size();
    batch.txns = std::move(it->second);
    outbox_.Send(shard, cluster.leader, Message{std::move(batch)}, units);
    it = outgoing.erase(it);
  }

  // Phase 2, leader side: colorings planned for this shard this round.
  // The shard-owned arena recycles the previous coloring round's scratch;
  // every coloring this shard runs this round bump-allocates from it.
  if (!coloring_work_[shard].empty()) step_arenas_[shard].Reset();
  for (const std::uint32_t id : coloring_work_[shard]) {
    RunColoring(hierarchy_->clusters()[id], shard, round);
  }

  // Algorithm 2b: this destination votes for its queue head.
  protocol_.IssueVotesForShard(shard, round);
}

void FdsScheduler::EndRound(Round round) {
  ownership_.EndParallelPhase();
  outbox_.Flush(network_, round);
  ledger_->FlushRound(round);
}

void FdsScheduler::SealRound(Round round, std::uint32_t parts) {
  ownership_.BeginFlushPhase();
  outbox_.Seal();
  network_.flush_cap.Acquire();  // annotation-only, no runtime effect
  ledger_->SealJournal(round, parts);
}

void FdsScheduler::FlushRoundPartition(Round round, std::uint32_t part,
                                       std::uint32_t parts) {
  const auto [begin, end] = FlushShardRange(shard_count(), part, parts);
  const OwnershipRegistry::RangeClaim claim(ownership_, begin, end);
  outbox_.FlushSealedTo(network_, round, begin, end);
  ledger_->ResolveSealedPartition(part, round);
}

void FdsScheduler::FinishRound(Round round) {
  ownership_.EndParallelPhase();
  outbox_.FinishSealedFlush(network_);
  ledger_->FinishSealedRound(round);
}

void FdsScheduler::RunColoring(const cluster::Cluster& cluster,
                               ShardId leader, Round round) {
  SSHARD_OWNED(ownership_, leader);
  ClusterState& state = cluster_state_[cluster.id];
  const Round e_i = epoch_length(cluster.layer);
  const Round epoch_start = (round / e_i) * e_i;
  const Round t_end = epoch_start + e_i;

  // Rescheduling: the epoch end coincides with a rescheduling period P_k
  // for some k > layer iff t_end is a multiple of 2 * E_i.
  const bool reschedule = config_.reschedule && (t_end % (2 * e_i) == 0) &&
                          !state.active.empty();

  if (state.incoming.empty() && !reschedule) return;

  // Collect the coloring set: new transactions, plus (on reschedule) every
  // scheduled-but-undecided transaction of this cluster. The view and the
  // coloring's internal scratch bump-allocate from the leader shard's step
  // arena (reset once per coloring round in StepShard).
  common::Arena& arena = step_arenas_[leader];
  common::ArenaVector<const txn::Transaction*> view{
      common::ArenaAllocator<const txn::Transaction*>(&arena)};
  view.reserve(state.incoming.size() + (reschedule ? state.active.size() : 0));
  const std::size_t new_count = state.incoming.size();
  for (const auto& txn : state.incoming) view.push_back(&txn);
  if (reschedule) {
    ++reschedules_by_shard_[leader];
    // sch_ldr is an unordered_map and the coloring result depends on view
    // order, so the undecided set must be sorted into a platform-neutral
    // order (by txn id) before it feeds the coloring.
    const std::size_t first_active = view.size();
    // lint:allow(unordered-iteration): sorted by txn id immediately below.
    for (const auto& [id, txn] : state.active) {
      (void)id;
      view.push_back(&txn);
    }
    std::sort(view.begin() + static_cast<std::ptrdiff_t>(first_active),
              view.end(),
              [](const txn::Transaction* a, const txn::Transaction* b) {
                return a->id() < b->id();
              });
  }

  const txn::ColoringResult coloring =
      ColorShardCliques(view, config_.coloring, arena);
  SSHARD_DCHECK(IsProperShardColoring(view, coloring.color));

  for (std::size_t v = 0; v < view.size(); ++v) {
    const txn::Transaction& txn = *view[v];
    const Height height{t_end, cluster.layer, cluster.sublayer,
                        coloring.color[v], txn.id()};
    const bool is_new = v < new_count;
    if (is_new) {
      protocol_.Coordinate(leader, txn, cluster.id);
    }
    for (const txn::SubTransaction& sub : txn.subs()) {
      protocol_.SendSubTxn(leader, txn, sub, height, cluster.id,
                           /*update=*/!is_new);
    }
  }
  for (auto& txn : state.incoming) {
    const TxnId id = txn.id();
    state.active.emplace(id, std::move(txn));
  }
  state.incoming.clear();
}

bool FdsScheduler::Idle() const {
  for (const std::uint64_t buffered : buffered_by_home_) {
    if (buffered != 0) return false;
  }
  if (network_.HasPending() || !protocol_.Idle()) return false;
  for (const std::uint32_t id : leadered_clusters_) {
    const ClusterState& state = cluster_state_[id];
    if (!state.incoming.empty() || !state.active.empty()) return false;
  }
  return true;
}

double FdsScheduler::LeaderQueueMean() const {
  if (used_cluster_count_ == 0) return 0.0;
  std::uint64_t total = 0;
  for (const std::uint32_t id : leadered_clusters_) {
    total += cluster_state_[id].active.size();
  }
  return static_cast<double>(total) /
         static_cast<double>(used_cluster_count_);
}

double FdsScheduler::LeaderQueueMax() const {
  // The single hottest cluster queue: sch_ldr plus the epoch's incoming
  // batch — the undiluted signal of one leader degenerating (the mean
  // above spreads it over every used cluster).
  std::uint64_t max_queue = 0;
  for (const std::uint32_t id : leadered_clusters_) {
    const ClusterState& state = cluster_state_[id];
    max_queue = std::max<std::uint64_t>(
        max_queue, state.active.size() + state.incoming.size());
  }
  return static_cast<double>(max_queue);
}

namespace {
FdsConfig FdsConfigFrom(const SimConfig& config) {
  FdsConfig fds;
  fds.coloring = config.coloring;
  fds.reschedule = config.fds_reschedule;
  fds.commit_mode = config.fds_pipelined ? CommitMode::kPipelined
                                         : CommitMode::kPinned;
  return fds;
}

// "fds" is the paper's hierarchy verbatim: a single top-layer root (the
// fds_top_roots knob is deliberately ignored — the multi-root hierarchy is
// its own registered mode, so the baseline stays the baseline).
const SchedulerRegistrar kFdsRegistrar{
    "fds", [](const SimConfig& config, SchedulerDeps& deps) {
      return std::unique_ptr<Scheduler>(std::make_unique<FdsScheduler>(
          deps.metric, deps.hierarchy(1), deps.ledger,
          FdsConfigFrom(config)));
    }};

// "fds_multiroot": the hierarchy's top cover split into
// SimConfig::fds_top_roots interchangeable roots (1 reduces to the exact
// single-top hierarchy — the bit-identity golden in leader_sharding_test).
const SchedulerRegistrar kFdsMultirootRegistrar{
    "fds_multiroot", [](const SimConfig& config, SchedulerDeps& deps) {
      SSHARD_CHECK(config.fds_top_roots >= 1);
      return std::unique_ptr<Scheduler>(std::make_unique<FdsScheduler>(
          deps.metric, deps.hierarchy(config.fds_top_roots), deps.ledger,
          FdsConfigFrom(config)));
    }};
}  // namespace

}  // namespace stableshard::core
