// Scheduler interface.
//
// A Scheduler consumes injected transactions and drives the per-round
// protocol that eventually commits (or aborts) each one through the
// CommitLedger. The engine calls Inject() for every transaction generated
// by the adversary at the start of a round, then executes the round in
// three phases:
//
//   BeginRound(round)        serial — epoch transitions, leader selection,
//                            per-round work planning; no message traffic.
//   StepShard(shard, round)  parallel-safe — runs shard `shard`'s slice of
//                            the round: drains Network::DeliverTo(shard),
//                            executes phase logic that touches only
//                            shard-owned state, and queues sends on the
//                            shard's OutboxSet lane. The engine may invoke
//                            StepShard for distinct shards concurrently;
//                            implementations must not touch shared mutable
//                            state here (ledger bookkeeping goes through
//                            CommitLedger::ApplyConfirmDeferred).
//   EndRound(round)          serial — flushes outbox lanes into the
//                            network in shard order and commits the
//                            ledger's round journal.
//
// The decomposition is deterministic by construction: StepShard bodies are
// pairwise independent and all cross-shard effects funnel through the
// shard-ordered flush, so `worker_threads = 1` and `worker_threads = N`
// produce bit-identical results (asserted by tests/parallel_engine_test).
// Step(round) is the serial convenience driver for tests and examples.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "net/network.h"
#include "txn/transaction.h"

namespace stableshard::core {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// A transaction arrives at its home shard's injection queue (serial,
  /// between rounds).
  virtual void Inject(const txn::Transaction& txn) = 0;

  /// Serial prologue of one synchronous round. Rounds are strictly
  /// increasing, starting at 0.
  virtual void BeginRound(Round round) = 0;

  /// Shard `shard`'s slice of the round (see the contract above). Called
  /// exactly once per shard per round, possibly concurrently across shards.
  virtual void StepShard(ShardId shard, Round round) = 0;

  /// Serial epilogue: publish queued sends and ledger bookkeeping.
  virtual void EndRound(Round round) = 0;

  /// Number of shards this scheduler operates (== StepShard fan-out).
  virtual ShardId shard_count() const = 0;

  /// Serial convenience driver: one full round on the calling thread.
  void Step(Round round) {
    BeginRound(round);
    const ShardId shards = shard_count();
    for (ShardId shard = 0; shard < shards; ++shard) {
      StepShard(shard, round);
    }
    EndRound(round);
  }

  /// No pending work anywhere (used by drain-mode liveness tests). Serial.
  virtual bool Idle() const = 0;

  /// Scheduler-specific "queue size at the coordinating shards" metric:
  /// BDS reports 0 (its figure metric is home-shard pending, tracked by the
  /// engine); FDS reports the mean scheduled-but-uncommitted queue length
  /// per active cluster leader (Figure 3's left panel).
  virtual double LeaderQueueMean() const { return 0.0; }

  virtual std::uint64_t MessagesSent() const = 0;
  virtual std::uint64_t PayloadUnits() const = 0;

  /// Footprint of the scheduler's lazy network ring (serial phases only).
  /// Benches use it to report the O(live destinations) memory claim;
  /// schedulers without a network report an empty footprint.
  virtual net::RingMemory NetworkMemory() const { return {}; }

  /// Per-shard traffic split of the scheduler's network (leader-bottleneck
  /// forensics). Zeroes when the scheduler keeps no per-shard stats.
  virtual net::ShardTraffic ShardTrafficFor(ShardId shard) const {
    (void)shard;
    return {};
  }

  virtual const char* name() const = 0;
};

}  // namespace stableshard::core
