// Scheduler interface.
//
// A Scheduler consumes injected transactions and drives the per-round
// protocol that eventually commits (or aborts) each one through the
// CommitLedger. The engine calls Inject() for every transaction generated
// by the adversary at the start of a round, then executes the round in
// three phases:
//
//   BeginRound(round)        serial — epoch transitions, leader selection,
//                            per-round work planning; no message traffic.
//   StepShard(shard, round)  parallel-safe — runs shard `shard`'s slice of
//                            the round: drains Network::DeliverTo(shard),
//                            executes phase logic that touches only
//                            shard-owned state, and queues sends on the
//                            shard's OutboxSet lane. The engine may invoke
//                            StepShard for distinct shards concurrently;
//                            implementations must not touch shared mutable
//                            state here (ledger bookkeeping goes through
//                            CommitLedger::ApplyConfirmDeferred).
//   EndRound(round)          serial — flushes outbox lanes into the
//                            network in shard order and commits the
//                            ledger's round journal.
//
// The decomposition is deterministic by construction: StepShard bodies are
// pairwise independent and all cross-shard effects funnel through the
// shard-ordered flush, so `worker_threads = 1` and `worker_threads = N`
// produce bit-identical results (asserted by tests/parallel_engine_test).
// Step(round) is the serial convenience driver for tests and examples.
//
// Pipelined epilogue. EndRound is itself a serial bottleneck once StepShard
// is parallel (Amdahl), so the engine's pooled driver replaces it with the
// equivalent triple
//
//   SealRound(round, parts)             serial, cheap — swap the outbox and
//                                       ledger-journal double buffers.
//   FlushRoundPartition(round, p, parts) parallel-safe for distinct p —
//                                       drain partition p of the sealed
//                                       buffers: deposit outbox items whose
//                                       *destination* falls in the
//                                       partition's shard range (each
//                                       destination ring touched by exactly
//                                       one worker, per-destination order
//                                       preserved by construction) and
//                                       resolve the journal entries the
//                                       partition owns.
//   FinishRound(round)                  serial epilogue — fold global
//                                       counters/latency, retire buffers.
//
// The triple must leave every observable bit identical to EndRound(round);
// the default implementations below make Seal/FlushPartition no-ops and
// FinishRound delegate to EndRound, so a scheduler that never overrides
// them is still correct (just unpipelined). Between SealRound and
// FinishRound the engine may run the adversary's next-round generation on
// the driving thread — scheduler state is not touched during that window,
// and Inject/BeginRound of the next round happen strictly after
// FinishRound.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/arena.h"
#include "common/types.h"
#include "durability/liveness.h"
#include "net/network.h"
#include "net/outbox.h"
#include "txn/transaction.h"

namespace stableshard::core {

/// Contiguous destination-shard range owned by flush partition `part` of
/// `parts`: ranges cover [0, shards) disjointly, so per-destination state is
/// touched by exactly one partition whatever `parts` is — which is why the
/// partition count never shows in the results.
inline std::pair<ShardId, ShardId> FlushShardRange(ShardId shards,
                                                   std::uint32_t part,
                                                   std::uint32_t parts) {
  const ShardId chunk = (shards + parts - 1) / parts;
  const ShardId begin = static_cast<ShardId>(
      std::min<std::uint64_t>(static_cast<std::uint64_t>(chunk) * part,
                              shards));
  const ShardId end = static_cast<ShardId>(
      std::min<std::uint64_t>(static_cast<std::uint64_t>(begin) + chunk,
                              shards));
  return {begin, end};
}

// Call-order contract (the engine, and any conforming driver, guarantees
// it): per round r the sequence is
//
//   Inject* -> BeginRound(r) -> StepShard(shard, r) for every shard
//           -> { EndRound(r) | SealRound(r) -> FlushRoundPartition* ->
//                FinishRound(r) }
//
// with Inject only ever called between rounds (after the previous round's
// FinishRound/EndRound, before BeginRound). Thread ownership: everything
// except StepShard and FlushRoundPartition runs on the driving thread;
// StepShard may run concurrently for distinct shards, FlushRoundPartition
// for distinct partitions. Determinism obligation: any state a scheduler
// branches on in a serial phase (including the traffic/queue introspection
// below) must be bit-identical whatever worker_threads or the pipeline
// switch — which every counter folded through the serial epilogue is.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// A transaction arrives at its home shard's injection queue (serial,
  /// between rounds — never during a round's phases). Admission-control
  /// wrappers may defer the transaction instead of enqueueing it, but the
  /// ledger has already registered it: a deferred transaction still counts
  /// as pending and must eventually be admitted or the run cannot drain.
  virtual void Inject(const txn::Transaction& txn) = 0;

  /// Serial prologue of one synchronous round. Rounds are strictly
  /// increasing, starting at 0.
  virtual void BeginRound(Round round) = 0;

  /// Shard `shard`'s slice of the round (see the contract above). Called
  /// exactly once per shard per round, possibly concurrently across shards.
  virtual void StepShard(ShardId shard, Round round) = 0;

  /// Serial epilogue: publish queued sends and ledger bookkeeping.
  virtual void EndRound(Round round) = 0;

  /// Pipelined epilogue (see the class comment). The defaults degrade to a
  /// fully serial FinishRound == EndRound, which is always correct.
  virtual void SealRound(Round round, std::uint32_t parts) {
    (void)round;
    (void)parts;
  }
  virtual void FlushRoundPartition(Round round, std::uint32_t part,
                                   std::uint32_t parts) {
    (void)round;
    (void)part;
    (void)parts;
  }
  virtual void FinishRound(Round round) { EndRound(round); }

  /// Number of shards this scheduler operates (== StepShard fan-out).
  virtual ShardId shard_count() const = 0;

  /// Serial convenience driver: one full round on the calling thread.
  void Step(Round round) {
    BeginRound(round);
    const ShardId shards = shard_count();
    for (ShardId shard = 0; shard < shards; ++shard) {
      StepShard(shard, round);
    }
    EndRound(round);
  }

  /// No pending work anywhere (used by drain-mode liveness tests). Serial.
  virtual bool Idle() const = 0;

  /// Scheduler-specific "queue size at the coordinating shards" metric:
  /// BDS reports 0 (its figure metric is home-shard pending, tracked by the
  /// engine); FDS reports the mean scheduled-but-uncommitted queue length
  /// per active cluster leader (Figure 3's left panel).
  virtual double LeaderQueueMean() const { return 0.0; }

  /// Peak variant of LeaderQueueMean: the single largest coordinator queue
  /// right now (FDS: max sch_ldr over led clusters; sharded BDS: max
  /// in-flight coordination load over leader/co-leader shards). The mean
  /// dilutes one overloaded leader across every active cluster — this is
  /// the undiluted signal the single-leader-degeneration fix is measured
  /// by. Serial phases only; same determinism obligation as the mean.
  virtual double LeaderQueueMax() const { return 0.0; }

  virtual std::uint64_t MessagesSent() const = 0;
  virtual std::uint64_t PayloadUnits() const = 0;

  /// Footprint of the scheduler's lazy network ring (serial phases only).
  /// Benches use it to report the O(live destinations) memory claim;
  /// schedulers without a network report an empty footprint.
  virtual net::RingMemory NetworkMemory() const { return {}; }

  /// Footprint of the scheduler's outbox lanes (serial phases only) — the
  /// double-buffered send lanes decay after bursts like the network rings;
  /// benches report both. Schedulers without an outbox report zeroes.
  virtual net::LaneMemory OutboxMemory() const { return {}; }

  /// Footprint of the scheduler's per-round scratch arenas (serial phases
  /// only) — the bump allocators backing the Phase-2 view/coloring scratch.
  /// Aggregated across shards for schedulers with per-shard arenas; zeroes
  /// for schedulers that keep no arena-backed scratch.
  virtual common::ArenaMemoryStats ArenaMemory() const { return {}; }

  /// Per-shard traffic split of the scheduler's network (leader-bottleneck
  /// forensics, backpressure watermarks). Zeroes when the scheduler keeps
  /// no per-shard stats. Serial phases only; the counters are cumulative
  /// and bit-identical across worker counts there (see net::ShardTraffic).
  virtual net::ShardTraffic ShardTrafficFor(ShardId shard) const {
    (void)shard;
    return {};
  }

  /// Undelivered network messages currently addressed to `shard` — the
  /// per-destination queue depth a traffic-aware wrapper watermarks on.
  /// Serial phases only. Schedulers without a network report 0.
  virtual std::uint64_t QueueDepth(ShardId shard) const {
    (void)shard;
    return 0;
  }

  /// Transactions accepted by Inject but parked in an admission-control
  /// spill queue instead of entering the protocol (0 for schedulers
  /// without admission control). The engine's drain loop keeps stepping
  /// while this is non-zero via Idle(), and samples it into
  /// SimResult::spill_peak; the accounting identity counts spilled
  /// transactions as pending.
  virtual std::uint64_t SpilledTxns() const { return 0; }

  /// Engine notification of a shard liveness transition under the fault
  /// plan (crash, recovery start, catch-up, rejoin — see
  /// durability/liveness.h). Serial, between rounds, and the engine never
  /// runs protocol rounds while any shard is off-line (the stall-the-world
  /// fault model), so phase logic needs no liveness branches; wrappers may
  /// observe transitions (e.g. to reset congestion signals for a rejoining
  /// shard). Default: ignore. Wrapping schedulers must forward.
  virtual void OnShardLiveness(ShardId shard,
                               durability::ShardLiveness state) {
    (void)shard;
    (void)state;
  }

  virtual const char* name() const = 0;
};

}  // namespace stableshard::core
