// Scheduler interface.
//
// A Scheduler consumes injected transactions and drives the per-round
// protocol that eventually commits (or aborts) each one through the
// CommitLedger. The engine calls Inject() for every transaction generated
// by the adversary at the start of a round, then Step(round) exactly once.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "txn/transaction.h"

namespace stableshard::core {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// A transaction arrives at its home shard's injection queue.
  virtual void Inject(const txn::Transaction& txn) = 0;

  /// Execute one synchronous round (deliver messages, run the phase logic,
  /// send messages). Rounds are strictly increasing, starting at 0.
  virtual void Step(Round round) = 0;

  /// No pending work anywhere (used by drain-mode liveness tests).
  virtual bool Idle() const = 0;

  /// Scheduler-specific "queue size at the coordinating shards" metric:
  /// BDS reports 0 (its figure metric is home-shard pending, tracked by the
  /// engine); FDS reports the mean scheduled-but-uncommitted queue length
  /// per active cluster leader (Figure 3's left panel).
  virtual double LeaderQueueMean() const { return 0.0; }

  virtual std::uint64_t MessagesSent() const = 0;
  virtual std::uint64_t PayloadUnits() const = 0;

  virtual const char* name() const = 0;
};

}  // namespace stableshard::core
