// Inter-shard message types for the three schedulers.
//
// All scheduler communication flows through net::Network<Message> so that
// delivery delays equal the metric distances and traffic is accounted.
// BDS uses {TxnBatchMsg, EpochPlanMsg, ColorAssignMsg, SubTxnMsg, VoteMsg,
// ConfirmMsg} plus ColorClassMsg in the sharded-leader mode; FDS
// additionally uses the retract handshake (see
// commit_protocol.h for why the handshake exists); Direct uses the commit
// protocol subset only.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/types.h"
#include "core/height.h"
#include "txn/transaction.h"

namespace stableshard::core {

/// Home shard -> leader: the pending transactions picked up this epoch
/// (Phase 1 of both algorithms). `cluster` identifies the FDS home cluster
/// (unused by BDS, set to 0).
struct TxnBatchMsg {
  std::uint32_t cluster = 0;
  std::uint64_t epoch = 0;
  std::vector<txn::Transaction> txns;
};

/// BDS leader -> all shards: the number of colors of this epoch, fixing the
/// epoch length 2 + 4 * num_colors for everyone.
struct EpochPlanMsg {
  std::uint64_t epoch = 0;
  std::uint32_t num_colors = 0;
};

/// BDS leader -> home shard: colors assigned to that home's transactions.
struct ColorAssignMsg {
  std::uint64_t epoch = 0;
  std::vector<std::pair<TxnId, Color>> colors;
};

/// Sharded-leader BDS (color_leaders > 1), leader -> co-leader: one whole
/// color class of the epoch's coloring. The co-leader shard mapped to
/// `color` becomes the Phase-3 coordinator for these transactions (it sends
/// the subtransactions, collects the votes and confirms), so the commit
/// fan-out runs across color classes in parallel instead of serializing on
/// the homes' per-color schedules. Payload units = transactions shipped.
struct ColorClassMsg {
  std::uint64_t epoch = 0;
  Color color = 0;
  std::vector<txn::Transaction> txns;
};

/// Coordinator (home shard or cluster leader) -> destination shard: one
/// subtransaction to insert into the destination's schedule queue. When
/// `update` is set the destination only refreshes the height of an existing
/// entry (FDS rescheduling, Section 6.2 Phase 2).
struct SubTxnMsg {
  TxnId txn = kInvalidTxn;
  std::uint32_t cluster = 0;
  ShardId coordinator = kInvalidShard;
  Height height;
  bool update = false;
  txn::SubTransaction sub;
};

/// Destination -> coordinator: commit/abort vote for one subtransaction.
struct VoteMsg {
  TxnId txn = kInvalidTxn;
  std::uint32_t cluster = 0;
  ShardId dest = kInvalidShard;
  bool commit = false;
};

/// Coordinator -> destinations: final decision. `height` is the
/// coordinator's current (final) height for the transaction: pipelined
/// destinations re-key their entry to it so every shard applies the commit
/// at the same queue position (cross-shard order consistency).
struct ConfirmMsg {
  TxnId txn = kInvalidTxn;
  std::uint32_t cluster = 0;
  bool commit = false;
  Height height;
};

/// Destination -> coordinator: "a higher-priority subtransaction arrived;
/// may I withdraw my vote for `txn`?" (see commit_protocol.h).
struct RetractRequestMsg {
  TxnId txn = kInvalidTxn;
  std::uint32_t cluster = 0;
  ShardId dest = kInvalidShard;
};

/// Coordinator -> destination: retraction granted (the coordinator had not
/// yet decided); the destination unpins and revotes by priority.
struct RetractAckMsg {
  TxnId txn = kInvalidTxn;
  std::uint32_t cluster = 0;
};

using Message =
    std::variant<TxnBatchMsg, EpochPlanMsg, ColorAssignMsg, ColorClassMsg,
                 SubTxnMsg, VoteMsg, ConfirmMsg, RetractRequestMsg,
                 RetractAckMsg>;

}  // namespace stableshard::core
