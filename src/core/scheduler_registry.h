// Scheduler registry: name -> builder, so schedulers plug into the engine
// without the engine naming them.
//
// Each scheduler translation unit self-registers at static-init time via a
// SchedulerRegistrar (see the bottom of bds.cc / fds.cc / direct.cc).
// Simulation looks the configured name up here, so adding a scheduler —
// in-tree or in an embedding application — requires zero engine edits:
// define the class, register a builder, set SimConfig::scheduler to the new
// name. The core library is linked as a CMake OBJECT library precisely so
// that these registrar objects are never dead-stripped.
//
// Builders receive the validated SimConfig plus a SchedulerDeps bundle of
// engine-owned runtime services. The hierarchy is provided as a lazy
// accessor: only schedulers that actually need a cluster decomposition pay
// for building one.
//
// Contract: Register must only run during static initialization or before
// any Simulation is constructed (the registry is not locked); duplicate
// names die. Build runs on the Simulation constructor's thread and may
// call deps.hierarchy() at most as a one-time construction cost; every
// dep outlives the built scheduler. The built Scheduler is then driven
// under the call-order/thread-ownership contract of core/scheduler.h —
// a registered scheduler automatically enters the matrix harness
// (tests/matrix_test.cc), so it must uphold the bit-identity-across-
// workers determinism obligation from day one. Builders that validate
// config (e.g. backpressure's watermarks) should die via SSHARD_CHECK;
// CLIs validate the same conditions first and exit 2.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/registry.h"
#include "core/config.h"
#include "core/scheduler.h"

namespace stableshard::cluster {
class Hierarchy;
}  // namespace stableshard::cluster

namespace stableshard::net {
class ShardMetric;
}  // namespace stableshard::net

namespace stableshard::core {

class CommitLedger;

/// Runtime services the engine hands to scheduler builders.
struct SchedulerDeps {
  const net::ShardMetric& metric;
  CommitLedger& ledger;
  /// Builds (once) and returns the cluster hierarchy configured by
  /// SimConfig::hierarchy with `top_roots` top-layer root clusters; the
  /// engine owns the result. Builders pass 1 for the classic single-top
  /// hierarchy or SimConfig::fds_top_roots for the multi-root one; a second
  /// call with a different count dies (one hierarchy per simulation).
  std::function<const cluster::Hierarchy&(std::uint32_t top_roots)> hierarchy;
};

/// The shared common::Registry supplies Register / Contains / Build /
/// Names; unknown names abort with the sorted list of known schedulers.
class SchedulerRegistry final
    : public common::Registry<Scheduler, SimConfig, SchedulerDeps> {
 public:
  /// The process-wide registry (static-init safe).
  static SchedulerRegistry& Global();

 private:
  SchedulerRegistry() : Registry("scheduler") {}
};

/// Static-init helper: `const SchedulerRegistrar r{"name", builder};`
struct SchedulerRegistrar {
  SchedulerRegistrar(const std::string& name,
                     SchedulerRegistry::Builder builder) {
    SchedulerRegistry::Global().Register(name, std::move(builder));
  }
};

}  // namespace stableshard::core
