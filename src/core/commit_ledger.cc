#include "core/commit_ledger.h"

#include "common/check.h"

namespace stableshard::core {

CommitLedger::CommitLedger(const chain::AccountMap& map,
                           chain::Balance initial_balance)
    : map_(&map),
      initial_balance_(initial_balance),
      last_commit_round_(map.shard_count(), kNoRound),
      journal_(map.shard_count()) {
  stores_.reserve(map.shard_count());
  chains_.reserve(map.shard_count());
  for (ShardId shard = 0; shard < map.shard_count(); ++shard) {
    stores_.emplace_back(initial_balance);
    chains_.emplace_back(shard);
  }
}

void CommitLedger::AttachWal(durability::WalManager* wal) {
  SSHARD_CHECK(wal != nullptr);
  SSHARD_CHECK(wal->shard_count() == stores_.size() &&
               "WAL shard count mismatch");
  SSHARD_CHECK(wal_ == nullptr && "WAL already attached");
  wal_ = wal;
}

void CommitLedger::ResetShardForRecovery(ShardId shard) {
  SSHARD_CHECK(shard < stores_.size());
  SSHARD_CHECK(journal_[shard].empty() &&
               "crash with an undrained journal: crash points are round "
               "boundaries");
  stores_[shard] = chain::AccountStore(initial_balance_);
  chains_[shard] = chain::LocalChain(shard);
  last_commit_round_[shard] = kNoRound;
}

void CommitLedger::RegisterInjection(const txn::Transaction& txn) {
  TxnRecord record;
  record.injected = txn.injected();
  record.remaining = static_cast<std::uint32_t>(txn.subs().size());
  const auto [it, inserted] = records_.emplace(txn.id(), record);
  (void)it;
  SSHARD_CHECK(inserted && "transaction registered twice");
  ++registered_;
}

bool CommitLedger::EvaluateSub(const txn::SubTransaction& sub) const {
  SSHARD_DCHECK(sub.destination < stores_.size());
  const chain::AccountStore& store = stores_[sub.destination];
  for (const chain::Condition& condition : sub.conditions) {
    SSHARD_DCHECK(map_->OwnerOf(condition.account) == sub.destination);
    if (!store.Check(condition)) return false;
  }
  for (const chain::Action& action : sub.actions) {
    SSHARD_DCHECK(map_->OwnerOf(action.account) == sub.destination);
    if (!store.IsValid(action)) return false;
  }
  return true;
}

bool CommitLedger::ApplyConfirm(TxnId txn, const txn::SubTransaction& sub,
                                bool commit, Round round) {
  const auto it = records_.find(txn);
  SSHARD_CHECK(it != records_.end() && "confirm for unregistered txn");
  SSHARD_CHECK(it->second.remaining > 0 && "confirm after txn resolved");
  if (commit) {
    // Unit shard capacity: one committed subtransaction per shard per round.
    SSHARD_CHECK(last_commit_round_[sub.destination] != round &&
                 "two commits on one shard in one round");
    last_commit_round_[sub.destination] = round;
    // The pin discipline means the vote-time evaluation still holds.
    SSHARD_CHECK(EvaluateSub(sub) && "commit applied to stale state");
    chain::AccountStore& store = stores_[sub.destination];
    for (const chain::Action& action : sub.actions) {
      store.Apply(action);
    }
    const std::uint64_t digest = sub.Digest();
    chains_[sub.destination].Append(txn, round, digest);
    if (wal_ != nullptr) {
      wal_->StageCommit(sub.destination, txn, round, digest, sub.actions);
    }
  } else if (wal_ != nullptr) {
    wal_->StageAbort(sub.destination, txn, round);
  }
  const std::uint64_t resolved_before = resolved_;
  ResolveConfirm(txn, commit, round);
  return resolved_ != resolved_before;
}

void CommitLedger::ApplyConfirmDeferred(TxnId txn,
                                        const txn::SubTransaction& sub,
                                        bool commit, Round round) {
  // Shard-local half only: store/chain effects for the destination shard
  // plus a journal entry. Runs inside StepShard(sub.destination, round).
  if (commit) {
    SSHARD_CHECK(last_commit_round_[sub.destination] != round &&
                 "two commits on one shard in one round");
    last_commit_round_[sub.destination] = round;
    SSHARD_CHECK(EvaluateSub(sub) && "commit applied to stale state");
    chain::AccountStore& store = stores_[sub.destination];
    for (const chain::Action& action : sub.actions) {
      store.Apply(action);
    }
    const std::uint64_t digest = sub.Digest();
    chains_[sub.destination].Append(txn, round, digest);
    // WAL staging is shard-owned like the store/chain writes above, so it
    // inherits StepShard's concurrency safety for distinct destinations.
    if (wal_ != nullptr) {
      wal_->StageCommit(sub.destination, txn, round, digest, sub.actions);
    }
  } else if (wal_ != nullptr) {
    wal_->StageAbort(sub.destination, txn, round);
  }
  journal_[sub.destination].push_back(JournalEntry{txn, commit});
}

void CommitLedger::FlushRound(Round round) {
  for (std::vector<JournalEntry>& shard_journal : journal_) {
    for (const JournalEntry& entry : shard_journal) {
      ResolveConfirm(entry.txn, entry.commit, round);
    }
    shard_journal.clear();
  }
  if (wal_ != nullptr) wal_->PersistAll(round);
}

void CommitLedger::SealJournal(Round round, std::uint32_t parts) {
  journal_cap.Acquire();  // annotation-only, no runtime effect
  SSHARD_CHECK(parts >= 1);
  if (wal_ != nullptr) wal_->Seal(round, parts);
#ifndef NDEBUG
  for (const std::vector<JournalEntry>& shard_journal : sealed_journal_) {
    SSHARD_DCHECK(shard_journal.empty() &&
                  "sealing over an undrained journal");
  }
#endif
  if (sealed_journal_.empty()) sealed_journal_.resize(journal_.size());
  journal_.swap(sealed_journal_);
  sealed_prefix_.resize(sealed_journal_.size());
  std::uint64_t base = 0;
  for (std::size_t dest = 0; dest < sealed_journal_.size(); ++dest) {
    sealed_prefix_[dest] = base;
    base += sealed_journal_[dest].size();
  }
  if (completions_.size() < parts) completions_.resize(parts);
  sealed_parts_ = parts;
}

void CommitLedger::ResolveSealedPartition(std::uint32_t part, Round round) {
  (void)round;
  SSHARD_DCHECK(part < sealed_parts_);
  // Persist this partition's WAL chunk first: the encode overlaps the
  // resolution work on the same pool pass (disjoint data — the WAL
  // partitions by destination-shard range, the resolution by txn residue).
  if (wal_ != nullptr) wal_->PersistSealedPartition(part);
  std::vector<Completion>& out = completions_[part];
  out.clear();
  for (std::size_t dest = 0; dest < sealed_journal_.size(); ++dest) {
    const std::vector<JournalEntry>& entries = sealed_journal_[dest];
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const JournalEntry& entry = entries[i];
      if (entry.txn % sealed_parts_ != part) continue;
      // Concurrent find()s never mutate the map structure (no insertion may
      // overlap the drain window) and each record belongs to one partition.
      const auto it = records_.find(entry.txn);
      SSHARD_CHECK(it != records_.end() && "confirm for unregistered txn");
      TxnRecord& record = it->second;
      SSHARD_CHECK(record.remaining > 0 && "confirm after txn resolved");
      if (!entry.commit) record.any_abort = true;
      if (--record.remaining == 0) {
        out.push_back(Completion{sealed_prefix_[dest] + i, record.injected,
                                 !record.any_abort});
      }
    }
  }
}

void CommitLedger::FinishSealedRound(Round round) {
  // Merge the partitions' completion buffers (each ascending by journal
  // index) back into global journal order: the latency recorder must see
  // the exact sequence the serial FlushRound would have produced.
  std::vector<std::size_t> cursor(sealed_parts_, 0);
  for (;;) {
    std::uint32_t best = sealed_parts_;
    std::uint64_t best_index = 0;
    for (std::uint32_t part = 0; part < sealed_parts_; ++part) {
      if (cursor[part] >= completions_[part].size()) continue;
      const std::uint64_t index =
          completions_[part][cursor[part]].journal_index;
      if (best == sealed_parts_ || index < best_index) {
        best = part;
        best_index = index;
      }
    }
    if (best == sealed_parts_) break;
    const Completion& completion = completions_[best][cursor[best]++];
    ++resolved_;
    if (completion.committed) {
      ++committed_txns_;
    } else {
      ++aborted_txns_;
    }
    latency_.Record(completion.injected, round, completion.committed);
  }
  for (std::vector<JournalEntry>& shard_journal : sealed_journal_) {
    shard_journal.clear();
  }
  sealed_parts_ = 0;
  if (wal_ != nullptr) wal_->FinishSealedRound();
  journal_cap.Release();  // annotation-only, no runtime effect
}

void CommitLedger::ResolveConfirm(TxnId txn, bool commit, Round round) {
  auto it = records_.find(txn);
  SSHARD_CHECK(it != records_.end() && "confirm for unregistered txn");
  TxnRecord& record = it->second;
  SSHARD_CHECK(record.remaining > 0 && "confirm after txn resolved");
  if (!commit) record.any_abort = true;
  if (--record.remaining > 0) return;

  // Whole transaction resolved.
  ++resolved_;
  if (record.any_abort) {
    ++aborted_txns_;
  } else {
    ++committed_txns_;
  }
  latency_.Record(record.injected, round, !record.any_abort);
}

bool CommitLedger::IsResolved(TxnId txn) const {
  const auto it = records_.find(txn);
  if (it == records_.end()) return false;
  return it->second.remaining == 0;
}

}  // namespace stableshard::core
