#include "core/commit_ledger.h"

#include "common/check.h"

namespace stableshard::core {

CommitLedger::CommitLedger(const chain::AccountMap& map,
                           chain::Balance initial_balance)
    : map_(&map),
      last_commit_round_(map.shard_count(), kNoRound),
      journal_(map.shard_count()) {
  stores_.reserve(map.shard_count());
  chains_.reserve(map.shard_count());
  for (ShardId shard = 0; shard < map.shard_count(); ++shard) {
    stores_.emplace_back(initial_balance);
    chains_.emplace_back(shard);
  }
}

void CommitLedger::RegisterInjection(const txn::Transaction& txn) {
  TxnRecord record;
  record.injected = txn.injected();
  record.remaining = static_cast<std::uint32_t>(txn.subs().size());
  const auto [it, inserted] = records_.emplace(txn.id(), record);
  (void)it;
  SSHARD_CHECK(inserted && "transaction registered twice");
  ++registered_;
}

bool CommitLedger::EvaluateSub(const txn::SubTransaction& sub) const {
  SSHARD_DCHECK(sub.destination < stores_.size());
  const chain::AccountStore& store = stores_[sub.destination];
  for (const chain::Condition& condition : sub.conditions) {
    SSHARD_DCHECK(map_->OwnerOf(condition.account) == sub.destination);
    if (!store.Check(condition)) return false;
  }
  for (const chain::Action& action : sub.actions) {
    SSHARD_DCHECK(map_->OwnerOf(action.account) == sub.destination);
    if (!store.IsValid(action)) return false;
  }
  return true;
}

bool CommitLedger::ApplyConfirm(TxnId txn, const txn::SubTransaction& sub,
                                bool commit, Round round) {
  const auto it = records_.find(txn);
  SSHARD_CHECK(it != records_.end() && "confirm for unregistered txn");
  SSHARD_CHECK(it->second.remaining > 0 && "confirm after txn resolved");
  if (commit) {
    // Unit shard capacity: one committed subtransaction per shard per round.
    SSHARD_CHECK(last_commit_round_[sub.destination] != round &&
                 "two commits on one shard in one round");
    last_commit_round_[sub.destination] = round;
    // The pin discipline means the vote-time evaluation still holds.
    SSHARD_CHECK(EvaluateSub(sub) && "commit applied to stale state");
    chain::AccountStore& store = stores_[sub.destination];
    for (const chain::Action& action : sub.actions) {
      store.Apply(action);
    }
    chains_[sub.destination].Append(txn, round, sub.Digest());
  }
  const std::uint64_t resolved_before = resolved_;
  ResolveConfirm(txn, commit, round);
  return resolved_ != resolved_before;
}

void CommitLedger::ApplyConfirmDeferred(TxnId txn,
                                        const txn::SubTransaction& sub,
                                        bool commit, Round round) {
  // Shard-local half only: store/chain effects for the destination shard
  // plus a journal entry. Runs inside StepShard(sub.destination, round).
  if (commit) {
    SSHARD_CHECK(last_commit_round_[sub.destination] != round &&
                 "two commits on one shard in one round");
    last_commit_round_[sub.destination] = round;
    SSHARD_CHECK(EvaluateSub(sub) && "commit applied to stale state");
    chain::AccountStore& store = stores_[sub.destination];
    for (const chain::Action& action : sub.actions) {
      store.Apply(action);
    }
    chains_[sub.destination].Append(txn, round, sub.Digest());
  }
  journal_[sub.destination].push_back(JournalEntry{txn, commit});
}

void CommitLedger::FlushRound(Round round) {
  for (std::vector<JournalEntry>& shard_journal : journal_) {
    for (const JournalEntry& entry : shard_journal) {
      ResolveConfirm(entry.txn, entry.commit, round);
    }
    shard_journal.clear();
  }
}

void CommitLedger::ResolveConfirm(TxnId txn, bool commit, Round round) {
  auto it = records_.find(txn);
  SSHARD_CHECK(it != records_.end() && "confirm for unregistered txn");
  TxnRecord& record = it->second;
  SSHARD_CHECK(record.remaining > 0 && "confirm after txn resolved");
  if (!commit) record.any_abort = true;
  if (--record.remaining > 0) return;

  // Whole transaction resolved.
  ++resolved_;
  if (record.any_abort) {
    ++aborted_txns_;
  } else {
    ++committed_txns_;
  }
  latency_.Record(record.injected, round, !record.any_abort);
}

bool CommitLedger::IsResolved(TxnId txn) const {
  const auto it = records_.find(txn);
  if (it == records_.end()) return false;
  return it->second.remaining == 0;
}

}  // namespace stableshard::core
