#include "core/experiment.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace stableshard::core {

std::vector<ExperimentRun> RunSweep(const std::vector<SimConfig>& configs,
                                    std::size_t threads) {
  std::vector<ExperimentRun> runs(configs.size());

  // Single-level parallelism policy: parallelism lives either *across*
  // configurations (outer pool, each simulation serial) or *inside* each
  // simulation (worker_threads > 1, configurations run one at a time) —
  // never both. A sweep of w-threaded simulations fanned across t outer
  // workers would spin up t live pools of w workers each (w*t threads on
  // however many cores exist), and at s = 1024 the oversubscription is what
  // dominated wall clock. Results are unaffected either way: simulations
  // are deterministic in (config, seed) and worker_threads is
  // result-invariant by the scheduler decomposition contract.
  const bool inner_parallel =
      std::any_of(configs.begin(), configs.end(),
                  [](const SimConfig& c) { return c.worker_threads > 1; });
  if (inner_parallel) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      runs[i].config = configs[i];
      Simulation simulation(configs[i]);
      runs[i].result = simulation.Run();
    }
    return runs;
  }

  // One live pool for the whole sweep: simulations are coarse tasks, so the
  // instance ParallelFor hands each config its own task (no chunking) while
  // reusing the same workers across the batch.
  ThreadPool pool(threads);
  pool.ParallelFor(configs.size(), [&](std::size_t i) {
    runs[i].config = configs[i];
    Simulation simulation(configs[i]);
    runs[i].result = simulation.Run();
  });
  return runs;
}

}  // namespace stableshard::core
