#include "core/experiment.h"

#include "common/thread_pool.h"

namespace stableshard::core {

std::vector<ExperimentRun> RunSweep(const std::vector<SimConfig>& configs,
                                    std::size_t threads) {
  std::vector<ExperimentRun> runs(configs.size());
  ThreadPool::ParallelFor(
      configs.size(),
      [&](std::size_t i) {
        runs[i].config = configs[i];
        Simulation simulation(configs[i]);
        runs[i].result = simulation.Run();
      },
      threads);
  return runs;
}

}  // namespace stableshard::core
