#include "core/experiment.h"

#include "common/thread_pool.h"

namespace stableshard::core {

std::vector<ExperimentRun> RunSweep(const std::vector<SimConfig>& configs,
                                    std::size_t threads) {
  std::vector<ExperimentRun> runs(configs.size());
  // One live pool for the whole sweep: simulations are coarse tasks, so the
  // instance ParallelFor hands each config its own task (no chunking) while
  // reusing the same workers across the batch.
  ThreadPool pool(threads);
  pool.ParallelFor(configs.size(), [&](std::size_t i) {
    runs[i].config = configs[i];
    Simulation simulation(configs[i]);
    runs[i].result = simulation.Run();
  });
  return runs;
}

}  // namespace stableshard::core
