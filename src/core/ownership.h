// Shard-ownership runtime checker for Debug/ASan builds.
//
// The shard-parallel round loop is correct because every piece of in-round
// state has exactly one owner: during the StepShard fan-out, shard-owned
// state may only be touched by the StepShard invocation of that shard;
// during the partitioned flush, per-destination state only by the worker
// owning that destination range. TSan catches violations of this contract
// only when two threads actually race on the same cache line in the same
// run — a scheduling lottery. The OwnershipRegistry turns the whole class
// into a *deterministic* failure: each scheduler records the claim a
// worker holds (the stepped shard, or the flushed destination range) and
// SSHARD_OWNED guards on shard-owned state abort immediately — with the
// shard id in the message — when code touches a shard outside the calling
// worker's claim. Because claims are per-logical-slice rather than
// per-thread, the checker even catches same-thread cross-shard touches
// (StepShard(5) reaching into shard 1's queue), which no thread sanitizer
// can see; a single-worker Debug run already fails.
//
// Phases mirror core/scheduler.h's call-order contract:
//   kSerial — Inject / BeginRound / EndRound / FinishRound and everything
//             between rounds: any code may touch any shard (guards pass).
//   kStep   — between BeginRound's end and EndRound/SealRound: guards
//             require the calling worker's ShardClaim to cover the shard.
//   kFlush  — between SealRound and FinishRound: guards require the
//             worker's RangeClaim (the FlushShardRange) to cover it.
//
// Zero-cost in Release: under NDEBUG the registry is an empty struct, the
// claims are empty RAII shells and SSHARD_OWNED compiles to nothing, so
// the hot path is untouched (the bit-identity contract of
// `parallel_rounds --check` holds with the checker active — it only ever
// reads scheduler state, never mutates it).
#pragma once

#include "common/types.h"

#ifndef NDEBUG
#include <atomic>
#include <cstdint>
#include <vector>
#endif

namespace stableshard::core {

#ifndef NDEBUG

class OwnershipRegistry {
 private:
  /// The calling worker's current claim (thread-local; nestable).
  struct ThreadClaim {
    const OwnershipRegistry* registry = nullptr;
    ShardId begin = 0;
    ShardId end = 0;
  };

 public:
  enum class Phase : std::uint8_t { kSerial, kStep, kFlush };

  explicit OwnershipRegistry(ShardId shards)
      : owner_(shards), phase_(Phase::kSerial) {
    for (auto& owner : owner_) owner.store(0, std::memory_order_relaxed);
  }

  OwnershipRegistry(const OwnershipRegistry&) = delete;
  OwnershipRegistry& operator=(const OwnershipRegistry&) = delete;

  /// Serial phase transitions — driving thread only, matching the
  /// scheduler call-order contract. Each transition wipes the previous
  /// phase's owner records.
  void BeginStepPhase() { BeginPhase(Phase::kStep); }
  void BeginFlushPhase() { BeginPhase(Phase::kFlush); }
  void EndParallelPhase() { BeginPhase(Phase::kSerial); }

  Phase phase() const { return phase_; }

  /// RAII claim of one shard for the calling worker (StepShard body).
  /// Claims nest (a bench worker driving a whole nested simulation saves
  /// and restores the outer claim).
  class ShardClaim {
   public:
    ShardClaim(OwnershipRegistry& registry, ShardId shard)
        : saved_(tls_claim_) {
      tls_claim_ = ThreadClaim{&registry, shard, shard + 1};
      registry.RecordOwner(shard, shard + 1);
    }
    ~ShardClaim() { tls_claim_ = saved_; }
    ShardClaim(const ShardClaim&) = delete;
    ShardClaim& operator=(const ShardClaim&) = delete;

   private:
    ThreadClaim saved_;
  };

  /// RAII claim of a destination range [begin, end) for the calling
  /// worker (FlushRoundPartition body).
  class RangeClaim {
   public:
    RangeClaim(OwnershipRegistry& registry, ShardId begin, ShardId end)
        : saved_(tls_claim_) {
      tls_claim_ = ThreadClaim{&registry, begin, end};
      registry.RecordOwner(begin, end);
    }
    ~RangeClaim() { tls_claim_ = saved_; }
    RangeClaim(const RangeClaim&) = delete;
    RangeClaim& operator=(const RangeClaim&) = delete;

   private:
    ThreadClaim saved_;
  };

  /// Aborts (with the shard id) unless the current phase is serial or the
  /// calling worker's claim covers `shard`.
  void AssertShardOwned(ShardId shard) const;

  /// Aborts unless no parallel phase is active — guards state that may
  /// only be touched between rounds (injection queues, spill queues,
  /// watermark bookkeeping).
  void AssertSerialPhase() const;

 private:
  void BeginPhase(Phase phase) {
    phase_ = phase;
    for (auto& owner : owner_) owner.store(0, std::memory_order_relaxed);
  }

  /// Diagnostic record: pack the claim range so a violation message can
  /// name the owner. Written by the claiming worker, read only when a
  /// guard is about to abort.
  void RecordOwner(ShardId begin, ShardId end) {
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(begin) << 32) | (end & 0xffffffffu);
    for (ShardId shard = begin; shard < end && shard < owner_.size();
         ++shard) {
      owner_[shard].store(packed + 1, std::memory_order_relaxed);
    }
  }

  [[noreturn]] void OwnershipViolation(ShardId shard) const;

  static thread_local ThreadClaim tls_claim_;

  /// owner_[shard] = packed claim range + 1, or 0 if unclaimed this phase.
  std::vector<std::atomic<std::uint64_t>> owner_;
  Phase phase_;
};

/// Guard macro for shard-owned state: `SSHARD_OWNED(ownership_, shard);`
/// at the top of any code path that reads or writes state owned by
/// `shard`. Compiles to nothing under NDEBUG.
#define SSHARD_OWNED(registry, shard) (registry).AssertShardOwned(shard)

/// Guard macro for serial-phase-only state. Compiles to nothing under
/// NDEBUG.
#define SSHARD_SERIAL_PHASE(registry) (registry).AssertSerialPhase()

#else  // NDEBUG

/// Release stub: an empty type whose every operation is an inline no-op,
/// so the checker vanishes from optimized builds.
class OwnershipRegistry {
 public:
  enum class Phase : unsigned char { kSerial, kStep, kFlush };
  explicit OwnershipRegistry(ShardId) {}
  OwnershipRegistry(const OwnershipRegistry&) = delete;
  OwnershipRegistry& operator=(const OwnershipRegistry&) = delete;
  void BeginStepPhase() {}
  void BeginFlushPhase() {}
  void EndParallelPhase() {}
  Phase phase() const { return Phase::kSerial; }
  class ShardClaim {
   public:
    ShardClaim(OwnershipRegistry&, ShardId) {}
  };
  class RangeClaim {
   public:
    RangeClaim(OwnershipRegistry&, ShardId, ShardId) {}
  };
  void AssertShardOwned(ShardId) const {}
  void AssertSerialPhase() const {}
};

#define SSHARD_OWNED(registry, shard) ((void)0)
#define SSHARD_SERIAL_PHASE(registry) ((void)0)

#endif  // NDEBUG

}  // namespace stableshard::core
