// Arrival schedules: wall rounds → transaction arrival counts.
//
// The open-loop injector (injector.h) separates *when* transactions arrive
// from *what* they look like: an ArrivalSchedule decides per-wall-round
// arrival counts independent of commit progress, and a registered Strategy
// shapes each arrival. Two schedules ship in-tree:
//
//  - TokenBucketArrivals drives the paper's (rho, b) adversarial-rate model
//    with the seed's token buckets: arrivals in any window of t rounds are
//    bounded by rate * t + effective_burst() by bucket invariant, the rate
//    is paced in txns/round whatever the protocol is doing, and the burst
//    is released as one b-sized clump at `burst_round` — which, unlike the
//    closed-loop adversary's round-0 preload, can land mid-run where an
//    admission-control gate has live traffic statistics to react with.
//  - TraceArrivals replays the per-round record counts of a parsed trace
//    (trace.h); paired with the `trace_replay` strategy it reproduces a
//    recorded injection stream bit-identically.
//
// Determinism: schedules are pure functions of their construction
// parameters and the call sequence — ArrivalsAt is called exactly once per
// wall round in increasing order (enforced), so the same config yields the
// same arrival sequence whatever the worker count or pipeline switch.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "adversary/token_bucket.h"
#include "common/types.h"
#include "traffic/trace.h"

namespace stableshard::traffic {

class ArrivalSchedule {
 public:
  virtual ~ArrivalSchedule() = default;

  /// Transactions arriving on wall round `round`. Must be called once per
  /// round in strictly increasing order starting at 0 (stalled rounds
  /// included — arrivals do not pause for a crashed shard).
  virtual std::uint64_t ArrivalsAt(Round round) = 0;

  /// True once no round >= `round` can produce arrivals.
  virtual bool Exhausted(Round round) const = 0;
};

/// The (rho, b) open-loop schedule. `rate` is aggregate transactions per
/// round (any positive value — internally striped across ceil(rate)
/// buckets, since each adversary::TokenBucketArray lane refills at most 1
/// token per round), `burst` is the clump size bound b, `burst_round` is
/// when the clump is released (kNoRound = never, pure paced stream) and
/// `horizon` is the last round that produces arrivals (typically
/// SimConfig::rounds).
///
/// Before the burst the stream is paced: a fractional accumulator emits
/// floor-of-rate arrivals per round while the buckets stay full. From
/// `burst_round` on it turns greedy — every available token is spent, so
/// the full bucket capacity (≈ b arrivals) lands at once and the stream
/// settles back to `rate` per round as refill becomes the binding
/// constraint. Either way every arrival consumes a token, so the window
/// bound  arrivals(any t rounds) <= rate * t + effective_burst()  holds
/// exactly by the bucket invariant.
class TokenBucketArrivals final : public ArrivalSchedule {
 public:
  TokenBucketArrivals(double rate, double burst, Round burst_round,
                      Round horizon);

  std::uint64_t ArrivalsAt(Round round) override;
  bool Exhausted(Round round) const override { return round >= horizon_; }

  double rate() const { return rate_; }
  /// The exact burst constant of the window bound: lane count * lane
  /// capacity (>= the configured b; striping rounds each lane's capacity
  /// up to 1 so every lane can always hold a whole token).
  double effective_burst() const;

 private:
  double rate_;
  adversary::TokenBucketArray lanes_;
  Round burst_round_;
  Round horizon_;
  Round next_round_ = 0;        ///< increasing-call-order enforcement
  double paced_accumulator_ = 0;
  ShardId lane_cursor_ = 0;     ///< round-robin consumption start
  std::vector<ShardId> pick_;   ///< one-lane scratch for Consume
};

/// Replays the per-round arrival counts of a parsed trace. Records may
/// extend past SimConfig::rounds — the engine keeps injecting during what
/// used to be pure drain rounds until the schedule is exhausted.
class TraceArrivals final : public ArrivalSchedule {
 public:
  explicit TraceArrivals(const Trace& trace);

  std::uint64_t ArrivalsAt(Round round) override;
  bool Exhausted(Round round) const override {
    (void)round;
    return cursor_ >= rounds_.size();
  }

 private:
  std::vector<Round> rounds_;  ///< one entry per record, non-decreasing
  std::size_t cursor_ = 0;
  Round next_round_ = 0;  ///< increasing-call-order enforcement
};

}  // namespace stableshard::traffic
