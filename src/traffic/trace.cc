#include "traffic/trace.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "adversary/strategy_internal.h"
#include "common/check.h"
#include "durability/encoding.h"

namespace stableshard::traffic {

namespace {

constexpr const char* kMagic = "sshard-trace v1";

bool Fail(std::string* error, const std::string& reason) {
  if (error != nullptr) *error = reason;
  return false;
}

/// Parse a decimal u64 starting at `pos`; advances `pos` past the digits.
bool ParseNumber(const std::string& text, std::size_t* pos,
                 std::uint64_t* out) {
  const std::size_t start = *pos;
  std::uint64_t value = 0;
  while (*pos < text.size() && text[*pos] >= '0' && text[*pos] <= '9') {
    const std::uint64_t digit = static_cast<std::uint64_t>(text[*pos] - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
    ++*pos;
  }
  if (*pos == start) return false;  // no digits
  *out = value;
  return true;
}

/// Signed variant for the amount column.
bool ParseSigned(const std::string& text, std::size_t* pos,
                 std::int64_t* out) {
  bool negative = false;
  if (*pos < text.size() && text[*pos] == '-') {
    negative = true;
    ++*pos;
  }
  std::uint64_t magnitude = 0;
  if (!ParseNumber(text, pos, &magnitude)) return false;
  const auto limit =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
  if (magnitude > limit + (negative ? 1u : 0u)) return false;  // overflow
  *out = negative ? -static_cast<std::int64_t>(magnitude)
                  : static_cast<std::int64_t>(magnitude);
  return true;
}

/// Parse exactly 16 lowercase-hex digits into a u64.
bool ParseChecksum(const std::string& text, std::size_t* pos,
                   std::uint64_t* out) {
  std::uint64_t value = 0;
  for (int i = 0; i < 16; ++i) {
    if (*pos >= text.size()) return false;
    const char c = text[*pos];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
    ++*pos;
  }
  *out = value;
  return true;
}

/// Next '\n'-terminated line (or the unterminated tail); false at EOF.
bool NextLine(const std::string& text, std::size_t* pos, std::string* line) {
  if (*pos >= text.size()) return false;
  const std::size_t newline = text.find('\n', *pos);
  if (newline == std::string::npos) {
    line->assign(text, *pos, text.size() - *pos);
    *pos = text.size();
  } else {
    line->assign(text, *pos, newline - *pos);
    *pos = newline + 1;
  }
  return true;
}

bool ParseRecordLine(const std::string& line, const Trace& trace,
                     TraceRecord* record, std::string* error) {
  std::size_t pos = 0;
  std::uint64_t round = 0;
  if (!ParseNumber(line, &pos, &round)) {
    return Fail(error, "malformed record: expected <round> number");
  }
  record->round = round;
  if (pos >= line.size() || line[pos] != ' ') {
    return Fail(error, "malformed record: expected ' ' after round");
  }
  ++pos;
  std::uint64_t home = 0;
  if (!ParseNumber(line, &pos, &home)) {
    return Fail(error, "malformed record: expected <home> number");
  }
  if (home >= trace.shards) {
    return Fail(error, "home shard out of range");
  }
  record->home = static_cast<ShardId>(home);
  if (pos >= line.size() || line[pos] != ' ') {
    return Fail(error, "malformed record: expected ' ' after home");
  }
  ++pos;
  if (!ParseSigned(line, &pos, &record->amount)) {
    return Fail(error, "malformed record: expected <amount> number");
  }
  record->accesses.clear();
  while (pos < line.size()) {
    if (line[pos] != ' ') {
      return Fail(error, "malformed record: expected ' ' before account");
    }
    ++pos;
    std::uint64_t account = 0;
    if (!ParseNumber(line, &pos, &account)) {
      return Fail(error, "malformed record: expected <account> number");
    }
    if (account >= trace.accounts) {
      return Fail(error, "account out of range");
    }
    TraceAccess access;
    access.account = account;
    if (pos < line.size() && line[pos] == '!') {
      access.poisoned = true;
      ++pos;
    }
    record->accesses.push_back(access);
  }
  if (record->accesses.empty()) {
    return Fail(error, "record lists no accounts");
  }
  return true;
}

/// Expect `prefix` at `pos` and advance past it.
bool Expect(const std::string& text, std::size_t* pos, const char* prefix) {
  const std::size_t len = std::char_traits<char>::length(prefix);
  if (text.compare(*pos, len, prefix) != 0) return false;
  *pos += len;
  return true;
}

}  // namespace

bool ParseTrace(const std::string& text, Trace* trace, std::string* error) {
  trace->records.clear();
  std::size_t pos = 0;
  std::string line;
  if (!NextLine(text, &pos, &line)) {
    return Fail(error, "missing header");
  }
  if (line != kMagic) {
    return Fail(error, "unsupported trace version \"" + line +
                           "\" (expected \"" + kMagic + "\")");
  }
  if (!NextLine(text, &pos, &line)) {
    return Fail(error, "missing meta line");
  }
  std::size_t meta_pos = 0;
  std::uint64_t shards = 0;
  std::uint64_t accounts = 0;
  std::uint64_t records = 0;
  std::uint64_t checksum = 0;
  if (!Expect(line, &meta_pos, "meta shards=") ||
      !ParseNumber(line, &meta_pos, &shards) ||
      !Expect(line, &meta_pos, " accounts=") ||
      !ParseNumber(line, &meta_pos, &accounts) ||
      !Expect(line, &meta_pos, " records=") ||
      !ParseNumber(line, &meta_pos, &records) ||
      !Expect(line, &meta_pos, " checksum=") ||
      !ParseChecksum(line, &meta_pos, &checksum) ||
      meta_pos != line.size()) {
    return Fail(error, "malformed meta line");
  }
  if (shards == 0 || shards > std::numeric_limits<ShardId>::max()) {
    return Fail(error, "meta shards out of range");
  }
  if (accounts == 0) return Fail(error, "meta accounts out of range");
  trace->shards = static_cast<ShardId>(shards);
  trace->accounts = accounts;

  // The record region: every remaining line, exactly `records` of them.
  // Count before interpreting so truncation gets its own diagnosis, then
  // checksum the exact bytes so corruption is caught before any record is
  // trusted, then parse.
  const std::size_t region_start = pos;
  std::vector<std::string> lines;
  while (NextLine(text, &pos, &line)) lines.push_back(line);
  if (lines.size() < records) {
    return Fail(error, "truncated trace: expected " +
                           std::to_string(records) + " records, found " +
                           std::to_string(lines.size()));
  }
  if (lines.size() > records) {
    return Fail(error, "trailing data after " + std::to_string(records) +
                           " records");
  }
  const std::uint64_t actual = durability::Fnv1a(
      reinterpret_cast<const std::uint8_t*>(text.data()) + region_start,
      text.size() - region_start);
  if (actual != checksum) {
    return Fail(error, "checksum mismatch");
  }

  trace->records.reserve(lines.size());
  for (const std::string& record_line : lines) {
    TraceRecord record;
    if (!ParseRecordLine(record_line, *trace, &record, error)) return false;
    if (!trace->records.empty() &&
        record.round < trace->records.back().round) {
      return Fail(error, "record rounds must be non-decreasing");
    }
    trace->records.push_back(std::move(record));
  }
  return true;
}

std::string SerializeTrace(const Trace& trace) {
  std::ostringstream body;
  // Trace::records is a std::vector; the name merely collides with bds.h's
  // unordered_map parameter in the lint's cross-file symbol table.
  // lint:allow(unordered-iteration): vector, not an unordered container
  for (const TraceRecord& record : trace.records) {
    body << record.round << ' ' << record.home << ' ' << record.amount;
    for (const TraceAccess& access : record.accesses) {
      body << ' ' << access.account;
      if (access.poisoned) body << '!';
    }
    body << '\n';
  }
  const std::string records = body.str();
  const std::uint64_t checksum = durability::Fnv1a(
      reinterpret_cast<const std::uint8_t*>(records.data()), records.size());
  char header[160];
  std::snprintf(header, sizeof(header),
                "%s\nmeta shards=%llu accounts=%llu records=%llu "
                "checksum=%016llx\n",
                kMagic, static_cast<unsigned long long>(trace.shards),
                static_cast<unsigned long long>(trace.accounts),
                static_cast<unsigned long long>(trace.records.size()),
                static_cast<unsigned long long>(checksum));
  return std::string(header) + records;
}

bool LoadTraceFile(const std::string& path, Trace* trace,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(error, "cannot open file");
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) return Fail(error, "read error");
  return ParseTrace(contents.str(), trace, error);
}

bool WriteTraceFile(const std::string& path, const Trace& trace,
                    std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Fail(error, "cannot open file for writing");
  const std::string text = SerializeTrace(trace);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  if (!out) return Fail(error, "write error");
  return true;
}

bool ValidateTraceFile(const std::string& path, ShardId shards,
                       AccountId accounts) {
  Trace trace;
  std::string error;
  if (!LoadTraceFile(path, &trace, &error)) {
    std::fprintf(stderr, "invalid trace: %s (file \"%s\")\n", error.c_str(),
                 path.c_str());
    return false;
  }
  if (trace.shards != shards || trace.accounts != accounts) {
    std::fprintf(stderr,
                 "invalid trace: recorded for shards=%u accounts=%llu, run "
                 "has shards=%u accounts=%llu (file \"%s\")\n",
                 trace.shards,
                 static_cast<unsigned long long>(trace.accounts), shards,
                 static_cast<unsigned long long>(accounts), path.c_str());
    return false;
  }
  return true;
}

TraceWriter::TraceWriter(ShardId shards, AccountId accounts) {
  SSHARD_CHECK(shards >= 1 && accounts >= 1);
  trace_.shards = shards;
  trace_.accounts = accounts;
}

void TraceWriter::Record(Round round, ShardId home,
                         const std::vector<txn::AccessSpec>& accesses) {
  SSHARD_CHECK(!accesses.empty() && "unrecordable: no accesses");
  SSHARD_CHECK(home < trace_.shards && "unrecordable: home out of range");
  SSHARD_CHECK(trace_.records.empty() ||
               round >= trace_.records.back().round);
  TraceRecord record;
  record.round = round;
  record.home = home;
  record.amount = accesses.front().action.amount;
  for (const txn::AccessSpec& spec : accesses) {
    // Only the touch shape round-trips through the v1 format: write +
    // uniform deposit, optionally the standard unsatisfiable poison.
    SSHARD_CHECK(spec.write && spec.action.kind == chain::ActionKind::kDeposit &&
                 spec.action.account == spec.account &&
                 spec.action.amount == record.amount &&
                 "unrecordable access shape (trace v1 records touch-shaped "
                 "transactions only)");
    SSHARD_CHECK(spec.account < trace_.accounts &&
                 "unrecordable: account out of range");
    TraceAccess access;
    access.account = spec.account;
    if (spec.has_condition) {
      SSHARD_CHECK(spec.condition.account == spec.account &&
                   spec.condition.op == chain::CmpOp::kGe &&
                   spec.condition.value ==
                       adversary::internal::kImpossibleThreshold &&
                   "unrecordable condition shape");
      access.poisoned = true;
    }
    record.accesses.push_back(access);
  }
  trace_.records.push_back(std::move(record));
}

}  // namespace stableshard::traffic
