#include "traffic/arrival.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace stableshard::traffic {

namespace {

/// Lane count for an aggregate rate: each TokenBucketArray lane refills at
/// most 1 token per round (rho in (0, 1]), so rates above 1 txn/round
/// stripe across ceil(rate) lanes.
ShardId LanesFor(double rate) {
  const double lanes = std::ceil(rate);
  return lanes < 1.0 ? 1u : static_cast<ShardId>(lanes);
}

}  // namespace

TokenBucketArrivals::TokenBucketArrivals(double rate, double burst,
                                         Round burst_round, Round horizon)
    : rate_(rate),
      lanes_(LanesFor(rate), rate / static_cast<double>(LanesFor(rate)),
             std::max(burst / static_cast<double>(LanesFor(rate)), 1.0)),
      burst_round_(burst_round),
      horizon_(horizon),
      pick_(1, 0) {
  SSHARD_CHECK(rate > 0.0 && "arrival rate must be positive");
  SSHARD_CHECK(burst >= 1.0 && "arrival burst must be >= 1");
}

double TokenBucketArrivals::effective_burst() const {
  return static_cast<double>(lanes_.shard_count()) * lanes_.burstiness();
}

std::uint64_t TokenBucketArrivals::ArrivalsAt(Round round) {
  SSHARD_CHECK(round == next_round_ &&
               "ArrivalsAt must be called once per round in order");
  ++next_round_;
  if (round >= horizon_) return 0;
  if (round > 0) lanes_.Tick();

  const ShardId lanes = lanes_.shard_count();
  std::uint64_t emitted = 0;
  if (burst_round_ != kNoRound && round >= burst_round_) {
    // Greedy from the burst round on: spend every available token. The
    // first greedy round releases the full (near-capacity) bucket contents
    // in one clump; afterwards refill is the binding constraint and the
    // stream settles back to `rate` arrivals per round.
    ShardId dry = 0;
    while (dry < lanes) {
      pick_[0] = lane_cursor_;
      lane_cursor_ = (lane_cursor_ + 1) % lanes;
      if (lanes_.CanConsume(pick_)) {
        lanes_.Consume(pick_);
        ++emitted;
        dry = 0;
      } else {
        ++dry;
      }
    }
  } else {
    // Paced: emit `rate` arrivals per round on average via a fractional
    // accumulator, round-robin across the lanes so they drain evenly (at
    // steady state consumption equals refill and the buckets stay full,
    // preserving the whole burst for burst_round_).
    paced_accumulator_ += rate_;
    while (paced_accumulator_ >= 1.0) {
      ShardId tried = 0;
      bool consumed = false;
      while (tried < lanes) {
        pick_[0] = lane_cursor_;
        lane_cursor_ = (lane_cursor_ + 1) % lanes;
        if (lanes_.CanConsume(pick_)) {
          lanes_.Consume(pick_);
          consumed = true;
          break;
        }
        ++tried;
      }
      if (!consumed) break;  // buckets dry — the (rho, b) bound binds
      paced_accumulator_ -= 1.0;
      ++emitted;
    }
    // Never bank more than one round of arrival debt: the buckets are the
    // real constraint, the accumulator only carries sub-transaction
    // fractions across rounds.
    if (paced_accumulator_ > rate_ + 1.0) paced_accumulator_ = rate_ + 1.0;
  }
  return emitted;
}

TraceArrivals::TraceArrivals(const Trace& trace) {
  rounds_.reserve(trace.records.size());
  // Trace::records is a std::vector; the name merely collides with bds.h's
  // unordered_map parameter in the lint's cross-file symbol table.
  // lint:allow(unordered-iteration): vector, not an unordered container
  for (const TraceRecord& record : trace.records) {
    SSHARD_CHECK(rounds_.empty() || record.round >= rounds_.back());
    rounds_.push_back(record.round);
  }
}

std::uint64_t TraceArrivals::ArrivalsAt(Round round) {
  SSHARD_CHECK(round == next_round_ &&
               "ArrivalsAt must be called once per round in order");
  ++next_round_;
  std::uint64_t count = 0;
  while (cursor_ < rounds_.size() && rounds_[cursor_] == round) {
    ++count;
    ++cursor_;
  }
  return count;
}

}  // namespace stableshard::traffic
