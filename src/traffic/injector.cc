#include "traffic/injector.h"

#include <algorithm>

#include "common/check.h"

namespace stableshard::traffic {

void ClosedLoopInjector::GenerateRound(Round round,
                                       std::vector<txn::Transaction>& out) {
  adversary_->GenerateRound(round, out);
  ++generated_;
}

OpenLoopInjector::OpenLoopInjector(std::unique_ptr<ArrivalSchedule> schedule,
                                   std::unique_ptr<adversary::Strategy> strategy,
                                   const chain::AccountMap& map,
                                   std::uint64_t seed)
    : schedule_(std::move(schedule)),
      strategy_(std::move(strategy)),
      factory_(map),
      rng_(seed) {
  SSHARD_CHECK(schedule_ != nullptr);
  SSHARD_CHECK(strategy_ != nullptr);
}

std::uint64_t OpenLoopInjector::PullArrivals() {
  const std::uint64_t arrivals = schedule_->ArrivalsAt(wall_cursor_);
  ++wall_cursor_;
  offered_ += arrivals;
  offered_series_.push_back(arrivals);
  return arrivals;
}

void OpenLoopInjector::OnStalledRound() {
  // The world is stalled but arrivals are not: they pile up as backlog and
  // flood the scheduler when the protocol resumes — exactly the recovery
  // pressure a closed-loop workload can never produce.
  backlog_ += PullArrivals();
  lag_peak_ = std::max(lag_peak_, backlog_);
}

void OpenLoopInjector::GenerateRound(Round round,
                                     std::vector<txn::Transaction>& out) {
  out.clear();
  std::uint64_t due = backlog_ + PullArrivals();
  backlog_ = 0;
  for (std::uint64_t i = 0; i < due; ++i) {
    adversary::Candidate candidate;
    if (!strategy_->Next(round, rng_, &candidate)) {
      // Structurally out of shapes (a fully consumed trace): the remaining
      // arrivals stay offered-but-never-injected.
      break;
    }
    if (recorder_) recorder_(round, candidate.home, candidate.accesses);
    out.push_back(factory_.Make(candidate.home, round, candidate.accesses));
    ++injected_;
  }
}

}  // namespace stableshard::traffic
