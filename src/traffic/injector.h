// The engine's injection seam: closed-loop (the classic adversary batch
// per protocol round) vs open-loop (arrival-time-driven, decoupled from
// commit progress).
//
// The engine drives exactly one Injector:
//  - GenerateRound(round, out) once per live protocol round, in increasing
//    round order, from the serial generation phase (possibly overlapped
//    with the previous round's pipelined flush — injectors touch no
//    scheduler state, so the overlap is race-free);
//  - OnStalledRound() once per wall round the protocol clock is frozen by
//    a crash outage/replay. The closed-loop adversary generates nothing
//    while the world is stalled (its clock *is* the protocol clock); the
//    open-loop schedule keeps producing arrivals, which accrue as backlog
//    and flood in when the protocol resumes — inject_lag_peak records how
//    deep that backlog got.
//  - Exhausted() gates the drain phase: the engine keeps generating during
//    former drain rounds until the schedule has nothing left (trace
//    records may extend past SimConfig::rounds).
//
// Closed-loop is the default and is byte-identical to the pre-traffic
// engine: same adversary, same call sequence, same transactions.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/strategy.h"
#include "chain/account_map.h"
#include "common/rng.h"
#include "common/types.h"
#include "traffic/arrival.h"
#include "txn/transaction.h"
#include "txn/txn_factory.h"

namespace stableshard::traffic {

/// Serial-phase hook recording each admitted transaction's spec (round,
/// home, account accesses) — the TraceWriter's feed. Specs, not built
/// Transactions: the factory groups accesses per shard, so only the spec
/// preserves the exact order replay needs.
using InjectionRecorder = std::function<void(
    Round, ShardId, const std::vector<txn::AccessSpec>&)>;

class Injector {
 public:
  virtual ~Injector() = default;

  /// Generate `round`'s injections into `out` (cleared first). Called once
  /// per live protocol round in increasing order.
  virtual void GenerateRound(Round round,
                             std::vector<txn::Transaction>& out) = 0;

  /// One wall round elapsed with the protocol clock frozen (crash outage /
  /// replay / catch-up).
  virtual void OnStalledRound() {}

  /// True once no future round can produce arrivals (the drain phase may
  /// stop generating).
  virtual bool Exhausted() const = 0;

  /// Arrivals the schedule produced (== injected for closed-loop).
  virtual std::uint64_t offered() const = 0;
  /// Transactions actually handed to the engine.
  virtual std::uint64_t injected() const = 0;
  /// Peak arrivals waiting out a protocol stall (0 when fault-free or
  /// closed-loop).
  virtual std::uint64_t lag_peak() const = 0;

  /// Per-wall-round offered counts, when the injector tracks them
  /// (open-loop only — the window-bound tests assert the rho*t + b
  /// invariant against this series).
  virtual const std::vector<std::uint64_t>* offered_series() const {
    return nullptr;
  }
};

/// The pre-traffic default: forwards to the engine-owned adversary, one
/// batch per protocol round, nothing during stalls, exhausted once the
/// injection phase's `horizon` rounds have been generated.
class ClosedLoopInjector final : public Injector {
 public:
  ClosedLoopInjector(adversary::Adversary& adversary, Round horizon)
      : adversary_(&adversary), horizon_(horizon) {}

  void GenerateRound(Round round, std::vector<txn::Transaction>& out) override;
  bool Exhausted() const override { return generated_ >= horizon_; }
  std::uint64_t offered() const override {
    return adversary_->stats().injected;
  }
  std::uint64_t injected() const override {
    return adversary_->stats().injected;
  }
  std::uint64_t lag_peak() const override { return 0; }

 private:
  adversary::Adversary* adversary_;
  Round horizon_;
  Round generated_ = 0;
};

/// Arrival-time-driven injection: an ArrivalSchedule decides how many
/// transactions land on each wall round, the Strategy decides only their
/// shape. Deterministic tie-break/order: arrivals of one round are drawn
/// and injected in strictly increasing transaction-id order (the factory's
/// monotonic counter), so the stream is reproducible bit-for-bit.
class OpenLoopInjector final : public Injector {
 public:
  OpenLoopInjector(std::unique_ptr<ArrivalSchedule> schedule,
                   std::unique_ptr<adversary::Strategy> strategy,
                   const chain::AccountMap& map, std::uint64_t seed);

  void set_recorder(InjectionRecorder recorder) {
    recorder_ = std::move(recorder);
  }

  void GenerateRound(Round round, std::vector<txn::Transaction>& out) override;
  void OnStalledRound() override;
  bool Exhausted() const override {
    return backlog_ == 0 && schedule_->Exhausted(wall_cursor_);
  }
  std::uint64_t offered() const override { return offered_; }
  std::uint64_t injected() const override { return injected_; }
  std::uint64_t lag_peak() const override { return lag_peak_; }
  const std::vector<std::uint64_t>* offered_series() const override {
    return &offered_series_;
  }

  const adversary::Strategy& strategy() const { return *strategy_; }

 private:
  /// Pull this wall round's arrival count and fold it into the counters.
  std::uint64_t PullArrivals();

  std::unique_ptr<ArrivalSchedule> schedule_;
  std::unique_ptr<adversary::Strategy> strategy_;
  txn::TxnFactory factory_;
  Rng rng_;
  InjectionRecorder recorder_;
  Round wall_cursor_ = 0;     ///< wall rounds consumed from the schedule
  std::uint64_t backlog_ = 0; ///< arrivals waiting out a protocol stall
  std::uint64_t offered_ = 0;
  std::uint64_t injected_ = 0;
  std::uint64_t lag_peak_ = 0;
  std::vector<std::uint64_t> offered_series_;
};

}  // namespace stableshard::traffic
