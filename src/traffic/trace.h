// Versioned text trace format: the injection stream of a run as data.
//
// A trace is the arrival-time + shape record of every injected transaction,
// so a live run can be replayed bit-identically (the `trace_replay`
// strategy + the trace arrival schedule re-derive the exact same
// transactions in the exact same order) and production-shaped workloads
// (diurnal curves, flash crowds, migrating skew — tools/gen_trace.py) can
// be generated offline and driven through the open-loop injector.
//
// Text form (version 1):
//
//   sshard-trace v1
//   meta shards=<s> accounts=<n> records=<k> checksum=<16-hex fnv1a>
//   <round> <home> <amount> <account>[!] [<account>[!] ...]
//   ...
//
// One record per line, exactly `records` of them, rounds non-decreasing
// (records are consumed in file order; the round is the wall round the
// transaction *arrives*, which may lie past SimConfig::rounds — open-loop
// arrivals continue into what used to be pure drain rounds). Every listed
// account is written with a balance-neutral deposit of `amount`; a `!`
// suffix poisons the access with an unsatisfiable condition, so the
// transaction aborts at commit time (the abort-path shape the in-tree
// strategies emit under --abort-prob). The checksum is the 64-bit FNV-1a
// of the record region's exact bytes (every record line including its
// '\n'), so truncation, reordering and bit rot are all detected before a
// single transaction is built.
//
// Like the fault-plan grammar, parsing is strict and the CLI contract is
// exit 2 with one "invalid trace: ..." line (ValidateTraceFile); the
// engine re-checks with SSHARD_CHECK for non-CLI embedders.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/ops.h"
#include "common/types.h"
#include "txn/txn_factory.h"

namespace stableshard::traffic {

/// One account touch inside a trace record.
struct TraceAccess {
  AccountId account = 0;
  bool poisoned = false;  ///< carries an unsatisfiable condition (aborts)
};

/// One injected transaction: arrival wall round, home shard, the
/// balance-neutral deposit amount shared by its accesses, and the touched
/// accounts in access order (order is part of the replay contract — the
/// factory groups accesses per shard in first-seen order).
struct TraceRecord {
  Round round = 0;
  ShardId home = 0;
  chain::Balance amount = 0;
  std::vector<TraceAccess> accesses;
};

struct Trace {
  ShardId shards = 0;     ///< must equal SimConfig::shards at replay time
  AccountId accounts = 0; ///< must equal SimConfig::accounts at replay time
  std::vector<TraceRecord> records;  ///< non-decreasing `round`
};

/// Parse the full text form. On failure returns false and, when `error` is
/// non-null, stores a one-line reason (the "invalid trace: ..." payload).
bool ParseTrace(const std::string& text, Trace* trace, std::string* error);

/// Canonical text form (the exact bytes ParseTrace accepts; serialize →
/// parse is the identity).
std::string SerializeTrace(const Trace& trace);

/// File wrappers. Load fails on unreadable files with the same one-line
/// error contract as ParseTrace; Write fails only on I/O errors.
bool LoadTraceFile(const std::string& path, Trace* trace, std::string* error);
bool WriteTraceFile(const std::string& path, const Trace& trace,
                    std::string* error);

/// CLI-shared validation: true when `path` loads, parses, and matches the
/// run's shard/account counts; otherwise prints one "invalid trace: ..."
/// line to stderr and returns false so the caller can exit 2 (the
/// cli_invalid_trace_exits_2 ctest greps it). The engine constructor
/// re-checks as an aborting invariant.
bool ValidateTraceFile(const std::string& path, ShardId shards,
                       AccountId accounts);

/// Records a live injection stream (closed- or open-loop) into a Trace.
/// Driven exclusively from the engine's serial generation phase — one
/// Record call per admitted transaction, in injection order — so recording
/// is race-free even under the pipelined epilogue. Only touch-shaped
/// accesses are recordable (write + uniform deposit, optionally the
/// standard unsatisfiable-threshold poison); anything else aborts, because
/// a trace that cannot round-trip would silently break replay.
class TraceWriter {
 public:
  TraceWriter(ShardId shards, AccountId accounts);

  void Record(Round round, ShardId home,
              const std::vector<txn::AccessSpec>& accesses);

  const Trace& trace() const { return trace_; }

 private:
  Trace trace_;
};

}  // namespace stableshard::traffic
