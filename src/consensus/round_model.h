// The round abstraction contract between src/consensus and src/core.
//
// Section 3 of the paper defines a *round* as the time needed to (a) reach
// PBFT consensus within a shard and (b) deliver + agree on one cluster-send
// between shards at unit distance. src/core schedulers operate purely in
// rounds; this header documents and encodes the node-level budget that one
// round is assumed to cover, so integration tests can assert that the
// consensus substrate fits within it.
#pragma once

#include <cstdint>

#include "consensus/cluster_sending.h"
#include "consensus/pbft.h"

namespace stableshard::consensus {

/// Node-message budget of one logical round for a shard of n nodes with f
/// tolerated faults: one PBFT instance (3 all-to-all phases led by an
/// honest primary) plus one worst-case cluster-send.
constexpr std::uint64_t RoundMessageBudget(std::uint32_t nodes,
                                           std::uint32_t faulty_here,
                                           std::uint32_t faulty_peer) {
  const std::uint64_t pbft =
      static_cast<std::uint64_t>(nodes) * nodes * 3;  // 3 broadcast phases
  return pbft + ClusterSendCost(faulty_here, faulty_peer);
}

/// A round suffices iff the shard satisfies the BFT bound; with an honest
/// primary PBFT needs exactly one view (validated in consensus tests).
constexpr bool RoundAbstractionHolds(std::uint32_t nodes,
                                     std::uint32_t faulty) {
  return SatisfiesBftBound(nodes, faulty);
}

}  // namespace stableshard::consensus
