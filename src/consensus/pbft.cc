#include "consensus/pbft.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace stableshard::consensus {

std::uint32_t PbftConfig::FaultyCount() const {
  std::uint32_t count = 0;
  for (const NodeBehavior b : behaviors) {
    if (b != NodeBehavior::kHonest) ++count;
  }
  return count;
}

namespace {

/// Value each node claims to have received in pre-prepare. nullopt = nothing.
using Claims = std::vector<std::optional<std::uint64_t>>;

}  // namespace

PbftResult RunPbft(const PbftConfig& config, std::uint64_t value,
                   std::uint32_t initial_primary, Rng& rng) {
  SSHARD_CHECK(config.nodes >= 1);
  std::vector<NodeBehavior> behaviors = config.behaviors;
  if (behaviors.empty()) {
    behaviors.assign(config.nodes, NodeBehavior::kHonest);
  }
  SSHARD_CHECK(behaviors.size() == config.nodes);

  PbftResult result;
  const std::uint32_t n = config.nodes;
  const std::uint32_t quorum = config.Quorum();

  std::vector<std::optional<std::uint64_t>> decided(n);

  for (std::uint32_t view = 0; view < n; ++view) {
    const std::uint32_t primary = (initial_primary + view) % n;
    result.views_used = view + 1;

    // --- Pre-prepare: primary sends its proposal to every node. ---
    Claims received(n);
    ++result.phases;
    switch (behaviors[primary]) {
      case NodeBehavior::kHonest:
        for (std::uint32_t i = 0; i < n; ++i) received[i] = value;
        result.messages += n;
        break;
      case NodeBehavior::kSilent:
        break;  // nobody hears anything; view change below
      case NodeBehavior::kEquivocating:
        // Two conflicting proposals split across the nodes.
        for (std::uint32_t i = 0; i < n; ++i) {
          received[i] = (rng.NextBool(0.5)) ? value : ~value;
        }
        result.messages += n;
        break;
    }

    // --- Prepare: every node broadcasts the value it received. ---
    ++result.phases;
    // prepares[v] = how many nodes vouched for value v at each node. With a
    // full broadcast all honest nodes observe the same multiset, so one
    // global tally suffices; Byzantine nodes may vouch arbitrarily.
    std::map<std::uint64_t, std::uint32_t> prepare_tally;
    for (std::uint32_t i = 0; i < n; ++i) {
      switch (behaviors[i]) {
        case NodeBehavior::kHonest:
          if (received[i].has_value()) {
            ++prepare_tally[*received[i]];
            result.messages += n;
          }
          break;
        case NodeBehavior::kSilent:
          break;
        case NodeBehavior::kEquivocating:
          // Vouches for the wrong value to confuse the tally.
          ++prepare_tally[~value];
          result.messages += n;
          break;
      }
    }

    std::optional<std::uint64_t> prepared_value;
    for (const auto& [v, count] : prepare_tally) {
      if (count >= quorum) {
        prepared_value = v;
        break;
      }
    }

    if (!prepared_value.has_value()) {
      // No quorum in this view -> view change (costs one phase of
      // view-change messages).
      ++result.phases;
      result.messages += static_cast<std::uint64_t>(n) * n;
      continue;
    }

    // --- Commit: nodes that saw a prepared quorum broadcast commit. ---
    ++result.phases;
    std::uint32_t commits = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (behaviors[i] == NodeBehavior::kHonest) {
        ++commits;
        result.messages += n;
      } else if (behaviors[i] == NodeBehavior::kEquivocating) {
        ++commits;  // may also commit (it cannot forge the quorum proof)
        result.messages += n;
      }
    }
    if (commits >= quorum) {
      for (std::uint32_t i = 0; i < n; ++i) {
        if (behaviors[i] == NodeBehavior::kHonest) {
          decided[i] = *prepared_value;
        }
      }
      result.decided = true;
      result.value = *prepared_value;
      break;
    }
  }

  // Agreement check among honest nodes.
  result.all_honest_agree = true;
  std::optional<std::uint64_t> honest_value;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (behaviors[i] != NodeBehavior::kHonest) continue;
    if (!decided[i].has_value()) {
      if (result.decided) result.all_honest_agree = false;
      continue;
    }
    if (honest_value.has_value() && *honest_value != *decided[i]) {
      result.all_honest_agree = false;
    }
    honest_value = decided[i];
  }
  return result;
}

}  // namespace stableshard::consensus
