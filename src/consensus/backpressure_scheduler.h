// Backpressure scheduler: traffic-aware load shedding on hot destinations.
//
// The paper's stability argument assumes cluster leaders keep pace with
// adversarial injection; the s = 1024 sweeps and the `hot_destination`
// Zipf workload show what happens when they do not — one destination
// saturates its leader queue (sch_ldr grows without bound for the hot
// cluster) while the rest of the system idles. This scheduler wraps the
// FDS commit protocol with *injection-side admission control* driven by
// the per-shard traffic stats the network already keeps:
//
//   * Every BeginRound it reads, for each destination shard d, a
//     congestion signal: the messages that arrived for d during the
//     previous round (net::ShardTraffic::InflowSinceSnapshot over the
//     wrapped FDS network — a cheap O(s) readout, no per-send cost)
//     joined by max with d's standing backlog (Scheduler::QueueDepth:
//     undelivered messages plus the sch_ldr of the clusters d leads).
//     Inflow catches arrival spikes; the backlog catches slow
//     saturation that per-round inflow alone hides between FDS's bursty
//     epoch-boundary colorings.
//   * A destination whose signal reaches `high_watermark` is marked
//     hot. While a shard is hot, Inject parks transactions homed on it in
//     that shard's spill queue instead of admitting them into the FDS
//     protocol (the ledger has already registered them, so they stay
//     visible as pending — the accounting identity is untouched).
//   * Once the hot shard's signal falls back to `low_watermark`, the mark
//     clears and the spill queue re-enters in injection order — *paced*,
//     at most the headroom under the high watermark per round (floored at
//     one), so re-admission cannot recreate the very spike it absorbed.
//     The high/low gap is classic hysteresis: it stops the admission gate
//     from flapping when the signal hovers at the threshold.
//
// Drain guarantee: Idle() reports busy while any spill queue is
// non-empty, and once injection stops, inflow decays to zero, every hot
// mark clears, and the spill re-enters — so a run that would drain under
// plain FDS still drains under backpressure (asserted by
// tests/backpressure_test.cc and the matrix harness, which picks the
// registered "backpressure" name up automatically).
//
// Determinism: all decisions (watermark crossings, re-admission) happen
// in serial phases and branch only on counters that the pipelined
// epilogue folds back bit-identically, so workers 1 vs N and pipeline
// on/off produce bit-identical results — the same contract every other
// scheduler honours (see core/scheduler.h).
//
// This is the consensus-layer view of the classic bounded-queue admission
// controller: shedding happens before the transaction enters the commit
// protocol, which is the only point where load can be rejected without
// violating the protocol's agreement guarantees mid-flight.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "core/config.h"
#include "core/fds.h"
#include "core/scheduler.h"

namespace stableshard::consensus {

/// Admission-control knobs (SimConfig::backpressure_high / _low; the
/// registry builder always copies the validated config in, and direct
/// construction shares the same core::kDefaultBackpressure* constants).
struct BackpressureConfig {
  /// Congestion signal (max of round inflow and standing backlog, see
  /// the class comment) at which a destination is marked hot.
  std::uint64_t high_watermark = core::kDefaultBackpressureHigh;
  /// Signal at which a hot destination clears; must be <= high.
  std::uint64_t low_watermark = core::kDefaultBackpressureLow;
};

class BackpressureScheduler final : public core::Scheduler {
 public:
  /// Wraps a fresh FdsScheduler over the same metric/hierarchy/ledger.
  /// Dies (SSHARD_CHECK) when low_watermark > high_watermark.
  BackpressureScheduler(const net::ShardMetric& metric,
                        const cluster::Hierarchy& hierarchy,
                        core::CommitLedger& ledger,
                        const core::FdsConfig& fds_config,
                        const BackpressureConfig& config);

  /// Parks the transaction when its home shard is hot; admits otherwise.
  void Inject(const txn::Transaction& txn) override;

  /// Serial prologue: read last round's per-destination inflow, update the
  /// hot marks (hysteresis), re-admit spill queues whose shard cleared,
  /// re-baseline the inflow snapshot, then delegate to FDS.
  void BeginRound(Round round) override;

  // The round body and both epilogues delegate unchanged — admission
  // control never touches in-round state, which is what keeps the
  // shard-parallel and pipelined paths bit-identical for free.
  void StepShard(ShardId shard, Round round) override;
  void EndRound(Round round) override;
  void SealRound(Round round, std::uint32_t parts) override;
  void FlushRoundPartition(Round round, std::uint32_t part,
                           std::uint32_t parts) override;
  void FinishRound(Round round) override;

  ShardId shard_count() const override { return inner_->shard_count(); }
  /// Busy while the wrapped FDS is busy *or* any spill queue holds parked
  /// transactions (they are pending in the ledger and must re-enter).
  bool Idle() const override;
  double LeaderQueueMean() const override {
    return inner_->LeaderQueueMean();
  }
  double LeaderQueueMax() const override {
    return inner_->LeaderQueueMax();
  }
  std::uint64_t MessagesSent() const override {
    return inner_->MessagesSent();
  }
  std::uint64_t PayloadUnits() const override {
    return inner_->PayloadUnits();
  }
  net::RingMemory NetworkMemory() const override {
    return inner_->NetworkMemory();
  }
  net::LaneMemory OutboxMemory() const override {
    return inner_->OutboxMemory();
  }
  common::ArenaMemoryStats ArenaMemory() const override {
    return inner_->ArenaMemory();
  }
  net::ShardTraffic ShardTrafficFor(ShardId shard) const override {
    return inner_->ShardTrafficFor(shard);
  }
  std::uint64_t QueueDepth(ShardId shard) const override {
    return inner_->QueueDepth(shard);
  }
  std::uint64_t SpilledTxns() const override { return spilled_now_; }
  void OnShardLiveness(ShardId shard,
                       durability::ShardLiveness state) override {
    inner_->OnShardLiveness(shard, state);
  }
  const char* name() const override { return "backpressure"; }

  /// Introspection (tests and the head-to-head bench).
  bool IsHot(ShardId shard) const { return hot_[shard] != 0; }
  std::uint64_t hot_shard_count() const;
  std::uint64_t deferred_total() const { return deferred_total_; }
  std::uint64_t readmitted_total() const { return readmitted_total_; }
  std::uint64_t hot_transitions() const { return hot_transitions_; }
  const core::FdsScheduler& inner() const { return *inner_; }

 private:
  std::unique_ptr<core::FdsScheduler> inner_;
  BackpressureConfig config_;
  /// hot_[d] != 0: destination d crossed the high watermark and has not
  /// yet fallen back to the low one (std::uint8_t — vector<bool> has no
  /// per-element addresses and its proxies pessimize the serial scan).
  std::vector<std::uint8_t> hot_;
  /// spill_[home]: transactions deferred at Inject, in injection order.
  /// Entries before spill_head_[home] were already re-admitted — a head
  /// cursor instead of erase-from-front keeps paced drain O(admitted)
  /// per round; the vector's capacity is released (swap-to-empty) once
  /// everything re-entered, so a hot burst never pins peak memory.
  std::vector<std::vector<txn::Transaction>> spill_;
  std::vector<std::size_t> spill_head_;
  std::uint64_t spilled_now_ = 0;      ///< total parked right now
  std::uint64_t deferred_total_ = 0;   ///< Inject calls that parked
  std::uint64_t readmitted_total_ = 0; ///< parked txns re-admitted
  std::uint64_t hot_transitions_ = 0;  ///< cold->hot watermark crossings
};

}  // namespace stableshard::consensus
