#include "consensus/cluster_sending.h"

#include <algorithm>

#include "common/check.h"

namespace stableshard::consensus {

bool ShardFaultProfile::IsFaulty(std::uint32_t node) const {
  if (faulty_ids.empty()) return node < faulty;
  return std::find(faulty_ids.begin(), faulty_ids.end(), node) !=
         faulty_ids.end();
}

std::vector<std::uint32_t> ShardFaultProfile::FaultySet() const {
  if (!faulty_ids.empty()) return faulty_ids;
  std::vector<std::uint32_t> set(faulty);
  for (std::uint32_t i = 0; i < faulty; ++i) set[i] = i;
  return set;
}

ClusterSendResult SimulateClusterSend(const ShardFaultProfile& sender,
                                      const ShardFaultProfile& receiver,
                                      Rng& rng) {
  SSHARD_CHECK(sender.nodes > 3 * sender.faulty);
  SSHARD_CHECK(receiver.nodes > 3 * receiver.faulty);

  // Choose A1 and A2: the adversarially *worst* choice would include every
  // faulty node, so we deterministically pick the faulty sets first and pad
  // with honest nodes — the protocol must succeed even then.
  const std::uint32_t a1_size = sender.faulty + 1;
  const std::uint32_t a2_size = receiver.faulty + 1;

  std::vector<std::uint32_t> a1 = sender.FaultySet();
  for (std::uint32_t node = 0; a1.size() < a1_size && node < sender.nodes;
       ++node) {
    if (!sender.IsFaulty(node)) a1.push_back(node);
  }
  std::vector<std::uint32_t> a2 = receiver.FaultySet();
  for (std::uint32_t node = 0; a2.size() < a2_size && node < receiver.nodes;
       ++node) {
    if (!receiver.IsFaulty(node)) a2.push_back(node);
  }
  SSHARD_CHECK(a1.size() == a1_size && a2.size() == a2_size);

  ClusterSendResult result;
  result.node_messages = static_cast<std::uint64_t>(a1_size) * a2_size;

  for (const std::uint32_t src : a1) {
    const bool src_honest = !sender.IsFaulty(src);
    for (const std::uint32_t dst : a2) {
      const bool dst_honest = !receiver.IsFaulty(dst);
      if (!src_honest) {
        // A faulty sender may drop or corrupt; either way, the correct
        // value is not attributable to this link.
        (void)rng.NextBool(0.5);
        continue;
      }
      if (!dst_honest) continue;  // faulty receiver discards
      ++result.honest_pairs;
      result.delivered = true;
      // The honest receiver acknowledges; the honest sender hears it.
      result.sender_confirmed = true;
    }
  }
  return result;
}

}  // namespace stableshard::consensus
