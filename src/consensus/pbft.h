// Message-level PBFT simulation for a single shard.
//
// The paper abstracts intra-shard agreement as "one round = the time to run
// PBFT [Castro & Liskov] within a shard" and requires n_i > 3 f_i. This
// module builds that substrate explicitly: it simulates the pre-prepare /
// prepare / commit message exchange among the shard's nodes, with injectable
// Byzantine behaviours, and reports whether all honest nodes decide the same
// value plus the message complexity. Tests validate the n > 3f safety
// boundary that the round abstraction in src/core relies on.
//
// Scope note: this is a synchronous, single-instance simulation (one
// consensus decision per call, view changes modelled by primary rotation on
// failure). It is a validation substrate, not a networked BFT engine — the
// schedulers consume only the "one round per decision" abstraction.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace stableshard::consensus {

enum class NodeBehavior : std::uint8_t {
  kHonest,
  kSilent,        ///< crashed / mute: sends nothing
  kEquivocating,  ///< sends conflicting values to different peers
};

struct PbftConfig {
  std::uint32_t nodes = 4;  ///< n_i, nodes in the shard
  /// Per-node behaviour; size must equal `nodes`. Defaults to all honest.
  std::vector<NodeBehavior> behaviors;

  std::uint32_t FaultyCount() const;
  /// Max faults tolerated: floor((n - 1) / 3).
  std::uint32_t ToleratedFaults() const { return (nodes - 1) / 3; }
  /// Quorum size: 2f_tolerated + 1.
  std::uint32_t Quorum() const { return 2 * ToleratedFaults() + 1; }
};

struct PbftResult {
  bool decided = false;             ///< all honest nodes decided
  std::uint64_t value = 0;          ///< the decided value (if decided)
  bool all_honest_agree = false;    ///< no two honest nodes decided different
  std::uint32_t views_used = 1;     ///< 1 + number of view changes
  std::uint64_t messages = 0;       ///< total protocol messages simulated
  std::uint32_t phases = 0;         ///< message phases consumed
};

/// Run one PBFT instance proposing `value` with primary `initial_primary`.
/// Equivocating primaries propose per-destination values derived from `rng`.
/// View changes rotate the primary until an honest one drives a decision or
/// every view has been tried.
PbftResult RunPbft(const PbftConfig& config, std::uint64_t value,
                   std::uint32_t initial_primary, Rng& rng);

/// Convenience: can a shard with `nodes` nodes and `faulty` Byzantine nodes
/// guarantee agreement? (the n > 3f condition of Section 3).
constexpr bool SatisfiesBftBound(std::uint32_t nodes, std::uint32_t faulty) {
  return nodes > 3 * faulty;
}

}  // namespace stableshard::consensus
