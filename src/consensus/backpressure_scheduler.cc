#include "consensus/backpressure_scheduler.h"

#include <algorithm>

#include "common/check.h"
#include "core/scheduler_registry.h"

namespace stableshard::consensus {

BackpressureScheduler::BackpressureScheduler(
    const net::ShardMetric& metric, const cluster::Hierarchy& hierarchy,
    core::CommitLedger& ledger, const core::FdsConfig& fds_config,
    const BackpressureConfig& config)
    : inner_(std::make_unique<core::FdsScheduler>(metric, hierarchy, ledger,
                                                  fds_config)),
      config_(config),
      hot_(metric.shard_count(), 0),
      spill_(metric.shard_count()),
      spill_head_(metric.shard_count(), 0) {
  SSHARD_CHECK(config_.low_watermark <= config_.high_watermark &&
               "backpressure watermarks must satisfy low <= high");
  SSHARD_CHECK(config_.high_watermark > 0 &&
               "backpressure_high = 0 would park every transaction forever");
}

void BackpressureScheduler::Inject(const txn::Transaction& txn) {
  // The hot marks and spill queues are serial-only state; park/admit
  // decisions during a parallel phase would race with the round body.
  SSHARD_SERIAL_PHASE(inner_->ownership());
  if (hot_[txn.home()]) {
    spill_[txn.home()].push_back(txn);
    ++spilled_now_;
    ++deferred_total_;
    return;
  }
  inner_->Inject(txn);
}

void BackpressureScheduler::BeginRound(Round round) {
  // Serial. Reads the inflow each destination accumulated since the last
  // BeginRound (== the previous round, including its epilogue flush) and
  // runs the hysteresis gate. Everything read here is folded serially by
  // the epilogue, so the branch outcomes are identical whatever the
  // worker count or pipeline mode.
  SSHARD_SERIAL_PHASE(inner_->ownership());
  const ShardId shards = inner_->shard_count();
  for (ShardId shard = 0; shard < shards; ++shard) {
    // Congestion signal: the round's inflow (spiky — FDS ships subtxn
    // batches at epoch boundaries) joined with the standing backlog the
    // shard owes work for (smooth — sch_ldr of the clusters it leads plus
    // undelivered messages). Either crossing the high watermark marks the
    // destination hot; both must fall to the low one to clear it.
    const std::uint64_t signal =
        std::max(inner_->ShardTrafficFor(shard).InflowSinceSnapshot(),
                 inner_->QueueDepth(shard));
    if (!hot_[shard] && signal >= config_.high_watermark) {
      hot_[shard] = 1;
      ++hot_transitions_;
    } else if (hot_[shard] && signal <= config_.low_watermark) {
      hot_[shard] = 0;
    }
    // Paced re-admission while the mark is clear, in shard order then
    // injection order — a deterministic serial schedule. The per-round
    // budget is the headroom left under the high watermark (dumping the
    // whole spill at once would recreate exactly the spike the gate
    // shed; at small scale that flood made the peak *worse* than plain
    // fds), floored at 1 so the spill always drains once injection stops
    // even when high == low leaves zero headroom.
    std::vector<txn::Transaction>& spill = spill_[shard];
    std::size_t& head = spill_head_[shard];
    if (!hot_[shard] && head < spill.size()) {
      const std::uint64_t budget = std::max<std::uint64_t>(
          1, config_.high_watermark - std::min(signal,
                                               config_.high_watermark));
      const std::size_t admit =
          std::min<std::size_t>(spill.size() - head, budget);
      for (std::size_t i = 0; i < admit; ++i) {
        inner_->Inject(spill[head + i]);
      }
      head += admit;
      if (head == spill.size()) {
        // Swap-to-empty, not clear(): a long hot phase can park a
        // burst's worth of transactions, and the repo's memory
        // discipline (ring/lane decay) is that bursts never pin peak
        // capacity for the rest of the run.
        std::vector<txn::Transaction>().swap(spill);
        head = 0;
      }
      readmitted_total_ += admit;
      spilled_now_ -= admit;
    }
  }
  inner_->SnapshotInflow();
  inner_->BeginRound(round);
}

void BackpressureScheduler::StepShard(ShardId shard, Round round) {
  inner_->StepShard(shard, round);
}

void BackpressureScheduler::EndRound(Round round) {
  inner_->EndRound(round);
}

// The epilogue trio delegates through the Scheduler interface on purpose:
// FdsScheduler's overrides carry thread-safety annotations naming its
// private capabilities, which this wrapper neither holds nor tracks —
// calling via the unannotated base keeps the wrapper transparent to the
// analysis (the capabilities are acquired and released inside one
// inner call chain either way).
void BackpressureScheduler::SealRound(Round round, std::uint32_t parts) {
  core::Scheduler& base = *inner_;
  base.SealRound(round, parts);
}

void BackpressureScheduler::FlushRoundPartition(Round round,
                                                std::uint32_t part,
                                                std::uint32_t parts) {
  core::Scheduler& base = *inner_;
  base.FlushRoundPartition(round, part, parts);
}

void BackpressureScheduler::FinishRound(Round round) {
  core::Scheduler& base = *inner_;
  base.FinishRound(round);
}

bool BackpressureScheduler::Idle() const {
  return spilled_now_ == 0 && inner_->Idle();
}

std::uint64_t BackpressureScheduler::hot_shard_count() const {
  std::uint64_t count = 0;
  for (const std::uint8_t hot : hot_) count += hot;
  return count;
}

namespace {
const core::SchedulerRegistrar kBackpressureRegistrar{
    "backpressure",
    [](const core::SimConfig& config, core::SchedulerDeps& deps) {
      core::FdsConfig fds;
      fds.coloring = config.coloring;
      fds.reschedule = config.fds_reschedule;
      fds.commit_mode = config.fds_pipelined
                            ? core::CommitMode::kPipelined
                            : core::CommitMode::kPinned;
      BackpressureConfig backpressure;
      backpressure.high_watermark = config.backpressure_high;
      backpressure.low_watermark = config.backpressure_low;
      // The wrapper composes with the multi-root hierarchy: fds_top_roots
      // defaults to 1, which is the classic single-top cover.
      return std::unique_ptr<core::Scheduler>(
          std::make_unique<BackpressureScheduler>(
              deps.metric, deps.hierarchy(config.fds_top_roots),
              deps.ledger, fds, backpressure));
    }};
}  // namespace

}  // namespace stableshard::consensus
