// Broadcast-based cluster-sending protocol (Hellings & Sadoghi, FoIKS 2022),
// as summarized in the paper's Section 3.
//
// To move data R from shard S1 (f1 faulty nodes) to shard S2 (f2 faulty):
// choose A1 ⊆ S1 with |A1| = f1 + 1 and A2 ⊆ S2 with |A2| = f2 + 1; every
// node of A1 broadcasts R to every node of A2 — (f1+1)(f2+1) node-level
// messages. Since A1 contains at least one non-faulty node and A2 contains
// at least one non-faulty node, at least one honest-to-honest delivery of
// the agreed value is guaranteed; intra-shard consensus then disseminates R
// inside S2. This justifies the "shard-to-shard message within distance(d)
// rounds" abstraction used by net::Network.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace stableshard::consensus {

struct ShardFaultProfile {
  std::uint32_t nodes = 4;   ///< n_i
  std::uint32_t faulty = 0;  ///< f_i (must satisfy nodes > 3 * faulty)
  /// Which node indices are faulty. If empty, nodes [0, faulty) are faulty.
  std::vector<std::uint32_t> faulty_ids;

  bool IsFaulty(std::uint32_t node) const;
  std::vector<std::uint32_t> FaultySet() const;
};

struct ClusterSendResult {
  bool delivered = false;        ///< >= 1 honest sender -> honest receiver
  bool sender_confirmed = false; ///< >= 1 honest sender got honest receipt
  std::uint64_t node_messages = 0;  ///< (f1+1) * (f2+1)
  std::uint32_t honest_pairs = 0;   ///< honest-to-honest links used
};

/// Simulate one cluster-send of an opaque value. Faulty senders may drop or
/// corrupt their copies (decided by `rng`), faulty receivers ignore input;
/// the result reflects whether the *correct* value reached an honest
/// receiver and was confirmed back (properties (1)-(3) of Section 3).
ClusterSendResult SimulateClusterSend(const ShardFaultProfile& sender,
                                      const ShardFaultProfile& receiver,
                                      Rng& rng);

/// Node-message cost of one shard-to-shard send under the protocol.
constexpr std::uint64_t ClusterSendCost(std::uint32_t f_sender,
                                        std::uint32_t f_receiver) {
  return static_cast<std::uint64_t>(f_sender + 1) * (f_receiver + 1);
}

}  // namespace stableshard::consensus
