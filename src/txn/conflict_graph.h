// Transaction conflict graph (paper Section 3).
//
// Vertices are transactions; an edge joins two transactions that access a
// common account with at least one write. Both schedulers color this graph
// (Phase 2) to produce a conflict-free commit schedule: same-color
// transactions are mutually non-conflicting and commit concurrently.
//
// Construction is O(sum over accounts of writers*accessors) via an
// account-indexed inverted list rather than the naive O(n^2) pairwise scan,
// which matters for the burst workloads (tens of thousands of transactions
// in one epoch).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "txn/transaction.h"

namespace stableshard::txn {

/// Edge definition used when building the graph.
///
/// kAccount is the paper's Section-3 definition (shared account, >= 1
/// write) and captures *semantic* conflicts. kShard additionally treats any
/// two transactions sharing a destination shard as conflicting: since each
/// shard can process exactly one subtransaction per round, same-color
/// transactions must be shard-disjoint for the schedule to respect unit
/// shard capacity. With the paper's simulation setup (one account per
/// shard, write-only workload) the two definitions coincide; the schedulers
/// color the kShard graph, and kAccount is used for serializability
/// analysis and ablations.
enum class ConflictGranularity : std::uint8_t { kAccount, kShard };

class ConflictGraph {
 public:
  /// Builds the conflict graph of `txns`. Vertices are indexed by position
  /// in the input; the mapping to TxnIds is kept for callers.
  explicit ConflictGraph(const std::vector<const Transaction*>& txns,
                         ConflictGranularity granularity =
                             ConflictGranularity::kAccount);

  std::size_t size() const { return adjacency_.size(); }
  /// Neighbor vertex indices, sorted ascending and deduplicated (class
  /// invariant established at construction; HasEdge relies on it).
  const std::vector<std::uint32_t>& neighbors(std::size_t v) const {
    return adjacency_[v];
  }
  std::size_t degree(std::size_t v) const { return adjacency_[v].size(); }

  /// Maximum vertex degree Delta (epoch length driver in Lemma 1).
  std::size_t MaxDegree() const;

  std::uint64_t edge_count() const { return edge_count_; }

  TxnId txn_id(std::size_t v) const { return ids_[v]; }

  bool HasEdge(std::size_t a, std::size_t b) const;

 private:
  std::vector<std::vector<std::uint32_t>> adjacency_;
  std::vector<TxnId> ids_;
  std::uint64_t edge_count_ = 0;
};

}  // namespace stableshard::txn
