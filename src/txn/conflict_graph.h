// Transaction conflict graph (paper Section 3).
//
// Vertices are transactions; an edge joins two transactions that access a
// common account with at least one write. Both schedulers color this graph
// (Phase 2) to produce a conflict-free commit schedule: same-color
// transactions are mutually non-conflicting and commit concurrently.
//
// Construction is O(sum over accounts of writers*accessors) via an
// account-indexed inverted list rather than the naive O(n^2) pairwise scan,
// which matters for the burst workloads (tens of thousands of transactions
// in one epoch).
//
// Storage is CSR (compressed sparse row): one flat `offsets` array and one
// flat `neighbors` array, built in two passes over the inverted list (count
// candidates, then fill) followed by an in-place per-row sort + dedup +
// compaction. Two transactions sharing several accounts produce duplicate
// candidates exactly like the old vector-of-vectors representation did —
// the dedup pass collapses them, so the final neighbor sets are identical
// by construction (asserted by the CSR-vs-legacy differential test against
// BuildLegacyAdjacency below). The flat layout removes one pointer chase
// and one heap allocation per vertex from the coloring inner loop, which
// walks `neighbors(v)` once per vertex per epoch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "txn/transaction.h"

namespace stableshard::txn {

/// Edge definition used when building the graph.
///
/// kAccount is the paper's Section-3 definition (shared account, >= 1
/// write) and captures *semantic* conflicts. kShard additionally treats any
/// two transactions sharing a destination shard as conflicting: since each
/// shard can process exactly one subtransaction per round, same-color
/// transactions must be shard-disjoint for the schedule to respect unit
/// shard capacity. With the paper's simulation setup (one account per
/// shard, write-only workload) the two definitions coincide; the schedulers
/// color the kShard graph, and kAccount is used for serializability
/// analysis and ablations.
enum class ConflictGranularity : std::uint8_t { kAccount, kShard };

class ConflictGraph {
 public:
  /// Builds the conflict graph of `txns`. Vertices are indexed by position
  /// in the input; the mapping to TxnIds is kept for callers.
  explicit ConflictGraph(const std::vector<const Transaction*>& txns,
                         ConflictGranularity granularity =
                             ConflictGranularity::kAccount);

  std::size_t size() const { return ids_.size(); }
  /// Neighbor vertex indices, sorted ascending and deduplicated (class
  /// invariant established at construction; HasEdge relies on it). The
  /// span views the flat CSR slice — valid as long as the graph lives.
  std::span<const std::uint32_t> neighbors(std::size_t v) const {
    return {neighbors_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }
  std::size_t degree(std::size_t v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Maximum vertex degree Delta (epoch length driver in Lemma 1).
  std::size_t MaxDegree() const;

  std::uint64_t edge_count() const { return edge_count_; }

  TxnId txn_id(std::size_t v) const { return ids_[v]; }

  bool HasEdge(std::size_t a, std::size_t b) const;

 private:
  /// CSR row starts: neighbors of v live at neighbors_[offsets_[v]
  /// .. offsets_[v+1]). Always n + 1 entries (offsets_[n] == total).
  std::vector<std::size_t> offsets_;
  std::vector<std::uint32_t> neighbors_;
  std::vector<TxnId> ids_;
  std::uint64_t edge_count_ = 0;
};

/// The pre-CSR vector-of-vectors adjacency, kept ONLY as the differential
/// oracle for tests and the micro-benchmark baseline (BM row
/// "csr_build" in bench/micro_components) — production code must go
/// through ConflictGraph. Each inner vector is sorted + deduplicated,
/// exactly the invariant the CSR rows guarantee.
std::vector<std::vector<std::uint32_t>> BuildLegacyAdjacency(
    const std::vector<const Transaction*>& txns,
    ConflictGranularity granularity = ConflictGranularity::kAccount);

}  // namespace stableshard::txn
