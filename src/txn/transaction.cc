#include "txn/transaction.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"

namespace stableshard::txn {

bool SubTransaction::HasWrite() const {
  return std::any_of(actions.begin(), actions.end(),
                     [](const chain::Action& a) { return a.IsWrite(); });
}

std::vector<AccountId> SubTransaction::ReadSet() const {
  std::vector<AccountId> reads;
  for (const auto& condition : conditions) reads.push_back(condition.account);
  for (const auto& action : actions) {
    if (!action.IsWrite()) reads.push_back(action.account);
  }
  std::sort(reads.begin(), reads.end());
  reads.erase(std::unique(reads.begin(), reads.end()), reads.end());
  return reads;
}

std::vector<AccountId> SubTransaction::WriteSet() const {
  std::vector<AccountId> writes;
  for (const auto& action : actions) {
    if (action.IsWrite()) writes.push_back(action.account);
  }
  std::sort(writes.begin(), writes.end());
  writes.erase(std::unique(writes.begin(), writes.end()), writes.end());
  return writes;
}

std::uint64_t SubTransaction::Digest() const {
  std::uint64_t digest = Mix64(destination + 1);
  for (const auto& condition : conditions) {
    digest ^= Mix64(condition.account * 31 +
                    static_cast<std::uint64_t>(condition.op) * 7 +
                    static_cast<std::uint64_t>(condition.value));
  }
  for (const auto& action : actions) {
    digest ^= Mix64(action.account * 131 +
                    static_cast<std::uint64_t>(action.kind) * 13 +
                    static_cast<std::uint64_t>(action.amount));
  }
  return digest;
}

Transaction::Transaction(TxnId id, ShardId home, Round injected,
                         std::vector<SubTransaction> subs)
    : id_(id), home_(home), injected_(injected), subs_(std::move(subs)) {
  SSHARD_CHECK(!subs_.empty());
  destinations_.reserve(subs_.size());
  for (const auto& sub : subs_) {
    SSHARD_CHECK(sub.destination != kInvalidShard);
    destinations_.push_back(sub.destination);
    for (const auto& condition : sub.conditions) {
      accesses_.push_back({condition.account, false});
    }
    for (const auto& action : sub.actions) {
      accesses_.push_back({action.account, action.IsWrite()});
    }
  }
  std::sort(destinations_.begin(), destinations_.end());
  // One subtransaction per destination shard: duplicates are a construction
  // bug (the factory merges accesses per shard).
  SSHARD_CHECK(std::adjacent_find(destinations_.begin(),
                                  destinations_.end()) == destinations_.end());
  // Collapse accesses per account, write-dominant.
  std::sort(accesses_.begin(), accesses_.end(),
            [](const Access& a, const Access& b) {
              if (a.account != b.account) return a.account < b.account;
              return a.write > b.write;
            });
  accesses_.erase(std::unique(accesses_.begin(), accesses_.end(),
                              [](const Access& a, const Access& b) {
                                return a.account == b.account;
                              }),
                  accesses_.end());
}

bool Transaction::ConflictsWith(const Transaction& other) const {
  // Merge-walk over the two sorted access lists.
  auto it = accesses_.begin();
  auto jt = other.accesses_.begin();
  while (it != accesses_.end() && jt != other.accesses_.end()) {
    if (it->account < jt->account) {
      ++it;
    } else if (jt->account < it->account) {
      ++jt;
    } else {
      if (it->write || jt->write) return true;
      ++it;
      ++jt;
    }
  }
  return false;
}

std::string Transaction::ToString() const {
  std::ostringstream os;
  os << "T" << id_ << "{home=S" << home_ << ", injected=@" << injected_
     << ", subs=[";
  bool first = true;
  for (const auto& sub : subs_) {
    if (!first) os << "; ";
    first = false;
    os << "S" << sub.destination << ":";
    for (const auto& condition : sub.conditions) {
      os << ' ' << condition.ToString();
    }
    for (const auto& action : sub.actions) {
      os << ' ' << action.ToString();
    }
  }
  os << "]}";
  return os.str();
}

}  // namespace stableshard::txn
