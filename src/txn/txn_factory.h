// Transaction construction helpers.
//
// TxnFactory assigns monotonically increasing ids and builds well-formed
// transactions (one subtransaction per destination shard, accesses merged
// per shard) from account-level specifications. Used by the adversary
// strategies and the examples.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/account_map.h"
#include "chain/ops.h"
#include "common/rng.h"
#include "common/types.h"
#include "txn/transaction.h"

namespace stableshard::txn {

/// One account-level access in a transaction specification.
struct AccessSpec {
  AccountId account = 0;
  bool write = true;
  /// Optional condition attached to this account (kGe 0 == no-op check).
  chain::Condition condition{};
  bool has_condition = false;
  /// Action applied on commit; ActionKind::kNone for read-only access.
  chain::Action action{};
};

class TxnFactory {
 public:
  explicit TxnFactory(const chain::AccountMap& accounts)
      : accounts_(&accounts) {}

  /// Number of transactions created so far (== next id).
  TxnId created() const { return next_id_; }

  /// Build a transaction touching the given accounts. Accesses are grouped
  /// into one subtransaction per owning shard. `home` must be a valid shard.
  Transaction Make(ShardId home, Round injected,
                   const std::vector<AccessSpec>& accesses);

  /// Convenience: write-transaction touching each account in `accounts`
  /// with a balance-neutral write (deposit 0), conflicting with anything
  /// else touching those accounts. This mirrors the paper's simulation
  /// where transactions are identified with the shard set they access.
  Transaction MakeTouch(ShardId home, Round injected,
                        const std::vector<AccountId>& accounts);

  /// Convenience: "transfer `amount` from `from` to `to` if `from` has at
  /// least `min_balance`" — Example 1's shape.
  Transaction MakeTransfer(ShardId home, Round injected, AccountId from,
                           AccountId to, chain::Balance amount,
                           chain::Balance min_balance);

 private:
  const chain::AccountMap* accounts_;
  TxnId next_id_ = 0;
};

}  // namespace stableshard::txn
