// Transactions and subtransactions (paper Section 3).
//
// A transaction T_i is a collection of subtransactions T_{i,a1}..T_{i,aj},
// each accessing accounts owned by exactly one destination shard. The home
// shard (where T was injected) splits T and coordinates the 2PC-style
// vote/confirm commit. Subtransactions of one transaction never conflict
// with each other and can commit concurrently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/ops.h"
#include "common/types.h"

namespace stableshard::txn {

/// The per-destination-shard piece of a transaction: a condition check plus
/// a main action (either may be empty; an all-kNone subtransaction is a
/// pure read participation).
struct SubTransaction {
  ShardId destination = kInvalidShard;
  std::vector<chain::Condition> conditions;
  std::vector<chain::Action> actions;

  /// True if any action writes account state.
  bool HasWrite() const;

  /// Accounts read (condition accounts plus kNone action accounts).
  std::vector<AccountId> ReadSet() const;

  /// Accounts written (non-kNone action accounts).
  std::vector<AccountId> WriteSet() const;

  /// Order-insensitive digest of the body (for block payloads).
  std::uint64_t Digest() const;
};

class Transaction {
 public:
  Transaction() = default;
  Transaction(TxnId id, ShardId home, Round injected,
              std::vector<SubTransaction> subs);

  TxnId id() const { return id_; }
  ShardId home() const { return home_; }
  Round injected() const { return injected_; }
  const std::vector<SubTransaction>& subs() const { return subs_; }

  /// Destination shards, ascending, deduplicated (== one per sub).
  const std::vector<ShardId>& destinations() const { return destinations_; }

  /// Number of shards the transaction accesses (the paper's per-txn k).
  std::size_t shard_span() const { return destinations_.size(); }

  /// All accounts accessed, with their access mode.
  struct Access {
    AccountId account;
    bool write;
  };
  const std::vector<Access>& accesses() const { return accesses_; }

  /// Whether this transaction conflicts with `other`: they access a common
  /// account and at least one of the two accesses writes it.
  bool ConflictsWith(const Transaction& other) const;

  std::string ToString() const;

 private:
  TxnId id_ = kInvalidTxn;
  ShardId home_ = kInvalidShard;
  Round injected_ = 0;
  std::vector<SubTransaction> subs_;
  std::vector<ShardId> destinations_;
  std::vector<Access> accesses_;  // sorted by account id
};

}  // namespace stableshard::txn
