#include "txn/coloring.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <tuple>
#include <unordered_map>

#include "common/check.h"

namespace stableshard::txn {

namespace {

constexpr Color kUncolored = static_cast<Color>(-1);

/// Greedy coloring along `order`: each vertex takes the smallest color not
/// used by an already-colored neighbor.
ColoringResult GreedyInOrder(const ConflictGraph& graph,
                             const std::vector<std::uint32_t>& order) {
  const std::size_t n = graph.size();
  ColoringResult result;
  result.color.assign(n, kUncolored);
  std::vector<std::uint32_t> mark(n + 1, UINT32_MAX);
  for (std::uint32_t step = 0; step < order.size(); ++step) {
    const std::uint32_t v = order[step];
    for (const std::uint32_t u : graph.neighbors(v)) {
      if (result.color[u] != kUncolored) {
        mark[result.color[u]] = step;
      }
    }
    Color chosen = 0;
    while (mark[chosen] == step) ++chosen;
    result.color[v] = chosen;
    result.num_colors = std::max(result.num_colors, chosen + 1);
  }
  return result;
}

ColoringResult Dsatur(const ConflictGraph& graph) {
  const std::size_t n = graph.size();
  ColoringResult result;
  result.color.assign(n, kUncolored);
  if (n == 0) return result;

  std::vector<std::set<Color>> neighbor_colors(n);
  // Priority: (saturation, degree, -v). std::set as a simple updatable heap;
  // n is at most a few tens of thousands per epoch, and DSATUR is only used
  // in ablations.
  auto priority = [&](std::uint32_t v) {
    return std::tuple(neighbor_colors[v].size(), graph.degree(v),
                      ~static_cast<std::uint32_t>(v));
  };
  std::set<std::tuple<std::size_t, std::size_t, std::uint32_t>> queue;
  for (std::uint32_t v = 0; v < n; ++v) queue.insert(priority(v));

  for (std::size_t colored = 0; colored < n; ++colored) {
    const auto top = *queue.rbegin();
    queue.erase(std::prev(queue.end()));
    const std::uint32_t v = ~std::get<2>(top);
    Color chosen = 0;
    while (neighbor_colors[v].count(chosen) != 0) ++chosen;
    result.color[v] = chosen;
    result.num_colors = std::max(result.num_colors, chosen + 1);
    for (const std::uint32_t u : graph.neighbors(v)) {
      if (result.color[u] != kUncolored) continue;
      queue.erase(priority(u));
      neighbor_colors[u].insert(chosen);
      queue.insert(priority(u));
    }
  }
  return result;
}

}  // namespace

const char* ToString(ColoringAlgorithm algorithm) {
  switch (algorithm) {
    case ColoringAlgorithm::kGreedy:
      return "greedy";
    case ColoringAlgorithm::kWelshPowell:
      return "welsh-powell";
    case ColoringAlgorithm::kDsatur:
      return "dsatur";
  }
  return "?";
}

ColoringResult ColorGraph(const ConflictGraph& graph,
                          ColoringAlgorithm algorithm) {
  const std::size_t n = graph.size();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  switch (algorithm) {
    case ColoringAlgorithm::kGreedy:
      return GreedyInOrder(graph, order);
    case ColoringAlgorithm::kWelshPowell:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return graph.degree(a) > graph.degree(b);
                       });
      return GreedyInOrder(graph, order);
    case ColoringAlgorithm::kDsatur:
      return Dsatur(graph);
  }
  SSHARD_CHECK(false && "unknown coloring algorithm");
  return {};
}

ColoringResult ColorShardCliques(const std::vector<const Transaction*>& txns,
                                 ColoringAlgorithm algorithm) {
  const std::size_t n = txns.size();
  ColoringResult result;
  result.color.assign(n, kUncolored);
  if (n == 0) return result;

  // Destination shards appearing in this batch, remapped to dense indices.
  std::unordered_map<ShardId, std::uint32_t> shard_index;
  std::vector<std::uint64_t> shard_load;  // transactions touching the shard
  for (const Transaction* txn : txns) {
    for (const ShardId shard : txn->destinations()) {
      const auto [it, inserted] =
          shard_index.try_emplace(shard, shard_index.size());
      if (inserted) shard_load.push_back(0);
      ++shard_load[it->second];
    }
  }

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (algorithm != ColoringAlgorithm::kGreedy) {
    // Clique-degree proxy: a transaction conflicts with at most
    // sum(shard_load - 1) others; order descending (Welsh-Powell).
    std::vector<std::uint64_t> proxy(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      for (const ShardId shard : txns[v]->destinations()) {
        proxy[v] += shard_load[shard_index[shard]] - 1;
      }
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return proxy[a] > proxy[b];
                     });
  }

  // used[shard][color] = step stamp; a color is free for a transaction iff
  // none of its shards stamped it this step... stamps are monotone per
  // shard/color pair (set once per assignment), so plain booleans grown on
  // demand suffice.
  std::vector<std::vector<bool>> used(shard_load.size());
  for (const std::uint32_t v : order) {
    Color chosen = 0;
    for (bool conflict = true; conflict;) {
      conflict = false;
      for (const ShardId shard : txns[v]->destinations()) {
        const auto& marks = used[shard_index[shard]];
        if (chosen < marks.size() && marks[chosen]) {
          conflict = true;
          ++chosen;
          break;
        }
      }
    }
    result.color[v] = chosen;
    result.num_colors = std::max(result.num_colors, chosen + 1);
    for (const ShardId shard : txns[v]->destinations()) {
      auto& marks = used[shard_index[shard]];
      if (marks.size() <= chosen) marks.resize(chosen + 1, false);
      marks[chosen] = true;
    }
  }
  return result;
}

bool IsProperShardColoring(const std::vector<const Transaction*>& txns,
                           const std::vector<Color>& color) {
  if (color.size() != txns.size()) return false;
  std::unordered_map<std::uint64_t, int> seen;  // (shard, color) pairs
  for (std::size_t v = 0; v < txns.size(); ++v) {
    if (color[v] == kUncolored) return false;
    for (const ShardId shard : txns[v]->destinations()) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(shard) << 32) | color[v];
      if (!seen.emplace(key, 1).second) return false;
    }
  }
  return true;
}

bool IsProperColoring(const ConflictGraph& graph,
                      const std::vector<Color>& color) {
  if (color.size() != graph.size()) return false;
  for (std::size_t v = 0; v < graph.size(); ++v) {
    if (color[v] == kUncolored) return false;
    for (const std::uint32_t u : graph.neighbors(v)) {
      if (color[u] == color[v]) return false;
    }
  }
  return true;
}

}  // namespace stableshard::txn
