#include "txn/coloring.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <set>
#include <tuple>
#include <unordered_map>

#include "common/check.h"

namespace stableshard::txn {

namespace {

constexpr Color kUncolored = static_cast<Color>(-1);
constexpr std::uint64_t kAllOnes = ~std::uint64_t{0};

/// Color bitset: one inline word for colors 0..63 (the common case — most
/// epochs need far fewer than 64 colors, so the fast path touches no heap)
/// plus spillover words for burst epochs. "Smallest free color" is a count
/// of trailing ones instead of a per-color scan.
class ColorSet {
 public:
  /// Sets the bit for `c`; returns true when it was newly set.
  bool insert(Color c) {
    std::uint64_t& word = WordFor(c);
    const std::uint64_t bit = std::uint64_t{1} << (c & 63);
    if ((word & bit) != 0) return false;
    word |= bit;
    ++count_;
    return true;
  }

  /// Number of distinct colors in the set (DSATUR saturation degree).
  std::size_t count() const { return count_; }

  /// Smallest color not in the set.
  Color FirstAbsent() const {
    if (word0_ != kAllOnes) {
      return static_cast<Color>(std::countr_one(word0_));
    }
    for (std::size_t w = 0; w < spill_.size(); ++w) {
      if (spill_[w] != kAllOnes) {
        return static_cast<Color>(64 * (w + 1) + std::countr_one(spill_[w]));
      }
    }
    return static_cast<Color>(64 * (spill_.size() + 1));
  }

  /// Empties the set but keeps spill capacity (scratch reuse).
  void clear() {
    word0_ = 0;
    std::fill(spill_.begin(), spill_.end(), 0);
    count_ = 0;
  }

 private:
  std::uint64_t& WordFor(Color c) {
    if (c < 64) return word0_;
    const std::size_t w = c / 64 - 1;
    if (w >= spill_.size()) spill_.resize(w + 1, 0);
    return spill_[w];
  }

  std::uint64_t word0_ = 0;
  std::vector<std::uint64_t> spill_;
  std::size_t count_ = 0;
};

/// Greedy coloring along `order`: each vertex takes the smallest color not
/// used by an already-colored neighbor.
///
/// Stamped marks, not bitsets: marking is then a pure store (mark[c] =
/// step) with no read-modify-write dependency, which beats OR-ing into a
/// shared word that every same-word neighbor serializes on (measured in
/// bench/micro_components before settling this). The win over the
/// original is the mark array's size: greedy never uses more than
/// MaxDegree+1 colors, so Delta+2 slots replace the n+1 the legacy version
/// allocated — a cache-resident array on burst epochs where n is in the
/// tens of thousands.
ColoringResult GreedyInOrder(const ConflictGraph& graph,
                             const std::vector<std::uint32_t>& order) {
  const std::size_t n = graph.size();
  ColoringResult result;
  result.color.assign(n, kUncolored);
  std::vector<std::uint32_t> mark(graph.MaxDegree() + 2, UINT32_MAX);
  const Color* const color = result.color.data();
  for (std::uint32_t step = 0; step < order.size(); ++step) {
    const std::uint32_t v = order[step];
    for (const std::uint32_t u : graph.neighbors(v)) {
      const Color c = color[u];
      if (c != kUncolored) mark[c] = step;
    }
    Color chosen = 0;
    while (mark[chosen] == step) ++chosen;
    result.color[v] = chosen;
    result.num_colors = std::max(result.num_colors, chosen + 1);
  }
  return result;
}

ColoringResult Dsatur(const ConflictGraph& graph) {
  const std::size_t n = graph.size();
  ColoringResult result;
  result.color.assign(n, kUncolored);
  if (n == 0) return result;

  std::vector<ColorSet> neighbor_colors(n);
  // Priority: (saturation, degree, -v). std::set as a simple updatable heap;
  // n is at most a few tens of thousands per epoch, and DSATUR is only used
  // in ablations. Saturation is the bitset's popcount — identical to the
  // old std::set<Color>::size(), so the selection order is unchanged.
  auto priority = [&](std::uint32_t v) {
    return std::tuple(neighbor_colors[v].count(), graph.degree(v),
                      ~static_cast<std::uint32_t>(v));
  };
  std::set<std::tuple<std::size_t, std::size_t, std::uint32_t>> queue;
  for (std::uint32_t v = 0; v < n; ++v) queue.insert(priority(v));

  for (std::size_t colored = 0; colored < n; ++colored) {
    const auto top = *queue.rbegin();
    queue.erase(std::prev(queue.end()));
    const std::uint32_t v = ~std::get<2>(top);
    const Color chosen = neighbor_colors[v].FirstAbsent();
    result.color[v] = chosen;
    result.num_colors = std::max(result.num_colors, chosen + 1);
    for (const std::uint32_t u : graph.neighbors(v)) {
      if (result.color[u] != kUncolored) continue;
      queue.erase(priority(u));
      neighbor_colors[u].insert(chosen);
      queue.insert(priority(u));
    }
  }
  return result;
}

/// Per-shard color marks for the clique coloring: a fixed word0 lane
/// (colors 0..63) allocated up front plus an on-demand spillover matrix,
/// all bump-allocated from the round arena. Rows a shard never spills into
/// read as zero, so the union loop needs no bounds bookkeeping.
class ShardColorMarks {
 public:
  ShardColorMarks(std::size_t shards, common::Arena& arena)
      : shards_(shards),
        arena_(arena),
        word0_(arena.AllocateArray<std::uint64_t>(shards)) {
    std::fill_n(word0_, shards_, std::uint64_t{0});
  }

  /// Word `w` of the shard's color bitset (w == 0 is the inline lane).
  std::uint64_t word(std::uint32_t shard, std::size_t w) const {
    if (w == 0) return word0_[shard];
    return (w - 1) < spill_words_ ? spill_[shard * spill_words_ + (w - 1)]
                                  : 0;
  }

  void set(std::uint32_t shard, Color color) {
    const std::uint64_t bit = std::uint64_t{1} << (color & 63);
    if (color < 64) {
      word0_[shard] |= bit;
      return;
    }
    const std::size_t w = color / 64 - 1;
    if (w >= spill_words_) Grow(w + 1);
    spill_[shard * spill_words_ + w] |= bit;
  }

 private:
  /// Doubles the spill matrix (arena garbage from the old rows is
  /// reclaimed wholesale at the next arena Reset).
  void Grow(std::size_t min_words) {
    const std::size_t grown =
        std::max(min_words, spill_words_ == 0 ? std::size_t{1}
                                              : spill_words_ * 2);
    std::uint64_t* fresh = arena_.AllocateArray<std::uint64_t>(shards_ * grown);
    std::fill_n(fresh, shards_ * grown, std::uint64_t{0});
    for (std::size_t shard = 0; shard < shards_; ++shard) {
      std::copy_n(spill_ + shard * spill_words_, spill_words_,
                  fresh + shard * grown);
    }
    spill_ = fresh;
    spill_words_ = grown;
  }

  std::size_t shards_;
  common::Arena& arena_;
  std::uint64_t* word0_;
  std::uint64_t* spill_ = nullptr;
  std::size_t spill_words_ = 0;
};

}  // namespace

const char* ToString(ColoringAlgorithm algorithm) {
  switch (algorithm) {
    case ColoringAlgorithm::kGreedy:
      return "greedy";
    case ColoringAlgorithm::kWelshPowell:
      return "welsh-powell";
    case ColoringAlgorithm::kDsatur:
      return "dsatur";
  }
  return "?";
}

ColoringResult ColorGraph(const ConflictGraph& graph,
                          ColoringAlgorithm algorithm) {
  const std::size_t n = graph.size();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  ColoringResult result;
  switch (algorithm) {
    case ColoringAlgorithm::kGreedy:
      result = GreedyInOrder(graph, order);
      break;
    case ColoringAlgorithm::kWelshPowell:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return graph.degree(a) > graph.degree(b);
                       });
      result = GreedyInOrder(graph, order);
      break;
    case ColoringAlgorithm::kDsatur:
      result = Dsatur(graph);
      break;
    default:
      SSHARD_CHECK(false && "unknown coloring algorithm");
  }
  result.used = algorithm;
  return result;
}

ColoringResult ColorShardCliques(std::span<const Transaction* const> txns,
                                 ColoringAlgorithm algorithm,
                                 common::Arena& scratch) {
  const std::size_t n = txns.size();
  ColoringResult result;
  // kDsatur has no graph-free equivalent; the Welsh-Powell proxy ordering
  // below is what actually runs, and the result says so.
  result.used = algorithm == ColoringAlgorithm::kDsatur
                    ? ColoringAlgorithm::kWelshPowell
                    : algorithm;
  result.color.assign(n, kUncolored);
  if (n == 0) return result;

  // Destination shards appearing in this batch, remapped to dense indices.
  using ShardIndexMap =
      std::unordered_map<ShardId, std::uint32_t, std::hash<ShardId>,
                         std::equal_to<ShardId>,
                         common::ArenaAllocator<
                             std::pair<const ShardId, std::uint32_t>>>;
  ShardIndexMap shard_index(
      /*bucket_count=*/16, std::hash<ShardId>{}, std::equal_to<ShardId>{},
      common::ArenaAllocator<std::pair<const ShardId, std::uint32_t>>(
          &scratch));
  common::ArenaVector<std::uint64_t> shard_load{
      common::ArenaAllocator<std::uint64_t>(&scratch)};
  std::size_t total_dests = 0;
  for (const Transaction* txn : txns) {
    total_dests += txn->destinations().size();
    for (const ShardId shard : txn->destinations()) {
      const auto [it, inserted] =
          shard_index.try_emplace(shard, shard_index.size());
      if (inserted) shard_load.push_back(0);
      ++shard_load[it->second];
    }
  }

  // Per-transaction dense destination indices, CSR-style, so the inner
  // union loop walks a flat slice instead of re-hashing shard ids.
  std::uint32_t* dest_offsets = scratch.AllocateArray<std::uint32_t>(n + 1);
  std::uint32_t* dests = scratch.AllocateArray<std::uint32_t>(total_dests);
  dest_offsets[0] = 0;
  for (std::size_t v = 0; v < n; ++v) {
    std::uint32_t cursor = dest_offsets[v];
    for (const ShardId shard : txns[v]->destinations()) {
      dests[cursor++] = shard_index.find(shard)->second;
    }
    dest_offsets[v + 1] = cursor;
  }

  std::uint32_t* order = scratch.AllocateArray<std::uint32_t>(n);
  std::iota(order, order + n, 0);
  if (algorithm != ColoringAlgorithm::kGreedy) {
    // Clique-degree proxy: a transaction conflicts with at most
    // sum(shard_load - 1) others; order descending (Welsh-Powell).
    std::uint64_t* proxy = scratch.AllocateArray<std::uint64_t>(n);
    for (std::size_t v = 0; v < n; ++v) {
      proxy[v] = 0;
      for (std::uint32_t d = dest_offsets[v]; d < dest_offsets[v + 1]; ++d) {
        proxy[v] += shard_load[dests[d]] - 1;
      }
    }
    std::stable_sort(order, order + n,
                     [&](std::uint32_t a, std::uint32_t b) {
                       return proxy[a] > proxy[b];
                     });
  }

  // A color is free for a transaction iff no destination shard has used it:
  // the smallest such color is the first zero bit of the OR of the
  // destination shards' bitsets — identical to the old per-color mark scan.
  ShardColorMarks marks(shard_load.size(), scratch);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t v = order[i];
    Color chosen = 0;
    for (std::size_t w = 0;; ++w) {
      std::uint64_t merged = 0;
      for (std::uint32_t d = dest_offsets[v]; d < dest_offsets[v + 1]; ++d) {
        merged |= marks.word(dests[d], w);
      }
      if (merged != kAllOnes) {
        chosen = static_cast<Color>(64 * w + std::countr_one(merged));
        break;
      }
    }
    result.color[v] = chosen;
    result.num_colors = std::max(result.num_colors, chosen + 1);
    for (std::uint32_t d = dest_offsets[v]; d < dest_offsets[v + 1]; ++d) {
      marks.set(dests[d], chosen);
    }
  }
  return result;
}

ColoringResult ColorShardCliques(std::span<const Transaction* const> txns,
                                 ColoringAlgorithm algorithm) {
  common::Arena scratch;
  return ColorShardCliques(txns, algorithm, scratch);
}

bool IsProperShardColoring(std::span<const Transaction* const> txns,
                           const std::vector<Color>& color) {
  if (color.size() != txns.size()) return false;
  std::unordered_map<ShardId, ColorSet> seen;  // shard -> colors taken
  for (std::size_t v = 0; v < txns.size(); ++v) {
    if (color[v] == kUncolored) return false;
    for (const ShardId shard : txns[v]->destinations()) {
      if (!seen[shard].insert(color[v])) return false;
    }
  }
  return true;
}

bool IsProperColoring(const ConflictGraph& graph,
                      const std::vector<Color>& color) {
  if (color.size() != graph.size()) return false;
  for (std::size_t v = 0; v < graph.size(); ++v) {
    if (color[v] == kUncolored) return false;
    for (const std::uint32_t u : graph.neighbors(v)) {
      if (color[u] == color[v]) return false;
    }
  }
  return true;
}

}  // namespace stableshard::txn
