#include "txn/conflict_graph.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "common/check.h"

namespace stableshard::txn {

namespace {

/// Account-granularity inverted index: account -> (readers, writers).
struct AccountUsers {
  std::vector<std::uint32_t> readers;
  std::vector<std::uint32_t> writers;
};

std::unordered_map<AccountId, AccountUsers> BuildAccountIndex(
    const std::vector<const Transaction*>& txns) {
  std::unordered_map<AccountId, AccountUsers> users;
  for (std::size_t v = 0; v < txns.size(); ++v) {
    for (const Transaction::Access& access : txns[v]->accesses()) {
      AccountUsers& u = users[access.account];
      (access.write ? u.writers : u.readers)
          .push_back(static_cast<std::uint32_t>(v));
    }
  }
  return users;
}

/// Shard-granularity inverted index: destination shard -> users.
std::unordered_map<ShardId, std::vector<std::uint32_t>> BuildShardIndex(
    const std::vector<const Transaction*>& txns) {
  std::unordered_map<ShardId, std::vector<std::uint32_t>> users;
  for (std::size_t v = 0; v < txns.size(); ++v) {
    for (const ShardId shard : txns[v]->destinations()) {
      users[shard].push_back(static_cast<std::uint32_t>(v));
    }
  }
  return users;
}

}  // namespace

ConflictGraph::ConflictGraph(const std::vector<const Transaction*>& txns,
                             ConflictGranularity granularity) {
  const std::size_t n = txns.size();
  SSHARD_CHECK(n <= UINT32_MAX);
  ids_.resize(n);
  for (std::size_t v = 0; v < n; ++v) ids_[v] = txns[v]->id();
  offsets_.assign(n + 1, 0);

  // Pass 1 (count): candidate-neighbor count per vertex, duplicates
  // included — two transactions sharing several accounts/shards are
  // counted once per share, exactly the entries pass 2 will write.
  if (granularity == ConflictGranularity::kShard) {
    const auto users = BuildShardIndex(txns);
    // lint:allow(unordered-iteration): rows are sorted/deduped below.
    for (const auto& [shard, list] : users) {
      (void)shard;
      for (const std::uint32_t v : list) {
        offsets_[v + 1] += list.size() - 1;
      }
    }
    // offsets_[v] = first candidate slot of vertex v (exclusive scan).
    for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
    neighbors_.resize(offsets_[n]);

    // Pass 2 (fill): every same-shard pair, both directions.
    std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
    // lint:allow(unordered-iteration): rows are sorted/deduped below.
    for (const auto& [shard, list] : users) {
      (void)shard;
      for (std::size_t i = 0; i < list.size(); ++i) {
        for (std::size_t j = i + 1; j < list.size(); ++j) {
          neighbors_[cursor[list[i]]++] = list[j];
          neighbors_[cursor[list[j]]++] = list[i];
        }
      }
    }
  } else {
    // Account granularity: shared account with >= 1 write — writer-writer
    // and writer-reader pairs conflict.
    const auto users = BuildAccountIndex(txns);
    // lint:allow(unordered-iteration): rows are sorted/deduped below.
    for (const auto& [account, u] : users) {
      (void)account;
      for (const std::uint32_t w : u.writers) {
        offsets_[w + 1] += (u.writers.size() - 1) + u.readers.size();
      }
      for (const std::uint32_t r : u.readers) {
        offsets_[r + 1] += u.writers.size();
      }
    }
    for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
    neighbors_.resize(offsets_[n]);

    std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
    // lint:allow(unordered-iteration): rows are sorted/deduped below.
    for (const auto& [account, u] : users) {
      (void)account;
      for (std::size_t i = 0; i < u.writers.size(); ++i) {
        for (std::size_t j = i + 1; j < u.writers.size(); ++j) {
          neighbors_[cursor[u.writers[i]]++] = u.writers[j];
          neighbors_[cursor[u.writers[j]]++] = u.writers[i];
        }
        for (const std::uint32_t reader : u.readers) {
          neighbors_[cursor[u.writers[i]]++] = reader;
          neighbors_[cursor[reader]++] = u.writers[i];
        }
      }
    }
  }

  // Sort + deduplicate each row and compact the flat array (the write
  // cursor never overtakes a row's unread candidates — dedup only
  // shrinks). Sorted adjacency is a class invariant: HasEdge
  // binary-searches it, which keeps serializability checks O(log d) per
  // probe on burst epochs.
  //
  // Small rows sort in place; dense rows (burst epochs produce near-clique
  // rows with thousands of duplicate candidates) mark an n-bit bitmap and
  // emit its set bits in index order — already sorted and deduplicated,
  // O(candidates + touched words) instead of O(d log d). The bitmap is
  // zeroed again during emission, so it costs one allocation per build.
  std::vector<std::uint64_t> bitmap((n + 63) / 64, 0);
  constexpr std::size_t kSortedRowMax = 32;
  std::size_t write = 0;
  std::size_t row_begin = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t row_end = offsets_[v + 1];
    offsets_[v] = write;
    if (row_end - row_begin <= kSortedRowMax) {
      const auto begin = neighbors_.begin() + row_begin;
      const auto end = neighbors_.begin() + row_end;
      std::sort(begin, end);
      const auto unique_end = std::unique(begin, end);
      write = std::copy(begin, unique_end, neighbors_.begin() + write) -
              neighbors_.begin();
    } else {
      std::size_t min_word = bitmap.size();
      std::size_t max_word = 0;
      for (std::size_t i = row_begin; i < row_end; ++i) {
        const std::uint32_t u = neighbors_[i];
        const std::size_t w = u >> 6;
        bitmap[w] |= std::uint64_t{1} << (u & 63);
        min_word = std::min(min_word, w);
        max_word = std::max(max_word, w);
      }
      // Emission may overwrite the candidate slots just read — safe, the
      // bitmap already holds the row.
      for (std::size_t w = min_word; w <= max_word; ++w) {
        std::uint64_t word = bitmap[w];
        bitmap[w] = 0;
        while (word != 0) {
          const auto bit = static_cast<std::uint32_t>(std::countr_zero(word));
          word &= word - 1;
          neighbors_[write++] = static_cast<std::uint32_t>(64 * w) + bit;
        }
      }
    }
    row_begin = row_end;
  }
  offsets_[n] = write;
  neighbors_.resize(write);
  neighbors_.shrink_to_fit();
  edge_count_ = write / 2;
}

std::size_t ConflictGraph::MaxDegree() const {
  std::size_t max_degree = 0;
  for (std::size_t v = 0; v + 1 < offsets_.size(); ++v) {
    max_degree = std::max(max_degree, offsets_[v + 1] - offsets_[v]);
  }
  return max_degree;
}

bool ConflictGraph::HasEdge(std::size_t a, std::size_t b) const {
  const auto adj = neighbors(a);
  SSHARD_DCHECK(std::is_sorted(adj.begin(), adj.end()));
  return std::binary_search(adj.begin(), adj.end(),
                            static_cast<std::uint32_t>(b));
}

std::vector<std::vector<std::uint32_t>> BuildLegacyAdjacency(
    const std::vector<const Transaction*>& txns,
    ConflictGranularity granularity) {
  const std::size_t n = txns.size();
  SSHARD_CHECK(n <= UINT32_MAX);
  std::vector<std::vector<std::uint32_t>> adjacency(n);

  if (granularity == ConflictGranularity::kShard) {
    const auto users = BuildShardIndex(txns);
    // lint:allow(unordered-iteration): rows are sorted/deduped below.
    for (const auto& [shard, list] : users) {
      (void)shard;
      for (std::size_t i = 0; i < list.size(); ++i) {
        for (std::size_t j = i + 1; j < list.size(); ++j) {
          adjacency[list[i]].push_back(list[j]);
          adjacency[list[j]].push_back(list[i]);
        }
      }
    }
  } else {
    const auto users = BuildAccountIndex(txns);
    // lint:allow(unordered-iteration): rows are sorted/deduped below.
    for (const auto& [account, u] : users) {
      (void)account;
      for (std::size_t i = 0; i < u.writers.size(); ++i) {
        for (std::size_t j = i + 1; j < u.writers.size(); ++j) {
          adjacency[u.writers[i]].push_back(u.writers[j]);
          adjacency[u.writers[j]].push_back(u.writers[i]);
        }
        for (const std::uint32_t reader : u.readers) {
          adjacency[u.writers[i]].push_back(reader);
          adjacency[reader].push_back(u.writers[i]);
        }
      }
    }
  }

  for (auto& adj : adjacency) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
  return adjacency;
}

}  // namespace stableshard::txn
