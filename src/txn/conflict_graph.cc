#include "txn/conflict_graph.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace stableshard::txn {

ConflictGraph::ConflictGraph(const std::vector<const Transaction*>& txns,
                             ConflictGranularity granularity) {
  const std::size_t n = txns.size();
  SSHARD_CHECK(n <= UINT32_MAX);
  adjacency_.resize(n);
  ids_.resize(n);
  for (std::size_t v = 0; v < n; ++v) ids_[v] = txns[v]->id();

  if (granularity == ConflictGranularity::kShard) {
    // Any two transactions sharing a destination shard conflict (unit shard
    // capacity). Inverted index: shard -> users.
    std::unordered_map<ShardId, std::vector<std::uint32_t>> users;
    for (std::size_t v = 0; v < n; ++v) {
      for (const ShardId shard : txns[v]->destinations()) {
        users[shard].push_back(static_cast<std::uint32_t>(v));
      }
    }
    for (const auto& [shard, list] : users) {
      (void)shard;
      for (std::size_t i = 0; i < list.size(); ++i) {
        for (std::size_t j = i + 1; j < list.size(); ++j) {
          adjacency_[list[i]].push_back(list[j]);
          adjacency_[list[j]].push_back(list[i]);
        }
      }
    }
  } else {
    // Account granularity: shared account with >= 1 write.
    // Inverted index: account -> (readers, writers) vertex lists.
    struct AccountUsers {
      std::vector<std::uint32_t> readers;
      std::vector<std::uint32_t> writers;
    };
    std::unordered_map<AccountId, AccountUsers> users;
    for (std::size_t v = 0; v < n; ++v) {
      for (const Transaction::Access& access : txns[v]->accesses()) {
        AccountUsers& u = users[access.account];
        (access.write ? u.writers : u.readers)
            .push_back(static_cast<std::uint32_t>(v));
      }
    }

    // writer-writer and writer-reader pairs conflict.
    for (const auto& [account, u] : users) {
      (void)account;
      for (std::size_t i = 0; i < u.writers.size(); ++i) {
        for (std::size_t j = i + 1; j < u.writers.size(); ++j) {
          adjacency_[u.writers[i]].push_back(u.writers[j]);
          adjacency_[u.writers[j]].push_back(u.writers[i]);
        }
        for (const std::uint32_t reader : u.readers) {
          adjacency_[u.writers[i]].push_back(reader);
          adjacency_[reader].push_back(u.writers[i]);
        }
      }
    }
  }

  // Sort + deduplicate (two txns may share several accounts). Sorted
  // adjacency is a class invariant: HasEdge binary-searches it, which keeps
  // serializability checks O(log d) per probe on burst epochs.
  for (std::size_t v = 0; v < n; ++v) {
    auto& adj = adjacency_[v];
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    edge_count_ += adj.size();
  }
  edge_count_ /= 2;
}

std::size_t ConflictGraph::MaxDegree() const {
  std::size_t max_degree = 0;
  for (const auto& adj : adjacency_) {
    max_degree = std::max(max_degree, adj.size());
  }
  return max_degree;
}

bool ConflictGraph::HasEdge(std::size_t a, std::size_t b) const {
  const auto& adj = adjacency_[a];
  SSHARD_DCHECK(std::is_sorted(adj.begin(), adj.end()));
  return std::binary_search(adj.begin(), adj.end(),
                            static_cast<std::uint32_t>(b));
}

}  // namespace stableshard::txn
