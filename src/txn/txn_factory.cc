#include "txn/txn_factory.h"

#include <map>

#include "common/check.h"

namespace stableshard::txn {

Transaction TxnFactory::Make(ShardId home, Round injected,
                             const std::vector<AccessSpec>& accesses) {
  SSHARD_CHECK(home < accounts_->shard_count());
  SSHARD_CHECK(!accesses.empty());
  std::map<ShardId, SubTransaction> by_shard;
  for (const AccessSpec& spec : accesses) {
    const ShardId owner = accounts_->OwnerOf(spec.account);
    SubTransaction& sub = by_shard[owner];
    sub.destination = owner;
    if (spec.has_condition) {
      sub.conditions.push_back(spec.condition);
    }
    if (spec.action.kind != chain::ActionKind::kNone || !spec.has_condition) {
      chain::Action action = spec.action;
      action.account = spec.account;
      sub.actions.push_back(action);
    }
  }
  std::vector<SubTransaction> subs;
  subs.reserve(by_shard.size());
  for (auto& [shard, sub] : by_shard) {
    (void)shard;
    subs.push_back(std::move(sub));
  }
  return Transaction(next_id_++, home, injected, std::move(subs));
}

Transaction TxnFactory::MakeTouch(ShardId home, Round injected,
                                  const std::vector<AccountId>& accounts) {
  std::vector<AccessSpec> accesses;
  accesses.reserve(accounts.size());
  for (const AccountId account : accounts) {
    AccessSpec spec;
    spec.account = account;
    spec.write = true;
    spec.action = {account, chain::ActionKind::kDeposit, 0};
    accesses.push_back(spec);
  }
  return Make(home, injected, accesses);
}

Transaction TxnFactory::MakeTransfer(ShardId home, Round injected,
                                     AccountId from, AccountId to,
                                     chain::Balance amount,
                                     chain::Balance min_balance) {
  std::vector<AccessSpec> accesses;
  {
    AccessSpec spec;
    spec.account = from;
    spec.write = true;
    spec.has_condition = true;
    spec.condition = {from, chain::CmpOp::kGe, min_balance};
    spec.action = {from, chain::ActionKind::kWithdraw, amount};
    accesses.push_back(spec);
  }
  {
    AccessSpec spec;
    spec.account = to;
    spec.write = true;
    spec.action = {to, chain::ActionKind::kDeposit, amount};
    accesses.push_back(spec);
  }
  return Make(home, injected, accesses);
}

}  // namespace stableshard::txn
