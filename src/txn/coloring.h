// Vertex colorings of the conflict graph.
//
// Both schedulers need a proper coloring with at most Delta+1 colors
// (Lemma 1's epoch-length argument only relies on the greedy Delta+1
// guarantee). The paper's simulation uses "a simple greedy coloring"; we
// also provide Welsh-Powell (largest-degree-first greedy) and DSATUR as
// ablation alternatives — fewer colors shorten Phase 3 by 4 rounds per
// color saved.
//
// Color tracking: DSATUR and the shard-clique coloring use uint64_t bitset
// words (saturation is a popcount; "smallest free color" is a word-wise OR
// plus a count of trailing ones instead of a per-color scan), while plain
// greedy keeps stamped mark stores — marking must stay a pure store, and
// its array is sized by the greedy color bound (MaxDegree + 2) instead of
// n + 1 so burst epochs keep it cache-resident. Every assignment produced
// is bit-identical to the original implementation — same smallest absent
// color from the same neighbor set in the same vertex order (the originals
// survive in bench/micro_components as the "legacy" baselines for
// BENCH_micro.json).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/types.h"
#include "txn/conflict_graph.h"

namespace stableshard::txn {

enum class ColoringAlgorithm : std::uint8_t {
  kGreedy,       ///< vertices in input (txn id) order — the paper's choice
  kWelshPowell,  ///< vertices in decreasing degree order
  kDsatur,       ///< max saturation degree first
};

const char* ToString(ColoringAlgorithm algorithm);

struct ColoringResult {
  std::vector<Color> color;   ///< per-vertex color, 0-based
  std::uint32_t num_colors = 0;
  /// The algorithm that actually ran. ColorGraph always honors the request;
  /// ColorShardCliques cannot run true DSATUR without the explicit graph
  /// and falls back to kWelshPowell — that fallback is recorded here
  /// instead of being silent, so callers (e.g. bench/ablation_coloring)
  /// can label the row with what really executed.
  ColoringAlgorithm used = ColoringAlgorithm::kGreedy;
};

/// Colors `graph` with the chosen algorithm. The result is always a proper
/// coloring; kGreedy and kWelshPowell use at most MaxDegree()+1 colors,
/// kDsatur at most that as well (usually fewer).
ColoringResult ColorGraph(const ConflictGraph& graph,
                          ColoringAlgorithm algorithm);

/// Shard-granularity coloring without materializing the conflict graph.
///
/// The shard-granularity conflict graph is a union of per-shard cliques, so
/// a proper coloring only needs, per transaction, the smallest color unused
/// by any transaction sharing one of its destination shards — the first
/// zero bit in the OR of its destination shards' color bitsets. This
/// matters for the paper's burst workloads (b = 3000 preloads tens of
/// thousands of transactions; the explicit clique-union graph would have
/// ~10^8 edges).
///
/// kGreedy orders by input (id) order; kWelshPowell orders by decreasing
/// clique-degree proxy (sum over destinations of the shard's transaction
/// count); kDsatur falls back to kWelshPowell (true DSATUR needs the
/// explicit graph — use ColorGraph for small instances / ablations) and
/// reports the fallback via ColoringResult::used. Colors used <= Delta + 1
/// where Delta is the max vertex degree of the clique-union graph (the
/// greedy bound Lemma 1 relies on).
///
/// The `scratch` overload bump-allocates all internal scratch (ordering
/// arrays, shard color bitsets) from the caller's arena — the schedulers
/// pass their per-round arena so steady-state epochs allocate nothing.
/// The arena is used as-is (not Reset here); scratch is dead on return.
ColoringResult ColorShardCliques(std::span<const Transaction* const> txns,
                                 ColoringAlgorithm algorithm,
                                 common::Arena& scratch);
ColoringResult ColorShardCliques(std::span<const Transaction* const> txns,
                                 ColoringAlgorithm algorithm);

/// Proper-coloring check at shard granularity without a graph.
bool IsProperShardColoring(std::span<const Transaction* const> txns,
                           const std::vector<Color>& color);

/// Verification helper (tests, debug): proper iff no edge is monochromatic.
bool IsProperColoring(const ConflictGraph& graph,
                      const std::vector<Color>& color);

}  // namespace stableshard::txn
