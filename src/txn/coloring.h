// Vertex colorings of the conflict graph.
//
// Both schedulers need a proper coloring with at most Delta+1 colors
// (Lemma 1's epoch-length argument only relies on the greedy Delta+1
// guarantee). The paper's simulation uses "a simple greedy coloring"; we
// also provide Welsh-Powell (largest-degree-first greedy) and DSATUR as
// ablation alternatives — fewer colors shorten Phase 3 by 4 rounds per
// color saved.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "txn/conflict_graph.h"

namespace stableshard::txn {

enum class ColoringAlgorithm : std::uint8_t {
  kGreedy,       ///< vertices in input (txn id) order — the paper's choice
  kWelshPowell,  ///< vertices in decreasing degree order
  kDsatur,       ///< max saturation degree first
};

const char* ToString(ColoringAlgorithm algorithm);

struct ColoringResult {
  std::vector<Color> color;   ///< per-vertex color, 0-based
  std::uint32_t num_colors = 0;
};

/// Colors `graph` with the chosen algorithm. The result is always a proper
/// coloring; kGreedy and kWelshPowell use at most MaxDegree()+1 colors,
/// kDsatur at most that as well (usually fewer).
ColoringResult ColorGraph(const ConflictGraph& graph,
                          ColoringAlgorithm algorithm);

/// Shard-granularity coloring without materializing the conflict graph.
///
/// The shard-granularity conflict graph is a union of per-shard cliques, so
/// a proper coloring only needs, per transaction, the smallest color unused
/// by any transaction sharing one of its destination shards — computable
/// with per-(shard, color) marks in O(n * k * colors) time and O(s * colors)
/// space. This matters for the paper's burst workloads (b = 3000 preloads
/// tens of thousands of transactions; the explicit clique-union graph would
/// have ~10^8 edges).
///
/// kGreedy orders by input (id) order; kWelshPowell orders by decreasing
/// clique-degree proxy (sum over destinations of the shard's transaction
/// count); kDsatur falls back to kWelshPowell (true DSATUR needs the
/// explicit graph — use ColorGraph for small instances / ablations).
/// Colors used <= Delta + 1 where Delta is the max vertex degree of the
/// clique-union graph (the greedy bound Lemma 1 relies on).
ColoringResult ColorShardCliques(const std::vector<const Transaction*>& txns,
                                 ColoringAlgorithm algorithm);

/// Proper-coloring check at shard granularity without a graph.
bool IsProperShardColoring(const std::vector<const Transaction*>& txns,
                           const std::vector<Color>& color);

/// Verification helper (tests, debug): proper iff no edge is monochromatic.
bool IsProperColoring(const ConflictGraph& graph,
                      const std::vector<Color>& color);

}  // namespace stableshard::txn
