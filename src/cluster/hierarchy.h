// Hierarchical cluster decomposition of the shard graph (paper Section 6.1).
//
// The FDS scheduler uses a hierarchy of H1 = ceil(log D) + 1 layers; each
// layer l is a sparse cover of G_s organized in H2 sub-layers such that:
//   (i)  every cluster of layer l has strong diameter O(2^l log s);
//   (ii) each shard belongs to O(log s) clusters of layer l;
//   (iii) for every shard S there is a layer-l cluster containing the whole
//         (2^l - 1)-neighborhood of S.
// Within each cluster a leader shard is designated whose (2^l - 1)-
// neighborhood lies inside the cluster; leaderless clusters are never used
// as home clusters (paper Section 6.1).
//
// Two constructions are provided:
//  * BuildLineShifted — the construction used in the paper's simulation
//    (Section 7): layer-l clusters are contiguous index intervals of
//    2^{l+1} shards; the second sub-layer shifts the partition right by
//    half a cluster. Intended for the line topology (it relies on shard
//    indices tracking positions).
//  * BuildSparseCover — a generic net-based cover for arbitrary metrics:
//    layer-l cluster centers form a greedy 2^l-net and each cluster is the
//    ball B(center, 2^{l+1} - 1), which contains every member's
//    (2^l - 1)-neighborhood center-wise; property (iii) holds by the net
//    property, and the center is always a valid leader.
//
// Property (iii) caveat for the shifted-line construction: with only two
// sub-layers, interior shards near cluster boundaries of high layers may
// have their (2^l - 1)-neighborhood split across clusters. The home-cluster
// lookup (FindHomeCluster) then simply falls through to a higher layer, so
// correctness is unaffected; this mirrors the paper's own simulation setup.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "net/metric.h"

namespace stableshard::cluster {

struct Cluster {
  std::uint32_t id = 0;        ///< index into Hierarchy::clusters()
  std::uint32_t layer = 0;     ///< l in [0, H1)
  std::uint32_t sublayer = 0;  ///< j in [0, H2)
  std::vector<ShardId> shards; ///< members, ascending
  std::vector<bool> member;    ///< size s bitmap for O(1) Contains
  ShardId leader = kInvalidShard;
  Distance diameter = 0;       ///< strong (induced) diameter
  /// Full-membership top-layer root (one of `top_roots` interchangeable
  /// copies): FindHomeCluster spreads diameter-spanning transactions across
  /// these instead of funneling everything through one of them.
  bool top_root = false;

  bool HasLeader() const { return leader != kInvalidShard; }
  bool Contains(ShardId shard) const { return member[shard]; }
  std::size_t size() const { return shards.size(); }
};

class Hierarchy {
 public:
  /// Paper-Section-7 construction for line-like topologies (see header).
  /// `top_roots` (>= 1, clamped to the shard count) is the number of
  /// full-membership top-layer root clusters: with 1 the construction is
  /// exactly the single-top hierarchy; with k > 1 the top cover is split
  /// into k interchangeable roots with pairwise-distinct leader shards, so
  /// diameter-spanning transactions no longer degenerate onto one leader.
  static Hierarchy BuildLineShifted(const net::ShardMetric& metric,
                                    std::uint32_t top_roots = 1);

  /// Generic net-based sparse cover for arbitrary metrics (same
  /// `top_roots` contract as BuildLineShifted).
  static Hierarchy BuildSparseCover(const net::ShardMetric& metric,
                                    std::uint32_t top_roots = 1);

  const std::vector<Cluster>& clusters() const { return clusters_; }
  std::uint32_t layer_count() const { return layer_count_; }      ///< H1
  std::uint32_t sublayer_count() const { return sublayer_count_; } ///< H2

  /// Max cluster diameter at a layer (the d_i of Lemma 2; >= 1).
  Distance layer_diameter(std::uint32_t layer) const;

  /// Clusters containing `shard`, ordered by (layer, sublayer, id).
  const std::vector<std::uint32_t>& clusters_containing(ShardId shard) const;

  /// The home cluster for a transaction whose home shard is `home` and whose
  /// farthest accessed shard is at distance `x`: the lowest (layer, sublayer)
  /// cluster that contains the whole x-neighborhood of `home` and has a
  /// leader. Never fails: the top layer has a full-membership cluster.
  /// When the scan lands on a top-layer root and the hierarchy was built
  /// with top_roots > 1, the returned root is chosen deterministically by
  /// (home + salt) mod top_roots — callers pass a per-transaction salt
  /// (e.g. the txn id) so diameter-spanning load hashes across the roots
  /// instead of piling onto the first one. All roots are full-membership
  /// and leadered, so any choice is sound.
  const Cluster& FindHomeCluster(ShardId home, Distance x,
                                 std::uint64_t salt = 0) const;

  /// Ids of the full-membership top-layer roots (size >= 1 after Finalize).
  const std::vector<std::uint32_t>& top_roots() const { return top_roots_; }

  /// Max number of layer-`layer` clusters any single shard belongs to
  /// (property (ii) observable).
  std::uint32_t MaxMembership(std::uint32_t layer) const;

  const net::ShardMetric& metric() const { return *metric_; }

 private:
  explicit Hierarchy(const net::ShardMetric& metric);

  void AddCluster(std::uint32_t layer, std::uint32_t sublayer,
                  std::vector<ShardId> shards);
  /// Sort per-shard cluster lists, ensure a leadered top cluster exists and
  /// split the top cover into `top_roots` roots (see BuildLineShifted).
  void Finalize(std::uint32_t top_roots);

  const net::ShardMetric* metric_;
  std::uint32_t layer_count_ = 0;
  std::uint32_t sublayer_count_ = 0;
  std::vector<Cluster> clusters_;
  std::vector<std::vector<std::uint32_t>> containing_;  // shard -> cluster ids
  std::vector<std::uint32_t> top_roots_;                // root cluster ids
  /// Construction-time scratch for the leader-placement spread: per layer,
  /// which shards already lead a cluster of that layer (AddCluster avoids
  /// them when the cluster has an untaken qualifying candidate).
  std::vector<std::vector<std::uint8_t>> leads_in_layer_;
};

}  // namespace stableshard::cluster
