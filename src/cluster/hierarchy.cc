#include "cluster/hierarchy.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"

namespace stableshard::cluster {

namespace {

/// A shard qualifies as leader of a layer-l cluster iff its (2^l - 1)-
/// neighborhood is contained in the cluster (Section 6.1).
ShardId PickLeader(const net::ShardMetric& metric, const Cluster& cluster,
                   std::uint32_t layer) {
  const Distance radius =
      layer >= 31 ? std::numeric_limits<Distance>::max() / 2
                  : static_cast<Distance>((1u << layer) - 1);
  for (const ShardId candidate : cluster.shards) {
    bool contained = true;
    for (const ShardId other : metric.Neighborhood(candidate, radius)) {
      if (!cluster.Contains(other)) {
        contained = false;
        break;
      }
    }
    if (contained) return candidate;
  }
  return kInvalidShard;
}

}  // namespace

Hierarchy::Hierarchy(const net::ShardMetric& metric)
    : metric_(&metric), containing_(metric.shard_count()) {}

void Hierarchy::AddCluster(std::uint32_t layer, std::uint32_t sublayer,
                           std::vector<ShardId> shards) {
  SSHARD_CHECK(!shards.empty());
  Cluster cluster;
  cluster.id = static_cast<std::uint32_t>(clusters_.size());
  cluster.layer = layer;
  cluster.sublayer = sublayer;
  cluster.member.assign(metric_->shard_count(), false);
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  for (const ShardId shard : shards) {
    SSHARD_CHECK(shard < metric_->shard_count());
    cluster.member[shard] = true;
  }
  cluster.shards = std::move(shards);
  cluster.diameter = metric_->SubsetDiameter(cluster.shards);
  cluster.leader = PickLeader(*metric_, cluster, layer);
  for (const ShardId shard : cluster.shards) {
    containing_[shard].push_back(cluster.id);
  }
  clusters_.push_back(std::move(cluster));
}

void Hierarchy::Finalize() {
  // Guarantee a full-membership, leadered cluster exists so FindHomeCluster
  // always succeeds (the top of the hierarchy).
  const ShardId s = metric_->shard_count();
  bool have_top = false;
  for (const Cluster& cluster : clusters_) {
    if (cluster.HasLeader() && cluster.size() == s) {
      have_top = true;
      break;
    }
  }
  if (!have_top) {
    std::vector<ShardId> all(s);
    for (ShardId i = 0; i < s; ++i) all[i] = i;
    AddCluster(layer_count_, 0, std::move(all));
    // The whole graph trivially contains any neighborhood, but PickLeader
    // used radius 2^layer - 1; with the full set every shard qualifies, so
    // a leader was found.
    SSHARD_CHECK(clusters_.back().HasLeader());
    ++layer_count_;
  }
  // Per-shard cluster lists ordered by (layer, sublayer, id) so the home
  // cluster scan visits lowest levels first.
  for (auto& list : containing_) {
    std::sort(list.begin(), list.end(), [this](std::uint32_t a,
                                               std::uint32_t b) {
      const Cluster& ca = clusters_[a];
      const Cluster& cb = clusters_[b];
      if (ca.layer != cb.layer) return ca.layer < cb.layer;
      if (ca.sublayer != cb.sublayer) return ca.sublayer < cb.sublayer;
      return ca.id < cb.id;
    });
  }
}

Hierarchy Hierarchy::BuildLineShifted(const net::ShardMetric& metric) {
  Hierarchy h(metric);
  const ShardId s = metric.shard_count();
  // Layers 0..H1-1 with cluster size min(s, 2^{l+1}); the top layer is the
  // first whose clusters span every shard.
  std::uint32_t layers = 1;
  while ((std::uint64_t{2} << (layers - 1)) < s) ++layers;  // 2^layers >= s
  h.layer_count_ = layers;
  h.sublayer_count_ = 2;
  for (std::uint32_t l = 0; l < layers; ++l) {
    const std::uint64_t size = std::min<std::uint64_t>(s, 2ull << l);
    // Sub-layer 0: aligned intervals [m*size, (m+1)*size).
    for (std::uint64_t start = 0; start < s; start += size) {
      std::vector<ShardId> shards;
      for (std::uint64_t i = start; i < std::min<std::uint64_t>(s, start + size);
           ++i) {
        shards.push_back(static_cast<ShardId>(i));
      }
      h.AddCluster(l, 0, std::move(shards));
    }
    // Sub-layer 1: shifted right by half a cluster (paper Section 7). Only
    // meaningful when the shift is non-trivial and clusters don't already
    // cover everything in one piece.
    const std::uint64_t half = size / 2;
    if (half >= 1 && size < s) {
      for (std::uint64_t start = 0; start < s;
           start = (start == 0 ? half : start + size)) {
        std::vector<ShardId> shards;
        const std::uint64_t end =
            std::min<std::uint64_t>(s, start == 0 ? half : start + size);
        for (std::uint64_t i = start; i < end; ++i) {
          shards.push_back(static_cast<ShardId>(i));
        }
        h.AddCluster(l, 1, std::move(shards));
      }
    }
  }
  h.Finalize();
  return h;
}

Hierarchy Hierarchy::BuildSparseCover(const net::ShardMetric& metric) {
  Hierarchy h(metric);
  const ShardId s = metric.shard_count();
  const Distance diameter = metric.Diameter();
  const std::uint32_t layers =
      diameter == 0 ? 1 : CeilLog2(std::uint64_t{diameter} + 1) + 1;
  h.layer_count_ = layers;
  h.sublayer_count_ = std::max<std::uint32_t>(1, CeilLog2(s) + 1);

  for (std::uint32_t l = 0; l < layers; ++l) {
    const Distance net_radius = static_cast<Distance>(1u << l);  // 2^l
    const Distance ball_radius =
        static_cast<Distance>((2u << l) - 1);  // 2^{l+1} - 1
    // Greedy 2^l-net: centers pairwise more than 2^l apart; every shard is
    // within 2^l of some center.
    std::vector<ShardId> centers;
    for (ShardId candidate = 0; candidate < s; ++candidate) {
      bool covered = false;
      for (const ShardId center : centers) {
        if (metric.distance(candidate, center) <= net_radius) {
          covered = true;
          break;
        }
      }
      if (!covered) centers.push_back(candidate);
    }
    // One ball cluster per center; sub-layer by center rank. The center's
    // (2^l - 1)-neighborhood is inside the ball, so it is a valid leader.
    for (std::size_t rank = 0; rank < centers.size(); ++rank) {
      const std::uint32_t sublayer =
          static_cast<std::uint32_t>(rank % h.sublayer_count_);
      h.AddCluster(l, sublayer,
                   metric.Neighborhood(centers[rank], ball_radius));
      SSHARD_CHECK(h.clusters_.back().HasLeader());
    }
  }
  h.Finalize();
  return h;
}

Distance Hierarchy::layer_diameter(std::uint32_t layer) const {
  Distance max_diameter = 1;
  for (const Cluster& cluster : clusters_) {
    if (cluster.layer == layer) {
      max_diameter = std::max(max_diameter, cluster.diameter);
    }
  }
  return max_diameter;
}

const std::vector<std::uint32_t>& Hierarchy::clusters_containing(
    ShardId shard) const {
  SSHARD_CHECK(shard < containing_.size());
  return containing_[shard];
}

const Cluster& Hierarchy::FindHomeCluster(ShardId home, Distance x) const {
  SSHARD_CHECK(home < metric_->shard_count());
  const std::vector<ShardId> neighborhood = metric_->Neighborhood(home, x);
  for (const std::uint32_t id : containing_[home]) {
    const Cluster& cluster = clusters_[id];
    if (!cluster.HasLeader()) continue;
    bool contains_all = true;
    for (const ShardId shard : neighborhood) {
      if (!cluster.Contains(shard)) {
        contains_all = false;
        break;
      }
    }
    if (contains_all) return cluster;
  }
  SSHARD_CHECK(false && "no home cluster found (missing top cluster?)");
  return clusters_.front();
}

std::uint32_t Hierarchy::MaxMembership(std::uint32_t layer) const {
  std::uint32_t max_membership = 0;
  for (ShardId shard = 0; shard < metric_->shard_count(); ++shard) {
    std::uint32_t count = 0;
    for (const std::uint32_t id : containing_[shard]) {
      if (clusters_[id].layer == layer) ++count;
    }
    max_membership = std::max(max_membership, count);
  }
  return max_membership;
}

}  // namespace stableshard::cluster
