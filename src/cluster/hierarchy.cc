#include "cluster/hierarchy.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"

namespace stableshard::cluster {

namespace {

/// All shards qualifying as leader of a layer-l cluster: a shard qualifies
/// iff its (2^l - 1)-neighborhood is contained in the cluster
/// (Section 6.1). Returned in ascending shard order.
std::vector<ShardId> LeaderCandidates(const net::ShardMetric& metric,
                                      const Cluster& cluster,
                                      std::uint32_t layer) {
  const Distance radius =
      layer >= 31 ? std::numeric_limits<Distance>::max() / 2
                  : static_cast<Distance>((1u << layer) - 1);
  std::vector<ShardId> candidates;
  for (const ShardId candidate : cluster.shards) {
    bool contained = true;
    for (const ShardId other : metric.Neighborhood(candidate, radius)) {
      if (!cluster.Contains(other)) {
        contained = false;
        break;
      }
    }
    if (contained) candidates.push_back(candidate);
  }
  return candidates;
}

/// Deterministic spread over the candidate list: a cluster-id-keyed
/// starting index (Fibonacci-hash stride, so consecutive ids land far
/// apart) advanced cyclically past candidates that already lead another
/// cluster of the same layer. The old policy took the *first* candidate,
/// which stacked same-layer colorings of adjacent clusters onto one shard
/// — serializing their Phase-2 work even before the top-layer pathology.
/// A shard leads two clusters of one layer only when every candidate of
/// the later cluster is already taken (pigeonhole-unavoidable), which the
/// cluster_test regression mirrors exactly.
ShardId SpreadLeader(const std::vector<ShardId>& candidates,
                     std::uint32_t cluster_id,
                     const std::vector<std::uint8_t>& taken_in_layer) {
  if (candidates.empty()) return kInvalidShard;
  const std::size_t n = candidates.size();
  const std::size_t start =
      static_cast<std::size_t>(cluster_id * 2654435761u) % n;
  for (std::size_t step = 0; step < n; ++step) {
    const ShardId candidate = candidates[(start + step) % n];
    if (!taken_in_layer[candidate]) return candidate;
  }
  return candidates[start];  // every candidate taken: unavoidable reuse
}

}  // namespace

Hierarchy::Hierarchy(const net::ShardMetric& metric)
    : metric_(&metric), containing_(metric.shard_count()) {}

void Hierarchy::AddCluster(std::uint32_t layer, std::uint32_t sublayer,
                           std::vector<ShardId> shards) {
  SSHARD_CHECK(!shards.empty());
  Cluster cluster;
  cluster.id = static_cast<std::uint32_t>(clusters_.size());
  cluster.layer = layer;
  cluster.sublayer = sublayer;
  cluster.member.assign(metric_->shard_count(), false);
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  for (const ShardId shard : shards) {
    SSHARD_CHECK(shard < metric_->shard_count());
    cluster.member[shard] = true;
  }
  cluster.shards = std::move(shards);
  cluster.diameter = metric_->SubsetDiameter(cluster.shards);
  if (leads_in_layer_.size() <= layer) leads_in_layer_.resize(layer + 1);
  std::vector<std::uint8_t>& taken = leads_in_layer_[layer];
  if (taken.empty()) taken.assign(metric_->shard_count(), 0);
  cluster.leader =
      SpreadLeader(LeaderCandidates(*metric_, cluster, layer), cluster.id,
                   taken);
  if (cluster.HasLeader()) taken[cluster.leader] = 1;
  for (const ShardId shard : cluster.shards) {
    containing_[shard].push_back(cluster.id);
  }
  clusters_.push_back(std::move(cluster));
}

void Hierarchy::Finalize(std::uint32_t top_roots) {
  SSHARD_CHECK(top_roots >= 1 && "hierarchy needs at least one top root");
  // Guarantee a full-membership, leadered cluster exists so FindHomeCluster
  // always succeeds (the top of the hierarchy).
  const ShardId s = metric_->shard_count();
  constexpr auto kNoCluster = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t root0 = kNoCluster;
  for (const Cluster& cluster : clusters_) {
    if (cluster.HasLeader() && cluster.size() == s) {
      root0 = cluster.id;
      break;
    }
  }
  if (root0 == kNoCluster) {
    std::vector<ShardId> all(s);
    for (ShardId i = 0; i < s; ++i) all[i] = i;
    AddCluster(layer_count_, 0, std::move(all));
    // The whole graph trivially contains any neighborhood, but the leader
    // radius is 2^layer - 1; with the full set every shard qualifies, so a
    // leader was found.
    SSHARD_CHECK(clusters_.back().HasLeader());
    root0 = clusters_.back().id;
    ++layer_count_;
  }
  // Split the top cover into `top_roots` interchangeable full-membership
  // roots (clamped to s — more roots than shards cannot have distinct
  // leaders). Each extra root sits alone in a fresh sublayer of the same
  // layer, so sublayer partitioning is preserved; the same-layer leader
  // spread in AddCluster gives the roots pairwise-distinct leaders
  // whenever untaken shards remain at that layer.
  const auto roots = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(top_roots, s));
  clusters_[root0].top_root = true;
  top_roots_.assign(1, root0);
  const std::uint32_t root_layer = clusters_[root0].layer;
  for (std::uint32_t j = 1; j < roots; ++j) {
    std::vector<ShardId> all(s);
    for (ShardId i = 0; i < s; ++i) all[i] = i;
    AddCluster(root_layer, sublayer_count_ + j - 1, std::move(all));
    SSHARD_CHECK(clusters_.back().HasLeader());
    clusters_.back().top_root = true;
    top_roots_.push_back(clusters_.back().id);
  }
  sublayer_count_ += roots - 1;
  leads_in_layer_.clear();  // construction-time scratch
  // Per-shard cluster lists ordered by (layer, sublayer, id) so the home
  // cluster scan visits lowest levels first.
  for (auto& list : containing_) {
    std::sort(list.begin(), list.end(), [this](std::uint32_t a,
                                               std::uint32_t b) {
      const Cluster& ca = clusters_[a];
      const Cluster& cb = clusters_[b];
      if (ca.layer != cb.layer) return ca.layer < cb.layer;
      if (ca.sublayer != cb.sublayer) return ca.sublayer < cb.sublayer;
      return ca.id < cb.id;
    });
  }
}

Hierarchy Hierarchy::BuildLineShifted(const net::ShardMetric& metric,
                                      std::uint32_t top_roots) {
  SSHARD_CHECK(top_roots >= 1 && "top_roots must be positive");
  Hierarchy h(metric);
  const ShardId s = metric.shard_count();
  // Layers 0..H1-1 with cluster size min(s, 2^{l+1}); the top layer is the
  // first whose clusters span every shard.
  std::uint32_t layers = 1;
  while ((std::uint64_t{2} << (layers - 1)) < s) ++layers;  // 2^layers >= s
  h.layer_count_ = layers;
  h.sublayer_count_ = 2;
  for (std::uint32_t l = 0; l < layers; ++l) {
    const std::uint64_t size = std::min<std::uint64_t>(s, 2ull << l);
    // Sub-layer 0: aligned intervals [m*size, (m+1)*size).
    for (std::uint64_t start = 0; start < s; start += size) {
      std::vector<ShardId> shards;
      for (std::uint64_t i = start; i < std::min<std::uint64_t>(s, start + size);
           ++i) {
        shards.push_back(static_cast<ShardId>(i));
      }
      h.AddCluster(l, 0, std::move(shards));
    }
    // Sub-layer 1: shifted right by half a cluster (paper Section 7). Only
    // meaningful when the shift is non-trivial and clusters don't already
    // cover everything in one piece.
    const std::uint64_t half = size / 2;
    if (half >= 1 && size < s) {
      for (std::uint64_t start = 0; start < s;
           start = (start == 0 ? half : start + size)) {
        std::vector<ShardId> shards;
        const std::uint64_t end =
            std::min<std::uint64_t>(s, start == 0 ? half : start + size);
        for (std::uint64_t i = start; i < end; ++i) {
          shards.push_back(static_cast<ShardId>(i));
        }
        h.AddCluster(l, 1, std::move(shards));
      }
    }
  }
  h.Finalize(top_roots);
  return h;
}

Hierarchy Hierarchy::BuildSparseCover(const net::ShardMetric& metric,
                                      std::uint32_t top_roots) {
  SSHARD_CHECK(top_roots >= 1 && "top_roots must be positive");
  Hierarchy h(metric);
  const ShardId s = metric.shard_count();
  const Distance diameter = metric.Diameter();
  const std::uint32_t layers =
      diameter == 0 ? 1 : CeilLog2(std::uint64_t{diameter} + 1) + 1;
  h.layer_count_ = layers;
  h.sublayer_count_ = std::max<std::uint32_t>(1, CeilLog2(s) + 1);

  for (std::uint32_t l = 0; l < layers; ++l) {
    const Distance net_radius = static_cast<Distance>(1u << l);  // 2^l
    const Distance ball_radius =
        static_cast<Distance>((2u << l) - 1);  // 2^{l+1} - 1
    // Greedy 2^l-net: centers pairwise more than 2^l apart; every shard is
    // within 2^l of some center.
    std::vector<ShardId> centers;
    for (ShardId candidate = 0; candidate < s; ++candidate) {
      bool covered = false;
      for (const ShardId center : centers) {
        if (metric.distance(candidate, center) <= net_radius) {
          covered = true;
          break;
        }
      }
      if (!covered) centers.push_back(candidate);
    }
    // One ball cluster per center; sub-layer by center rank. The center's
    // (2^l - 1)-neighborhood is inside the ball, so it is a valid leader.
    for (std::size_t rank = 0; rank < centers.size(); ++rank) {
      const std::uint32_t sublayer =
          static_cast<std::uint32_t>(rank % h.sublayer_count_);
      h.AddCluster(l, sublayer,
                   metric.Neighborhood(centers[rank], ball_radius));
      SSHARD_CHECK(h.clusters_.back().HasLeader());
    }
  }
  h.Finalize(top_roots);
  return h;
}

Distance Hierarchy::layer_diameter(std::uint32_t layer) const {
  Distance max_diameter = 1;
  for (const Cluster& cluster : clusters_) {
    if (cluster.layer == layer) {
      max_diameter = std::max(max_diameter, cluster.diameter);
    }
  }
  return max_diameter;
}

const std::vector<std::uint32_t>& Hierarchy::clusters_containing(
    ShardId shard) const {
  SSHARD_CHECK(shard < containing_.size());
  return containing_[shard];
}

const Cluster& Hierarchy::FindHomeCluster(ShardId home, Distance x,
                                          std::uint64_t salt) const {
  SSHARD_CHECK(home < metric_->shard_count());
  const std::vector<ShardId> neighborhood = metric_->Neighborhood(home, x);
  for (const std::uint32_t id : containing_[home]) {
    const Cluster& cluster = clusters_[id];
    if (!cluster.HasLeader()) continue;
    bool contains_all = true;
    for (const ShardId shard : neighborhood) {
      if (!cluster.Contains(shard)) {
        contains_all = false;
        break;
      }
    }
    if (!contains_all) continue;
    // Top-layer roots are interchangeable full-membership copies: hash the
    // assignment across them so diameter-spanning load spreads instead of
    // piling onto the first root the scan happens to reach.
    if (cluster.top_root && top_roots_.size() > 1) {
      const std::uint64_t pick =
          (static_cast<std::uint64_t>(home) + salt) % top_roots_.size();
      return clusters_[top_roots_[pick]];
    }
    return cluster;
  }
  SSHARD_CHECK(false && "no home cluster found (missing top cluster?)");
  return clusters_.front();
}

std::uint32_t Hierarchy::MaxMembership(std::uint32_t layer) const {
  std::uint32_t max_membership = 0;
  for (ShardId shard = 0; shard < metric_->shard_count(); ++shard) {
    std::uint32_t count = 0;
    for (const std::uint32_t id : containing_[shard]) {
      if (clusters_[id].layer == layer) ++count;
    }
    max_membership = std::max(max_membership, count);
  }
  return max_membership;
}

}  // namespace stableshard::cluster
