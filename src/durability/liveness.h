// Per-shard liveness state machine (the mmts-longrange node-status shape).
//
// Legal transitions, enforced with aborting checks (a liveness bug would
// silently void every recovery invariant downstream):
//
//   kOnline --Crash--> kCrashed --BeginRecovery--> kRecovering
//           --BeginCatchUp--> kCatchUp --Rejoin--> kOnline
//
// (Rejoin is also legal straight from kRecovering for recoveries with no
// catch-up phase.) The engine drives transitions serially between rounds
// and notifies the scheduler via Scheduler::OnShardLiveness; the protocol
// itself never runs while any shard is off-line — see the fault-model
// discussion in docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace stableshard::durability {

enum class ShardLiveness : std::uint8_t {
  kOnline = 0,
  kCrashed = 1,
  kRecovering = 2,  ///< replaying checkpoint + WAL
  kCatchUp = 3,     ///< replay done, re-verifying before rejoining
};

const char* ToString(ShardLiveness state);

class LivenessTracker {
 public:
  explicit LivenessTracker(ShardId shards)
      : states_(shards, ShardLiveness::kOnline), online_(shards) {}

  ShardLiveness state(ShardId shard) const { return states_[shard]; }
  bool AllOnline() const { return online_ == states_.size(); }
  ShardId online_count() const { return static_cast<ShardId>(online_); }
  std::uint64_t crash_count() const { return crashes_; }

  void Crash(ShardId shard);
  void BeginRecovery(ShardId shard);
  void BeginCatchUp(ShardId shard);
  void Rejoin(ShardId shard);

 private:
  void Transition(ShardId shard, ShardLiveness from, ShardLiveness to);

  std::vector<ShardLiveness> states_;
  std::size_t online_ = 0;
  std::uint64_t crashes_ = 0;
};

}  // namespace stableshard::durability
