// Crash recovery: restore one shard's ledger slice (account store, local
// chain, unit-capacity round marker) to bit-identical equality with its
// pre-crash state, from the latest usable checkpoint section plus the WAL
// suffix.
//
// Determinism argument: the WAL records commits in the exact order the
// shard applied them (per-shard staging lanes preserve StepShard order,
// which the ownership discipline makes deterministic), the checkpoint
// serializes the unordered store in sorted-account order, and chain blocks
// are restored by replaying LocalChain::Append — which recomputes every
// hash from the same (txn, round, digest) inputs. No step consults wall
// clocks, iteration order of unordered containers, or pointer values
// (tools/lint_determinism.py's durability rule pack enforces the same at
// the source level), so replay of the same bytes always reconstructs the
// same bits.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "durability/checkpoint.h"
#include "durability/wal.h"

namespace stableshard::core {
class CommitLedger;
}  // namespace stableshard::core

namespace stableshard::durability {

struct RecoveryStats {
  bool used_checkpoint = false;
  std::uint64_t replayed_records = 0;
  std::uint64_t replayed_bytes = 0;  ///< WAL bytes applied after the image
};

/// Snapshot shard `shard`'s ledger slice. `wal_seq` tags the image with
/// the WAL horizon it reflects (callers pass the shard's durable seq).
ShardImage CaptureShardImage(const core::CommitLedger& ledger, ShardId shard,
                             std::uint64_t wal_seq);

/// Overwrite shard `shard`'s ledger slice with `image` (store rebuilt from
/// the sorted balances, chain rebuilt by replaying Append).
void InstallShardImage(core::CommitLedger& ledger, const ShardImage& image);

/// Restore shard `shard` from `storage`: wipe the slice, install the
/// newest checkpoint section that decodes cleanly (walking the checkpoint
/// history backwards; a damaged section only costs replay time), then
/// replay the WAL suffix. A torn WAL tail stops the replay at the last
/// complete record — by the synchronous-round crash model that is always
/// the full committed prefix. A checksum failure on a *complete* WAL
/// record is unrecoverable corruption and aborts the process.
RecoveryStats RecoverShard(core::CommitLedger& ledger, ShardId shard,
                           const MemoryStorage& storage);

/// Capture every shard at `round` and append the encoded checkpoint blob
/// to `storage.checkpoints`. Returns the blob size in bytes.
std::uint64_t WriteCheckpoint(const core::CommitLedger& ledger,
                              const WalManager& wal, MemoryStorage& storage,
                              Round round);

}  // namespace stableshard::durability
