// Byte-level encoding shared by the WAL and checkpoint codecs.
//
// Everything durable is fixed-width little-endian, written byte by byte —
// never memcpy of host structs — so a log produced on one host replays
// bit-identically on any other. Integrity is a 64-bit FNV-1a over each
// framed payload: cheap, deterministic, and entirely sufficient for
// detecting torn writes and flipped bits (this is a corruption detector,
// not a cryptographic MAC).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stableshard::durability {

/// Raw durable bytes (a WAL lane, a checkpoint blob, an encoded image).
using Blob = std::vector<std::uint8_t>;

/// 64-bit FNV-1a over `size` bytes.
inline std::uint64_t Fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

inline void AppendU8(Blob& out, std::uint8_t value) { out.push_back(value); }

inline void AppendU32(Blob& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

inline void AppendU64(Blob& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

inline void AppendI64(Blob& out, std::int64_t value) {
  AppendU64(out, static_cast<std::uint64_t>(value));
}

/// Bounds-checked sequential reader. Every Read* returns false on
/// exhaustion instead of aborting: decoders translate "ran out of bytes"
/// into torn-tail / truncated-section statuses, which are expected inputs
/// (a crash can interrupt any write), not programming errors.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return size_ - offset_; }

  bool ReadU8(std::uint8_t* out) {
    if (remaining() < 1) return false;
    *out = data_[offset_++];
    return true;
  }

  bool ReadU32(std::uint32_t* out) {
    if (remaining() < 4) return false;
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<std::uint32_t>(data_[offset_++]) << shift;
    }
    *out = value;
    return true;
  }

  bool ReadU64(std::uint64_t* out) {
    if (remaining() < 8) return false;
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      value |= static_cast<std::uint64_t>(data_[offset_++]) << shift;
    }
    *out = value;
    return true;
  }

  bool ReadI64(std::int64_t* out) {
    std::uint64_t value = 0;
    if (!ReadU64(&value)) return false;
    *out = static_cast<std::int64_t>(value);
    return true;
  }

  bool Skip(std::size_t count) {
    if (remaining() < count) return false;
    offset_ += count;
    return true;
  }

  /// Consume `count` bytes and return a pointer to them (nullptr on
  /// exhaustion). The span aliases the underlying buffer.
  const std::uint8_t* ReadSpan(std::size_t count) {
    if (remaining() < count) return nullptr;
    const std::uint8_t* span = data_ + offset_;
    offset_ += count;
    return span;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

}  // namespace stableshard::durability
