#include "durability/fault_plan.h"

#include <cstdint>

namespace stableshard::durability {

namespace {

/// Parse a decimal u64 starting at `pos`; advances `pos` past the digits.
bool ParseNumber(const std::string& spec, std::size_t* pos,
                 std::uint64_t* out) {
  const std::size_t start = *pos;
  std::uint64_t value = 0;
  while (*pos < spec.size() && spec[*pos] >= '0' && spec[*pos] <= '9') {
    const std::uint64_t digit = static_cast<std::uint64_t>(spec[*pos] - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
    ++*pos;
  }
  if (*pos == start) return false;  // no digits
  *out = value;
  return true;
}

bool Fail(std::string* error, const std::string& reason) {
  if (error != nullptr) *error = reason;
  return false;
}

}  // namespace

bool ParseFaultPlan(const std::string& spec, FaultPlan* plan,
                    std::string* error) {
  plan->events.clear();
  if (spec.empty()) return true;
  std::size_t pos = 0;
  while (true) {
    std::uint64_t shard = 0;
    std::uint64_t round = 0;
    std::uint64_t down = 0;
    if (!ParseNumber(spec, &pos, &shard)) {
      return Fail(error, "expected <shard> number");
    }
    if (pos >= spec.size() || spec[pos] != '@') {
      return Fail(error, "expected '@' after shard");
    }
    ++pos;
    if (!ParseNumber(spec, &pos, &round)) {
      return Fail(error, "expected <round> number after '@'");
    }
    if (pos >= spec.size() || spec[pos] != '+') {
      return Fail(error, "expected '+' after round");
    }
    ++pos;
    if (!ParseNumber(spec, &pos, &down)) {
      return Fail(error, "expected <down> number after '+'");
    }
    if (down < 1) return Fail(error, "down rounds must be >= 1");
    if (!plan->events.empty() &&
        round <= plan->events.back().crash_round) {
      return Fail(error, "crash rounds must be strictly increasing");
    }
    FaultEvent event;
    event.shard = static_cast<ShardId>(shard);
    if (event.shard != shard) return Fail(error, "shard out of range");
    event.crash_round = round;
    event.down_rounds = down;
    plan->events.push_back(event);
    if (pos == spec.size()) return true;
    if (spec[pos] != ',') return Fail(error, "expected ',' between events");
    ++pos;
  }
}

}  // namespace stableshard::durability
