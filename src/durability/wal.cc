#include "durability/wal.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace stableshard::durability {

namespace {

void EncodePayload(Blob& out, const WalRecord& record) {
  AppendU8(out, static_cast<std::uint8_t>(record.type));
  AppendU64(out, record.seq);
  AppendU64(out, record.txn);
  AppendU64(out, record.round);
  if (record.type == WalRecordType::kCommit) {
    AppendU64(out, record.payload_digest);
    AppendU32(out, static_cast<std::uint32_t>(record.actions.size()));
    for (const chain::Action& action : record.actions) {
      AppendU64(out, action.account);
      AppendU8(out, static_cast<std::uint8_t>(action.kind));
      AppendI64(out, action.amount);
    }
  }
}

bool DecodePayload(const std::uint8_t* data, std::size_t size,
                   WalRecord* out) {
  ByteReader reader(data, size);
  std::uint8_t type = 0;
  if (!reader.ReadU8(&type)) return false;
  if (type != static_cast<std::uint8_t>(WalRecordType::kCommit) &&
      type != static_cast<std::uint8_t>(WalRecordType::kAbort)) {
    return false;
  }
  out->type = static_cast<WalRecordType>(type);
  if (!reader.ReadU64(&out->seq)) return false;
  if (!reader.ReadU64(&out->txn)) return false;
  if (!reader.ReadU64(&out->round)) return false;
  out->payload_digest = 0;
  out->actions.clear();
  if (out->type == WalRecordType::kCommit) {
    if (!reader.ReadU64(&out->payload_digest)) return false;
    std::uint32_t n_actions = 0;
    if (!reader.ReadU32(&n_actions)) return false;
    out->actions.reserve(n_actions);
    for (std::uint32_t i = 0; i < n_actions; ++i) {
      chain::Action action;
      std::uint8_t kind = 0;
      if (!reader.ReadU64(&action.account)) return false;
      if (!reader.ReadU8(&kind)) return false;
      if (!reader.ReadI64(&action.amount)) return false;
      action.kind = static_cast<chain::ActionKind>(kind);
      out->actions.push_back(action);
    }
  }
  // Every payload byte must belong to the record: trailing garbage inside
  // a checksummed frame is corruption, not a tail.
  return reader.remaining() == 0;
}

}  // namespace

void AppendWalRecord(Blob& wal, const WalRecord& record) {
  Blob payload;
  EncodePayload(payload, record);
  AppendU32(wal, static_cast<std::uint32_t>(payload.size()));
  AppendU64(wal, Fnv1a(payload.data(), payload.size()));
  wal.insert(wal.end(), payload.begin(), payload.end());
}

WalReader::Status WalReader::Next(WalRecord* out) {
  if (reader_.remaining() == 0) return Status::kEndOfLog;
  // Frame header (u32 size + u64 checksum) or body cut short: a torn
  // final write — the prefix before it is still fully valid. Probe on a
  // copy so `offset()` keeps pointing at the last complete record.
  ByteReader probe = reader_;
  std::uint32_t size = 0;
  std::uint64_t checksum = 0;
  if (!probe.ReadU32(&size)) return Status::kTornTail;
  if (!probe.ReadU64(&checksum)) return Status::kTornTail;
  const std::uint8_t* payload = probe.ReadSpan(size);
  if (payload == nullptr) return Status::kTornTail;
  // The frame is complete: checksum or decode failure now means flipped
  // bits, not a tail.
  if (Fnv1a(payload, size) != checksum) return Status::kCorrupt;
  if (!DecodePayload(payload, size, out)) return Status::kCorrupt;
  reader_ = probe;
  return Status::kRecord;
}

WalManager::WalManager(ShardId shards, MemoryStorage* storage)
    : storage_(storage),
      staging_(shards),
      sealed_(shards),
      next_seq_(shards, 0),
      durable_seq_(shards, 0),
      records_by_shard_(shards, 0) {
  SSHARD_CHECK(storage != nullptr);
  SSHARD_CHECK(storage->wal.size() == shards &&
               "storage shard count mismatch");
}

void WalManager::StageCommit(ShardId dest, TxnId txn, Round round,
                             std::uint64_t payload_digest,
                             const std::vector<chain::Action>& actions) {
  WalRecord record;
  record.type = WalRecordType::kCommit;
  record.seq = ++next_seq_[dest];
  record.txn = txn;
  record.round = round;
  record.payload_digest = payload_digest;
  record.actions = actions;
  staging_[dest].push_back(std::move(record));
}

void WalManager::StageAbort(ShardId dest, TxnId txn, Round round) {
  WalRecord record;
  record.type = WalRecordType::kAbort;
  record.seq = ++next_seq_[dest];
  record.txn = txn;
  record.round = round;
  staging_[dest].push_back(std::move(record));
}

void WalManager::Seal(Round round, std::uint32_t parts) {
  SSHARD_CHECK(parts >= 1);
  SSHARD_CHECK(sealed_round_ == kNoRound && "sealing over an open seal");
  staging_.swap(sealed_);
  sealed_round_ = round;
  sealed_parts_ = parts;
}

void WalManager::PersistSealedPartition(std::uint32_t part) {
  SSHARD_DCHECK(part < sealed_parts_);
  // Mirrors core::FlushShardRange — contiguous destination chunks, each
  // shard's lane touched by exactly one partition.
  const ShardId shards = shard_count();
  const ShardId chunk = (shards + sealed_parts_ - 1) / sealed_parts_;
  const ShardId begin = static_cast<ShardId>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(chunk) * part, shards));
  const ShardId end = static_cast<ShardId>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(begin) + chunk, shards));
  for (ShardId shard = begin; shard < end; ++shard) {
    for (const WalRecord& record : sealed_[shard]) {
      AppendWalRecord(storage_->wal[shard], record);
    }
    records_by_shard_[shard] += sealed_[shard].size();
  }
}

void WalManager::FinishSealedRound() {
  SSHARD_CHECK(sealed_round_ != kNoRound && "finish without a seal");
  const Round round = sealed_round_;
  for (ShardId shard = 0; shard < shard_count(); ++shard) {
    std::vector<WalRecord>& lane = sealed_[shard];
    if (lane.empty()) continue;
    durable_seq_[shard] = lane.back().seq;
    if (on_durable_) on_durable_(shard, durable_seq_[shard], round);
    lane.clear();
  }
  sealed_round_ = kNoRound;
  sealed_parts_ = 0;
}

void WalManager::PersistAll(Round round) {
  Seal(round, 1);
  PersistSealedPartition(0);
  FinishSealedRound();
}

std::uint64_t WalManager::records_persisted() const {
  std::uint64_t total = 0;
  for (const std::uint64_t count : records_by_shard_) total += count;
  return total;
}

}  // namespace stableshard::durability
