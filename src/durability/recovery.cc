#include "durability/recovery.h"

#include "chain/account_store.h"
#include "chain/local_chain.h"
#include "common/check.h"
#include "core/commit_ledger.h"

namespace stableshard::durability {

ShardImage CaptureShardImage(const core::CommitLedger& ledger, ShardId shard,
                             std::uint64_t wal_seq) {
  ShardImage image;
  image.shard = shard;
  image.wal_seq = wal_seq;
  image.last_commit_round = ledger.last_commit_round(shard);
  const chain::AccountStore& store = ledger.store(shard);
  image.default_balance = store.default_balance();
  image.balances = store.SortedBalances();
  const chain::LocalChain& chain = ledger.chains()[shard];
  image.blocks.reserve(chain.size());
  for (const chain::Block& block : chain.blocks()) {
    image.blocks.push_back(ShardImage::BlockBody{
        block.txn, block.commit_round, block.payload_digest});
  }
  return image;
}

void InstallShardImage(core::CommitLedger& ledger, const ShardImage& image) {
  chain::AccountStore store(image.default_balance);
  for (const auto& [account, balance] : image.balances) {
    store.SetBalance(account, balance);
  }
  ledger.mutable_store(image.shard) = store;
  chain::LocalChain chain(image.shard);
  for (const ShardImage::BlockBody& block : image.blocks) {
    chain.Append(block.txn, block.commit_round, block.payload_digest);
  }
  ledger.mutable_chain(image.shard) = chain;
  ledger.RestoreLastCommitRound(image.shard, image.last_commit_round);
}

RecoveryStats RecoverShard(core::CommitLedger& ledger, ShardId shard,
                           const MemoryStorage& storage) {
  RecoveryStats stats;
  ledger.ResetShardForRecovery(shard);

  // Newest checkpoint whose section for this shard survives; damaged
  // sections fall back to older blobs, ultimately to genesis (the WAL is
  // never truncated, so full replay is always available).
  std::uint64_t from_seq = 0;
  for (std::size_t i = storage.checkpoints.size(); i > 0; --i) {
    ShardImage image;
    const SectionStatus status =
        DecodeCheckpointShard(storage.checkpoints[i - 1], shard, &image);
    if (status != SectionStatus::kOk) continue;
    InstallShardImage(ledger, image);
    from_seq = image.wal_seq;
    stats.used_checkpoint = true;
    break;
  }

  WalReader reader(storage.wal[shard]);
  WalRecord record;
  std::size_t replay_start = 0;
  for (;;) {
    const WalReader::Status status = reader.Next(&record);
    if (status == WalReader::Status::kEndOfLog) break;
    if (status == WalReader::Status::kTornTail) break;  // consistent prefix
    SSHARD_CHECK(status != WalReader::Status::kCorrupt &&
                 "WAL record checksum mismatch: unrecoverable corruption");
    if (record.seq <= from_seq) {
      // Still inside the checkpoint's horizon; the replay window starts at
      // the first record past it.
      replay_start = reader.offset();
      continue;
    }
    if (record.type == WalRecordType::kCommit) {
      chain::AccountStore& store = ledger.mutable_store(shard);
      for (const chain::Action& action : record.actions) {
        store.Apply(action);
      }
      ledger.mutable_chain(shard).Append(record.txn, record.round,
                                         record.payload_digest);
      ledger.RestoreLastCommitRound(shard, record.round);
    }
    // Aborts carry no state; they are logged for audit/sequence coverage.
    ++stats.replayed_records;
  }
  stats.replayed_bytes =
      static_cast<std::uint64_t>(reader.offset() - replay_start);
  return stats;
}

std::uint64_t WriteCheckpoint(const core::CommitLedger& ledger,
                              const WalManager& wal, MemoryStorage& storage,
                              Round round) {
  const ShardId shards = wal.shard_count();
  std::vector<ShardImage> images;
  images.reserve(shards);
  for (ShardId shard = 0; shard < shards; ++shard) {
    images.push_back(CaptureShardImage(ledger, shard, wal.durable_seq(shard)));
  }
  Blob blob = EncodeCheckpoint(round, images);
  const std::uint64_t size = blob.size();
  storage.checkpoints.push_back(std::move(blob));
  return size;
}

}  // namespace stableshard::durability
