// Deterministic churn schedule: which shard crashes when, and how long it
// stays down before recovery starts.
//
// Text form (SimConfig::faults, the --faults CLI flag):
//
//   "<shard>@<round>+<down>[,<shard>@<round>+<down>...]"
//
// e.g. "5@50+12,23@110+20" — shard 5 crashes at the round-50 boundary and
// stays down for 12 rounds before replay begins; shard 23 likewise at
// round 110. Crash rounds must be strictly increasing (one well-defined
// event cursor; overlapping outages are a future extension) and `down`
// must be >= 1. The plan is part of the configuration, so a faulted run is
// exactly as replayable as a fault-free one — same spec, same seed, same
// bits out.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace stableshard::durability {

struct FaultEvent {
  ShardId shard = 0;
  Round crash_round = 0;  ///< crash at this round's boundary, before it runs
  Round down_rounds = 1;  ///< full-outage rounds before recovery begins
};

struct FaultPlan {
  std::vector<FaultEvent> events;  ///< strictly increasing crash_round

  bool empty() const { return events.empty(); }
  std::size_t size() const { return events.size(); }
};

/// Parse `spec` (empty = no faults). On failure returns false and, when
/// `error` is non-null, stores a one-line reason.
bool ParseFaultPlan(const std::string& spec, FaultPlan* plan,
                    std::string* error);

}  // namespace stableshard::durability
