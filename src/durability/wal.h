// Per-shard commit write-ahead log.
//
// Each destination shard owns one append-only byte stream of framed,
// checksummed resolution records (commit with its full redo payload —
// actions + chain digest — or abort). The rest of the simulator is
// synchronous-round: a round's effects either complete on every shard or
// the round never happened, so crash points are round boundaries and the
// log always covers exactly the committed prefix. "Write-ahead" here means
// ahead of the *next* round, not ahead of the in-memory apply: records are
// staged during StepShard (shard-owned lanes, safe for concurrent distinct
// destinations) and made durable inside the round epilogue before any
// round r+1 work begins.
//
// Pipelined persistence (the mako rocksdb_persistence shape): the WAL
// piggybacks on the CommitLedger's sealed-journal window. Seal() swaps the
// staging lanes into a sealed set while the next round keeps staging;
// PersistSealedPartition(part) encodes the sealed lanes of the contiguous
// destination-shard chunk owned by `part` (the same range split as
// core::FlushShardRange, so persistence overlaps the pooled outbox flush
// with the identical ownership discipline); FinishSealedRound() walks
// shards serially, advances each shard's durable sequence number and fires
// the completion callback. Per-shard sequence numbers are assigned at
// staging time — shard-owned, monotonic from 1 — so "records with
// seq <= durable_seq(shard) are on disk" is the recovery contract.
//
// Record frame: u32 payload_size, u64 fnv1a(payload), payload. Payload:
//   u8 type (1 = commit, 2 = abort), u64 seq, u64 txn, u64 round,
//   commit only: u64 payload_digest, u32 n_actions,
//                n_actions x { u64 account, u8 kind, i64 amount }.
//
// No capability annotations of its own: every entry point is called from
// inside the CommitLedger's journal_cap-framed methods, which already give
// the Seal..Finish window its static discipline.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "chain/ops.h"
#include "common/types.h"
#include "durability/encoding.h"

namespace stableshard::durability {

enum class WalRecordType : std::uint8_t { kCommit = 1, kAbort = 2 };

struct WalRecord {
  WalRecordType type = WalRecordType::kAbort;
  std::uint64_t seq = 0;  ///< per-shard, monotonic from 1
  TxnId txn = 0;
  Round round = 0;
  // Commit-only redo payload (empty/zero for aborts).
  std::uint64_t payload_digest = 0;
  std::vector<chain::Action> actions;
};

/// Append one framed record to a WAL lane.
void AppendWalRecord(Blob& wal, const WalRecord& record);

/// Sequential WAL decoder with torn-tail detection.
class WalReader {
 public:
  enum class Status {
    kRecord,     ///< *out holds the next record
    kEndOfLog,   ///< clean end, every byte consumed
    kTornTail,   ///< bytes end mid-record: a torn final write, recoverable
    kCorrupt,    ///< a *complete* frame fails its checksum or decode
  };

  explicit WalReader(const Blob& wal) : reader_(wal.data(), wal.size()) {}

  Status Next(WalRecord* out);

  /// Bytes consumed by successfully decoded records.
  std::size_t offset() const { return reader_.offset(); }

 private:
  ByteReader reader_;
};

/// In-memory durable medium: one WAL lane per shard plus the checkpoint
/// history (every checkpoint blob ever written, in round order — the WAL
/// is never truncated, so older checkpoints only save replay time).
/// Mutable access exists for the torn-write/corruption tests.
struct MemoryStorage {
  explicit MemoryStorage(ShardId shards) : wal(shards) {}

  std::vector<Blob> wal;
  std::vector<Blob> checkpoints;

  std::uint64_t wal_bytes() const {
    std::uint64_t total = 0;
    for (const Blob& lane : wal) total += lane.size();
    return total;
  }
};

/// Staging + persistence driver in front of a MemoryStorage (see the file
/// comment for the phase discipline).
class WalManager {
 public:
  /// (shard, durable_seq, round): every record of `shard` with
  /// seq <= durable_seq is now durable. Fired serially, in shard order,
  /// from FinishSealedRound — only for shards that persisted this round.
  using DurableCallback =
      std::function<void(ShardId, std::uint64_t, Round)>;

  WalManager(ShardId shards, MemoryStorage* storage);

  /// Shard-owned staging (callable concurrently for distinct `dest`).
  void StageCommit(ShardId dest, TxnId txn, Round round,
                   std::uint64_t payload_digest,
                   const std::vector<chain::Action>& actions);
  void StageAbort(ShardId dest, TxnId txn, Round round);

  /// Serial: swap staging lanes into the sealed set for `round`.
  void Seal(Round round, std::uint32_t parts);
  /// Parallel-safe for distinct `part`: encode the sealed lanes of the
  /// destination chunk [begin, end) owned by `part` into storage.
  void PersistSealedPartition(std::uint32_t part);
  /// Serial epilogue: advance durable sequence numbers in shard order,
  /// fire callbacks, retire the sealed lanes.
  void FinishSealedRound();
  /// Serial path (unpipelined EndRound): Seal + full persist + finish.
  void PersistAll(Round round);

  void set_on_durable(DurableCallback callback) {
    on_durable_ = std::move(callback);
  }

  ShardId shard_count() const {
    return static_cast<ShardId>(staging_.size());
  }
  /// Highest sequence number of `shard` known durable (0 = none yet).
  std::uint64_t durable_seq(ShardId shard) const {
    return durable_seq_[shard];
  }
  std::uint64_t records_persisted() const;
  std::uint64_t total_bytes() const { return storage_->wal_bytes(); }

 private:
  MemoryStorage* storage_;
  std::vector<std::vector<WalRecord>> staging_;  // per destination shard
  std::vector<std::vector<WalRecord>> sealed_;
  std::vector<std::uint64_t> next_seq_;     // advanced at staging time
  std::vector<std::uint64_t> durable_seq_;  // advanced at finish time
  /// Per-shard persisted-record counters (summed serially on read): the
  /// persist partitions may not share one accumulator.
  std::vector<std::uint64_t> records_by_shard_;
  Round sealed_round_ = kNoRound;
  std::uint32_t sealed_parts_ = 0;
  DurableCallback on_durable_;
};

}  // namespace stableshard::durability
