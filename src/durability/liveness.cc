#include "durability/liveness.h"

#include "common/check.h"

namespace stableshard::durability {

const char* ToString(ShardLiveness state) {
  switch (state) {
    case ShardLiveness::kOnline:
      return "online";
    case ShardLiveness::kCrashed:
      return "crashed";
    case ShardLiveness::kRecovering:
      return "recovering";
    case ShardLiveness::kCatchUp:
      return "catch-up";
  }
  return "?";
}

void LivenessTracker::Transition(ShardId shard, ShardLiveness from,
                                 ShardLiveness to) {
  SSHARD_CHECK(shard < states_.size());
  SSHARD_CHECK(states_[shard] == from && "illegal liveness transition");
  states_[shard] = to;
}

void LivenessTracker::Crash(ShardId shard) {
  Transition(shard, ShardLiveness::kOnline, ShardLiveness::kCrashed);
  --online_;
  ++crashes_;
}

void LivenessTracker::BeginRecovery(ShardId shard) {
  Transition(shard, ShardLiveness::kCrashed, ShardLiveness::kRecovering);
}

void LivenessTracker::BeginCatchUp(ShardId shard) {
  Transition(shard, ShardLiveness::kRecovering, ShardLiveness::kCatchUp);
}

void LivenessTracker::Rejoin(ShardId shard) {
  SSHARD_CHECK(shard < states_.size());
  const ShardLiveness state = states_[shard];
  SSHARD_CHECK((state == ShardLiveness::kRecovering ||
                state == ShardLiveness::kCatchUp) &&
               "illegal liveness transition");
  states_[shard] = ShardLiveness::kOnline;
  ++online_;
}

}  // namespace stableshard::durability
