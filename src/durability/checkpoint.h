// Checkpoint blobs: periodic full-state images that bound replay time.
//
// A checkpoint is one blob per cadence tick covering every shard:
//
//   header:  u64 magic, u64 round, u32 shard_count
//   then shard_count framed sections, in shard order:
//     u32 payload_size, u64 fnv1a(payload), payload:
//       u32 shard, u64 wal_seq (WAL records with seq <= wal_seq are
//       reflected in this image), u64 last_commit_round, i64
//       default_balance, u32 n_balances x { u64 account, i64 balance }
//       (ascending account id — the deterministic serialization of the
//       unordered store), u32 n_blocks x { u64 txn, u64 commit_round,
//       u64 payload_digest } (chain bodies only: block hashes are
//       recomputed by replaying Append, which is also what makes the
//       restored chain bit-identical by construction).
//
// Sections are independently framed so a torn checkpoint write degrades
// per shard: a shard whose section is truncated or corrupt simply falls
// back to the previous checkpoint or, ultimately, to a full WAL replay
// from genesis — the WAL is never truncated, so every checkpoint is a
// pure replay-time optimization, not a durability dependency.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "chain/ops.h"
#include "common/types.h"
#include "durability/encoding.h"

namespace stableshard::durability {

inline constexpr std::uint64_t kCheckpointMagic = 0x53534844'434b5031ULL;

/// One shard's full durable state, in canonical (sorted, fixed-width)
/// form. Two images encode byte-identically iff the shard states are
/// bit-identical — the crash/recovery golden tests compare encoded images.
struct ShardImage {
  struct BlockBody {
    TxnId txn = 0;
    Round commit_round = 0;
    std::uint64_t payload_digest = 0;
  };

  ShardId shard = 0;
  std::uint64_t wal_seq = 0;
  Round last_commit_round = kNoRound;
  chain::Balance default_balance = 0;
  std::vector<std::pair<AccountId, chain::Balance>> balances;  // sorted
  std::vector<BlockBody> blocks;
};

/// Append `image` as one framed section.
void AppendShardImage(Blob& out, const ShardImage& image);

/// Encode a full checkpoint blob for `round`. `images` must be in shard
/// order (images[i].shard == i).
Blob EncodeCheckpoint(Round round, const std::vector<ShardImage>& images);

enum class SectionStatus {
  kOk,         ///< section decoded and checksum-verified
  kTruncated,  ///< blob ends before this shard's section completes
  kCorrupt,    ///< bad magic, or the section's checksum/decode fails
};

/// Decode shard `shard`'s section out of a checkpoint blob. Returns
/// kTruncated/kCorrupt instead of aborting: damaged checkpoints are an
/// expected input (recovery falls back to older checkpoints / the WAL).
SectionStatus DecodeCheckpointShard(const Blob& blob, ShardId shard,
                                    ShardImage* out);

/// The round a checkpoint blob covers (header only; kNoRound if the blob
/// is too short or mis-tagged).
Round CheckpointRound(const Blob& blob);

}  // namespace stableshard::durability
