#include "durability/checkpoint.h"

#include "common/check.h"

namespace stableshard::durability {

namespace {

void EncodeImagePayload(Blob& out, const ShardImage& image) {
  AppendU32(out, image.shard);
  AppendU64(out, image.wal_seq);
  AppendU64(out, image.last_commit_round);
  AppendI64(out, image.default_balance);
  AppendU32(out, static_cast<std::uint32_t>(image.balances.size()));
  for (const auto& [account, balance] : image.balances) {
    AppendU64(out, account);
    AppendI64(out, balance);
  }
  AppendU32(out, static_cast<std::uint32_t>(image.blocks.size()));
  for (const ShardImage::BlockBody& block : image.blocks) {
    AppendU64(out, block.txn);
    AppendU64(out, block.commit_round);
    AppendU64(out, block.payload_digest);
  }
}

bool DecodeImagePayload(const std::uint8_t* data, std::size_t size,
                        ShardImage* out) {
  ByteReader reader(data, size);
  if (!reader.ReadU32(&out->shard)) return false;
  if (!reader.ReadU64(&out->wal_seq)) return false;
  if (!reader.ReadU64(&out->last_commit_round)) return false;
  if (!reader.ReadI64(&out->default_balance)) return false;
  std::uint32_t n_balances = 0;
  if (!reader.ReadU32(&n_balances)) return false;
  out->balances.clear();
  out->balances.reserve(n_balances);
  for (std::uint32_t i = 0; i < n_balances; ++i) {
    AccountId account = 0;
    chain::Balance balance = 0;
    if (!reader.ReadU64(&account)) return false;
    if (!reader.ReadI64(&balance)) return false;
    out->balances.emplace_back(account, balance);
  }
  std::uint32_t n_blocks = 0;
  if (!reader.ReadU32(&n_blocks)) return false;
  out->blocks.clear();
  out->blocks.reserve(n_blocks);
  for (std::uint32_t i = 0; i < n_blocks; ++i) {
    ShardImage::BlockBody block;
    if (!reader.ReadU64(&block.txn)) return false;
    if (!reader.ReadU64(&block.commit_round)) return false;
    if (!reader.ReadU64(&block.payload_digest)) return false;
    out->blocks.push_back(block);
  }
  return reader.remaining() == 0;
}

}  // namespace

void AppendShardImage(Blob& out, const ShardImage& image) {
  Blob payload;
  EncodeImagePayload(payload, image);
  AppendU32(out, static_cast<std::uint32_t>(payload.size()));
  AppendU64(out, Fnv1a(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

Blob EncodeCheckpoint(Round round, const std::vector<ShardImage>& images) {
  Blob blob;
  AppendU64(blob, kCheckpointMagic);
  AppendU64(blob, round);
  AppendU32(blob, static_cast<std::uint32_t>(images.size()));
  for (std::size_t shard = 0; shard < images.size(); ++shard) {
    SSHARD_CHECK(images[shard].shard == shard &&
                 "checkpoint images out of shard order");
    AppendShardImage(blob, images[shard]);
  }
  return blob;
}

SectionStatus DecodeCheckpointShard(const Blob& blob, ShardId shard,
                                    ShardImage* out) {
  ByteReader reader(blob.data(), blob.size());
  std::uint64_t magic = 0;
  std::uint64_t round = 0;
  std::uint32_t shard_count = 0;
  if (!reader.ReadU64(&magic)) return SectionStatus::kTruncated;
  if (magic != kCheckpointMagic) return SectionStatus::kCorrupt;
  if (!reader.ReadU64(&round)) return SectionStatus::kTruncated;
  if (!reader.ReadU32(&shard_count)) return SectionStatus::kTruncated;
  if (shard >= shard_count) return SectionStatus::kCorrupt;
  for (ShardId current = 0; current <= shard; ++current) {
    std::uint32_t size = 0;
    std::uint64_t checksum = 0;
    if (!reader.ReadU32(&size)) return SectionStatus::kTruncated;
    if (!reader.ReadU64(&checksum)) return SectionStatus::kTruncated;
    if (current < shard) {
      // Skip a section we don't need without verifying it: its damage is
      // its own shard's problem.
      if (!reader.Skip(size)) return SectionStatus::kTruncated;
      continue;
    }
    const std::uint8_t* payload = reader.ReadSpan(size);
    if (payload == nullptr) return SectionStatus::kTruncated;
    if (Fnv1a(payload, size) != checksum) return SectionStatus::kCorrupt;
    if (!DecodeImagePayload(payload, size, out)) {
      return SectionStatus::kCorrupt;
    }
    if (out->shard != shard) return SectionStatus::kCorrupt;
    return SectionStatus::kOk;
  }
  return SectionStatus::kTruncated;  // unreachable
}

Round CheckpointRound(const Blob& blob) {
  ByteReader reader(blob.data(), blob.size());
  std::uint64_t magic = 0;
  std::uint64_t round = 0;
  if (!reader.ReadU64(&magic)) return kNoRound;
  if (magic != kCheckpointMagic) return kNoRound;
  if (!reader.ReadU64(&round)) return kNoRound;
  return round;
}

}  // namespace stableshard::durability
