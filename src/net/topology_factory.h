// Construction of shard metrics by name, used by the config layer and the
// benchmark harness ("uniform", "line", "ring", "grid", "random_geo").
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/rng.h"
#include "net/metric.h"

namespace stableshard::net {

enum class TopologyKind {
  kUniform,
  kLine,
  kRing,
  kGrid,
  kRandomGeometric,
};

/// Parse a topology name; nullopt on unknown names (CLIs report the bad
/// value and exit instead of aborting).
std::optional<TopologyKind> TryParseTopology(const std::string& name);

/// Parse a topology name; aborts on unknown names (for trusted callers
/// whose input is programmatic, not user-typed).
TopologyKind ParseTopology(const std::string& name);

/// Human-readable name for a topology kind.
std::string TopologyName(TopologyKind kind);

/// Build a metric of the given kind over `shards` shards.
/// - kGrid arranges shards in a near-square grid (width = ceil(sqrt(s))).
/// - kRandomGeometric uses a square of side `shards` and the provided rng.
std::unique_ptr<ShardMetric> MakeMetric(TopologyKind kind, ShardId shards,
                                        Rng* rng = nullptr);

}  // namespace stableshard::net
