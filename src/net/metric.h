// Shard interconnection metrics (the weighted clique G_s of Section 3).
//
// The paper models the network between shards as a complete weighted graph
// whose edge weight is the number of rounds a message needs between the two
// shards. The uniform model has all weights 1; the non-uniform model has
// weights in [1, D] where D is the diameter. The FDS evaluation (Figure 3)
// places 64 shards on a line with distance |i - j|.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace stableshard::net {

/// Abstract metric over shards. Implementations must satisfy the metric
/// axioms for distances between *distinct* shards: symmetry, positivity
/// (>= 1) and the triangle inequality; distance(i, i) == 0.
class ShardMetric {
 public:
  virtual ~ShardMetric() = default;

  virtual ShardId shard_count() const = 0;
  virtual Distance distance(ShardId a, ShardId b) const = 0;

  /// Maximum distance between any two shards (the clique diameter D).
  /// Memoized per instance: both net::Network and cluster::Hierarchy query
  /// it on construction, and the generic evaluation is O(s^2) — at s = 1024
  /// that was ~1M distance calls per simulation, multiplied across sweep
  /// configs, before the cache.
  Distance Diameter() const;

  /// All shards within distance `radius` of `center` (includes `center`).
  std::vector<ShardId> Neighborhood(ShardId center, Distance radius) const;

  /// Strong diameter of a shard subset: max pairwise distance measured with
  /// this metric (our clusters are metric balls, so induced-subgraph
  /// distances coincide with clique distances for the topologies we use).
  Distance SubsetDiameter(const std::vector<ShardId>& shards) const;

 protected:
  /// One-time diameter evaluation behind the Diameter() cache. The default
  /// is the generic O(s^2) max over pairs; closed-form topologies override
  /// it with O(1) formulas.
  virtual Distance ComputeDiameter() const;

 private:
  /// Diameter() cache; kDiameterUnknown until first computed. Relaxed
  /// atomics keep concurrent first calls benign (same value both times).
  static constexpr Distance kDiameterUnknown =
      std::numeric_limits<Distance>::max();
  mutable std::atomic<Distance> diameter_cache_{kDiameterUnknown};
};

/// Uniform model: every pair of distinct shards at distance 1.
class UniformMetric final : public ShardMetric {
 public:
  explicit UniformMetric(ShardId shards);
  ShardId shard_count() const override { return shards_; }
  Distance distance(ShardId a, ShardId b) const override;

 protected:
  Distance ComputeDiameter() const override { return shards_ == 1 ? 0 : 1; }

 private:
  ShardId shards_;
};

/// Line topology (paper Section 7, Figure 3): distance(i, j) = |i - j|,
/// adjacent shards at distance 1, diameter s - 1.
class LineMetric final : public ShardMetric {
 public:
  explicit LineMetric(ShardId shards);
  ShardId shard_count() const override { return shards_; }
  Distance distance(ShardId a, ShardId b) const override;

 protected:
  Distance ComputeDiameter() const override { return shards_ - 1; }

 private:
  ShardId shards_;
};

/// Ring topology: distance(i, j) = min(|i-j|, s - |i-j|), diameter floor(s/2).
class RingMetric final : public ShardMetric {
 public:
  explicit RingMetric(ShardId shards);
  ShardId shard_count() const override { return shards_; }
  Distance distance(ShardId a, ShardId b) const override;

 protected:
  Distance ComputeDiameter() const override { return shards_ / 2; }

 private:
  ShardId shards_;
};

/// 2D grid (L1 distance): shard i at (i % width, i / width).
class GridMetric final : public ShardMetric {
 public:
  GridMetric(ShardId width, ShardId height);
  ShardId shard_count() const override { return width_ * height_; }
  Distance distance(ShardId a, ShardId b) const override;
  ShardId width() const { return width_; }
  ShardId height() const { return height_; }

 protected:
  Distance ComputeDiameter() const override {
    return (width_ - 1) + (height_ - 1);
  }

 private:
  ShardId width_;
  ShardId height_;
};

/// Arbitrary metric backed by an explicit symmetric matrix. Validates the
/// metric axioms on construction (positivity, symmetry, triangle
/// inequality) so that cluster decomposition preconditions hold.
class MatrixMetric final : public ShardMetric {
 public:
  /// `matrix` is row-major s*s; diagonal must be 0, off-diagonal >= 1.
  MatrixMetric(ShardId shards, std::vector<Distance> matrix);

  ShardId shard_count() const override { return shards_; }
  Distance distance(ShardId a, ShardId b) const override;

 private:
  ShardId shards_;
  std::vector<Distance> matrix_;
};

/// Random geometric metric: shards placed uniformly in a square of side
/// `side`, distance = max(1, round(euclidean)). Always a valid metric after
/// shortest-path closure (applied internally).
std::unique_ptr<MatrixMetric> MakeRandomGeometricMetric(ShardId shards,
                                                        Distance side,
                                                        Rng& rng);

}  // namespace stableshard::net
