#include "net/metric.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace stableshard::net {

Distance ShardMetric::Diameter() const {
  const Distance cached = diameter_cache_.load(std::memory_order_relaxed);
  if (cached != kDiameterUnknown) return cached;
  const Distance diameter = ComputeDiameter();
  SSHARD_DCHECK(diameter != kDiameterUnknown);
  diameter_cache_.store(diameter, std::memory_order_relaxed);
  return diameter;
}

Distance ShardMetric::ComputeDiameter() const {
  const ShardId s = shard_count();
  Distance diameter = 0;
  for (ShardId i = 0; i < s; ++i) {
    for (ShardId j = i + 1; j < s; ++j) {
      diameter = std::max(diameter, distance(i, j));
    }
  }
  return diameter;
}

std::vector<ShardId> ShardMetric::Neighborhood(ShardId center,
                                               Distance radius) const {
  std::vector<ShardId> result;
  const ShardId s = shard_count();
  for (ShardId i = 0; i < s; ++i) {
    if (distance(center, i) <= radius) result.push_back(i);
  }
  return result;
}

Distance ShardMetric::SubsetDiameter(const std::vector<ShardId>& shards) const {
  Distance diameter = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    for (std::size_t j = i + 1; j < shards.size(); ++j) {
      diameter = std::max(diameter, distance(shards[i], shards[j]));
    }
  }
  return diameter;
}

UniformMetric::UniformMetric(ShardId shards) : shards_(shards) {
  SSHARD_CHECK(shards >= 1);
}

Distance UniformMetric::distance(ShardId a, ShardId b) const {
  SSHARD_DCHECK(a < shards_ && b < shards_);
  return a == b ? 0 : 1;
}

LineMetric::LineMetric(ShardId shards) : shards_(shards) {
  SSHARD_CHECK(shards >= 1);
}

Distance LineMetric::distance(ShardId a, ShardId b) const {
  SSHARD_DCHECK(a < shards_ && b < shards_);
  return a > b ? a - b : b - a;
}

RingMetric::RingMetric(ShardId shards) : shards_(shards) {
  SSHARD_CHECK(shards >= 1);
}

Distance RingMetric::distance(ShardId a, ShardId b) const {
  SSHARD_DCHECK(a < shards_ && b < shards_);
  const ShardId direct = a > b ? a - b : b - a;
  return std::min<ShardId>(direct, shards_ - direct);
}

GridMetric::GridMetric(ShardId width, ShardId height)
    : width_(width), height_(height) {
  SSHARD_CHECK(width >= 1 && height >= 1);
}

Distance GridMetric::distance(ShardId a, ShardId b) const {
  SSHARD_DCHECK(a < shard_count() && b < shard_count());
  const auto ax = a % width_, ay = a / width_;
  const auto bx = b % width_, by = b / width_;
  const ShardId dx = ax > bx ? ax - bx : bx - ax;
  const ShardId dy = ay > by ? ay - by : by - ay;
  return dx + dy;
}

MatrixMetric::MatrixMetric(ShardId shards, std::vector<Distance> matrix)
    : shards_(shards), matrix_(std::move(matrix)) {
  SSHARD_CHECK(shards >= 1);
  SSHARD_CHECK(matrix_.size() == static_cast<std::size_t>(shards) * shards);
  for (ShardId i = 0; i < shards_; ++i) {
    SSHARD_CHECK(matrix_[static_cast<std::size_t>(i) * shards_ + i] == 0);
    for (ShardId j = 0; j < shards_; ++j) {
      if (i == j) continue;
      const Distance dij = matrix_[static_cast<std::size_t>(i) * shards_ + j];
      const Distance dji = matrix_[static_cast<std::size_t>(j) * shards_ + i];
      SSHARD_CHECK(dij >= 1);
      SSHARD_CHECK(dij == dji);
      for (ShardId via = 0; via < shards_; ++via) {
        const Distance d1 =
            matrix_[static_cast<std::size_t>(i) * shards_ + via];
        const Distance d2 =
            matrix_[static_cast<std::size_t>(via) * shards_ + j];
        SSHARD_CHECK(dij <= d1 + d2);
      }
    }
  }
}

Distance MatrixMetric::distance(ShardId a, ShardId b) const {
  SSHARD_DCHECK(a < shards_ && b < shards_);
  return matrix_[static_cast<std::size_t>(a) * shards_ + b];
}

std::unique_ptr<MatrixMetric> MakeRandomGeometricMetric(ShardId shards,
                                                        Distance side,
                                                        Rng& rng) {
  SSHARD_CHECK(shards >= 1 && side >= 1);
  std::vector<double> xs(shards), ys(shards);
  for (ShardId i = 0; i < shards; ++i) {
    xs[i] = rng.NextDouble() * side;
    ys[i] = rng.NextDouble() * side;
  }
  const std::size_t n = shards;
  std::vector<Distance> matrix(n * n, 0);
  for (ShardId i = 0; i < shards; ++i) {
    for (ShardId j = i + 1; j < shards; ++j) {
      const double dx = xs[i] - xs[j];
      const double dy = ys[i] - ys[j];
      const auto rounded =
          static_cast<Distance>(std::lround(std::sqrt(dx * dx + dy * dy)));
      const Distance d = std::max<Distance>(1, rounded);
      matrix[i * n + j] = d;
      matrix[j * n + i] = d;
    }
  }
  // Floyd-Warshall closure: rounding can break the triangle inequality, the
  // shortest-path metric restores it without shrinking any distance below 1.
  for (std::size_t via = 0; via < n; ++via) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const Distance through = matrix[i * n + via] + matrix[via * n + j];
        if (i != j && through < matrix[i * n + j]) {
          matrix[i * n + j] = through;
        }
      }
    }
  }
  return std::make_unique<MatrixMetric>(shards, std::move(matrix));
}

}  // namespace stableshard::net
