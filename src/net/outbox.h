// Per-shard send lanes for the shard-parallel round loop.
//
// During StepShard(shard, round) a scheduler may only mutate shard-local
// state, so it cannot call Network::Send (a serial-phase operation)
// directly. Instead every acting shard appends to its own lane — lane index
// == the sending shard — and the round epilogue flushes lanes 0..s-1 in
// order. The flush order is a pure function of per-lane contents, so the
// resulting global send sequence (and hence every downstream delivery
// order) is bit-identical no matter how StepShard calls were scheduled
// across threads.
//
// Two flush drivers exist:
//
//   * Flush(network, now) — the serial classic: walk the active lanes in
//     shard order and Network::Send every item (single-threaded drivers and
//     Scheduler::Step).
//   * the pipelined triple Seal / FlushSealedTo / FinishSealedFlush — the
//     lanes are *double-buffered*: Seal swaps the active buffer with the
//     (empty) sealed one, so the scheduler's next round may keep appending
//     to fresh lanes while pool workers drain the sealed buffer. The drain
//     is partitioned by *destination*: each worker walks every sealed lane
//     in sender order, reconstructs each item's global flush index (lane
//     prefix + position, the seq the serial flush would have assigned) and
//     Deposits only the items addressed to its destination range. Each
//     destination's ring is therefore touched by exactly one worker and
//     receives its items in exactly the serial per-destination order — the
//     only order schedulers ever observe. FinishSealedFlush folds the
//     sender-side traffic split and the global counters back serially and
//     retires the sealed lanes.
//
// Lane memory: Flush used to clear() lanes but never release capacity, so
// one burst round pinned the peak footprint for the rest of the run. Lanes
// now keep a per-sender decayed high-water mark: each retire decays the
// mark by 25% (floored by the round's size) and, once a lane's capacity
// overshoots several times the mark, reallocates it to high-water + 50%
// headroom — memory decays geometrically after a burst, mirroring the lazy
// network rings. lane_memory() reports the footprint (see net::RingMemory).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "net/network.h"

namespace stableshard::net {

/// Footprint of the double-buffered send lanes (see OutboxSet::lane_memory).
struct LaneMemory {
  std::uint64_t lanes_with_capacity = 0;  ///< lanes holding an allocation
  std::uint64_t queued_items = 0;         ///< items currently buffered
  std::uint64_t capacity_bytes = 0;       ///< item storage reserved
  std::uint64_t high_water_items = 0;     ///< sum of decayed per-lane marks
};

template <typename Payload>
class OutboxSet {
 public:
  /// Annotation-only capability for the sealed-buffer window: Seal
  /// acquires it, FlushSealedTo requires it, FinishSealedFlush releases
  /// it, and the serial Flush excludes it — so on clang, running the
  /// serial flush (which drains the *active* lanes) inside a
  /// Seal..FinishSealedFlush window fails compilation instead of
  /// double-draining a round. Public so callers' annotations can name it;
  /// no runtime state (see common/mutex.h).
  common::PhaseCapability sealed_cap;

  struct Item {
    ShardId to;
    std::uint64_t payload_units;
    Payload payload;
  };

  explicit OutboxSet(ShardId shards)
      : buffers_{std::vector<Lane>(shards), std::vector<Lane>(shards)},
        high_water_(shards, 0) {}

  /// Queue a send from `from` to `to`. Must only be called from the
  /// StepShard invocation of shard `from` (or a serial phase).
  void Send(ShardId from, ShardId to, Payload payload,
            std::uint64_t payload_units = 1) {
    SSHARD_DCHECK(from < high_water_.size());
    Lane& lane = buffers_[active_][from];
    lane.items.push_back(Item{to, payload_units, std::move(payload)});
    lane.payload_units += payload_units;
  }

  /// Serial: hand every queued item to the network at round `now`, lane by
  /// lane in shard order, preserving per-lane append order.
  void Flush(Network<Payload>& network, Round now)
      SSHARD_EXCLUDES(sealed_cap) {
    std::vector<Lane>& lanes = buffers_[active_];
    for (ShardId from = 0; from < lanes.size(); ++from) {
      for (Item& item : lanes[from].items) {
        network.Send(from, item.to, now, std::move(item.payload),
                     item.payload_units);
      }
      RetireLane(from, lanes[from]);
    }
  }

  /// Serial: swap the active buffer with the (drained) sealed one. The
  /// scheduler may keep Sending into the fresh active lanes while pool
  /// workers FlushSealedTo the sealed buffer.
  void Seal() SSHARD_ACQUIRE(sealed_cap) {
    sealed_cap.Acquire();  // annotation-only, no runtime effect
#ifndef NDEBUG
    for (const Lane& lane : buffers_[active_ ^ 1]) {
      SSHARD_DCHECK(lane.items.empty() && "sealing over an undrained buffer");
    }
#endif
    active_ ^= 1;
  }

  /// Partitioned drain of the sealed buffer: deposit every sealed item
  /// addressed to a destination in [dest_begin, dest_end) at round `now`.
  /// Walks all lanes in sender order so each item's global flush index is
  /// reconstructed exactly as the serial Flush would have assigned it.
  /// Safe to run concurrently for disjoint destination ranges.
  void FlushSealedTo(Network<Payload>& network, Round now, ShardId dest_begin,
                     ShardId dest_end)
      SSHARD_REQUIRES(sealed_cap, network.flush_cap) {
    std::vector<Lane>& lanes = buffers_[active_ ^ 1];
    std::uint64_t seq = network.next_seq();
    for (ShardId from = 0; from < lanes.size(); ++from) {
      for (Item& item : lanes[from].items) {
        if (item.to >= dest_begin && item.to < dest_end) {
          network.Deposit(from, item.to, now, seq, std::move(item.payload),
                          item.payload_units);
        }
        ++seq;
      }
    }
  }

  /// Serial epilogue of the partitioned drain: fold sender-side traffic and
  /// the global network counters, then retire the sealed lanes (clear +
  /// high-water decay + shrink policy).
  void FinishSealedFlush(Network<Payload>& network)
      SSHARD_RELEASE(sealed_cap) SSHARD_RELEASE(network.flush_cap) {
    std::vector<Lane>& lanes = buffers_[active_ ^ 1];
    std::uint64_t messages = 0;
    std::uint64_t payload_units = 0;
    for (ShardId from = 0; from < lanes.size(); ++from) {
      Lane& lane = lanes[from];
      if (!lane.items.empty()) {
        network.AddSenderTraffic(from, lane.items.size(), lane.payload_units);
        messages += lane.items.size();
        payload_units += lane.payload_units;
      }
      RetireLane(from, lane);
    }
    network.CommitPartitionedSends(messages, payload_units);
    sealed_cap.Release();  // annotation-only, no runtime effect
  }

  bool Empty() const {
    for (const std::vector<Lane>& lanes : buffers_) {
      for (const Lane& lane : lanes) {
        if (!lane.items.empty()) return false;
      }
    }
    return true;
  }

  ShardId shard_count() const {
    return static_cast<ShardId>(high_water_.size());
  }

  /// Measured lane footprint across both buffers (serial phases only).
  LaneMemory lane_memory() const {
    LaneMemory memory;
    for (const std::vector<Lane>& lanes : buffers_) {
      for (const Lane& lane : lanes) {
        if (lane.items.capacity() > 0) ++memory.lanes_with_capacity;
        memory.queued_items += lane.items.size();
        memory.capacity_bytes += lane.items.capacity() * sizeof(Item);
      }
    }
    for (const std::uint64_t mark : high_water_) {
      memory.high_water_items += mark;
    }
    return memory;
  }

 private:
  struct Lane {
    std::vector<Item> items;
    /// Running payload-unit sum of `items` (lane-owned, so Send may update
    /// it from concurrent StepShard calls without sharing).
    std::uint64_t payload_units = 0;
  };

  /// Clear a drained lane and apply the shrink policy: decay the sender's
  /// high-water mark by 25% (floored by this round's size) and release
  /// capacity once it overshoots 4x the decayed mark + headroom, then
  /// reserve() the mark back so steady traffic reallocates nothing.
  void RetireLane(ShardId from, Lane& lane) {
    std::uint64_t& mark = high_water_[from];
    mark = std::max<std::uint64_t>(lane.items.size(), mark - mark / 4);
    lane.payload_units = 0;
    const std::size_t target = static_cast<std::size_t>(mark + mark / 2);
    if (lane.items.capacity() >
        std::max<std::size_t>(4 * target, kShrinkFloor)) {
      std::vector<Item>().swap(lane.items);
      lane.items.reserve(target);
    } else {
      lane.items.clear();
    }
  }

  /// Lanes below this capacity are never shrunk (reallocation churn is not
  /// worth a few KB).
  static constexpr std::size_t kShrinkFloor = 64;

  /// buffers_[active_] receives Sends; buffers_[active_ ^ 1] is the sealed
  /// buffer being drained (empty outside a Seal..FinishSealedFlush window).
  std::vector<Lane> buffers_[2];
  int active_ = 0;
  /// Per-sender decayed high-water marks (serial phases only).
  std::vector<std::uint64_t> high_water_;
};

}  // namespace stableshard::net
