// Per-shard send lanes for the shard-parallel round loop.
//
// During StepShard(shard, round) a scheduler may only mutate shard-local
// state, so it cannot call Network::Send (a serial-phase operation)
// directly. Instead every acting shard appends to its own lane — lane index
// == the sending shard — and EndRound flushes lanes 0..s-1 in order. The
// flush order is a pure function of per-lane contents, so the resulting
// global send sequence (and hence every downstream delivery order) is
// bit-identical no matter how StepShard calls were scheduled across
// threads.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "net/network.h"

namespace stableshard::net {

template <typename Payload>
class OutboxSet {
 public:
  struct Item {
    ShardId to;
    std::uint64_t payload_units;
    Payload payload;
  };

  explicit OutboxSet(ShardId shards) : lanes_(shards) {}

  /// Queue a send from `from` to `to`. Must only be called from the
  /// StepShard invocation of shard `from` (or a serial phase).
  void Send(ShardId from, ShardId to, Payload payload,
            std::uint64_t payload_units = 1) {
    SSHARD_DCHECK(from < lanes_.size());
    lanes_[from].push_back(Item{to, payload_units, std::move(payload)});
  }

  /// Serial: hand every queued item to the network at round `now`, lane by
  /// lane in shard order, preserving per-lane append order.
  void Flush(Network<Payload>& network, Round now) {
    for (ShardId from = 0; from < lanes_.size(); ++from) {
      for (Item& item : lanes_[from]) {
        network.Send(from, item.to, now, std::move(item.payload),
                     item.payload_units);
      }
      lanes_[from].clear();
    }
  }

  bool Empty() const {
    for (const auto& lane : lanes_) {
      if (!lane.empty()) return false;
    }
    return true;
  }

  ShardId shard_count() const { return static_cast<ShardId>(lanes_.size()); }

 private:
  std::vector<std::vector<Item>> lanes_;
};

}  // namespace stableshard::net
