#include "net/topology_factory.h"

#include "common/check.h"
#include "common/math_util.h"

namespace stableshard::net {

std::optional<TopologyKind> TryParseTopology(const std::string& name) {
  if (name == "uniform") return TopologyKind::kUniform;
  if (name == "line") return TopologyKind::kLine;
  if (name == "ring") return TopologyKind::kRing;
  if (name == "grid") return TopologyKind::kGrid;
  if (name == "random_geo") return TopologyKind::kRandomGeometric;
  return std::nullopt;
}

TopologyKind ParseTopology(const std::string& name) {
  const std::optional<TopologyKind> kind = TryParseTopology(name);
  SSHARD_CHECK(kind.has_value() && "unknown topology name");
  return *kind;
}

std::string TopologyName(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kUniform:
      return "uniform";
    case TopologyKind::kLine:
      return "line";
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kGrid:
      return "grid";
    case TopologyKind::kRandomGeometric:
      return "random_geo";
  }
  return "unknown";
}

std::unique_ptr<ShardMetric> MakeMetric(TopologyKind kind, ShardId shards,
                                        Rng* rng) {
  switch (kind) {
    case TopologyKind::kUniform:
      return std::make_unique<UniformMetric>(shards);
    case TopologyKind::kLine:
      return std::make_unique<LineMetric>(shards);
    case TopologyKind::kRing:
      return std::make_unique<RingMetric>(shards);
    case TopologyKind::kGrid: {
      const auto width = static_cast<ShardId>(CeilSqrt(shards));
      const auto height = static_cast<ShardId>(CeilDiv(shards, width));
      // The grid may have more cells than shards; use an exact-fit grid by
      // requiring the product to equal the shard count.
      SSHARD_CHECK(width * height == shards &&
                   "grid topology needs shards = width * height; "
                   "use a square shard count");
      return std::make_unique<GridMetric>(width, height);
    }
    case TopologyKind::kRandomGeometric: {
      SSHARD_CHECK(rng != nullptr &&
                   "random_geo topology requires an RNG for placement");
      return MakeRandomGeometricMetric(shards, shards, *rng);
    }
  }
  return nullptr;
}

}  // namespace stableshard::net
