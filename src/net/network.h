// Simulated inter-shard message-passing network.
//
// Shards exchange messages over the weighted clique G_s; a message sent at
// round r from shard a to shard b is delivered at round r + distance(a, b)
// (distance >= 1 for a != b; self-sends deliver next round, modelling the
// one-round intra-shard consensus on the message).
//
// The network layer assumes the cluster-sending protocol of Hellings &
// Sadoghi (modelled in src/consensus): delivery is reliable and agreed upon
// by all non-faulty nodes of the receiving shard within the round budget.
// Here we account for traffic (messages, payload units) and delay only.
//
// Storage is a ring buffer of round buckets partitioned by destination
// shard: slot (deliver % slot_count, dest). Because every delivery offset
// is in [1, Diameter], slot_count = Diameter + 2 guarantees no two live
// rounds share a slot, so Send is O(1) amortized and delivery is O(due)
// with no tree rebalancing (the previous implementation kept a global
// std::map<Round, vector> calendar). The bucket table is dense —
// O(Diameter * s) empty vectors — which is small for the uniform model but
// grows to O(s^2) on line/ring topologies (s = 1024 line: ~1M buckets,
// ~25 MB); a lazily grown per-destination ring is the planned mitigation
// for the s >= 1024 sweeps (see ROADMAP).
//
// Concurrency contract (the shard-parallel round loop relies on it):
//   * Send may only be called from serial phases (BeginRound/EndRound or
//     fully single-threaded drivers);
//   * DeliverTo(shard, round) may run concurrently for *distinct* shards:
//     it touches only that destination's bucket and per-shard counters
//     (delivered_total_ is a relaxed atomic used for stats only);
//   * every (shard, round) pair must be drained in round order — the
//     synchronous simulation steps every shard every round, which is what
//     keeps ring slots empty before reuse (DCHECKed per envelope).
//
// Network<Payload> is a class template so each scheduler can use its own
// message variant without type erasure on the hot path.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "net/metric.h"

namespace stableshard::net {

/// Traffic accounting, exposed by every Network instantiation.
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t payload_units = 0;  ///< sum of caller-declared payload sizes
  std::uint64_t max_in_flight = 0;  ///< peak undelivered messages
};

/// Per-shard traffic split (DoS forensics, load-balance introspection).
struct ShardTraffic {
  std::uint64_t messages_in = 0;
  std::uint64_t messages_out = 0;
  std::uint64_t payload_in = 0;
  std::uint64_t payload_out = 0;
};

template <typename Payload>
class Network {
 public:
  struct Envelope {
    ShardId from;
    ShardId to;
    Round sent;
    Round deliver;
    std::uint64_t seq;  ///< global send order (Deliver() merge key)
    Payload payload;
  };

  explicit Network(const ShardMetric& metric)
      : metric_(&metric),
        shard_count_(metric.shard_count()),
        slot_count_(static_cast<std::size_t>(metric.Diameter()) + 2),
        buckets_(slot_count_ * shard_count_),
        pending_by_dest_(shard_count_),
        shard_traffic_(shard_count_) {}

  /// Queue `payload` from shard `from` to shard `to` at round `now`.
  /// `payload_units` is the caller-declared logical size (e.g. transaction
  /// count) used for the O(bs) message-size accounting of Section 3.
  /// Serial phases only — see the concurrency contract above.
  void Send(ShardId from, ShardId to, Round now, Payload payload,
            std::uint64_t payload_units = 1) {
    SSHARD_DCHECK(from < shard_count_);
    SSHARD_DCHECK(to < shard_count_);
    const Distance d = from == to ? 1 : metric_->distance(from, to);
    const Round deliver = now + d;
    buckets_[BucketIndex(deliver, to)].push_back(
        Envelope{from, to, now, deliver, seq_++, std::move(payload)});
    ++stats_.messages_sent;
    stats_.payload_units += payload_units;
    ++shard_traffic_[from].messages_out;
    ++shard_traffic_[to].messages_in;
    shard_traffic_[from].payload_out += payload_units;
    shard_traffic_[to].payload_in += payload_units;
    ++pending_by_dest_[to];
    // Exact at every Send: deliveries never run concurrently with sends.
    const std::uint64_t in_flight =
        stats_.messages_sent -
        delivered_total_.load(std::memory_order_relaxed);
    if (in_flight > stats_.max_in_flight) stats_.max_in_flight = in_flight;
  }

  /// Remove and return every message addressed to `shard` due at round
  /// `now`, in send order. Safe to call concurrently for distinct shards.
  std::vector<Envelope> DeliverTo(ShardId shard, Round now) {
    SSHARD_DCHECK(shard < shard_count_);
    std::vector<Envelope>& bucket = buckets_[BucketIndex(now, shard)];
    std::vector<Envelope> due = std::move(bucket);
    bucket.clear();
    for ([[maybe_unused]] const Envelope& envelope : due) {
      // A stale envelope here means some (shard, round) was never drained
      // and the ring slot got reused — a round-loop bug, not a data bug.
      SSHARD_DCHECK(envelope.deliver == now && envelope.to == shard);
    }
    pending_by_dest_[shard] -= due.size();
    delivered_total_.fetch_add(due.size(), std::memory_order_relaxed);
    return due;
  }

  /// Remove and return every message due at round `now` across all shards,
  /// merged back into global send order (serial drivers and tests).
  std::vector<Envelope> Deliver(Round now) {
    std::vector<Envelope> due;
    for (ShardId shard = 0; shard < shard_count_; ++shard) {
      std::vector<Envelope> part = DeliverTo(shard, now);
      due.insert(due.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    std::sort(due.begin(), due.end(),
              [](const Envelope& a, const Envelope& b) { return a.seq < b.seq; });
    return due;
  }

  bool HasPending() const { return pending_count() > 0; }
  std::uint64_t pending_count() const {
    std::uint64_t total = 0;
    for (const std::uint64_t count : pending_by_dest_) total += count;
    return total;
  }
  /// Undelivered messages addressed to one shard.
  std::uint64_t pending_for(ShardId shard) const {
    return pending_by_dest_[shard];
  }
  const TrafficStats& stats() const { return stats_; }
  const ShardTraffic& shard_traffic(ShardId shard) const {
    return shard_traffic_[shard];
  }
  const ShardMetric& metric() const { return *metric_; }

 private:
  std::size_t BucketIndex(Round deliver, ShardId dest) const {
    return static_cast<std::size_t>(deliver % slot_count_) * shard_count_ +
           dest;
  }

  const ShardMetric* metric_;
  ShardId shard_count_;
  std::size_t slot_count_;
  std::vector<std::vector<Envelope>> buckets_;  // [round % slots][dest]
  std::vector<std::uint64_t> pending_by_dest_;
  std::vector<ShardTraffic> shard_traffic_;
  std::uint64_t seq_ = 0;
  std::atomic<std::uint64_t> delivered_total_{0};
  TrafficStats stats_;
};

}  // namespace stableshard::net
