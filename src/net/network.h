// Simulated inter-shard message-passing network.
//
// Shards exchange messages over the weighted clique G_s; a message sent at
// round r from shard a to shard b is delivered at round r + distance(a, b)
// (distance >= 1 for a != b; self-sends deliver next round, modelling the
// one-round intra-shard consensus on the message).
//
// The network layer assumes the cluster-sending protocol of Hellings &
// Sadoghi (modelled in src/consensus): delivery is reliable and agreed upon
// by all non-faulty nodes of the receiving shard within the round budget.
// Here we account for traffic (messages, payload units) and delay only.
//
// Storage is a *lazily grown per-destination ring*: each destination shard
// owns a ring of round slots, allocated on first contact and grown
// geometrically to cover the largest delivery offset that destination has
// actually seen (capped at Diameter + 2, which always suffices because
// every offset is in [1, Diameter]). At any instant the live deliveries
// for one destination span at most max-seen-offset consecutive rounds, so
// a ring of max-seen-offset + 2 slots never maps two live rounds to one
// slot; growth re-buckets the O(in-flight) envelopes and happens at most
// log(Diameter) times per destination. Send stays O(1) amortized and
// delivery O(due). The footprint is O(sum over live destinations of their
// offset horizon) instead of the former dense O(Diameter * s) table: a
// 1024-shard line (~1M buckets, ~25 MB, allocated up front regardless of
// traffic) now allocates nothing at construction and ~16 slots per
// destination under radius-8 local traffic — see ring_memory(), reported
// by bench/parallel_rounds.
//
// Bucket vectors are *recycled by swap*, never moved-and-dropped: the
// out-parameter DeliverTo swaps the due slot with the caller's reusable
// buffer, so envelope capacity ping-pongs between the ring and the caller
// across rounds instead of being reallocated every delivery. Schedulers
// keep one inbox buffer per shard for exactly this purpose.
//
// Concurrency contract (the shard-parallel round loop relies on it):
//   * Send may only be called from serial phases (BeginRound/EndRound or
//     fully single-threaded drivers) — it grows rings lazily, so it is
//     never safe concurrently with anything;
//   * DeliverTo(shard, round) may run concurrently for *distinct* shards:
//     it touches only that destination's ring and per-shard counters
//     (delivered_total_ is a relaxed atomic used for stats only);
//   * every (shard, round) pair must be drained in round order — the
//     synchronous simulation steps every shard every round, which is what
//     keeps ring slots empty before reuse (DCHECKed per envelope).
//
// Partitioned flush (the pipelined EndRound, see net/outbox.h): Deposit is
// the destination-parallel half of Send — it takes an explicit sequence
// number and touches only the destination's ring, pending counter and
// inbound traffic split, so workers owning disjoint destination sets may
// Deposit concurrently. The sender-side split and the global counters
// (seq_, stats_, max_in_flight) are folded back serially afterwards via
// AddSenderTraffic + CommitPartitionedSends, which reproduce exactly the
// values the per-send updates would have left: within one flush no delivery
// runs, so in-flight grows monotonically and its peak is attained at the
// last deposited envelope.
//
// Network<Payload> is a class template so each scheduler can use its own
// message variant without type erasure on the hot path.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "net/metric.h"

namespace stableshard::net {

/// Traffic accounting, exposed by every Network instantiation.
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t payload_units = 0;  ///< sum of caller-declared payload sizes
  std::uint64_t max_in_flight = 0;  ///< peak undelivered messages
};

/// Per-shard traffic split (DoS forensics, load-balance introspection,
/// backpressure admission control).
///
/// Contract: counters are cumulative over the run and only ever grow.
/// The `messages_in` / `payload_in` halves are updated by Send (serial)
/// and Deposit (destination-owned, so one writer per shard during a
/// partitioned flush); the `_out` halves by Send and the serial
/// AddSenderTraffic fold. Reads are only meaningful from serial phases
/// (BeginRound / FinishRound / between rounds) — there the values are
/// bit-identical whatever the worker or partition count, which is what
/// lets traffic-reactive schedulers (consensus/backpressure_scheduler)
/// branch on them without breaking the determinism contract.
struct ShardTraffic {
  std::uint64_t messages_in = 0;
  std::uint64_t messages_out = 0;
  std::uint64_t payload_in = 0;
  std::uint64_t payload_out = 0;
  /// `messages_in` as of the last Network::SnapshotInflow() — the baseline
  /// for the cheap per-round inflow readout below.
  std::uint64_t messages_in_snapshot = 0;

  /// Messages that arrived for this destination since the last snapshot
  /// (one round's inflow when SnapshotInflow runs once per round).
  std::uint64_t InflowSinceSnapshot() const {
    return messages_in - messages_in_snapshot;
  }
};

/// Footprint of the lazy per-destination ring (see ring_memory()).
struct RingMemory {
  std::uint64_t live_destinations = 0;  ///< rings allocated (ever contacted)
  std::uint64_t allocated_buckets = 0;  ///< slot vectors across live rings
  std::uint64_t bucket_capacity_bytes = 0;  ///< envelope storage reserved
  /// Buckets the former dense table would hold: (Diameter + 2) * s.
  std::uint64_t dense_bucket_equivalent = 0;
};

template <typename Payload>
class Network {
 public:
  /// Annotation-only capability for the partitioned-flush window (the
  /// Deposit/Commit split documented above). A scheduler's SealRound
  /// acquires it, Deposit and AddSenderTraffic require it, and
  /// CommitPartitionedSends releases it — so on clang, calling Send
  /// inside the window (or Deposit outside it) fails compilation. Public
  /// because callers' annotations must be able to name it; it holds no
  /// runtime state (see common/mutex.h).
  common::PhaseCapability flush_cap;

  struct Envelope {
    ShardId from;
    ShardId to;
    Round sent;
    Round deliver;
    std::uint64_t seq;  ///< global send order (Deliver() merge key)
    Payload payload;
  };

  explicit Network(const ShardMetric& metric)
      : metric_(&metric),
        shard_count_(metric.shard_count()),
        slot_count_(static_cast<std::size_t>(metric.Diameter()) + 2),
        rings_(shard_count_),
        pending_by_dest_(shard_count_),
        shard_traffic_(shard_count_) {}

  /// Queue `payload` from shard `from` to shard `to` at round `now`.
  /// `payload_units` is the caller-declared logical size (e.g. transaction
  /// count) used for the O(bs) message-size accounting of Section 3.
  /// Serial phases only — see the concurrency contract above.
  void Send(ShardId from, ShardId to, Round now, Payload payload,
            std::uint64_t payload_units = 1) SSHARD_EXCLUDES(flush_cap) {
    SSHARD_DCHECK(from < shard_count_);
    SSHARD_DCHECK(to < shard_count_);
    const Distance d = from == to ? 1 : metric_->distance(from, to);
    const Round deliver = now + d;
    std::vector<std::vector<Envelope>>& ring = rings_[to];
    // d + 2 slots keep live rounds collision-free for offsets up to d;
    // slot_count_ (= Diameter + 2) is the proven global cap (the clamp
    // also covers the degenerate s = 1 self-send ring of 2 slots).
    const std::size_t needed =
        std::min<std::size_t>(static_cast<std::size_t>(d) + 2, slot_count_);
    if (ring.size() < needed) GrowRing(ring, needed);
    ring[deliver % ring.size()].push_back(
        Envelope{from, to, now, deliver, seq_++, std::move(payload)});
    ++stats_.messages_sent;
    stats_.payload_units += payload_units;
    ++shard_traffic_[from].messages_out;
    ++shard_traffic_[to].messages_in;
    shard_traffic_[from].payload_out += payload_units;
    shard_traffic_[to].payload_in += payload_units;
    ++pending_by_dest_[to];
    // Exact at every Send: deliveries never run concurrently with sends.
    const std::uint64_t in_flight =
        stats_.messages_sent -
        delivered_total_.load(std::memory_order_relaxed);
    if (in_flight > stats_.max_in_flight) stats_.max_in_flight = in_flight;
  }

  /// Destination-parallel half of Send (partitioned flush only): queue
  /// `payload` into `to`'s ring under the caller-assigned global sequence
  /// number. Touches only rings_[to], pending_by_dest_[to] and the inbound
  /// half of shard_traffic_[to], so callers owning disjoint destination
  /// sets may run concurrently. The caller must hand out seq values that
  /// continue next_seq() in the serial flush order and finish the flush
  /// with AddSenderTraffic + CommitPartitionedSends before any other
  /// network call.
  void Deposit(ShardId from, ShardId to, Round now, std::uint64_t seq,
               Payload payload, std::uint64_t payload_units = 1)
      SSHARD_REQUIRES(flush_cap) {
    SSHARD_DCHECK(from < shard_count_);
    SSHARD_DCHECK(to < shard_count_);
    const Distance d = from == to ? 1 : metric_->distance(from, to);
    const Round deliver = now + d;
    std::vector<std::vector<Envelope>>& ring = rings_[to];
    const std::size_t needed =
        std::min<std::size_t>(static_cast<std::size_t>(d) + 2, slot_count_);
    if (ring.size() < needed) GrowRing(ring, needed);
    ring[deliver % ring.size()].push_back(
        Envelope{from, to, now, deliver, seq, std::move(payload)});
    ++shard_traffic_[to].messages_in;
    shard_traffic_[to].payload_in += payload_units;
    ++pending_by_dest_[to];
  }

  /// First unassigned global sequence number — the base for a partitioned
  /// flush (serial phases only).
  std::uint64_t next_seq() const { return seq_; }

  /// Serial epilogue of a partitioned flush: fold one sender's outbound
  /// traffic split (Deposit only updates the destination side).
  void AddSenderTraffic(ShardId from, std::uint64_t messages,
                        std::uint64_t payload_units)
      SSHARD_REQUIRES(flush_cap) {
    SSHARD_DCHECK(from < shard_count_);
    shard_traffic_[from].messages_out += messages;
    shard_traffic_[from].payload_out += payload_units;
  }

  /// Serial epilogue of a partitioned flush: advance the sequence counter
  /// past the deposited envelopes and fold the global stats. Equals the
  /// per-send accounting because in-flight only grows during a flush.
  void CommitPartitionedSends(std::uint64_t messages,
                              std::uint64_t payload_units)
      SSHARD_RELEASE(flush_cap) {
    flush_cap.Release();  // annotation-only, no runtime effect
    seq_ += messages;
    stats_.messages_sent += messages;
    stats_.payload_units += payload_units;
    const std::uint64_t in_flight =
        stats_.messages_sent -
        delivered_total_.load(std::memory_order_relaxed);
    if (in_flight > stats_.max_in_flight) stats_.max_in_flight = in_flight;
  }

  /// Move every message addressed to `shard` due at round `now` into `out`
  /// (cleared first), in send order. The due ring slot is *swapped* with
  /// `out`, so a reused buffer donates its capacity back to the ring —
  /// steady state does zero envelope allocation. Safe to call concurrently
  /// for distinct shards.
  void DeliverTo(ShardId shard, Round now, std::vector<Envelope>& out) {
    SSHARD_DCHECK(shard < shard_count_);
    out.clear();
    std::vector<std::vector<Envelope>>& ring = rings_[shard];
    if (ring.empty()) return;  // never contacted: nothing can be due
    std::vector<Envelope>& bucket = ring[now % ring.size()];
    std::swap(bucket, out);
    for ([[maybe_unused]] const Envelope& envelope : out) {
      // A stale envelope here means some (shard, round) was never drained
      // and the ring slot got reused — a round-loop bug, not a data bug.
      SSHARD_DCHECK(envelope.deliver == now && envelope.to == shard);
    }
    pending_by_dest_[shard] -= out.size();
    delivered_total_.fetch_add(out.size(), std::memory_order_relaxed);
  }

  /// Remove and return every message addressed to `shard` due at round
  /// `now`, in send order (convenience overload; the returned vector's
  /// capacity is not recycled — hot paths should pass a reusable buffer).
  std::vector<Envelope> DeliverTo(ShardId shard, Round now) {
    std::vector<Envelope> due;
    DeliverTo(shard, now, due);
    return due;
  }

  /// Remove and return every message due at round `now` across all shards,
  /// merged back into global send order (serial drivers and tests).
  std::vector<Envelope> Deliver(Round now) {
    std::vector<Envelope> due;
    for (ShardId shard = 0; shard < shard_count_; ++shard) {
      std::vector<Envelope> part = DeliverTo(shard, now);
      due.insert(due.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    std::sort(due.begin(), due.end(),
              [](const Envelope& a, const Envelope& b) { return a.seq < b.seq; });
    return due;
  }

  bool HasPending() const { return pending_count() > 0; }
  std::uint64_t pending_count() const {
    std::uint64_t total = 0;
    for (const std::uint64_t count : pending_by_dest_) total += count;
    return total;
  }
  /// Undelivered messages addressed to one shard.
  std::uint64_t pending_for(ShardId shard) const {
    return pending_by_dest_[shard];
  }
  const TrafficStats& stats() const { return stats_; }
  const ShardTraffic& shard_traffic(ShardId shard) const {
    return shard_traffic_[shard];
  }

  /// Baseline every destination's inbound counter so that
  /// ShardTraffic::InflowSinceSnapshot() reads the traffic of the window
  /// since this call. O(s) plain stores; serial phases only (it races with
  /// nothing because Deposit never touches the snapshot field, but the
  /// reader contract on ShardTraffic is serial anyway). Calling it once
  /// per round from BeginRound gives a per-round inflow readout without
  /// any per-send cost.
  void SnapshotInflow() {
    for (ShardTraffic& traffic : shard_traffic_) {
      traffic.messages_in_snapshot = traffic.messages_in;
    }
  }
  const ShardMetric& metric() const { return *metric_; }
  std::size_t slot_count() const { return slot_count_; }

  /// Measured ring footprint (serial phases only: walks every live ring).
  RingMemory ring_memory() const {
    RingMemory memory;
    memory.dense_bucket_equivalent =
        static_cast<std::uint64_t>(slot_count_) * shard_count_;
    for (const std::vector<std::vector<Envelope>>& ring : rings_) {
      if (ring.empty()) continue;
      ++memory.live_destinations;
      memory.allocated_buckets += ring.size();
      for (const std::vector<Envelope>& bucket : ring) {
        memory.bucket_capacity_bytes += bucket.capacity() * sizeof(Envelope);
      }
    }
    return memory;
  }

 private:
  /// Grow `ring` to a power-of-two size >= needed (capped at slot_count_)
  /// and re-bucket its in-flight envelopes under the new modulus. Each old
  /// slot holds at most one live delivery round (the drain contract) and
  /// live rounds span less than the old size, so every new slot receives
  /// from exactly one old slot — per-slot send order is preserved.
  void GrowRing(std::vector<std::vector<Envelope>>& ring,
                std::size_t needed) {
    std::size_t size = std::max<std::size_t>(ring.size() * 2, 4);
    while (size < needed) size *= 2;
    size = std::min(size, slot_count_);
    SSHARD_DCHECK(size >= needed);
    std::vector<std::vector<Envelope>> grown(size);
    for (std::vector<Envelope>& bucket : ring) {
      for (Envelope& envelope : bucket) {
        grown[envelope.deliver % size].push_back(std::move(envelope));
      }
    }
    ring.swap(grown);
  }

  const ShardMetric* metric_;
  ShardId shard_count_;
  std::size_t slot_count_;
  /// rings_[dest] is empty until the first Send to `dest`, then holds
  /// between 2 and slot_count_ buckets indexed by deliver % rings_[dest]
  /// .size() (grown on demand by GrowRing).
  std::vector<std::vector<std::vector<Envelope>>> rings_;
  std::vector<std::uint64_t> pending_by_dest_;
  std::vector<ShardTraffic> shard_traffic_;
  std::uint64_t seq_ = 0;
  std::atomic<std::uint64_t> delivered_total_{0};
  TrafficStats stats_;
};

}  // namespace stableshard::net
