// Simulated inter-shard message-passing network.
//
// Shards exchange messages over the weighted clique G_s; a message sent at
// round r from shard a to shard b is delivered at round r + distance(a, b)
// (distance >= 1 for a != b; self-sends deliver next round, modelling the
// one-round intra-shard consensus on the message).
//
// The network layer assumes the cluster-sending protocol of Hellings &
// Sadoghi (modelled in src/consensus): delivery is reliable and agreed upon
// by all non-faulty nodes of the receiving shard within the round budget.
// Here we account for traffic (messages, payload units) and delay only.
//
// Network<Payload> is a class template so each scheduler can use its own
// message variant without type erasure on the hot path.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "net/metric.h"

namespace stableshard::net {

/// Traffic accounting, exposed by every Network instantiation.
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t payload_units = 0;  ///< sum of caller-declared payload sizes
  std::uint64_t max_in_flight = 0;  ///< peak undelivered messages
};

template <typename Payload>
class Network {
 public:
  struct Envelope {
    ShardId from;
    ShardId to;
    Round sent;
    Round deliver;
    Payload payload;
  };

  explicit Network(const ShardMetric& metric) : metric_(&metric) {}

  /// Queue `payload` from shard `from` to shard `to` at round `now`.
  /// `payload_units` is the caller-declared logical size (e.g. transaction
  /// count) used for the O(bs) message-size accounting of Section 3.
  void Send(ShardId from, ShardId to, Round now, Payload payload,
            std::uint64_t payload_units = 1) {
    SSHARD_DCHECK(from < metric_->shard_count());
    SSHARD_DCHECK(to < metric_->shard_count());
    const Distance d = from == to ? 1 : metric_->distance(from, to);
    const Round deliver = now + d;
    in_flight_[deliver].push_back(
        Envelope{from, to, now, deliver, std::move(payload)});
    ++stats_.messages_sent;
    stats_.payload_units += payload_units;
    pending_count_ += 1;
    if (pending_count_ > stats_.max_in_flight) {
      stats_.max_in_flight = pending_count_;
    }
  }

  /// Remove and return every message due at round `now`. Messages are
  /// returned in deterministic (send-order) sequence.
  std::vector<Envelope> Deliver(Round now) {
    std::vector<Envelope> due;
    auto it = in_flight_.find(now);
    if (it != in_flight_.end()) {
      due = std::move(it->second);
      in_flight_.erase(it);
      pending_count_ -= due.size();
    }
    // A synchronous simulation drives Deliver() for every round in order, so
    // nothing earlier than `now` may remain.
    SSHARD_DCHECK(in_flight_.empty() || in_flight_.begin()->first > now);
    return due;
  }

  bool HasPending() const { return pending_count_ > 0; }
  std::uint64_t pending_count() const { return pending_count_; }
  const TrafficStats& stats() const { return stats_; }
  const ShardMetric& metric() const { return *metric_; }

 private:
  const ShardMetric* metric_;
  std::map<Round, std::vector<Envelope>> in_flight_;
  std::uint64_t pending_count_ = 0;
  TrafficStats stats_;
};

}  // namespace stableshard::net
