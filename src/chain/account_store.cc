#include "chain/account_store.h"

#include <algorithm>

#include "common/check.h"

namespace stableshard::chain {

Balance AccountStore::BalanceOf(AccountId account) const {
  const auto it = balances_.find(account);
  return it == balances_.end() ? default_balance_ : it->second;
}

void AccountStore::SetBalance(AccountId account, Balance balance) {
  balances_[account] = balance;
}

void AccountStore::Apply(const Action& action) {
  const Balance current = BalanceOf(action.account);
  SSHARD_CHECK(action.IsValidOn(current));
  if (action.IsWrite()) {
    balances_[action.account] = action.Apply(current);
  }
}

std::vector<std::pair<AccountId, Balance>> AccountStore::SortedBalances()
    const {
  std::vector<std::pair<AccountId, Balance>> sorted(balances_.begin(),
                                                    balances_.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

Balance AccountStore::TotalBalance() const {
  Balance total = 0;
  // lint:allow(unordered-iteration): integer sum, order-independent.
  for (const auto& [account, balance] : balances_) {
    (void)account;
    total += balance;
  }
  return total;
}

}  // namespace stableshard::chain
