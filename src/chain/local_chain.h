// A shard's local blockchain of committed subtransactions.
#pragma once

#include <vector>

#include "chain/block.h"
#include "common/types.h"

namespace stableshard::chain {

class LocalChain {
 public:
  explicit LocalChain(ShardId shard) : shard_(shard) {}

  /// Append a committed subtransaction of `txn` at `commit_round`.
  /// Returns the appended block.
  const Block& Append(TxnId txn, Round commit_round,
                      std::uint64_t payload_digest);

  /// Verify every hash link from genesis; true iff untampered.
  bool Verify() const;

  ShardId shard() const { return shard_; }
  std::size_t size() const { return blocks_.size(); }
  bool empty() const { return blocks_.empty(); }
  const std::vector<Block>& blocks() const { return blocks_; }
  const Block& back() const { return blocks_.back(); }

  /// Test hook: mutate a block in place (integrity tests only).
  Block& MutableBlockForTest(std::size_t index) { return blocks_[index]; }

 private:
  ShardId shard_;
  std::vector<Block> blocks_;
};

}  // namespace stableshard::chain
