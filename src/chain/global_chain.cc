#include "chain/global_chain.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace stableshard::chain {

ReconstructionResult ReconstructGlobalChain(
    const std::vector<LocalChain>& chains, AtomicityMode mode) {
  ReconstructionResult result;

  std::map<TxnId, GlobalEntry> by_txn;
  std::set<std::pair<TxnId, ShardId>> seen;

  for (const LocalChain& chain : chains) {
    if (!chain.Verify()) {
      result.error = "hash link verification failed on shard " +
                     std::to_string(chain.shard());
      return result;
    }
    for (const Block& block : chain.blocks()) {
      if (!seen.insert({block.txn, block.shard}).second) {
        result.error = "duplicate (txn, shard) block: txn " +
                       std::to_string(block.txn);
        return result;
      }
      auto [it, inserted] = by_txn.try_emplace(block.txn);
      GlobalEntry& entry = it->second;
      if (inserted) {
        entry.txn = block.txn;
        entry.commit_round = block.commit_round;
        entry.last_commit_round = block.commit_round;
      } else {
        if (mode == AtomicityMode::kSameRound &&
            entry.commit_round != block.commit_round) {
          result.error = "txn " + std::to_string(block.txn) +
                         " committed at different rounds across shards";
          return result;
        }
        entry.commit_round = std::min(entry.commit_round, block.commit_round);
        entry.last_commit_round =
            std::max(entry.last_commit_round, block.commit_round);
      }
      entry.shards.push_back(block.shard);
    }
  }

  result.entries.reserve(by_txn.size());
  for (auto& [txn, entry] : by_txn) {
    (void)txn;
    std::sort(entry.shards.begin(), entry.shards.end());
    result.entries.push_back(std::move(entry));
  }
  // Global order: commit round first (conflicting txns always differ there),
  // txn id as the deterministic tiebreak for concurrent non-conflicting txns.
  std::sort(result.entries.begin(), result.entries.end(),
            [](const GlobalEntry& a, const GlobalEntry& b) {
              if (a.commit_round != b.commit_round) {
                return a.commit_round < b.commit_round;
              }
              return a.txn < b.txn;
            });
  result.consistent = true;
  return result;
}

bool CheckSerializable(const std::vector<LocalChain>& chains) {
  // Nodes: transaction ids; edges: consecutive blocks in each local chain
  // (per-chain order is transitive, so path edges capture it fully).
  std::map<TxnId, std::vector<TxnId>> successors;
  std::map<TxnId, std::size_t> in_degree;
  for (const LocalChain& chain : chains) {
    const auto& blocks = chain.blocks();
    for (const Block& block : blocks) {
      successors.try_emplace(block.txn);
      in_degree.try_emplace(block.txn, 0);
    }
    for (std::size_t i = 1; i < blocks.size(); ++i) {
      successors[blocks[i - 1].txn].push_back(blocks[i].txn);
      ++in_degree[blocks[i].txn];
    }
  }
  // Kahn's algorithm: serializable iff the precedence graph is acyclic.
  std::vector<TxnId> ready;
  for (const auto& [txn, degree] : in_degree) {
    if (degree == 0) ready.push_back(txn);
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const TxnId txn = ready.back();
    ready.pop_back();
    ++visited;
    for (const TxnId next : successors[txn]) {
      if (--in_degree[next] == 0) ready.push_back(next);
    }
  }
  return visited == in_degree.size();
}

}  // namespace stableshard::chain
