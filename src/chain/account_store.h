// Per-shard account state.
//
// Each shard owns the balances of its accounts; destination shards evaluate
// subtransaction conditions and validity against this store when voting
// (Phase 3 / Algorithm 2b Step 1) and apply actions on commit.
#pragma once

#include <unordered_map>
#include <utility>
#include <vector>

#include "chain/ops.h"
#include "common/types.h"

namespace stableshard::chain {

class AccountStore {
 public:
  /// Creates accounts lazily with `default_balance` on first touch.
  explicit AccountStore(Balance default_balance = 0)
      : default_balance_(default_balance) {}

  Balance BalanceOf(AccountId account) const;
  void SetBalance(AccountId account, Balance balance);

  bool Check(const Condition& condition) const {
    return condition.Holds(BalanceOf(condition.account));
  }

  bool IsValid(const Action& action) const {
    return action.IsValidOn(BalanceOf(action.account));
  }

  /// Applies the action; aborts the process if invalid (callers must vote
  /// first — applying an invalid action is a scheduler bug, not user error).
  void Apply(const Action& action);

  /// Sum of all materialized balances (conservation checks in tests).
  Balance TotalBalance() const;

  /// Materialized balances sorted by account id — the deterministic
  /// serialization order for checkpoints/snapshots (the map itself is
  /// unordered; anything durable must not depend on its iteration order).
  std::vector<std::pair<AccountId, Balance>> SortedBalances() const;

  Balance default_balance() const { return default_balance_; }

  std::size_t materialized_accounts() const { return balances_.size(); }

 private:
  Balance default_balance_;
  std::unordered_map<AccountId, Balance> balances_;
};

}  // namespace stableshard::chain
