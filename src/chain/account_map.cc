#include "chain/account_map.h"

#include "common/check.h"

namespace stableshard::chain {

AccountMap::AccountMap(ShardId shards, std::vector<ShardId> owner)
    : shards_(shards), owner_(std::move(owner)), by_shard_(shards) {
  SSHARD_CHECK(shards >= 1);
  for (AccountId a = 0; a < owner_.size(); ++a) {
    SSHARD_CHECK(owner_[a] < shards_);
    by_shard_[owner_[a]].push_back(a);
  }
}

AccountMap AccountMap::RoundRobin(ShardId shards, AccountId accounts) {
  SSHARD_CHECK(shards >= 1 && accounts >= 1);
  std::vector<ShardId> owner(accounts);
  for (AccountId a = 0; a < accounts; ++a) {
    owner[a] = static_cast<ShardId>(a % shards);
  }
  return AccountMap(shards, std::move(owner));
}

AccountMap AccountMap::Random(ShardId shards, AccountId accounts, Rng& rng) {
  SSHARD_CHECK(shards >= 1 && accounts >= 1);
  std::vector<ShardId> owner(accounts);
  if (accounts >= shards) {
    // Seed one account per shard so no shard is empty, then spread the rest
    // uniformly. The seeded accounts are chosen from a random permutation so
    // low account ids are not biased toward low shard ids.
    std::vector<AccountId> seeded(accounts);
    for (AccountId a = 0; a < accounts; ++a) seeded[a] = a;
    rng.Shuffle(std::span<AccountId>(seeded));
    for (ShardId sh = 0; sh < shards; ++sh) {
      owner[seeded[sh]] = sh;
    }
    for (AccountId i = shards; i < accounts; ++i) {
      owner[seeded[i]] = static_cast<ShardId>(rng.NextBounded(shards));
    }
  } else {
    for (AccountId a = 0; a < accounts; ++a) {
      owner[a] = static_cast<ShardId>(rng.NextBounded(shards));
    }
  }
  return AccountMap(shards, std::move(owner));
}

ShardId AccountMap::OwnerOf(AccountId account) const {
  SSHARD_CHECK(account < owner_.size());
  return owner_[account];
}

const std::vector<AccountId>& AccountMap::AccountsOf(ShardId shard) const {
  SSHARD_CHECK(shard < shards_);
  return by_shard_[shard];
}

}  // namespace stableshard::chain
