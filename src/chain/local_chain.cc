#include "chain/local_chain.h"

namespace stableshard::chain {

const Block& LocalChain::Append(TxnId txn, Round commit_round,
                                std::uint64_t payload_digest) {
  Block block;
  block.height = blocks_.size();
  block.parent = blocks_.empty() ? kGenesisParent : blocks_.back().hash;
  block.txn = txn;
  block.shard = shard_;
  block.commit_round = commit_round;
  block.payload_digest = payload_digest;
  block.hash = ComputeBlockHash(block);
  blocks_.push_back(block);
  return blocks_.back();
}

bool LocalChain::Verify() const {
  BlockHash expected_parent = kGenesisParent;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const Block& block = blocks_[i];
    if (block.height != i) return false;
    if (block.parent != expected_parent) return false;
    if (block.hash != ComputeBlockHash(block)) return false;
    expected_parent = block.hash;
  }
  return true;
}

}  // namespace stableshard::chain
