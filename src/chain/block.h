// Blocks and hash linking.
//
// Section 3: each shard maintains a local blockchain of the subtransactions
// it receives; blocks are linked through hashes, making them immutable. Our
// block structure follows the paper's simplification — one (sub)transaction
// per block — and records the commit round, which the global-chain
// reconstruction uses to serialize conflicting transactions consistently.
//
// The hash is a 64-bit non-cryptographic chain hash (SplitMix64-based
// mixing over the block fields). The paper's security argument rests on
// PBFT + cluster-sending, not on hash hardness, so a fast mixing hash keeps
// the integrity-check semantics (any field tamper breaks the link) without
// a crypto dependency.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace stableshard::chain {

using BlockHash = std::uint64_t;

/// Hash of the genesis predecessor.
inline constexpr BlockHash kGenesisParent = 0x5eed0b10c5ULL;

struct Block {
  std::uint64_t height = 0;      ///< position in the local chain, 0-based
  BlockHash parent = 0;          ///< hash of the previous block
  BlockHash hash = 0;            ///< hash of this block (derived)
  TxnId txn = kInvalidTxn;       ///< transaction this subtransaction belongs to
  ShardId shard = kInvalidShard; ///< owning (destination) shard
  Round commit_round = 0;        ///< round at which the commit happened
  std::uint64_t payload_digest = 0;  ///< digest of the subtransaction body
};

/// Computes the chained hash over all fields except `hash` itself.
BlockHash ComputeBlockHash(const Block& block);

}  // namespace stableshard::chain
