// Static partition of accounts (objects) across shards.
//
// Section 3: the shared objects O are divided into disjoint subsets
// O_1..O_s, O_i managed by shard S_i, and objects have *fixed* positions
// (unlike distributed transactional memory, objects never migrate — the
// paper calls this out as the reason prior DTM results don't apply).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace stableshard::chain {

class AccountMap {
 public:
  /// Round-robin assignment: account a lives on shard a % s. With
  /// accounts == shards this is the paper's simulation setup (one account
  /// per shard).
  static AccountMap RoundRobin(ShardId shards, AccountId accounts);

  /// Random assignment (each account to a uniformly random shard), the
  /// "generated random unique accounts assigned randomly to shards" setup
  /// of Section 7. Guarantees every shard owns at least one account when
  /// accounts >= shards (by seeding one account per shard first).
  static AccountMap Random(ShardId shards, AccountId accounts, Rng& rng);

  ShardId shard_count() const { return shards_; }
  AccountId account_count() const {
    return static_cast<AccountId>(owner_.size());
  }

  ShardId OwnerOf(AccountId account) const;

  /// Accounts owned by one shard (ascending).
  const std::vector<AccountId>& AccountsOf(ShardId shard) const;

 private:
  AccountMap(ShardId shards, std::vector<ShardId> owner);

  ShardId shards_;
  std::vector<ShardId> owner_;                      // account -> shard
  std::vector<std::vector<AccountId>> by_shard_;    // shard -> accounts
};

}  // namespace stableshard::chain
