// Account operations: the condition/action subtransaction structure of
// ByShard-style sharding (paper Section 3, Example 1).
//
// Each subtransaction has (i) a condition check over the accounts owned by
// its destination shard, and (ii) a main action updating those accounts.
// Example 1's T1 = "transfer 1000 from Rex to Alice if Rex has 5000 and
// Alice has 200 and Bob has 400" becomes three subtransactions whose
// conditions/actions are expressible with the types below.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace stableshard::chain {

/// Account balances are signed 64-bit integers (smallest currency unit).
using Balance = std::int64_t;

enum class CmpOp : std::uint8_t { kGe, kGt, kLe, kLt, kEq, kNe };

/// A predicate over a single account's balance, e.g. "Rex >= 5000".
struct Condition {
  AccountId account = 0;
  CmpOp op = CmpOp::kGe;
  Balance value = 0;

  bool Holds(Balance balance) const;
  std::string ToString() const;
};

enum class ActionKind : std::uint8_t {
  kNone,     ///< condition-only participation (Example 1's T1,b on Bob)
  kDeposit,  ///< add `amount` (amount >= 0)
  kWithdraw, ///< subtract `amount`; *invalid* if balance would go negative
  kSet,      ///< set balance to `amount`
};

/// A state update on a single account, e.g. "remove 1000 from Rex".
struct Action {
  AccountId account = 0;
  ActionKind kind = ActionKind::kNone;
  Balance amount = 0;

  /// Whether the action modifies account state (kNone does not, and thus
  /// contributes a *read*, not a write, to conflict analysis).
  bool IsWrite() const { return kind != ActionKind::kNone; }

  /// Validity on the current balance (the paper's "transaction is valid"
  /// check, e.g. Rex actually has the 1000 to be removed).
  bool IsValidOn(Balance balance) const;

  /// Resulting balance; caller must have checked IsValidOn.
  Balance Apply(Balance balance) const;

  std::string ToString() const;
};

const char* ToString(CmpOp op);
const char* ToString(ActionKind kind);

}  // namespace stableshard::chain
