#include "chain/block.h"

#include "common/rng.h"

namespace stableshard::chain {

BlockHash ComputeBlockHash(const Block& block) {
  // Sponge-style absorption of each field through SplitMix64 steps; any
  // single-field change diffuses into the final state.
  std::uint64_t state = block.parent ^ 0x9e3779b97f4a7c15ULL;
  state ^= SplitMix64(state) ^ block.height;
  state ^= SplitMix64(state) ^ block.txn;
  state ^= SplitMix64(state) ^ block.shard;
  state ^= SplitMix64(state) ^ block.commit_round;
  state ^= SplitMix64(state) ^ block.payload_digest;
  return SplitMix64(state);
}

}  // namespace stableshard::chain
