// Global blockchain reconstruction.
//
// Section 3 (after [Adhikari & Busch 2023]): "whenever it is required, it is
// possible to combine and serialize the local chains to form a single global
// blockchain". Because the schedulers commit all subtransactions of a
// transaction in the same round and serialize conflicting transactions, the
// union of local chains ordered by (commit_round, txn id) is a valid global
// serialization. This module performs that merge and validates it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/local_chain.h"
#include "common/types.h"

namespace stableshard::chain {

/// One committed transaction in the reconstructed global order.
struct GlobalEntry {
  TxnId txn = kInvalidTxn;
  Round commit_round = 0;       ///< first (earliest) commit round observed
  Round last_commit_round = 0;  ///< last commit round observed
  std::vector<ShardId> shards;  ///< destination shards that appended a block
};

/// How strictly commit rounds must agree across a transaction's shards.
/// BDS commits all subtransactions of a transaction in the same round
/// (kSameRound); FDS confirms travel different distances so per-shard commit
/// rounds differ, and only the *order* consistency is required (kOrdered —
/// validated separately via CheckSerializable).
enum class AtomicityMode { kSameRound, kOrdered };

struct ReconstructionResult {
  std::vector<GlobalEntry> entries;  ///< global serialization order
  bool consistent = false;           ///< all consistency checks passed
  std::string error;                 ///< first violated check, if any
};

/// Merge local chains into the global order.
///
/// Consistency checks performed:
///  1. every local chain's hash links verify;
///  2. a (txn, shard) pair appears at most once across all chains;
///  3. under kSameRound, all blocks of one transaction carry the same
///     commit round (atomic same-round commitment).
ReconstructionResult ReconstructGlobalChain(
    const std::vector<LocalChain>& chains,
    AtomicityMode mode = AtomicityMode::kSameRound);

/// Cross-shard serializability: the per-shard local chain orders must be
/// mutually consistent, i.e. no two transactions appear in opposite order
/// in two different chains. Checked by building the union of the per-chain
/// precedence relations (consecutive-block edges) and testing acyclicity
/// (Kahn's algorithm). Returns true iff a global serialization exists.
bool CheckSerializable(const std::vector<LocalChain>& chains);

}  // namespace stableshard::chain
