#include "chain/ops.h"

#include <sstream>

#include "common/check.h"

namespace stableshard::chain {

bool Condition::Holds(Balance balance) const {
  switch (op) {
    case CmpOp::kGe:
      return balance >= value;
    case CmpOp::kGt:
      return balance > value;
    case CmpOp::kLe:
      return balance <= value;
    case CmpOp::kLt:
      return balance < value;
    case CmpOp::kEq:
      return balance == value;
    case CmpOp::kNe:
      return balance != value;
  }
  return false;
}

bool Action::IsValidOn(Balance balance) const {
  switch (kind) {
    case ActionKind::kNone:
      return true;
    case ActionKind::kDeposit:
      return amount >= 0;
    case ActionKind::kWithdraw:
      return amount >= 0 && balance >= amount;
    case ActionKind::kSet:
      return true;
  }
  return false;
}

Balance Action::Apply(Balance balance) const {
  SSHARD_DCHECK(IsValidOn(balance));
  switch (kind) {
    case ActionKind::kNone:
      return balance;
    case ActionKind::kDeposit:
      return balance + amount;
    case ActionKind::kWithdraw:
      return balance - amount;
    case ActionKind::kSet:
      return amount;
  }
  return balance;
}

const char* ToString(CmpOp op) {
  switch (op) {
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
  }
  return "?";
}

const char* ToString(ActionKind kind) {
  switch (kind) {
    case ActionKind::kNone:
      return "none";
    case ActionKind::kDeposit:
      return "deposit";
    case ActionKind::kWithdraw:
      return "withdraw";
    case ActionKind::kSet:
      return "set";
  }
  return "?";
}

std::string Condition::ToString() const {
  std::ostringstream os;
  os << "acct[" << account << "] " << chain::ToString(op) << ' ' << value;
  return os.str();
}

std::string Action::ToString() const {
  std::ostringstream os;
  os << chain::ToString(kind) << '(' << "acct[" << account << "], " << amount
     << ')';
  return os.str();
}

}  // namespace stableshard::chain
