// Geo-distributed sharding: the non-uniform model. Shards sit on a line
// (think data centers along a backbone); the FDS scheduler exploits its
// hierarchical clustering so *local* transactions (nearby shards) commit
// through low-layer clusters with small epochs, while global transactions
// pay for the distance. We compare a local workload against a global one,
// and FDS against the uncoordinated Direct baseline.
//
//   build/examples/geo_sharding
#include <cstdio>

#include "core/engine.h"

namespace {

stableshard::core::SimResult RunCase(const char* scheduler,
                                     bool local_workload) {
  using namespace stableshard;
  core::SimConfig config;
  config.scheduler = scheduler;
  config.topology = net::TopologyKind::kLine;
  config.hierarchy = core::HierarchyKind::kLineShifted;
  config.shards = 64;
  config.accounts = 64;
  config.account_assignment = core::AccountAssignment::kRoundRobin;
  config.k = 4;
  config.rho = 0.05;
  config.burstiness = 500;
  config.rounds = 15000;
  if (local_workload) {
    config.strategy = "local";
    config.local_radius = 3;  // transactions stay within 3 hops of home
  } else {
    config.strategy = "uniform_random";  // span the line
  }
  core::Simulation sim(config);
  return sim.Run();
}

}  // namespace

int main() {
  using namespace stableshard;

  std::printf("64 shards on a line (distances 1..63), rho=0.05, b=500\n\n");
  std::printf("%-10s %-22s %12s %12s %12s\n", "scheduler", "workload",
              "avg_latency", "p99_latency", "unresolved");

  struct Case {
    const char* scheduler;
    bool local;
    const char* name;
  };
  const Case cases[] = {
      {"fds", true, "local (radius 3)"},
      {"fds", false, "global (random shards)"},
      {"direct", true, "local (radius 3)"},
      {"direct", false, "global (random shards)"},
  };
  for (const Case& c : cases) {
    const auto result = RunCase(c.scheduler, c.local);
    std::printf("%-10s %-22s %12.0f %12.0f %12llu\n", c.scheduler, c.name,
                result.avg_latency, result.p99_latency,
                static_cast<unsigned long long>(result.unresolved));
  }

  std::printf(
      "\nreading: FDS assigns local transactions to low-layer clusters "
      "(small epochs, nearby leaders), so their latency tracks the 3-hop "
      "neighborhood rather than the 63-hop diameter — the locality property "
      "Theorem 3's d-dependence formalizes. The Direct baseline has no "
      "hierarchy to exploit and degrades on conflicted global traffic.\n");
  return 0;
}
