// simulate_cli: the library as a command-line tool — run any scheduler /
// topology / adversary combination and print (or CSV-dump) the metrics.
//
//   build/examples/simulate_cli --scheduler=fds --topology=line
//       --shards=64 --k=8 --rho=0.12 --b=2000 --rounds=25000
//       --strategy=uniform_random --seed=1 [--csv=out.csv] [--series=1000]
//
// Run with --help for all options.
#include <algorithm>
#include <cstdio>
#include <string>

#include "adversary/strategy_registry.h"
#include "common/csv.h"
#include "common/flags.h"
#include "core/engine.h"
#include "core/scheduler_registry.h"
#include "traffic/trace.h"

namespace {

using namespace stableshard;

constexpr const char* kUsage = R"(simulate_cli — StableShard simulation runner

  --scheduler  any registered scheduler (backpressure | bds | bds_sharded |
               fds | fds_multiroot | direct in-tree; default bds — unknown
               names print the registry)
  --topology   uniform | line | ring | grid | random_geo   (default: uniform
               for bds, line otherwise)
  --hierarchy  shifted | cover               (fds only; default shifted)
  --shards     number of shards              (default 64)
  --accounts   number of accounts            (default = shards)
  --k          max shards per transaction    (default 8)
  --rho        injection rate (congestion per shard per round, default 0.1)
  --b          burstiness (one-time burst of b transactions, default 1000)
  --no-burst   disable the burst
  --rounds     simulated rounds              (default 25000)
  --strategy   any registered workload (uniform_random | hotspot |
               pairwise_conflict | local | single_shard | hot_destination |
               diameter_span in-tree; default uniform_random — unknown
               names print the registry)
  --radius     destination radius for --strategy=local (default 4)
  --zipf       skew exponent for --strategy=hot_destination (default 1.0)
  --abort-prob probability of unsatisfiable conditions (default 0)
  --coloring   greedy | welsh_powell | dsatur (default greedy)
  --pinned     use the conservative pinned commit mode (fds)
  --no-reschedule  disable FDS rescheduling periods
  --bds-color-leaders  bds_sharded: co-leader shards the epoch's color
               classes are committed across (default 1 = exactly the
               legacy single-leader protocol; clamped to the shard count;
               must be >= 1)
  --fds-top-roots  fds_multiroot (and the backpressure wrapper): number of
               interchangeable full-membership top-layer root clusters
               diameter-spanning transactions are hashed across
               (default 1 = the classic single-top hierarchy; clamped to
               the shard count; must be >= 1)
  --bp-high    backpressure scheduler: mark a destination hot when its
               congestion signal — max(round inflow, standing backlog:
               undelivered messages + led-cluster queues) — reaches this
               (default 64)
  --bp-low     backpressure scheduler: clear a hot destination when the
               signal falls back to this (default 16; must be
               <= --bp-high)
  --burst-round  round at which the b-sized burst fires (default 0)
  --arrival-rate  open-loop injection: transactions arriving per wall round,
               independent of commit progress (default 0 = the closed-loop
               adversary; the registered --strategy still shapes every
               transaction, the arrival schedule only times them)
  --burst      open-loop burst cap: token-bucket depth released greedily
               from --burst-round on (default 1; needs --arrival-rate > 0)
  --trace      replay a recorded trace file as the arrival schedule
               (implies --strategy=trace_replay; exclusive with
               --arrival-rate — the trace is the schedule)
  --trace-out  record this run's injection stream to a trace file
               (replayable bit-identically via --trace)
  --drain      extra rounds to drain after injection stops (default 0)
  --workers    threads driving the shard-parallel round loop (default 1;
               any value gives bit-identical results)
  --min-shards-per-worker  build the worker pool only when shards/workers
               reaches this (default 128; below it the pool's dispatch
               overhead beats the parallel win and the serial path runs —
               results are identical either way; must be >= 1)
  --wal        persist every commit/abort to the write-ahead log (off by
               default; fault-free runs are bit-identical either way)
  --checkpoint-interval  cut a full-state checkpoint every N protocol
               rounds (requires --wal; default 0 = never)
  --faults     deterministic churn schedule "<shard>@<round>+<down>[,...]":
               crash <shard> at <round>, keep it dark for <down> rounds,
               then replay it from checkpoint + WAL and rejoin (requires
               --wal; crash rounds strictly increasing, within --rounds)
  --replay-bytes-per-round  WAL bytes replayed per recovery round — paces
               how many wall rounds a rejoin costs (default 4096; >= 1)
  --seed       RNG seed                      (default 42)
  --series     record the pending series with this window (rounds)
  --csv        append one result row to this CSV file
)";

/// Shared "unknown name" epilogue for registry-backed flags: false plus
/// the sorted listing on stderr (the cli_unknown_*_exits_2 ctest checks
/// grep this exact format).
template <typename Registry>
bool ValidateRegistryName(const Registry& registry, const char* flag,
                          const std::string& name) {
  if (registry.Contains(name)) return true;
  std::fprintf(stderr, "unknown --%s=%s; registered:", flag, name.c_str());
  for (const std::string& known : registry.Names()) {
    std::fprintf(stderr, " %s", known.c_str());
  }
  std::fprintf(stderr, "\n");
  return false;
}

bool ParseConfig(const Flags& flags, core::SimConfig* config) {
  config->scheduler = flags.GetString("scheduler", "bds");
  if (!ValidateRegistryName(core::SchedulerRegistry::Global(), "scheduler",
                            config->scheduler)) {
    return false;
  }

  const std::string default_topology =
      config->scheduler == "bds" ? "uniform" : "line";
  const std::string topology_name =
      flags.GetString("topology", default_topology);
  const auto topology = net::TryParseTopology(topology_name);
  if (!topology) {
    std::fprintf(stderr, "unknown --topology=%s\n", topology_name.c_str());
    return false;
  }
  config->topology = *topology;
  config->hierarchy = flags.GetString("hierarchy", "shifted") == "cover"
                          ? core::HierarchyKind::kSparseCover
                          : core::HierarchyKind::kLineShifted;
  config->shards = static_cast<ShardId>(flags.GetUint("shards", 64));
  config->accounts =
      static_cast<AccountId>(flags.GetUint("accounts", config->shards));
  config->k = static_cast<std::uint32_t>(flags.GetUint("k", 8));
  config->rho = flags.GetDouble("rho", 0.1);
  config->burstiness = flags.GetDouble("b", 1000);
  config->burst_round =
      static_cast<Round>(flags.GetUint("burst-round", config->burst_round));
  if (flags.GetBool("no-burst", false)) config->burst_round = kNoRound;
  config->rounds = static_cast<Round>(flags.GetUint("rounds", 25000));
  config->drain_cap = static_cast<Round>(flags.GetUint("drain", 0));
  config->worker_threads = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, flags.GetUint("workers", 1)));
  config->min_shards_per_worker = static_cast<std::uint32_t>(flags.GetUint(
      "min-shards-per-worker", config->min_shards_per_worker));
  // Same contract as the watermarks: a zero threshold is an input error
  // (exit 2), not an SSHARD_CHECK abort in the engine constructor.
  if (!core::ValidateMinShardsPerWorker(config->min_shards_per_worker)) {
    return false;
  }
  config->seed = flags.GetUint("seed", 42);
  config->abort_probability = flags.GetDouble("abort-prob", 0.0);
  config->fds_pipelined = !flags.GetBool("pinned", false);
  config->fds_reschedule = !flags.GetBool("no-reschedule", false);

  config->bds_color_leaders = static_cast<std::uint32_t>(
      flags.GetUint("bds-color-leaders", config->bds_color_leaders));
  config->fds_top_roots = static_cast<std::uint32_t>(
      flags.GetUint("fds-top-roots", config->fds_top_roots));
  // Same exit-2 contract as the watermarks: a zero knob is an input
  // error, not an SSHARD_CHECK abort in the scheduler/hierarchy builders.
  if (!core::ValidateBdsColorLeaders(config->bds_color_leaders)) {
    return false;
  }
  if (!core::ValidateFdsTopRoots(config->fds_top_roots)) {
    return false;
  }

  config->backpressure_high =
      flags.GetUint("bp-high", config->backpressure_high);
  config->backpressure_low =
      flags.GetUint("bp-low", config->backpressure_low);
  // Validated here (exit 2), not just in the scheduler constructor
  // (abort): a CLI typo is an input error, not an invariant violation.
  if (!core::ValidateBackpressureWatermarks(config->backpressure_low,
                                            config->backpressure_high)) {
    return false;
  }

  config->wal = flags.GetBool("wal", false);
  config->checkpoint_interval = static_cast<Round>(
      flags.GetUint("checkpoint-interval", config->checkpoint_interval));
  if (!core::ValidateCheckpointInterval(config->checkpoint_interval,
                                        config->wal)) {
    return false;
  }
  config->faults = flags.GetString("faults", "");
  // Exit-2 contract again: a malformed churn spec (or one pointing at a
  // shard/round that doesn't exist) is an input error, never the
  // SSHARD_CHECK abort inside the engine constructor.
  if (!core::ValidateFaults(config->faults, config->wal, config->shards,
                            config->rounds)) {
    return false;
  }
  config->replay_bytes_per_round = flags.GetUint(
      "replay-bytes-per-round", config->replay_bytes_per_round);
  if (!core::ValidateReplayBytesPerRound(config->replay_bytes_per_round)) {
    return false;
  }

  config->local_radius =
      static_cast<Distance>(flags.GetUint("radius", config->local_radius));
  config->zipf_theta = flags.GetDouble("zipf", config->zipf_theta);
  if (config->zipf_theta < 0.0) {
    std::fprintf(stderr, "--zipf must be >= 0 (got %g)\n", config->zipf_theta);
    return false;
  }
  config->arrival_rate = flags.GetDouble("arrival-rate", 0.0);
  config->arrival_burst = flags.GetDouble("burst", config->arrival_burst);
  // Exit-2 contract: a bad open-loop rate/burst pair is an input error,
  // never the SSHARD_CHECK abort in the engine constructor.
  if (!core::ValidateArrivalRate(config->arrival_rate,
                                 config->arrival_burst)) {
    return false;
  }
  config->trace = flags.GetString("trace", "");
  config->trace_out = flags.GetString("trace-out", "");
  config->strategy = flags.GetString(
      "strategy", config->trace.empty() ? "uniform_random" : "trace_replay");
  if (!ValidateRegistryName(adversary::StrategyRegistry::Global(), "strategy",
                            config->strategy)) {
    return false;
  }
  // The trace/strategy/rate coupling and the trace file itself (magic,
  // meta, checksum, record grammar) are input errors too: exit 2 with one
  // "invalid trace: ..." line, never an abort inside the replayer.
  if (!core::ValidateTraceConfig(config->trace, config->strategy,
                                 config->arrival_rate)) {
    return false;
  }
  if (!config->trace.empty() &&
      !traffic::ValidateTraceFile(config->trace, config->shards,
                                  config->accounts)) {
    return false;
  }

  const std::string coloring = flags.GetString("coloring", "greedy");
  if (coloring == "greedy") {
    config->coloring = txn::ColoringAlgorithm::kGreedy;
  } else if (coloring == "welsh_powell") {
    config->coloring = txn::ColoringAlgorithm::kWelshPowell;
  } else if (coloring == "dsatur") {
    config->coloring = txn::ColoringAlgorithm::kDsatur;
  } else {
    std::fprintf(stderr, "unknown --coloring=%s\n", coloring.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(), kUsage);
    return 2;
  }
  if (flags.GetBool("help", false)) {
    std::printf("%s", kUsage);
    return 0;
  }

  core::SimConfig config;
  if (!ParseConfig(flags, &config)) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  const Round series_window =
      static_cast<Round>(flags.GetUint("series", 0));
  const std::string csv_path = flags.GetString("csv", "");
  // e.g. --rounds=abc must never silently run 0 rounds.
  if (!flags.FinishReads()) return 2;

  core::Simulation sim(config);
  if (series_window > 0) sim.EnableSeries(series_window);
  const auto result = sim.Run();

  std::printf("config              : %s\n", config.Describe().c_str());
  std::printf("injected            : %llu\n",
              static_cast<unsigned long long>(result.injected));
  std::printf("committed / aborted : %llu / %llu\n",
              static_cast<unsigned long long>(result.committed),
              static_cast<unsigned long long>(result.aborted));
  std::printf("unresolved at end   : %llu (max pending %llu)\n",
              static_cast<unsigned long long>(result.unresolved),
              static_cast<unsigned long long>(result.max_pending));
  std::printf("avg pending / shard : %.3f\n", result.avg_pending_per_shard);
  std::printf("avg leader queue    : %.3f (peak %.1f)\n",
              result.avg_leader_queue, result.max_leader_queue);
  if (result.spill_peak > 0) {
    std::printf("backpressure spill  : peak %llu parked\n",
                static_cast<unsigned long long>(result.spill_peak));
  }
  std::printf("latency avg/p50/p99/max : %.1f / %.0f / %.0f / %.0f rounds\n",
              result.avg_latency, result.p50_latency, result.p99_latency,
              result.max_latency);
  std::printf("messages            : %llu (payload units %llu)\n",
              static_cast<unsigned long long>(result.messages),
              static_cast<unsigned long long>(result.payload_units));
  if (config.arrival_rate > 0.0 || !config.trace.empty()) {
    std::printf("open-loop arrivals  : %llu offered, %llu injected "
                "(lag peak %llu)\n",
                static_cast<unsigned long long>(result.offered_txns),
                static_cast<unsigned long long>(result.injected_txns),
                static_cast<unsigned long long>(result.inject_lag_peak));
  }
  if (!config.trace_out.empty()) {
    std::printf("trace recorded      : %s\n", config.trace_out.c_str());
  }
  if (config.wal) {
    std::printf("wal                 : %llu bytes, %llu checkpoints\n",
                static_cast<unsigned long long>(result.wal_bytes),
                static_cast<unsigned long long>(result.checkpoint_count));
  }
  if (result.recovery_rounds > 0) {
    std::printf("recovery            : %llu wall rounds, %llu bytes "
                "replayed (%llu crash events)\n",
                static_cast<unsigned long long>(result.recovery_rounds),
                static_cast<unsigned long long>(result.replay_bytes),
                static_cast<unsigned long long>(sim.liveness().crash_count()));
  }
  if (result.drained) std::printf("drained             : yes\n");

  if (sim.pending_series() != nullptr) {
    std::printf("pending series      :");
    for (const auto& point : sim.pending_series()->points()) {
      std::printf(" %.0f", point.value);
    }
    std::printf("\n");
  }

  if (!csv_path.empty()) {
    CsvWriter csv(csv_path,
                  {"config", "rho", "b", "injected", "committed", "aborted",
                   "unresolved", "avg_pending_per_shard", "avg_latency",
                   "p99_latency", "avg_leader_queue", "messages"});
    csv.Row(config.Describe(), config.rho, config.burstiness,
            result.injected, result.committed, result.aborted,
            result.unresolved, result.avg_pending_per_shard,
            result.avg_latency, result.p99_latency, result.avg_leader_queue,
            result.messages);
    std::printf("csv row appended    : %s\n", csv_path.c_str());
  }
  return 0;
}
