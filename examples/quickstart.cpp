// Quickstart: configure a sharded system, run the BDS scheduler under an
// adversarial workload, and inspect the results — the 60-second tour of the
// public API.
//
//   build/examples/quickstart
#include <cstdio>

#include "chain/global_chain.h"
#include "core/engine.h"

int main() {
  using namespace stableshard;

  // A 16-shard uniform system with one account per shard, transactions
  // touching up to 4 shards, driven by a (rho=0.05, b=100) adversary for
  // 5000 rounds (plus a drain phase so everything resolves).
  core::SimConfig config;
  config.scheduler = "bds";
  config.topology = net::TopologyKind::kUniform;
  config.shards = 16;
  config.accounts = 16;
  config.k = 4;
  config.rho = 0.05;
  config.burstiness = 100;
  config.rounds = 5000;
  config.drain_cap = 50000;

  core::Simulation sim(config);
  const core::SimResult result = sim.Run();

  std::printf("config: %s\n\n", config.Describe().c_str());
  std::printf("injected        : %llu transactions\n",
              static_cast<unsigned long long>(result.injected));
  std::printf("committed       : %llu\n",
              static_cast<unsigned long long>(result.committed));
  std::printf("aborted         : %llu\n",
              static_cast<unsigned long long>(result.aborted));
  std::printf("avg pending     : %.2f transactions per shard per round\n",
              result.avg_pending_per_shard);
  std::printf("avg latency     : %.1f rounds (max %.0f, p99 %.0f)\n",
              result.avg_latency, result.max_latency, result.p99_latency);
  std::printf("messages        : %llu shard-to-shard messages\n",
              static_cast<unsigned long long>(result.messages));

  // Every destination shard kept a hash-linked local blockchain; the union
  // reconstructs the global serialization (Section 3 of the paper).
  const auto reconstruction =
      chain::ReconstructGlobalChain(sim.ledger().chains());
  std::printf("\nglobal chain    : %zu entries, consistent=%s\n",
              reconstruction.entries.size(),
              reconstruction.consistent ? "yes" : "no");
  if (!reconstruction.entries.empty()) {
    const auto& first = reconstruction.entries.front();
    std::printf("first commit    : txn %llu at round %llu across %zu shards\n",
                static_cast<unsigned long long>(first.txn),
                static_cast<unsigned long long>(first.commit_round),
                first.shards.size());
  }
  return 0;
}
