// DoS resilience: the paper's motivation — a malicious flood of
// transactions should not destabilize the system. We hit BDS with
// adversarial bursts (hotspot flood) at an admissible steady rate and show
// that queues stay bounded (Theorem 2: pending <= 4bs) and the system
// recovers, while pushing the rate beyond Theorem 1's threshold genuinely
// diverges — the resilience boundary is the injection rate, not the burst.
//
//   build/examples/dos_resilience
#include <cstdio>

#include "common/math_util.h"
#include "core/engine.h"

namespace {

stableshard::core::SimResult RunAttack(double rho, double burst,
                                       stableshard::core::Simulation** out) {
  using namespace stableshard;
  core::SimConfig config;
  config.scheduler = "bds";
  config.shards = 32;
  config.accounts = 32;
  config.k = 4;
  config.strategy = "hotspot";  // flood one account
  config.rho = rho;
  config.burstiness = burst;
  config.burst_round = 500;  // the attack lands mid-run
  config.rounds = 20000;
  static core::Simulation* sim = nullptr;
  delete sim;
  sim = new core::Simulation(config);
  if (out) *out = sim;
  sim->EnableSeries(/*window=*/2000);
  return sim->Run();
}

}  // namespace

int main() {
  using namespace stableshard;

  const double admissible = BdsStableRateBound(4, 32);
  std::printf("BDS admissible rate for k=4, s=32: rho = %.4f\n", admissible);
  std::printf("hotspot attack: every transaction write-locks account 0\n\n");

  for (const double burst : {200.0, 800.0}) {
    core::Simulation* sim = nullptr;
    const auto result = RunAttack(admissible, burst, &sim);
    std::printf("attack burst=%4.0f txns at admissible rate:\n", burst);
    std::printf("  peak pending %llu (Theorem 2 cap 4bs = %.0f), "
                "avg latency %.0f, unresolved at end %llu\n",
                static_cast<unsigned long long>(result.max_pending),
                4.0 * burst * 32, result.avg_latency,
                static_cast<unsigned long long>(result.unresolved));
    std::printf("  backlog over time:");
    for (const auto& point : sim->pending_series()->points()) {
      std::printf(" %.0f", point.value);
    }
    std::printf("   <- spike at the attack, then recovery\n\n");
  }

  // The same attack at an inadmissible rate (hotspot serializes everything,
  // so any rate above ~1 txn per 4-round color block diverges).
  core::Simulation* sim = nullptr;
  const auto flooded = RunAttack(0.9, 800.0, &sim);
  std::printf("attack at rho=0.90 (inadmissible for a serialized hotspot):\n");
  std::printf("  unresolved at end %llu and growing:",
              static_cast<unsigned long long>(flooded.unresolved));
  for (const auto& point : sim->pending_series()->points()) {
    std::printf(" %.0f", point.value);
  }
  std::printf("\n\nconclusion: bounded bursts cause bounded, recoverable "
              "backlogs; only sustained over-rate injection destabilizes "
              "the scheduler (Theorems 1 and 2).\n");
  return 0;
}
