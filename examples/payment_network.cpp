// Payment network: drives the library's transaction layer directly with
// Example-1-style conditional transfers ("move X from A to B if A holds at
// least Y"), showing condition checks, atomic commit/abort voting, balance
// conservation and global chain reconstruction — without the adversary
// harness.
//
//   build/examples/payment_network
#include <cstdio>

#include "chain/account_map.h"
#include "chain/global_chain.h"
#include "common/rng.h"
#include "core/bds.h"
#include "core/commit_ledger.h"
#include "net/metric.h"
#include "txn/txn_factory.h"

int main() {
  using namespace stableshard;

  constexpr ShardId kShards = 8;
  constexpr AccountId kAccounts = 32;  // 4 accounts per shard
  constexpr chain::Balance kInitial = 10'000;

  const auto accounts = chain::AccountMap::RoundRobin(kShards, kAccounts);
  net::UniformMetric metric(kShards);
  core::CommitLedger ledger(accounts, kInitial);
  core::BdsScheduler scheduler(metric, ledger);
  txn::TxnFactory factory(accounts);
  Rng rng(7);

  // Issue random transfers; roughly a third carry a condition that cannot
  // be met and must abort atomically on every shard involved.
  constexpr int kTransfers = 400;
  Round round = 0;
  for (int i = 0; i < kTransfers; ++i) {
    const AccountId from = rng.NextBounded(kAccounts);
    AccountId to = rng.NextBounded(kAccounts - 1);
    if (to >= from) ++to;
    const chain::Balance amount = 1 + rng.NextInRange(0, 99);
    // One in three transfers demands an absurd minimum balance -> abort.
    const chain::Balance minimum =
        rng.NextBool(0.33) ? 100 * kInitial : amount;
    const auto txn = factory.MakeTransfer(accounts.OwnerOf(from), round,
                                          from, to, amount, minimum);
    ledger.RegisterInjection(txn);
    scheduler.Inject(txn);
    // Trickle: a couple of transactions per round.
    if (i % 2 == 1) scheduler.Step(round++);
  }
  while (!scheduler.Idle()) scheduler.Step(round++);

  std::printf("transfers issued   : %d\n", kTransfers);
  std::printf("committed          : %llu\n",
              static_cast<unsigned long long>(ledger.committed_txns()));
  std::printf("aborted (failed conditions): %llu\n",
              static_cast<unsigned long long>(ledger.aborted_txns()));
  std::printf("avg latency        : %.1f rounds\n",
              ledger.latency().average_latency());

  // Money conservation: transfers only move balance, so the total across
  // all shards must equal the number of touched accounts times the initial
  // balance.
  chain::Balance total = 0;
  std::size_t materialized = 0;
  for (ShardId shard = 0; shard < kShards; ++shard) {
    total += ledger.store(shard).TotalBalance();
    materialized += ledger.store(shard).materialized_accounts();
  }
  std::printf("balance conserved  : %s (total %lld over %zu accounts)\n",
              total == static_cast<chain::Balance>(materialized) * kInitial
                  ? "yes"
                  : "NO",
              static_cast<long long>(total), materialized);

  const auto reconstruction = chain::ReconstructGlobalChain(ledger.chains());
  std::printf("global chain       : %zu committed entries, consistent=%s, "
              "serializable=%s\n",
              reconstruction.entries.size(),
              reconstruction.consistent ? "yes" : "no",
              chain::CheckSerializable(ledger.chains()) ? "yes" : "no");
  return 0;
}
