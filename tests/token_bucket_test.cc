// Unit tests for the (rho, b) adversarial token buckets: refill math, the
// burst cap, the window bound rho*t + b the paper's Section 3 model
// promises, and the aborting over-consume / constructor contracts.
#include <gtest/gtest.h>

#include <vector>

#include "adversary/token_bucket.h"

namespace stableshard::adversary {
namespace {

TEST(TokenBucketTest, StartsFullAndAccessorsReport) {
  TokenBucketArray buckets(4, 0.25, 3.0);
  EXPECT_EQ(buckets.shard_count(), 4u);
  EXPECT_DOUBLE_EQ(buckets.rate(), 0.25);
  EXPECT_DOUBLE_EQ(buckets.burstiness(), 3.0);
  for (ShardId shard = 0; shard < 4; ++shard) {
    EXPECT_DOUBLE_EQ(buckets.tokens(shard), 3.0);
  }
  EXPECT_DOUBLE_EQ(buckets.MinTokens(), 3.0);
}

TEST(TokenBucketTest, TickRefillsAndCapsAtBurstiness) {
  TokenBucketArray buckets(2, 0.5, 2.0);
  buckets.Consume({0, 1});
  buckets.Consume({0});
  EXPECT_DOUBLE_EQ(buckets.tokens(0), 0.0);
  EXPECT_DOUBLE_EQ(buckets.tokens(1), 1.0);

  buckets.Tick();
  EXPECT_DOUBLE_EQ(buckets.tokens(0), 0.5);
  EXPECT_DOUBLE_EQ(buckets.tokens(1), 1.5);

  // Refill saturates: shard 1 reaches the cap after one more tick and
  // stays there, shard 0 keeps climbing.
  buckets.Tick();
  EXPECT_DOUBLE_EQ(buckets.tokens(0), 1.0);
  EXPECT_DOUBLE_EQ(buckets.tokens(1), 2.0);
  buckets.Tick();
  EXPECT_DOUBLE_EQ(buckets.tokens(0), 1.5);
  EXPECT_DOUBLE_EQ(buckets.tokens(1), 2.0);
}

TEST(TokenBucketTest, ConsumeTouchesOnlyListedShards) {
  TokenBucketArray buckets(3, 1.0, 5.0);
  buckets.Consume({0, 2});
  EXPECT_DOUBLE_EQ(buckets.tokens(0), 4.0);
  EXPECT_DOUBLE_EQ(buckets.tokens(1), 5.0);
  EXPECT_DOUBLE_EQ(buckets.tokens(2), 4.0);
  EXPECT_DOUBLE_EQ(buckets.MinTokens(), 4.0);
}

TEST(TokenBucketTest, CanConsumeRequiresAFullTokenOnEveryShard) {
  TokenBucketArray buckets(2, 0.5, 1.0);
  EXPECT_TRUE(buckets.CanConsume({0, 1}));
  buckets.Consume({0});
  // Shard 0 is empty: any set containing it is rejected, the rest passes.
  EXPECT_FALSE(buckets.CanConsume({0}));
  EXPECT_FALSE(buckets.CanConsume({0, 1}));
  EXPECT_TRUE(buckets.CanConsume({1}));
  // One tick refills to 0.5 — a fractional token is not a token.
  buckets.Tick();
  EXPECT_FALSE(buckets.CanConsume({0}));
  buckets.Tick();
  EXPECT_TRUE(buckets.CanConsume({0}));
}

TEST(TokenBucketTest, WindowInjectionNeverExceedsRhoTPlusB) {
  // Greedily consume whenever possible for t rounds: the admitted count
  // must obey the paper's bound rho*t + b on every prefix window.
  const double rho = 0.3;
  const double b = 4.0;
  TokenBucketArray buckets(1, rho, b);
  std::uint64_t admitted = 0;
  for (std::uint64_t t = 1; t <= 200; ++t) {
    buckets.Tick();
    while (buckets.CanConsume({0})) {
      buckets.Consume({0});
      ++admitted;
    }
    EXPECT_LE(static_cast<double>(admitted), rho * static_cast<double>(t) + b)
        << "window t=" << t;
  }
  // And the bound is tight up to rounding: the greedy adversary actually
  // gets rho*t of steady-state throughput, not less.
  EXPECT_GE(static_cast<double>(admitted), rho * 200.0);
}

using TokenBucketDeathTest = ::testing::Test;

TEST(TokenBucketDeathTest, OverConsumeAborts) {
  TokenBucketArray buckets(2, 0.5, 1.0);
  buckets.Consume({0});
  EXPECT_DEATH(buckets.Consume({0}), "CanConsume");
}

TEST(TokenBucketDeathTest, ConstructorRejectsIllegalParameters) {
  EXPECT_DEATH(TokenBucketArray(0, 0.5, 1.0), "shards >= 1");
  EXPECT_DEATH(TokenBucketArray(1, 0.0, 1.0), "rate");
  EXPECT_DEATH(TokenBucketArray(1, 1.5, 1.0), "rate");
  EXPECT_DEATH(TokenBucketArray(1, 0.5, 0.0), "burstiness");
}

}  // namespace
}  // namespace stableshard::adversary
