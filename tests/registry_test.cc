// Registry tests: the engine constructs schedulers AND workload strategies
// purely by registered name, unknown names die with the sorted listing,
// duplicate registrations die, and externally registered schedulers /
// strategies plug into Simulation without any engine edits.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "adversary/strategy_registry.h"
#include "core/direct.h"
#include "core/engine.h"
#include "core/scheduler_registry.h"
#include "sim_test_util.h"

namespace stableshard {
namespace {

using adversary::StrategyDeps;
using adversary::StrategyRegistry;
using core::Scheduler;
using core::SchedulerDeps;
using core::SchedulerRegistry;
using core::SimConfig;
using core::Simulation;
using test::ExpectDrainedRunInvariants;
using test::SmallConfig;

TEST(Registry, BuiltinSchedulersAreRegistered) {
  auto& registry = SchedulerRegistry::Global();
  EXPECT_TRUE(registry.Contains("bds"));
  EXPECT_TRUE(registry.Contains("fds"));
  EXPECT_TRUE(registry.Contains("direct"));
  EXPECT_FALSE(registry.Contains("nope"));
  const auto names = registry.Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_GE(names.size(), 3u);
}

TEST(Registry, EngineBuildsEachBuiltinByName) {
  for (const char* name : {"bds", "fds", "direct"}) {
    SimConfig config = SmallConfig(name);
    config.rounds = 50;
    config.drain_cap = 0;
    Simulation sim(config);
    EXPECT_STREQ(sim.scheduler().name(), name);
    sim.Run();
  }
}

TEST(Registry, HierarchyBuiltLazily) {
  // Only schedulers that ask for the hierarchy pay for one.
  SimConfig bds = SmallConfig("bds");
  bds.rounds = 10;
  bds.drain_cap = 0;
  Simulation bds_sim(bds);
  EXPECT_EQ(bds_sim.hierarchy(), nullptr);

  SimConfig fds = SmallConfig("fds");
  fds.rounds = 10;
  fds.drain_cap = 0;
  Simulation fds_sim(fds);
  EXPECT_NE(fds_sim.hierarchy(), nullptr);
}

TEST(Registry, ExternalSchedulerNeedsNoEngineEdits) {
  // Register a scheduler the engine has never heard of and run a full
  // simulation with it — the acceptance test for the registry layer.
  static bool registered = false;
  if (!registered) {
    registered = true;
    SchedulerRegistry::Global().Register(
        "test_direct_alias",
        [](const SimConfig& config, SchedulerDeps& deps) {
          (void)config;
          return std::unique_ptr<Scheduler>(
              std::make_unique<core::DirectScheduler>(deps.metric,
                                                      deps.ledger));
        });
  }
  SimConfig config = SmallConfig("direct");
  config.scheduler = "test_direct_alias";
  config.rounds = 400;
  Simulation sim(config);
  const auto result = sim.Run();
  EXPECT_GT(result.injected, 0u);
  ExpectDrainedRunInvariants(sim, result, /*same_round_atomicity=*/false);
}

TEST(StrategyRegistryTest, BuiltinStrategiesAreRegistered) {
  auto& registry = StrategyRegistry::Global();
  for (const char* name :
       {"uniform_random", "hotspot", "pairwise_conflict", "local",
        "single_shard", "hot_destination", "diameter_span"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
  EXPECT_FALSE(registry.Contains("nope"));
  const auto names = registry.Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_GE(names.size(), 7u);
}

TEST(StrategyRegistryTest, EngineBuildsEachBuiltinByName) {
  // Fixed builtin list, not Names(): other tests register aliases in this
  // process whose name() differs from their registration key.
  for (const std::string name :
       {"uniform_random", "hotspot", "pairwise_conflict", "local",
        "single_shard", "hot_destination", "diameter_span"}) {
    SimConfig config = SmallConfig("direct");
    config.strategy = name;
    config.rounds = 50;
    config.drain_cap = 0;
    Simulation sim(config);
    EXPECT_EQ(sim.adversary().strategy().name(), name);
    const auto result = sim.Run();
    EXPECT_GT(result.injected, 0u);
  }
}

TEST(StrategyRegistryTest, ExternalStrategyNeedsNoEngineEdits) {
  // Register a workload the engine has never heard of and run a full
  // simulation with it — the acceptance test for the registry layer.
  static bool registered = false;
  if (!registered) {
    registered = true;
    StrategyRegistry::Global().Register(
        "test_single_shard_alias",
        [](const core::SimConfig& config, StrategyDeps& deps) {
          (void)config;
          return std::unique_ptr<adversary::Strategy>(
              std::make_unique<adversary::SingleShardStrategy>(deps.accounts));
        });
  }
  SimConfig config = SmallConfig("direct");
  config.strategy = "test_single_shard_alias";
  config.rounds = 400;
  Simulation sim(config);
  const auto result = sim.Run();
  EXPECT_GT(result.injected, 0u);
  ExpectDrainedRunInvariants(sim, result, /*same_round_atomicity=*/false);
}

using RegistryDeathTest = ::testing::Test;

TEST(RegistryDeathTest, UnknownSchedulerDies) {
  SimConfig config = SmallConfig("bds");
  config.scheduler = "no_such_scheduler";
  // The abort message carries the sorted list of known names.
  EXPECT_DEATH(Simulation sim(config),
               "unknown scheduler.*registered:.*bds.*direct.*fds");
}

TEST(RegistryDeathTest, UnknownStrategyDies) {
  SimConfig config = SmallConfig("bds");
  config.strategy = "no_such_strategy";
  // Sorted listing: diameter_span < hotspot < uniform_random.
  EXPECT_DEATH(
      Simulation sim(config),
      "unknown strategy.*registered:.*diameter_span.*hotspot.*uniform_random");
}

TEST(RegistryDeathTest, DuplicateRegistrationDies) {
  EXPECT_DEATH(SchedulerRegistry::Global().Register(
                   "bds",
                   [](const SimConfig&, SchedulerDeps&) {
                     return std::unique_ptr<Scheduler>();
                   }),
               "twice");
}

TEST(RegistryDeathTest, DuplicateStrategyRegistrationDies) {
  EXPECT_DEATH(StrategyRegistry::Global().Register(
                   "uniform_random",
                   [](const core::SimConfig&, StrategyDeps&) {
                     return std::unique_ptr<adversary::Strategy>();
                   }),
               "twice");
}

}  // namespace
}  // namespace stableshard
