// Scheduler registry tests: the engine constructs schedulers purely by
// registered name, unknown names die with a listing, and an externally
// registered scheduler plugs into Simulation without any engine edits.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "core/direct.h"
#include "core/engine.h"
#include "core/scheduler_registry.h"
#include "sim_test_util.h"

namespace stableshard {
namespace {

using core::Scheduler;
using core::SchedulerDeps;
using core::SchedulerRegistry;
using core::SimConfig;
using core::Simulation;
using test::ExpectDrainedRunInvariants;
using test::SmallConfig;

TEST(Registry, BuiltinSchedulersAreRegistered) {
  auto& registry = SchedulerRegistry::Global();
  EXPECT_TRUE(registry.Contains("bds"));
  EXPECT_TRUE(registry.Contains("fds"));
  EXPECT_TRUE(registry.Contains("direct"));
  EXPECT_FALSE(registry.Contains("nope"));
  const auto names = registry.Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_GE(names.size(), 3u);
}

TEST(Registry, EngineBuildsEachBuiltinByName) {
  for (const char* name : {"bds", "fds", "direct"}) {
    SimConfig config = SmallConfig(name);
    config.rounds = 50;
    config.drain_cap = 0;
    Simulation sim(config);
    EXPECT_STREQ(sim.scheduler().name(), name);
    sim.Run();
  }
}

TEST(Registry, HierarchyBuiltLazily) {
  // Only schedulers that ask for the hierarchy pay for one.
  SimConfig bds = SmallConfig("bds");
  bds.rounds = 10;
  bds.drain_cap = 0;
  Simulation bds_sim(bds);
  EXPECT_EQ(bds_sim.hierarchy(), nullptr);

  SimConfig fds = SmallConfig("fds");
  fds.rounds = 10;
  fds.drain_cap = 0;
  Simulation fds_sim(fds);
  EXPECT_NE(fds_sim.hierarchy(), nullptr);
}

TEST(Registry, ExternalSchedulerNeedsNoEngineEdits) {
  // Register a scheduler the engine has never heard of and run a full
  // simulation with it — the acceptance test for the registry layer.
  static bool registered = false;
  if (!registered) {
    registered = true;
    SchedulerRegistry::Global().Register(
        "test_direct_alias",
        [](const SimConfig& config, SchedulerDeps& deps) {
          (void)config;
          return std::unique_ptr<Scheduler>(
              std::make_unique<core::DirectScheduler>(deps.metric,
                                                      deps.ledger));
        });
  }
  SimConfig config = SmallConfig("direct");
  config.scheduler = "test_direct_alias";
  config.rounds = 400;
  Simulation sim(config);
  const auto result = sim.Run();
  EXPECT_GT(result.injected, 0u);
  ExpectDrainedRunInvariants(sim, result, /*same_round_atomicity=*/false);
}

using RegistryDeathTest = ::testing::Test;

TEST(RegistryDeathTest, UnknownSchedulerDies) {
  SimConfig config = SmallConfig("bds");
  config.scheduler = "no_such_scheduler";
  EXPECT_DEATH(Simulation sim(config), "unknown scheduler");
}

TEST(RegistryDeathTest, DuplicateRegistrationDies) {
  EXPECT_DEATH(SchedulerRegistry::Global().Register(
                   "bds",
                   [](const SimConfig&, SchedulerDeps&) {
                     return std::unique_ptr<Scheduler>();
                   }),
               "twice");
}

}  // namespace
}  // namespace stableshard
