// Goldens for the single-leader degeneration fix (sharded-leader BDS and
// the multi-root FDS hierarchy).
//
// The registrar contract under test: the baseline names "bds"/"fds" ignore
// the new knobs entirely (the paper's protocols stay the paper's
// protocols), while "bds_sharded"/"fds_multiroot" consume them — and at
// knob value 1 each new mode must reduce to the *exact* legacy code path,
// bit-identical through the registry boundary. With non-trivial fan-outs
// the sharded BDS must still produce the legacy outcomes (the color-class
// handoff changes message endpoints, never commit timing), both modes must
// honour the workers/pipeline determinism contract, and a drained run must
// satisfy every chain/serializability invariant.
#include <gtest/gtest.h>

#include <string>

#include "core/bds.h"
#include "core/engine.h"
#include "sim_test_util.h"

namespace stableshard {
namespace {

using core::BdsScheduler;
using core::SimConfig;
using core::SimResult;
using core::Simulation;
using test::ExpectBitIdenticalResults;
using test::ExpectDrainedRunInvariants;
using test::SmallConfig;

SimResult RunWith(SimConfig config, std::uint32_t workers, bool pipeline) {
  config.worker_threads = workers;
  config.pipeline = pipeline;
  config.min_shards_per_worker = 1;  // pool on even for the small grid
  Simulation sim(config);
  return sim.Run();
}

TEST(LeaderSharding, ShardedWithOneCoLeaderIsBitIdenticalToLegacyBds) {
  // color_leaders = 1 (the default) must be the legacy protocol itself,
  // not a faithful reimplementation: every SimResult field bit-identical,
  // messages and payload units included.
  const SimResult legacy = RunWith(SmallConfig("bds"), 1, true);
  const SimResult sharded = RunWith(SmallConfig("bds_sharded"), 1, true);
  ExpectBitIdenticalResults(legacy, sharded);
  EXPECT_EQ(legacy.messages, sharded.messages);
  EXPECT_EQ(legacy.payload_units, sharded.payload_units);
}

TEST(LeaderSharding, MultirootWithOneRootIsBitIdenticalToLegacyFds) {
  // fds_top_roots = 1 (the default) builds the classic single-top
  // hierarchy, so "fds_multiroot" must reproduce "fds" bit-for-bit.
  const SimResult legacy = RunWith(SmallConfig("fds"), 1, true);
  const SimResult multiroot = RunWith(SmallConfig("fds_multiroot"), 1, true);
  ExpectBitIdenticalResults(legacy, multiroot);
  EXPECT_EQ(legacy.messages, multiroot.messages);
  EXPECT_EQ(legacy.payload_units, multiroot.payload_units);
}

TEST(LeaderSharding, BaselineBdsIgnoresTheKnob) {
  // "bds" must stay the paper's Algorithm 1 whatever the knob says — a
  // baseline that silently shards would invalidate every recorded bench.
  SimConfig knobbed = SmallConfig("bds");
  knobbed.bds_color_leaders = 4;
  const SimResult plain = RunWith(SmallConfig("bds"), 1, true);
  const SimResult with_knob = RunWith(knobbed, 1, true);
  ExpectBitIdenticalResults(plain, with_knob);
}

TEST(LeaderSharding, BaselineFdsIgnoresTheKnob) {
  SimConfig knobbed = SmallConfig("fds");
  knobbed.fds_top_roots = 3;
  const SimResult plain = RunWith(SmallConfig("fds"), 1, true);
  const SimResult with_knob = RunWith(knobbed, 1, true);
  ExpectBitIdenticalResults(plain, with_knob);
}

TEST(LeaderSharding, ShardedCommitRoundsMatchLegacyBds) {
  // With L = 4 co-leaders the commit role is sharded but the round
  // timetable is untouched: the color class ships at phase offset 1 and
  // arrives at offset 2, exactly when the legacy leader would start that
  // color's sends, and deliveries are handled before phase actions. So
  // every outcome metric — commit counts, latencies, pending peaks —
  // must equal the legacy run; only message endpoints (and counts, via
  // the extra ColorClassMsg hop) may differ.
  SimConfig config = SmallConfig("bds_sharded");
  config.bds_color_leaders = 4;
  const SimResult legacy = RunWith(SmallConfig("bds"), 1, true);
  const SimResult sharded = RunWith(config, 1, true);
  EXPECT_EQ(legacy.injected, sharded.injected);
  EXPECT_EQ(legacy.committed, sharded.committed);
  EXPECT_EQ(legacy.aborted, sharded.aborted);
  EXPECT_EQ(legacy.unresolved, sharded.unresolved);
  EXPECT_EQ(legacy.rounds_executed, sharded.rounds_executed);
  EXPECT_EQ(legacy.drained, sharded.drained);
  EXPECT_EQ(legacy.max_pending, sharded.max_pending);
  EXPECT_DOUBLE_EQ(legacy.avg_pending_per_shard,
                   sharded.avg_pending_per_shard);
  EXPECT_DOUBLE_EQ(legacy.avg_latency, sharded.avg_latency);
  EXPECT_DOUBLE_EQ(legacy.max_latency, sharded.max_latency);
  EXPECT_DOUBLE_EQ(legacy.p50_latency, sharded.p50_latency);
  EXPECT_DOUBLE_EQ(legacy.p99_latency, sharded.p99_latency);
}

TEST(LeaderSharding, ShardedDrainsWithAllInvariants) {
  SimConfig config = SmallConfig("bds_sharded");
  config.bds_color_leaders = 4;
  Simulation sim(config);
  const SimResult result = sim.Run();
  EXPECT_GT(result.injected, 0u);
  EXPECT_EQ(result.aborted, 0u);
  EXPECT_EQ(std::string(sim.scheduler().name()), "bds_sharded");
  ExpectDrainedRunInvariants(sim, result, /*same_round_atomicity=*/true);
}

TEST(LeaderSharding, MultirootDrainsWithAllInvariants) {
  SimConfig config = SmallConfig("fds_multiroot");
  config.fds_top_roots = 3;
  Simulation sim(config);
  const SimResult result = sim.Run();
  EXPECT_GT(result.injected, 0u);
  EXPECT_EQ(std::string(sim.scheduler().name()), "fds_multiroot");
  ASSERT_NE(sim.hierarchy(), nullptr);
  EXPECT_EQ(sim.hierarchy()->top_roots().size(), 3u);
  ExpectDrainedRunInvariants(sim, result, /*same_round_atomicity=*/false);
}

TEST(LeaderSharding, MultirootCommitsWhatLegacyFdsCommits) {
  // The redirect across interchangeable roots changes which leader
  // coordinates a diameter-spanning transaction, never whether it
  // resolves: both modes drain the identical injected set with no
  // aborts, so the committed totals must agree.
  SimConfig config = SmallConfig("fds_multiroot");
  config.fds_top_roots = 3;
  const SimResult legacy = RunWith(SmallConfig("fds"), 1, true);
  const SimResult multiroot = RunWith(config, 1, true);
  EXPECT_EQ(legacy.injected, multiroot.injected);
  EXPECT_EQ(legacy.committed, multiroot.committed);
  EXPECT_EQ(legacy.aborted, multiroot.aborted);
  EXPECT_TRUE(multiroot.drained);
}

TEST(LeaderSharding, ShardedBitIdenticalAcrossWorkersAndPipeline) {
  SimConfig config = SmallConfig("bds_sharded");
  config.bds_color_leaders = 4;
  const SimResult serial = RunWith(config, 1, true);
  ExpectBitIdenticalResults(serial, RunWith(config, 4, true));
  ExpectBitIdenticalResults(serial, RunWith(config, 4, false));
}

TEST(LeaderSharding, MultirootBitIdenticalAcrossWorkersAndPipeline) {
  for (const std::uint32_t roots : {3u, 4u}) {
    SCOPED_TRACE("roots = " + std::to_string(roots));
    SimConfig config = SmallConfig("fds_multiroot");
    config.fds_top_roots = roots;
    const SimResult serial = RunWith(config, 1, true);
    ExpectBitIdenticalResults(serial, RunWith(config, 4, true));
    ExpectBitIdenticalResults(serial, RunWith(config, 4, false));
  }
}

TEST(LeaderSharding, CoLeaderMappingIsDeterministicAndPeriodic) {
  // The color-class -> co-leader mapping is pure arithmetic: period L in
  // the color, always in range, and consecutive colors never share a
  // co-leader when L > 1 (their offsets differ by 1..L-1 < s).
  const ShardId shards = 16;
  const std::uint32_t L = 4;
  for (ShardId leader = 0; leader < shards; ++leader) {
    for (Color color = 0; color < 12; ++color) {
      const ShardId co = BdsScheduler::CoLeaderFor(leader, color, L, shards);
      EXPECT_LT(co, shards);
      EXPECT_EQ(co, BdsScheduler::CoLeaderFor(leader, color + L, L, shards));
      EXPECT_NE(co,
                BdsScheduler::CoLeaderFor(leader, color + 1, L, shards));
    }
  }
  // L = 1 pins every class on the shard after the leader — the legacy
  // epoch pipeline's successor, but the code path never engages (the
  // scheduler takes the legacy branch at color_leaders = 1).
  EXPECT_EQ(BdsScheduler::CoLeaderFor(7, 0, 1, 16),
            BdsScheduler::CoLeaderFor(7, 5, 1, 16));
}

}  // namespace
}  // namespace stableshard
