// Unit tests for the CommitLedger: vote evaluation, commit application,
// resolution tracking, latency accounting and the runtime safety invariants
// (unit shard capacity, stale-state commits).
#include <gtest/gtest.h>

#include "chain/account_map.h"
#include "core/commit_ledger.h"
#include "txn/txn_factory.h"

namespace stableshard::core {
namespace {

class CommitLedgerTest : public ::testing::Test {
 protected:
  CommitLedgerTest()
      : map_(chain::AccountMap::RoundRobin(4, 4)),
        ledger_(map_, /*initial_balance=*/1000),
        factory_(map_) {}

  chain::AccountMap map_;
  CommitLedger ledger_;
  txn::TxnFactory factory_;
};

TEST_F(CommitLedgerTest, EvaluateChecksConditionsAndValidity) {
  const auto good = factory_.MakeTransfer(0, 0, /*from=*/0, /*to=*/1,
                                          /*amount=*/100, /*min=*/500);
  for (const auto& sub : good.subs()) {
    EXPECT_TRUE(ledger_.EvaluateSub(sub));
  }
  const auto poor = factory_.MakeTransfer(0, 0, 0, 1, /*amount=*/100,
                                          /*min=*/5000);  // condition fails
  bool any_false = false;
  for (const auto& sub : poor.subs()) {
    if (!ledger_.EvaluateSub(sub)) any_false = true;
  }
  EXPECT_TRUE(any_false);
  const auto broke = factory_.MakeTransfer(0, 0, 0, 1, /*amount=*/5000,
                                           /*min=*/500);  // invalid action
  any_false = false;
  for (const auto& sub : broke.subs()) {
    if (!ledger_.EvaluateSub(sub)) any_false = true;
  }
  EXPECT_TRUE(any_false);
}

TEST_F(CommitLedgerTest, CommitAppliesActionsAndAppendsBlocks) {
  const auto txn = factory_.MakeTransfer(0, 0, 0, 1, 100, 500);
  ledger_.RegisterInjection(txn);
  Round round = 5;
  bool resolved = false;
  for (const auto& sub : txn.subs()) {
    resolved = ledger_.ApplyConfirm(txn.id(), sub, /*commit=*/true, round);
    ++round;  // different shards, different rounds allowed (kOrdered)
  }
  EXPECT_TRUE(resolved);
  EXPECT_TRUE(ledger_.IsResolved(txn.id()));
  EXPECT_EQ(ledger_.committed_txns(), 1u);
  EXPECT_EQ(ledger_.store(map_.OwnerOf(0)).BalanceOf(0), 900);
  EXPECT_EQ(ledger_.store(map_.OwnerOf(1)).BalanceOf(1), 1100);
  std::size_t blocks = 0;
  for (const auto& chain : ledger_.chains()) blocks += chain.size();
  EXPECT_EQ(blocks, 2u);
}

TEST_F(CommitLedgerTest, AbortLeavesStateUntouched) {
  const auto txn = factory_.MakeTransfer(0, 0, 0, 1, 100, 500);
  ledger_.RegisterInjection(txn);
  for (const auto& sub : txn.subs()) {
    ledger_.ApplyConfirm(txn.id(), sub, /*commit=*/false, 3);
  }
  EXPECT_EQ(ledger_.aborted_txns(), 1u);
  EXPECT_EQ(ledger_.store(map_.OwnerOf(0)).BalanceOf(0), 1000);
  for (const auto& chain : ledger_.chains()) EXPECT_TRUE(chain.empty());
}

TEST_F(CommitLedgerTest, PendingCountsUnresolved) {
  const auto t0 = factory_.MakeTouch(0, 0, {0});
  const auto t1 = factory_.MakeTouch(0, 0, {1});
  ledger_.RegisterInjection(t0);
  ledger_.RegisterInjection(t1);
  EXPECT_EQ(ledger_.pending(), 2u);
  ledger_.ApplyConfirm(t0.id(), t0.subs()[0], true, 1);
  EXPECT_EQ(ledger_.pending(), 1u);
}

TEST_F(CommitLedgerTest, LatencyRecordedAtLastSub) {
  const auto txn = factory_.MakeTouch(0, /*injected=*/10, {0, 1});
  ledger_.RegisterInjection(txn);
  ledger_.ApplyConfirm(txn.id(), txn.subs()[0], true, 20);
  EXPECT_EQ(ledger_.latency().resolved(), 0u);
  ledger_.ApplyConfirm(txn.id(), txn.subs()[1], true, 31);
  EXPECT_EQ(ledger_.latency().resolved(), 1u);
  EXPECT_DOUBLE_EQ(ledger_.latency().average_latency(), 21.0);
}

TEST_F(CommitLedgerTest, SealedJournalMatchesSerialFlush) {
  // Two identical deferred-confirm rounds: one drained by the serial
  // FlushRound, the other by the sealed-journal triple with 3 partitions
  // applied out of order. Every counter and the (order-sensitive) latency
  // mean must agree bit-for-bit.
  CommitLedger serial(map_, 1000);
  CommitLedger pipelined(map_, 1000);

  const auto a = factory_.MakeTouch(0, /*injected=*/0, {0, 1, 2});
  const auto b = factory_.MakeTouch(1, /*injected=*/1, {3});
  const auto c = factory_.MakeTouch(2, /*injected=*/1, {1, 3});
  for (CommitLedger* ledger : {&serial, &pipelined}) {
    for (const auto* txn : {&a, &b, &c}) {
      ledger->RegisterInjection(*txn);
    }
    // Round 4: a fully commits, b aborts, c resolves only its shard-3 sub
    // (with an abort vote) — c stays pending into the next round.
    for (const auto& sub : a.subs()) {
      ledger->ApplyConfirmDeferred(a.id(), sub, /*commit=*/true, 4);
    }
    ledger->ApplyConfirmDeferred(b.id(), b.subs()[0], /*commit=*/false, 4);
    ledger->ApplyConfirmDeferred(c.id(), c.subs()[1], /*commit=*/false, 4);
  }

  serial.FlushRound(4);
  pipelined.SealJournal(/*round=*/4, /*parts=*/3);
  pipelined.ResolveSealedPartition(2, 4);
  pipelined.ResolveSealedPartition(0, 4);
  pipelined.ResolveSealedPartition(1, 4);
  pipelined.FinishSealedRound(4);

  // Round 5: c's remaining sub arrives and completes the abort.
  for (CommitLedger* ledger : {&serial, &pipelined}) {
    ledger->ApplyConfirmDeferred(c.id(), c.subs()[0], /*commit=*/false, 5);
  }
  serial.FlushRound(5);
  pipelined.SealJournal(/*round=*/5, /*parts=*/2);
  pipelined.ResolveSealedPartition(1, 5);
  pipelined.ResolveSealedPartition(0, 5);
  pipelined.FinishSealedRound(5);

  EXPECT_EQ(serial.resolved(), pipelined.resolved());
  EXPECT_EQ(serial.committed_txns(), pipelined.committed_txns());
  EXPECT_EQ(serial.aborted_txns(), pipelined.aborted_txns());
  EXPECT_EQ(serial.pending(), pipelined.pending());
  EXPECT_EQ(serial.committed_txns(), 1u);
  EXPECT_EQ(serial.aborted_txns(), 2u);
  EXPECT_TRUE(pipelined.IsResolved(a.id()));
  EXPECT_TRUE(pipelined.IsResolved(b.id()));
  EXPECT_TRUE(pipelined.IsResolved(c.id()));
  EXPECT_DOUBLE_EQ(serial.latency().average_latency(),
                   pipelined.latency().average_latency());
  EXPECT_DOUBLE_EQ(serial.latency().max_latency(),
                   pipelined.latency().max_latency());
}

TEST_F(CommitLedgerTest, SealedJournalSupportsMorePartitionsThanEntries) {
  const auto txn = factory_.MakeTouch(0, 0, {0});
  ledger_.RegisterInjection(txn);
  ledger_.ApplyConfirmDeferred(txn.id(), txn.subs()[0], /*commit=*/true, 1);
  ledger_.SealJournal(/*round=*/1, /*parts=*/8);
  for (std::uint32_t part = 0; part < 8; ++part) {
    ledger_.ResolveSealedPartition(part, 1);
  }
  ledger_.FinishSealedRound(1);
  EXPECT_TRUE(ledger_.IsResolved(txn.id()));
  EXPECT_EQ(ledger_.committed_txns(), 1u);
}

TEST_F(CommitLedgerTest, MixedDecisionCountsAsAborted) {
  const auto txn = factory_.MakeTouch(0, 0, {0, 1});
  ledger_.RegisterInjection(txn);
  ledger_.ApplyConfirm(txn.id(), txn.subs()[0], false, 1);
  ledger_.ApplyConfirm(txn.id(), txn.subs()[1], false, 2);
  EXPECT_EQ(ledger_.aborted_txns(), 1u);
  EXPECT_EQ(ledger_.committed_txns(), 0u);
}

using CommitLedgerDeathTest = CommitLedgerTest;

TEST_F(CommitLedgerDeathTest, DoubleRegisterAborts) {
  const auto txn = factory_.MakeTouch(0, 0, {0});
  ledger_.RegisterInjection(txn);
  EXPECT_DEATH(ledger_.RegisterInjection(txn), "twice");
}

TEST_F(CommitLedgerDeathTest, UnitShardCapacityEnforced) {
  const auto t0 = factory_.MakeTouch(0, 0, {0});
  const auto t1 = factory_.MakeTouch(0, 0, {0});
  ledger_.RegisterInjection(t0);
  ledger_.RegisterInjection(t1);
  ledger_.ApplyConfirm(t0.id(), t0.subs()[0], true, /*round=*/7);
  // Second commit on the same shard in the same round must abort.
  EXPECT_DEATH(ledger_.ApplyConfirm(t1.id(), t1.subs()[0], true, 7),
               "two commits");
}

TEST_F(CommitLedgerDeathTest, StaleCommitDetected) {
  // t0 drains the balance; committing t1 (whose withdraw was valid at vote
  // time but no longer is) must trip the stale-state check.
  const auto t0 = factory_.MakeTransfer(0, 0, 0, 1, 1000, 0);
  const auto t1 = factory_.MakeTransfer(0, 0, 0, 1, 1000, 0);
  ledger_.RegisterInjection(t0);
  ledger_.RegisterInjection(t1);
  for (const auto& sub : t0.subs()) {
    ledger_.ApplyConfirm(t0.id(), sub, true, 1);
  }
  for (const auto& sub : t1.subs()) {
    if (sub.destination == map_.OwnerOf(0)) {
      EXPECT_DEATH(ledger_.ApplyConfirm(t1.id(), sub, true, 2), "stale");
    }
  }
}

TEST_F(CommitLedgerDeathTest, ConfirmForUnknownTxnAborts) {
  const auto txn = factory_.MakeTouch(0, 0, {0});
  EXPECT_DEATH(ledger_.ApplyConfirm(txn.id(), txn.subs()[0], true, 1),
               "unregistered");
}

}  // namespace
}  // namespace stableshard::core
