// Unit tests for the CommitLedger: vote evaluation, commit application,
// resolution tracking, latency accounting and the runtime safety invariants
// (unit shard capacity, stale-state commits).
#include <gtest/gtest.h>

#include "chain/account_map.h"
#include "core/commit_ledger.h"
#include "txn/txn_factory.h"

namespace stableshard::core {
namespace {

class CommitLedgerTest : public ::testing::Test {
 protected:
  CommitLedgerTest()
      : map_(chain::AccountMap::RoundRobin(4, 4)),
        ledger_(map_, /*initial_balance=*/1000),
        factory_(map_) {}

  chain::AccountMap map_;
  CommitLedger ledger_;
  txn::TxnFactory factory_;
};

TEST_F(CommitLedgerTest, EvaluateChecksConditionsAndValidity) {
  const auto good = factory_.MakeTransfer(0, 0, /*from=*/0, /*to=*/1,
                                          /*amount=*/100, /*min=*/500);
  for (const auto& sub : good.subs()) {
    EXPECT_TRUE(ledger_.EvaluateSub(sub));
  }
  const auto poor = factory_.MakeTransfer(0, 0, 0, 1, /*amount=*/100,
                                          /*min=*/5000);  // condition fails
  bool any_false = false;
  for (const auto& sub : poor.subs()) {
    if (!ledger_.EvaluateSub(sub)) any_false = true;
  }
  EXPECT_TRUE(any_false);
  const auto broke = factory_.MakeTransfer(0, 0, 0, 1, /*amount=*/5000,
                                           /*min=*/500);  // invalid action
  any_false = false;
  for (const auto& sub : broke.subs()) {
    if (!ledger_.EvaluateSub(sub)) any_false = true;
  }
  EXPECT_TRUE(any_false);
}

TEST_F(CommitLedgerTest, CommitAppliesActionsAndAppendsBlocks) {
  const auto txn = factory_.MakeTransfer(0, 0, 0, 1, 100, 500);
  ledger_.RegisterInjection(txn);
  Round round = 5;
  bool resolved = false;
  for (const auto& sub : txn.subs()) {
    resolved = ledger_.ApplyConfirm(txn.id(), sub, /*commit=*/true, round);
    ++round;  // different shards, different rounds allowed (kOrdered)
  }
  EXPECT_TRUE(resolved);
  EXPECT_TRUE(ledger_.IsResolved(txn.id()));
  EXPECT_EQ(ledger_.committed_txns(), 1u);
  EXPECT_EQ(ledger_.store(map_.OwnerOf(0)).BalanceOf(0), 900);
  EXPECT_EQ(ledger_.store(map_.OwnerOf(1)).BalanceOf(1), 1100);
  std::size_t blocks = 0;
  for (const auto& chain : ledger_.chains()) blocks += chain.size();
  EXPECT_EQ(blocks, 2u);
}

TEST_F(CommitLedgerTest, AbortLeavesStateUntouched) {
  const auto txn = factory_.MakeTransfer(0, 0, 0, 1, 100, 500);
  ledger_.RegisterInjection(txn);
  for (const auto& sub : txn.subs()) {
    ledger_.ApplyConfirm(txn.id(), sub, /*commit=*/false, 3);
  }
  EXPECT_EQ(ledger_.aborted_txns(), 1u);
  EXPECT_EQ(ledger_.store(map_.OwnerOf(0)).BalanceOf(0), 1000);
  for (const auto& chain : ledger_.chains()) EXPECT_TRUE(chain.empty());
}

TEST_F(CommitLedgerTest, PendingCountsUnresolved) {
  const auto t0 = factory_.MakeTouch(0, 0, {0});
  const auto t1 = factory_.MakeTouch(0, 0, {1});
  ledger_.RegisterInjection(t0);
  ledger_.RegisterInjection(t1);
  EXPECT_EQ(ledger_.pending(), 2u);
  ledger_.ApplyConfirm(t0.id(), t0.subs()[0], true, 1);
  EXPECT_EQ(ledger_.pending(), 1u);
}

TEST_F(CommitLedgerTest, LatencyRecordedAtLastSub) {
  const auto txn = factory_.MakeTouch(0, /*injected=*/10, {0, 1});
  ledger_.RegisterInjection(txn);
  ledger_.ApplyConfirm(txn.id(), txn.subs()[0], true, 20);
  EXPECT_EQ(ledger_.latency().resolved(), 0u);
  ledger_.ApplyConfirm(txn.id(), txn.subs()[1], true, 31);
  EXPECT_EQ(ledger_.latency().resolved(), 1u);
  EXPECT_DOUBLE_EQ(ledger_.latency().average_latency(), 21.0);
}

TEST_F(CommitLedgerTest, MixedDecisionCountsAsAborted) {
  const auto txn = factory_.MakeTouch(0, 0, {0, 1});
  ledger_.RegisterInjection(txn);
  ledger_.ApplyConfirm(txn.id(), txn.subs()[0], false, 1);
  ledger_.ApplyConfirm(txn.id(), txn.subs()[1], false, 2);
  EXPECT_EQ(ledger_.aborted_txns(), 1u);
  EXPECT_EQ(ledger_.committed_txns(), 0u);
}

using CommitLedgerDeathTest = CommitLedgerTest;

TEST_F(CommitLedgerDeathTest, DoubleRegisterAborts) {
  const auto txn = factory_.MakeTouch(0, 0, {0});
  ledger_.RegisterInjection(txn);
  EXPECT_DEATH(ledger_.RegisterInjection(txn), "twice");
}

TEST_F(CommitLedgerDeathTest, UnitShardCapacityEnforced) {
  const auto t0 = factory_.MakeTouch(0, 0, {0});
  const auto t1 = factory_.MakeTouch(0, 0, {0});
  ledger_.RegisterInjection(t0);
  ledger_.RegisterInjection(t1);
  ledger_.ApplyConfirm(t0.id(), t0.subs()[0], true, /*round=*/7);
  // Second commit on the same shard in the same round must abort.
  EXPECT_DEATH(ledger_.ApplyConfirm(t1.id(), t1.subs()[0], true, 7),
               "two commits");
}

TEST_F(CommitLedgerDeathTest, StaleCommitDetected) {
  // t0 drains the balance; committing t1 (whose withdraw was valid at vote
  // time but no longer is) must trip the stale-state check.
  const auto t0 = factory_.MakeTransfer(0, 0, 0, 1, 1000, 0);
  const auto t1 = factory_.MakeTransfer(0, 0, 0, 1, 1000, 0);
  ledger_.RegisterInjection(t0);
  ledger_.RegisterInjection(t1);
  for (const auto& sub : t0.subs()) {
    ledger_.ApplyConfirm(t0.id(), sub, true, 1);
  }
  for (const auto& sub : t1.subs()) {
    if (sub.destination == map_.OwnerOf(0)) {
      EXPECT_DEATH(ledger_.ApplyConfirm(t1.id(), sub, true, 2), "stale");
    }
  }
}

TEST_F(CommitLedgerDeathTest, ConfirmForUnknownTxnAborts) {
  const auto txn = factory_.MakeTouch(0, 0, {0});
  EXPECT_DEATH(ledger_.ApplyConfirm(txn.id(), txn.subs()[0], true, 1),
               "unregistered");
}

}  // namespace
}  // namespace stableshard::core
