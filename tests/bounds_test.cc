// Parameterized checks of the paper's analytical bounds on live runs:
// Theorem 2 (BDS queue <= 4bs, latency <= 36 b min{k, ceil(sqrt(s))}) at
// admissible rates across (s, k, b) combinations.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/math_util.h"
#include "core/bds.h"
#include "sim_test_util.h"

namespace stableshard {
namespace {

using core::SimConfig;
using core::Simulation;

struct BoundsCase {
  ShardId shards;
  std::uint32_t k;
  double burstiness;
  double rate_fraction;  ///< fraction of the Lemma-1 admissible bound
  std::uint64_t seed;
};

class Theorem2Bounds : public ::testing::TestWithParam<BoundsCase> {};

TEST_P(Theorem2Bounds, QueueAndLatencyWithinPaperBounds) {
  const BoundsCase param = GetParam();
  SimConfig config;
  config.scheduler = "bds";
  config.topology = net::TopologyKind::kUniform;
  config.shards = param.shards;
  config.accounts = param.shards;  // one account per shard (paper setup)
  config.account_assignment = core::AccountAssignment::kRoundRobin;
  config.k = param.k;
  config.burstiness = param.burstiness;
  config.rho =
      param.rate_fraction * BdsStableRateBound(param.k, param.shards);
  config.rounds = 4000;
  config.drain_cap = 50000;
  config.seed = param.seed;

  Simulation sim(config);
  auto& scheduler = dynamic_cast<core::BdsScheduler&>(sim.scheduler());
  const auto result = sim.Run();

  const double tau =
      18.0 * config.burstiness * MinKSqrtS(param.k, param.shards);
  EXPECT_LE(scheduler.max_epoch_length(), tau) << "Lemma 1 epoch bound";
  EXPECT_LE(result.max_pending, 4.0 * config.burstiness * param.shards)
      << "Theorem 2 queue bound";
  EXPECT_LE(result.max_latency, 2.0 * tau) << "Theorem 2 latency bound";
  EXPECT_TRUE(result.drained);
  EXPECT_EQ(result.unresolved, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem2Bounds,
    ::testing::Values(BoundsCase{16, 4, 5, 1.0, 1},
                      BoundsCase{16, 4, 20, 1.0, 2},
                      BoundsCase{16, 8, 10, 1.0, 3},
                      BoundsCase{64, 8, 10, 1.0, 4},
                      BoundsCase{64, 2, 10, 1.0, 5},
                      BoundsCase{36, 6, 15, 0.5, 6},
                      BoundsCase{4, 2, 8, 1.0, 7}),
    [](const ::testing::TestParamInfo<BoundsCase>& info) {
      // Built by append: gcc 12's -O3 -Wrestrict misfires on chained
      // `const char* + std::string&&` concatenation (GCC PR105329).
      const auto& p = info.param;
      std::string name = "s";
      name += std::to_string(p.shards);
      name += "_k";
      name += std::to_string(p.k);
      name += "_b";
      name += std::to_string(static_cast<int>(p.burstiness));
      name += "_seed";
      name += std::to_string(p.seed);
      return name;
    });

TEST(Bounds, HigherBurstinessRaisesQueuesNotInstability) {
  // Queues scale with b but remain bounded by 4bs; the system still drains.
  double previous_peak = 0;
  for (const double b : {5.0, 20.0, 60.0}) {
    SimConfig config;
    config.scheduler = "bds";
    config.shards = 16;
    config.accounts = 16;
    config.k = 4;
    config.burstiness = b;
    config.rho = BdsStableRateBound(4, 16);
    config.rounds = 3000;
    config.drain_cap = 50000;
    Simulation sim(config);
    const auto result = sim.Run();
    EXPECT_TRUE(result.drained);
    EXPECT_LE(result.max_pending, 4.0 * b * 16);
    EXPECT_GE(static_cast<double>(result.max_pending), previous_peak);
    previous_peak = static_cast<double>(result.max_pending);
  }
}

}  // namespace
}  // namespace stableshard
