// Integration tests for the Direct baseline scheduler: liveness and
// serializability via the id-ordered queues, across topologies.
#include <gtest/gtest.h>

#include "sim_test_util.h"

namespace stableshard {
namespace {

using core::SimConfig;
using core::Simulation;
using test::ExpectDrainedRunInvariants;
using test::SmallConfig;

TEST(Direct, DrainsOnLine) {
  SimConfig config = SmallConfig("direct");
  Simulation sim(config);
  const auto result = sim.Run();
  EXPECT_GT(result.injected, 0u);
  ExpectDrainedRunInvariants(sim, result, /*same_round_atomicity=*/false);
}

TEST(Direct, DrainsOnUniform) {
  SimConfig config = SmallConfig("direct");
  config.topology = net::TopologyKind::kUniform;
  Simulation sim(config);
  const auto result = sim.Run();
  ExpectDrainedRunInvariants(sim, result, false);
}

TEST(Direct, HandlesAborts) {
  SimConfig config = SmallConfig("direct");
  config.abort_probability = 0.5;
  Simulation sim(config);
  const auto result = sim.Run();
  EXPECT_GT(result.aborted, 0u);
  ExpectDrainedRunInvariants(sim, result, false);
}

TEST(Direct, HotspotFullySerializes) {
  SimConfig config = SmallConfig("direct");
  config.strategy = "hotspot";
  config.burstiness = 10;
  Simulation sim(config);
  const auto result = sim.Run();
  ExpectDrainedRunInvariants(sim, result, false);
  // Hotspot transactions all conflict: the hotspot shard's chain carries
  // every committed transaction.
  const auto& chains = sim.ledger().chains();
  std::size_t hotspot_blocks = 0;
  for (const auto& chain : chains) {
    hotspot_blocks = std::max(hotspot_blocks, chain.size());
  }
  EXPECT_EQ(hotspot_blocks, result.committed);
}

TEST(Direct, WideTransactionsStillLive) {
  SimConfig config = SmallConfig("direct");
  config.k = 8;
  config.burstiness = 40;
  config.drain_cap = 200000;
  Simulation sim(config);
  const auto result = sim.Run();
  ExpectDrainedRunInvariants(sim, result, false);
}

}  // namespace
}  // namespace stableshard
