// Tests for the consensus substrate: PBFT agreement under the n > 3f bound
// with honest, silent and equivocating nodes, view changes on faulty
// primaries, and the cluster-sending guarantees the round abstraction
// relies on.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "consensus/cluster_sending.h"
#include "consensus/pbft.h"
#include "consensus/round_model.h"

namespace stableshard::consensus {
namespace {

PbftConfig MakeConfig(std::uint32_t nodes,
                      std::vector<NodeBehavior> behaviors = {}) {
  PbftConfig config;
  config.nodes = nodes;
  config.behaviors = std::move(behaviors);
  return config;
}

TEST(Pbft, AllHonestDecidesInOneView) {
  Rng rng(1);
  const auto result = RunPbft(MakeConfig(4), 0xfeed, /*primary=*/0, rng);
  EXPECT_TRUE(result.decided);
  EXPECT_EQ(result.value, 0xfeedu);
  EXPECT_TRUE(result.all_honest_agree);
  EXPECT_EQ(result.views_used, 1u);
}

TEST(Pbft, SilentPrimaryTriggersViewChange) {
  Rng rng(2);
  auto config = MakeConfig(4, {NodeBehavior::kSilent, NodeBehavior::kHonest,
                               NodeBehavior::kHonest, NodeBehavior::kHonest});
  const auto result = RunPbft(config, 0xfeed, /*primary=*/0, rng);
  EXPECT_TRUE(result.decided);
  EXPECT_EQ(result.value, 0xfeedu);
  EXPECT_GT(result.views_used, 1u);
  EXPECT_TRUE(result.all_honest_agree);
}

TEST(Pbft, OneFaultOfFourTolerated) {
  for (const auto behavior :
       {NodeBehavior::kSilent, NodeBehavior::kEquivocating}) {
    for (std::uint32_t faulty_node = 0; faulty_node < 4; ++faulty_node) {
      Rng rng(faulty_node + 10);
      std::vector<NodeBehavior> behaviors(4, NodeBehavior::kHonest);
      behaviors[faulty_node] = behavior;
      const auto result =
          RunPbft(MakeConfig(4, behaviors), 0xabc, /*primary=*/0, rng);
      EXPECT_TRUE(result.decided)
          << "faulty node " << faulty_node << " behavior "
          << static_cast<int>(behavior);
      EXPECT_TRUE(result.all_honest_agree);
      EXPECT_EQ(result.value, 0xabcu);
    }
  }
}

TEST(Pbft, QuorumMath) {
  EXPECT_EQ(MakeConfig(4).ToleratedFaults(), 1u);
  EXPECT_EQ(MakeConfig(4).Quorum(), 3u);
  EXPECT_EQ(MakeConfig(7).ToleratedFaults(), 2u);
  EXPECT_EQ(MakeConfig(7).Quorum(), 5u);
  EXPECT_EQ(MakeConfig(10).ToleratedFaults(), 3u);
}

TEST(Pbft, TooManySilentNodesCannotDecide) {
  // 4 nodes, 2 silent: quorum of 3 honest prepares unreachable.
  Rng rng(3);
  auto config = MakeConfig(4, {NodeBehavior::kSilent, NodeBehavior::kSilent,
                               NodeBehavior::kHonest, NodeBehavior::kHonest});
  const auto result = RunPbft(config, 0x1, 0, rng);
  EXPECT_FALSE(result.decided);
}

TEST(Pbft, LargeShardWithMaxFaults) {
  // n = 13, f = 4 = (n-1)/3: still decides.
  std::vector<NodeBehavior> behaviors(13, NodeBehavior::kHonest);
  for (int i = 0; i < 4; ++i) behaviors[i] = NodeBehavior::kEquivocating;
  Rng rng(4);
  const auto result = RunPbft(MakeConfig(13, behaviors), 0x77, 5, rng);
  EXPECT_TRUE(result.decided);
  EXPECT_TRUE(result.all_honest_agree);
  EXPECT_EQ(result.value, 0x77u);
}

TEST(Pbft, MessageCountBounded) {
  Rng rng(5);
  const auto result = RunPbft(MakeConfig(7), 0x1, 0, rng);
  // One view, 3 phases, <= n messages per node per phase.
  EXPECT_LE(result.messages, 3ull * 7 * 7);
  EXPECT_GT(result.messages, 0u);
}

TEST(BftBound, SatisfiedIffNGreaterThan3F) {
  EXPECT_TRUE(SatisfiesBftBound(4, 1));
  EXPECT_FALSE(SatisfiesBftBound(3, 1));
  EXPECT_TRUE(SatisfiesBftBound(7, 2));
  EXPECT_FALSE(SatisfiesBftBound(6, 2));
  EXPECT_TRUE(RoundAbstractionHolds(4, 1));
  EXPECT_FALSE(RoundAbstractionHolds(3, 1));
}

class ClusterSendProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t,
                                                 std::uint32_t, std::uint32_t>> {
};

TEST_P(ClusterSendProperty, AlwaysDeliversUnderBftBound) {
  const auto [n1, f1, n2, f2] = GetParam();
  ShardFaultProfile sender{n1, f1, {}};
  ShardFaultProfile receiver{n2, f2, {}};
  Rng rng(n1 * 100 + n2);
  const auto result = SimulateClusterSend(sender, receiver, rng);
  EXPECT_TRUE(result.delivered);
  EXPECT_TRUE(result.sender_confirmed);
  EXPECT_EQ(result.node_messages, ClusterSendCost(f1, f2));
  EXPECT_GE(result.honest_pairs, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    FaultSweep, ClusterSendProperty,
    ::testing::Values(std::tuple{4u, 0u, 4u, 0u}, std::tuple{4u, 1u, 4u, 1u},
                      std::tuple{7u, 2u, 4u, 1u}, std::tuple{10u, 3u, 7u, 2u},
                      std::tuple{13u, 4u, 13u, 4u}));

TEST(ClusterSend, CostFormula) {
  EXPECT_EQ(ClusterSendCost(0, 0), 1u);
  EXPECT_EQ(ClusterSendCost(1, 1), 4u);
  EXPECT_EQ(ClusterSendCost(2, 3), 12u);
}

TEST(ClusterSend, ExplicitFaultySets) {
  ShardFaultProfile sender{4, 1, {2}};
  ShardFaultProfile receiver{4, 1, {0}};
  EXPECT_TRUE(sender.IsFaulty(2));
  EXPECT_FALSE(sender.IsFaulty(0));
  Rng rng(9);
  const auto result = SimulateClusterSend(sender, receiver, rng);
  EXPECT_TRUE(result.delivered);
}

TEST(ClusterSendDeath, RejectsBftViolation) {
  ShardFaultProfile bad{3, 1, {}};
  ShardFaultProfile ok{4, 1, {}};
  Rng rng(1);
  EXPECT_DEATH(SimulateClusterSend(bad, ok, rng), "SSHARD_CHECK");
}

TEST(RoundModel, BudgetIsFinite) {
  EXPECT_GT(RoundMessageBudget(4, 1, 1), 0u);
  EXPECT_EQ(RoundMessageBudget(4, 1, 1), 3ull * 16 + 4);
}

}  // namespace
}  // namespace stableshard::consensus
