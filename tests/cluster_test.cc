// Tests for the hierarchical cluster decomposition (Section 6.1): leader
// validity, diameter bounds, coverage (property iii), bounded membership
// (property ii), and home-cluster lookup across topologies.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "cluster/hierarchy.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "net/metric.h"
#include "net/topology_factory.h"

namespace stableshard::cluster {
namespace {

void ExpectLeadersValid(const Hierarchy& hierarchy,
                        const net::ShardMetric& metric) {
  for (const Cluster& cluster : hierarchy.clusters()) {
    if (!cluster.HasLeader()) continue;
    EXPECT_TRUE(cluster.Contains(cluster.leader));
    const Distance radius =
        cluster.layer >= 31 ? metric.Diameter()
                            : static_cast<Distance>((1u << cluster.layer) - 1);
    for (const ShardId shard : metric.Neighborhood(cluster.leader, radius)) {
      EXPECT_TRUE(cluster.Contains(shard))
          << "leader " << cluster.leader << " neighborhood escapes cluster "
          << cluster.id << " (layer " << cluster.layer << ")";
    }
  }
}

void ExpectHomeClusterSound(const Hierarchy& hierarchy,
                            const net::ShardMetric& metric) {
  // For every (home, x) the returned cluster must contain the whole
  // x-neighborhood and have a leader.
  for (ShardId home = 0; home < metric.shard_count(); ++home) {
    for (Distance x = 0; x <= metric.Diameter(); ++x) {
      const Cluster& cluster = hierarchy.FindHomeCluster(home, x);
      EXPECT_TRUE(cluster.HasLeader());
      for (const ShardId shard : metric.Neighborhood(home, x)) {
        EXPECT_TRUE(cluster.Contains(shard));
      }
    }
  }
}

TEST(LineShifted, PaperConstructionOn64Shards) {
  net::LineMetric metric(64);
  const auto hierarchy = Hierarchy::BuildLineShifted(metric);
  // Layer 0 clusters contain two shards each (paper Section 7).
  std::size_t layer0_full = 0;
  for (const Cluster& cluster : hierarchy.clusters()) {
    if (cluster.layer == 0 && cluster.sublayer == 0) {
      EXPECT_EQ(cluster.size(), 2u);
      ++layer0_full;
    }
  }
  EXPECT_EQ(layer0_full, 32u);
  // The top layer has a cluster spanning all shards.
  bool top_found = false;
  for (const Cluster& cluster : hierarchy.clusters()) {
    if (cluster.size() == 64) top_found = true;
  }
  EXPECT_TRUE(top_found);
  ExpectLeadersValid(hierarchy, metric);
  ExpectHomeClusterSound(hierarchy, metric);
}

TEST(LineShifted, SublayersArePartitions) {
  net::LineMetric metric(32);
  const auto hierarchy = Hierarchy::BuildLineShifted(metric);
  for (std::uint32_t layer = 0; layer < hierarchy.layer_count(); ++layer) {
    for (std::uint32_t sub = 0; sub < hierarchy.sublayer_count(); ++sub) {
      std::vector<int> coverage(32, 0);
      bool sublayer_exists = false;
      for (const Cluster& cluster : hierarchy.clusters()) {
        if (cluster.layer != layer || cluster.sublayer != sub) continue;
        sublayer_exists = true;
        for (const ShardId shard : cluster.shards) ++coverage[shard];
      }
      if (!sublayer_exists) continue;
      for (ShardId shard = 0; shard < 32; ++shard) {
        EXPECT_LE(coverage[shard], 1)
            << "shard " << shard << " in two clusters of sublayer (" << layer
            << "," << sub << ")";
      }
    }
  }
}

TEST(LineShifted, DiametersGrowGeometrically) {
  net::LineMetric metric(64);
  const auto hierarchy = Hierarchy::BuildLineShifted(metric);
  for (std::uint32_t layer = 0; layer < hierarchy.layer_count(); ++layer) {
    // Layer-l clusters are intervals of <= 2^{l+1} shards: diameter < 2^{l+1}.
    EXPECT_LT(hierarchy.layer_diameter(layer),
              (std::uint64_t{2} << layer) + 1);
  }
}

TEST(LineShifted, SingleShardDegenerate) {
  net::LineMetric metric(1);
  const auto hierarchy = Hierarchy::BuildLineShifted(metric);
  const Cluster& cluster = hierarchy.FindHomeCluster(0, 0);
  EXPECT_TRUE(cluster.HasLeader());
  EXPECT_EQ(cluster.size(), 1u);
}

struct CoverCase {
  net::TopologyKind topology;
  ShardId shards;
};

class SparseCoverProperty : public ::testing::TestWithParam<CoverCase> {};

TEST_P(SparseCoverProperty, AllSectionSixOneProperties) {
  const auto param = GetParam();
  Rng rng(99);
  const auto metric = net::MakeMetric(param.topology, param.shards, &rng);
  const auto hierarchy = Hierarchy::BuildSparseCover(*metric);

  ExpectLeadersValid(hierarchy, *metric);
  ExpectHomeClusterSound(hierarchy, *metric);

  // Property (i): layer-l diameter O(2^l) — balls of radius 2^{l+1}-1 have
  // diameter at most 2*(2^{l+1}-1).
  for (std::uint32_t layer = 0; layer < hierarchy.layer_count(); ++layer) {
    EXPECT_LE(hierarchy.layer_diameter(layer),
              2 * ((std::uint64_t{2} << layer) - 1));
  }

  // Property (iii) holds *per layer* for the net construction: every
  // shard's (2^l - 1)-neighborhood is inside some layer-l cluster.
  for (std::uint32_t layer = 0; layer < hierarchy.layer_count(); ++layer) {
    const Distance radius = static_cast<Distance>((1u << layer) - 1);
    for (ShardId shard = 0; shard < param.shards; ++shard) {
      const auto neighborhood = metric->Neighborhood(shard, radius);
      bool covered = false;
      for (const std::uint32_t id : hierarchy.clusters_containing(shard)) {
        const Cluster& cluster = hierarchy.clusters()[id];
        if (cluster.layer != layer) continue;
        bool all = true;
        for (const ShardId other : neighborhood) {
          if (!cluster.Contains(other)) {
            all = false;
            break;
          }
        }
        if (all) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "layer " << layer << " shard " << shard;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, SparseCoverProperty,
    ::testing::Values(CoverCase{net::TopologyKind::kLine, 64},
                      CoverCase{net::TopologyKind::kLine, 17},
                      CoverCase{net::TopologyKind::kRing, 32},
                      CoverCase{net::TopologyKind::kGrid, 16},
                      CoverCase{net::TopologyKind::kRandomGeometric, 24},
                      CoverCase{net::TopologyKind::kUniform, 16}),
    [](const ::testing::TestParamInfo<CoverCase>& info) {
      return net::TopologyName(info.param.topology) + "_s" +
             std::to_string(info.param.shards);
    });

TEST(SparseCover, MembershipBoundedOnLine) {
  // Property (ii): each shard in O(log s) clusters per layer. For the
  // 1-dimensional net construction the overlap per layer is a small
  // constant; assert a generous bound.
  net::LineMetric metric(64);
  const auto hierarchy = Hierarchy::BuildSparseCover(metric);
  for (std::uint32_t layer = 0; layer < hierarchy.layer_count(); ++layer) {
    EXPECT_LE(hierarchy.MaxMembership(layer), 8u) << "layer " << layer;
  }
}

TEST(HomeCluster, PrefersLowestLayer) {
  net::LineMetric metric(64);
  const auto hierarchy = Hierarchy::BuildLineShifted(metric);
  // x = 0: the home shard alone; the lowest layer that contains shard 0
  // with a leader must be layer 0.
  const Cluster& tight = hierarchy.FindHomeCluster(0, 0);
  EXPECT_EQ(tight.layer, 0u);
  // x = diameter: must use a full cluster.
  const Cluster& wide = hierarchy.FindHomeCluster(0, 63);
  EXPECT_EQ(wide.size(), 64u);
}

TEST(HomeCluster, MonotoneInRadius) {
  net::LineMetric metric(32);
  const auto hierarchy = Hierarchy::BuildLineShifted(metric);
  for (ShardId home = 0; home < 32; home += 5) {
    std::uint32_t last_layer = 0;
    for (Distance x = 0; x < 32; ++x) {
      const Cluster& cluster = hierarchy.FindHomeCluster(home, x);
      EXPECT_GE(cluster.layer + 1, last_layer)
          << "layer decreased as radius grew";
      last_layer = std::max(last_layer, cluster.layer);
    }
  }
}

TEST(Hierarchy, ClustersContainingSortedByLevel) {
  net::LineMetric metric(16);
  const auto hierarchy = Hierarchy::BuildLineShifted(metric);
  for (ShardId shard = 0; shard < 16; ++shard) {
    const auto& ids = hierarchy.clusters_containing(shard);
    for (std::size_t i = 1; i < ids.size(); ++i) {
      const Cluster& prev = hierarchy.clusters()[ids[i - 1]];
      const Cluster& next = hierarchy.clusters()[ids[i]];
      EXPECT_LE(std::tuple(prev.layer, prev.sublayer, prev.id),
                std::tuple(next.layer, next.sublayer, next.id));
    }
  }
}

}  // namespace
}  // namespace stableshard::cluster
