// Tests for the hierarchical cluster decomposition (Section 6.1): leader
// validity, diameter bounds, coverage (property iii), bounded membership
// (property ii), and home-cluster lookup across topologies.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/hierarchy.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "net/metric.h"
#include "net/topology_factory.h"

namespace stableshard::cluster {
namespace {

void ExpectLeadersValid(const Hierarchy& hierarchy,
                        const net::ShardMetric& metric) {
  for (const Cluster& cluster : hierarchy.clusters()) {
    if (!cluster.HasLeader()) continue;
    EXPECT_TRUE(cluster.Contains(cluster.leader));
    const Distance radius =
        cluster.layer >= 31 ? metric.Diameter()
                            : static_cast<Distance>((1u << cluster.layer) - 1);
    for (const ShardId shard : metric.Neighborhood(cluster.leader, radius)) {
      EXPECT_TRUE(cluster.Contains(shard))
          << "leader " << cluster.leader << " neighborhood escapes cluster "
          << cluster.id << " (layer " << cluster.layer << ")";
    }
  }
}

void ExpectHomeClusterSound(const Hierarchy& hierarchy,
                            const net::ShardMetric& metric) {
  // For every (home, x) the returned cluster must contain the whole
  // x-neighborhood and have a leader.
  for (ShardId home = 0; home < metric.shard_count(); ++home) {
    for (Distance x = 0; x <= metric.Diameter(); ++x) {
      const Cluster& cluster = hierarchy.FindHomeCluster(home, x);
      EXPECT_TRUE(cluster.HasLeader());
      for (const ShardId shard : metric.Neighborhood(home, x)) {
        EXPECT_TRUE(cluster.Contains(shard));
      }
    }
  }
}

TEST(LineShifted, PaperConstructionOn64Shards) {
  net::LineMetric metric(64);
  const auto hierarchy = Hierarchy::BuildLineShifted(metric);
  // Layer 0 clusters contain two shards each (paper Section 7).
  std::size_t layer0_full = 0;
  for (const Cluster& cluster : hierarchy.clusters()) {
    if (cluster.layer == 0 && cluster.sublayer == 0) {
      EXPECT_EQ(cluster.size(), 2u);
      ++layer0_full;
    }
  }
  EXPECT_EQ(layer0_full, 32u);
  // The top layer has a cluster spanning all shards.
  bool top_found = false;
  for (const Cluster& cluster : hierarchy.clusters()) {
    if (cluster.size() == 64) top_found = true;
  }
  EXPECT_TRUE(top_found);
  ExpectLeadersValid(hierarchy, metric);
  ExpectHomeClusterSound(hierarchy, metric);
}

TEST(LineShifted, SublayersArePartitions) {
  net::LineMetric metric(32);
  const auto hierarchy = Hierarchy::BuildLineShifted(metric);
  for (std::uint32_t layer = 0; layer < hierarchy.layer_count(); ++layer) {
    for (std::uint32_t sub = 0; sub < hierarchy.sublayer_count(); ++sub) {
      std::vector<int> coverage(32, 0);
      bool sublayer_exists = false;
      for (const Cluster& cluster : hierarchy.clusters()) {
        if (cluster.layer != layer || cluster.sublayer != sub) continue;
        sublayer_exists = true;
        for (const ShardId shard : cluster.shards) ++coverage[shard];
      }
      if (!sublayer_exists) continue;
      for (ShardId shard = 0; shard < 32; ++shard) {
        EXPECT_LE(coverage[shard], 1)
            << "shard " << shard << " in two clusters of sublayer (" << layer
            << "," << sub << ")";
      }
    }
  }
}

TEST(LineShifted, DiametersGrowGeometrically) {
  net::LineMetric metric(64);
  const auto hierarchy = Hierarchy::BuildLineShifted(metric);
  for (std::uint32_t layer = 0; layer < hierarchy.layer_count(); ++layer) {
    // Layer-l clusters are intervals of <= 2^{l+1} shards: diameter < 2^{l+1}.
    EXPECT_LT(hierarchy.layer_diameter(layer),
              (std::uint64_t{2} << layer) + 1);
  }
}

TEST(LineShifted, SingleShardDegenerate) {
  net::LineMetric metric(1);
  const auto hierarchy = Hierarchy::BuildLineShifted(metric);
  const Cluster& cluster = hierarchy.FindHomeCluster(0, 0);
  EXPECT_TRUE(cluster.HasLeader());
  EXPECT_EQ(cluster.size(), 1u);
}

struct CoverCase {
  net::TopologyKind topology;
  ShardId shards;
};

class SparseCoverProperty : public ::testing::TestWithParam<CoverCase> {};

TEST_P(SparseCoverProperty, AllSectionSixOneProperties) {
  const auto param = GetParam();
  Rng rng(99);
  const auto metric = net::MakeMetric(param.topology, param.shards, &rng);
  const auto hierarchy = Hierarchy::BuildSparseCover(*metric);

  ExpectLeadersValid(hierarchy, *metric);
  ExpectHomeClusterSound(hierarchy, *metric);

  // Property (i): layer-l diameter O(2^l) — balls of radius 2^{l+1}-1 have
  // diameter at most 2*(2^{l+1}-1).
  for (std::uint32_t layer = 0; layer < hierarchy.layer_count(); ++layer) {
    EXPECT_LE(hierarchy.layer_diameter(layer),
              2 * ((std::uint64_t{2} << layer) - 1));
  }

  // Property (iii) holds *per layer* for the net construction: every
  // shard's (2^l - 1)-neighborhood is inside some layer-l cluster.
  for (std::uint32_t layer = 0; layer < hierarchy.layer_count(); ++layer) {
    const Distance radius = static_cast<Distance>((1u << layer) - 1);
    for (ShardId shard = 0; shard < param.shards; ++shard) {
      const auto neighborhood = metric->Neighborhood(shard, radius);
      bool covered = false;
      for (const std::uint32_t id : hierarchy.clusters_containing(shard)) {
        const Cluster& cluster = hierarchy.clusters()[id];
        if (cluster.layer != layer) continue;
        bool all = true;
        for (const ShardId other : neighborhood) {
          if (!cluster.Contains(other)) {
            all = false;
            break;
          }
        }
        if (all) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "layer " << layer << " shard " << shard;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, SparseCoverProperty,
    ::testing::Values(CoverCase{net::TopologyKind::kLine, 64},
                      CoverCase{net::TopologyKind::kLine, 17},
                      CoverCase{net::TopologyKind::kRing, 32},
                      CoverCase{net::TopologyKind::kGrid, 16},
                      CoverCase{net::TopologyKind::kRandomGeometric, 24},
                      CoverCase{net::TopologyKind::kUniform, 16}),
    [](const ::testing::TestParamInfo<CoverCase>& info) {
      return net::TopologyName(info.param.topology) + "_s" +
             std::to_string(info.param.shards);
    });

TEST(SparseCover, MembershipBoundedOnLine) {
  // Property (ii): each shard in O(log s) clusters per layer. For the
  // 1-dimensional net construction the overlap per layer is a small
  // constant; assert a generous bound.
  net::LineMetric metric(64);
  const auto hierarchy = Hierarchy::BuildSparseCover(metric);
  for (std::uint32_t layer = 0; layer < hierarchy.layer_count(); ++layer) {
    EXPECT_LE(hierarchy.MaxMembership(layer), 8u) << "layer " << layer;
  }
}

TEST(HomeCluster, PrefersLowestLayer) {
  net::LineMetric metric(64);
  const auto hierarchy = Hierarchy::BuildLineShifted(metric);
  // x = 0: the home shard alone; the lowest layer that contains shard 0
  // with a leader must be layer 0.
  const Cluster& tight = hierarchy.FindHomeCluster(0, 0);
  EXPECT_EQ(tight.layer, 0u);
  // x = diameter: must use a full cluster.
  const Cluster& wide = hierarchy.FindHomeCluster(0, 63);
  EXPECT_EQ(wide.size(), 64u);
}

TEST(HomeCluster, MonotoneInRadius) {
  net::LineMetric metric(32);
  const auto hierarchy = Hierarchy::BuildLineShifted(metric);
  for (ShardId home = 0; home < 32; home += 5) {
    std::uint32_t last_layer = 0;
    for (Distance x = 0; x < 32; ++x) {
      const Cluster& cluster = hierarchy.FindHomeCluster(home, x);
      EXPECT_GE(cluster.layer + 1, last_layer)
          << "layer decreased as radius grew";
      last_layer = std::max(last_layer, cluster.layer);
    }
  }
}

TEST(Hierarchy, ClustersContainingSortedByLevel) {
  net::LineMetric metric(16);
  const auto hierarchy = Hierarchy::BuildLineShifted(metric);
  for (ShardId shard = 0; shard < 16; ++shard) {
    const auto& ids = hierarchy.clusters_containing(shard);
    for (std::size_t i = 1; i < ids.size(); ++i) {
      const Cluster& prev = hierarchy.clusters()[ids[i - 1]];
      const Cluster& next = hierarchy.clusters()[ids[i]];
      EXPECT_LE(std::tuple(prev.layer, prev.sublayer, prev.id),
                std::tuple(next.layer, next.sublayer, next.id));
    }
  }
}

TEST(MultiRoot, DefaultIsSingleRoot) {
  net::LineMetric metric(32);
  const auto hierarchy = Hierarchy::BuildLineShifted(metric);
  ASSERT_EQ(hierarchy.top_roots().size(), 1u);
  const Cluster& root = hierarchy.clusters()[hierarchy.top_roots()[0]];
  EXPECT_TRUE(root.top_root);
  EXPECT_EQ(root.size(), 32u);
  EXPECT_TRUE(root.HasLeader());
}

TEST(MultiRoot, RootsAreFullLeaderedAndPairwiseDistinctlyLed) {
  for (const bool shifted : {true, false}) {
    net::LineMetric metric(64);
    const auto hierarchy = shifted
                               ? Hierarchy::BuildLineShifted(metric, 4)
                               : Hierarchy::BuildSparseCover(metric, 4);
    ASSERT_EQ(hierarchy.top_roots().size(), 4u);
    std::vector<ShardId> leaders;
    for (const std::uint32_t id : hierarchy.top_roots()) {
      const Cluster& root = hierarchy.clusters()[id];
      EXPECT_TRUE(root.top_root);
      EXPECT_EQ(root.size(), 64u) << "roots must be full-membership copies";
      ASSERT_TRUE(root.HasLeader());
      leaders.push_back(root.leader);
    }
    // A full top-layer cluster qualifies every shard as leader, so with
    // roots <= shards the spread must give pairwise-distinct leaders —
    // colocated root leaders would recreate the very serialization the
    // multi-root split removes.
    std::sort(leaders.begin(), leaders.end());
    EXPECT_TRUE(std::adjacent_find(leaders.begin(), leaders.end()) ==
                leaders.end());
    // Extra roots never break the Section-6.1 properties.
    ExpectLeadersValid(hierarchy, metric);
    ExpectHomeClusterSound(hierarchy, metric);
  }
}

TEST(MultiRoot, RootCountClampedToShardCount) {
  net::LineMetric metric(4);
  const auto hierarchy = Hierarchy::BuildLineShifted(metric, 100);
  EXPECT_EQ(hierarchy.top_roots().size(), 4u);
}

TEST(MultiRoot, SingleRootMatchesClassicShape) {
  // top_roots = 1 must be the exact classic construction: same clusters,
  // same leaders, cluster by cluster.
  net::LineMetric metric(32);
  const auto classic = Hierarchy::BuildLineShifted(metric);
  const auto one_root = Hierarchy::BuildLineShifted(metric, 1);
  ASSERT_EQ(classic.clusters().size(), one_root.clusters().size());
  for (std::size_t i = 0; i < classic.clusters().size(); ++i) {
    const Cluster& a = classic.clusters()[i];
    const Cluster& b = one_root.clusters()[i];
    EXPECT_EQ(a.layer, b.layer);
    EXPECT_EQ(a.sublayer, b.sublayer);
    EXPECT_EQ(a.shards, b.shards);
    EXPECT_EQ(a.leader, b.leader);
    EXPECT_EQ(a.top_root, b.top_root);
  }
}

TEST(MultiRoot, SaltSpreadsDiameterSpanningLookupsAcrossRoots) {
  net::LineMetric metric(32);
  const auto hierarchy = Hierarchy::BuildLineShifted(metric, 4);
  const Distance diameter = metric.Diameter();
  std::vector<int> hits(hierarchy.clusters().size(), 0);
  for (std::uint64_t salt = 0; salt < 16; ++salt) {
    const Cluster& cluster = hierarchy.FindHomeCluster(0, diameter, salt);
    EXPECT_TRUE(cluster.top_root);
    EXPECT_TRUE(cluster.HasLeader());
    EXPECT_EQ(cluster.size(), 32u);
    ++hits[cluster.id];
    // Deterministic: the same (home, x, salt) always lands on the same
    // root.
    EXPECT_EQ(&cluster, &hierarchy.FindHomeCluster(0, diameter, salt));
  }
  // 16 consecutive salts over 4 roots: every root gets hit.
  for (const std::uint32_t id : hierarchy.top_roots()) {
    EXPECT_EQ(hits[id], 4) << "root " << id;
  }
  // Lookups that resolve below the top layer ignore the salt entirely.
  EXPECT_EQ(&hierarchy.FindHomeCluster(5, 0, 0),
            &hierarchy.FindHomeCluster(5, 0, 99));
}

// Mirror of LeaderCandidates in hierarchy.cc: a shard qualifies as leader
// of a layer-l cluster iff its (2^l - 1)-neighborhood stays inside the
// cluster.
std::vector<ShardId> QualifyingLeaders(const net::ShardMetric& metric,
                                       const Cluster& cluster) {
  const Distance radius =
      cluster.layer >= 31
          ? metric.Diameter()
          : static_cast<Distance>((1u << cluster.layer) - 1);
  std::vector<ShardId> candidates;
  for (const ShardId candidate : cluster.shards) {
    bool contained = true;
    for (const ShardId other : metric.Neighborhood(candidate, radius)) {
      if (!cluster.Contains(other)) {
        contained = false;
        break;
      }
    }
    if (contained) candidates.push_back(candidate);
  }
  return candidates;
}

// Regression for the leader-placement audit: replay the construction in
// cluster-id order (== AddCluster order) and assert a shard leads two
// clusters of one layer only when every candidate of the later cluster
// was already taken — the pigeonhole case (e.g. the 32-shard line's
// layer 0 has 33 clusters), where reuse is unavoidable.
void ExpectLeadersSpreadWithinLayers(const Hierarchy& hierarchy,
                                     const net::ShardMetric& metric) {
  std::vector<std::vector<std::uint8_t>> taken;
  for (const Cluster& cluster : hierarchy.clusters()) {
    if (!cluster.HasLeader()) continue;
    if (taken.size() <= cluster.layer) taken.resize(cluster.layer + 1);
    std::vector<std::uint8_t>& layer_taken = taken[cluster.layer];
    if (layer_taken.empty()) layer_taken.assign(metric.shard_count(), 0);
    if (layer_taken[cluster.leader]) {
      for (const ShardId candidate : QualifyingLeaders(metric, cluster)) {
        EXPECT_TRUE(layer_taken[candidate])
            << "cluster " << cluster.id << " (layer " << cluster.layer
            << ") reused leader " << cluster.leader << " although candidate "
            << candidate << " was free";
      }
    }
    layer_taken[cluster.leader] = 1;
  }
}

TEST(LeaderSpread, NoAvoidableSameLayerColocationLineShifted) {
  for (const ShardId s : {16u, 32u, 64u}) {
    SCOPED_TRACE("s = " + std::to_string(s));
    net::LineMetric metric(s);
    ExpectLeadersSpreadWithinLayers(Hierarchy::BuildLineShifted(metric, 4),
                                    metric);
  }
}

TEST(LeaderSpread, NoAvoidableSameLayerColocationSparseCover) {
  Rng rng(7);
  const struct {
    net::TopologyKind topology;
    ShardId shards;  // grid needs a square count
  } cases[] = {{net::TopologyKind::kRing, 32}, {net::TopologyKind::kGrid, 36}};
  for (const auto& c : cases) {
    SCOPED_TRACE(net::TopologyName(c.topology));
    const auto metric = net::MakeMetric(c.topology, c.shards, &rng);
    ExpectLeadersSpreadWithinLayers(Hierarchy::BuildSparseCover(*metric, 3),
                                    *metric);
  }
}

}  // namespace
}  // namespace stableshard::cluster
