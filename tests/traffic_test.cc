// Traffic engine tests: the trace grammar (strict parse errors for every
// malformed shape the checksummed header is supposed to catch), the
// (rho, b) window bound of the token-bucket arrival schedule — unit level
// and engine level, churn faults included — the golden record→replay
// round-trip, open-loop bit-identity across workers/pipeline, and the
// hot_destination mid-run-burst regression (the PR-5 blind spot: a burst
// that lands before any traffic exists is invisible to admission control;
// an open-loop burst lands mid-run where the gate has live statistics).
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "sim_test_util.h"
#include "traffic/arrival.h"
#include "traffic/injector.h"
#include "traffic/trace.h"

namespace stableshard {
namespace {

using core::SimConfig;
using core::SimResult;
using test::ExpectBitIdenticalProtocol;
using test::ExpectBitIdenticalResults;
using test::RunWithWorkers;

traffic::Trace SmallTrace() {
  traffic::Trace trace;
  trace.shards = 4;
  trace.accounts = 8;
  trace.records = {{0, 1, 5, {{1, false}, {6, false}}},
                   {0, 2, 5, {{2, true}}},
                   {3, 0, 5, {{4, false}, {3, false}, {0, false}}}};
  return trace;
}

std::string ParseError(const std::string& text) {
  traffic::Trace trace;
  std::string error;
  EXPECT_FALSE(traffic::ParseTrace(text, &trace, &error));
  return error;
}

TEST(TraceFormat, SerializeParseRoundTrip) {
  const traffic::Trace trace = SmallTrace();
  const std::string text = traffic::SerializeTrace(trace);
  traffic::Trace parsed;
  std::string error;
  ASSERT_TRUE(traffic::ParseTrace(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.shards, trace.shards);
  EXPECT_EQ(parsed.accounts, trace.accounts);
  ASSERT_EQ(parsed.records.size(), trace.records.size());
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    EXPECT_EQ(parsed.records[i].round, trace.records[i].round);
    EXPECT_EQ(parsed.records[i].home, trace.records[i].home);
    EXPECT_EQ(parsed.records[i].amount, trace.records[i].amount);
    ASSERT_EQ(parsed.records[i].accesses.size(),
              trace.records[i].accesses.size());
    for (std::size_t j = 0; j < trace.records[i].accesses.size(); ++j) {
      EXPECT_EQ(parsed.records[i].accesses[j].account,
                trace.records[i].accesses[j].account);
      EXPECT_EQ(parsed.records[i].accesses[j].poisoned,
                trace.records[i].accesses[j].poisoned);
    }
  }
  // Serialize is canonical: a second round trip reproduces the exact bytes.
  EXPECT_EQ(traffic::SerializeTrace(parsed), text);
}

TEST(TraceFormat, UnknownVersionRejected) {
  std::string text = traffic::SerializeTrace(SmallTrace());
  const std::size_t pos = text.find("v1");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 1] = '7';
  EXPECT_NE(ParseError(text).find("unsupported trace version"),
            std::string::npos);
}

TEST(TraceFormat, TruncatedTraceRejected) {
  std::string text = traffic::SerializeTrace(SmallTrace());
  text.resize(text.rfind("3 0 5"));  // drop the last record line
  EXPECT_NE(ParseError(text).find("truncated trace"), std::string::npos);
}

TEST(TraceFormat, TrailingDataRejected) {
  const std::string text =
      traffic::SerializeTrace(SmallTrace()) + "9 0 0 1\n";
  EXPECT_NE(ParseError(text).find("trailing data"), std::string::npos);
}

TEST(TraceFormat, ChecksumMismatchRejected) {
  std::string text = traffic::SerializeTrace(SmallTrace());
  // Flip one digit inside the record region (the trailing "0\n" of the
  // last line) — the record count still matches, only the bytes changed.
  text[text.size() - 2] = '7';
  EXPECT_NE(ParseError(text).find("checksum mismatch"), std::string::npos);
}

TEST(TraceFormat, OutOfOrderRoundsRejected) {
  traffic::Trace trace = SmallTrace();
  std::swap(trace.records[0], trace.records[2]);  // rounds 3, 0, 0
  // Serialize doesn't validate order (it checksums what it's given), so
  // the parser must be the one to reject the regression.
  EXPECT_NE(ParseError(traffic::SerializeTrace(trace))
                .find("record rounds must be non-decreasing"),
            std::string::npos);
}

TEST(TraceFormat, RangeAndShapeChecks) {
  traffic::Trace bad_home = SmallTrace();
  bad_home.records[0].home = 4;  // == shards
  EXPECT_NE(ParseError(traffic::SerializeTrace(bad_home))
                .find("home shard out of range"),
            std::string::npos);

  traffic::Trace bad_account = SmallTrace();
  bad_account.records[1].accesses[0].account = 8;  // == accounts
  EXPECT_NE(ParseError(traffic::SerializeTrace(bad_account))
                .find("account out of range"),
            std::string::npos);

  traffic::Trace no_accounts = SmallTrace();
  no_accounts.records[2].accesses.clear();
  EXPECT_NE(ParseError(traffic::SerializeTrace(no_accounts))
                .find("record lists no accounts"),
            std::string::npos);
}

// The exact burst constant the engine's schedule uses, replicated from the
// striping rule: ceil(rate) lanes, each with capacity >= 1.
double EffectiveBurst(double rate, double burst) {
  const double lanes =
      std::max(1.0, std::ceil(rate));
  return lanes * std::max(burst / lanes, 1.0);
}

TEST(TokenBucketArrivals, WindowBoundHoldsThroughTheBurst) {
  const double rate = 2.5, burst = 20;
  traffic::TokenBucketArrivals schedule(rate, burst, /*burst_round=*/50,
                                        /*horizon=*/200);
  EXPECT_DOUBLE_EQ(schedule.effective_burst(), EffectiveBurst(rate, burst));
  std::uint64_t cumulative = 0, at_burst = 0;
  for (Round round = 0; round < 200; ++round) {
    cumulative += schedule.ArrivalsAt(round);
    if (round == 50) at_burst = cumulative;
    // The (rho, b) window bound, from round 0: arrivals in the first t+1
    // rounds never exceed rate * (t+1) + effective_burst.
    EXPECT_LE(static_cast<double>(cumulative),
              rate * static_cast<double>(round + 1) +
                  schedule.effective_burst() + 1e-9)
        << "round " << round;
  }
  // The burst actually fires: round 50 releases the banked bucket capacity
  // in one clump, far above the paced per-round emission.
  EXPECT_GE(at_burst, static_cast<std::uint64_t>(burst));
  EXPECT_FALSE(schedule.Exhausted(199));
  EXPECT_TRUE(schedule.Exhausted(200));
}

TEST(TokenBucketArrivals, PacedStreamTracksTheRate) {
  const double rate = 1.75;
  traffic::TokenBucketArrivals schedule(rate, /*burst=*/8, kNoRound,
                                        /*horizon=*/400);
  std::uint64_t cumulative = 0;
  for (Round round = 0; round < 400; ++round) {
    const std::uint64_t arrivals = schedule.ArrivalsAt(round);
    EXPECT_LE(arrivals, static_cast<std::uint64_t>(rate) + 1);
    cumulative += arrivals;
  }
  // No burst ever fires: the paced accumulator emits the rate to within
  // rounding over any long window.
  EXPECT_NEAR(static_cast<double>(cumulative), rate * 400, rate + 1.0);
}

TEST(TraceArrivals, CountsRecordsPerRound) {
  traffic::TraceArrivals schedule(SmallTrace());
  EXPECT_EQ(schedule.ArrivalsAt(0), 2u);
  EXPECT_EQ(schedule.ArrivalsAt(1), 0u);
  EXPECT_FALSE(schedule.Exhausted(2));
  EXPECT_EQ(schedule.ArrivalsAt(2), 0u);
  EXPECT_EQ(schedule.ArrivalsAt(3), 1u);
  EXPECT_TRUE(schedule.Exhausted(4));
}

SimConfig OpenLoopConfig(const std::string& scheduler) {
  SimConfig config = test::SmallConfig(scheduler);
  config.rounds = 400;
  config.arrival_rate = 1.7;
  config.arrival_burst = 12;
  config.burst_round = 150;  // open loop: the clump lands mid-run
  return config;
}

// Engine level: the offered-load series the injector records must obey the
// (rho, b) window bound round by round — from round 0 and over every
// window, since the bound is an invariant of the token buckets, not an
// average.
void ExpectOfferedWindowBound(const core::Simulation& sim, double rate,
                              double burst) {
  const std::vector<std::uint64_t>* series =
      sim.injector().offered_series();
  ASSERT_NE(series, nullptr);
  const double bound_burst = EffectiveBurst(rate, burst);
  std::vector<double> prefix(series->size() + 1, 0.0);
  for (std::size_t i = 0; i < series->size(); ++i) {
    prefix[i + 1] = prefix[i] + static_cast<double>((*series)[i]);
  }
  for (std::size_t lo = 0; lo < series->size(); ++lo) {
    for (std::size_t hi = lo + 1; hi <= series->size(); ++hi) {
      EXPECT_LE(prefix[hi] - prefix[lo],
                rate * static_cast<double>(hi - lo) + bound_burst + 1e-9)
          << "window [" << lo << ", " << hi << ")";
    }
  }
}

TEST(OpenLoopEngine, OfferedLoadObeysWindowBound) {
  const SimConfig config = OpenLoopConfig("fds");
  core::Simulation sim(config);
  const SimResult result = sim.Run();
  ASSERT_TRUE(result.drained);
  EXPECT_EQ(result.offered_txns, result.injected_txns);
  EXPECT_GT(result.offered_txns, 0u);
  ExpectOfferedWindowBound(sim, config.arrival_rate, config.arrival_burst);
}

TEST(OpenLoopEngine, OfferedLoadObeysWindowBoundDuringChurn) {
  SimConfig config = OpenLoopConfig("fds");
  config.wal = true;
  config.checkpoint_interval = 100;
  config.faults = "3@120+8,9@250+5";
  core::Simulation sim(config);
  const SimResult result = sim.Run();
  ASSERT_TRUE(result.drained);
  EXPECT_GT(result.recovery_rounds, 0u);
  // Arrivals do not pause for a crashed shard: the stalled wall rounds
  // accrue backlog, visible as a nonzero injection lag peak, and the
  // window bound keeps holding across the outage (the schedule ticks on
  // wall rounds, stalls included).
  EXPECT_GT(result.inject_lag_peak, 0u);
  EXPECT_EQ(result.offered_txns, result.injected_txns);
  ExpectOfferedWindowBound(sim, config.arrival_rate, config.arrival_burst);
}

TEST(OpenLoopEngine, BitIdenticalAcrossWorkersAndPipelineUnderChurn) {
  // The pre-generation hazard cell: open loop + a fault plan means the
  // pipelined epilogue must suppress the overlapped Generate at fault
  // boundaries (arrivals accrue during the stall *before* the next
  // generation pulls them) — any ordering slip shows up here as a
  // worker/pipeline-dependent result.
  SimConfig config = OpenLoopConfig("fds");
  config.wal = true;
  config.checkpoint_interval = 100;
  config.faults = "3@120+8,9@250+5";
  const SimResult serial = RunWithWorkers(config, 1);
  ASSERT_TRUE(serial.drained);
  ExpectBitIdenticalResults(serial, RunWithWorkers(config, 4));
  SimConfig unpipelined = config;
  unpipelined.pipeline = false;
  ExpectBitIdenticalResults(serial, RunWithWorkers(unpipelined, 4));
}

TEST(GoldenTrace, RecordReplayReproducesTheRunBitIdentically) {
  // Record a closed-loop run (abort path included, so poisoned accesses
  // round-trip through the '!' grammar), then replay the trace open-loop:
  // same transactions, same rounds, same order — every protocol field of
  // the SimResult must match, across workers and pipeline modes.
  const std::string path = ::testing::TempDir() + "golden_roundtrip.trace";
  SimConfig recorded = test::SmallConfig("fds");
  recorded.rounds = 600;
  recorded.abort_probability = 0.2;
  recorded.trace_out = path;
  const SimResult closed = RunWithWorkers(recorded, 1);
  ASSERT_TRUE(closed.drained);
  ASSERT_GT(closed.injected, 0u);
  EXPECT_GT(closed.aborted, 0u);

  SimConfig replay = test::SmallConfig("fds");
  replay.rounds = 600;
  replay.strategy = "trace_replay";
  replay.trace = path;
  for (const std::uint32_t workers : {1u, 4u}) {
    for (const bool pipeline : {true, false}) {
      SCOPED_TRACE("workers " + std::to_string(workers) +
                   (pipeline ? " pipelined" : " serial"));
      SimConfig config = replay;
      config.pipeline = pipeline;
      const SimResult replayed = RunWithWorkers(config, workers);
      EXPECT_EQ(replayed.committed, closed.committed);
      EXPECT_EQ(replayed.aborted, closed.aborted);
      ExpectBitIdenticalProtocol(closed, replayed);
    }
  }
}

TEST(HotDestination, MidRunBurstIsShedByAdmissionControl) {
  // Regression for the closed-loop blind spot: the adversary's one-shot
  // burst lands at round 0, before any traffic exists, so the watermark
  // gate has no signal to shed it with. Open-loop, the same b-sized clump
  // lands at burst_round = 150 into a live queue — the gate must see it
  // (spill engages) and cut the hot leader's queue peak below plain fds.
  SimConfig base = test::SmallConfig("fds");
  base.shards = 32;
  base.accounts = 32;
  base.account_assignment = core::AccountAssignment::kRoundRobin;
  base.strategy = "hot_destination";
  base.zipf_theta = 1.2;
  base.rounds = 400;
  base.arrival_rate = 1.5;
  base.arrival_burst = 64;
  base.burst_round = 150;
  base.drain_cap = 200000;
  base.backpressure_high = 48;
  base.backpressure_low = 12;

  const SimResult fds = RunWithWorkers(base, 1);
  SimConfig shed = base;
  shed.scheduler = "backpressure";
  const SimResult bp = RunWithWorkers(shed, 1);

  for (const SimResult* result : {&fds, &bp}) {
    ASSERT_TRUE(result->drained);
    EXPECT_EQ(result->unresolved, 0u);
    EXPECT_EQ(result->injected,
              result->committed + result->aborted + result->unresolved);
  }
  // Shedding defers, never drops.
  EXPECT_EQ(bp.committed, fds.committed);
  // The gate saw the mid-run burst: admissions were actually parked...
  EXPECT_GT(bp.spill_peak, 0u);
  // ...and the hot destination's queue peak came down.
  EXPECT_LT(bp.max_leader_queue, fds.max_leader_queue);
}

}  // namespace
}  // namespace stableshard
