// Unit tests for src/common: RNG determinism and distribution sanity,
// integer math helpers (exactness of the paper's bound formulas), CSV
// output, and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "common/arena.h"
#include "common/csv.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace stableshard {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBoundedStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 64ull, 1000003ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, NextBoundedCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(13);
  for (std::uint64_t population : {8ull, 64ull, 10000ull}) {
    for (std::uint64_t count : {1ull, 4ull, 8ull}) {
      if (count > population) continue;
      const auto sample = rng.SampleWithoutReplacement(population, count);
      EXPECT_EQ(sample.size(), count);
      std::set<std::uint64_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), count);
      for (const auto v : sample) EXPECT_LT(v, population);
    }
  }
}

TEST(Rng, SampleFullPopulationIsPermutation) {
  Rng rng(17);
  const auto sample = rng.SampleWithoutReplacement(16, 16);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 16u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.Shuffle(std::span<int>(shuffled));
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(MathUtil, CeilSqrtExactValues) {
  EXPECT_EQ(CeilSqrt(0), 0u);
  EXPECT_EQ(CeilSqrt(1), 1u);
  EXPECT_EQ(CeilSqrt(2), 2u);
  EXPECT_EQ(CeilSqrt(4), 2u);
  EXPECT_EQ(CeilSqrt(5), 3u);
  EXPECT_EQ(CeilSqrt(63), 8u);
  EXPECT_EQ(CeilSqrt(64), 8u);
  EXPECT_EQ(CeilSqrt(65), 9u);
}

TEST(MathUtil, CeilSqrtMatchesDefinitionUpTo10k) {
  for (std::uint64_t x = 1; x <= 10000; ++x) {
    const std::uint64_t r = CeilSqrt(x);
    EXPECT_GE(r * r, x);
    EXPECT_LT((r - 1) * (r - 1), x);
  }
}

TEST(MathUtil, FloorSqrtMatchesDefinition) {
  for (std::uint64_t x = 1; x <= 10000; ++x) {
    const std::uint64_t r = FloorSqrt(x);
    EXPECT_LE(r * r, x);
    EXPECT_GT((r + 1) * (r + 1), x);
  }
}

TEST(MathUtil, Log2Helpers) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(64), 6u);
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(64), 6u);
  EXPECT_EQ(CeilLog2(65), 7u);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4), 0u);
  EXPECT_EQ(CeilDiv(1, 4), 1u);
  EXPECT_EQ(CeilDiv(4, 4), 1u);
  EXPECT_EQ(CeilDiv(5, 4), 2u);
}

TEST(MathUtil, BdsStableRateBoundPicksMax) {
  // k = 8, s = 64: max{1/144, 1/(18*8)} = 1/144.
  EXPECT_DOUBLE_EQ(BdsStableRateBound(8, 64), 1.0 / 144.0);
  // k = 2, s = 64: max{1/36, 1/144} = 1/36.
  EXPECT_DOUBLE_EQ(BdsStableRateBound(2, 64), 1.0 / 36.0);
}

TEST(MathUtil, AbsoluteStabilityUpperBound) {
  // k = 8, s = 64: max{2/9, 2/floor(sqrt(128))=2/11}.
  EXPECT_DOUBLE_EQ(AbsoluteStabilityUpperBound(8, 64), 2.0 / 9.0);
  // k = 1: bound capped at 1.
  EXPECT_DOUBLE_EQ(AbsoluteStabilityUpperBound(1, 64), 1.0);
}

TEST(MathUtil, MinKSqrtS) {
  EXPECT_EQ(MinKSqrtS(8, 64), 8u);
  EXPECT_EQ(MinKSqrtS(10, 64), 8u);
  EXPECT_EQ(MinKSqrtS(2, 64), 2u);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b", "c"});
    ASSERT_TRUE(csv.ok());
    csv.Row(1, 2.5, "x");
    csv.Row("y", 3, 4);
    csv.Flush();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b,c");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5,x");
  std::getline(in, line);
  EXPECT_EQ(line, "y,3,4");
}

TEST(ThreadPool, RunsAllTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(64);
  ThreadPool::ParallelFor(64, [&](std::size_t i) { hits[i].fetch_add(1); },
                          8);
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, InstanceParallelForReusesLivePool) {
  ThreadPool pool(3);
  // Repeated fan-outs on the same workers, covering both the per-index
  // path (count <= 8 * threads) and the chunked path (count above it).
  for (const std::size_t count : {std::size_t{5}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(count);
    pool.ParallelFor(count, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
  }
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, InstanceParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(Mix64, DistinctInputsMix) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Arena, AllocationsAlignedAndRewoundByReset) {
  common::Arena arena;
  auto* first = arena.AllocateArray<std::uint64_t>(10);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(first) % alignof(std::uint64_t),
            0u);
  // A 3-byte allocation misaligns the cursor; the next uint64_t array must
  // be re-aligned, with the padding counted toward the usage mark.
  arena.AllocateArray<std::uint8_t>(3);
  auto* second = arena.AllocateArray<std::uint64_t>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(second) % alignof(std::uint64_t),
            0u);
  for (int i = 0; i < 10; ++i) first[i] = 0xABCDu + i;
  *second = 99;
  EXPECT_EQ(first[9], 0xABCDu + 9);

  // Reset rewinds the bump pointer: a single resident chunk below the
  // shrink floor is kept, so the same storage is handed out again.
  arena.Reset();
  auto* reused = arena.AllocateArray<std::uint64_t>(10);
  EXPECT_EQ(reused, first);
}

TEST(Arena, MemoryStatsTrackUsageResetsAndHighWater) {
  common::Arena arena;
  EXPECT_EQ(arena.memory().reserved_bytes, 0u);
  EXPECT_EQ(arena.memory().chunks, 0u);
  arena.AllocateArray<std::uint32_t>(100);
  auto stats = arena.memory();
  EXPECT_GE(stats.used_bytes, 400u);
  EXPECT_GE(stats.reserved_bytes, stats.used_bytes);
  EXPECT_EQ(stats.chunks, 1u);
  EXPECT_EQ(stats.resets, 0u);
  arena.Reset();
  stats = arena.memory();
  EXPECT_EQ(stats.used_bytes, 0u);
  EXPECT_EQ(stats.resets, 1u);
  EXPECT_GE(stats.high_water_bytes, 400u);  // the round's peak survives

  common::ArenaMemoryStats sum = stats;
  sum += stats;  // per-shard aggregation in Scheduler::ArenaMemory()
  EXPECT_EQ(sum.resets, 2 * stats.resets);
  EXPECT_EQ(sum.high_water_bytes, 2 * stats.high_water_bytes);
}

TEST(Arena, OverflowGrowsThenResetCoalescesToOneChunk) {
  common::Arena arena(common::Arena::kMinChunkBytes);
  arena.AllocateArray<std::byte>(common::Arena::kMinChunkBytes);
  arena.AllocateArray<std::byte>(3 * common::Arena::kMinChunkBytes);
  EXPECT_GE(arena.memory().chunks, 2u);  // the round outgrew its reservation
  arena.Reset();
  const auto stats = arena.memory();
  EXPECT_EQ(stats.chunks, 1u);  // coalesced into one right-sized chunk
  EXPECT_GE(stats.reserved_bytes, 4u * common::Arena::kMinChunkBytes);
}

TEST(Arena, ShrinksAfterSpikeDecays) {
  common::Arena arena;
  // One spiked round far past the shrink floor...
  arena.AllocateArray<std::byte>(1 << 20);
  arena.Reset();
  const auto spiked = arena.memory().reserved_bytes;
  EXPECT_GE(spiked, std::uint64_t{1} << 20);
  // ... then steady small rounds: the decayed high-water mark falls until
  // the oversized reservation is released and re-sized to the small load.
  for (int round = 0; round < 64; ++round) {
    arena.AllocateArray<std::byte>(256);
    arena.Reset();
  }
  EXPECT_LT(arena.memory().reserved_bytes, spiked);
  EXPECT_EQ(arena.memory().chunks, 1u);
}

TEST(ArenaVector, BackedByArenaScratch) {
  common::Arena arena;
  common::ArenaVector<std::uint32_t> values{
      common::ArenaAllocator<std::uint32_t>(&arena)};
  for (std::uint32_t i = 0; i < 100; ++i) values.push_back(i);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(values[i], i);
  // Growth reallocations never free (deallocate is a no-op), so usage
  // reflects the doubling history, all of it reclaimed by one Reset().
  EXPECT_GE(arena.memory().used_bytes, 100u * sizeof(std::uint32_t));
}

}  // namespace
}  // namespace stableshard
