// Unit tests for src/chain: condition/action semantics (Example 1), account
// maps, account stores, block hashing & tamper detection, local chain
// integrity, global reconstruction and serializability checking.
#include <gtest/gtest.h>

#include "chain/account_map.h"
#include "chain/account_store.h"
#include "chain/block.h"
#include "chain/global_chain.h"
#include "chain/local_chain.h"
#include "chain/ops.h"
#include "common/rng.h"

namespace stableshard::chain {
namespace {

TEST(Condition, AllComparators) {
  EXPECT_TRUE((Condition{0, CmpOp::kGe, 5}).Holds(5));
  EXPECT_FALSE((Condition{0, CmpOp::kGt, 5}).Holds(5));
  EXPECT_TRUE((Condition{0, CmpOp::kLe, 5}).Holds(5));
  EXPECT_FALSE((Condition{0, CmpOp::kLt, 5}).Holds(5));
  EXPECT_TRUE((Condition{0, CmpOp::kEq, 5}).Holds(5));
  EXPECT_FALSE((Condition{0, CmpOp::kNe, 5}).Holds(5));
  EXPECT_TRUE((Condition{0, CmpOp::kNe, 4}).Holds(5));
}

TEST(Action, WithdrawValidity) {
  const Action withdraw{0, ActionKind::kWithdraw, 100};
  EXPECT_TRUE(withdraw.IsValidOn(100));
  EXPECT_TRUE(withdraw.IsValidOn(150));
  EXPECT_FALSE(withdraw.IsValidOn(99));
  EXPECT_EQ(withdraw.Apply(150), 50);
}

TEST(Action, DepositAndSet) {
  const Action deposit{0, ActionKind::kDeposit, 10};
  EXPECT_EQ(deposit.Apply(5), 15);
  const Action set{0, ActionKind::kSet, 7};
  EXPECT_EQ(set.Apply(100), 7);
  const Action none{0, ActionKind::kNone, 0};
  EXPECT_FALSE(none.IsWrite());
  EXPECT_TRUE(deposit.IsWrite());
}

TEST(AccountMap, RoundRobinOnePerShard) {
  const auto map = AccountMap::RoundRobin(8, 8);
  for (AccountId a = 0; a < 8; ++a) {
    EXPECT_EQ(map.OwnerOf(a), a % 8);
    EXPECT_EQ(map.AccountsOf(static_cast<ShardId>(a)).size(), 1u);
  }
}

TEST(AccountMap, RoundRobinWraps) {
  const auto map = AccountMap::RoundRobin(4, 10);
  EXPECT_EQ(map.OwnerOf(5), 1u);
  EXPECT_EQ(map.AccountsOf(0).size(), 3u);  // accounts 0, 4, 8
  EXPECT_EQ(map.AccountsOf(3).size(), 2u);  // accounts 3, 7
}

TEST(AccountMap, RandomCoversEveryShard) {
  Rng rng(11);
  const auto map = AccountMap::Random(16, 16, rng);
  for (ShardId shard = 0; shard < 16; ++shard) {
    EXPECT_GE(map.AccountsOf(shard).size(), 1u)
        << "shard " << shard << " has no accounts";
  }
  // Partition: each account belongs to exactly one shard.
  std::size_t total = 0;
  for (ShardId shard = 0; shard < 16; ++shard) {
    total += map.AccountsOf(shard).size();
  }
  EXPECT_EQ(total, 16u);
}

TEST(AccountMap, RandomDeterministicPerSeed) {
  Rng rng1(5), rng2(5);
  const auto a = AccountMap::Random(8, 32, rng1);
  const auto b = AccountMap::Random(8, 32, rng2);
  for (AccountId acct = 0; acct < 32; ++acct) {
    EXPECT_EQ(a.OwnerOf(acct), b.OwnerOf(acct));
  }
}

TEST(AccountStore, DefaultBalanceLazy) {
  AccountStore store(1000);
  EXPECT_EQ(store.BalanceOf(42), 1000);
  EXPECT_EQ(store.materialized_accounts(), 0u);
  store.Apply({42, ActionKind::kWithdraw, 300});
  EXPECT_EQ(store.BalanceOf(42), 700);
  EXPECT_EQ(store.materialized_accounts(), 1u);
}

TEST(AccountStore, CheckAndValidity) {
  AccountStore store(100);
  EXPECT_TRUE(store.Check({7, CmpOp::kGe, 100}));
  EXPECT_FALSE(store.Check({7, CmpOp::kGt, 100}));
  EXPECT_TRUE(store.IsValid({7, ActionKind::kWithdraw, 100}));
  EXPECT_FALSE(store.IsValid({7, ActionKind::kWithdraw, 101}));
}

TEST(AccountStoreDeath, ApplyInvalidAborts) {
  AccountStore store(10);
  EXPECT_DEATH(store.Apply({0, ActionKind::kWithdraw, 11}), "SSHARD_CHECK");
}

TEST(Block, HashChangesOnAnyFieldTamper) {
  Block block;
  block.height = 3;
  block.parent = 0x1234;
  block.txn = 99;
  block.shard = 2;
  block.commit_round = 17;
  block.payload_digest = 0xabcd;
  block.hash = ComputeBlockHash(block);

  Block tampered = block;
  tampered.txn = 100;
  EXPECT_NE(ComputeBlockHash(tampered), block.hash);
  tampered = block;
  tampered.commit_round = 18;
  EXPECT_NE(ComputeBlockHash(tampered), block.hash);
  tampered = block;
  tampered.payload_digest ^= 1;
  EXPECT_NE(ComputeBlockHash(tampered), block.hash);
}

TEST(LocalChain, AppendAndVerify) {
  LocalChain chain(4);
  EXPECT_TRUE(chain.Verify());
  chain.Append(1, 10, 0x1);
  chain.Append(2, 12, 0x2);
  chain.Append(3, 20, 0x3);
  EXPECT_EQ(chain.size(), 3u);
  EXPECT_TRUE(chain.Verify());
  EXPECT_EQ(chain.blocks()[1].parent, chain.blocks()[0].hash);
}

TEST(LocalChain, DetectsTamper) {
  LocalChain chain(0);
  chain.Append(1, 10, 0x1);
  chain.Append(2, 12, 0x2);
  chain.MutableBlockForTest(0).txn = 42;
  EXPECT_FALSE(chain.Verify());
}

TEST(GlobalChain, MergesAndOrders) {
  std::vector<LocalChain> chains;
  chains.emplace_back(0);
  chains.emplace_back(1);
  chains[0].Append(/*txn=*/5, /*round=*/10, 0x1);
  chains[1].Append(/*txn=*/5, /*round=*/10, 0x2);
  chains[0].Append(/*txn=*/7, /*round=*/14, 0x3);

  const auto result = ReconstructGlobalChain(chains);
  ASSERT_TRUE(result.consistent) << result.error;
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_EQ(result.entries[0].txn, 5u);
  EXPECT_EQ(result.entries[0].shards, (std::vector<ShardId>{0, 1}));
  EXPECT_EQ(result.entries[1].txn, 7u);
}

TEST(GlobalChain, SameRoundModeRejectsSplitCommit) {
  std::vector<LocalChain> chains;
  chains.emplace_back(0);
  chains.emplace_back(1);
  chains[0].Append(5, 10, 0x1);
  chains[1].Append(5, 12, 0x2);  // different round
  EXPECT_FALSE(ReconstructGlobalChain(chains, AtomicityMode::kSameRound)
                   .consistent);
  const auto ordered =
      ReconstructGlobalChain(chains, AtomicityMode::kOrdered);
  EXPECT_TRUE(ordered.consistent) << ordered.error;
  EXPECT_EQ(ordered.entries[0].commit_round, 10u);
  EXPECT_EQ(ordered.entries[0].last_commit_round, 12u);
}

TEST(GlobalChain, RejectsDuplicateBlock) {
  std::vector<LocalChain> chains;
  chains.emplace_back(0);
  chains[0].Append(5, 10, 0x1);
  chains[0].Append(5, 11, 0x1);  // same (txn, shard) twice
  EXPECT_FALSE(ReconstructGlobalChain(chains).consistent);
}

TEST(GlobalChain, RejectsTamperedChain) {
  std::vector<LocalChain> chains;
  chains.emplace_back(0);
  chains[0].Append(5, 10, 0x1);
  chains[0].MutableBlockForTest(0).commit_round = 99;
  EXPECT_FALSE(ReconstructGlobalChain(chains).consistent);
}

TEST(Serializability, ConsistentOrdersPass) {
  std::vector<LocalChain> chains;
  chains.emplace_back(0);
  chains.emplace_back(1);
  // Both shards order txn 1 before txn 2.
  chains[0].Append(1, 10, 0);
  chains[0].Append(2, 12, 0);
  chains[1].Append(1, 11, 0);
  chains[1].Append(2, 15, 0);
  EXPECT_TRUE(CheckSerializable(chains));
}

TEST(Serializability, OppositeOrdersFail) {
  std::vector<LocalChain> chains;
  chains.emplace_back(0);
  chains.emplace_back(1);
  chains[0].Append(1, 10, 0);
  chains[0].Append(2, 12, 0);
  chains[1].Append(2, 11, 0);
  chains[1].Append(1, 15, 0);
  EXPECT_FALSE(CheckSerializable(chains));
}

TEST(Serializability, LongerCycleDetected) {
  std::vector<LocalChain> chains;
  chains.emplace_back(0);
  chains.emplace_back(1);
  chains.emplace_back(2);
  chains[0].Append(1, 1, 0);
  chains[0].Append(2, 2, 0);
  chains[1].Append(2, 1, 0);
  chains[1].Append(3, 2, 0);
  chains[2].Append(3, 1, 0);
  chains[2].Append(1, 2, 0);  // 1 < 2 < 3 < 1: cycle
  EXPECT_FALSE(CheckSerializable(chains));
}

TEST(Serializability, EmptyAndSingleton) {
  std::vector<LocalChain> chains;
  chains.emplace_back(0);
  EXPECT_TRUE(CheckSerializable(chains));
  chains[0].Append(1, 1, 0);
  EXPECT_TRUE(CheckSerializable(chains));
}

}  // namespace
}  // namespace stableshard::chain
