// Unit tests for src/txn: transaction construction, read/write sets,
// conflict detection (account and shard granularity), the factory helpers,
// and conflict graph building.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "chain/account_map.h"
#include "common/rng.h"
#include "txn/conflict_graph.h"
#include "txn/transaction.h"
#include "txn/txn_factory.h"

namespace stableshard::txn {
namespace {

chain::AccountMap MakeMap(ShardId shards = 8, AccountId accounts = 8) {
  return chain::AccountMap::RoundRobin(shards, accounts);
}

TEST(Transaction, FactoryGroupsAccessesByShard) {
  const auto map = MakeMap(4, 8);  // accounts 0..7, owner a % 4
  TxnFactory factory(map);
  // Accounts 0 and 4 share shard 0; account 1 is shard 1.
  const auto txn = factory.MakeTouch(0, 5, {0, 4, 1});
  EXPECT_EQ(txn.subs().size(), 2u);
  EXPECT_EQ(txn.destinations(), (std::vector<ShardId>{0, 1}));
  EXPECT_EQ(txn.shard_span(), 2u);
  EXPECT_EQ(txn.injected(), 5u);
}

TEST(Transaction, IdsIncrease) {
  const auto map = MakeMap();
  TxnFactory factory(map);
  const auto t0 = factory.MakeTouch(0, 0, {0});
  const auto t1 = factory.MakeTouch(0, 0, {1});
  EXPECT_EQ(t0.id(), 0u);
  EXPECT_EQ(t1.id(), 1u);
  EXPECT_EQ(factory.created(), 2u);
}

TEST(Transaction, AccessesAreWriteDominant) {
  const auto map = MakeMap(2, 2);
  TxnFactory factory(map);
  std::vector<AccessSpec> specs;
  AccessSpec read_then_write;
  read_then_write.account = 0;
  read_then_write.has_condition = true;
  read_then_write.condition = {0, chain::CmpOp::kGe, 1};
  read_then_write.action = {0, chain::ActionKind::kDeposit, 5};
  specs.push_back(read_then_write);
  const auto txn = factory.Make(0, 0, specs);
  ASSERT_EQ(txn.accesses().size(), 1u);
  EXPECT_TRUE(txn.accesses()[0].write);
}

TEST(Transaction, ConflictRequiresSharedAccountWithWrite) {
  const auto map = MakeMap(8, 8);
  TxnFactory factory(map);
  const auto t0 = factory.MakeTouch(0, 0, {0, 1});
  const auto t1 = factory.MakeTouch(0, 0, {1, 2});
  const auto t2 = factory.MakeTouch(0, 0, {3, 4});
  EXPECT_TRUE(t0.ConflictsWith(t1));
  EXPECT_TRUE(t1.ConflictsWith(t0));
  EXPECT_FALSE(t0.ConflictsWith(t2));
}

TEST(Transaction, ReadReadDoesNotConflict) {
  const auto map = MakeMap(2, 2);
  TxnFactory factory(map);
  auto make_reader = [&](AccountId account) {
    AccessSpec spec;
    spec.account = account;
    spec.write = false;
    spec.has_condition = true;
    spec.condition = {account, chain::CmpOp::kGe, 0};
    spec.action = {account, chain::ActionKind::kNone, 0};
    return factory.Make(0, 0, {spec});
  };
  const auto r1 = make_reader(0);
  const auto r2 = make_reader(0);
  EXPECT_FALSE(r1.ConflictsWith(r2));
}

TEST(Transaction, TransferShape) {
  const auto map = MakeMap(8, 8);
  TxnFactory factory(map);
  const auto txn = factory.MakeTransfer(/*home=*/2, /*injected=*/1,
                                        /*from=*/0, /*to=*/5, /*amount=*/100,
                                        /*min_balance=*/500);
  EXPECT_EQ(txn.subs().size(), 2u);
  EXPECT_EQ(txn.home(), 2u);
  // Find the "from" side and check condition + withdraw action.
  bool found_from = false;
  for (const auto& sub : txn.subs()) {
    if (sub.destination == map.OwnerOf(0)) {
      found_from = true;
      ASSERT_EQ(sub.conditions.size(), 1u);
      EXPECT_EQ(sub.conditions[0].value, 500);
      ASSERT_EQ(sub.actions.size(), 1u);
      EXPECT_EQ(sub.actions[0].kind, chain::ActionKind::kWithdraw);
    }
  }
  EXPECT_TRUE(found_from);
}

TEST(SubTransaction, ReadWriteSets) {
  SubTransaction sub;
  sub.destination = 0;
  sub.conditions.push_back({3, chain::CmpOp::kGe, 1});
  sub.actions.push_back({4, chain::ActionKind::kDeposit, 1});
  sub.actions.push_back({5, chain::ActionKind::kNone, 0});
  EXPECT_EQ(sub.ReadSet(), (std::vector<AccountId>{3, 5}));
  EXPECT_EQ(sub.WriteSet(), (std::vector<AccountId>{4}));
  EXPECT_TRUE(sub.HasWrite());
}

TEST(SubTransaction, DigestSensitivity) {
  SubTransaction a;
  a.destination = 0;
  a.actions.push_back({1, chain::ActionKind::kDeposit, 10});
  SubTransaction b = a;
  EXPECT_EQ(a.Digest(), b.Digest());
  b.actions[0].amount = 11;
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(ConflictGraph, AccountGranularityEdges) {
  const auto map = MakeMap(8, 8);
  TxnFactory factory(map);
  const auto t0 = factory.MakeTouch(0, 0, {0, 1});
  const auto t1 = factory.MakeTouch(0, 0, {1, 2});
  const auto t2 = factory.MakeTouch(0, 0, {3});
  const ConflictGraph graph({&t0, &t1, &t2},
                            ConflictGranularity::kAccount);
  EXPECT_EQ(graph.size(), 3u);
  EXPECT_TRUE(graph.HasEdge(0, 1));
  EXPECT_FALSE(graph.HasEdge(0, 2));
  EXPECT_FALSE(graph.HasEdge(1, 2));
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_EQ(graph.MaxDegree(), 1u);
}

TEST(ConflictGraph, ShardGranularityIsCoarser) {
  // 2 shards, 4 accounts: accounts 0,2 on shard 0; accounts 1,3 on shard 1.
  const auto map = MakeMap(2, 4);
  TxnFactory factory(map);
  const auto t0 = factory.MakeTouch(0, 0, {0});
  const auto t1 = factory.MakeTouch(0, 0, {2});  // same shard, diff account
  const ConflictGraph account_graph({&t0, &t1},
                                    ConflictGranularity::kAccount);
  EXPECT_EQ(account_graph.edge_count(), 0u);
  const ConflictGraph shard_graph({&t0, &t1}, ConflictGranularity::kShard);
  EXPECT_EQ(shard_graph.edge_count(), 1u);
}

TEST(ConflictGraph, NoSelfEdgesNoDuplicates) {
  const auto map = MakeMap(4, 4);
  TxnFactory factory(map);
  // Two transactions sharing two accounts: still one edge.
  const auto t0 = factory.MakeTouch(0, 0, {0, 1});
  const auto t1 = factory.MakeTouch(0, 0, {0, 1});
  const ConflictGraph graph({&t0, &t1});
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_EQ(graph.degree(0), 1u);
}

TEST(ConflictGraph, EmptyGraph) {
  const ConflictGraph graph({});
  EXPECT_EQ(graph.size(), 0u);
  EXPECT_EQ(graph.MaxDegree(), 0u);
}

TEST(ConflictGraph, AdjacencySortedForBinarySearch) {
  // Hub-and-spokes in deliberately shuffled input order: the hub's
  // adjacency must come out sorted/deduplicated (HasEdge binary-searches
  // it) and every HasEdge answer must match membership in neighbors().
  const auto map = MakeMap(8, 8);
  TxnFactory factory(map);
  std::vector<Transaction> txns;
  txns.push_back(factory.MakeTouch(0, 0, {5}));          // v0: spoke on 5
  txns.push_back(factory.MakeTouch(0, 0, {1}));          // v1: spoke on 1
  txns.push_back(factory.MakeTouch(0, 0, {1, 3, 5, 7})); // v2: the hub
  txns.push_back(factory.MakeTouch(0, 0, {7}));          // v3: spoke on 7
  txns.push_back(factory.MakeTouch(0, 0, {3}));          // v4: spoke on 3
  std::vector<const Transaction*> view;
  for (const auto& txn : txns) view.push_back(&txn);
  const ConflictGraph graph(view, ConflictGranularity::kAccount);

  const auto& hub = graph.neighbors(2);
  EXPECT_TRUE(std::is_sorted(hub.begin(), hub.end()));
  EXPECT_EQ(hub.size(), 4u);
  for (std::size_t v = 0; v < graph.size(); ++v) {
    for (std::size_t u = 0; u < graph.size(); ++u) {
      const auto& adj = graph.neighbors(v);
      const bool in_list = std::find(adj.begin(), adj.end(),
                                     static_cast<std::uint32_t>(u)) !=
                           adj.end();
      EXPECT_EQ(graph.HasEdge(v, u), in_list) << v << " -> " << u;
      EXPECT_EQ(graph.HasEdge(v, u), graph.HasEdge(u, v)) << "symmetry";
    }
  }
  EXPECT_EQ(graph.MaxDegree(), 4u);
  EXPECT_EQ(graph.edge_count(), 4u);
}

TEST(ConflictGraph, MatchesLegacyAdjacencyOnRandomWorkloads) {
  // Differential check of the CSR build (two-pass count/fill plus the
  // hybrid sort/bitmap row dedup) against the original vector-of-vectors
  // builder, which stays in the library as the oracle. The dense cases
  // funnel many transactions through few accounts/shards so rows exceed
  // the 32-candidate cutoff and take the bitmap-dedup path; the sparse
  // case keeps rows on the in-place sort path.
  struct WorkloadCase {
    ShardId shards;
    AccountId accounts;
    std::uint32_t k;
    std::size_t count;
    std::uint64_t seed;
  };
  for (const WorkloadCase& wc :
       {WorkloadCase{32, 64, 4, 200, 1},   // sparse rows: sort path
        WorkloadCase{4, 8, 3, 120, 2},     // dense rows: bitmap path
        WorkloadCase{2, 4, 2, 90, 3}}) {   // near-clique at both granularities
    const auto map = chain::AccountMap::RoundRobin(wc.shards, wc.accounts);
    Rng rng(wc.seed);
    TxnFactory factory(map);
    std::vector<Transaction> txns;
    for (std::size_t i = 0; i < wc.count; ++i) {
      const std::uint64_t span = 1 + rng.NextBounded(wc.k);
      const auto picks = rng.SampleWithoutReplacement(wc.accounts, span);
      txns.push_back(factory.MakeTouch(
          static_cast<ShardId>(rng.NextBounded(wc.shards)), 0,
          std::vector<AccountId>(picks.begin(), picks.end())));
    }
    std::vector<const Transaction*> view;
    for (const auto& txn : txns) view.push_back(&txn);

    for (const auto granularity :
         {ConflictGranularity::kAccount, ConflictGranularity::kShard}) {
      const ConflictGraph graph(view, granularity);
      const auto legacy = BuildLegacyAdjacency(view, granularity);
      ASSERT_EQ(graph.size(), legacy.size());
      std::size_t edge_ends = 0;
      std::size_t max_degree = 0;
      for (std::size_t v = 0; v < graph.size(); ++v) {
        const auto row = graph.neighbors(v);
        EXPECT_EQ(std::vector<std::uint32_t>(row.begin(), row.end()),
                  legacy[v])
            << "row " << v << " seed " << wc.seed;
        EXPECT_EQ(graph.degree(v), legacy[v].size());
        edge_ends += legacy[v].size();
        max_degree = std::max(max_degree, legacy[v].size());
      }
      EXPECT_EQ(graph.edge_count(), edge_ends / 2);
      EXPECT_EQ(graph.MaxDegree(), max_degree);
      for (std::size_t v = 0; v < graph.size(); v += 7) {
        for (std::size_t u = 0; u < graph.size(); u += 5) {
          const bool in_legacy =
              std::find(legacy[v].begin(), legacy[v].end(),
                        static_cast<std::uint32_t>(u)) != legacy[v].end();
          EXPECT_EQ(graph.HasEdge(v, u), in_legacy) << v << " -> " << u;
        }
      }
    }
  }
}

TEST(ConflictGraph, DenseCliqueRowDedupMatchesLegacy) {
  // 40 transactions writing the same account: every row holds 39 candidate
  // entries — past the sort/bitmap cutoff — and must come out as the other
  // 39 vertices, sorted, exactly as the legacy builder produces.
  const auto map = MakeMap(4, 4);
  TxnFactory factory(map);
  std::vector<Transaction> txns;
  for (int i = 0; i < 40; ++i) txns.push_back(factory.MakeTouch(0, 0, {0}));
  std::vector<const Transaction*> view;
  for (const auto& txn : txns) view.push_back(&txn);
  const ConflictGraph graph(view, ConflictGranularity::kAccount);
  const auto legacy = BuildLegacyAdjacency(view, ConflictGranularity::kAccount);
  EXPECT_EQ(graph.MaxDegree(), 39u);
  EXPECT_EQ(graph.edge_count(), 40u * 39u / 2u);
  for (std::size_t v = 0; v < graph.size(); ++v) {
    const auto row = graph.neighbors(v);
    EXPECT_EQ(std::vector<std::uint32_t>(row.begin(), row.end()), legacy[v]);
  }
}

TEST(ConflictGraph, TxnIdsPreserved) {
  const auto map = MakeMap(4, 4);
  TxnFactory factory(map);
  const auto t0 = factory.MakeTouch(0, 0, {0});
  const auto t1 = factory.MakeTouch(0, 0, {1});
  const ConflictGraph graph({&t1, &t0});
  EXPECT_EQ(graph.txn_id(0), t1.id());
  EXPECT_EQ(graph.txn_id(1), t0.id());
}

TEST(TransactionDeath, RejectsEmptySubList) {
  EXPECT_DEATH(Transaction(0, 0, 0, {}), "SSHARD_CHECK");
}

}  // namespace
}  // namespace stableshard::txn
