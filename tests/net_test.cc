// Unit tests for src/net: metric axioms for every topology, neighborhoods,
// diameters, the delayed message network, and the topology factory.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/rng.h"
#include "net/metric.h"
#include "net/network.h"
#include "net/outbox.h"
#include "net/topology_factory.h"

namespace stableshard::net {
namespace {

void ExpectMetricAxioms(const ShardMetric& metric) {
  const ShardId s = metric.shard_count();
  for (ShardId i = 0; i < s; ++i) {
    EXPECT_EQ(metric.distance(i, i), 0u);
    for (ShardId j = 0; j < s; ++j) {
      if (i == j) continue;
      EXPECT_GE(metric.distance(i, j), 1u);
      EXPECT_EQ(metric.distance(i, j), metric.distance(j, i));
      for (ShardId via = 0; via < s; ++via) {
        EXPECT_LE(metric.distance(i, j),
                  metric.distance(i, via) + metric.distance(via, j));
      }
    }
  }
}

TEST(UniformMetric, AllPairsUnitDistance) {
  UniformMetric metric(8);
  ExpectMetricAxioms(metric);
  EXPECT_EQ(metric.distance(0, 7), 1u);
  EXPECT_EQ(metric.Diameter(), 1u);
}

TEST(LineMetric, AbsoluteDifference) {
  LineMetric metric(64);
  ExpectMetricAxioms(metric);
  EXPECT_EQ(metric.distance(0, 1), 1u);
  EXPECT_EQ(metric.distance(0, 2), 2u);
  EXPECT_EQ(metric.distance(0, 63), 63u);
  EXPECT_EQ(metric.Diameter(), 63u);
}

TEST(RingMetric, WrapsAround) {
  RingMetric metric(10);
  ExpectMetricAxioms(metric);
  EXPECT_EQ(metric.distance(0, 9), 1u);
  EXPECT_EQ(metric.distance(0, 5), 5u);
  EXPECT_EQ(metric.Diameter(), 5u);
}

TEST(GridMetric, ManhattanDistance) {
  GridMetric metric(4, 4);
  ExpectMetricAxioms(metric);
  EXPECT_EQ(metric.distance(0, 3), 3u);   // (0,0) -> (3,0)
  EXPECT_EQ(metric.distance(0, 15), 6u);  // (0,0) -> (3,3)
  EXPECT_EQ(metric.Diameter(), 6u);
}

TEST(MatrixMetric, AcceptsValidMetric) {
  // A 3-point path metric 0 -1- 1 -2- 2.
  std::vector<Distance> matrix{0, 1, 3, 1, 0, 2, 3, 2, 0};
  MatrixMetric metric(3, matrix);
  ExpectMetricAxioms(metric);
  EXPECT_EQ(metric.distance(0, 2), 3u);
}

TEST(MatrixMetricDeath, RejectsAsymmetry) {
  std::vector<Distance> matrix{0, 1, 2, 0};
  EXPECT_DEATH(MatrixMetric(2, matrix), "SSHARD_CHECK");
}

TEST(MatrixMetricDeath, RejectsTriangleViolation) {
  std::vector<Distance> matrix{0, 1, 5, 1, 0, 1, 5, 1, 0};
  EXPECT_DEATH(MatrixMetric(3, matrix), "SSHARD_CHECK");
}

/// Line-shaped metric that counts distance() evaluations; keeps the generic
/// O(s^2) ComputeDiameter so the memoization itself is what's under test.
class CountingLineMetric final : public ShardMetric {
 public:
  explicit CountingLineMetric(ShardId shards) : shards_(shards) {}
  ShardId shard_count() const override { return shards_; }
  Distance distance(ShardId a, ShardId b) const override {
    ++distance_calls;
    return a > b ? a - b : b - a;
  }
  mutable std::uint64_t distance_calls = 0;

 private:
  ShardId shards_;
};

TEST(ShardMetric, DiameterMemoizedPerInstance) {
  CountingLineMetric metric(64);
  EXPECT_EQ(metric.Diameter(), 63u);
  const std::uint64_t first_cost = metric.distance_calls;
  EXPECT_GT(first_cost, 0u);
  // Re-querying (as every Network and Hierarchy construction does) must hit
  // the cache: zero additional distance evaluations.
  EXPECT_EQ(metric.Diameter(), 63u);
  EXPECT_EQ(metric.Diameter(), 63u);
  EXPECT_EQ(metric.distance_calls, first_cost);
}

TEST(ShardMetric, ClosedFormDiametersMatchBruteForce) {
  const auto brute_force = [](const ShardMetric& metric) {
    Distance diameter = 0;
    for (ShardId i = 0; i < metric.shard_count(); ++i) {
      for (ShardId j = i + 1; j < metric.shard_count(); ++j) {
        diameter = std::max(diameter, metric.distance(i, j));
      }
    }
    return diameter;
  };
  for (const ShardId s : {1u, 2u, 7u, 10u, 33u}) {
    EXPECT_EQ(UniformMetric(s).Diameter(), brute_force(UniformMetric(s)));
    EXPECT_EQ(LineMetric(s).Diameter(), brute_force(LineMetric(s)));
    EXPECT_EQ(RingMetric(s).Diameter(), brute_force(RingMetric(s)));
  }
  EXPECT_EQ(GridMetric(1, 1).Diameter(), brute_force(GridMetric(1, 1)));
  EXPECT_EQ(GridMetric(4, 4).Diameter(), brute_force(GridMetric(4, 4)));
  EXPECT_EQ(GridMetric(5, 3).Diameter(), brute_force(GridMetric(5, 3)));
}

TEST(RandomGeometricMetric, SatisfiesAxioms) {
  Rng rng(77);
  const auto metric = MakeRandomGeometricMetric(16, 32, rng);
  ExpectMetricAxioms(*metric);
  EXPECT_GE(metric->Diameter(), 1u);
}

TEST(Neighborhood, LineRadii) {
  LineMetric metric(10);
  EXPECT_EQ(metric.Neighborhood(5, 0), std::vector<ShardId>{5});
  const auto n2 = metric.Neighborhood(5, 2);
  EXPECT_EQ(n2, (std::vector<ShardId>{3, 4, 5, 6, 7}));
  const auto edge = metric.Neighborhood(0, 3);
  EXPECT_EQ(edge, (std::vector<ShardId>{0, 1, 2, 3}));
}

TEST(SubsetDiameter, ComputedOnSubset) {
  LineMetric metric(10);
  EXPECT_EQ(metric.SubsetDiameter({2, 3, 4}), 2u);
  EXPECT_EQ(metric.SubsetDiameter({0, 9}), 9u);
  EXPECT_EQ(metric.SubsetDiameter({7}), 0u);
}

TEST(Network, DeliversAtDistance) {
  LineMetric metric(8);
  Network<int> network(metric);
  network.Send(0, 3, /*now=*/10, 42);  // distance 3 -> deliver at 13
  network.Send(1, 2, /*now=*/10, 7);   // distance 1 -> deliver at 11
  EXPECT_TRUE(network.HasPending());

  auto at11 = network.Deliver(11);
  ASSERT_EQ(at11.size(), 1u);
  EXPECT_EQ(at11[0].payload, 7);
  EXPECT_EQ(at11[0].to, 2u);

  EXPECT_TRUE(network.Deliver(12).empty());

  auto at13 = network.Deliver(13);
  ASSERT_EQ(at13.size(), 1u);
  EXPECT_EQ(at13[0].payload, 42);
  EXPECT_FALSE(network.HasPending());
}

TEST(Network, SelfSendTakesOneRound) {
  UniformMetric metric(4);
  Network<int> network(metric);
  network.Send(2, 2, 5, 1);
  EXPECT_TRUE(network.Deliver(5).empty());
  EXPECT_EQ(network.Deliver(6).size(), 1u);
}

TEST(Network, TrafficAccounting) {
  UniformMetric metric(4);
  Network<int> network(metric);
  network.Send(0, 1, 0, 10, /*payload_units=*/5);
  network.Send(0, 2, 0, 11);
  EXPECT_EQ(network.stats().messages_sent, 2u);
  EXPECT_EQ(network.stats().payload_units, 6u);
  EXPECT_EQ(network.stats().max_in_flight, 2u);
  network.Deliver(1);
  EXPECT_EQ(network.pending_count(), 0u);
}

TEST(Network, PreservesSendOrderWithinRound) {
  UniformMetric metric(4);
  Network<int> network(metric);
  for (int i = 0; i < 10; ++i) network.Send(0, 1, 0, i);
  const auto delivered = network.Deliver(1);
  ASSERT_EQ(delivered.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(delivered[i].payload, i);
}

TEST(Network, DeliverToPartitionsByDestination) {
  UniformMetric metric(4);
  Network<int> network(metric);
  // Interleave sends to two destinations from several sources.
  network.Send(0, 1, 0, 100);
  network.Send(0, 2, 0, 200);
  network.Send(3, 1, 0, 101);
  network.Send(3, 2, 0, 201);
  network.Send(2, 1, 0, 102);

  auto to1 = network.DeliverTo(1, 1);
  ASSERT_EQ(to1.size(), 3u);
  // Per-destination send order is preserved.
  EXPECT_EQ(to1[0].payload, 100);
  EXPECT_EQ(to1[1].payload, 101);
  EXPECT_EQ(to1[2].payload, 102);
  EXPECT_EQ(network.pending_for(1), 0u);
  EXPECT_EQ(network.pending_for(2), 2u);
  EXPECT_TRUE(network.HasPending());

  auto to2 = network.DeliverTo(2, 1);
  ASSERT_EQ(to2.size(), 2u);
  EXPECT_EQ(to2[0].payload, 200);
  EXPECT_EQ(to2[1].payload, 201);
  EXPECT_FALSE(network.HasPending());
  // Empty re-delivery is harmless.
  EXPECT_TRUE(network.DeliverTo(1, 1).empty());
}

TEST(Network, DeliverMergesBucketsInGlobalSendOrder) {
  UniformMetric metric(4);
  Network<int> network(metric);
  network.Send(0, 3, 0, 0);
  network.Send(0, 1, 0, 1);
  network.Send(0, 2, 0, 2);
  network.Send(0, 1, 0, 3);
  const auto delivered = network.Deliver(1);
  ASSERT_EQ(delivered.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(delivered[i].payload, i);
}

TEST(Network, RingBucketsReusedAcrossManyRounds) {
  // Drive far more rounds than the ring has slots (diameter 7 -> 9 slots)
  // to prove slots recycle cleanly, with mixed distances in flight.
  LineMetric metric(8);
  Network<int> network(metric);
  std::uint64_t delivered = 0;
  for (Round round = 0; round < 100; ++round) {
    network.Send(0, 7, round, static_cast<int>(round));      // distance 7
    network.Send(3, 4, round, static_cast<int>(round) + 1);  // distance 1
    for (ShardId shard = 0; shard < 8; ++shard) {
      for (const auto& envelope : network.DeliverTo(shard, round)) {
        EXPECT_EQ(envelope.deliver, round);
        EXPECT_EQ(envelope.to, shard);
        ++delivered;
      }
    }
  }
  // All distance-1 messages (sent rounds 0..98 deliver 1..99) and the
  // distance-7 messages sent up to round 92 have been delivered.
  EXPECT_EQ(delivered, 99u + 93u);
  EXPECT_EQ(network.pending_count(), 2 * 100u - delivered);
}

TEST(Network, LazyRingAllocatesOnlyContactedDestinations) {
  // A 1024-shard line used to pre-allocate (Diameter + 2) * s ~ 1M buckets;
  // the lazy ring allocates per destination on first Send.
  LineMetric metric(1024);
  Network<int> network(metric);
  const RingMemory idle = network.ring_memory();
  EXPECT_EQ(idle.live_destinations, 0u);
  EXPECT_EQ(idle.allocated_buckets, 0u);
  EXPECT_EQ(idle.bucket_capacity_bytes, 0u);
  EXPECT_EQ(idle.dense_bucket_equivalent, (1023u + 2u) * 1024u);

  // Delivering to an uncontacted destination allocates nothing.
  EXPECT_TRUE(network.DeliverTo(512, 3).empty());
  EXPECT_EQ(network.ring_memory().live_destinations, 0u);

  network.Send(0, 7, /*now=*/0, 1);
  network.Send(1, 7, /*now=*/0, 2);  // same destination: same ring
  network.Send(0, 900, /*now=*/0, 3);
  const RingMemory live = network.ring_memory();
  EXPECT_EQ(live.live_destinations, 2u);
  // Rings are sized by the largest delivery offset each destination has
  // seen (next power of two of offset + 2, capped at Diameter + 2), not by
  // the global diameter: dest 7 saw offset 7 -> 16 slots, dest 900 saw
  // offset 900 -> 1024 slots.
  EXPECT_EQ(live.allocated_buckets, 16u + 1024u);
  EXPECT_GT(live.bucket_capacity_bytes, 0u);
}

TEST(Network, RingGrowthRebucketsInFlightMessages) {
  // Short-offset traffic first (small ring), then a long-offset send forces
  // geometric growth while messages are in flight; everything must still
  // deliver at the right round, in send order.
  LineMetric metric(64);
  Network<int> network(metric);
  network.Send(1, 0, /*now=*/0, 10);   // offset 1, due round 1
  network.Send(2, 0, /*now=*/0, 11);   // offset 2, due round 2
  network.Send(40, 0, /*now=*/0, 12);  // offset 40: grows the ring to 64
  network.Send(3, 0, /*now=*/0, 13);   // offset 3, after the growth

  auto at1 = network.DeliverTo(0, 1);
  ASSERT_EQ(at1.size(), 1u);
  EXPECT_EQ(at1[0].payload, 10);
  auto at2 = network.DeliverTo(0, 2);
  ASSERT_EQ(at2.size(), 1u);
  EXPECT_EQ(at2[0].payload, 11);
  auto at3 = network.DeliverTo(0, 3);
  ASSERT_EQ(at3.size(), 1u);
  EXPECT_EQ(at3[0].payload, 13);
  for (Round round = 4; round < 40; ++round) {
    EXPECT_TRUE(network.DeliverTo(0, round).empty());
  }
  auto at40 = network.DeliverTo(0, 40);
  ASSERT_EQ(at40.size(), 1u);
  EXPECT_EQ(at40[0].payload, 12);
  EXPECT_FALSE(network.HasPending());
}

TEST(Network, DeliverToOutParamRecyclesCapacityAcrossRounds) {
  UniformMetric metric(4);
  Network<int> network(metric);
  std::vector<Network<int>::Envelope> inbox;

  // Warm-up round-trip seeds the slot<->buffer capacity ping-pong.
  for (int i = 0; i < 64; ++i) network.Send(0, 1, 0, i);
  network.DeliverTo(1, 1, inbox);
  ASSERT_EQ(inbox.size(), 64u);
  const std::size_t warm_capacity = inbox.capacity();

  for (Round round = 1; round < 20; ++round) {
    for (int i = 0; i < 64; ++i) network.Send(0, 1, round, i);
    network.DeliverTo(1, round + 1, inbox);
    ASSERT_EQ(inbox.size(), 64u);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(inbox[i].payload, i);
  }
  // The swap recycling keeps capacity cycling between the ring slot and the
  // caller's buffer: envelope storage stays reserved inside the ring after
  // a delivery (move-and-drop would leave the slot at capacity zero), and
  // the inbox never shrinks below its warmed size.
  EXPECT_GE(network.ring_memory().bucket_capacity_bytes,
            64u * sizeof(Network<int>::Envelope));
  EXPECT_GE(inbox.capacity(), warm_capacity);
}

#ifndef NDEBUG
TEST(NetworkDeath, StaleSlotDetectedWhenRoundSkipped) {
  // Violating the drain contract — skipping a due (shard, round) until the
  // ring wraps — must trip the per-envelope DCHECK instead of silently
  // delivering a stale message. UniformMetric(2) has 3 slots, so round 4
  // reuses round 1's slot.
  UniformMetric metric(2);
  Network<int> network(metric);
  network.Send(0, 1, /*now=*/0, 7);  // due at round 1, never drained
  network.Send(0, 1, /*now=*/3, 8);  // lands in the same slot (4 % 3 == 1)
  EXPECT_DEATH(network.DeliverTo(1, 4), "SSHARD_CHECK");
}
#endif

TEST(Network, PerShardTrafficAccounting) {
  UniformMetric metric(3);
  Network<int> network(metric);
  network.Send(0, 1, 0, 7, /*payload_units=*/5);
  network.Send(0, 2, 0, 8);
  network.Send(1, 0, 0, 9, /*payload_units=*/2);

  EXPECT_EQ(network.shard_traffic(0).messages_out, 2u);
  EXPECT_EQ(network.shard_traffic(0).payload_out, 6u);
  EXPECT_EQ(network.shard_traffic(0).messages_in, 1u);
  EXPECT_EQ(network.shard_traffic(0).payload_in, 2u);
  EXPECT_EQ(network.shard_traffic(1).messages_in, 1u);
  EXPECT_EQ(network.shard_traffic(1).payload_in, 5u);
  EXPECT_EQ(network.shard_traffic(2).messages_in, 1u);
  // Aggregate stats unchanged by the split.
  EXPECT_EQ(network.stats().messages_sent, 3u);
  EXPECT_EQ(network.stats().payload_units, 8u);
}

TEST(Network, MaxInFlightTracksPeakAcrossDeliveries) {
  UniformMetric metric(4);
  Network<int> network(metric);
  network.Send(0, 1, 0, 1);
  network.Send(0, 2, 0, 2);
  network.Send(0, 3, 0, 3);
  EXPECT_EQ(network.stats().max_in_flight, 3u);
  network.Deliver(1);  // everything drains
  network.Send(0, 1, 1, 4);
  network.Send(0, 2, 1, 5);
  // Peak is still 3: deliveries reduced in-flight before the new sends.
  EXPECT_EQ(network.stats().max_in_flight, 3u);
}

TEST(Outbox, FlushesLanesInShardOrder) {
  UniformMetric metric(4);
  Network<int> network(metric);
  OutboxSet<int> outbox(4);
  // Write lanes out of shard order; flush must serialize lane 0 first.
  outbox.Send(2, 0, 20);
  outbox.Send(0, 1, 1);
  outbox.Send(2, 1, 21, /*payload_units=*/3);
  outbox.Send(1, 3, 10);
  EXPECT_FALSE(outbox.Empty());
  outbox.Flush(network, /*now=*/5);
  EXPECT_TRUE(outbox.Empty());
  EXPECT_EQ(network.stats().messages_sent, 4u);
  EXPECT_EQ(network.stats().payload_units, 6u);

  const auto delivered = network.Deliver(6);
  ASSERT_EQ(delivered.size(), 4u);
  EXPECT_EQ(delivered[0].payload, 1);   // lane 0
  EXPECT_EQ(delivered[0].from, 0u);
  EXPECT_EQ(delivered[1].payload, 10);  // lane 1
  EXPECT_EQ(delivered[2].payload, 20);  // lane 2, append order
  EXPECT_EQ(delivered[3].payload, 21);
}

TEST(Outbox, PartitionedFlushMatchesSerial) {
  // Same sends through the serial Flush and through the pipelined triple
  // (sealed, drained in two destination partitions applied in REVERSE
  // order): delivery order, per-envelope seqs and every stat must agree.
  LineMetric metric(4);
  Network<int> serial_net(metric);
  Network<int> pipelined_net(metric);
  OutboxSet<int> serial_outbox(4);
  OutboxSet<int> pipelined_outbox(4);
  const auto send_all = [](OutboxSet<int>& outbox) {
    outbox.Send(2, 0, 20);
    outbox.Send(0, 1, 1);
    outbox.Send(2, 3, 23, /*payload_units=*/3);
    outbox.Send(1, 3, 13);
    outbox.Send(3, 3, 33, /*payload_units=*/2);
  };
  send_all(serial_outbox);
  send_all(pipelined_outbox);

  serial_outbox.Flush(serial_net, /*now=*/5);
  pipelined_outbox.Seal();
  // Reverse partition order: per-destination order must not care.
  pipelined_outbox.FlushSealedTo(pipelined_net, /*now=*/5, 2, 4);
  pipelined_outbox.FlushSealedTo(pipelined_net, /*now=*/5, 0, 2);
  pipelined_outbox.FinishSealedFlush(pipelined_net);
  EXPECT_TRUE(pipelined_outbox.Empty());

  EXPECT_EQ(serial_net.stats().messages_sent,
            pipelined_net.stats().messages_sent);
  EXPECT_EQ(serial_net.stats().payload_units,
            pipelined_net.stats().payload_units);
  EXPECT_EQ(serial_net.stats().max_in_flight,
            pipelined_net.stats().max_in_flight);
  for (ShardId shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(serial_net.shard_traffic(shard).messages_in,
              pipelined_net.shard_traffic(shard).messages_in);
    EXPECT_EQ(serial_net.shard_traffic(shard).messages_out,
              pipelined_net.shard_traffic(shard).messages_out);
    EXPECT_EQ(serial_net.shard_traffic(shard).payload_in,
              pipelined_net.shard_traffic(shard).payload_in);
    EXPECT_EQ(serial_net.shard_traffic(shard).payload_out,
              pipelined_net.shard_traffic(shard).payload_out);
    EXPECT_EQ(serial_net.pending_for(shard),
              pipelined_net.pending_for(shard));
  }
  // Drain both across the whole delivery horizon: the seq-merged global
  // order must be identical envelope by envelope.
  for (Round now = 6; now < 10; ++now) {
    const auto expected = serial_net.Deliver(now);
    const auto actual = pipelined_net.Deliver(now);
    ASSERT_EQ(expected.size(), actual.size()) << "round " << now;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].payload, actual[i].payload);
      EXPECT_EQ(expected[i].seq, actual[i].seq);
      EXPECT_EQ(expected[i].from, actual[i].from);
      EXPECT_EQ(expected[i].to, actual[i].to);
    }
  }
}

TEST(Outbox, DoubleBufferAcceptsSendsWhileSealedDrains) {
  // Round r is sealed; round r+1's sends land in the fresh active buffer
  // and are not disturbed by the sealed drain.
  UniformMetric metric(2);
  Network<int> network(metric);
  OutboxSet<int> outbox(2);
  outbox.Send(0, 1, 100);
  outbox.Seal();
  outbox.Send(1, 0, 200);  // next round, while sealed buffer undrained
  EXPECT_FALSE(outbox.Empty());
  outbox.FlushSealedTo(network, /*now=*/0, 0, 2);
  outbox.FinishSealedFlush(network);
  EXPECT_FALSE(outbox.Empty());  // the round r+1 send is still queued
  outbox.Seal();
  outbox.FlushSealedTo(network, /*now=*/1, 0, 2);
  outbox.FinishSealedFlush(network);
  EXPECT_TRUE(outbox.Empty());

  const auto first = network.Deliver(1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].payload, 100);
  const auto second = network.Deliver(2);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].payload, 200);
}

TEST(Outbox, LaneShrinkReleasesBurstCapacity) {
  UniformMetric metric(2);
  Network<int> network(metric);
  OutboxSet<int> outbox(2);

  // One burst round: lane 0 swells far past steady state.
  const std::size_t kBurst = 4096;
  for (std::size_t i = 0; i < kBurst; ++i) {
    outbox.Send(0, 1, static_cast<int>(i));
  }
  outbox.Flush(network, /*now=*/0);
  network.Deliver(1);
  const LaneMemory after_burst = outbox.lane_memory();
  EXPECT_GE(after_burst.high_water_items, kBurst);
  EXPECT_GT(after_burst.capacity_bytes, 0u);

  // Quiet rounds: the decayed high-water mark falls and capacity is
  // released instead of staying pinned at the burst peak forever.
  for (Round round = 1; round < 60; ++round) {
    outbox.Send(0, 1, 1);
    outbox.Flush(network, round);
    network.Deliver(round + 1);
  }
  const LaneMemory settled = outbox.lane_memory();
  EXPECT_LT(settled.capacity_bytes, after_burst.capacity_bytes / 4);
  EXPECT_LT(settled.high_water_items, 16u);
  EXPECT_EQ(settled.queued_items, 0u);
}

TEST(Outbox, LaneMemoryCountsQueuedItems) {
  OutboxSet<int> outbox(3);
  EXPECT_EQ(outbox.lane_memory().queued_items, 0u);
  outbox.Send(0, 1, 7);
  outbox.Send(2, 0, 9);
  const LaneMemory memory = outbox.lane_memory();
  EXPECT_EQ(memory.queued_items, 2u);
  EXPECT_GE(memory.lanes_with_capacity, 2u);
  EXPECT_GT(memory.capacity_bytes, 0u);
}

TEST(TopologyFactory, ParseRoundTrip) {
  for (const auto kind :
       {TopologyKind::kUniform, TopologyKind::kLine, TopologyKind::kRing,
        TopologyKind::kGrid, TopologyKind::kRandomGeometric}) {
    EXPECT_EQ(ParseTopology(TopologyName(kind)), kind);
  }
}

TEST(TopologyFactory, BuildsEachKind) {
  Rng rng(3);
  EXPECT_EQ(MakeMetric(TopologyKind::kUniform, 8)->Diameter(), 1u);
  EXPECT_EQ(MakeMetric(TopologyKind::kLine, 8)->Diameter(), 7u);
  EXPECT_EQ(MakeMetric(TopologyKind::kRing, 8)->Diameter(), 4u);
  EXPECT_EQ(MakeMetric(TopologyKind::kGrid, 16)->Diameter(), 6u);
  EXPECT_GE(MakeMetric(TopologyKind::kRandomGeometric, 8, &rng)->Diameter(),
            1u);
}

}  // namespace
}  // namespace stableshard::net
