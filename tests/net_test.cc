// Unit tests for src/net: metric axioms for every topology, neighborhoods,
// diameters, the delayed message network, and the topology factory.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "net/metric.h"
#include "net/network.h"
#include "net/topology_factory.h"

namespace stableshard::net {
namespace {

void ExpectMetricAxioms(const ShardMetric& metric) {
  const ShardId s = metric.shard_count();
  for (ShardId i = 0; i < s; ++i) {
    EXPECT_EQ(metric.distance(i, i), 0u);
    for (ShardId j = 0; j < s; ++j) {
      if (i == j) continue;
      EXPECT_GE(metric.distance(i, j), 1u);
      EXPECT_EQ(metric.distance(i, j), metric.distance(j, i));
      for (ShardId via = 0; via < s; ++via) {
        EXPECT_LE(metric.distance(i, j),
                  metric.distance(i, via) + metric.distance(via, j));
      }
    }
  }
}

TEST(UniformMetric, AllPairsUnitDistance) {
  UniformMetric metric(8);
  ExpectMetricAxioms(metric);
  EXPECT_EQ(metric.distance(0, 7), 1u);
  EXPECT_EQ(metric.Diameter(), 1u);
}

TEST(LineMetric, AbsoluteDifference) {
  LineMetric metric(64);
  ExpectMetricAxioms(metric);
  EXPECT_EQ(metric.distance(0, 1), 1u);
  EXPECT_EQ(metric.distance(0, 2), 2u);
  EXPECT_EQ(metric.distance(0, 63), 63u);
  EXPECT_EQ(metric.Diameter(), 63u);
}

TEST(RingMetric, WrapsAround) {
  RingMetric metric(10);
  ExpectMetricAxioms(metric);
  EXPECT_EQ(metric.distance(0, 9), 1u);
  EXPECT_EQ(metric.distance(0, 5), 5u);
  EXPECT_EQ(metric.Diameter(), 5u);
}

TEST(GridMetric, ManhattanDistance) {
  GridMetric metric(4, 4);
  ExpectMetricAxioms(metric);
  EXPECT_EQ(metric.distance(0, 3), 3u);   // (0,0) -> (3,0)
  EXPECT_EQ(metric.distance(0, 15), 6u);  // (0,0) -> (3,3)
  EXPECT_EQ(metric.Diameter(), 6u);
}

TEST(MatrixMetric, AcceptsValidMetric) {
  // A 3-point path metric 0 -1- 1 -2- 2.
  std::vector<Distance> matrix{0, 1, 3, 1, 0, 2, 3, 2, 0};
  MatrixMetric metric(3, matrix);
  ExpectMetricAxioms(metric);
  EXPECT_EQ(metric.distance(0, 2), 3u);
}

TEST(MatrixMetricDeath, RejectsAsymmetry) {
  std::vector<Distance> matrix{0, 1, 2, 0};
  EXPECT_DEATH(MatrixMetric(2, matrix), "SSHARD_CHECK");
}

TEST(MatrixMetricDeath, RejectsTriangleViolation) {
  std::vector<Distance> matrix{0, 1, 5, 1, 0, 1, 5, 1, 0};
  EXPECT_DEATH(MatrixMetric(3, matrix), "SSHARD_CHECK");
}

TEST(RandomGeometricMetric, SatisfiesAxioms) {
  Rng rng(77);
  const auto metric = MakeRandomGeometricMetric(16, 32, rng);
  ExpectMetricAxioms(*metric);
  EXPECT_GE(metric->Diameter(), 1u);
}

TEST(Neighborhood, LineRadii) {
  LineMetric metric(10);
  EXPECT_EQ(metric.Neighborhood(5, 0), std::vector<ShardId>{5});
  const auto n2 = metric.Neighborhood(5, 2);
  EXPECT_EQ(n2, (std::vector<ShardId>{3, 4, 5, 6, 7}));
  const auto edge = metric.Neighborhood(0, 3);
  EXPECT_EQ(edge, (std::vector<ShardId>{0, 1, 2, 3}));
}

TEST(SubsetDiameter, ComputedOnSubset) {
  LineMetric metric(10);
  EXPECT_EQ(metric.SubsetDiameter({2, 3, 4}), 2u);
  EXPECT_EQ(metric.SubsetDiameter({0, 9}), 9u);
  EXPECT_EQ(metric.SubsetDiameter({7}), 0u);
}

TEST(Network, DeliversAtDistance) {
  LineMetric metric(8);
  Network<int> network(metric);
  network.Send(0, 3, /*now=*/10, 42);  // distance 3 -> deliver at 13
  network.Send(1, 2, /*now=*/10, 7);   // distance 1 -> deliver at 11
  EXPECT_TRUE(network.HasPending());

  auto at11 = network.Deliver(11);
  ASSERT_EQ(at11.size(), 1u);
  EXPECT_EQ(at11[0].payload, 7);
  EXPECT_EQ(at11[0].to, 2u);

  EXPECT_TRUE(network.Deliver(12).empty());

  auto at13 = network.Deliver(13);
  ASSERT_EQ(at13.size(), 1u);
  EXPECT_EQ(at13[0].payload, 42);
  EXPECT_FALSE(network.HasPending());
}

TEST(Network, SelfSendTakesOneRound) {
  UniformMetric metric(4);
  Network<int> network(metric);
  network.Send(2, 2, 5, 1);
  EXPECT_TRUE(network.Deliver(5).empty());
  EXPECT_EQ(network.Deliver(6).size(), 1u);
}

TEST(Network, TrafficAccounting) {
  UniformMetric metric(4);
  Network<int> network(metric);
  network.Send(0, 1, 0, 10, /*payload_units=*/5);
  network.Send(0, 2, 0, 11);
  EXPECT_EQ(network.stats().messages_sent, 2u);
  EXPECT_EQ(network.stats().payload_units, 6u);
  EXPECT_EQ(network.stats().max_in_flight, 2u);
  network.Deliver(1);
  EXPECT_EQ(network.pending_count(), 0u);
}

TEST(Network, PreservesSendOrderWithinRound) {
  UniformMetric metric(4);
  Network<int> network(metric);
  for (int i = 0; i < 10; ++i) network.Send(0, 1, 0, i);
  const auto delivered = network.Deliver(1);
  ASSERT_EQ(delivered.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(delivered[i].payload, i);
}

TEST(TopologyFactory, ParseRoundTrip) {
  for (const auto kind :
       {TopologyKind::kUniform, TopologyKind::kLine, TopologyKind::kRing,
        TopologyKind::kGrid, TopologyKind::kRandomGeometric}) {
    EXPECT_EQ(ParseTopology(TopologyName(kind)), kind);
  }
}

TEST(TopologyFactory, BuildsEachKind) {
  Rng rng(3);
  EXPECT_EQ(MakeMetric(TopologyKind::kUniform, 8)->Diameter(), 1u);
  EXPECT_EQ(MakeMetric(TopologyKind::kLine, 8)->Diameter(), 7u);
  EXPECT_EQ(MakeMetric(TopologyKind::kRing, 8)->Diameter(), 4u);
  EXPECT_EQ(MakeMetric(TopologyKind::kGrid, 16)->Diameter(), 6u);
  EXPECT_GE(MakeMetric(TopologyKind::kRandomGeometric, 8, &rng)->Diameter(),
            1u);
}

}  // namespace
}  // namespace stableshard::net
