// Integration tests for Algorithm 1 (BDS): liveness, atomic same-round
// commitment, serialization consistency, the Lemma 1 epoch-length bound and
// the Theorem 2 queue/latency bounds at admissible rates, leader rotation,
// and abort handling — parameterized across system sizes and strategies.
#include <gtest/gtest.h>

#include <string>

#include "common/math_util.h"
#include "core/bds.h"
#include "sim_test_util.h"

namespace stableshard {
namespace {

using core::SimConfig;
using core::Simulation;
using test::ExpectDrainedRunInvariants;
using test::SmallConfig;

TEST(Bds, DrainsAndCommitsEverything) {
  SimConfig config = SmallConfig("bds");
  Simulation sim(config);
  const auto result = sim.Run();
  EXPECT_GT(result.injected, 0u);
  EXPECT_EQ(result.aborted, 0u);  // no failing conditions in this workload
  ExpectDrainedRunInvariants(sim, result, /*same_round_atomicity=*/true);
}

TEST(Bds, RequiresUniformModel) {
  SimConfig config = SmallConfig("bds");
  config.topology = net::TopologyKind::kLine;
  EXPECT_DEATH(Simulation sim(config), "uniform");
}

struct BdsCase {
  ShardId shards;
  AccountId accounts;
  std::uint32_t k;
  const char* strategy;  ///< a name registered in adversary::StrategyRegistry
  std::uint64_t seed;
};

class BdsProperty : public ::testing::TestWithParam<BdsCase> {};

TEST_P(BdsProperty, InvariantsAcrossConfigs) {
  const BdsCase param = GetParam();
  SimConfig config = SmallConfig("bds");
  config.shards = param.shards;
  config.accounts = param.accounts;
  config.k = param.k;
  config.strategy = param.strategy;
  config.seed = param.seed;
  config.rounds = 1200;
  config.burstiness = 20;
  // Admissible rate for this (k, s): half the paper's BDS bound.
  config.rho = 0.5 * BdsStableRateBound(param.k, param.shards);
  Simulation sim(config);
  const auto result = sim.Run();
  EXPECT_GT(result.injected, 0u);
  ExpectDrainedRunInvariants(sim, result, /*same_round_atomicity=*/true);

  // Theorem 2: pending <= 4bs at admissible rates.
  EXPECT_LE(result.max_pending, 4.0 * config.burstiness * config.shards);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BdsProperty,
    ::testing::Values(
        BdsCase{4, 4, 2, "uniform_random", 1},
        BdsCase{16, 16, 4, "uniform_random", 2},
        BdsCase{16, 64, 4, "uniform_random", 3},
        BdsCase{64, 64, 8, "uniform_random", 4},
        BdsCase{16, 16, 4, "hotspot", 5},
        BdsCase{16, 16, 1, "single_shard", 6},
        BdsCase{10, 10, 4, "pairwise_conflict", 7},
        BdsCase{16, 32, 3, "local", 8},
        BdsCase{16, 16, 4, "hot_destination", 9},
        BdsCase{16, 16, 3, "diameter_span", 10}),
    [](const ::testing::TestParamInfo<BdsCase>& info) {
      const auto& p = info.param;
      return std::string(p.strategy) + "_s" + std::to_string(p.shards) +
             "_k" + std::to_string(p.k) + "_seed" + std::to_string(p.seed);
    });

TEST(Bds, EpochLengthWithinLemma1Bound) {
  // Lemma 1: at rho <= bound and burstiness b, every epoch has length at
  // most tau = 18 * b * min{k, ceil(sqrt(s))}.
  SimConfig config = SmallConfig("bds");
  config.shards = 16;
  config.accounts = 16;
  config.k = 4;
  config.burstiness = 10;
  config.rho = BdsStableRateBound(config.k, config.shards);
  config.rounds = 3000;
  Simulation sim(config);
  auto& scheduler = dynamic_cast<core::BdsScheduler&>(sim.scheduler());
  const auto result = sim.Run();
  (void)result;
  const double tau =
      18.0 * config.burstiness * MinKSqrtS(config.k, config.shards);
  EXPECT_LE(scheduler.max_epoch_length(), tau);
}

TEST(Bds, LatencyWithinTheorem2Bound) {
  SimConfig config = SmallConfig("bds");
  config.shards = 16;
  config.accounts = 16;
  config.k = 4;
  config.burstiness = 10;
  config.rho = BdsStableRateBound(config.k, config.shards);
  config.rounds = 3000;
  config.drain_cap = 40000;
  Simulation sim(config);
  const auto result = sim.Run();
  const double bound =
      36.0 * config.burstiness * MinKSqrtS(config.k, config.shards);
  EXPECT_LE(result.max_latency, bound);
  ExpectDrainedRunInvariants(sim, result, true);
}

TEST(Bds, LeaderRotates) {
  SimConfig config = SmallConfig("bds");
  config.rounds = 200;
  config.drain_cap = 0;
  // Light load so epochs stay short and many leader rotations happen.
  config.burstiness = 1;
  config.burst_round = kNoRound;
  config.rho = 0.01;
  Simulation sim(config);
  auto& scheduler = dynamic_cast<core::BdsScheduler&>(sim.scheduler());
  sim.Run();
  EXPECT_GT(scheduler.epoch_index(), 1u);
  // After e epochs, the leader is S_{e mod s}.
  EXPECT_EQ(scheduler.current_leader(),
            scheduler.epoch_index() % config.shards);
}

TEST(Bds, FixedLeaderWhenRotationDisabled) {
  SimConfig config = SmallConfig("bds");
  config.bds_rotate_leader = false;
  config.rounds = 200;
  config.drain_cap = 0;
  Simulation sim(config);
  auto& scheduler = dynamic_cast<core::BdsScheduler&>(sim.scheduler());
  sim.Run();
  EXPECT_EQ(scheduler.current_leader(), 0u);
}

TEST(Bds, AbortingTransactionsResolve) {
  SimConfig config = SmallConfig("bds");
  config.abort_probability = 0.3;
  Simulation sim(config);
  const auto result = sim.Run();
  EXPECT_GT(result.aborted, 0u);
  EXPECT_GT(result.committed, 0u);
  ExpectDrainedRunInvariants(sim, result, true);
}

TEST(Bds, AbortedTxnsLeaveNoBlocks) {
  SimConfig config = SmallConfig("bds");
  config.abort_probability = 1.0;  // every txn carries a failing condition
  Simulation sim(config);
  const auto result = sim.Run();
  EXPECT_EQ(result.committed, 0u);
  EXPECT_EQ(result.aborted, result.injected);
  for (const auto& chain : sim.ledger().chains()) {
    EXPECT_TRUE(chain.empty());
  }
}

TEST(Bds, EmptyEpochsAreShort) {
  // With no injections at all, epochs tick over at length 2 and nothing
  // breaks.
  SimConfig config = SmallConfig("bds");
  config.rho = 0.001;
  config.burstiness = 1;
  config.burst_round = kNoRound;
  config.rounds = 100;
  Simulation sim(config);
  auto& scheduler = dynamic_cast<core::BdsScheduler&>(sim.scheduler());
  sim.Run();
  EXPECT_GE(scheduler.epoch_index(), 20u);
}

TEST(Bds, ColoringAlternativesAllCorrect) {
  for (const auto algorithm :
       {txn::ColoringAlgorithm::kGreedy, txn::ColoringAlgorithm::kWelshPowell,
        txn::ColoringAlgorithm::kDsatur}) {
    SimConfig config = SmallConfig("bds");
    config.coloring = algorithm;
    config.rounds = 800;
    Simulation sim(config);
    const auto result = sim.Run();
    ExpectDrainedRunInvariants(sim, result, true);
  }
}

TEST(Bds, BalanceConservationUnderTransfers) {
  // The touch workload deposits 0 everywhere, so total balance must stay at
  // accounts * initial_balance.
  SimConfig config = SmallConfig("bds");
  Simulation sim(config);
  sim.Run();
  chain::Balance total = 0;
  for (ShardId shard = 0; shard < config.shards; ++shard) {
    total += sim.ledger().store(shard).TotalBalance();
  }
  // Only materialized accounts count; every materialized account must still
  // hold the initial balance (deposit 0 is a no-op write).
  std::size_t materialized = 0;
  for (ShardId shard = 0; shard < config.shards; ++shard) {
    materialized += sim.ledger().store(shard).materialized_accounts();
  }
  EXPECT_EQ(total, static_cast<chain::Balance>(materialized) *
                       config.initial_balance);
}

}  // namespace
}  // namespace stableshard
