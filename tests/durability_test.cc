// Durability subsystem tests: WAL record framing and torn-write semantics,
// checkpoint sections and their per-shard damage fallback, the liveness
// state machine, the fault-plan grammar, and the end-to-end crash/recovery
// (churn) goldens — restored state bit-identical, accounting identity
// intact, churn commits exactly the fault-free counts, and everything
// bit-identical across workers 1/4 x pipeline on/off. The *Hammer suites
// run the same churn under larger pools (the TSan CI target).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "chain/account_map.h"
#include "core/commit_ledger.h"
#include "durability/checkpoint.h"
#include "durability/encoding.h"
#include "durability/fault_plan.h"
#include "durability/liveness.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "sim_test_util.h"
#include "txn/txn_factory.h"

namespace stableshard::durability {
namespace {

chain::Action Deposit(AccountId account, chain::Balance amount) {
  return chain::Action{account, chain::ActionKind::kDeposit, amount};
}

WalRecord CommitRecord(std::uint64_t seq, TxnId txn, Round round) {
  WalRecord record;
  record.type = WalRecordType::kCommit;
  record.seq = seq;
  record.txn = txn;
  record.round = round;
  record.payload_digest = 0x1234'5678'9abc'def0ULL + seq;
  record.actions = {Deposit(7, 100), {11, chain::ActionKind::kWithdraw, 40}};
  return record;
}

TEST(WalRecordTest, CommitAndAbortRoundtrip) {
  Blob wal;
  const WalRecord commit = CommitRecord(1, 42, 9);
  AppendWalRecord(wal, commit);
  WalRecord abort;
  abort.type = WalRecordType::kAbort;
  abort.seq = 2;
  abort.txn = 43;
  abort.round = 10;
  AppendWalRecord(wal, abort);

  WalReader reader(wal);
  WalRecord out;
  ASSERT_EQ(reader.Next(&out), WalReader::Status::kRecord);
  EXPECT_EQ(out.type, WalRecordType::kCommit);
  EXPECT_EQ(out.seq, 1u);
  EXPECT_EQ(out.txn, 42u);
  EXPECT_EQ(out.round, 9u);
  EXPECT_EQ(out.payload_digest, commit.payload_digest);
  ASSERT_EQ(out.actions.size(), 2u);
  EXPECT_EQ(out.actions[0].account, 7u);
  EXPECT_EQ(out.actions[0].kind, chain::ActionKind::kDeposit);
  EXPECT_EQ(out.actions[0].amount, 100);
  EXPECT_EQ(out.actions[1].kind, chain::ActionKind::kWithdraw);

  ASSERT_EQ(reader.Next(&out), WalReader::Status::kRecord);
  EXPECT_EQ(out.type, WalRecordType::kAbort);
  EXPECT_EQ(out.seq, 2u);
  EXPECT_TRUE(out.actions.empty());
  EXPECT_EQ(out.payload_digest, 0u);
  EXPECT_EQ(reader.Next(&out), WalReader::Status::kEndOfLog);
  EXPECT_EQ(reader.offset(), wal.size());
}

TEST(WalRecordTest, TornTailStopsAtLastCompleteRecord) {
  Blob wal;
  AppendWalRecord(wal, CommitRecord(1, 10, 1));
  AppendWalRecord(wal, CommitRecord(2, 11, 2));
  const std::size_t two_records = wal.size();
  AppendWalRecord(wal, CommitRecord(3, 12, 3));

  // Every possible torn length of the third record — from "frame header
  // cut mid-u32" to "one payload byte missing" — must yield exactly the
  // two complete records and a kTornTail at their boundary. (cut ==
  // two_records would be a clean kEndOfLog: no torn bytes at all.)
  for (std::size_t cut = two_records + 1; cut < wal.size(); ++cut) {
    Blob torn(wal.begin(), wal.begin() + cut);
    WalReader reader(torn);
    WalRecord out;
    EXPECT_EQ(reader.Next(&out), WalReader::Status::kRecord);
    EXPECT_EQ(reader.Next(&out), WalReader::Status::kRecord);
    EXPECT_EQ(out.seq, 2u);
    EXPECT_EQ(reader.Next(&out), WalReader::Status::kTornTail);
    EXPECT_EQ(reader.offset(), two_records);
    // Torn is sticky: re-polling must not advance or reclassify.
    EXPECT_EQ(reader.Next(&out), WalReader::Status::kTornTail);
  }
}

TEST(WalRecordTest, CorruptPayloadDetected) {
  Blob wal;
  AppendWalRecord(wal, CommitRecord(1, 10, 1));
  // Flip one payload byte: the frame is complete, so this is corruption,
  // never a torn tail.
  wal.back() ^= 0x40;
  WalReader reader(wal);
  WalRecord out;
  EXPECT_EQ(reader.Next(&out), WalReader::Status::kCorrupt);
  EXPECT_EQ(reader.offset(), 0u);
}

TEST(WalRecordTest, CorruptChecksumDetected) {
  Blob wal;
  AppendWalRecord(wal, CommitRecord(1, 10, 1));
  // Flip a checksum byte (frame bytes 4..11): payload intact, checksum
  // mismatched — still corruption, not a tail.
  wal[6] ^= 0x01;
  WalReader reader(wal);
  WalRecord out;
  EXPECT_EQ(reader.Next(&out), WalReader::Status::kCorrupt);
}

TEST(WalManagerTest, PartitionedPersistMatchesSerial) {
  // The same staged records persisted through the sealed-partition triple
  // (parts applied out of order) and through PersistAll must produce
  // byte-identical lanes and the same durable sequence numbers.
  MemoryStorage serial_storage(5);
  MemoryStorage pipelined_storage(5);
  WalManager serial(5, &serial_storage);
  WalManager pipelined(5, &pipelined_storage);
  for (WalManager* wal : {&serial, &pipelined}) {
    for (ShardId shard = 0; shard < 5; ++shard) {
      wal->StageCommit(shard, /*txn=*/100 + shard, /*round=*/3,
                       /*payload_digest=*/777, {Deposit(shard, 5)});
      if (shard % 2 == 0) wal->StageAbort(shard, 200 + shard, 3);
    }
  }

  std::vector<ShardId> durable_order;
  pipelined.set_on_durable(
      [&durable_order](ShardId shard, std::uint64_t seq, Round round) {
        durable_order.push_back(shard);
        EXPECT_EQ(round, 3u);
        EXPECT_GE(seq, 1u);
      });

  serial.PersistAll(3);
  pipelined.Seal(3, /*parts=*/3);
  pipelined.PersistSealedPartition(2);
  pipelined.PersistSealedPartition(0);
  pipelined.PersistSealedPartition(1);
  pipelined.FinishSealedRound();

  for (ShardId shard = 0; shard < 5; ++shard) {
    EXPECT_EQ(serial_storage.wal[shard], pipelined_storage.wal[shard]);
    EXPECT_EQ(serial.durable_seq(shard), pipelined.durable_seq(shard));
  }
  EXPECT_EQ(serial.records_persisted(), pipelined.records_persisted());
  // Callbacks fire serially in shard order whatever the partition order.
  EXPECT_EQ(durable_order, (std::vector<ShardId>{0, 1, 2, 3, 4}));
}

TEST(CheckpointTest, SectionRoundtrip) {
  std::vector<ShardImage> images(3);
  for (ShardId shard = 0; shard < 3; ++shard) {
    images[shard].shard = shard;
    images[shard].wal_seq = 10 + shard;
    images[shard].last_commit_round = 7;
    images[shard].default_balance = 1000;
    images[shard].balances = {{shard, 900}, {shard + 3, 1100}};
    images[shard].blocks = {{/*txn=*/50 + shard, /*commit_round=*/7,
                             /*payload_digest=*/0xabcdefULL}};
  }
  const Blob blob = EncodeCheckpoint(/*round=*/7, images);
  EXPECT_EQ(CheckpointRound(blob), 7u);

  for (ShardId shard = 0; shard < 3; ++shard) {
    ShardImage out;
    ASSERT_EQ(DecodeCheckpointShard(blob, shard, &out), SectionStatus::kOk);
    EXPECT_EQ(out.shard, shard);
    EXPECT_EQ(out.wal_seq, 10u + shard);
    EXPECT_EQ(out.last_commit_round, 7u);
    EXPECT_EQ(out.balances, images[shard].balances);
    ASSERT_EQ(out.blocks.size(), 1u);
    EXPECT_EQ(out.blocks[0].txn, 50u + shard);
  }
}

TEST(CheckpointTest, LostTrailingPartitionDegradesPerShard) {
  std::vector<ShardImage> images(3);
  for (ShardId shard = 0; shard < 3; ++shard) {
    images[shard].shard = shard;
    images[shard].balances = {{shard, 42}};
  }
  Blob blob = EncodeCheckpoint(/*round=*/5, images);
  // Tear off the last shard's section mid-frame: a checkpoint write that
  // died before the trailing partition hit the medium.
  blob.resize(blob.size() - 9);

  ShardImage out;
  EXPECT_EQ(DecodeCheckpointShard(blob, 0, &out), SectionStatus::kOk);
  EXPECT_EQ(DecodeCheckpointShard(blob, 1, &out), SectionStatus::kOk);
  EXPECT_EQ(DecodeCheckpointShard(blob, 2, &out), SectionStatus::kTruncated);
}

TEST(CheckpointTest, BadMagicAndFlippedSectionAreCorrupt) {
  std::vector<ShardImage> images(2);
  images[0].shard = 0;
  images[1].shard = 1;
  Blob blob = EncodeCheckpoint(/*round=*/5, images);

  Blob bad_magic = blob;
  bad_magic[0] ^= 0xff;
  ShardImage out;
  EXPECT_EQ(DecodeCheckpointShard(bad_magic, 0, &out),
            SectionStatus::kCorrupt);
  EXPECT_EQ(CheckpointRound(bad_magic), kNoRound);

  Blob flipped = blob;
  flipped.back() ^= 0x01;  // inside the last shard's payload
  EXPECT_EQ(DecodeCheckpointShard(flipped, 1, &out), SectionStatus::kCorrupt);
  // Earlier sections are independently framed and stay readable.
  EXPECT_EQ(DecodeCheckpointShard(flipped, 0, &out), SectionStatus::kOk);
}

TEST(LivenessTest, FullCycleAndCounters) {
  LivenessTracker tracker(4);
  EXPECT_TRUE(tracker.AllOnline());
  EXPECT_EQ(tracker.online_count(), 4u);

  tracker.Crash(2);
  EXPECT_FALSE(tracker.AllOnline());
  EXPECT_EQ(tracker.online_count(), 3u);
  EXPECT_EQ(tracker.state(2), ShardLiveness::kCrashed);
  EXPECT_EQ(tracker.state(0), ShardLiveness::kOnline);

  tracker.BeginRecovery(2);
  EXPECT_EQ(tracker.state(2), ShardLiveness::kRecovering);
  tracker.BeginCatchUp(2);
  EXPECT_EQ(tracker.state(2), ShardLiveness::kCatchUp);
  tracker.Rejoin(2);
  EXPECT_TRUE(tracker.AllOnline());
  EXPECT_EQ(tracker.crash_count(), 1u);

  // Rejoin is also legal straight from kRecovering.
  tracker.Crash(0);
  tracker.BeginRecovery(0);
  tracker.Rejoin(0);
  EXPECT_TRUE(tracker.AllOnline());
  EXPECT_EQ(tracker.crash_count(), 2u);

  EXPECT_STREQ(ToString(ShardLiveness::kOnline), "online");
  EXPECT_STREQ(ToString(ShardLiveness::kCrashed), "crashed");
  EXPECT_STREQ(ToString(ShardLiveness::kRecovering), "recovering");
  EXPECT_STREQ(ToString(ShardLiveness::kCatchUp), "catch-up");
}

TEST(LivenessDeathTest, IllegalTransitionsAbort) {
  LivenessTracker tracker(2);
  EXPECT_DEATH(tracker.BeginRecovery(0), "illegal liveness transition");
  EXPECT_DEATH(tracker.Rejoin(0), "illegal liveness transition");
  tracker.Crash(1);
  EXPECT_DEATH(tracker.Crash(1), "illegal liveness transition");
  EXPECT_DEATH(tracker.BeginCatchUp(1), "illegal liveness transition");
}

TEST(FaultPlanTest, ParsesWellFormedSpecs) {
  FaultPlan plan;
  std::string error;
  EXPECT_TRUE(ParseFaultPlan("", &plan, &error));
  EXPECT_TRUE(plan.empty());

  EXPECT_TRUE(ParseFaultPlan("5@50+12,23@110+20", &plan, &error));
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.events[0].shard, 5u);
  EXPECT_EQ(plan.events[0].crash_round, 50u);
  EXPECT_EQ(plan.events[0].down_rounds, 12u);
  EXPECT_EQ(plan.events[1].shard, 23u);
  EXPECT_EQ(plan.events[1].crash_round, 110u);
  EXPECT_EQ(plan.events[1].down_rounds, 20u);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  FaultPlan plan;
  std::string error;
  const char* bad[] = {
      "banana",       // no shard number
      "5",            // missing '@'
      "5@",           // missing round
      "5@50",         // missing '+'
      "5@50+",        // missing down count
      "5@50+0",       // down must be >= 1
      "5@50+3,4@50+3",  // crash rounds not strictly increasing
      "5@60+3,4@50+3",  // decreasing
      "5@50+3,",      // trailing separator
      "5@50+3;6@60+3",  // wrong separator
      "99999999999999999999@1+1",  // overflow
  };
  for (const char* spec : bad) {
    EXPECT_FALSE(ParseFaultPlan(spec, &plan, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

// ---------------------------------------------------------------------------
// Ledger-level recovery: drive a CommitLedger with an attached WAL, crash a
// shard, replay, and compare canonical images.

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest()
      : map_(chain::AccountMap::RoundRobin(4, 8)),
        ledger_(map_, /*initial_balance=*/1000),
        storage_(4),
        wal_(4, &storage_),
        factory_(map_) {
    ledger_.AttachWal(&wal_);
  }

  /// Commit one round's worth of transfers and persist it, serial-path.
  void CommitRound(Round round) {
    const auto txn = factory_.MakeTransfer(
        /*home=*/static_cast<ShardId>(round % 4), /*injected=*/round,
        /*from=*/round % 8, /*to=*/(round + 1) % 8, /*amount=*/10,
        /*min_balance=*/0);
    ledger_.RegisterInjection(txn);
    for (const auto& sub : txn.subs()) {
      ledger_.ApplyConfirmDeferred(txn.id(), sub, /*commit=*/true, round);
    }
    ledger_.FlushRound(round);
  }

  Blob ImageOf(ShardId shard) {
    Blob blob;
    AppendShardImage(blob,
                     CaptureShardImage(ledger_, shard, wal_.durable_seq(shard)));
    return blob;
  }

  chain::AccountMap map_;
  core::CommitLedger ledger_;
  MemoryStorage storage_;
  WalManager wal_;
  txn::TxnFactory factory_;
};

TEST_F(RecoveryTest, ReplayFromGenesisRestoresBitIdenticalState) {
  for (Round round = 1; round <= 12; ++round) CommitRound(round);
  for (ShardId shard = 0; shard < 4; ++shard) {
    const Blob before = ImageOf(shard);
    const RecoveryStats stats = RecoverShard(ledger_, shard, storage_);
    EXPECT_FALSE(stats.used_checkpoint);
    EXPECT_GT(stats.replayed_records, 0u);
    EXPECT_GT(stats.replayed_bytes, 0u);
    EXPECT_EQ(ImageOf(shard), before);
    EXPECT_TRUE(ledger_.chains()[shard].Verify());
  }
}

TEST_F(RecoveryTest, CheckpointBoundsReplayAndStateStillMatches) {
  for (Round round = 1; round <= 6; ++round) CommitRound(round);
  WriteCheckpoint(ledger_, wal_, storage_, /*round=*/6);
  for (Round round = 7; round <= 12; ++round) CommitRound(round);

  const Blob full_wal_bytes = ImageOf(1);
  RecoveryStats stats = RecoverShard(ledger_, 1, storage_);
  EXPECT_TRUE(stats.used_checkpoint);
  EXPECT_EQ(ImageOf(1), full_wal_bytes);

  // The checkpoint horizon really bounds the window: replaying with the
  // checkpoint must touch strictly fewer bytes than genesis replay.
  storage_.checkpoints.clear();
  const RecoveryStats genesis = RecoverShard(ledger_, 1, storage_);
  EXPECT_GT(genesis.replayed_bytes, stats.replayed_bytes);
  EXPECT_EQ(ImageOf(1), full_wal_bytes);
}

TEST_F(RecoveryTest, DamagedNewestCheckpointFallsBackToOlder) {
  for (Round round = 1; round <= 4; ++round) CommitRound(round);
  WriteCheckpoint(ledger_, wal_, storage_, 4);
  for (Round round = 5; round <= 8; ++round) CommitRound(round);
  WriteCheckpoint(ledger_, wal_, storage_, 8);
  // The newest checkpoint lost its trailing bytes — every shard section
  // past the tear degrades to the older checkpoint, transparently.
  storage_.checkpoints.back().resize(storage_.checkpoints.back().size() / 4);

  const Blob before = ImageOf(3);
  const RecoveryStats stats = RecoverShard(ledger_, 3, storage_);
  EXPECT_TRUE(stats.used_checkpoint);
  EXPECT_EQ(ImageOf(3), before);
  EXPECT_TRUE(ledger_.chains()[3].Verify());
}

TEST_F(RecoveryTest, TornWalTailReplaysTheConsistentPrefix) {
  for (Round round = 1; round <= 8; ++round) CommitRound(round);
  // Ledger state includes the torn suffix, so capture the oracle by
  // replaying the untorn log into a twin ledger first.
  Blob& lane = storage_.wal[2];
  ASSERT_GT(lane.size(), 6u);
  lane.resize(lane.size() - 5);  // tear the final record mid-frame

  const RecoveryStats stats = RecoverShard(ledger_, 2, storage_);
  // The replayed prefix must itself be a fully consistent shard state:
  // the chain verifies even though the tail was lost.
  EXPECT_GT(stats.replayed_records, 0u);
  EXPECT_TRUE(ledger_.chains()[2].Verify());
  // And a second recovery over the same torn log is a fixed point.
  const Blob once = ImageOf(2);
  RecoverShard(ledger_, 2, storage_);
  EXPECT_EQ(ImageOf(2), once);
}

using RecoveryDeathTest = RecoveryTest;

TEST_F(RecoveryDeathTest, CorruptWalRecordIsUnrecoverable) {
  for (Round round = 1; round <= 4; ++round) CommitRound(round);
  Blob& lane = storage_.wal[1];
  ASSERT_FALSE(lane.empty());
  lane.back() ^= 0x20;  // complete frame, flipped payload bit
  EXPECT_DEATH(RecoverShard(ledger_, 1, storage_),
               "unrecoverable corruption");
}

TEST_F(RecoveryDeathTest, AttachWalTwiceAborts) {
  EXPECT_DEATH(ledger_.AttachWal(&wal_), "already");
}

}  // namespace
}  // namespace stableshard::durability

// ---------------------------------------------------------------------------
// Engine-level churn goldens (full simulations; the `sim` ctest label).

namespace stableshard {
namespace {

/// Durability-enabled variant of test::SmallConfig: WAL + checkpoint
/// cadence on. Fault specs are added per test.
core::SimConfig DurableConfig(const std::string& scheduler) {
  core::SimConfig config = test::SmallConfig(scheduler);
  config.wal = true;
  config.checkpoint_interval = 200;
  return config;
}

/// The two-event churn schedule used by the goldens. Crash rounds sit past
/// the commit-latency knee of both schedulers on the SmallConfig grid AND
/// off the checkpoint cadence (a crash at a multiple of
/// checkpoint_interval finds an image taken at that very boundary, so the
/// replay window is empty and the vacuity assertions below would trip).
const char* kChurnPlan = "3@850+10,11@1250+15";

class ChurnGoldenTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ChurnGoldenTest, RecoveryPreservesEveryProtocolOutcome) {
  const std::string scheduler = GetParam();
  const bool same_round = scheduler == "bds";

  core::SimConfig fault_free = DurableConfig(scheduler);
  core::SimConfig churn = fault_free;
  churn.faults = kChurnPlan;

  // Fault-free WAL-on baseline (serial).
  core::Simulation clean_sim(fault_free);
  const core::SimResult clean = clean_sim.Run();
  test::ExpectDrainedRunInvariants(clean_sim, clean, same_round);

  // Churn run: the engine SSHARD_CHECKs the restored image bit-identical
  // to the pre-crash snapshot and re-verifies the chain inside
  // ExecuteFault — reaching the end of Run() already proves the
  // bit-identity golden. On top: the run must drain with every invariant,
  // commit exactly the fault-free counts, and account every wall round.
  core::Simulation churn_sim(churn);
  const core::SimResult faulted = churn_sim.Run();
  test::ExpectDrainedRunInvariants(churn_sim, faulted, same_round);
  EXPECT_TRUE(churn_sim.liveness().AllOnline());
  EXPECT_EQ(churn_sim.liveness().crash_count(), 2u);

  EXPECT_EQ(faulted.injected, clean.injected);
  EXPECT_EQ(faulted.committed, clean.committed);
  EXPECT_EQ(faulted.aborted, clean.aborted);
  EXPECT_DOUBLE_EQ(faulted.avg_latency, clean.avg_latency);
  EXPECT_DOUBLE_EQ(faulted.p99_latency, clean.p99_latency);
  EXPECT_GT(faulted.recovery_rounds, 0u);
  EXPECT_GT(faulted.replay_bytes, 0u);
  EXPECT_GT(faulted.checkpoint_count, 0u);
  EXPECT_EQ(faulted.rounds_executed,
            clean.rounds_executed + faulted.recovery_rounds);
}

TEST_P(ChurnGoldenTest, WalIsTransparentWithoutFaults) {
  // WAL on, no faults: the protocol outcome must not move a bit relative
  // to the WAL-off run of the same config.
  core::SimConfig off = test::SmallConfig(GetParam());
  const core::SimResult without = test::RunWithWorkers(off, 1);
  const core::SimResult with =
      test::RunWithWorkers(DurableConfig(GetParam()), 1);
  test::ExpectBitIdenticalProtocol(without, with);
  EXPECT_EQ(without.wal_bytes, 0u);
  EXPECT_GT(with.wal_bytes, 0u);
  EXPECT_GT(with.checkpoint_count, 0u);
}

TEST_P(ChurnGoldenTest, ChurnIsBitIdenticalAcrossWorkersAndPipeline) {
  core::SimConfig churn = DurableConfig(GetParam());
  churn.faults = kChurnPlan;
  const core::SimResult serial = test::RunWithWorkers(churn, 1);
  EXPECT_GT(serial.replay_bytes, 0u);

  core::SimConfig pipelined = churn;
  pipelined.pipeline = true;
  test::ExpectBitIdenticalResults(serial,
                                  test::RunWithWorkers(pipelined, 4));
  core::SimConfig unpipelined = churn;
  unpipelined.pipeline = false;
  test::ExpectBitIdenticalResults(serial,
                                  test::RunWithWorkers(unpipelined, 4));
}

INSTANTIATE_TEST_SUITE_P(Schedulers, ChurnGoldenTest,
                         ::testing::Values("bds", "fds"));

/// The TSan CI target: the same churn under larger pools, both epilogues.
/// Any data race between the crash/replay machinery (serial, between
/// rounds) and the pooled step/flush/persist paths shows up here.
class DurabilityChurnHammer : public ::testing::TestWithParam<const char*> {};

TEST_P(DurabilityChurnHammer, PooledChurnMatchesSerial) {
  core::SimConfig churn = DurableConfig(GetParam());
  churn.faults = kChurnPlan;
  const core::SimResult serial = test::RunWithWorkers(churn, 1);
  for (const std::uint32_t workers : {4u, 8u}) {
    for (const bool pipeline : {true, false}) {
      core::SimConfig config = churn;
      config.pipeline = pipeline;
      test::ExpectBitIdenticalResults(
          serial, test::RunWithWorkers(config, workers));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schedulers, DurabilityChurnHammer,
                         ::testing::Values("bds", "fds"));

}  // namespace
}  // namespace stableshard
