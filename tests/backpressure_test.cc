// Backpressure scheduler edge cases beyond the matrix harness's generic
// coverage (the matrix exercises "backpressure" on every strategy x
// topology with the default watermarks; these tests force the watermarks
// low enough that the admission gate actually engages):
//   - watermark hysteresis: a destination crossing high stays hot through
//     rounds whose signal sits between the watermarks, and clears only at
//     or below low;
//   - spill-queue drain-to-empty: a run that parked transactions still
//     drains completely once injection stops, with the accounting
//     identity and the full chain/serializability invariant bundle;
//   - invalid watermark config dies in the constructor (the CLI-level
//     exit-2 path is asserted end-to-end by the
//     cli_invalid_backpressure_exits_2 ctest check);
//   - bit-identity under engaged shedding: workers 1 vs 4, pipelined
//     epilogue on and off.
#include <gtest/gtest.h>

#include "chain/account_map.h"
#include "cluster/hierarchy.h"
#include "common/rng.h"
#include "consensus/backpressure_scheduler.h"
#include "core/commit_ledger.h"
#include "core/engine.h"
#include "net/metric.h"
#include "sim_test_util.h"
#include "txn/txn_factory.h"

namespace stableshard {
namespace {

using consensus::BackpressureConfig;
using consensus::BackpressureScheduler;
using test::ExpectBitIdenticalResults;
using test::RunWithWorkers;

/// A hot-destination config whose low watermarks make the gate engage in
/// bench-scale runs (the defaults are sized to stay out of the way).
core::SimConfig EngagedConfig() {
  core::SimConfig config;
  config.scheduler = "backpressure";
  config.strategy = "hot_destination";
  // Sustained saturation at the hot leader: shedding cuts queue peaks
  // under overload; near the stability boundary deferred-then-readmitted
  // arrivals just reshuffle epoch batches and the comparison is noise.
  config.zipf_theta = 1.5;
  config.topology = net::TopologyKind::kLine;
  config.shards = 16;
  config.accounts = 16;
  config.account_assignment = core::AccountAssignment::kRoundRobin;
  config.k = 4;
  config.rho = 0.45;
  config.burst_round = kNoRound;
  config.rounds = 400;
  config.drain_cap = 120000;
  config.seed = 17;
  config.backpressure_high = 12;
  config.backpressure_low = 3;
  return config;
}

/// Unit-level fixture: a BackpressureScheduler over a tiny uniform metric,
/// driven round-by-round by hand so the hot flags are observable between
/// rounds.
class BackpressureUnitTest : public ::testing::Test {
 protected:
  static constexpr ShardId kShards = 4;

  BackpressureUnitTest()
      : metric_(net::MakeMetric(net::TopologyKind::kUniform, kShards,
                                nullptr)),
        map_(chain::AccountMap::RoundRobin(kShards, kShards)),
        hierarchy_(cluster::Hierarchy::BuildLineShifted(*metric_)),
        ledger_(map_, 1'000'000),
        factory_(map_) {}

  std::unique_ptr<BackpressureScheduler> Make(std::uint64_t high,
                                              std::uint64_t low) {
    return std::make_unique<BackpressureScheduler>(
        *metric_, hierarchy_, ledger_, core::FdsConfig{},
        BackpressureConfig{high, low});
  }

  /// One transaction homed on `home` touching one account on `dest`,
  /// registered with the ledger exactly like the engine would.
  txn::Transaction Touch(ShardId home, ShardId dest, Round round) {
    const AccountId account = map_.AccountsOf(dest).front();
    txn::Transaction txn = factory_.MakeTouch(home, round, {account});
    ledger_.RegisterInjection(txn);
    return txn;
  }

  void StepOneRound(BackpressureScheduler& scheduler) {
    scheduler.Step(round_);
    ++round_;
  }

  std::unique_ptr<net::ShardMetric> metric_;
  chain::AccountMap map_;
  cluster::Hierarchy hierarchy_;
  core::CommitLedger ledger_;
  txn::TxnFactory factory_;
  Round round_ = 0;
};

TEST_F(BackpressureUnitTest, HysteresisCrossesHighThenClearsAtLow) {
  // high = 3, low = 0: three queued work items at one destination mark it
  // hot; it must stay hot while anything remains and clear only once the
  // signal reaches zero.
  auto scheduler = Make(/*high=*/3, /*low=*/0);

  // Round 0: burst 4 transactions all destined for (and homed on) shard 0.
  for (int i = 0; i < 4; ++i) {
    scheduler->Inject(Touch(/*home=*/0, /*dest=*/0, round_));
  }
  EXPECT_FALSE(scheduler->IsHot(0));  // no traffic observed yet
  StepOneRound(*scheduler);

  // The burst's batches and subtransactions are now in flight toward
  // shard 0's leader: within a couple of rounds the signal crosses high
  // and the shard must latch hot.
  bool went_hot = false;
  for (int i = 0; i < 6 && !went_hot; ++i) {
    StepOneRound(*scheduler);
    went_hot = scheduler->IsHot(0);
  }
  EXPECT_TRUE(went_hot) << "signal never crossed the high watermark";
  EXPECT_GE(scheduler->hot_transitions(), 1u);

  // While hot, injections homed on shard 0 must park, and an injection
  // homed on a still-cold shard must pass through (which shards besides 0
  // heated up depends on where the hierarchy placed the coordinating
  // leader, so the cold shard is found, not hard-coded).
  scheduler->Inject(Touch(/*home=*/0, /*dest=*/0, round_));
  EXPECT_EQ(scheduler->SpilledTxns(), 1u);
  ShardId cold = kShards;
  for (ShardId shard = 1; shard < kShards; ++shard) {
    if (!scheduler->IsHot(shard)) {
      cold = shard;
      break;
    }
  }
  ASSERT_LT(cold, kShards) << "every shard went hot in a 4-txn burst";
  scheduler->Inject(Touch(/*home=*/cold, /*dest=*/cold, round_));
  EXPECT_EQ(scheduler->SpilledTxns(), 1u);

  // Hysteresis: the flag holds (and holds the spill) until the backlog
  // fully drains to the low watermark, then clears and re-admits; after
  // that the whole system must go idle.
  for (int i = 0; i < 2000 && !scheduler->Idle(); ++i) {
    StepOneRound(*scheduler);
  }
  EXPECT_TRUE(scheduler->Idle());
  EXPECT_EQ(scheduler->SpilledTxns(), 0u);
  EXPECT_EQ(scheduler->readmitted_total(), 1u);
  // Flags clear at the *next* BeginRound after the signal dies, so give
  // the gate two empty rounds before asserting everything went cold.
  StepOneRound(*scheduler);
  StepOneRound(*scheduler);
  EXPECT_FALSE(scheduler->IsHot(0));
  EXPECT_EQ(scheduler->hot_shard_count(), 0u);
}

TEST_F(BackpressureUnitTest, ConsecutiveRoundCrossingsCountTransitions) {
  // high == low == 2 collapses the hysteresis band to a point: the flag
  // follows the signal round by round, so a pulsed load produces repeated
  // cold->hot transitions (each pulse latches, drains, clears).
  auto scheduler = Make(/*high=*/2, /*low=*/2);

  for (int pulse = 0; pulse < 3; ++pulse) {
    for (int i = 0; i < 3; ++i) {
      scheduler->Inject(Touch(/*home=*/0, /*dest=*/0, round_));
    }
    for (int i = 0; i < 400 && !scheduler->Idle(); ++i) {
      StepOneRound(*scheduler);
    }
    ASSERT_TRUE(scheduler->Idle()) << "pulse " << pulse << " never drained";
    StepOneRound(*scheduler);  // flags clear at the next BeginRound
    EXPECT_FALSE(scheduler->IsHot(0));
  }
  EXPECT_GE(scheduler->hot_transitions(), 3u);
}

TEST(BackpressureConfigDeathTest, LowAboveHighDies) {
  const auto metric =
      net::MakeMetric(net::TopologyKind::kUniform, 4, nullptr);
  const chain::AccountMap map = chain::AccountMap::RoundRobin(4, 4);
  const cluster::Hierarchy hierarchy =
      cluster::Hierarchy::BuildLineShifted(*metric);
  core::CommitLedger ledger(map, 1'000'000);
  EXPECT_DEATH(BackpressureScheduler(*metric, hierarchy, ledger,
                                     core::FdsConfig{},
                                     BackpressureConfig{/*high=*/4,
                                                        /*low=*/5}),
               "low <= high");
  EXPECT_DEATH(BackpressureScheduler(*metric, hierarchy, ledger,
                                     core::FdsConfig{},
                                     BackpressureConfig{/*high=*/0,
                                                        /*low=*/0}),
               "park every transaction");
}

TEST(BackpressureSim, SpillQueueDrainsToEmptyAtSimulationEnd) {
  const core::SimConfig config = EngagedConfig();
  core::Simulation sim(config);
  const core::SimResult result = sim.Run();

  // The gate must actually have engaged for this test to mean anything.
  const auto& scheduler =
      dynamic_cast<const BackpressureScheduler&>(sim.scheduler());
  ASSERT_GT(scheduler.deferred_total(), 0u)
      << "watermarks never engaged — the edge case is untested";
  EXPECT_GT(result.spill_peak, 0u);

  // Everything parked re-entered and resolved: spill empty, identity
  // intact, chains verify, commits serializable.
  EXPECT_EQ(scheduler.SpilledTxns(), 0u);
  EXPECT_EQ(scheduler.readmitted_total(), scheduler.deferred_total());
  EXPECT_EQ(result.injected,
            result.committed + result.aborted + result.unresolved);
  test::ExpectDrainedRunInvariants(sim, result,
                                   /*same_round_atomicity=*/false);
}

TEST(BackpressureSim, ShedsLeaderQueuePeakVersusFds) {
  // The tentpole claim at test scale: same workload, same seed — the
  // admission gate must strictly cut the leader-queue peak and commit
  // exactly as much as plain fds once both drain.
  core::SimConfig config = EngagedConfig();
  const core::SimResult backpressure = RunWithWorkers(config, 1);
  config.scheduler = "fds";
  const core::SimResult fds = RunWithWorkers(config, 1);

  ASSERT_TRUE(backpressure.drained);
  ASSERT_TRUE(fds.drained);
  EXPECT_EQ(backpressure.committed, fds.committed);
  EXPECT_LT(backpressure.max_leader_queue, fds.max_leader_queue);
}

TEST(BackpressureSim, BitIdenticalAcrossWorkersAndPipelineWhileShedding) {
  // The matrix asserts this for the default (rarely engaged) watermarks;
  // here the gate is engaged hard and the schedule still must not depend
  // on the worker count or the epilogue mode.
  core::SimConfig config = EngagedConfig();
  const core::SimResult serial = RunWithWorkers(config, 1);
  ASSERT_GT(serial.spill_peak, 0u);

  // ExpectBitIdenticalResults covers every SimResult field, including
  // the spill_peak / max_leader_queue columns this scheduler populates.
  const core::SimResult parallel = RunWithWorkers(config, 4);
  ExpectBitIdenticalResults(serial, parallel);

  config.pipeline = false;
  const core::SimResult unpipelined = RunWithWorkers(config, 4);
  ExpectBitIdenticalResults(serial, unpipelined);
}

}  // namespace
}  // namespace stableshard
