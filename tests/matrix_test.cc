// Scheduler x strategy x topology x injector-mode differential harness.
//
// The cross-product is enumerated from the live registries
// (core::SchedulerRegistry, adversary::StrategyRegistry), so a newly
// registered scheduler or workload is covered here with zero test edits,
// and every cell runs under both injector modes: the closed-loop adversary
// (the (rho, b) token buckets) and the open-loop arrival schedule
// (traffic/injector.h). Every cell must satisfy, after a capped drain:
//   - the accounting identity injected == committed + aborted + unresolved;
//   - liveness: the run drains (unresolved == 0) within the cap;
//   - differential determinism: worker_threads = 1 and 4 produce
//     bit-identical SimResult (the scheduler decomposition contract);
//   - conservation: no workload mints or destroys money (separate test).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "adversary/strategy_registry.h"
#include "chain/account_store.h"
#include "core/engine.h"
#include "core/scheduler_registry.h"
#include "sim_test_util.h"

namespace stableshard {
namespace {

using core::SimConfig;
using core::SimResult;
using test::ExpectBitIdenticalResults;
using test::RunWithWorkers;

// BDS (including the sharded-leader "bds_sharded" mode) is specified for
// the uniform model only (Algorithm 1; its constructor dies on non-uniform
// metrics). Every other scheduler must handle both matrix topologies.
bool SupportsTopology(const std::string& scheduler,
                      net::TopologyKind topology) {
  if (scheduler.rfind("bds", 0) == 0) {
    return topology == net::TopologyKind::kUniform;
  }
  return true;
}

// Small enough that the full cross-product stays fast (and ASan-friendly),
// large enough that every strategy is non-degenerate: pairwise_conflict
// needs s >= k(k+1)/2 = 6 for k = 3.
SimConfig MatrixConfig(const std::string& scheduler,
                       const std::string& strategy,
                       net::TopologyKind topology) {
  SimConfig config;
  config.scheduler = scheduler;
  config.strategy = strategy;
  config.topology = topology;
  config.shards = 12;
  config.accounts = 12;
  config.account_assignment = core::AccountAssignment::kRoundRobin;
  config.k = 3;
  config.rho = 0.02;
  config.burstiness = 10;
  config.rounds = 300;
  config.drain_cap = 120000;
  config.seed = 11;
  // The sharded/multi-root modes reduce to the legacy paths at their
  // default knob values; pin non-trivial fan-outs so the matrix actually
  // exercises the co-leader and multi-root code.
  config.bds_color_leaders = 4;
  config.fds_top_roots = 3;
  return config;
}

// One golden trace per topology: a closed-loop uniform_random run whose
// injection stream is captured by the engine's TraceWriter. The open-mode
// trace_replay cells replay it through every scheduler — record once,
// replay everywhere.
const std::string& GoldenTrace(net::TopologyKind topology) {
  static std::map<std::string, std::string>* cache =
      new std::map<std::string, std::string>;
  const std::string key = net::TopologyName(topology);
  const auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  const std::string path =
      ::testing::TempDir() + "matrix_golden_" + key + ".trace";
  SimConfig config = MatrixConfig("direct", "uniform_random", topology);
  config.trace_out = path;
  core::Simulation sim(config);
  const SimResult result = sim.Run();
  EXPECT_GT(result.injected, 0u);
  return (*cache)[key] = path;
}

TEST(Matrix, SchedulerStrategyTopologyCrossProduct) {
  const auto schedulers = core::SchedulerRegistry::Global().Names();
  const auto strategies = adversary::StrategyRegistry::Global().Names();
  // The in-tree registrations must all be present (more may be registered).
  ASSERT_GE(schedulers.size(), 3u);
  ASSERT_GE(strategies.size(), 8u);

  for (const bool open_loop : {false, true}) {
    for (const net::TopologyKind topology :
         {net::TopologyKind::kUniform, net::TopologyKind::kLine}) {
      for (const std::string& scheduler : schedulers) {
        if (!SupportsTopology(scheduler, topology)) continue;
        for (const std::string& strategy : strategies) {
          SCOPED_TRACE(std::string(open_loop ? "open" : "closed") + " x " +
                       scheduler + " x " + strategy + " x " +
                       net::TopologyName(topology));
          SimConfig config = MatrixConfig(scheduler, strategy, topology);
          if (strategy == "trace_replay") {
            // Replay needs a recorded schedule; the closed loop has none —
            // the open pass replays the per-topology golden trace instead.
            if (!open_loop) continue;
            config.trace = GoldenTrace(topology);
          } else if (open_loop) {
            config.arrival_rate = 0.4;
            config.arrival_burst = 6.0;
          }

          const SimResult serial = RunWithWorkers(config, 1);
          EXPECT_GT(serial.injected, 0u);
          EXPECT_EQ(serial.injected,
                    serial.committed + serial.aborted + serial.unresolved);
          EXPECT_TRUE(serial.drained) << "did not drain within the cap";
          EXPECT_EQ(serial.unresolved, 0u);
          if (open_loop) {
            // Open loop: every offered transaction was eventually injected
            // (the schedule drains through the drain phase if need be).
            EXPECT_GT(serial.offered_txns, 0u);
            EXPECT_EQ(serial.offered_txns, serial.injected_txns);
          }

          const SimResult parallel = RunWithWorkers(config, 4);
          ExpectBitIdenticalResults(serial, parallel);
        }
      }
    }
  }
}

TEST(Matrix, BalanceConservationAcrossAllStrategies) {
  // Seeded conservation property: whatever the workload (including ones
  // with poisoned, aborting accesses), commits and aborts neither mint nor
  // destroy money — after a drained run every account still carries its
  // initial balance (the touch workloads deposit 0), so the total over the
  // materialized AccountStore entries plus the untouched remainder equals
  // accounts * initial_balance exactly.
  for (const std::string& strategy :
       adversary::StrategyRegistry::Global().Names()) {
    for (const std::uint64_t seed : {11ull, 12ull}) {
      SCOPED_TRACE(strategy + " seed " + std::to_string(seed));
      SimConfig config =
          MatrixConfig("direct", strategy, net::TopologyKind::kLine);
      if (strategy == "trace_replay") {
        config.trace = GoldenTrace(net::TopologyKind::kLine);
      }
      config.seed = seed;
      config.abort_probability = 0.25;  // exercise the abort path too
      core::Simulation sim(config);
      const SimResult result = sim.Run();
      ASSERT_TRUE(result.drained);

      chain::Balance total = 0;
      std::size_t materialized = 0;
      for (ShardId shard = 0; shard < config.shards; ++shard) {
        total += sim.ledger().store(shard).TotalBalance();
        materialized += sim.ledger().store(shard).materialized_accounts();
      }
      total += static_cast<chain::Balance>(config.accounts - materialized) *
               config.initial_balance;
      EXPECT_EQ(total, static_cast<chain::Balance>(config.accounts) *
                           config.initial_balance);
    }
  }
}

}  // namespace
}  // namespace stableshard
