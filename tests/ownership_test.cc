// Tests for the shard-ownership runtime checker (core/ownership.h).
//
// The checker is the Debug/ASan-build enforcement of the StepShard /
// FlushRoundPartition ownership contract: a worker touching a shard
// outside its claim must abort deterministically, with the shard id in
// the message — including *same-thread* cross-shard touches that no
// thread sanitizer can observe. Under NDEBUG the registry is an empty
// stub, so the death tests skip themselves (the Debug/ASan CI job is
// where they bite) and only the stub's compile/run-through is checked.
#include <gtest/gtest.h>

#include "core/bds.h"
#include "core/ownership.h"

namespace stableshard::core {
namespace {

#ifndef NDEBUG
constexpr bool kCheckerActive = true;
#else
constexpr bool kCheckerActive = false;
#endif

TEST(Ownership, SerialPhasePermitsEverything) {
  OwnershipRegistry registry(8);
  // No phase entered: any shard may be touched by any code.
  SSHARD_OWNED(registry, 0);
  SSHARD_OWNED(registry, 7);
  SSHARD_SERIAL_PHASE(registry);
}

TEST(Ownership, StepClaimCoversOwnShardOnly) {
  OwnershipRegistry registry(8);
  registry.BeginStepPhase();
  {
    OwnershipRegistry::ShardClaim claim(registry, 5);
    SSHARD_OWNED(registry, 5);  // own shard: fine
  }
  registry.EndParallelPhase();
  SSHARD_OWNED(registry, 3);  // back to serial: fine
}

TEST(Ownership, FlushRangeClaimCoversRange) {
  OwnershipRegistry registry(8);
  registry.BeginFlushPhase();
  {
    OwnershipRegistry::RangeClaim claim(registry, 2, 6);
    SSHARD_OWNED(registry, 2);
    SSHARD_OWNED(registry, 5);
  }
  registry.EndParallelPhase();
}

TEST(Ownership, ClaimsNest) {
  OwnershipRegistry registry(8);
  registry.BeginStepPhase();
  OwnershipRegistry::ShardClaim outer(registry, 1);
  {
    OwnershipRegistry::ShardClaim inner(registry, 2);
    SSHARD_OWNED(registry, 2);
  }
  // The outer claim is restored when the inner one unwinds.
  SSHARD_OWNED(registry, 1);
}

using OwnershipDeath = ::testing::Test;

TEST(OwnershipDeath, CrossShardTouchAbortsWithShardId) {
  if (!kCheckerActive) GTEST_SKIP() << "checker compiled out under NDEBUG";
  OwnershipRegistry registry(8);
  registry.BeginStepPhase();
  OwnershipRegistry::ShardClaim claim(registry, 5);
  // StepShard(5) reaching into shard 1's state: same thread, no data race
  // for TSan to see — the checker must still abort, naming the shard.
  EXPECT_DEATH(SSHARD_OWNED(registry, 1),
               "cross-shard touch of shard 1 during the step phase");
}

TEST(OwnershipDeath, UnclaimedTouchDuringFlushAborts) {
  if (!kCheckerActive) GTEST_SKIP() << "checker compiled out under NDEBUG";
  OwnershipRegistry registry(8);
  registry.BeginFlushPhase();
  OwnershipRegistry::RangeClaim claim(registry, 0, 4);
  EXPECT_DEATH(SSHARD_OWNED(registry, 6),
               "cross-shard touch of shard 6 during the flush phase");
}

TEST(OwnershipDeath, SerialOnlyStateTouchedInParallelPhaseAborts) {
  if (!kCheckerActive) GTEST_SKIP() << "checker compiled out under NDEBUG";
  OwnershipRegistry registry(4);
  registry.BeginStepPhase();
  // e.g. Inject called mid-round: injection queues are serial-only.
  EXPECT_DEATH(SSHARD_SERIAL_PHASE(registry),
               "serial-phase-only state touched during the step phase");
}

TEST(OwnershipDeath, CrossCoLeaderTouchAborts) {
  if (!kCheckerActive) GTEST_SKIP() << "checker compiled out under NDEBUG";
  // The sharded-BDS ownership boundary: each color class belongs to its
  // co-leader shard (BdsScheduler::CoLeaderFor), and a co-leader stepping
  // into another class's in-flight state — the classic "drain a neighbor's
  // queue while I'm here" bug — must abort with the touched shard named.
  constexpr ShardId kShards = 16;
  constexpr ShardId kLeader = 3;
  constexpr std::uint32_t kColorLeaders = 4;
  const ShardId mine =
      BdsScheduler::CoLeaderFor(kLeader, /*color=*/0, kColorLeaders, kShards);
  const ShardId other =
      BdsScheduler::CoLeaderFor(kLeader, /*color=*/1, kColorLeaders, kShards);
  ASSERT_NE(mine, other);
  OwnershipRegistry registry(kShards);
  registry.BeginStepPhase();
  OwnershipRegistry::ShardClaim claim(registry, mine);
  SSHARD_OWNED(registry, mine);  // own color class: fine
  EXPECT_DEATH(SSHARD_OWNED(registry, other),
               "cross-shard touch of shard 5 during the step phase");
}

TEST(OwnershipDeath, PhaseResetClearsStaleClaims) {
  if (!kCheckerActive) GTEST_SKIP() << "checker compiled out under NDEBUG";
  OwnershipRegistry registry(8);
  registry.BeginStepPhase();
  {
    OwnershipRegistry::ShardClaim claim(registry, 3);
  }
  // The claim unwound: this thread owns nothing now, so touching the
  // previously-claimed shard must abort too.
  EXPECT_DEATH(SSHARD_OWNED(registry, 3),
               "cross-shard touch of shard 3 during the step phase");
}

}  // namespace
}  // namespace stableshard::core
