// Shard-parallel round loop tests: worker_threads = N must be bit-identical
// to worker_threads = 1 for every scheduler (the decomposition contract of
// core/scheduler.h), the pipelined epilogue (destination-partitioned flush
// + double-buffered outbox/journal + overlapped adversary generation) must
// be bit-identical to the serial EndRound, and parallel runs must satisfy
// the same drained-run invariants as serial ones.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/engine.h"
#include "sim_test_util.h"

namespace stableshard {
namespace {

using core::SimConfig;
using core::SimResult;
using core::Simulation;
using test::ExpectBitIdenticalResults;
using test::ExpectDrainedRunInvariants;
using test::RunWithWorkers;
using test::SmallConfig;

/// Run with an explicit pipelined-epilogue switch (RunWithWorkers leaves
/// the default, which is pipelined).
SimResult RunPipelined(SimConfig config, std::uint32_t workers,
                       bool pipeline) {
  config.worker_threads = workers;
  config.pipeline = pipeline;
  // Force the pool on: the test grids sit below the small-grid threshold,
  // and a silently serialized run would not exercise the pipeline at all.
  config.min_shards_per_worker = 1;
  Simulation sim(config);
  return sim.Run();
}

class ParallelDeterminism
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(ParallelDeterminism, MatchesSerialExecution) {
  const auto& [scheduler, seed] = GetParam();
  SimConfig config = SmallConfig(scheduler);
  config.seed = seed;
  config.rounds = 800;
  config.drain_cap = 60000;
  const SimResult serial = RunWithWorkers(config, 1);
  const SimResult parallel = RunWithWorkers(config, 4);
  ExpectBitIdenticalResults(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelDeterminism,
    ::testing::Combine(::testing::Values(std::string("bds"),
                                         std::string("fds"),
                                         std::string("direct")),
                       ::testing::Values(1ull, 2ull, 3ull)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::uint64_t>>&
           info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Pipelined-vs-serial bit-identity across the scheduler x strategy matrix:
// for every combination, workers = 1 (serial epilogue, no pool), workers =
// 4 with the pipelined epilogue and workers = 4 with it forced off must
// produce the same SimResult down to the last float bit.
class PipelinedMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(PipelinedMatrix, PipelinedAndSerialEpiloguesAgree) {
  const auto& [scheduler, strategy] = GetParam();
  SimConfig config = SmallConfig(scheduler);
  config.strategy = strategy;
  config.rounds = 300;
  config.drain_cap = 20000;
  const SimResult serial = RunWithWorkers(config, 1);
  const SimResult pipelined = RunPipelined(config, 4, /*pipeline=*/true);
  const SimResult unpipelined = RunPipelined(config, 4, /*pipeline=*/false);
  ExpectBitIdenticalResults(serial, pipelined);
  ExpectBitIdenticalResults(serial, unpipelined);
  EXPECT_GT(serial.injected, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SchedulerStrategy, PipelinedMatrix,
    ::testing::Combine(
        ::testing::Values(std::string("bds"), std::string("fds"),
                          std::string("direct")),
        ::testing::Values(std::string("uniform_random"),
                          std::string("hotspot"),
                          std::string("hot_destination"),
                          std::string("pairwise_conflict"))),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>&
           info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

TEST(ParallelEngine, PipelinedBurstAndDrainIdentical) {
  // A loaded burst followed by a long drain exercises both epilogue
  // regimes: heavy flush rounds (overlapped generation still running) and
  // drain rounds (no generation to overlap at all). Invariants must hold
  // and the pipeline must not perturb a bit.
  SimConfig config = SmallConfig("fds");
  config.rho = 0.02;
  config.burstiness = 400;
  config.rounds = 120;
  config.drain_cap = 60000;
  const SimResult serial = RunWithWorkers(config, 1);
  const SimResult pipelined = RunPipelined(config, 8, /*pipeline=*/true);
  ExpectBitIdenticalResults(serial, pipelined);

  config.worker_threads = 8;
  config.min_shards_per_worker = 1;
  Simulation sim(config);
  const SimResult result = sim.Run();
  EXPECT_GT(result.injected, 0u);
  ExpectDrainedRunInvariants(sim, result, /*same_round_atomicity=*/false);
}

TEST(ParallelEngine, PipelinedHandoffHammer) {
  // TSan target: maximize contention on the double-buffered handoff — an
  // oversubscribed pool (8 workers, 1..few cores, 8 shards) so flush
  // partitions, the StepShard fan-out of the next round and the overlapped
  // generation interleave as wildly as the OS allows, across many rounds
  // and a hot workload that keeps every lane and journal busy.
  for (const std::uint64_t seed : {11ull, 12ull}) {
    SimConfig config = SmallConfig("fds");
    config.shards = 8;
    config.accounts = 8;
    config.rho = 0.4;
    config.burstiness = 200;
    config.rounds = 400;
    config.drain_cap = 20000;
    config.seed = seed;
    const SimResult serial = RunWithWorkers(config, 1);
    const SimResult hammered = RunPipelined(config, 8, /*pipeline=*/true);
    ExpectBitIdenticalResults(serial, hammered);
  }
}

TEST(ParallelEngine, DrainedInvariantsHoldUnderThreads) {
  for (const char* scheduler : {"bds", "fds"}) {
    SimConfig config = SmallConfig(scheduler);
    config.worker_threads = 4;
    config.min_shards_per_worker = 1;
    config.rounds = 800;
    Simulation sim(config);
    const auto result = sim.Run();
    EXPECT_GT(result.injected, 0u);
    ExpectDrainedRunInvariants(sim, result,
                               /*same_round_atomicity=*/scheduler ==
                                   std::string("bds"));
  }
}

TEST(ParallelEngine, PinnedModeIdenticalUnderThreads) {
  // The pinned commit mode exercises the retract handshake; it must be
  // thread-count-invariant too.
  SimConfig config = SmallConfig("fds");
  config.fds_pipelined = false;
  config.rounds = 600;
  const SimResult serial = RunWithWorkers(config, 1);
  const SimResult parallel = RunWithWorkers(config, 3);
  ExpectBitIdenticalResults(serial, parallel);
}

TEST(ParallelEngine, LargeScaleLineDeterministicAt1024Shards) {
  // The ROADMAP s = 1024 acceptance: a 1024-shard line simulation must be
  // bit-identical between worker_threads = 1 and 8, and the lazy network
  // ring must have allocated nothing at construction (the former dense
  // table held (Diameter + 2) * s ~ 1M buckets here). Kept cheap for TSan:
  // few rounds, a radius-bounded workload that drains quickly.
  SimConfig config;
  config.scheduler = "direct";
  config.topology = net::TopologyKind::kLine;
  config.shards = 1024;
  config.accounts = 1024;
  config.k = 4;
  config.strategy = "local";
  config.local_radius = 8;
  config.rho = 0.05;
  config.burstiness = 200;
  config.rounds = 40;
  config.drain_cap = 20000;
  config.seed = 5;

  {
    Simulation probe(config);
    const net::RingMemory idle = probe.scheduler().NetworkMemory();
    EXPECT_EQ(idle.allocated_buckets, 0u);
    EXPECT_EQ(idle.dense_bucket_equivalent, (1023u + 2u) * 1024u);
  }

  const SimResult serial = RunWithWorkers(config, 1);
  const SimResult parallel = RunWithWorkers(config, 8);
  EXPECT_GT(serial.injected, 0u);
  EXPECT_TRUE(serial.drained);
  ExpectBitIdenticalResults(serial, parallel);
}

TEST(ParallelEngine, OversubscribedPoolStillIdentical) {
  // More workers than shards (and than cores): scheduling order varies
  // wildly, results must not.
  SimConfig config = SmallConfig("bds");
  config.shards = 4;
  config.accounts = 4;
  config.rounds = 500;
  const SimResult serial = RunWithWorkers(config, 1);
  const SimResult parallel = RunWithWorkers(config, 8);
  ExpectBitIdenticalResults(serial, parallel);
}

}  // namespace
}  // namespace stableshard
