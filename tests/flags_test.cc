// Unit tests for the command-line flag parser used by simulate_cli, plus
// the SimConfig knob validators the CLIs call before construction (the
// exit-2 path; the aborting constructor checks are covered by the
// schedulers' own tests).
#include <gtest/gtest.h>

#include "common/flags.h"
#include "core/config.h"

namespace stableshard {
namespace {

Flags ParseAll(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  Flags flags;
  EXPECT_TRUE(flags.Parse(static_cast<int>(args.size()), args.data()));
  return flags;
}

TEST(Flags, EqualsSyntax) {
  const auto flags = ParseAll({"--rho=0.15", "--shards=64", "--name=x"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("rho", 0), 0.15);
  EXPECT_EQ(flags.GetInt("shards", 0), 64);
  EXPECT_EQ(flags.GetString("name", ""), "x");
}

TEST(Flags, SpaceSyntax) {
  const auto flags = ParseAll({"--rho", "0.2", "--scheduler", "fds"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("rho", 0), 0.2);
  EXPECT_EQ(flags.GetString("scheduler", ""), "fds");
}

TEST(Flags, BooleanFlags) {
  const auto flags = ParseAll({"--pinned", "--verbose", "--opt=false"});
  EXPECT_TRUE(flags.GetBool("pinned", false));
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.GetBool("opt", true));
  EXPECT_TRUE(flags.GetBool("absent", true));
  EXPECT_FALSE(flags.GetBool("absent", false));
}

TEST(Flags, Positional) {
  const auto flags = ParseAll({"run", "--x=1", "file.csv"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"run", "file.csv"}));
}

TEST(Flags, Fallbacks) {
  const auto flags = ParseAll({});
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_EQ(flags.GetString("missing", "d"), "d");
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(Flags, UnreadDetection) {
  const auto flags = ParseAll({"--used=1", "--typo=2"});
  EXPECT_EQ(flags.GetInt("used", 0), 1);
  const auto unread = flags.UnreadFlags();
  ASSERT_EQ(unread.size(), 1u);
  EXPECT_EQ(unread[0], "typo");
}

TEST(Flags, BareDashesRejected) {
  const char* args[] = {"prog", "--"};
  Flags flags;
  EXPECT_FALSE(flags.Parse(2, args));
  EXPECT_FALSE(flags.error().empty());
}

TEST(Flags, NonNumericIntIsAnError) {
  const auto flags = ParseAll({"--rounds=abc"});
  EXPECT_TRUE(flags.ok());  // errors are recorded lazily, at read time
  EXPECT_EQ(flags.GetInt("rounds", 7), 7);  // fallback, never garbage
  EXPECT_FALSE(flags.ok());
  EXPECT_NE(flags.error().find("rounds"), std::string::npos);
  EXPECT_NE(flags.error().find("abc"), std::string::npos);
}

TEST(Flags, TrailingGarbageIntIsAnError) {
  const auto flags = ParseAll({"--shards=12x", "--seed="});
  EXPECT_EQ(flags.GetInt("shards", 3), 3);
  EXPECT_FALSE(flags.ok());
  // Empty values are misparses too (e.g. a stray "--seed=").
  EXPECT_EQ(flags.GetInt("seed", 5), 5);
}

TEST(Flags, IntOverflowIsAnError) {
  const auto flags = ParseAll({"--n=99999999999999999999999999"});
  EXPECT_EQ(flags.GetInt("n", 1), 1);
  EXPECT_FALSE(flags.ok());
}

TEST(Flags, ValidNegativeAndSignedIntsParse) {
  const auto flags = ParseAll({"--a=-5", "--b=+17"});
  EXPECT_EQ(flags.GetInt("a", 0), -5);
  EXPECT_EQ(flags.GetInt("b", 0), 17);
  EXPECT_TRUE(flags.ok());
}

TEST(Flags, NonNumericDoubleIsAnError) {
  const auto flags = ParseAll({"--rho=fast", "--b=1.5.2"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("rho", 0.25), 0.25);
  EXPECT_FALSE(flags.ok());
  EXPECT_NE(flags.error().find("rho"), std::string::npos);
  EXPECT_DOUBLE_EQ(flags.GetDouble("b", 2.0), 2.0);
  // First error wins: the message still names rho.
  EXPECT_NE(flags.error().find("rho"), std::string::npos);
}

TEST(Flags, ScientificNotationDoubleParses) {
  const auto flags = ParseAll({"--rho=1e-2"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("rho", 0), 0.01);
  EXPECT_TRUE(flags.ok());
}

TEST(Flags, UintRejectsNegativeValues) {
  // strtoull would silently wrap "-1" to 2^64 - 1: --rounds=-1 must be a
  // hard error, not an effectively-infinite simulation.
  const auto flags = ParseAll({"--rounds=-1", "--shards=42"});
  EXPECT_EQ(flags.GetUint("shards", 0), 42u);
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.GetUint("rounds", 7), 7u);
  EXPECT_FALSE(flags.ok());
  EXPECT_NE(flags.error().find("non-negative"), std::string::npos);
}

TEST(Flags, DoubleRejectsNanAndInf) {
  const auto flags = ParseAll({"--rho=nan"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("rho", 0.1), 0.1);
  EXPECT_FALSE(flags.ok());
  const auto flags2 = ParseAll({"--b=inf"});
  EXPECT_DOUBLE_EQ(flags2.GetDouble("b", 500.0), 500.0);
  EXPECT_FALSE(flags2.ok());
}

TEST(Flags, DoubleUnderflowIsNotAnErrorButOverflowIs) {
  const auto flags = ParseAll({"--tiny=1e-320", "--huge=1e999"});
  // Underflow yields a usable denormal (glibc sets ERANGE anyway).
  EXPECT_GT(flags.GetDouble("tiny", -1.0), 0.0);
  EXPECT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("huge", 2.5), 2.5);
  EXPECT_FALSE(flags.ok());
}

TEST(Flags, MalformedBoolIsAnError) {
  const auto flags = ParseAll({"--opt=maybe"});
  EXPECT_TRUE(flags.GetBool("opt", true));  // fallback
  EXPECT_FALSE(flags.ok());
  EXPECT_NE(flags.error().find("boolean"), std::string::npos);
}

TEST(ConfigValidators, BdsColorLeaders) {
  // Zero co-leaders is an input error (the CLI exits 2 on false); every
  // positive count is valid — over-large values are clamped by the
  // scheduler, not rejected here.
  EXPECT_FALSE(core::ValidateBdsColorLeaders(0));
  EXPECT_TRUE(core::ValidateBdsColorLeaders(1));
  EXPECT_TRUE(core::ValidateBdsColorLeaders(4));
  EXPECT_TRUE(core::ValidateBdsColorLeaders(1u << 20));
}

TEST(ConfigValidators, FdsTopRoots) {
  EXPECT_FALSE(core::ValidateFdsTopRoots(0));
  EXPECT_TRUE(core::ValidateFdsTopRoots(1));
  EXPECT_TRUE(core::ValidateFdsTopRoots(8));
  EXPECT_TRUE(core::ValidateFdsTopRoots(1u << 20));
}

}  // namespace
}  // namespace stableshard
