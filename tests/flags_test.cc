// Unit tests for the command-line flag parser used by simulate_cli.
#include <gtest/gtest.h>

#include "common/flags.h"

namespace stableshard {
namespace {

Flags ParseAll(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  Flags flags;
  EXPECT_TRUE(flags.Parse(static_cast<int>(args.size()), args.data()));
  return flags;
}

TEST(Flags, EqualsSyntax) {
  const auto flags = ParseAll({"--rho=0.15", "--shards=64", "--name=x"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("rho", 0), 0.15);
  EXPECT_EQ(flags.GetInt("shards", 0), 64);
  EXPECT_EQ(flags.GetString("name", ""), "x");
}

TEST(Flags, SpaceSyntax) {
  const auto flags = ParseAll({"--rho", "0.2", "--scheduler", "fds"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("rho", 0), 0.2);
  EXPECT_EQ(flags.GetString("scheduler", ""), "fds");
}

TEST(Flags, BooleanFlags) {
  const auto flags = ParseAll({"--pinned", "--verbose", "--opt=false"});
  EXPECT_TRUE(flags.GetBool("pinned", false));
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.GetBool("opt", true));
  EXPECT_TRUE(flags.GetBool("absent", true));
  EXPECT_FALSE(flags.GetBool("absent", false));
}

TEST(Flags, Positional) {
  const auto flags = ParseAll({"run", "--x=1", "file.csv"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"run", "file.csv"}));
}

TEST(Flags, Fallbacks) {
  const auto flags = ParseAll({});
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_EQ(flags.GetString("missing", "d"), "d");
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(Flags, UnreadDetection) {
  const auto flags = ParseAll({"--used=1", "--typo=2"});
  EXPECT_EQ(flags.GetInt("used", 0), 1);
  const auto unread = flags.UnreadFlags();
  ASSERT_EQ(unread.size(), 1u);
  EXPECT_EQ(unread[0], "typo");
}

TEST(Flags, BareDashesRejected) {
  const char* args[] = {"prog", "--"};
  Flags flags;
  EXPECT_FALSE(flags.Parse(2, args));
  EXPECT_FALSE(flags.error().empty());
}

}  // namespace
}  // namespace stableshard
