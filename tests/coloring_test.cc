// Property tests for the conflict-graph colorings: every algorithm must
// produce a proper coloring with at most MaxDegree()+1 colors on random
// workloads of varying density — the Delta+1 guarantee is load-bearing for
// Lemma 1's epoch length bound.
#include <gtest/gtest.h>

#include <tuple>

#include "chain/account_map.h"
#include "common/arena.h"
#include "common/rng.h"
#include "txn/coloring.h"
#include "txn/conflict_graph.h"
#include "txn/txn_factory.h"

namespace stableshard::txn {
namespace {

struct ColoringCase {
  ColoringAlgorithm algorithm;
  ShardId shards;
  AccountId accounts;
  std::uint32_t k;
  std::size_t txn_count;
  std::uint64_t seed;
};

class ColoringProperty : public ::testing::TestWithParam<ColoringCase> {};

std::vector<Transaction> RandomWorkload(const chain::AccountMap& map,
                                        std::uint32_t k, std::size_t count,
                                        std::uint64_t seed) {
  Rng rng(seed);
  TxnFactory factory(map);
  std::vector<Transaction> txns;
  txns.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t span = 1 + rng.NextBounded(k);
    const auto picks = rng.SampleWithoutReplacement(map.account_count(), span);
    std::vector<AccountId> accounts(picks.begin(), picks.end());
    txns.push_back(factory.MakeTouch(
        static_cast<ShardId>(rng.NextBounded(map.shard_count())), 0,
        accounts));
  }
  return txns;
}

TEST_P(ColoringProperty, ProperAndWithinDeltaPlusOne) {
  const ColoringCase param = GetParam();
  const auto map =
      chain::AccountMap::RoundRobin(param.shards, param.accounts);
  const auto txns =
      RandomWorkload(map, param.k, param.txn_count, param.seed);
  std::vector<const Transaction*> view;
  for (const auto& txn : txns) view.push_back(&txn);

  for (const auto granularity :
       {ConflictGranularity::kAccount, ConflictGranularity::kShard}) {
    const ConflictGraph graph(view, granularity);
    const ColoringResult result = ColorGraph(graph, param.algorithm);
    EXPECT_TRUE(IsProperColoring(graph, result.color));
    EXPECT_LE(result.num_colors, graph.MaxDegree() + 1);
    EXPECT_EQ(result.color.size(), graph.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ColoringProperty,
    ::testing::Values(
        ColoringCase{ColoringAlgorithm::kGreedy, 8, 8, 3, 50, 1},
        ColoringCase{ColoringAlgorithm::kGreedy, 16, 64, 4, 200, 2},
        ColoringCase{ColoringAlgorithm::kGreedy, 64, 64, 8, 500, 3},
        ColoringCase{ColoringAlgorithm::kWelshPowell, 8, 8, 3, 50, 4},
        ColoringCase{ColoringAlgorithm::kWelshPowell, 16, 64, 4, 200, 5},
        ColoringCase{ColoringAlgorithm::kWelshPowell, 64, 64, 8, 500, 6},
        ColoringCase{ColoringAlgorithm::kDsatur, 8, 8, 3, 50, 7},
        ColoringCase{ColoringAlgorithm::kDsatur, 16, 64, 4, 200, 8},
        ColoringCase{ColoringAlgorithm::kDsatur, 64, 64, 8, 300, 9}),
    [](const ::testing::TestParamInfo<ColoringCase>& info) {
      const auto& p = info.param;
      std::string name = std::string(ToString(p.algorithm)) + "_s" +
                         std::to_string(p.shards) + "_n" +
                         std::to_string(p.txn_count) + "_seed" +
                         std::to_string(p.seed);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Coloring, CliqueNeedsNColors) {
  // k+1 transactions all touching account 0: a clique.
  const auto map = chain::AccountMap::RoundRobin(4, 4);
  TxnFactory factory(map);
  std::vector<Transaction> txns;
  for (int i = 0; i < 5; ++i) {
    txns.push_back(factory.MakeTouch(0, 0, {0}));
  }
  std::vector<const Transaction*> view;
  for (const auto& txn : txns) view.push_back(&txn);
  const ConflictGraph graph(view);
  for (const auto algorithm :
       {ColoringAlgorithm::kGreedy, ColoringAlgorithm::kWelshPowell,
        ColoringAlgorithm::kDsatur}) {
    const auto result = ColorGraph(graph, algorithm);
    EXPECT_EQ(result.num_colors, 5u) << ToString(algorithm);
  }
}

TEST(Coloring, IndependentSetNeedsOneColor) {
  const auto map = chain::AccountMap::RoundRobin(8, 8);
  TxnFactory factory(map);
  std::vector<Transaction> txns;
  for (AccountId a = 0; a < 8; ++a) {
    txns.push_back(factory.MakeTouch(0, 0, {a}));
  }
  std::vector<const Transaction*> view;
  for (const auto& txn : txns) view.push_back(&txn);
  const ConflictGraph graph(view);
  const auto result = ColorGraph(graph, ColoringAlgorithm::kGreedy);
  EXPECT_EQ(result.num_colors, 1u);
}

TEST(Coloring, EmptyGraphZeroColors) {
  const ConflictGraph graph({});
  const auto result = ColorGraph(graph, ColoringAlgorithm::kGreedy);
  EXPECT_EQ(result.num_colors, 0u);
  EXPECT_TRUE(IsProperColoring(graph, result.color));
}

TEST(Coloring, DsaturNeverWorseOnBipartite) {
  // Path graphs are 2-colorable; DSATUR finds 2 colors.
  const auto map = chain::AccountMap::RoundRobin(16, 16);
  TxnFactory factory(map);
  std::vector<Transaction> txns;
  // Chain: txn i shares account i with txn i+1.
  for (AccountId a = 0; a + 1 < 10; ++a) {
    txns.push_back(factory.MakeTouch(0, 0, {a, a + 1}));
  }
  std::vector<const Transaction*> view;
  for (const auto& txn : txns) view.push_back(&txn);
  const ConflictGraph graph(view);
  const auto result = ColorGraph(graph, ColoringAlgorithm::kDsatur);
  EXPECT_EQ(result.num_colors, 2u);
}

TEST(ShardCliqueColoring, MatchesGraphGuaranteeOnRandomBatches) {
  // The graph-free shard-clique coloring must be proper and within the
  // same Delta+1 guarantee as the explicit-graph greedy coloring.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const auto map = chain::AccountMap::RoundRobin(64, 64);
    const auto txns = RandomWorkload(map, 8, 400, seed);
    std::vector<const Transaction*> view;
    for (const auto& txn : txns) view.push_back(&txn);
    const ConflictGraph graph(view, ConflictGranularity::kShard);
    for (const auto algorithm : {ColoringAlgorithm::kGreedy,
                                 ColoringAlgorithm::kWelshPowell,
                                 ColoringAlgorithm::kDsatur}) {
      const auto result = ColorShardCliques(view, algorithm);
      EXPECT_TRUE(IsProperShardColoring(view, result.color));
      EXPECT_TRUE(IsProperColoring(graph, result.color));
      EXPECT_LE(result.num_colors, graph.MaxDegree() + 1);
    }
  }
}

TEST(ShardCliqueColoring, GreedyIdenticalToGraphGreedy) {
  // Same vertex order, same conflict relation => identical assignment.
  const auto map = chain::AccountMap::RoundRobin(16, 16);
  const auto txns = RandomWorkload(map, 4, 120, 9);
  std::vector<const Transaction*> view;
  for (const auto& txn : txns) view.push_back(&txn);
  const ConflictGraph graph(view, ConflictGranularity::kShard);
  const auto via_graph = ColorGraph(graph, ColoringAlgorithm::kGreedy);
  const auto via_cliques = ColorShardCliques(view, ColoringAlgorithm::kGreedy);
  EXPECT_EQ(via_graph.color, via_cliques.color);
  EXPECT_EQ(via_graph.num_colors, via_cliques.num_colors);
}

TEST(ShardCliqueColoring, LargeBurstStaysFast) {
  // 20000 transactions (a b=3000-style burst would be ~24000): the clique
  // coloring must handle it without materializing ~10^8 edges.
  const auto map = chain::AccountMap::RoundRobin(64, 64);
  const auto txns = RandomWorkload(map, 8, 20000, 11);
  std::vector<const Transaction*> view;
  for (const auto& txn : txns) view.push_back(&txn);
  const auto result = ColorShardCliques(view, ColoringAlgorithm::kGreedy);
  EXPECT_TRUE(IsProperShardColoring(view, result.color));
  EXPECT_GT(result.num_colors, 0u);
}

TEST(ShardCliqueColoring, EmptyInput) {
  const auto result = ColorShardCliques({}, ColoringAlgorithm::kGreedy);
  EXPECT_EQ(result.num_colors, 0u);
  EXPECT_TRUE(result.color.empty());
}

TEST(Coloring, SpilloverPastSixtyFourColors) {
  // 130 transactions all touching one account form K_130 and need exactly
  // 130 colors — which walks the color bitsets past word 0 (64 colors) and
  // through multiple spill words, covering the DSATUR saturation sets, the
  // shard-clique spill matrix, and IsProperShardColoring's tracking sets.
  const auto map = chain::AccountMap::RoundRobin(4, 4);
  TxnFactory factory(map);
  std::vector<Transaction> txns;
  for (int i = 0; i < 130; ++i) txns.push_back(factory.MakeTouch(0, 0, {0}));
  std::vector<const Transaction*> view;
  for (const auto& txn : txns) view.push_back(&txn);
  const ConflictGraph graph(view, ConflictGranularity::kShard);
  for (const auto algorithm :
       {ColoringAlgorithm::kGreedy, ColoringAlgorithm::kWelshPowell,
        ColoringAlgorithm::kDsatur}) {
    const auto result = ColorGraph(graph, algorithm);
    EXPECT_EQ(result.num_colors, 130u) << ToString(algorithm);
    EXPECT_TRUE(IsProperColoring(graph, result.color));
  }
  for (const auto algorithm :
       {ColoringAlgorithm::kGreedy, ColoringAlgorithm::kWelshPowell}) {
    const auto result = ColorShardCliques(view, algorithm);
    EXPECT_EQ(result.num_colors, 130u) << ToString(algorithm);
    EXPECT_TRUE(IsProperShardColoring(view, result.color));
  }
}

TEST(Coloring, SpilloverProperOnMixedWorkload) {
  // A >64-color clique embedded in a random batch: the proper-coloring
  // guarantee must hold when some vertices' neighbor colors straddle the
  // word-0/spill boundary while others stay below it.
  const auto map = chain::AccountMap::RoundRobin(16, 16);
  TxnFactory factory(map);
  std::vector<Transaction> txns;
  for (int i = 0; i < 80; ++i) txns.push_back(factory.MakeTouch(0, 0, {0}));
  Rng rng(31);  // one factory for clique + tail: distinct txn ids
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t span = 1 + rng.NextBounded(4);
    const auto picks = rng.SampleWithoutReplacement(map.account_count(), span);
    txns.push_back(factory.MakeTouch(
        static_cast<ShardId>(rng.NextBounded(map.shard_count())), 0,
        std::vector<AccountId>(picks.begin(), picks.end())));
  }
  std::vector<const Transaction*> view;
  for (const auto& txn : txns) view.push_back(&txn);
  const ConflictGraph graph(view, ConflictGranularity::kShard);
  for (const auto algorithm :
       {ColoringAlgorithm::kGreedy, ColoringAlgorithm::kWelshPowell,
        ColoringAlgorithm::kDsatur}) {
    const auto result = ColorGraph(graph, algorithm);
    EXPECT_GE(result.num_colors, 80u) << ToString(algorithm);
    EXPECT_TRUE(IsProperColoring(graph, result.color));
  }
  const auto cliques = ColorShardCliques(view, ColoringAlgorithm::kGreedy);
  EXPECT_GE(cliques.num_colors, 80u);
  EXPECT_TRUE(IsProperShardColoring(view, cliques.color));
  EXPECT_TRUE(IsProperColoring(graph, cliques.color));
}

TEST(ShardCliqueColoring, DsaturFallbackRecordedInMetadata) {
  // ColorShardCliques cannot run true DSATUR without the explicit graph;
  // the kWelshPowell fallback must be recorded in ColoringResult::used
  // (and actually be Welsh-Powell), while ColorGraph always honors the
  // requested algorithm.
  const auto map = chain::AccountMap::RoundRobin(16, 16);
  const auto txns = RandomWorkload(map, 4, 150, 21);
  std::vector<const Transaction*> view;
  for (const auto& txn : txns) view.push_back(&txn);

  const auto dsatur = ColorShardCliques(view, ColoringAlgorithm::kDsatur);
  EXPECT_EQ(dsatur.used, ColoringAlgorithm::kWelshPowell);
  const auto wp = ColorShardCliques(view, ColoringAlgorithm::kWelshPowell);
  EXPECT_EQ(wp.used, ColoringAlgorithm::kWelshPowell);
  EXPECT_EQ(dsatur.color, wp.color);  // the fallback really ran Welsh-Powell
  EXPECT_EQ(dsatur.num_colors, wp.num_colors);
  EXPECT_EQ(ColorShardCliques(view, ColoringAlgorithm::kGreedy).used,
            ColoringAlgorithm::kGreedy);

  const ConflictGraph graph(view, ConflictGranularity::kShard);
  EXPECT_EQ(ColorGraph(graph, ColoringAlgorithm::kDsatur).used,
            ColoringAlgorithm::kDsatur);
  EXPECT_EQ(ColorGraph(graph, ColoringAlgorithm::kWelshPowell).used,
            ColoringAlgorithm::kWelshPowell);
  EXPECT_EQ(ColorGraph(graph, ColoringAlgorithm::kGreedy).used,
            ColoringAlgorithm::kGreedy);
}

TEST(ShardCliqueColoring, ArenaOverloadMatchesAndRecyclesScratch) {
  // The arena-backed overload must produce the identical assignment as the
  // self-allocating one, and repeated rounds against a Reset() arena must
  // settle into a single reused chunk (the steady state the schedulers
  // rely on for zero per-round allocator traffic).
  common::Arena arena;
  const auto map = chain::AccountMap::RoundRobin(32, 32);
  for (const std::uint64_t seed : {41ull, 42ull, 43ull, 44ull}) {
    const auto txns = RandomWorkload(map, 6, 300, seed);
    std::vector<const Transaction*> view;
    for (const auto& txn : txns) view.push_back(&txn);
    for (const auto algorithm : {ColoringAlgorithm::kGreedy,
                                 ColoringAlgorithm::kWelshPowell}) {
      arena.Reset();
      const auto with_arena = ColorShardCliques(view, algorithm, arena);
      const auto standalone = ColorShardCliques(view, algorithm);
      EXPECT_EQ(with_arena.color, standalone.color) << ToString(algorithm);
      EXPECT_EQ(with_arena.num_colors, standalone.num_colors);
      EXPECT_GT(arena.memory().used_bytes, 0u);
    }
  }
  EXPECT_EQ(arena.memory().chunks, 1u);
}

TEST(Coloring, ImproperColoringDetected) {
  const auto map = chain::AccountMap::RoundRobin(4, 4);
  TxnFactory factory(map);
  const auto t0 = factory.MakeTouch(0, 0, {0});
  const auto t1 = factory.MakeTouch(0, 0, {0});
  const ConflictGraph graph({&t0, &t1});
  EXPECT_FALSE(IsProperColoring(graph, {0, 0}));
  EXPECT_TRUE(IsProperColoring(graph, {0, 1}));
  EXPECT_FALSE(IsProperColoring(graph, {0}));  // wrong size
}

}  // namespace
}  // namespace stableshard::txn
