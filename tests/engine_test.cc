// Engine-level tests: determinism, seed sensitivity, the threaded sweep
// runner, time-series recording, and commit-ledger wiring.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "sim_test_util.h"

namespace stableshard {
namespace {

using core::RunSweep;
using core::SimConfig;
using core::Simulation;
using test::RunWithWorkers;
using test::SmallConfig;

TEST(Engine, DeterministicForSameSeed) {
  const SimConfig config = SmallConfig("bds");
  Simulation a(config), b(config);
  const auto ra = a.Run();
  const auto rb = b.Run();
  EXPECT_EQ(ra.injected, rb.injected);
  EXPECT_EQ(ra.committed, rb.committed);
  EXPECT_EQ(ra.messages, rb.messages);
  EXPECT_DOUBLE_EQ(ra.avg_latency, rb.avg_latency);
  EXPECT_DOUBLE_EQ(ra.avg_pending_per_shard, rb.avg_pending_per_shard);
}

TEST(Engine, DifferentSeedsDiffer) {
  SimConfig config = SmallConfig("bds");
  Simulation a(config);
  config.seed = 999;
  Simulation b(config);
  const auto ra = a.Run();
  const auto rb = b.Run();
  // Different random workloads: at least one aggregate differs.
  EXPECT_TRUE(ra.injected != rb.injected || ra.messages != rb.messages ||
              ra.avg_latency != rb.avg_latency);
}

TEST(Engine, SweepMatchesSerialRuns) {
  std::vector<SimConfig> configs;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    SimConfig config = SmallConfig("bds");
    config.rounds = 400;
    config.seed = seed;
    configs.push_back(config);
  }
  const auto sweep = RunSweep(configs, /*threads=*/4);
  ASSERT_EQ(sweep.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto expected = RunWithWorkers(configs[i], 1);
    EXPECT_EQ(sweep[i].result.injected, expected.injected) << "config " << i;
    EXPECT_EQ(sweep[i].result.messages, expected.messages) << "config " << i;
    EXPECT_DOUBLE_EQ(sweep[i].result.avg_latency, expected.avg_latency);
  }
}

TEST(Engine, SweepWithInnerParallelConfigsMatchesSerialRuns) {
  // Single-level parallelism policy: configs with worker_threads > 1 make
  // RunSweep run them sequentially (no nested pools), and results must
  // still equal fully serial runs of the same configs.
  std::vector<core::SimConfig> configs;
  for (std::uint64_t seed : {11ull, 12ull}) {
    SimConfig config = SmallConfig("fds");
    config.rounds = 300;
    config.drain_cap = 20000;
    config.worker_threads = 4;
    config.min_shards_per_worker = 1;  // force the pool despite s = 16
    config.seed = seed;
    configs.push_back(config);
  }
  const auto sweep = RunSweep(configs, /*threads=*/4);
  ASSERT_EQ(sweep.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto expected = RunWithWorkers(configs[i], 1);
    EXPECT_EQ(sweep[i].result.injected, expected.injected) << "config " << i;
    EXPECT_EQ(sweep[i].result.committed, expected.committed) << "config " << i;
    EXPECT_EQ(sweep[i].result.messages, expected.messages) << "config " << i;
    EXPECT_EQ(sweep[i].result.max_pending, expected.max_pending);
    EXPECT_DOUBLE_EQ(sweep[i].result.avg_latency, expected.avg_latency);
    EXPECT_DOUBLE_EQ(sweep[i].result.avg_pending_per_shard,
                     expected.avg_pending_per_shard);
  }
}

TEST(Engine, SmallGridThresholdFallsBackToSerial) {
  // s = 16 sits far below the default min_shards_per_worker = 128, so a
  // worker_threads = 4 config must silently serialize — visible through
  // effective_workers() — and produce exactly the serial results. Forcing
  // the threshold down to 1 turns the pool back on; results stay
  // bit-identical either way.
  SimConfig config = SmallConfig("fds");
  config.rounds = 200;
  config.drain_cap = 20000;
  config.worker_threads = 4;

  Simulation fallback(config);  // default threshold: pool skipped
  EXPECT_EQ(fallback.effective_workers(), 1u);
  const auto fallback_result = fallback.Run();

  config.min_shards_per_worker = 1;
  Simulation pooled(config);
  EXPECT_EQ(pooled.effective_workers(), 4u);
  const auto pooled_result = pooled.Run();

  config.worker_threads = 1;
  Simulation serial(config);
  EXPECT_EQ(serial.effective_workers(), 1u);
  const auto serial_result = serial.Run();

  test::ExpectBitIdenticalResults(fallback_result, serial_result);
  test::ExpectBitIdenticalResults(pooled_result, serial_result);
}

TEST(Engine, SeriesRecording) {
  SimConfig config = SmallConfig("bds");
  config.rounds = 500;
  config.drain_cap = 0;
  Simulation sim(config);
  sim.EnableSeries(/*window=*/50);
  sim.Run();
  ASSERT_NE(sim.pending_series(), nullptr);
  EXPECT_EQ(sim.pending_series()->points().size(), 500u / 50);
}

TEST(Engine, DrainRoundsAreRecorded) {
  // The pending series (and the per-round aggregates) must cover drain
  // rounds: rounds_executed counts them, so with window = 1 the series has
  // exactly one point per executed round.
  SimConfig config = SmallConfig("bds");
  config.rounds = 200;
  config.drain_cap = 60000;
  Simulation sim(config);
  sim.EnableSeries(/*window=*/1);
  const auto result = sim.Run();
  EXPECT_TRUE(result.drained);
  EXPECT_GT(result.rounds_executed, config.rounds) << "no drain rounds ran";
  ASSERT_NE(sim.pending_series(), nullptr);
  EXPECT_EQ(sim.pending_series()->points().size(), result.rounds_executed);
  // Fully drained: the final recorded sample is zero pending.
  EXPECT_DOUBLE_EQ(sim.pending_series()->points().back().value, 0.0);
}

TEST(Engine, MessageAccountingNonTrivial) {
  SimConfig config = SmallConfig("bds");
  Simulation sim(config);
  const auto result = sim.Run();
  // Every transaction needs at least 4 protocol messages (subtxn, vote,
  // confirm, plus batch/coloring traffic).
  EXPECT_GT(result.messages, 4 * result.injected);
  EXPECT_GT(result.payload_units, 0u);
}

TEST(Engine, DescribeMentionsKeyParameters) {
  SimConfig config = SmallConfig("fds");
  const auto description = config.Describe();
  EXPECT_NE(description.find("fds"), std::string::npos);
  EXPECT_NE(description.find("s=16"), std::string::npos);
  EXPECT_NE(description.find("line"), std::string::npos);
}

TEST(EngineDeath, RunTwiceAborts) {
  SimConfig config = SmallConfig("bds");
  config.rounds = 10;
  config.drain_cap = 0;
  Simulation sim(config);
  sim.Run();
  EXPECT_DEATH(sim.Run(), "SSHARD_CHECK");
}

TEST(EngineDeath, InvalidRhoRejected) {
  SimConfig config = SmallConfig("bds");
  config.rho = 0.0;
  EXPECT_DEATH(Simulation sim(config), "SSHARD_CHECK");
  config.rho = 1.5;
  EXPECT_DEATH(Simulation sim2(config), "SSHARD_CHECK");
}

}  // namespace
}  // namespace stableshard
