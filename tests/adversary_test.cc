// Tests for the adversarial generator: the token buckets must enforce the
// (rho, b) window property on *every* interval (checked with sliding
// windows), strategies must respect the k-shard cap, and the Theorem-1
// pairwise construction must have its exact combinatorial structure.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <tuple>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/strategy.h"
#include "adversary/token_bucket.h"
#include "chain/account_map.h"
#include "common/rng.h"
#include "net/metric.h"

namespace stableshard::adversary {
namespace {

TEST(TokenBucket, StartsFullAndCaps) {
  TokenBucketArray buckets(4, 0.5, 10);
  EXPECT_DOUBLE_EQ(buckets.tokens(0), 10.0);
  buckets.Tick();
  EXPECT_DOUBLE_EQ(buckets.tokens(0), 10.0);  // capped at b
  buckets.Consume({0});
  EXPECT_DOUBLE_EQ(buckets.tokens(0), 9.0);
  buckets.Tick();
  EXPECT_DOUBLE_EQ(buckets.tokens(0), 9.5);
}

TEST(TokenBucket, CanConsumeChecksAllShards) {
  TokenBucketArray buckets(3, 0.1, 1);
  EXPECT_TRUE(buckets.CanConsume({0, 1, 2}));
  buckets.Consume({0});
  EXPECT_FALSE(buckets.CanConsume({0, 1}));
  EXPECT_TRUE(buckets.CanConsume({1, 2}));
}

TEST(TokenBucketDeath, OverConsumeAborts) {
  TokenBucketArray buckets(2, 0.1, 1);
  buckets.Consume({0});
  EXPECT_DEATH(buckets.Consume({0}), "SSHARD_CHECK");
}

// Property: for any interval [t1, t2), admitted congestion per shard is at
// most rho*(t2-t1) + b (+1 slack for the token granularity at interval
// boundaries).
TEST(TokenBucket, WindowPropertyOnGreedyDrain) {
  const double rho = 0.3;
  const double b = 8;
  TokenBucketArray buckets(1, rho, b);
  std::vector<int> per_round;
  Rng rng(5);
  for (Round r = 0; r < 500; ++r) {
    if (r > 0) buckets.Tick();
    int admitted = 0;
    // Greedy adversary: drain whenever possible, plus random idleness to
    // vary the windows.
    const bool greedy = rng.NextBool(0.8);
    while (greedy && buckets.CanConsume({0})) {
      buckets.Consume({0});
      ++admitted;
    }
    per_round.push_back(admitted);
  }
  for (std::size_t t1 = 0; t1 < per_round.size(); t1 += 7) {
    int window_sum = 0;
    for (std::size_t t2 = t1; t2 < per_round.size(); ++t2) {
      window_sum += per_round[t2];
      const double limit = rho * static_cast<double>(t2 - t1 + 1) + b + 1.0;
      EXPECT_LE(window_sum, limit) << "window [" << t1 << "," << t2 << "]";
    }
  }
}

chain::AccountMap MakeMap(ShardId shards, AccountId accounts) {
  return chain::AccountMap::RoundRobin(shards, accounts);
}

TEST(UniformRandomStrategy, RespectsKCap) {
  const auto map = MakeMap(16, 64);
  RandomStrategyOptions options;
  options.max_shards_per_txn = 5;
  options.exact_k = false;
  UniformRandomStrategy strategy(map, options);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    Candidate candidate;
    ASSERT_TRUE(strategy.Next(0, rng, &candidate));
    EXPECT_GE(candidate.accesses.size(), 1u);
    EXPECT_LE(candidate.accesses.size(), 5u);
    EXPECT_LE(candidate.TouchedShards(map).size(), 5u);
    EXPECT_LT(candidate.home, 16u);
  }
}

TEST(UniformRandomStrategy, ExactKAccounts) {
  const auto map = MakeMap(16, 64);
  RandomStrategyOptions options;
  options.max_shards_per_txn = 4;
  options.exact_k = true;
  UniformRandomStrategy strategy(map, options);
  Rng rng(2);
  Candidate candidate;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(strategy.Next(0, rng, &candidate));
    EXPECT_EQ(candidate.accesses.size(), 4u);
  }
}

TEST(HotspotStrategy, AlwaysTouchesHotspot) {
  const auto map = MakeMap(8, 32);
  RandomStrategyOptions options;
  options.max_shards_per_txn = 3;
  HotspotStrategy strategy(map, /*hotspot=*/7, options);
  Rng rng(3);
  Candidate candidate;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(strategy.Next(0, rng, &candidate));
    bool touches = false;
    for (const auto& access : candidate.accesses) {
      if (access.account == 7) touches = true;
      EXPECT_LT(access.account, 32u);
    }
    EXPECT_TRUE(touches);
  }
}

TEST(PairwiseConflictStrategy, ExactTheorem1Structure) {
  const std::uint32_t k = 4;  // needs s >= k(k+1)/2 = 10
  const auto map = MakeMap(10, 10);
  PairwiseConflictStrategy strategy(map, k);
  EXPECT_EQ(strategy.group_size(), k + 1);
  Rng rng(4);
  std::vector<std::vector<ShardId>> members;
  for (std::uint32_t i = 0; i <= k; ++i) {
    Candidate candidate;
    ASSERT_TRUE(strategy.Next(0, rng, &candidate));
    members.push_back(candidate.TouchedShards(map));
    EXPECT_EQ(members.back().size(), k);
  }
  // Every pair of group members shares exactly one shard.
  for (std::uint32_t i = 0; i <= k; ++i) {
    for (std::uint32_t j = i + 1; j <= k; ++j) {
      int shared = 0;
      for (const ShardId shard : members[i]) {
        for (const ShardId other : members[j]) {
          if (shard == other) ++shared;
        }
      }
      EXPECT_EQ(shared, 1) << "pair " << i << "," << j;
    }
  }
  // The group repeats cyclically.
  Candidate candidate;
  ASSERT_TRUE(strategy.Next(0, rng, &candidate));
  EXPECT_EQ(candidate.TouchedShards(map), members[0]);
}

TEST(PairwiseConflictStrategyDeath, RequiresEnoughShards) {
  const auto map = MakeMap(5, 5);  // k=4 needs 10 shards
  EXPECT_DEATH(PairwiseConflictStrategy(map, 4), "SSHARD_CHECK");
}

TEST(LocalStrategy, StaysWithinRadius) {
  const auto map = MakeMap(16, 16);
  net::LineMetric metric(16);
  RandomStrategyOptions options;
  options.max_shards_per_txn = 3;
  options.exact_k = false;
  LocalStrategy strategy(map, metric, /*radius=*/2, options);
  Rng rng(5);
  Candidate candidate;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(strategy.Next(0, rng, &candidate));
    for (const ShardId shard : candidate.TouchedShards(map)) {
      EXPECT_LE(metric.distance(candidate.home, shard), 2u);
    }
  }
}

TEST(SingleShardStrategy, OneShardPerTxn) {
  const auto map = MakeMap(8, 16);
  SingleShardStrategy strategy(map);
  Rng rng(6);
  Candidate candidate;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(strategy.Next(0, rng, &candidate));
    EXPECT_EQ(candidate.TouchedShards(map).size(), 1u);
    EXPECT_EQ(candidate.home,
              map.OwnerOf(candidate.accesses.front().account));
  }
}

TEST(HotDestinationStrategy, ConcentratesTrafficOnHotShard) {
  const auto map = MakeMap(16, 16);
  RandomStrategyOptions options;
  options.max_shards_per_txn = 4;
  HotDestinationStrategy strategy(map, /*theta=*/1.0, options);
  EXPECT_EQ(strategy.hot_shard(), 0u);
  Rng rng(7);
  std::vector<int> touches(16, 0);
  Candidate candidate;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(strategy.Next(0, rng, &candidate));
    EXPECT_GE(candidate.accesses.size(), 1u);
    EXPECT_LE(candidate.accesses.size(), 4u);
    for (const ShardId shard : candidate.TouchedShards(map)) {
      ++touches[shard];
    }
  }
  // Zipf(1) skew: the rank-1 shard sees far more than its uniform share,
  // and more than any other shard; the tail still participates.
  const int total = 2000 * 4;
  EXPECT_GT(touches[0], total / 16);
  for (ShardId shard = 1; shard < 16; ++shard) {
    EXPECT_GT(touches[0], touches[shard]) << "shard " << shard;
    EXPECT_GT(touches[shard], 0) << "shard " << shard;
  }
}

TEST(HotDestinationStrategy, DistinctAccountsPerCandidate) {
  const auto map = MakeMap(8, 8);
  RandomStrategyOptions options;
  options.max_shards_per_txn = 4;
  HotDestinationStrategy strategy(map, /*theta=*/2.0, options);  // heavy skew
  Rng rng(8);
  Candidate candidate;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(strategy.Next(0, rng, &candidate));
    std::vector<AccountId> accounts;
    for (const auto& access : candidate.accesses) {
      accounts.push_back(access.account);
    }
    std::sort(accounts.begin(), accounts.end());
    EXPECT_EQ(std::unique(accounts.begin(), accounts.end()), accounts.end());
  }
}

TEST(DiameterSpanStrategy, EveryCandidateSpansTheDiameter) {
  const auto map = MakeMap(16, 16);
  net::LineMetric metric(16);
  RandomStrategyOptions options;
  options.max_shards_per_txn = 4;
  DiameterSpanStrategy strategy(map, metric, options);
  EXPECT_EQ(strategy.span(), metric.Diameter());
  EXPECT_EQ(strategy.endpoint_a(), 0u);
  EXPECT_EQ(strategy.endpoint_b(), 15u);
  Rng rng(9);
  Candidate candidate;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(strategy.Next(0, rng, &candidate));
    const auto shards = candidate.TouchedShards(map);
    Distance widest = 0;
    for (const ShardId a : shards) {
      for (const ShardId b : shards) {
        widest = std::max(widest, metric.distance(a, b));
      }
    }
    EXPECT_EQ(widest, metric.Diameter());
    EXPECT_LE(candidate.accesses.size(), 4u);
    // Homes alternate between the endpoints.
    EXPECT_TRUE(candidate.home == 0u || candidate.home == 15u);
  }
}

TEST(DiameterSpanStrategyDeath, RejectsWidthOneTransactions) {
  // k = 1 candidates cannot anchor both endpoints; the constructor must
  // refuse rather than silently exceed the declared transaction width.
  const auto map = MakeMap(8, 8);
  net::LineMetric metric(8);
  RandomStrategyOptions options;
  options.max_shards_per_txn = 1;
  EXPECT_DEATH(DiameterSpanStrategy(map, metric, options), "k >= 2");
}

TEST(DiameterSpanStrategy, UniformMetricDegeneratesToDistanceOne) {
  const auto map = MakeMap(6, 6);
  net::UniformMetric metric(6);
  RandomStrategyOptions options;
  options.max_shards_per_txn = 3;
  DiameterSpanStrategy strategy(map, metric, options);
  EXPECT_EQ(strategy.span(), 1u);
  Rng rng(10);
  Candidate candidate;
  ASSERT_TRUE(strategy.Next(0, rng, &candidate));
  EXPECT_GE(candidate.TouchedShards(map).size(), 2u);
}

TEST(Adversary, InjectionRespectsWindowBoundPerShard) {
  const auto map = MakeMap(8, 8);
  AdversaryConfig config;
  config.rho = 0.2;
  config.burstiness = 5;
  config.burst_round = 0;
  config.seed = 7;
  RandomStrategyOptions options;
  options.max_shards_per_txn = 3;
  Adversary adversary(config, map,
                      std::make_unique<UniformRandomStrategy>(map, options));

  const Round rounds = 400;
  std::vector<std::vector<int>> congestion(8, std::vector<int>(rounds, 0));
  for (Round r = 0; r < rounds; ++r) {
    for (const auto& txn : adversary.GenerateRound(r)) {
      for (const ShardId shard : txn.destinations()) {
        ++congestion[shard][r];
      }
    }
  }
  for (ShardId shard = 0; shard < 8; ++shard) {
    for (Round t1 = 0; t1 < rounds; t1 += 13) {
      int window = 0;
      for (Round t2 = t1; t2 < rounds; ++t2) {
        window += congestion[shard][t2];
        const double limit =
            config.rho * static_cast<double>(t2 - t1 + 1) + config.burstiness +
            1.0;
        ASSERT_LE(window, limit)
            << "shard " << shard << " window [" << t1 << "," << t2 << "]";
      }
    }
  }
}

TEST(Adversary, BurstHappensOnce) {
  const auto map = MakeMap(8, 8);
  AdversaryConfig config;
  config.rho = 0.05;
  config.burstiness = 20;
  config.burst_round = 10;
  RandomStrategyOptions options;
  options.max_shards_per_txn = 2;
  Adversary adversary(config, map,
                      std::make_unique<UniformRandomStrategy>(map, options));
  std::vector<std::size_t> injected_per_round;
  for (Round r = 0; r < 50; ++r) {
    injected_per_round.push_back(adversary.GenerateRound(r).size());
  }
  // Before the burst round: steady trickle only.
  for (Round r = 0; r < 10; ++r) {
    EXPECT_LE(injected_per_round[r], 3u);
  }
  // The burst round injects far more than the steady rate.
  EXPECT_GT(injected_per_round[10], 10u);
  EXPECT_GT(adversary.stats().burst_injected, 10u);
}

TEST(Adversary, NoBurstWhenDisabled) {
  const auto map = MakeMap(4, 4);
  AdversaryConfig config;
  config.rho = 0.1;
  config.burstiness = 50;
  config.burst_round = kNoRound;
  Adversary adversary(config, map,
                      std::make_unique<SingleShardStrategy>(map));
  std::uint64_t max_per_round = 0;
  for (Round r = 0; r < 100; ++r) {
    max_per_round =
        std::max<std::uint64_t>(max_per_round, adversary.GenerateRound(r).size());
  }
  // Paced injection: ~rho * s congestion per round, never the full burst.
  EXPECT_LE(max_per_round, 5u);
  EXPECT_EQ(adversary.stats().burst_injected, 0u);
}

TEST(Adversary, SteadyRateMatchesRho) {
  const auto map = MakeMap(8, 8);
  AdversaryConfig config;
  config.rho = 0.25;
  config.burstiness = 4;
  config.burst_round = kNoRound;
  Adversary adversary(config, map,
                      std::make_unique<SingleShardStrategy>(map));
  std::uint64_t congestion = 0;
  const Round rounds = 2000;
  for (Round r = 0; r < rounds; ++r) {
    for (const auto& txn : adversary.GenerateRound(r)) {
      congestion += txn.destinations().size();
    }
  }
  // Aggregate congestion should track rho * s per round within 15%.
  const double expected = config.rho * 8 * static_cast<double>(rounds);
  EXPECT_GT(static_cast<double>(congestion), 0.85 * expected);
  EXPECT_LE(static_cast<double>(congestion), 1.05 * expected);
}

TEST(Adversary, TxnIdsAreUniqueAndOrdered) {
  const auto map = MakeMap(4, 4);
  AdversaryConfig config;
  config.rho = 0.5;
  config.burstiness = 10;
  Adversary adversary(config, map,
                      std::make_unique<SingleShardStrategy>(map));
  TxnId last = 0;
  bool first = true;
  for (Round r = 0; r < 50; ++r) {
    for (const auto& txn : adversary.GenerateRound(r)) {
      if (!first) {
        EXPECT_GT(txn.id(), last);
      }
      last = txn.id();
      first = false;
      EXPECT_EQ(txn.injected(), r);
    }
  }
}

}  // namespace
}  // namespace stableshard::adversary
