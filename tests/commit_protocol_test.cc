// Protocol-level tests for CommitProtocol, driving it directly (no
// scheduler): vote/confirm round trips, early aborts, pinned-mode retract
// handshake, pipelined-mode ordering with the height-stability gate, and
// reschedule height updates.
#include <gtest/gtest.h>

#include <vector>

#include "chain/account_map.h"
#include "core/commit_ledger.h"
#include "core/commit_protocol.h"
#include "net/metric.h"
#include "net/network.h"
#include "net/outbox.h"
#include "txn/txn_factory.h"

namespace stableshard::core {
namespace {

class CommitProtocolTest : public ::testing::Test {
 protected:
  static constexpr ShardId kShards = 4;

  explicit CommitProtocolTest(CommitMode mode = CommitMode::kPinned)
      : map_(chain::AccountMap::RoundRobin(kShards, kShards)),
        metric_(kShards),
        network_(metric_),
        outbox_(kShards),
        ledger_(map_, 1000),
        protocol_(kShards, outbox_, ledger_,
                  [this](TxnId id, std::uint32_t cluster, bool committed) {
                    (void)cluster;
                    decided_.emplace_back(id, committed);
                  },
                  mode),
        factory_(map_) {}

  /// Run one synchronous round: deliver + vote + flush (the serial
  /// equivalent of BeginRound / StepShard* / EndRound).
  void Step() {
    for (auto& envelope : network_.Deliver(round_)) {
      ASSERT_TRUE(
          protocol_.HandleMessage(envelope.to, envelope.payload, round_));
    }
    protocol_.IssueVotes(round_);
    outbox_.Flush(network_, round_);
    ledger_.FlushRound(round_);
    ++round_;
  }

  void Schedule(const txn::Transaction& txn, Height height,
                ShardId coordinator) {
    protocol_.Coordinate(coordinator, txn, 0);
    for (const auto& sub : txn.subs()) {
      protocol_.SendSubTxn(coordinator, txn, sub, height, 0, false);
    }
  }

  void RunUntilIdle(Round cap = 200) {
    const Round limit = round_ + cap;
    while (!protocol_.Idle() && round_ < limit) Step();
  }

  chain::AccountMap map_;
  net::UniformMetric metric_;
  net::Network<Message> network_;
  net::OutboxSet<Message> outbox_;
  CommitLedger ledger_;
  CommitProtocol protocol_;
  txn::TxnFactory factory_;
  std::vector<std::pair<TxnId, bool>> decided_;
  Round round_ = 0;
};

class PinnedProtocolTest : public CommitProtocolTest {};

TEST_F(PinnedProtocolTest, SingleTxnCommits) {
  const auto txn = factory_.MakeTouch(0, 0, {0, 1});
  ledger_.RegisterInjection(txn);
  Schedule(txn, Height{0, 0, 0, 0, txn.id()}, /*coordinator=*/0);
  RunUntilIdle();
  EXPECT_TRUE(protocol_.Idle());
  EXPECT_TRUE(ledger_.IsResolved(txn.id()));
  EXPECT_EQ(ledger_.committed_txns(), 1u);
  ASSERT_EQ(decided_.size(), 1u);
  EXPECT_TRUE(decided_[0].second);
}

TEST_F(PinnedProtocolTest, FailingConditionAborts) {
  const auto txn = factory_.MakeTransfer(0, 0, /*from=*/0, /*to=*/1,
                                         /*amount=*/1, /*min=*/10'000'000);
  ledger_.RegisterInjection(txn);
  Schedule(txn, Height{0, 0, 0, 0, txn.id()}, 0);
  RunUntilIdle();
  EXPECT_EQ(ledger_.aborted_txns(), 1u);
  EXPECT_EQ(ledger_.committed_txns(), 0u);
  ASSERT_EQ(decided_.size(), 1u);
  EXPECT_FALSE(decided_[0].second);
}

TEST_F(PinnedProtocolTest, ConflictingTxnsSerializeByHeight) {
  // Both touch accounts 0 and 1; lower height must commit first everywhere.
  const auto hi = factory_.MakeTouch(0, 0, {0, 1});
  const auto lo = factory_.MakeTouch(0, 0, {0, 1});
  ledger_.RegisterInjection(hi);
  ledger_.RegisterInjection(lo);
  Schedule(hi, Height{10, 0, 0, 0, hi.id()}, 0);
  Schedule(lo, Height{5, 0, 0, 0, lo.id()}, 1);
  RunUntilIdle();
  EXPECT_EQ(ledger_.committed_txns(), 2u);
  // The per-shard chains must order lo before hi on both shards.
  for (const ShardId shard : {0u, 1u}) {
    const auto& blocks = ledger_.chains()[shard].blocks();
    ASSERT_EQ(blocks.size(), 2u);
    EXPECT_EQ(blocks[0].txn, lo.id());
    EXPECT_EQ(blocks[1].txn, hi.id());
  }
}

TEST_F(PinnedProtocolTest, RetractResolvesPriorityInversion) {
  // hi gets pinned first at both shards; then lo (smaller height) arrives
  // and must preempt via the retract handshake.
  const auto hi = factory_.MakeTouch(0, 0, {0, 1});
  const auto lo = factory_.MakeTouch(0, 0, {0, 1});
  ledger_.RegisterInjection(hi);
  ledger_.RegisterInjection(lo);
  Schedule(hi, Height{10, 0, 0, 0, hi.id()}, 0);
  Step();  // hi arrives and is pinned at both destinations
  Step();
  EXPECT_EQ(protocol_.pinned_count(), 2u);
  Schedule(lo, Height{5, 0, 0, 0, lo.id()}, 1);
  RunUntilIdle();
  EXPECT_EQ(ledger_.committed_txns(), 2u);
  EXPECT_TRUE(protocol_.Idle());
}

class PipelinedProtocolTest : public CommitProtocolTest {
 protected:
  PipelinedProtocolTest() : CommitProtocolTest(CommitMode::kPipelined) {}
};

TEST_F(PipelinedProtocolTest, SingleTxnCommits) {
  const auto txn = factory_.MakeTouch(0, 0, {0, 1, 2});
  ledger_.RegisterInjection(txn);
  Schedule(txn, Height{0, 0, 0, 0, txn.id()}, 0);
  RunUntilIdle();
  EXPECT_TRUE(protocol_.Idle());
  EXPECT_EQ(ledger_.committed_txns(), 1u);
}

TEST_F(PipelinedProtocolTest, OneNewVotePerRoundPerShard) {
  // Three conflicting txns on one shard: votes go out one per round.
  std::vector<txn::Transaction> txns;
  for (int i = 0; i < 3; ++i) {
    txns.push_back(factory_.MakeTouch(0, 0, {0}));
    ledger_.RegisterInjection(txns.back());
    Schedule(txns.back(),
             Height{0, 0, 0, static_cast<Color>(i), txns.back().id()}, 0);
  }
  Step();  // arrivals
  const auto before = network_.stats().messages_sent;
  Step();  // exactly one vote leaves shard 0
  // one vote message (plus any confirms in flight from earlier rounds).
  EXPECT_GE(network_.stats().messages_sent, before + 1);
  RunUntilIdle();
  EXPECT_EQ(ledger_.committed_txns(), 3u);
  // Commit order == height (color) order on the shared shard.
  const auto& blocks = ledger_.chains()[0].blocks();
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].txn, txns[0].id());
  EXPECT_EQ(blocks[1].txn, txns[1].id());
  EXPECT_EQ(blocks[2].txn, txns[2].id());
}

TEST_F(PipelinedProtocolTest, HeightStabilityGateDelaysCommit) {
  // An entry with t_end = 20 must not commit before round 20 even if its
  // confirm arrives much earlier.
  const auto txn = factory_.MakeTouch(0, 0, {0});
  ledger_.RegisterInjection(txn);
  Schedule(txn, Height{20, 0, 0, 0, txn.id()}, 0);
  while (round_ < 20) {
    Step();
    EXPECT_EQ(ledger_.committed_txns(), 0u)
        << "committed before the t_end gate at round " << round_;
  }
  RunUntilIdle();
  EXPECT_EQ(ledger_.committed_txns(), 1u);
}

TEST_F(PipelinedProtocolTest, LateLowerHeightOrdersBeforeGatedCommit) {
  // fast is decided quickly but gated to t_end = 30; slow arrives later
  // with a smaller height and must commit first on the shared shard.
  const auto fast = factory_.MakeTouch(0, 0, {0});
  ledger_.RegisterInjection(fast);
  Schedule(fast, Height{30, 0, 0, 5, fast.id()}, 0);
  Step();
  Step();
  Step();
  const auto slow = factory_.MakeTouch(0, 0, {0});
  ledger_.RegisterInjection(slow);
  Schedule(slow, Height{30, 0, 0, 1, slow.id()}, 1);
  RunUntilIdle();
  EXPECT_EQ(ledger_.committed_txns(), 2u);
  const auto& blocks = ledger_.chains()[0].blocks();
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].txn, slow.id());
  EXPECT_EQ(blocks[1].txn, fast.id());
}

TEST_F(PipelinedProtocolTest, RescheduleUpdatesOrdering) {
  const auto a = factory_.MakeTouch(0, 0, {0});
  const auto b = factory_.MakeTouch(0, 0, {0});
  ledger_.RegisterInjection(a);
  ledger_.RegisterInjection(b);
  // Initially a < b. We reschedule a *behind* b before any vote resolves.
  Schedule(a, Height{40, 0, 0, 0, a.id()}, 0);
  Schedule(b, Height{40, 0, 0, 1, b.id()}, 0);
  Step();  // arrivals
  // Height update: a moves to color 2 (behind b).
  for (const auto& sub : a.subs()) {
    protocol_.SendSubTxn(0, a, sub, Height{40, 0, 0, 2, a.id()}, 0,
                         /*update=*/true);
  }
  RunUntilIdle(300);
  EXPECT_EQ(ledger_.committed_txns(), 2u);
  const auto& blocks = ledger_.chains()[0].blocks();
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].txn, b.id());
  EXPECT_EQ(blocks[1].txn, a.id());
}

TEST_F(PipelinedProtocolTest, AbortsPopWithoutBlockingQueue) {
  const auto bad = factory_.MakeTransfer(0, 0, 0, 1, 1, 10'000'000);
  const auto good = factory_.MakeTouch(0, 0, {0});
  ledger_.RegisterInjection(bad);
  ledger_.RegisterInjection(good);
  Schedule(bad, Height{0, 0, 0, 0, bad.id()}, 0);
  Schedule(good, Height{0, 0, 0, 1, good.id()}, 0);
  RunUntilIdle();
  EXPECT_EQ(ledger_.aborted_txns(), 1u);
  EXPECT_EQ(ledger_.committed_txns(), 1u);
  EXPECT_TRUE(protocol_.Idle());
}

TEST_F(PipelinedProtocolTest, QueueIntrospection) {
  const auto txn = factory_.MakeTouch(0, 0, {0, 1});
  ledger_.RegisterInjection(txn);
  Schedule(txn, Height{50, 0, 0, 0, txn.id()}, 0);
  Step();  // round 0: nothing in flight yet (unit delay)
  Step();  // round 1: arrivals
  EXPECT_EQ(protocol_.queued_subtxns(), 2u);
  EXPECT_EQ(protocol_.queue_size(0), 1u);
  EXPECT_EQ(protocol_.queue_size(1), 1u);
  EXPECT_EQ(protocol_.coordinated_unresolved(), 1u);
}

}  // namespace
}  // namespace stableshard::core
