// Theorem 1 (stability upper bound) demonstration tests: with the pairwise-
// conflict adversary above the 2/(k+1) threshold, queues grow without bound
// under *any* of our schedulers; below the BDS admissible rate, BDS stays
// bounded on the same workload.
#include <gtest/gtest.h>

#include <string>

#include "common/math_util.h"
#include "sim_test_util.h"

namespace stableshard {
namespace {

using core::SimConfig;
using core::Simulation;

SimConfig PairwiseConfig(double rho, const std::string& scheduler) {
  SimConfig config;
  config.scheduler = scheduler;
  config.topology = net::TopologyKind::kUniform;
  config.k = 4;
  config.shards = 10;  // k(k+1)/2 = 10 shards used by the construction
  config.accounts = 10;
  config.account_assignment = core::AccountAssignment::kRoundRobin;
  config.strategy = "pairwise_conflict";
  config.rho = rho;
  config.burstiness = 4;
  config.burst_round = kNoRound;
  config.rounds = 6000;
  config.drain_cap = 0;
  return config;
}

TEST(Theorem1, AboveBoundQueuesGrowUnderBds) {
  // Theorem 1 threshold for k = 4, s = 10: max{2/5, 2/4} = 0.5.
  const double bound = AbsoluteStabilityUpperBound(4, 10);
  EXPECT_DOUBLE_EQ(bound, 0.5);

  SimConfig config = PairwiseConfig(/*rho=*/0.9, "bds");
  Simulation sim(config);
  sim.EnableSeries(/*window=*/1000);
  const auto result = sim.Run();
  // Unstable: a large backlog remains and keeps growing over time.
  EXPECT_GT(result.unresolved, 500u);
  const auto& points = sim.pending_series()->points();
  ASSERT_GE(points.size(), 3u);
  // Linear backlog growth: the last window is well above the middle one,
  // which in turn is well above the first.
  EXPECT_GT(points.back().value, 1.5 * points[points.size() / 2].value);
  EXPECT_GT(points[points.size() / 2].value, 1.5 * points.front().value);
}

TEST(Theorem1, BelowSchedulerBoundBdsIsStable) {
  // Below BDS's admissible rate the same workload drains.
  const double admissible = BdsStableRateBound(4, 10);
  SimConfig config = PairwiseConfig(admissible, "bds");
  config.drain_cap = 50000;
  Simulation sim(config);
  const auto result = sim.Run();
  EXPECT_TRUE(result.drained);
  EXPECT_LE(result.max_pending,
            4.0 * config.burstiness * config.shards);
}

TEST(Theorem1, AboveBoundUnstableForDirectToo) {
  // The bound is scheduler-independent: the Direct baseline also diverges.
  SimConfig config = PairwiseConfig(/*rho=*/0.9, "direct");
  Simulation sim(config);
  sim.EnableSeries(1000);
  const auto result = sim.Run();
  EXPECT_GT(result.unresolved, 500u);
  const auto& points = sim.pending_series()->points();
  EXPECT_GT(points.back().value, points.front().value);
}

TEST(Theorem1, GroupContributesCongestionTwoPerShard) {
  // Structural sanity: the k+1 group transactions add congestion exactly 2
  // to each shard they use — this is what makes the 2/(k+1) bound tight.
  const auto map = chain::AccountMap::RoundRobin(10, 10);
  adversary::PairwiseConflictStrategy strategy(map, 4);
  Rng rng(1);
  std::vector<int> congestion(10, 0);
  for (std::uint32_t i = 0; i < strategy.group_size(); ++i) {
    adversary::Candidate candidate;
    ASSERT_TRUE(strategy.Next(0, rng, &candidate));
    for (const ShardId shard : candidate.TouchedShards(map)) {
      ++congestion[shard];
    }
  }
  for (const int c : congestion) EXPECT_EQ(c, 2);
}

}  // namespace
}  // namespace stableshard
