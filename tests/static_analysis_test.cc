// Tests for the static-analysis scaffolding itself:
//
//   * the clang thread-safety annotation shim (common/thread_annotations.h)
//     must expand to NOTHING on non-clang compilers — the repo's tier-1
//     toolchain is gcc, so a shim that leaked tokens would break every
//     build that includes an annotated header;
//   * the annotated common::Mutex / common::MutexLock / common::CondVar
//     wrappers must behave exactly like the std primitives they wrap;
//   * common::PhaseCapability must be a zero-state no-op at runtime (its
//     whole point: compile-time phase contracts, no hot-path cost);
//   * the annotated ThreadPool must still run fan-outs correctly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace stableshard {
namespace {

#define SSHARD_TEST_STRINGIFY_IMPL(...) #__VA_ARGS__
#define SSHARD_TEST_STRINGIFY(...) SSHARD_TEST_STRINGIFY_IMPL(__VA_ARGS__)

#ifndef __clang__
// On gcc (and anything that is not clang) every annotation macro must
// vanish: stringifying the expansion yields the empty string. sizeof of a
// string literal includes the terminating NUL, so empty == 1.
static_assert(
    sizeof(SSHARD_TEST_STRINGIFY(SSHARD_GUARDED_BY(mutex_))) == 1,
    "SSHARD_GUARDED_BY must expand to nothing off clang");
static_assert(sizeof(SSHARD_TEST_STRINGIFY(SSHARD_CAPABILITY("mutex"))) == 1,
              "SSHARD_CAPABILITY must expand to nothing off clang");
static_assert(sizeof(SSHARD_TEST_STRINGIFY(SSHARD_REQUIRES(a, b))) == 1,
              "SSHARD_REQUIRES must expand to nothing off clang");
static_assert(sizeof(SSHARD_TEST_STRINGIFY(SSHARD_ACQUIRE(a))) == 1,
              "SSHARD_ACQUIRE must expand to nothing off clang");
static_assert(sizeof(SSHARD_TEST_STRINGIFY(SSHARD_RELEASE(a))) == 1,
              "SSHARD_RELEASE must expand to nothing off clang");
static_assert(sizeof(SSHARD_TEST_STRINGIFY(SSHARD_EXCLUDES(a))) == 1,
              "SSHARD_EXCLUDES must expand to nothing off clang");
static_assert(
    sizeof(SSHARD_TEST_STRINGIFY(SSHARD_SCOPED_CAPABILITY)) == 1,
    "SSHARD_SCOPED_CAPABILITY must expand to nothing off clang");
static_assert(
    sizeof(SSHARD_TEST_STRINGIFY(SSHARD_NO_THREAD_SAFETY_ANALYSIS)) == 1,
    "SSHARD_NO_THREAD_SAFETY_ANALYSIS must expand to nothing off clang");
#endif  // !__clang__

TEST(StaticAnalysis, PhaseCapabilityIsZeroStateAndFree) {
  // A capability object carries no runtime state: Acquire/Release are
  // annotation anchors only and must be callable in any order.
  static_assert(sizeof(common::PhaseCapability) == 1,
                "PhaseCapability must stay empty — it rides in hot types");
  common::PhaseCapability cap;
  cap.Acquire();
  cap.Acquire();  // no lock semantics at runtime: re-acquire is fine
  cap.Release();
  cap.Release();
}

TEST(StaticAnalysis, MutexLockExcludes) {
  common::Mutex mutex;
  int value = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&mutex, &value] {
      for (int i = 0; i < 1000; ++i) {
        common::MutexLock lock(mutex);
        ++value;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(value, 4000);
}

TEST(StaticAnalysis, CondVarWakesWaiter) {
  common::Mutex mutex;
  common::CondVar ready;
  bool flag = false;
  std::thread waiter([&] {
    common::MutexLock lock(mutex);
    while (!flag) ready.Wait(mutex);
  });
  {
    common::MutexLock lock(mutex);
    flag = true;
  }
  ready.NotifyAll();
  waiter.join();
  EXPECT_TRUE(flag);
}

TEST(StaticAnalysis, AnnotatedThreadPoolRunsFanOut) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1)
        << "index " << i;
  }
}

TEST(StaticAnalysis, AnnotatedThreadPoolDispatchOverlapsThenWaits) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.Dispatch(8, [&done](std::size_t) {
    done.fetch_add(1, std::memory_order_relaxed);
  });
  // The driving thread may do its own work here (the engine generates the
  // next round's transactions); Wait is the barrier.
  pool.Wait();
  EXPECT_EQ(done.load(std::memory_order_relaxed), 8);
}

}  // namespace
}  // namespace stableshard
