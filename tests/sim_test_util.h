// Shared helpers for the scheduler integration tests: canned configurations
// and the common post-run invariant bundle (liveness, chain integrity,
// serializability, accounting consistency).
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "chain/global_chain.h"
#include "core/config.h"
#include "core/engine.h"

namespace stableshard::test {

inline core::SimConfig SmallConfig(const std::string& scheduler) {
  core::SimConfig config;
  config.scheduler = scheduler;
  config.shards = 16;
  config.accounts = 16;
  config.k = 4;
  config.rho = 0.05;
  config.burstiness = 30;
  config.rounds = 1500;
  config.drain_cap = 60000;
  config.seed = 7;
  config.topology = scheduler == "bds" ? net::TopologyKind::kUniform
                                       : net::TopologyKind::kLine;
  return config;
}

/// Invariants every scheduler must satisfy after a drained run:
///  - liveness: everything injected was resolved;
///  - accounting: injected == committed + aborted;
///  - every local chain verifies; reconstruction succeeds;
///  - cross-shard serializability of the commit orders;
///  - committed transactions appear on exactly their destination shards.
inline void ExpectDrainedRunInvariants(const core::Simulation& sim,
                                       const core::SimResult& result,
                                       bool same_round_atomicity) {
  EXPECT_TRUE(result.drained) << "scheduler failed to drain";
  EXPECT_EQ(result.unresolved, 0u);
  EXPECT_EQ(result.injected, result.committed + result.aborted);

  const auto& chains = sim.ledger().chains();
  for (const auto& chain : chains) {
    EXPECT_TRUE(chain.Verify());
  }
  const auto mode = same_round_atomicity ? chain::AtomicityMode::kSameRound
                                         : chain::AtomicityMode::kOrdered;
  const auto reconstruction = chain::ReconstructGlobalChain(chains, mode);
  EXPECT_TRUE(reconstruction.consistent) << reconstruction.error;
  EXPECT_EQ(reconstruction.entries.size(), result.committed);
  EXPECT_TRUE(chain::CheckSerializable(chains));
}

}  // namespace stableshard::test
