// Shared helpers for the scheduler integration tests: canned
// configurations, single-sourced run helpers (worker-thread overrides, the
// bit-identical SimResult comparison) and the common post-run invariant
// bundle (liveness, chain integrity, serializability, accounting
// consistency). Tests must build configs through these helpers rather than
// hand-rolling copies — the copies in engine_test.cc / parallel_engine_test
// had started to drift from the config.cc defaults.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "chain/global_chain.h"
#include "core/config.h"
#include "core/engine.h"

namespace stableshard::test {

inline core::SimConfig SmallConfig(const std::string& scheduler) {
  core::SimConfig config;
  config.scheduler = scheduler;
  config.shards = 16;
  config.accounts = 16;
  config.k = 4;
  config.rho = 0.05;
  config.burstiness = 30;
  config.rounds = 1500;
  config.drain_cap = 60000;
  config.seed = 7;
  // Both BDS modes ("bds" and the sharded-leader "bds_sharded") require
  // the uniform model.
  config.topology = scheduler.rfind("bds", 0) == 0
                        ? net::TopologyKind::kUniform
                        : net::TopologyKind::kLine;
  return config;
}

/// Run `config` once with the given worker-thread count. Forces the pool
/// on (min_shards_per_worker = 1): the test grids are far below the
/// default small-grid threshold, and silently serialized workers would
/// make every worker-count determinism assertion vacuous.
inline core::SimResult RunWithWorkers(core::SimConfig config,
                                      std::uint32_t workers) {
  config.worker_threads = workers;
  config.min_shards_per_worker = 1;
  core::Simulation sim(config);
  return sim.Run();
}

/// Protocol-outcome fields equal; doubles bit-for-bit. This is the subset
/// a WAL-enabled fault-free run must share with a WAL-off run (the WAL is
/// write-only until a crash, so only the durability counters may differ);
/// same-config comparisons use ExpectBitIdenticalResults below.
inline void ExpectBitIdenticalProtocol(const core::SimResult& a,
                                       const core::SimResult& b) {
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.unresolved, b.unresolved);
  EXPECT_EQ(a.max_pending, b.max_pending);
  EXPECT_EQ(a.spill_peak, b.spill_peak);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.payload_units, b.payload_units);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.offered_txns, b.offered_txns);
  EXPECT_EQ(a.injected_txns, b.injected_txns);
  EXPECT_EQ(a.inject_lag_peak, b.inject_lag_peak);
  EXPECT_DOUBLE_EQ(a.avg_pending_per_shard, b.avg_pending_per_shard);
  EXPECT_DOUBLE_EQ(a.avg_leader_queue, b.avg_leader_queue);
  EXPECT_DOUBLE_EQ(a.max_leader_queue, b.max_leader_queue);
  EXPECT_DOUBLE_EQ(a.max_single_leader_queue, b.max_single_leader_queue);
  EXPECT_DOUBLE_EQ(a.avg_latency, b.avg_latency);
  EXPECT_DOUBLE_EQ(a.max_latency, b.max_latency);
  EXPECT_DOUBLE_EQ(a.p50_latency, b.p50_latency);
  EXPECT_DOUBLE_EQ(a.p99_latency, b.p99_latency);
}

/// Every SimResult field equal; doubles bit-for-bit — the parallel path
/// performs the exact same arithmetic in the exact same order, so
/// worker_threads must never perturb a single bit of the outcome. The
/// durability counters are part of the contract: the WAL persists and the
/// fault plan replays identically whatever the worker count.
inline void ExpectBitIdenticalResults(const core::SimResult& a,
                                      const core::SimResult& b) {
  ExpectBitIdenticalProtocol(a, b);
  EXPECT_EQ(a.wal_bytes, b.wal_bytes);
  EXPECT_EQ(a.checkpoint_count, b.checkpoint_count);
  EXPECT_EQ(a.replay_bytes, b.replay_bytes);
  EXPECT_EQ(a.recovery_rounds, b.recovery_rounds);
}

/// Invariants every scheduler must satisfy after a drained run:
///  - liveness: everything injected was resolved;
///  - accounting: injected == committed + aborted;
///  - every local chain verifies; reconstruction succeeds;
///  - cross-shard serializability of the commit orders;
///  - committed transactions appear on exactly their destination shards.
inline void ExpectDrainedRunInvariants(const core::Simulation& sim,
                                       const core::SimResult& result,
                                       bool same_round_atomicity) {
  EXPECT_TRUE(result.drained) << "scheduler failed to drain";
  EXPECT_EQ(result.unresolved, 0u);
  EXPECT_EQ(result.injected, result.committed + result.aborted);

  const auto& chains = sim.ledger().chains();
  for (const auto& chain : chains) {
    EXPECT_TRUE(chain.Verify());
  }
  const auto mode = same_round_atomicity ? chain::AtomicityMode::kSameRound
                                         : chain::AtomicityMode::kOrdered;
  const auto reconstruction = chain::ReconstructGlobalChain(chains, mode);
  EXPECT_TRUE(reconstruction.consistent) << reconstruction.error;
  EXPECT_EQ(reconstruction.entries.size(), result.committed);
  EXPECT_TRUE(chain::CheckSerializable(chains));
}

}  // namespace stableshard::test
