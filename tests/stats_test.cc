// Unit tests for src/stats: Welford accumulator (against naive formulas),
// merge correctness, histogram quantiles, time-series windowing and the
// latency recorder semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "stats/histogram.h"
#include "stats/latency_recorder.h"
#include "stats/running_stats.h"
#include "stats/time_series.h"

namespace stableshard::stats {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, MatchesNaiveComputation) {
  Rng rng(3);
  std::vector<double> values;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble() * 100 - 50;
    values.push_back(v);
    s.Add(v);
  }
  double sum = 0;
  for (const double v : values) sum += v;
  const double mean = sum / values.size();
  double sq = 0;
  for (const double v : values) sq += (v - mean) * (v - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), sq / values.size(), 1e-7);
  EXPECT_EQ(s.count(), values.size());
}

TEST(RunningStats, MinMaxTracked) {
  RunningStats s;
  for (const double v : {3.0, -1.0, 7.0, 2.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
  EXPECT_DOUBLE_EQ(s.sum(), 11.0);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  Rng rng(5);
  RunningStats all, left, right;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.NextDouble() * 10;
    all.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);  // merge empty into non-empty
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);  // merge non-empty into empty
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, CountsAndOverflow) {
  Histogram h(10.0, 5);  // buckets [0,10) .. [40,50), overflow beyond
  h.Add(0);
  h.Add(9.9);
  h.Add(10);
  h.Add(49.9);
  h.Add(50);
  h.Add(1000);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[4], 1u);
}

TEST(Histogram, QuantileInterpolation) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  // Uniform distribution on [0,100): median near 50, p99 near 99.
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.99), 99.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 1.5);
}

TEST(Histogram, QuantileOnEmpty) {
  Histogram h(1.0, 10);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(TimeSeries, WindowAveraging) {
  TimeSeries series(10);
  for (Round r = 0; r < 25; ++r) {
    series.Record(r, static_cast<double>(r));
  }
  const auto points = series.Finish();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].round, 0u);
  EXPECT_DOUBLE_EQ(points[0].value, 4.5);   // mean of 0..9
  EXPECT_DOUBLE_EQ(points[1].value, 14.5);  // mean of 10..19
  EXPECT_DOUBLE_EQ(points[2].value, 22.0);  // mean of 20..24
}

TEST(TimeSeries, SparseRecording) {
  TimeSeries series(100);
  series.Record(5, 1.0);
  series.Record(250, 3.0);
  series.Record(260, 5.0);
  const auto points = series.Finish();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].round, 0u);
  EXPECT_DOUBLE_EQ(points[0].value, 1.0);
  EXPECT_EQ(points[1].round, 200u);
  EXPECT_DOUBLE_EQ(points[1].value, 4.0);
}

TEST(LatencyRecorder, RecordsCommitAndAbort) {
  LatencyRecorder recorder;
  recorder.Record(10, 30, true);
  recorder.Record(5, 10, false);
  EXPECT_EQ(recorder.committed(), 1u);
  EXPECT_EQ(recorder.aborted(), 1u);
  EXPECT_EQ(recorder.resolved(), 2u);
  EXPECT_DOUBLE_EQ(recorder.average_latency(), (20.0 + 5.0) / 2);
  EXPECT_DOUBLE_EQ(recorder.max_latency(), 20.0);
}

TEST(LatencyRecorder, ZeroDelayAllowed) {
  LatencyRecorder recorder;
  recorder.Record(7, 7, true);
  EXPECT_DOUBLE_EQ(recorder.average_latency(), 0.0);
}

TEST(LatencyRecorder, QuantilesOrdered) {
  LatencyRecorder recorder;
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) {
    const Round delay = rng.NextBounded(5000);
    recorder.Record(0, delay, true);
  }
  EXPECT_LE(recorder.p50_latency(), recorder.p99_latency());
  EXPECT_GT(recorder.p99_latency(), 0.0);
}

}  // namespace
}  // namespace stableshard::stats
