// Integration tests for Algorithm 2 (FDS): liveness with the retract
// handshake, serialization consistency across shards (kOrdered atomicity),
// hierarchy/topology sweeps, rescheduling on/off, locality, and abort
// handling.
#include <gtest/gtest.h>

#include <string>

#include "core/fds.h"
#include "sim_test_util.h"

namespace stableshard {
namespace {

using core::HierarchyKind;
using core::SimConfig;
using core::Simulation;
using test::ExpectDrainedRunInvariants;
using test::SmallConfig;

TEST(Fds, DrainsAndCommitsOnLine) {
  SimConfig config = SmallConfig("fds");
  Simulation sim(config);
  const auto result = sim.Run();
  EXPECT_GT(result.injected, 0u);
  ExpectDrainedRunInvariants(sim, result, /*same_round_atomicity=*/false);
}

struct FdsCase {
  net::TopologyKind topology;
  HierarchyKind hierarchy;
  ShardId shards;
  std::uint32_t k;
  const char* strategy;  ///< a name registered in adversary::StrategyRegistry
  bool reschedule;
  bool pipelined;
  std::uint64_t seed;
};

class FdsProperty : public ::testing::TestWithParam<FdsCase> {};

TEST_P(FdsProperty, InvariantsAcrossConfigs) {
  const FdsCase param = GetParam();
  SimConfig config = SmallConfig("fds");
  config.topology = param.topology;
  config.hierarchy = param.hierarchy;
  config.shards = param.shards;
  config.accounts = param.shards;
  config.k = std::min<std::uint32_t>(param.k, param.shards);
  config.strategy = param.strategy;
  config.fds_reschedule = param.reschedule;
  config.fds_pipelined = param.pipelined;
  config.seed = param.seed;
  config.rounds = 1000;
  config.burstiness = 15;
  config.rho = 0.01;
  config.drain_cap = 120000;
  Simulation sim(config);
  const auto result = sim.Run();
  EXPECT_GT(result.injected, 0u);
  ExpectDrainedRunInvariants(sim, result, /*same_round_atomicity=*/false);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FdsProperty,
    ::testing::Values(
        FdsCase{net::TopologyKind::kLine, HierarchyKind::kLineShifted, 16, 4,
                "uniform_random", true, false, 1},
        FdsCase{net::TopologyKind::kLine, HierarchyKind::kLineShifted, 64, 8,
                "uniform_random", true, true, 2},
        FdsCase{net::TopologyKind::kLine, HierarchyKind::kSparseCover, 16, 4,
                "uniform_random", true, true, 3},
        FdsCase{net::TopologyKind::kRing, HierarchyKind::kSparseCover, 16, 4,
                "uniform_random", true, true, 4},
        FdsCase{net::TopologyKind::kGrid, HierarchyKind::kSparseCover, 16, 4,
                "uniform_random", true, true, 5},
        FdsCase{net::TopologyKind::kUniform, HierarchyKind::kSparseCover, 16,
                4, "uniform_random", true, true, 6},
        FdsCase{net::TopologyKind::kLine, HierarchyKind::kLineShifted, 16, 4,
                "uniform_random", false, true, 7},
        FdsCase{net::TopologyKind::kLine, HierarchyKind::kLineShifted, 16, 4,
                "hotspot", true, false, 8},
        FdsCase{net::TopologyKind::kLine, HierarchyKind::kLineShifted, 16, 3,
                "local", true, true, 9},
        FdsCase{net::TopologyKind::kLine, HierarchyKind::kLineShifted, 16, 1,
                "single_shard", true, true, 10},
        FdsCase{net::TopologyKind::kLine, HierarchyKind::kLineShifted, 16, 4,
                "hot_destination", true, true, 11},
        FdsCase{net::TopologyKind::kLine, HierarchyKind::kLineShifted, 16, 3,
                "diameter_span", true, true, 12}),
    [](const ::testing::TestParamInfo<FdsCase>& info) {
      const auto& p = info.param;
      return net::TopologyName(p.topology) + "_" +
             (p.hierarchy == HierarchyKind::kLineShifted ? "shifted"
                                                         : "cover") +
             "_s" + std::to_string(p.shards) + "_" + p.strategy +
             (p.reschedule ? "_resch" : "_noresch") +
             (p.pipelined ? "_pipe" : "_pin") + "_seed" +
             std::to_string(p.seed);
    });

TEST(Fds, EpochLengthsAreAlignedPowersOfTwo) {
  SimConfig config = SmallConfig("fds");
  Simulation sim(config);
  auto& scheduler = dynamic_cast<core::FdsScheduler&>(sim.scheduler());
  const Round e0 = scheduler.base_epoch_length();
  EXPECT_GE(e0, 4u);
  for (std::uint32_t layer = 0; layer < scheduler.hierarchy().layer_count();
       ++layer) {
    EXPECT_EQ(scheduler.epoch_length(layer), e0 << layer);
    // The epoch must fit phases: 2 * d_layer + 3 rounds.
    EXPECT_GE(scheduler.epoch_length(layer),
              2ull * scheduler.hierarchy().layer_diameter(layer) + 3);
  }
}

TEST(Fds, ReschedulingHappensWhenEnabled) {
  SimConfig config = SmallConfig("fds");
  config.burstiness = 60;  // enough backlog to straddle rescheduling periods
  config.rho = 0.02;
  config.rounds = 4000;
  Simulation sim(config);
  auto& scheduler = dynamic_cast<core::FdsScheduler&>(sim.scheduler());
  const auto result = sim.Run();
  (void)result;
  EXPECT_GT(scheduler.reschedules(), 0u);
}

TEST(Fds, NoReschedulingWhenDisabled) {
  SimConfig config = SmallConfig("fds");
  config.fds_reschedule = false;
  Simulation sim(config);
  auto& scheduler = dynamic_cast<core::FdsScheduler&>(sim.scheduler());
  const auto result = sim.Run();
  EXPECT_EQ(scheduler.reschedules(), 0u);
  ExpectDrainedRunInvariants(sim, result, false);
}

TEST(Fds, LocalWorkloadUsesLowLayers) {
  // With radius-1 transactions, home clusters should mostly be low-layer,
  // giving much lower latency than the diameter would suggest.
  SimConfig config = SmallConfig("fds");
  config.shards = 32;
  config.accounts = 32;
  config.strategy = "local";
  config.local_radius = 1;
  config.k = 2;
  config.account_assignment = core::AccountAssignment::kRoundRobin;
  Simulation sim(config);
  const auto result = sim.Run();
  ExpectDrainedRunInvariants(sim, result, false);
  // Line diameter is 31; local txns should commit much faster than a
  // diameter-scale round trip per queue entry would imply.
  EXPECT_LT(result.avg_latency, 2000.0);
}

TEST(Fds, AbortsResolveEverywhere) {
  SimConfig config = SmallConfig("fds");
  config.abort_probability = 0.4;
  Simulation sim(config);
  const auto result = sim.Run();
  EXPECT_GT(result.aborted, 0u);
  ExpectDrainedRunInvariants(sim, result, false);
}

TEST(Fds, PendingBoundAtAdmissibleRate) {
  // Theorem 3 shape check: at a very low rate, pending never exceeds 4bs.
  SimConfig config = SmallConfig("fds");
  config.rho = 0.005;
  config.burstiness = 10;
  config.rounds = 5000;
  Simulation sim(config);
  const auto result = sim.Run();
  EXPECT_LE(result.max_pending,
            4.0 * config.burstiness * config.shards);
  ExpectDrainedRunInvariants(sim, result, false);
}

TEST(Fds, LeaderQueueMetricPositiveUnderLoad) {
  SimConfig config = SmallConfig("fds");
  config.burstiness = 50;
  config.drain_cap = 0;
  config.rounds = 500;
  Simulation sim(config);
  const auto result = sim.Run();
  EXPECT_GT(result.avg_leader_queue, 0.0);
}

TEST(Fds, RetractHandshakeKeepsSystemLive) {
  // Wide transactions on a line topology maximize cross-cluster inversions;
  // the run must still drain (deadlock would exhaust drain_cap). Pinned
  // mode is the one that needs the retract handshake.
  SimConfig config = SmallConfig("fds");
  config.fds_pipelined = false;
  config.shards = 24;
  config.accounts = 24;
  config.k = 8;
  config.burstiness = 40;
  config.rho = 0.01;
  config.drain_cap = 200000;
  Simulation sim(config);
  auto& scheduler = dynamic_cast<core::FdsScheduler&>(sim.scheduler());
  const auto result = sim.Run();
  ExpectDrainedRunInvariants(sim, result, false);
  (void)scheduler;  // retracts() may be zero on lucky schedules; liveness is
                    // the property under test.
}

}  // namespace
}  // namespace stableshard
