// Ablation: FDS rescheduling periods (Section 6.2) on vs off, and the
// destination commit discipline (pipelined Algorithm 2b vs conservative
// pinned 2PC) — the two FDS design choices DESIGN.md calls out.
#include <cstdio>

#include "common/csv.h"
#include "core/experiment.h"

int main() {
  using namespace stableshard;

  CsvWriter csv("ablation_reschedule.csv",
                {"reschedule", "commit_mode", "rho", "avg_leader_queue",
                 "avg_latency", "p99_latency", "unresolved"});

  std::vector<core::SimConfig> configs;
  struct Variant {
    bool reschedule;
    bool pipelined;
    const char* name;
  };
  const std::vector<Variant> variants = {
      {true, true, "resched+pipelined"},
      {false, true, "noresched+pipelined"},
      {true, false, "resched+pinned"},
  };
  for (const auto& variant : variants) {
    for (const double rho : {0.06, 0.12, 0.18}) {
      core::SimConfig config;
      config.scheduler = "fds";
      config.topology = net::TopologyKind::kLine;
      config.hierarchy = core::HierarchyKind::kLineShifted;
      config.shards = 64;
      config.accounts = 64;
      config.account_assignment = core::AccountAssignment::kRoundRobin;
      config.k = 8;
      config.rho = rho;
      config.burstiness = 2000;
      config.rounds = 25000;
      config.fds_reschedule = variant.reschedule;
      config.fds_pipelined = variant.pipelined;
      configs.push_back(config);
    }
  }
  const auto runs = core::RunSweep(configs);

  std::printf("%-22s %8s %16s %12s %12s %12s\n", "variant", "rho",
              "avg_leader_queue", "avg_latency", "p99_latency", "unresolved");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& run = runs[i];
    const auto& variant = variants[i / 3];
    std::printf("%-22s %8.2f %16.2f %12.0f %12.0f %12llu\n", variant.name,
                run.config.rho, run.result.avg_leader_queue,
                run.result.avg_latency, run.result.p99_latency,
                static_cast<unsigned long long>(run.result.unresolved));
    csv.Row(variant.reschedule ? 1 : 0, variant.pipelined ? "pipelined"
                                                          : "pinned",
            run.config.rho, run.result.avg_leader_queue,
            run.result.avg_latency, run.result.p99_latency,
            run.result.unresolved);
  }
  std::printf(
      "\nReading: rescheduling compresses stale colors and lowers latency "
      "tails; the pinned discipline pays a full leader round-trip per commit "
      "per shard and diverges on the 64-shard line.\n");
  return 0;
}
