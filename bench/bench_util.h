// Shared helpers for the figure-reproduction benches: run a (rho, b) sweep
// on the thread pool, print paper-style panels (one row per rho, one column
// per b), and persist the raw series as CSV next to the binary.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/csv.h"
#include "core/experiment.h"

namespace stableshard::bench {

/// The paper's Section 7 sweep: rho in 0.03..0.27 (step 0.03) and
/// b in {1000, 2000, 3000}.
inline std::vector<double> PaperRhoGrid() {
  std::vector<double> grid;
  for (int i = 1; i <= 9; ++i) grid.push_back(0.03 * i);
  return grid;
}

inline std::vector<double> PaperBurstGrid() { return {1000, 2000, 3000}; }

/// One cell of the ROADMAP large-s grid (shared by bench/parallel_rounds
/// --grid and bench/scaling --large): s in {256, 512, 1024} on line (fds),
/// ring (fds) and uniform (bds) — BDS is specified for the uniform model
/// only.
struct LargeGridCell {
  net::TopologyKind topology;
  const char* scheduler;
  ShardId shards;
};

inline std::vector<LargeGridCell> LargeScaleGrid() {
  std::vector<LargeGridCell> cells;
  const std::pair<net::TopologyKind, const char*> topologies[] = {
      {net::TopologyKind::kLine, "fds"},
      {net::TopologyKind::kRing, "fds"},
      {net::TopologyKind::kUniform, "bds"}};
  for (const auto& [topology, scheduler] : topologies) {
    for (const ShardId s : {256u, 512u, 1024u}) {
      cells.push_back({topology, scheduler, s});
    }
  }
  return cells;
}

/// Hierarchy rule for the benches: the paper's Figure-3 line-shifted
/// construction for line-like metrics, the generic sparse cover for rings.
inline core::HierarchyKind HierarchyFor(net::TopologyKind topology) {
  return topology == net::TopologyKind::kRing
             ? core::HierarchyKind::kSparseCover
             : core::HierarchyKind::kLineShifted;
}

/// Base config for one large-grid cell. Non-uniform cells run the
/// radius-bounded local workload: with uniform-random destinations over a
/// 1024-shard line almost every transaction's x-neighborhood spans the
/// top-layer cluster, whose epochs are thousands of rounds — nothing
/// commits in a bench-sized run and one mega-leader sees ~99% of traffic.
/// A local workload exercises the low layers (commits flow) and is also
/// the regime where the lazy ring's O(live destinations) footprint shows.
inline core::SimConfig LargeGridConfig(const LargeGridCell& cell, double rho,
                                       double burst, Round rounds,
                                       Distance radius) {
  core::SimConfig config;
  config.scheduler = cell.scheduler;
  config.topology = cell.topology;
  config.hierarchy = HierarchyFor(cell.topology);
  config.shards = cell.shards;
  config.accounts = cell.shards;
  // One account per shard, deterministically: both grid benches must run
  // the same workload so their tables are comparable.
  config.account_assignment = core::AccountAssignment::kRoundRobin;
  config.k = 8;
  config.rho = rho;
  config.burstiness = burst;
  config.rounds = rounds;
  if (cell.topology != net::TopologyKind::kUniform) {
    config.strategy = "local";
    config.local_radius = radius;
  }
  return config;
}

/// Result accessor used to fill one panel.
using Metric = std::function<double(const core::SimResult&)>;

struct Panel {
  std::string title;    ///< e.g. "Average pending transactions per home shard"
  std::string metric_name;
  Metric metric;
};

/// Run the full rho x b sweep for `base` (rho/burstiness overwritten) and
/// print each panel as a table; dump everything into `csv_path`.
inline void RunFigureSweep(const core::SimConfig& base,
                           const std::string& figure_name,
                           const std::vector<Panel>& panels,
                           const std::string& csv_path) {
  const auto rhos = PaperRhoGrid();
  const auto bursts = PaperBurstGrid();

  std::vector<core::SimConfig> configs;
  for (const double b : bursts) {
    for (const double rho : rhos) {
      core::SimConfig config = base;
      config.rho = rho;
      config.burstiness = b;
      configs.push_back(config);
    }
  }
  std::printf("%s: %zu simulations (%s), sweeping rho x b ...\n",
              figure_name.c_str(), configs.size(), base.Describe().c_str());
  std::fflush(stdout);
  const auto runs = core::RunSweep(configs);

  auto run_at = [&](std::size_t bi, std::size_t ri) -> const core::ExperimentRun& {
    return runs[bi * rhos.size() + ri];
  };

  for (const Panel& panel : panels) {
    std::printf("\n%s — %s\n", figure_name.c_str(), panel.title.c_str());
    std::printf("%8s", "rho");
    for (const double b : bursts) std::printf("  %12s=%-5.0f", "b", b);
    std::printf("\n");
    for (std::size_t ri = 0; ri < rhos.size(); ++ri) {
      std::printf("%8.2f", rhos[ri]);
      for (std::size_t bi = 0; bi < bursts.size(); ++bi) {
        std::printf("  %18.2f", panel.metric(run_at(bi, ri).result));
      }
      std::printf("\n");
    }
  }

  CsvWriter csv(csv_path,
                {"figure", "rho", "b", "avg_pending_per_shard", "avg_latency",
                 "max_latency", "p99_latency", "avg_leader_queue", "injected",
                 "committed", "aborted", "unresolved", "max_pending",
                 "messages"});
  for (std::size_t bi = 0; bi < bursts.size(); ++bi) {
    for (std::size_t ri = 0; ri < rhos.size(); ++ri) {
      const auto& r = run_at(bi, ri).result;
      csv.Row(figure_name, rhos[ri], bursts[bi], r.avg_pending_per_shard,
              r.avg_latency, r.max_latency, r.p99_latency, r.avg_leader_queue,
              r.injected, r.committed, r.aborted, r.unresolved, r.max_pending,
              r.messages);
    }
  }
  csv.Flush();
  std::printf("\n[series written to %s]\n", csv_path.c_str());
}

}  // namespace stableshard::bench
