// Scalability sweep: how the stability region moves with s and k.
//
// The paper's admissible BDS rate is rho <= max{1/(18k), 1/(18 ceil sqrt s)}
// and the absolute bound is max{2/(k+1), 2/floor(sqrt(2s))}: larger k
// shrinks the per-transaction parallelism, larger s grows aggregate
// capacity. We measure the backlog at a fixed per-shard rate across (s, k)
// and print it against the two analytic rates.
//
// Default grid: s in {16, 64, 144} x k in {2, 4, 8} on the uniform model
// (BDS). With --large the grid becomes the ROADMAP's s in {256, 512, 1024}
// sweep with burst b = 3000 across uniform (bds), line (fds) and ring (fds)
// topologies at k = 8 (non-uniform cells run the radius-bounded local
// workload so low-layer epochs — and commits — fit in the run):
//
//   build/bench/scaling [--large] [--rounds=N] [--rho=0.10] [--workers=8]
//       [--radius=8]
//
// Large-s configs run worker_threads = workers inside each simulation;
// RunSweep's single-level policy then executes configs sequentially, so
// pools never nest (see core/experiment.h).
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/math_util.h"
#include "core/experiment.h"

int main(int argc, char** argv) {
  using namespace stableshard;

  Flags flags;
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 2;
  }
  const bool large = flags.GetBool("large", false);
  // Large-mode defaults match parallel_rounds --grid so the two tables
  // describe the same workload per (topology, scheduler, s) cell.
  const double rho = flags.GetDouble("rho", large ? 0.15 : 0.10);
  const auto rounds =
      static_cast<Round>(flags.GetUint("rounds", large ? 2000 : 12000));
  const double burst = flags.GetDouble("b", large ? 3000 : 500);
  const auto workers = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, flags.GetUint("workers", large ? 8 : 1)));
  const auto radius = static_cast<Distance>(flags.GetUint("radius", 8));
  if (!flags.FinishReads()) return 2;

  std::vector<core::SimConfig> configs;
  if (large) {
    for (const bench::LargeGridCell& cell : bench::LargeScaleGrid()) {
      core::SimConfig config =
          bench::LargeGridConfig(cell, rho, burst, rounds, radius);
      config.worker_threads = workers;
      // --workers is an explicit request here; don't let the small-grid
      // threshold silently serialize the s = 256 cells.
      config.min_shards_per_worker = 1;
      configs.push_back(config);
    }
  } else {
    for (const ShardId s : {16u, 64u, 144u}) {
      for (const std::uint32_t k : {2u, 4u, 8u}) {
        core::SimConfig config;
        config.scheduler = "bds";
        config.topology = net::TopologyKind::kUniform;
        config.shards = s;
        config.accounts = s;
        config.account_assignment = core::AccountAssignment::kRoundRobin;
        config.k = k;
        config.rho = rho;
        config.burstiness = burst;
        config.rounds = rounds;
        config.worker_threads = workers;
        config.min_shards_per_worker = 1;  // honor an explicit --workers
        configs.push_back(config);
      }
    }
  }
  const auto runs = core::RunSweep(configs);

  CsvWriter csv("scaling.csv",
                {"topology", "scheduler", "s", "k", "rho", "bds_admissible",
                 "theorem1_bound", "avg_pending_per_shard", "avg_latency",
                 "unresolved"});
  std::printf("%s grid at fixed rho=%.2f, b=%.0f, %llu rounds\n",
              large ? "large-s" : "BDS", rho, burst,
              static_cast<unsigned long long>(rounds));
  std::printf("%8s %5s %6s %4s | %14s %14s | %18s %12s %12s\n", "topology",
              "sched", "s", "k", "bds_admissible", "theorem1_rho*",
              "avg_pending/shard", "avg_latency", "unresolved");
  for (const auto& run : runs) {
    const std::string topology = net::TopologyName(run.config.topology);
    // The analytic rates are BDS bounds for the uniform model; leave the
    // columns blank for fds line/ring rows where they do not apply.
    std::string admissible_cell, absolute_cell;
    if (run.config.scheduler == "bds") {
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%.4f",
                    BdsStableRateBound(run.config.k, run.config.shards));
      admissible_cell = buffer;
      std::snprintf(
          buffer, sizeof buffer, "%.3f",
          AbsoluteStabilityUpperBound(run.config.k, run.config.shards));
      absolute_cell = buffer;
    }
    std::printf("%8s %5s %6u %4u | %14s %14s | %18.2f %12.0f %12llu\n",
                topology.c_str(), run.config.scheduler.c_str(),
                run.config.shards, run.config.k,
                admissible_cell.empty() ? "-" : admissible_cell.c_str(),
                absolute_cell.empty() ? "-" : absolute_cell.c_str(),
                run.result.avg_pending_per_shard, run.result.avg_latency,
                static_cast<unsigned long long>(run.result.unresolved));
    csv.Row(topology, run.config.scheduler, run.config.shards, run.config.k,
            rho, admissible_cell, absolute_cell,
            run.result.avg_pending_per_shard, run.result.avg_latency,
            run.result.unresolved);
  }
  std::printf(
      "\nReading: at fixed per-shard rate, larger k inflates conflict "
      "degree (backlog grows with k); larger s adds parallel capacity "
      "(backlog per shard shrinks with s), tracking the analytic rates.\n");
  return 0;
}
