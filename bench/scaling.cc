// Scalability sweep: how the stability region moves with s and k.
//
// The paper's admissible BDS rate is rho <= max{1/(18k), 1/(18 ceil sqrt s)}
// and the absolute bound is max{2/(k+1), 2/floor(sqrt(2s))}: larger k
// shrinks the per-transaction parallelism, larger s grows aggregate
// capacity. We measure the backlog at a fixed per-shard rate across (s, k)
// and print it against the two analytic rates.
#include <cstdio>

#include "common/csv.h"
#include "common/math_util.h"
#include "core/experiment.h"

int main() {
  using namespace stableshard;

  const std::vector<ShardId> shard_grid = {16, 64, 144};
  const std::vector<std::uint32_t> k_grid = {2, 4, 8};
  const double rho = 0.10;  // fixed per-shard congestion rate

  std::vector<core::SimConfig> configs;
  for (const ShardId s : shard_grid) {
    for (const std::uint32_t k : k_grid) {
      core::SimConfig config;
      config.scheduler = "bds";
      config.topology = net::TopologyKind::kUniform;
      config.shards = s;
      config.accounts = s;
      config.account_assignment = core::AccountAssignment::kRoundRobin;
      config.k = k;
      config.rho = rho;
      config.burstiness = 500;
      config.rounds = 12000;
      configs.push_back(config);
    }
  }
  const auto runs = core::RunSweep(configs);

  CsvWriter csv("scaling.csv",
                {"s", "k", "rho", "bds_admissible", "theorem1_bound",
                 "avg_pending_per_shard", "avg_latency", "unresolved"});
  std::printf("BDS at fixed rho=%.2f, b=500, 12000 rounds\n", rho);
  std::printf("%6s %4s | %14s %14s | %18s %12s %12s\n", "s", "k",
              "bds_admissible", "theorem1_rho*", "avg_pending/shard",
              "avg_latency", "unresolved");
  for (const auto& run : runs) {
    const double admissible =
        BdsStableRateBound(run.config.k, run.config.shards);
    const double absolute =
        AbsoluteStabilityUpperBound(run.config.k, run.config.shards);
    std::printf("%6u %4u | %14.4f %14.3f | %18.2f %12.0f %12llu\n",
                run.config.shards, run.config.k, admissible, absolute,
                run.result.avg_pending_per_shard, run.result.avg_latency,
                static_cast<unsigned long long>(run.result.unresolved));
    csv.Row(run.config.shards, run.config.k, rho, admissible, absolute,
            run.result.avg_pending_per_shard, run.result.avg_latency,
            run.result.unresolved);
  }
  std::printf(
      "\nReading: at fixed per-shard rate, larger k inflates conflict "
      "degree (backlog grows with k); larger s adds parallel capacity "
      "(backlog per shard shrinks with s), tracking the analytic rates.\n");
  return 0;
}
