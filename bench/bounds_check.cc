// Lemma 1 / Theorem 2 bound audit: runs BDS at the admissible rate
// rho = max{1/(18k), 1/(18 ceil(sqrt(s)))} across (s, k, b) and reports the
// measured maxima against the paper's bounds:
//   epoch length <= 18 b min{k, ceil(sqrt(s))}      (Lemma 1)
//   pending      <= 4 b s                           (Theorem 2)
//   latency      <= 36 b min{k, ceil(sqrt(s))}      (Theorem 2)
#include <cstdio>

#include "common/csv.h"
#include "common/math_util.h"
#include "core/bds.h"
#include "core/engine.h"

int main() {
  using namespace stableshard;

  struct Case {
    ShardId s;
    std::uint32_t k;
    double b;
  };
  const std::vector<Case> cases = {
      {16, 4, 10},  {16, 4, 50},  {16, 8, 20}, {64, 8, 10},
      {64, 8, 100}, {64, 2, 20},  {36, 6, 30}, {100, 10, 10},
  };

  CsvWriter csv("bounds_check.csv",
                {"s", "k", "b", "rho", "max_epoch", "epoch_bound",
                 "max_pending", "pending_bound", "max_latency",
                 "latency_bound"});
  std::printf("%5s %4s %6s %8s | %10s %10s | %12s %12s | %12s %12s\n", "s",
              "k", "b", "rho", "max_epoch", "<=18b*m", "max_pending",
              "<=4bs", "max_latency", "<=36b*m");
  bool all_ok = true;
  for (const Case& c : cases) {
    core::SimConfig config;
    config.scheduler = "bds";
    config.topology = net::TopologyKind::kUniform;
    config.shards = c.s;
    config.accounts = c.s;
    config.account_assignment = core::AccountAssignment::kRoundRobin;
    config.k = c.k;
    config.burstiness = c.b;
    config.rho = BdsStableRateBound(c.k, c.s);
    config.rounds = 12000;
    config.drain_cap = 100000;
    core::Simulation sim(config);
    auto& scheduler = dynamic_cast<core::BdsScheduler&>(sim.scheduler());
    const auto result = sim.Run();

    const double m = static_cast<double>(MinKSqrtS(c.k, c.s));
    const double epoch_bound = 18.0 * c.b * m;
    const double pending_bound = 4.0 * c.b * c.s;
    const double latency_bound = 36.0 * c.b * m;
    const bool ok = scheduler.max_epoch_length() <= epoch_bound &&
                    result.max_pending <= pending_bound &&
                    result.max_latency <= latency_bound && result.drained;
    all_ok = all_ok && ok;
    std::printf(
        "%5u %4u %6.0f %8.4f | %10llu %10.0f | %12llu %12.0f | %12.0f "
        "%12.0f %s\n",
        c.s, c.k, c.b, config.rho,
        static_cast<unsigned long long>(scheduler.max_epoch_length()),
        epoch_bound, static_cast<unsigned long long>(result.max_pending),
        pending_bound, result.max_latency, latency_bound,
        ok ? "OK" : "VIOLATED");
    csv.Row(c.s, c.k, c.b, config.rho, scheduler.max_epoch_length(),
            epoch_bound, result.max_pending, pending_bound,
            result.max_latency, latency_bound);
  }
  std::printf("\n%s\n", all_ok ? "All paper bounds hold."
                               : "BOUND VIOLATION DETECTED");
  return all_ok ? 0 : 1;
}
