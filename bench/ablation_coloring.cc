// Ablation: coloring algorithm choice.
//
// Part A — end-to-end: BDS latency/queues with greedy (the paper's choice)
// vs Welsh-Powell ordering of the shard-clique coloring.
// Part B — offline: colors used by greedy / Welsh-Powell / DSATUR on
// epoch-sized random batches (DSATUR runs on the explicit conflict graph,
// so batches are kept moderate). Fewer colors shorten Phase 3 by 4 rounds
// per color saved.
#include <cstdio>

#include "chain/account_map.h"
#include "common/csv.h"
#include "common/rng.h"
#include "core/experiment.h"
#include "txn/coloring.h"
#include "txn/conflict_graph.h"
#include "txn/txn_factory.h"

int main() {
  using namespace stableshard;

  std::printf("Part A: end-to-end BDS (s=64, k=8, b=2000, 25000 rounds)\n");
  std::printf("%-14s %8s %18s %14s %14s\n", "coloring", "rho",
              "avg_pending/shard", "avg_latency", "unresolved");
  CsvWriter csv("ablation_coloring.csv",
                {"coloring", "rho", "avg_pending_per_shard", "avg_latency",
                 "unresolved"});
  std::vector<core::SimConfig> configs;
  for (const auto algorithm : {txn::ColoringAlgorithm::kGreedy,
                               txn::ColoringAlgorithm::kWelshPowell}) {
    for (const double rho : {0.06, 0.12, 0.18}) {
      core::SimConfig config;
      config.scheduler = "bds";
      config.shards = 64;
      config.accounts = 64;
      config.account_assignment = core::AccountAssignment::kRoundRobin;
      config.k = 8;
      config.rho = rho;
      config.burstiness = 2000;
      config.rounds = 25000;
      config.coloring = algorithm;
      configs.push_back(config);
    }
  }
  for (const auto& run : core::RunSweep(configs)) {
    std::printf("%-14s %8.2f %18.2f %14.0f %14llu\n",
                txn::ToString(run.config.coloring), run.config.rho,
                run.result.avg_pending_per_shard, run.result.avg_latency,
                static_cast<unsigned long long>(run.result.unresolved));
    csv.Row(txn::ToString(run.config.coloring), run.config.rho,
            run.result.avg_pending_per_shard, run.result.avg_latency,
            run.result.unresolved);
  }

  std::printf(
      "\nPart B: colors used on random epoch batches (s=64, k=8; "
      "Delta+1 is the guarantee)\n");
  // The "ran" column comes from ColoringResult::used, not from the request:
  // the graph-free clique coloring cannot run true DSATUR and falls back to
  // Welsh-Powell, and that fallback must be visible in the table instead of
  // a silently mislabeled dsatur row (ColorGraph rows always match).
  std::printf("%8s %10s  %-16s %-14s %8s\n", "batch", "Delta+1", "requested",
              "ran", "colors");
  const auto map = chain::AccountMap::RoundRobin(64, 64);
  Rng rng(7);
  for (const std::size_t batch : {250ul, 1000ul, 4000ul}) {
    txn::TxnFactory factory(map);
    std::vector<txn::Transaction> txns;
    for (std::size_t i = 0; i < batch; ++i) {
      const auto picks = rng.SampleWithoutReplacement(64, 8);
      std::vector<AccountId> accounts(picks.begin(), picks.end());
      txns.push_back(factory.MakeTouch(
          static_cast<ShardId>(rng.NextBounded(64)), 0, accounts));
    }
    std::vector<const txn::Transaction*> view;
    for (const auto& txn : txns) view.push_back(&txn);
    const txn::ConflictGraph graph(view, txn::ConflictGranularity::kShard);
    struct LabeledRow {
      const char* requested;
      txn::ColoringResult result;
    };
    const LabeledRow rows[] = {
        {"greedy", ColorShardCliques(view, txn::ColoringAlgorithm::kGreedy)},
        {"welsh-powell",
         ColorShardCliques(view, txn::ColoringAlgorithm::kWelshPowell)},
        {"dsatur (graph)",
         ColorGraph(graph, txn::ColoringAlgorithm::kDsatur)},
        {"dsatur (cliques)",
         ColorShardCliques(view, txn::ColoringAlgorithm::kDsatur)},
    };
    for (const LabeledRow& row : rows) {
      std::printf("%8zu %10zu  %-16s %-14s %8u\n", batch,
                  graph.MaxDegree() + 1, row.requested,
                  txn::ToString(row.result.used), row.result.num_colors);
    }
  }
  return 0;
}
