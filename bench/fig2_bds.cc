// Reproduces Figure 2 (paper Section 7): Algorithm 1 (BDS) on the uniform
// model with s = 64 shards, 64 accounts (one per shard), k = 8, 25000
// rounds. Left panel: average pending transactions per home shard vs rho;
// right panel: average transaction latency (rounds) vs rho; series per
// burstiness b in {1000, 2000, 3000}.
//
// Expected shape (paper): both metrics are flat at low rho and grow
// exponentially once rho exceeds ~0.15; larger b shifts the curves up.
#include "bench_util.h"

int main() {
  using namespace stableshard;

  core::SimConfig base;
  base.scheduler = "bds";
  base.topology = net::TopologyKind::kUniform;
  base.shards = 64;
  base.accounts = 64;  // one account per shard
  base.account_assignment = core::AccountAssignment::kRoundRobin;
  base.k = 8;
  base.rounds = 25000;
  base.burst_round = 0;
  base.seed = 2024;

  const std::vector<bench::Panel> panels = {
      {"avg pending transactions per home shard (Fig. 2 left)",
       "avg_pending_per_shard",
       [](const core::SimResult& r) { return r.avg_pending_per_shard; }},
      {"avg transaction latency in rounds (Fig. 2 right)", "avg_latency",
       [](const core::SimResult& r) { return r.avg_latency; }},
  };
  bench::RunFigureSweep(base, "Figure 2 (BDS, uniform)", panels,
                        "fig2_bds.csv");
  return 0;
}
