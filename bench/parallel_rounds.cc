// Shard-parallel round-loop bench: wall-clock speedup of worker_threads = N
// over the serial path at large shard counts, with a bit-identical-results
// assertion (the determinism contract of core/scheduler.h), plus the lazy
// network-ring footprint (idle and steady-state) and the per-shard traffic
// split that quantifies BDS's single-leader Amdahl bottleneck.
//
// Single-config mode (the CI smoke):
//   build/bench/parallel_rounds [--scheduler=bds|fds|direct] [--shards=256]
//       [--topology=uniform|line|ring] [--rho=0.3] [--b=3000]
//       [--rounds=1500] [--workers=8] [--k=8] [--seed=42]
//
// Large-s grid mode (the ROADMAP s = 1024 sweep):
//   build/bench/parallel_rounds --grid [--rounds=400] [--rho=0.15]
//       [--b=3000] [--workers=8] [--radius=8] [--json=BENCH_scaling.json]
//
// The grid runs s in {256, 512, 1024} on line (fds), ring (fds) and
// uniform (bds) topologies with burst b = 3000 — the non-uniform cells use
// the radius-bounded local workload (see the note at the config) — checks
// worker_threads = 1 vs N bit-identical at every size, and writes a per-s
// memory/speedup/leader-share table to BENCH_scaling.json. Two readings to
// expect:
//   * memory — ring_buckets_at_start is always 0 (the lazy ring allocates
//     nothing at construction; the former dense table pre-allocated
//     dense_bucket_equivalent = (Diameter + 2) * s vectors, ~1M / ~25 MB
//     on the 1024-shard line);
//   * Amdahl — BDS's per-epoch coloring runs at a single leader (a
//     property of Algorithm 1), so its speedup plateaus while FDS scales;
//     leader_in_share is the busiest shard's fraction of all delivered
//     messages (1/s would be perfectly balanced).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/flags.h"
#include "core/engine.h"

namespace {

using namespace stableshard;

struct TimedRun {
  core::SimResult result;
  double seconds = 0;
  net::RingMemory memory_at_start;  ///< after construction, before round 0
  net::RingMemory memory_at_end;
  double leader_in_share = 0;   ///< max_i messages_in(i) / messages_sent
  double leader_out_share = 0;  ///< max_i messages_out(i) / messages_sent
};

TimedRun RunOnce(core::SimConfig config, std::uint32_t workers) {
  config.worker_threads = workers;
  core::Simulation sim(config);
  TimedRun timed;
  timed.memory_at_start = sim.scheduler().NetworkMemory();
  const auto start = std::chrono::steady_clock::now();
  timed.result = sim.Run();
  timed.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  timed.memory_at_end = sim.scheduler().NetworkMemory();
  std::uint64_t max_in = 0, max_out = 0;
  for (ShardId shard = 0; shard < config.shards; ++shard) {
    const net::ShardTraffic traffic = sim.scheduler().ShardTrafficFor(shard);
    max_in = std::max(max_in, traffic.messages_in);
    max_out = std::max(max_out, traffic.messages_out);
  }
  if (timed.result.messages > 0) {
    timed.leader_in_share = static_cast<double>(max_in) /
                            static_cast<double>(timed.result.messages);
    timed.leader_out_share = static_cast<double>(max_out) /
                             static_cast<double>(timed.result.messages);
  }
  return timed;
}

bool Identical(const core::SimResult& a, const core::SimResult& b) {
  return a.injected == b.injected && a.committed == b.committed &&
         a.aborted == b.aborted && a.unresolved == b.unresolved &&
         a.max_pending == b.max_pending && a.messages == b.messages &&
         a.payload_units == b.payload_units &&
         a.rounds_executed == b.rounds_executed && a.drained == b.drained &&
         a.avg_pending_per_shard == b.avg_pending_per_shard &&
         a.avg_leader_queue == b.avg_leader_queue &&
         a.avg_latency == b.avg_latency && a.max_latency == b.max_latency &&
         a.p50_latency == b.p50_latency && a.p99_latency == b.p99_latency;
}

void PrintRingMemory(const TimedRun& run) {
  const net::RingMemory& end = run.memory_at_end;
  std::printf(
      "ring memory: %llu buckets at start (dense table held %llu); "
      "end of run: %llu live dests, %llu buckets, %.2f MB envelope capacity\n",
      static_cast<unsigned long long>(run.memory_at_start.allocated_buckets),
      static_cast<unsigned long long>(end.dense_bucket_equivalent),
      static_cast<unsigned long long>(end.live_destinations),
      static_cast<unsigned long long>(end.allocated_buckets),
      static_cast<double>(end.bucket_capacity_bytes) / (1024.0 * 1024.0));
}

struct GridRow {
  ShardId shards = 0;
  std::string topology;
  std::string scheduler;
  double serial_seconds = 0;
  double parallel_seconds = 0;
  double speedup = 0;
  std::uint32_t workers = 0;
  bool identical = false;
  TimedRun parallel;  ///< memory + leader share from the parallel run
};

int RunGrid(const Flags& flags) {
  const auto rounds = static_cast<Round>(flags.GetUint("rounds", 400));
  const double rho = flags.GetDouble("rho", 0.15);
  const double burst = flags.GetDouble("b", 3000);
  const auto workers = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, flags.GetUint("workers", 8)));
  const std::uint64_t seed = flags.GetUint("seed", 42);
  const auto radius = static_cast<Distance>(flags.GetUint("radius", 8));
  const std::string json_path =
      flags.GetString("json", "BENCH_scaling.json");
  if (!flags.FinishReads()) return 2;
  // Open the output before burning minutes of grid wall clock on a path
  // that turns out to be unwritable.
  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "--json: cannot open '%s' for writing\n",
                 json_path.c_str());
    return 2;
  }

  std::printf("parallel_rounds grid: s in {256,512,1024}, b=%.0f, rho=%.2f, "
              "%llu rounds, workers 1 vs %u\n\n",
              burst, rho, static_cast<unsigned long long>(rounds), workers);
  std::printf("%6s %8s %5s | %9s %9s %8s | %10s %12s | %9s %9s %10s\n", "s",
              "topology", "sched", "serial_s", "par_s", "speedup", "buckets@0",
              "buckets@end", "ldr_in%", "ldr_out%", "identical");

  std::vector<GridRow> rows;
  bool all_identical = true;
  for (const bench::LargeGridCell& cell : bench::LargeScaleGrid()) {
    core::SimConfig config =
        bench::LargeGridConfig(cell, rho, burst, rounds, radius);
    config.seed = seed;

    const TimedRun serial = RunOnce(config, 1);
    const TimedRun parallel = RunOnce(config, workers);
    const bool identical = Identical(serial.result, parallel.result);
    all_identical = all_identical && identical;

    GridRow row;
    row.shards = cell.shards;
    row.topology = net::TopologyName(cell.topology);
    row.scheduler = cell.scheduler;
    row.serial_seconds = serial.seconds;
    row.parallel_seconds = parallel.seconds;
    row.speedup =
        parallel.seconds > 0 ? serial.seconds / parallel.seconds : 0.0;
    row.workers = workers;
    row.identical = identical;
    row.parallel = parallel;
    rows.push_back(row);

    std::printf(
        "%6u %8s %5s | %9.3f %9.3f %7.2fx | %10llu %12llu | %8.2f%% "
        "%8.2f%% %10s\n",
        cell.shards, row.topology.c_str(), cell.scheduler, serial.seconds,
        parallel.seconds, row.speedup,
        static_cast<unsigned long long>(
            parallel.memory_at_start.allocated_buckets),
        static_cast<unsigned long long>(
            parallel.memory_at_end.allocated_buckets),
        100.0 * parallel.leader_in_share, 100.0 * parallel.leader_out_share,
        identical ? "yes" : "NO");
  }

  // Per-s memory/speedup table, machine-readable (BENCH_scaling.json).
  std::fprintf(json,
               "{\n  \"bench\": \"parallel_rounds_grid\",\n"
               "  \"burst\": %.0f,\n  \"rho\": %.4f,\n  \"rounds\": %llu,\n"
               "  \"workers\": %u,\n  \"rows\": [\n",
               burst, rho, static_cast<unsigned long long>(rounds), workers);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const GridRow& row = rows[i];
    const net::RingMemory& memory = row.parallel.memory_at_end;
    std::fprintf(
        json,
        "    {\"s\": %u, \"topology\": \"%s\", \"scheduler\": \"%s\",\n"
        "     \"serial_seconds\": %.6f, \"parallel_seconds\": %.6f,\n"
        "     \"speedup\": %.4f, \"identical\": %s,\n"
        "     \"ring_buckets_at_start\": %llu,\n"
        "     \"ring_live_destinations\": %llu, \"ring_buckets\": %llu,\n"
        "     \"ring_capacity_bytes\": %llu,\n"
        "     \"dense_bucket_equivalent\": %llu,\n"
        "     \"leader_in_share\": %.6f, \"leader_out_share\": %.6f,\n"
        "     \"committed\": %llu, \"messages\": %llu}%s\n",
        row.shards, row.topology.c_str(), row.scheduler.c_str(),
        row.serial_seconds, row.parallel_seconds, row.speedup,
        row.identical ? "true" : "false",
        static_cast<unsigned long long>(
            row.parallel.memory_at_start.allocated_buckets),
        static_cast<unsigned long long>(memory.live_destinations),
        static_cast<unsigned long long>(memory.allocated_buckets),
        static_cast<unsigned long long>(memory.bucket_capacity_bytes),
        static_cast<unsigned long long>(memory.dense_bucket_equivalent),
        row.parallel.leader_in_share, row.parallel.leader_out_share,
        static_cast<unsigned long long>(row.parallel.result.committed),
        static_cast<unsigned long long>(row.parallel.result.messages),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);

  SSHARD_CHECK(all_identical &&
               "worker_threads changed a SimResult — determinism bug");
  std::printf(
      "\nall %zu grid cells bit-identical across worker counts; "
      "table written to %s\n"
      "Reading: BDS (uniform) speedup plateaus — Algorithm 1 colors each "
      "epoch at one leader — while FDS distributes coloring across cluster "
      "leaders; the lazy ring allocates 0 buckets until first contact "
      "(dense table held (D+2)*s).\n",
      rows.size(), json_path.c_str());
  return 0;
}

int RunSingle(const Flags& flags) {
  core::SimConfig config;
  config.scheduler = flags.GetString("scheduler", "fds");
  config.shards = static_cast<ShardId>(flags.GetUint("shards", 256));
  config.accounts = config.shards;
  config.k = static_cast<std::uint32_t>(flags.GetUint("k", 8));
  const std::string default_topology =
      config.scheduler == "bds" ? "uniform" : "line";
  const std::string topology_name =
      flags.GetString("topology", default_topology);
  const auto topology = net::TryParseTopology(topology_name);
  if (!topology) {
    std::fprintf(stderr, "unknown --topology=%s\n", topology_name.c_str());
    return 2;
  }
  config.topology = *topology;
  config.hierarchy = bench::HierarchyFor(config.topology);
  config.rho = flags.GetDouble("rho", 0.3);
  config.burstiness = flags.GetDouble("b", 3000);
  config.rounds = static_cast<Round>(flags.GetUint("rounds", 1500));
  config.seed = flags.GetUint("seed", 42);
  const auto max_workers = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, flags.GetUint("workers", 8)));
  if (!flags.FinishReads()) return 2;

  std::printf("parallel_rounds: %s\n", config.Describe().c_str());
  std::printf("%8s %12s %10s %10s %12s\n", "workers", "seconds", "speedup",
              "committed", "identical");

  const TimedRun serial = RunOnce(config, 1);
  std::printf("%8u %12.3f %10s %10llu %12s\n", 1u, serial.seconds, "1.00x",
              static_cast<unsigned long long>(serial.result.committed),
              "baseline");

  bool all_identical = true;
  double best_speedup = 1.0;
  for (std::uint32_t workers = 2; workers <= max_workers; workers *= 2) {
    const TimedRun timed = RunOnce(config, workers);
    const bool identical = Identical(serial.result, timed.result);
    all_identical = all_identical && identical;
    const double speedup = serial.seconds / timed.seconds;
    if (speedup > best_speedup) best_speedup = speedup;
    std::printf("%8u %12.3f %9.2fx %10llu %12s\n", workers, timed.seconds,
                speedup,
                static_cast<unsigned long long>(timed.result.committed),
                identical ? "yes" : "NO");
  }

  PrintRingMemory(serial);
  std::printf("busiest shard handles %.2f%% of inbound / %.2f%% of outbound "
              "messages\n",
              100.0 * serial.leader_in_share, 100.0 * serial.leader_out_share);

  SSHARD_CHECK(all_identical &&
               "worker_threads changed the SimResult — determinism bug");
  std::printf("\nbest speedup %.2fx at s=%u (identical results across all "
              "worker counts)\n",
              best_speedup, config.shards);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 2;
  }
  if (flags.GetBool("grid", false)) return RunGrid(flags);
  return RunSingle(flags);
}
