// Shard-parallel round-loop bench: wall-clock speedup of worker_threads = N
// over the serial path at large shard counts, with a bit-identical-results
// assertion (the determinism contract of core/scheduler.h).
//
//   build/bench/parallel_rounds [--scheduler=bds|fds|direct] [--shards=256]
//       [--rho=0.3] [--b=3000] [--rounds=1500] [--workers=8] [--k=8]
//
// Defaults reproduce the acceptance configuration: s = 256, burst b = 3000,
// workers 1 vs 2 vs 4 vs 8. FDS is the default scheduler because its round
// work is genuinely distributed — many cluster leaders color concurrently
// and all 256 destinations serve their schedule queues every round (~270us
// of work per round at these settings). BDS is available for comparison
// but its per-epoch coloring runs at a single leader (a property of
// Algorithm 1 itself), which caps its parallel speedup by Amdahl's law.
// Speedup depends on available cores; the bit-identical-results check does
// not.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "core/engine.h"

namespace {

using namespace stableshard;

struct TimedRun {
  core::SimResult result;
  double seconds = 0;
};

TimedRun RunOnce(core::SimConfig config, std::uint32_t workers) {
  config.worker_threads = workers;
  core::Simulation sim(config);
  const auto start = std::chrono::steady_clock::now();
  TimedRun timed;
  timed.result = sim.Run();
  timed.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return timed;
}

bool Identical(const core::SimResult& a, const core::SimResult& b) {
  return a.injected == b.injected && a.committed == b.committed &&
         a.aborted == b.aborted && a.unresolved == b.unresolved &&
         a.max_pending == b.max_pending && a.messages == b.messages &&
         a.payload_units == b.payload_units &&
         a.rounds_executed == b.rounds_executed && a.drained == b.drained &&
         a.avg_pending_per_shard == b.avg_pending_per_shard &&
         a.avg_leader_queue == b.avg_leader_queue &&
         a.avg_latency == b.avg_latency && a.max_latency == b.max_latency &&
         a.p50_latency == b.p50_latency && a.p99_latency == b.p99_latency;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 2;
  }

  core::SimConfig config;
  config.scheduler = flags.GetString("scheduler", "fds");
  config.shards = static_cast<ShardId>(flags.GetInt("shards", 256));
  config.accounts = config.shards;
  config.k = static_cast<std::uint32_t>(flags.GetInt("k", 8));
  config.topology = config.scheduler == "bds" ? net::TopologyKind::kUniform
                                              : net::TopologyKind::kLine;
  config.rho = flags.GetDouble("rho", 0.3);
  config.burstiness = flags.GetDouble("b", 3000);
  config.rounds = static_cast<Round>(flags.GetInt("rounds", 1500));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const auto max_workers =
      static_cast<std::uint32_t>(flags.GetInt("workers", 8));

  std::printf("parallel_rounds: %s\n", config.Describe().c_str());
  std::printf("%8s %12s %10s %10s %12s\n", "workers", "seconds", "speedup",
              "committed", "identical");

  const TimedRun serial = RunOnce(config, 1);
  std::printf("%8u %12.3f %10s %10llu %12s\n", 1u, serial.seconds, "1.00x",
              static_cast<unsigned long long>(serial.result.committed),
              "baseline");

  bool all_identical = true;
  double best_speedup = 1.0;
  for (std::uint32_t workers = 2; workers <= max_workers; workers *= 2) {
    const TimedRun timed = RunOnce(config, workers);
    const bool identical = Identical(serial.result, timed.result);
    all_identical = all_identical && identical;
    const double speedup = serial.seconds / timed.seconds;
    if (speedup > best_speedup) best_speedup = speedup;
    std::printf("%8u %12.3f %9.2fx %10llu %12s\n", workers, timed.seconds,
                speedup,
                static_cast<unsigned long long>(timed.result.committed),
                identical ? "yes" : "NO");
  }

  SSHARD_CHECK(all_identical &&
               "worker_threads changed the SimResult — determinism bug");
  std::printf("\nbest speedup %.2fx at s=%u (identical results across all "
              "worker counts)\n",
              best_speedup, config.shards);
  return 0;
}
